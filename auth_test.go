package rekey

import (
	"errors"
	"testing"

	"repro/internal/keys"
	"repro/internal/obs"
	"repro/internal/packet"
)

func newSignedServer(t testing.TB, seed uint64, opts ...Option) (*Server, *keys.Signer) {
	t.Helper()
	signer, err := keys.NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(append([]Option{WithKeySeed(seed), WithSigner(signer)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s, signer
}

// verifyingMember builds a member that requires interval auth.
func verifyingMember(t testing.TB, s *Server, id MemberID) *Member {
	t.Helper()
	cred, ok := s.Credentials(id)
	if !ok {
		t.Fatalf("no credentials for member %d", id)
	}
	m, err := NewMember(cred)
	if err != nil {
		t.Fatal(err)
	}
	return m.SetVerifier(keys.NewRootVerifier(s.SignerPublic()))
}

// wireENCFor returns the authenticated datagram carrying nodeID's
// specific packet, plus its block.
func wireENCFor(t testing.TB, rm *RekeyMessage, nodeID int) (wire []byte, block, seq int) {
	t.Helper()
	pi, ok := rm.Plan.UserPacket[nodeID]
	if !ok {
		t.Fatalf("no packet for node %d", nodeID)
	}
	w, err := rm.WireENC(pi)
	if err != nil {
		t.Fatal(err)
	}
	return w, pi / rm.k, pi % rm.k
}

// bootstrapSigned stands up n verifying members keyed via their
// authenticated ENC datagrams.
func bootstrapSigned(t testing.TB, s *Server, n int) (map[MemberID]*Member, *RekeyMessage) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.QueueJoin(MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	if !rm.Authenticated() {
		t.Fatal("signed server produced an unauthenticated message")
	}
	members := make(map[MemberID]*Member, n)
	for i := 0; i < n; i++ {
		cred, _ := s.Credentials(MemberID(i))
		m := verifyingMember(t, s, MemberID(i))
		wire, _, _ := wireENCFor(t, rm, cred.NodeID)
		res, err := m.Ingest(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("member %d: authenticated ENC did not complete recovery", i)
		}
		members[MemberID(i)] = m
	}
	return members, rm
}

func TestAuthEndToEndDirect(t *testing.T) {
	s, _ := newSignedServer(t, 11)
	members, _ := bootstrapSigned(t, s, 60)
	want := s.GroupKey()
	for id, m := range members {
		gk, ok := m.GroupKey()
		if !ok || gk != want {
			t.Fatalf("member %d: wrong group key after authenticated bootstrap", id)
		}
	}
}

func TestAuthParityRecovery(t *testing.T) {
	s, _ := newSignedServer(t, 12)
	members, _ := bootstrapSigned(t, s, 80)
	// Second interval: some churn, then recover one member purely from
	// another slot's ENC (for block estimation) plus parity packets.
	for i := 80; i < 90; i++ {
		if err := s.QueueJoin(MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.QueueLeave(MemberID(3)); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	m := members[MemberID(7)]
	cred, _ := s.Credentials(MemberID(7))
	_, block, _ := wireENCFor(t, rm, cred.NodeID)
	// k parity packets alone force an FEC decode of the block: every
	// shard's block root comes from the PARITY trailers' aux roots.
	var last IngestResult
	for idx := 0; idx < rm.k; idx++ {
		wire, err := rm.AppendWireParity(nil, block, idx)
		if err != nil {
			t.Fatal(err)
		}
		last, err = m.Ingest(wire)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !last.Done || !last.Recovered {
		t.Fatalf("parity recovery incomplete: %+v", last)
	}
	gk, ok := m.GroupKey()
	if !ok || gk != s.GroupKey() {
		t.Fatal("wrong group key after authenticated FEC recovery")
	}
}

func TestAuthUSRPath(t *testing.T) {
	s, _ := newSignedServer(t, 13)
	members, _ := bootstrapSigned(t, s, 30)
	if err := s.QueueLeave(MemberID(5)); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	m := members[MemberID(9)]
	cred, _ := s.Credentials(MemberID(9))
	wire, err := rm.WireUSR(cred.NodeID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Ingest(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("authenticated USR did not complete recovery")
	}
	if gk, ok := m.GroupKey(); !ok || gk != s.GroupKey() {
		t.Fatal("wrong group key after authenticated USR")
	}
	// Unknown node IDs have no leaf in the signed USR subtree.
	if _, err := rm.WireUSR(0xfffe); !errors.Is(err, ErrNoAuthLeaf) {
		t.Fatalf("WireUSR(unknown) error = %v, want ErrNoAuthLeaf", err)
	}
}

func TestAuthRejectsForgery(t *testing.T) {
	s, _ := newSignedServer(t, 14)
	members, rm := bootstrapSigned(t, s, 20)
	for i := 20; i < 24; i++ {
		if err := s.QueueJoin(MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	m := members[MemberID(2)]
	cred, _ := s.Credentials(MemberID(2))
	wire, _, _ := wireENCFor(t, rm, cred.NodeID)

	// Flipping any packet byte breaks the leaf hash.
	bad := append([]byte(nil), wire...)
	bad[packet.ENCHeaderLen+1] ^= 0x40
	if _, err := m.Ingest(bad); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("tampered ENC error = %v, want ErrBadPacket", err)
	}
	// A packet with its trailer cut off is rejected outright.
	if _, err := m.Ingest(wire[:packet.PacketLen]); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("trailerless ENC error = %v, want ErrBadPacket", err)
	}
	// A signature from the wrong key fails the (uncached) root check.
	otherSigner, err := keys.NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	inner, tr, err := packet.SplitAuth(wire)
	if err != nil {
		t.Fatal(err)
	}
	forgedSig, err := otherSigner.Sign([]byte("wrong root"))
	if err != nil {
		t.Fatal(err)
	}
	tr.Sig = forgedSig
	forged, err := tr.AppendAuthTrailer(append([]byte(nil), inner...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(forged); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("forged signature error = %v, want ErrBadPacket", err)
	}
	// The genuine datagram still works after all that.
	res, err := m.Ingest(wire)
	if err != nil || !res.Done {
		t.Fatalf("genuine ENC after forgeries: res=%+v err=%v", res, err)
	}
}

func TestAuthTamperedParityDropsBlockThenRecovers(t *testing.T) {
	s, _ := newSignedServer(t, 15)
	members, _ := bootstrapSigned(t, s, 80)
	for i := 80; i < 88; i++ {
		if err := s.QueueJoin(MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	m := members[MemberID(11)]
	cred, _ := s.Credentials(MemberID(11))
	_, block, _ := wireENCFor(t, rm, cred.NodeID)
	// k parity packets, one with a corrupted payload byte: the trailer
	// still verifies (parity bytes are not tree leaves), but the
	// decoded block must fail the block-root recheck and be dropped
	// rather than applied.
	for idx := 0; idx < rm.k; idx++ {
		wire, err := rm.AppendWireParity(nil, block, idx)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 1 {
			wire[packet.FECOffset+200] ^= 0x5a
		}
		res, err := m.Ingest(wire)
		if err != nil {
			t.Fatal(err)
		}
		if res.Done {
			t.Fatal("corrupted block was applied")
		}
	}
	if m.Done() {
		t.Fatal("member done despite corrupted parity")
	}
	// Honest retransmissions rebuild the dropped block from scratch.
	var last IngestResult
	for idx := 0; idx < rm.k; idx++ {
		wire, err := rm.AppendWireParity(nil, block, idx)
		if err != nil {
			t.Fatal(err)
		}
		last, err = m.Ingest(wire)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !last.Done || !last.Recovered {
		t.Fatalf("recovery after honest retransmission incomplete: %+v", last)
	}
	if gk, ok := m.GroupKey(); !ok || gk != s.GroupKey() {
		t.Fatal("wrong group key after poisoned-block recovery")
	}
}

func TestAuthOneSignaturePerInterval(t *testing.T) {
	reg := obs.New()
	s, _ := newSignedServer(t, 16, WithObs(reg))
	_, rm := bootstrapSigned(t, s, 120)
	snap := reg.Snapshot()
	h, ok := snap.Histograms["sign_root_s"]
	if !ok || h.Count != 1 {
		t.Fatalf("sign_root_s count = %+v, want exactly 1 signing per interval", h)
	}
	// Every ENC datagram and every block's parity trailer was measured.
	pb := snap.Histograms["merkle_proof_bytes"]
	if want := int64(len(rm.ENC) + rm.Blocks()); pb.Count != want {
		t.Fatalf("merkle_proof_bytes count = %d, want %d", pb.Count, want)
	}
}

func TestAuthTrailerIgnoredWithoutVerifier(t *testing.T) {
	s, _ := newSignedServer(t, 17)
	for i := 0; i < 25; i++ {
		if err := s.QueueJoin(MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	// A member without a verifier strips the trailer and proceeds.
	cred, _ := s.Credentials(MemberID(4))
	m, err := NewMember(cred)
	if err != nil {
		t.Fatal(err)
	}
	wire, _, _ := wireENCFor(t, rm, cred.NodeID)
	res, err := m.Ingest(wire)
	if err != nil || !res.Done {
		t.Fatalf("verifier-less member on trailered ENC: res=%+v err=%v", res, err)
	}
	if gk, ok := m.GroupKey(); !ok || gk != s.GroupKey() {
		t.Fatal("wrong group key")
	}
}

func TestVerifierRejectsUnsignedTraffic(t *testing.T) {
	s := newServer(t, 18)
	for i := 0; i < 10; i++ {
		if err := s.QueueJoin(MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	if rm.Authenticated() {
		t.Fatal("unsigned server claims authentication")
	}
	signer, err := keys.NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	cred, _ := s.Credentials(MemberID(1))
	m, err := NewMember(cred)
	if err != nil {
		t.Fatal(err)
	}
	m.SetVerifier(keys.NewRootVerifier(signer.Public()))
	p, ok := rm.PacketFor(cred.NodeID)
	if !ok {
		t.Fatal("no packet")
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(raw); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("unsigned ENC error = %v, want ErrBadPacket", err)
	}
}
