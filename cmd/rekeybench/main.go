// Command rekeybench regenerates the paper's evaluation figures.
//
// Usage:
//
//	rekeybench -list
//	rekeybench -exp f9-nacks-vs-rho
//	rekeybench -exp all [-quick] [-messages 25] [-seed 1]
//	rekeybench -scenario [-quick] [-scenario.out EXPERIMENTS.md]
//	rekeybench -scenario.check
//	rekeybench -strategy [-quick] [-strategy.out EXPERIMENTS.md]
//	rekeybench -strategy.check
//	rekeybench -shard [-quick] [-shard.out EXPERIMENTS.md]
//	rekeybench -shard.check
//
// Each experiment prints one text table per figure: series blocks of
// "x<TAB>y" rows, the same series the corresponding paper figure plots.
// -scenario runs the adversarial churn suite (flash crowd, diurnal,
// partition-rejoin, adversarial leave) under a matrix of network
// impairments with invariant oracles active, and prints (or writes into
// the "Scenarios beyond the paper" section of -scenario.out) a markdown
// comparison table. -scenario.check runs the quick-scale matrix as a
// pass/fail regression guard for CI. -strategy races every registered
// key tree placement strategy through the same matrix and renders the
// per-strategy encryptions/bytes/latency comparison; -strategy.check is
// its CI guard. -shard drives the same scenarios through the
// internal/shard coordinator at 1/2/4/8 shards (oracles active,
// mid-run snapshot failover, one shard's wire channel delivered over
// netsim per interval) and renders the scale-out table; -shard.check
// is its CI guard.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// scenarioMarker delimits the generated table inside -scenario.out.
const (
	scenarioBegin = "<!-- scenario-table:begin -->"
	scenarioEnd   = "<!-- scenario-table:end -->"
	strategyBegin = "<!-- strategy-table:begin -->"
	strategyEnd   = "<!-- strategy-table:end -->"
	shardBegin    = "<!-- shard-table:begin -->"
	shardEnd      = "<!-- shard-table:end -->"
)

// spliceTable replaces the region between begin/end markers in outFile
// with the table, or prints table with the header when outFile is "".
func spliceTable(outFile, begin, end, header, table string) error {
	if outFile == "" {
		fmt.Printf("%s\n\n%s", header, table)
		return nil
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		return err
	}
	doc := string(raw)
	lo := strings.Index(doc, begin)
	hi := strings.Index(doc, end)
	if lo < 0 || hi < 0 || hi < lo {
		return fmt.Errorf("%s: markers %q/%q not found", outFile, begin, end)
	}
	doc = doc[:lo+len(begin)] + "\n" + table + doc[hi:]
	if err := os.WriteFile(outFile, []byte(doc), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s; table written to %s\n", header, outFile)
	return nil
}

func runStrategySuite(opts experiments.Options, outFile string) error {
	start := time.Now()
	cells := experiments.RunStrategySuite(opts)
	table := experiments.StrategyMarkdown(cells)
	fail := 0
	for _, c := range cells {
		if !c.OK {
			fail++
		}
	}
	header := fmt.Sprintf("# strategy race — %d rows, %d failing, %v", len(cells), fail, time.Since(start).Round(time.Millisecond))
	if err := spliceTable(outFile, strategyBegin, strategyEnd, header, table); err != nil {
		return err
	}
	if fail > 0 {
		return fmt.Errorf("%d strategy rows failed", fail)
	}
	return nil
}

func runShardSuite(opts experiments.Options, outFile string) error {
	start := time.Now()
	cells := experiments.RunShardSuite(opts)
	table := experiments.ShardMarkdown(cells)
	fail := 0
	for _, c := range cells {
		if !c.OK {
			fail++
		}
	}
	header := fmt.Sprintf("# sharded scale-out — %d rows, %d failing, %v", len(cells), fail, time.Since(start).Round(time.Millisecond))
	if err := spliceTable(outFile, shardBegin, shardEnd, header, table); err != nil {
		return err
	}
	if fail > 0 {
		return fmt.Errorf("%d shard rows failed", fail)
	}
	return nil
}

func runScenarioSuite(opts experiments.Options, outFile string) error {
	start := time.Now()
	cells := experiments.RunScenarioSuite(opts)
	table := experiments.ScenarioMarkdown(cells)
	fail := 0
	for _, c := range cells {
		if !c.OK {
			fail++
		}
	}
	if outFile == "" {
		fmt.Printf("# scenario suite — %d cells, %d failing, %v\n\n%s", len(cells), fail, time.Since(start).Round(time.Millisecond), table)
	} else {
		raw, err := os.ReadFile(outFile)
		if err != nil {
			return err
		}
		doc := string(raw)
		lo := strings.Index(doc, scenarioBegin)
		hi := strings.Index(doc, scenarioEnd)
		if lo < 0 || hi < 0 || hi < lo {
			return fmt.Errorf("%s: markers %q/%q not found", outFile, scenarioBegin, scenarioEnd)
		}
		doc = doc[:lo+len(scenarioBegin)] + "\n" + table + doc[hi:]
		if err := os.WriteFile(outFile, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Printf("# scenario suite — %d cells, %d failing, %v; table written to %s\n", len(cells), fail, time.Since(start).Round(time.Millisecond), outFile)
	}
	if fail > 0 {
		return fmt.Errorf("%d scenario cells failed", fail)
	}
	return nil
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		exp      = flag.String("exp", "", "experiment ID to run, or 'all'")
		quick    = flag.Bool("quick", false, "reduced sweep sizes for a fast pass")
		messages = flag.Int("messages", 0, "rekey messages per configuration (default 25, 6 with -quick)")
		seed     = flag.Uint64("seed", 1, "random seed")
		scenario = flag.Bool("scenario", false, "run the adversarial churn scenario suite")
		scenOut  = flag.String("scenario.out", "", "write the scenario table into this file (between scenario-table markers)")
		scenChk  = flag.Bool("scenario.check", false, "quick-scale scenario matrix as a pass/fail regression guard")
		strat    = flag.Bool("strategy", false, "race every key tree placement strategy through the scenario matrix")
		stratOut = flag.String("strategy.out", "", "write the strategy table into this file (between strategy-table markers)")
		stratChk = flag.Bool("strategy.check", false, "quick-scale strategy race as a pass/fail regression guard")
		shardRun = flag.Bool("shard", false, "run the sharded scale-out suite (1/2/4/8 shards per scenario)")
		shardOut = flag.String("shard.out", "", "write the shard table into this file (between shard-table markers)")
		shardChk = flag.Bool("shard.check", false, "quick-scale shard suite as a pass/fail regression guard")
	)
	flag.Parse()

	if *shardChk {
		if err := experiments.ShardCheck(experiments.Options{Seed: *seed}); err != nil {
			fmt.Fprintf(os.Stderr, "rekeybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("shard check: all rows pass")
		return
	}
	if *shardRun {
		opts := experiments.Options{Seed: *seed, Quick: *quick}
		if err := runShardSuite(opts, *shardOut); err != nil {
			fmt.Fprintf(os.Stderr, "rekeybench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *stratChk {
		if err := experiments.StrategyCheck(experiments.Options{Seed: *seed}); err != nil {
			fmt.Fprintf(os.Stderr, "rekeybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("strategy check: all rows pass")
		return
	}
	if *strat {
		opts := experiments.Options{Seed: *seed, Quick: *quick}
		if err := runStrategySuite(opts, *stratOut); err != nil {
			fmt.Fprintf(os.Stderr, "rekeybench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *scenChk {
		if err := experiments.ScenarioCheck(experiments.Options{Seed: *seed}); err != nil {
			fmt.Fprintf(os.Stderr, "rekeybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("scenario check: all cells pass")
		return
	}
	if *scenario {
		opts := experiments.Options{Seed: *seed, Quick: *quick}
		if err := runScenarioSuite(opts, *scenOut); err != nil {
			fmt.Fprintf(os.Stderr, "rekeybench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-26s %-34s %s\n", e.ID, e.Paper, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{Messages: *messages, Seed: *seed, Quick: *quick}
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "rekeybench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		fmt.Printf("# %s — regenerates %s\n# %s\n", e.ID, e.Paper, e.Desc)
		figs, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rekeybench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, f := range figs {
			if err := experiments.Fprint(os.Stdout, f); err != nil {
				fmt.Fprintf(os.Stderr, "rekeybench: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("# %s finished in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
