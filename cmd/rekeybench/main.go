// Command rekeybench regenerates the paper's evaluation figures.
//
// Usage:
//
//	rekeybench -list
//	rekeybench -exp f9-nacks-vs-rho
//	rekeybench -exp all [-quick] [-messages 25] [-seed 1]
//
// Each experiment prints one text table per figure: series blocks of
// "x<TAB>y" rows, the same series the corresponding paper figure plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		exp      = flag.String("exp", "", "experiment ID to run, or 'all'")
		quick    = flag.Bool("quick", false, "reduced sweep sizes for a fast pass")
		messages = flag.Int("messages", 0, "rekey messages per configuration (default 25, 6 with -quick)")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-26s %-34s %s\n", e.ID, e.Paper, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{Messages: *messages, Seed: *seed, Quick: *quick}
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "rekeybench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		fmt.Printf("# %s — regenerates %s\n# %s\n", e.ID, e.Paper, e.Desc)
		figs, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rekeybench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, f := range figs {
			if err := experiments.Fprint(os.Stdout, f); err != nil {
				fmt.Fprintf(os.Stderr, "rekeybench: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("# %s finished in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
