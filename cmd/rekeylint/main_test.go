package main_test

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestGate builds the rekeylint binary and checks both sides of the CI
// gate: the repository itself must be clean (exit 0), and the
// known-bad module under testdata must fail (exit 1) with its planted
// findings reported.
func TestGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full multichecker; skipped with -short")
	}
	modRoot, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "rekeylint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/rekeylint")
	build.Dir = modRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rekeylint: %v\n%s", err, out)
	}

	t.Run("repo-clean", func(t *testing.T) {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = modRoot
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("rekeylint on the repository: %v\n%s", err, out)
		}
	})

	t.Run("badrepo-fails", func(t *testing.T) {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = filepath.Join(modRoot, "internal", "lint", "testdata", "badrepo")
		out, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("rekeylint on badrepo: want non-zero exit, got err=%v\n%s", err, out)
		}
		if ee.ExitCode() != 1 {
			t.Fatalf("rekeylint on badrepo: want exit 1, got %d\n%s", ee.ExitCode(), out)
		}
		text := string(out)
		for _, frag := range []string{"math/rand", "ErrBoom is compared with =="} {
			if !strings.Contains(text, frag) {
				t.Errorf("badrepo output missing %q:\n%s", frag, text)
			}
		}
	})

	t.Run("zero-match-pattern-errors", func(t *testing.T) {
		cmd := exec.Command(bin, "./no/such/dir")
		cmd.Dir = modRoot
		out, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Fatalf("zero-match pattern: want exit 2, got err=%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "matched no packages") {
			t.Errorf("zero-match output missing explanation:\n%s", out)
		}
	})

	t.Run("unknown-analyzer-errors", func(t *testing.T) {
		cmd := exec.Command(bin, "-only", "nosuchanalyzer", "./...")
		cmd.Dir = modRoot
		out, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Fatalf("unknown analyzer: want exit 2, got err=%v\n%s", err, out)
		}
	})

	t.Run("list-includes-module-analyzers", func(t *testing.T) {
		cmd := exec.Command(bin, "-list")
		cmd.Dir = modRoot
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("rekeylint -list: %v\n%s", err, out)
		}
		for _, name := range []string{"keyflow", "lockorder", "escapes", "hotpathalloc"} {
			if !strings.Contains(string(out), name) {
				t.Errorf("-list output missing analyzer %q:\n%s", name, out)
			}
		}
	})

	t.Run("ignores-audit", func(t *testing.T) {
		cmd := exec.Command(bin, "-ignores", "./internal/protocol")
		cmd.Dir = modRoot
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("rekeylint -ignores: %v\n%s", err, out)
		}
		text := string(out)
		if !strings.Contains(text, "sendbuf.go") || !strings.Contains(text, "[used]") {
			t.Errorf("-ignores output missing the sendbuf suppressions:\n%s", text)
		}
		if strings.Contains(text, "STALE") {
			t.Errorf("-ignores reports a stale suppression in internal/protocol:\n%s", text)
		}
	})
}
