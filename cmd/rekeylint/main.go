// Command rekeylint is the project's multichecker: it runs the full
// internal/lint analyzer suite -- per-package checks plus the
// module-wide keyflow / lockorder / escapes analyzers -- over package
// patterns and exits non-zero on any finding, which is what makes it a
// CI gate.
//
// Usage:
//
//	go run ./cmd/rekeylint ./...            # whole module (the CI gate)
//	go run ./cmd/rekeylint ./internal/fec   # one package
//	go run ./cmd/rekeylint -list            # show the analyzer suite
//	go run ./cmd/rekeylint -only keyflow ./...
//	go run ./cmd/rekeylint -ignores ./...   # audit every suppression
//
// Patterns are resolved relative to the module root (found by walking
// up from the working directory to go.mod); `dir/...` recurses,
// skipping testdata, and a pattern matching no packages is an error
// (exit 2), not a silent pass. Findings print as file:line:col:
// analyzer: message. A finding is silenced only by fixing it or by a
// reviewed `//rekeylint:ignore <reason>` comment on the same line or
// the line above -- an ignore without a reason is itself a finding,
// and when the full suite runs, so is an ignore that suppresses
// nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	ignores := flag.Bool("ignores", false, "print every //rekeylint:ignore with file:line, reason and whether it suppressed anything")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rekeylint [-list] [-only names] [-ignores] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	modAnalyzers := lint.DefaultModuleAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		for _, ma := range modAnalyzers {
			fmt.Printf("%-13s %s\n", ma.Name, ma.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var as []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				as = append(as, a)
				delete(want, a.Name)
			}
		}
		var mas []*lint.ModuleAnalyzer
		for _, ma := range modAnalyzers {
			if want[ma.Name] {
				mas = append(mas, ma)
				delete(want, ma.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "rekeylint: unknown analyzer %q (see -list)\n", name)
			os.Exit(2)
		}
		analyzers, modAnalyzers = as, mas
	}

	modRoot, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rekeylint: %v\n", err)
		os.Exit(2)
	}
	res, err := lint.RunFull(modRoot, flag.Args(), analyzers, modAnalyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rekeylint: %v\n", err)
		os.Exit(2)
	}
	if *ignores {
		for _, e := range res.Ignores {
			status := "used"
			if !e.Used {
				status = "STALE"
			}
			fmt.Printf("%s:%d: [%s] %s\n", e.Pos.Filename, e.Pos.Line, status, e.Reason)
		}
		fmt.Fprintf(os.Stderr, "rekeylint: %d ignore(s)\n", len(res.Ignores))
	}
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "rekeylint: %d finding(s)\n", len(res.Diags))
		os.Exit(1)
	}
}
