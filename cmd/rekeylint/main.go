// Command rekeylint is the project's multichecker: it runs the full
// internal/lint analyzer suite over package patterns and exits
// non-zero on any finding, which is what makes it a CI gate.
//
// Usage:
//
//	go run ./cmd/rekeylint ./...          # whole module (the CI gate)
//	go run ./cmd/rekeylint ./internal/fec # one package
//	go run ./cmd/rekeylint -list          # show the analyzer suite
//
// Patterns are resolved relative to the module root (found by walking
// up from the working directory to go.mod); `dir/...` recurses,
// skipping testdata. Findings print as file:line:col: analyzer:
// message. A finding is silenced only by fixing it or by a reviewed
// `//rekeylint:ignore <reason>` comment on the same line or the line
// above -- and an ignore without a reason is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rekeylint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	modRoot, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rekeylint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(modRoot, flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rekeylint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rekeylint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
