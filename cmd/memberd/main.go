// Command memberd runs one group member against a keyserverd instance:
// it registers over the control port, then receives rekey packets over
// UDP, printing a fingerprint of each new group key it derives.
//
// Usage:
//
//	memberd -id 42 -server-udp 127.0.0.1:PORT [-ctl 127.0.0.1:7700] [-http 127.0.0.1:0] [-once]
//
// keyserverd logs its transport UDP address at startup; pass it as
// -server-udp so the member's NACKs reach the right socket. The HTTP
// port serves the member-side observability registry (/metrics and
// /trace): packets received by type, NACKs sent, FEC recoveries, and
// MemberDone trace events. SIGINT/SIGTERM stop the receive loop.
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	rekey "repro"
	"repro/internal/keys"
	"repro/internal/obs"
	"repro/internal/udptrans"
)

func main() {
	var (
		id       = flag.Int64("id", 0, "member ID (required)")
		ctl      = flag.String("ctl", "127.0.0.1:7700", "key server control (TCP) address")
		srvUDPs  = flag.String("server-udp", "", "key server transport (UDP) address (required)")
		httpAddr = flag.String("http", "", "metrics/trace (HTTP) listen address ('' disables)")
		once     = flag.Bool("once", false, "exit after deriving the first group key")
	)
	flag.Parse()
	if *id <= 0 {
		log.Fatal("memberd: -id is required and must be positive")
	}
	if *srvUDPs == "" {
		log.Fatal("memberd: -server-udp is required (keyserverd logs it at startup)")
	}
	srvUDP, err := net.ResolveUDPAddr("udp", *srvUDPs)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Bind the member's UDP socket BEFORE registering: packets the
	// server distributes while the JOIN reply is in flight queue in the
	// socket buffer and are drained once the client runs.
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	myAddr := sock.LocalAddr().String()

	conn, err := net.Dial("tcp", *ctl)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "JOIN %d %s\n", *id, myAddr)
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		log.Fatal(err)
	}
	fields := strings.Fields(line)
	if len(fields) != 5 || fields[0] != "OK" {
		log.Fatalf("memberd: registration failed: %s", strings.TrimSpace(line))
	}
	nodeID, _ := strconv.Atoi(fields[1])
	keyHex, _ := hex.DecodeString(fields[2])
	degree, _ := strconv.Atoi(fields[3])
	blockSize, _ := strconv.Atoi(fields[4])
	var ik keys.Key
	copy(ik[:], keyHex)

	cred := rekey.Credentials{
		Member: rekey.MemberID(*id), NodeID: nodeID, Key: ik,
		Degree: degree, BlockSize: blockSize,
	}
	client, err := udptrans.NewClientOnConn(cred, srvUDP, sock)
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.New()
	client.Obs = reg
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		hsrv := &http.Server{Handler: reg.ServeMux()}
		go hsrv.Serve(hln) //nolint:errcheck
		go func() {
			<-ctx.Done()
			hsrv.Close()
		}()
		log.Printf("memberd %d: metrics on http://%s/metrics", *id, hln.Addr())
	}
	log.Printf("memberd %d: node %d, listening on %s", *id, nodeID, myAddr)
	go client.Run(ctx) //nolint:errcheck
	defer client.Close()

	var last keys.Key
	var have bool
	for ctx.Err() == nil {
		gk, ok := client.Member.GroupKey()
		if ok && (!have || !gk.Equal(last)) {
			last, have = gk, true
			fmt.Printf("member %d: group key %s\n", *id, gk.String())
			if *once {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("memberd %d: shutting down", *id)
}
