// Command keyserverd runs a group key server over UDP on one host.
//
// It listens on a control TCP port for registration ("JOIN <id> <udp
// addr>" / "LEAVE <id>" lines) and periodically processes the queued
// batch, distributing each rekey message to the registered members via
// the UDP rekey transport. It is the wire-facing counterpart of the
// simulation harness: the same server protocol, driven by a clock
// instead of a simulated network.
//
// Usage:
//
//	keyserverd [-ctl 127.0.0.1:7700] [-udp 127.0.0.1:0] [-http 127.0.0.1:0] [-interval 2s] [-rho 1.2] [-k 10]
//
// Protocol on the control port (one command per line):
//
//	JOIN <member-id> <udp-host:port>   -> "OK <nodeID> <hexkey> <degree> <k>" after next rekey
//	LEAVE <member-id>                  -> "OK"
//	REKEY                              -> force an immediate batch
//	STATUS                             -> group size, pending counts
//
// The HTTP port serves the live observability registry: GET /metrics
// returns counters/gauges/histograms (packets sent by type, NACKs per
// round, rho, rekey build times, ...) as JSON, and GET /trace returns
// the recent typed protocol events (RoundStart, NACKReceived,
// SwitchToUnicast, ...). SIGINT/SIGTERM shut the daemon down cleanly,
// aborting any in-flight distribution.
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	rekey "repro"
	"repro/internal/obs"
	"repro/internal/udptrans"
)

type daemon struct {
	mu      sync.Mutex
	ks      *rekey.Server
	tr      *udptrans.Server
	opts    udptrans.Options
	pending map[rekey.MemberID]*net.UDPAddr // joiners awaiting the next batch
}

func main() {
	var (
		ctl      = flag.String("ctl", "127.0.0.1:7700", "control (TCP) listen address")
		udp      = flag.String("udp", "127.0.0.1:0", "rekey transport (UDP) listen address")
		httpAddr = flag.String("http", "127.0.0.1:0", "metrics/trace (HTTP) listen address ('' disables)")
		interval = flag.Duration("interval", 2*time.Second, "rekey interval")
		rho      = flag.Float64("rho", 1.2, "proactivity factor rho0")
		k        = flag.Int("k", 10, "FEC block size")
		workers  = flag.Int("workers", 0, "parity encode workers (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 0, "deterministic key seed (0 = crypto/rand)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	reg := obs.New()
	tun := rekey.DefaultTuning()
	tun.K = *k
	tun.InitialRho = *rho
	tun.Workers = *workers
	ks, err := rekey.NewServer(rekey.WithTuning(tun), rekey.WithKeySeed(*seed), rekey.WithObs(reg))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := udptrans.NewServer(ks, *udp)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	d := &daemon{ks: ks, tr: tr, opts: udptrans.DefaultOptions(), pending: make(map[rekey.MemberID]*net.UDPAddr)}

	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		hsrv := &http.Server{Handler: reg.ServeMux()}
		go hsrv.Serve(hln) //nolint:errcheck
		go func() {
			<-ctx.Done()
			hsrv.Close()
		}()
		log.Printf("keyserverd: metrics on http://%s/metrics (trace on /trace)", hln.Addr())
	}

	ln, err := net.Listen("tcp", *ctl)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("keyserverd: control on %s, transport on %s, interval %v", ln.Addr(), tr.Addr(), *interval)

	go func() {
		tick := time.NewTicker(*interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if err := d.rekey(ctx); err != nil &&
					!errors.Is(err, rekey.ErrNoChange) && !errors.Is(err, context.Canceled) {
					log.Printf("rekey: %v", err)
				}
			}
		}
	}()

	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				log.Printf("keyserverd: shutting down")
				return
			}
			log.Fatal(err)
		}
		go d.serveCtl(ctx, conn)
	}
}

func (d *daemon) rekey(ctx context.Context) error {
	d.mu.Lock()
	rm, err := d.ks.Rekey()
	if err != nil {
		d.mu.Unlock()
		return err
	}
	// Joiners become addressable members now.
	for id, addr := range d.pending {
		d.tr.SetMemberAddr(id, addr)
		delete(d.pending, id)
	}
	d.mu.Unlock()
	st, err := d.tr.Distribute(ctx, rm, d.opts)
	if err != nil {
		return err
	}
	log.Printf("rekey msg %d: %d ENC, %d PARITY, %d USR, %d rounds, group size %d",
		rm.MsgID, st.EncSent, st.ParitySent, st.UsrSent, st.Rounds, d.ks.N())
	return nil
}

func (d *daemon) serveCtl(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		reply := d.handle(ctx, fields)
		fmt.Fprintln(conn, reply)
	}
}

// handle executes one control-channel command and returns the reply
// line.
//
//rekeylint:declassify the REGISTER reply delivers the member its own individual key over the control channel by design
func (d *daemon) handle(ctx context.Context, fields []string) string {
	switch strings.ToUpper(fields[0]) {
	case "JOIN":
		if len(fields) != 3 {
			return "ERR usage: JOIN <id> <udp-addr>"
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "ERR bad member id"
		}
		addr, err := net.ResolveUDPAddr("udp", fields[2])
		if err != nil {
			return "ERR bad udp addr"
		}
		d.mu.Lock()
		err = d.ks.QueueJoin(rekey.MemberID(id))
		if err == nil {
			d.pending[rekey.MemberID(id)] = addr
		}
		d.mu.Unlock()
		if err != nil {
			return "ERR " + err.Error()
		}
		// Registration completes at the next batch; blocks until then.
		for i := 0; i < 100 && ctx.Err() == nil; i++ {
			if cred, ok := d.ks.Credentials(rekey.MemberID(id)); ok {
				return fmt.Sprintf("OK %d %s %d %d", cred.NodeID, hex.EncodeToString(cred.Key[:]), cred.Degree, cred.BlockSize)
			}
			time.Sleep(100 * time.Millisecond)
		}
		return "ERR registration timed out"
	case "LEAVE":
		if len(fields) != 2 {
			return "ERR usage: LEAVE <id>"
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "ERR bad member id"
		}
		d.mu.Lock()
		err = d.ks.QueueLeave(rekey.MemberID(id))
		if err == nil {
			d.tr.RemoveMemberAddr(rekey.MemberID(id))
		}
		d.mu.Unlock()
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "REKEY":
		if err := d.rekey(ctx); err != nil && !errors.Is(err, rekey.ErrNoChange) {
			return "ERR " + err.Error()
		}
		return "OK"
	case "STATUS":
		j, l := d.ks.Pending()
		return fmt.Sprintf("OK n=%d pendingJoins=%d pendingLeaves=%d", d.ks.N(), j, l)
	default:
		return "ERR unknown command"
	}
}
