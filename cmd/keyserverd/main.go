// Command keyserverd runs a group key server over UDP on one host.
//
// It listens on a control TCP port for registration ("JOIN <id> <udp
// addr>" / "LEAVE <id>" lines) and periodically processes the queued
// batch, distributing each rekey message to the registered members via
// the UDP rekey transport. It is the wire-facing counterpart of the
// simulation harness: the same server protocol, driven by a clock
// instead of a simulated network.
//
// Usage:
//
//	keyserverd [-ctl 127.0.0.1:7700] [-udp 127.0.0.1:0] [-interval 2s] [-rho 1.2] [-k 10]
//
// Protocol on the control port (one command per line):
//
//	JOIN <member-id> <udp-host:port>   -> "OK <nodeID> <hexkey> <degree> <k>" after next rekey
//	LEAVE <member-id>                  -> "OK"
//	REKEY                              -> force an immediate batch
//	STATUS                             -> group size, pending counts
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	rekey "repro"
	"repro/internal/udptrans"
)

type daemon struct {
	mu      sync.Mutex
	ks      *rekey.Server
	tr      *udptrans.Server
	opts    udptrans.Options
	pending map[rekey.MemberID]*net.UDPAddr // joiners awaiting the next batch
}

func main() {
	var (
		ctl      = flag.String("ctl", "127.0.0.1:7700", "control (TCP) listen address")
		udp      = flag.String("udp", "127.0.0.1:0", "rekey transport (UDP) listen address")
		interval = flag.Duration("interval", 2*time.Second, "rekey interval")
		rho      = flag.Float64("rho", 1.2, "proactivity factor")
		k        = flag.Int("k", 10, "FEC block size")
		seed     = flag.Uint64("seed", 0, "deterministic key seed (0 = crypto/rand)")
	)
	flag.Parse()

	ks, err := rekey.NewServer(rekey.Config{BlockSize: *k, KeySeed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := udptrans.NewServer(ks, *udp)
	if err != nil {
		log.Fatal(err)
	}
	opts := udptrans.DefaultOptions()
	opts.Rho = *rho
	d := &daemon{ks: ks, tr: tr, opts: opts, pending: make(map[rekey.MemberID]*net.UDPAddr)}

	ln, err := net.Listen("tcp", *ctl)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("keyserverd: control on %s, transport on %s, interval %v", ln.Addr(), tr.Addr(), *interval)

	go func() {
		tick := time.NewTicker(*interval)
		defer tick.Stop()
		for range tick.C {
			if err := d.rekey(); err != nil && err != rekey.ErrNoChange {
				log.Printf("rekey: %v", err)
			}
		}
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go d.serveCtl(conn)
	}
}

func (d *daemon) rekey() error {
	d.mu.Lock()
	rm, err := d.ks.Rekey()
	if err != nil {
		d.mu.Unlock()
		return err
	}
	// Joiners become addressable members now.
	for id, addr := range d.pending {
		d.tr.SetMemberAddr(id, addr)
		delete(d.pending, id)
	}
	d.mu.Unlock()
	st, err := d.tr.Distribute(rm, d.opts)
	if err != nil {
		return err
	}
	log.Printf("rekey msg %d: %d ENC, %d PARITY, %d USR, %d rounds, group size %d",
		rm.MsgID, st.EncSent, st.ParitySent, st.UsrSent, st.Rounds, d.ks.N())
	return nil
}

func (d *daemon) serveCtl(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		reply := d.handle(fields)
		fmt.Fprintln(conn, reply)
	}
}

func (d *daemon) handle(fields []string) string {
	switch strings.ToUpper(fields[0]) {
	case "JOIN":
		if len(fields) != 3 {
			return "ERR usage: JOIN <id> <udp-addr>"
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "ERR bad member id"
		}
		addr, err := net.ResolveUDPAddr("udp", fields[2])
		if err != nil {
			return "ERR bad udp addr"
		}
		d.mu.Lock()
		err = d.ks.QueueJoin(rekey.MemberID(id))
		if err == nil {
			d.pending[rekey.MemberID(id)] = addr
		}
		d.mu.Unlock()
		if err != nil {
			return "ERR " + err.Error()
		}
		// Registration completes at the next batch; blocks until then.
		for i := 0; i < 100; i++ {
			if cred, ok := d.ks.Credentials(rekey.MemberID(id)); ok {
				return fmt.Sprintf("OK %d %s %d %d", cred.NodeID, hex.EncodeToString(cred.Key[:]), cred.Degree, cred.BlockSize)
			}
			time.Sleep(100 * time.Millisecond)
		}
		return "ERR registration timed out"
	case "LEAVE":
		if len(fields) != 2 {
			return "ERR usage: LEAVE <id>"
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "ERR bad member id"
		}
		d.mu.Lock()
		err = d.ks.QueueLeave(rekey.MemberID(id))
		if err == nil {
			d.tr.RemoveMemberAddr(rekey.MemberID(id))
		}
		d.mu.Unlock()
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "REKEY":
		if err := d.rekey(); err != nil && err != rekey.ErrNoChange {
			return "ERR " + err.Error()
		}
		return "OK"
	case "STATUS":
		j, l := d.ks.Pending()
		return fmt.Sprintf("OK n=%d pendingJoins=%d pendingLeaves=%d", d.ks.N(), j, l)
	default:
		return "ERR unknown command"
	}
}
