// Command fecbench measures the FEC hot path -- GF(2^8) kernels,
// one-block encode, and the multi-block worker pool -- and writes the
// results as JSON. Committed as BENCH_fec.json at the repo root, the
// file is the baseline later PRs compare against:
//
//	go run ./cmd/fecbench -out BENCH_fec.json
//
// With -obs it also prices the observability layer's no-op path (a
// counter increment on a nil *obs.Registry threaded through a packet
// fan-out loop) and records the overhead percentage vs the same loop
// with no instrumentation calls at all.
//
// With -server it additionally measures the server's batch rekey
// pipeline (parallel vs the sequential reference; -server.big adds the
// 2^20-member batch) and the missing-shard-only FEC decoder vs the
// full-inverse reference; -server.check turns the N=4096 comparison
// into a CI guard that fails when the parallel pipeline falls behind.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"

	"repro/internal/fec"
	"repro/internal/gf256"
	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Result is one benchmark row.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
}

// Baseline is the file schema.
type Baseline struct {
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Kernel     string   `json:"gf256_kernel"`
	GoVersion  string   `json:"go_version"`
	Results    []Result `json:"results"`
	SpeedupRef float64  `json:"mul_add_speedup_vs_ref_1027B"`
	// ObsNilOverheadPct is the cost of per-packet instrumentation calls
	// on a nil *obs.Registry over the same loop without them, in percent
	// (measured with -obs; the acceptance bound is < 2%).
	ObsNilOverheadPct *float64 `json:"obs_nil_overhead_pct,omitempty"`
}

func run(name string, bytes int, f func(b *testing.B)) Result {
	r := testing.Benchmark(f)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return Result{
		Name:    name,
		NsPerOp: ns,
		MBPerS:  float64(bytes) / ns * 1e3, // bytes/ns -> MB/s (1e6 bytes)
	}
}

func randData(rng *rand.Rand, k, plen int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, plen)
		for j := range data[i] {
			data[i][j] = byte(rng.Uint32())
		}
	}
	return data
}

// serverResults appends the server-side rows: the batch rekey pipeline
// (parallel and sequential reference) at N=4096 and optionally 2^20,
// and the missing-shard FEC decoder against the full-inverse reference
// at 1 and k/2 losses. With check set, a parallel pipeline slower than
// 1.25x the sequential reference at N=4096 aborts the run: that guard
// is the CI tripwire against the fan-out machinery regressing below
// the path it replaced.
func serverResults(bl *Baseline, rng *rand.Rand, big, check bool) {
	sizes := []int{4096}
	if big {
		sizes = append(sizes, 1<<20)
	}
	for _, n := range sizes {
		base := keytree.New(4, keys.NewDeterministicGenerator(uint64(n)))
		joins := make([]keytree.Member, n)
		for i := range joins {
			joins[i] = keytree.Member(i)
		}
		if _, err := base.ProcessBatch(joins, nil); err != nil {
			panic(err)
		}
		perm := rng.Perm(n)[:n/4]
		leaves := make([]keytree.Member, len(perm))
		for i, p := range perm {
			leaves[i] = keytree.Member(p)
		}
		batch := func(seq bool) Result {
			name := fmt.Sprintf("ProcessBatch/N=%d,J=0,L=N÷4", n)
			if seq {
				name += "/seq"
			}
			return run(name, 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tr := base.Clone()
					b.StartTimer()
					var err error
					if seq {
						_, err = tr.ProcessBatchSeq(nil, leaves)
					} else {
						_, err = tr.ProcessBatch(nil, leaves)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		// A sub-second op runs only once or twice per testing.Benchmark
		// call, so a single run is at the mercy of scheduler noise and
		// first-touch page faults on the ~0.5 GB heap; take the best of
		// two runs, which converges to each path's true floor.
		best := func(seq bool) Result {
			r := batch(seq)
			if r2 := batch(seq); r2.NsPerOp < r.NsPerOp {
				r = r2
			}
			return r
		}
		par, seq := best(false), best(true)
		bl.Results = append(bl.Results, par, seq)
		if check && n == 4096 && par.NsPerOp > seq.NsPerOp*1.25 {
			fmt.Fprintf(os.Stderr,
				"fecbench: parallel ProcessBatch (%.0f ns/op) slower than 1.25x sequential reference (%.0f ns/op) at N=4096\n",
				par.NsPerOp, seq.NsPerOp)
			os.Exit(1)
		}
	}

	const k, plen = 10, 1027
	coder, err := fec.NewCoder(k, k)
	if err != nil {
		panic(err)
	}
	data := randData(rng, k, plen)
	parity, err := coder.EncodeAll(data, 0, k)
	if err != nil {
		panic(err)
	}
	for _, nLoss := range []int{1, k / 2} {
		var shards []fec.Shard
		for j := nLoss; j < k; j++ {
			shards = append(shards, fec.Shard{Index: j, Data: data[j]})
		}
		for i := 0; i < nLoss; i++ {
			shards = append(shards, fec.Shard{Index: k + i, Data: parity[i]})
		}
		outBuf := make([][]byte, k)
		bl.Results = append(bl.Results, run(
			fmt.Sprintf("FECDecode/loss=%d", nLoss), k*plen,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := coder.DecodeInto(outBuf, shards); err != nil {
						b.Fatal(err)
					}
				}
			}))
		bl.Results = append(bl.Results, run(
			fmt.Sprintf("FECDecode/loss=%d/ref", nLoss), k*plen,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := coder.RefDecode(shards); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}
}

func main() {
	out := flag.String("out", "BENCH_fec.json", "output file ('-' for stdout)")
	withObs := flag.Bool("obs", false, "also measure the obs no-op instrumentation overhead")
	server := flag.Bool("server", false, "also measure the server batch-rekey pipeline and the missing-shard decoder")
	serverBig := flag.Bool("server.big", false, "with -server: include the 2^20-member batch (slow)")
	serverCheck := flag.Bool("server.check", false, "with -server: exit nonzero if the parallel pipeline falls behind 1.25x the sequential reference at N=4096")
	flag.Parse()

	bl := Baseline{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Kernel:    gf256.KernelName(),
		GoVersion: runtime.Version(),
	}
	rng := rand.New(rand.NewPCG(1, 1))

	var kernel1027, ref1027 float64
	for _, n := range []int{64, 1027, 8192} {
		src, dst := make([]byte, n), make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Uint32())
		}
		res := run(fmt.Sprintf("MulAddSlice/kernel/%dB", n), n, func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				gf256.MulAddSlice(dst, src, 0x57)
			}
		})
		bl.Results = append(bl.Results, res)
		if n == 1027 {
			kernel1027 = res.NsPerOp
		}
		res = run(fmt.Sprintf("MulAddSlice/ref/%dB", n), n, func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				gf256.RefMulAddSlice(dst, src, 0x57)
			}
		})
		bl.Results = append(bl.Results, res)
		if n == 1027 {
			ref1027 = res.NsPerOp
		}
	}
	if kernel1027 > 0 {
		bl.SpeedupRef = ref1027 / kernel1027
	}

	for _, k := range []int{1, 5, 10, 20, 50} {
		for _, plen := range []int{64, 1027, 8192} {
			coder, err := fec.NewCoder(k, k)
			if err != nil {
				panic(err)
			}
			data := randData(rng, k, plen)
			bl.Results = append(bl.Results, run(
				fmt.Sprintf("FECEncode/k%d/%dB", k, plen), k*plen,
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := coder.EncodeAll(data, 0, k); err != nil {
							b.Fatal(err)
						}
					}
				}))
		}
	}

	const blocks, k, plen = 32, 10, 1027
	coder, err := fec.NewCoder(k, fec.MaxShards-k)
	if err != nil {
		panic(err)
	}
	reqs := make([]protocol.BlockParity, blocks)
	for b := range reqs {
		reqs[b] = protocol.BlockParity{Data: randData(rng, k, plen), First: 0, N: k / 2}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		bl.Results = append(bl.Results, run(
			fmt.Sprintf("FECEncodeParallel/blocks%d/workers%d", blocks, workers), blocks*k*plen,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := protocol.EncodeBlocks(context.Background(), coder, reqs, workers); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}

	if *server {
		serverResults(&bl, rng, *serverBig, *serverCheck)
	}

	if *withObs {
		// The transport's per-packet instrumentation is one counter
		// increment next to ~1us of marshal/encode work; reproduce that
		// ratio with a k=10 block encode plus one Inc per shard, against
		// a nil registry (the path every unobserved run takes).
		const ok, oplen = 10, 1027
		ocoder, err := fec.NewCoder(ok, ok)
		if err != nil {
			panic(err)
		}
		odata := randData(rng, ok, oplen)
		var nilReg *obs.Registry
		baseFn := func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ocoder.EncodeAll(odata, 0, ok); err != nil {
					b.Fatal(err)
				}
			}
		}
		instrFn := func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ocoder.EncodeAll(odata, 0, ok); err != nil {
					b.Fatal(err)
				}
				for s := 0; s < ok; s++ {
					nilReg.Inc(obs.CParitySent)
				}
			}
		}
		// The per-call delta (~1ns of nil check per ~1us of encode) is
		// far below single-run scheduler noise, so interleave several
		// runs of each loop and difference the minima, which converge to
		// each loop's true floor.
		base := run("ObsOverhead/baseline", ok*oplen, baseFn)
		instr := run("ObsOverhead/nilreg", ok*oplen, instrFn)
		for rep := 0; rep < 4; rep++ {
			if r := run("ObsOverhead/baseline", ok*oplen, baseFn); r.NsPerOp < base.NsPerOp {
				base = r
			}
			if r := run("ObsOverhead/nilreg", ok*oplen, instrFn); r.NsPerOp < instr.NsPerOp {
				instr = r
			}
		}
		bl.Results = append(bl.Results, base, instr)
		pct := (instr.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		bl.ObsNilOverheadPct = &pct
	}

	enc, err := json.MarshalIndent(&bl, "", "  ")
	if err != nil {
		panic(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (kernel=%s, MulAddSlice 1027B speedup vs ref: %.1fx)\n", *out, bl.Kernel, bl.SpeedupRef)
	if bl.ObsNilOverheadPct != nil {
		fmt.Printf("obs nil-registry overhead: %+.2f%%\n", *bl.ObsNilOverheadPct)
	}
}
