// Command fecbench measures the FEC hot path -- GF(2^8) kernels,
// one-block encode, and the multi-block worker pool -- and writes the
// results as JSON. Committed as BENCH_fec.json at the repo root, the
// file is the baseline later PRs compare against:
//
//	go run ./cmd/fecbench -out BENCH_fec.json
//
// With -obs it also prices the observability layer's no-op path (a
// counter increment on a nil *obs.Registry threaded through a packet
// fan-out loop) and records the overhead percentage vs the same loop
// with no instrumentation calls at all.
//
// With -server it additionally measures the server's batch rekey
// pipeline (parallel vs the sequential reference; -server.big adds the
// 2^20-member batch) and the missing-shard-only FEC decoder vs the
// full-inverse reference; -server.check turns the N=4096 comparison
// into a CI guard that fails when the parallel pipeline falls behind.
//
// With -sign it measures the amortized interval-signing primitives:
// the per-interval RSA root signature, root verification, Merkle tree
// build, and the per-packet O(log n) inclusion-proof verify at several
// leaf counts; -sign.check turns the amortization ratio into a CI
// guard that fails when a per-packet proof verify stops being at least
// 10x cheaper than the per-interval RSA signature it replaces.
//
// The MulAddSlice section runs once per runtime-available kernel tier
// (generic/ssse3/avx2/gfni), recording the kernel in each row, so the
// baseline shows exactly which SIMD path produced which number.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"

	"repro/internal/fec"
	"repro/internal/gf256"
	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Result is one benchmark row.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
	// Kernel is the GF(2^8) kernel active while the row ran, for rows
	// whose speed depends on it; "" for rows that never touch GF math.
	Kernel string `json:"kernel,omitempty"`
	// Workers is the worker-pool width for fan-out rows; 0 elsewhere.
	Workers int `json:"workers,omitempty"`
}

// Baseline is the file schema.
type Baseline struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// NumCPU is runtime.NumCPU() -- the machine's logical CPU count --
	// while GOMAXPROCS is the scheduler width the run actually had;
	// fan-out rows additionally record their own worker count, so a
	// baseline from a constrained container is not mistaken for one
	// measured at full machine width.
	NumCPU      int      `json:"num_cpu"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Kernel      string   `json:"gf256_kernel"`
	CPUFeatures []string `json:"cpu_features"`
	GoVersion   string   `json:"go_version"`
	Results     []Result `json:"results"`
	SpeedupRef  float64  `json:"mul_add_speedup_vs_ref_1027B"`
	// Speedup8KvsSSSE3 maps each wider kernel to its 8 KiB MulAddSlice
	// speedup over the ssse3 tier on the same machine (the tentpole
	// acceptance bound is >= 1.5x for avx2 and gfni where available).
	Speedup8KvsSSSE3 map[string]float64 `json:"mul_add_speedup_vs_ssse3_8192B,omitempty"`
	// SignAmortRatio is the per-interval RSA root signature cost over
	// the per-packet Merkle proof verify cost at 4096 leaves: how many
	// times cheaper each packet's verification is than the signature it
	// amortizes (measured with -sign; -sign.check requires >= 10).
	SignAmortRatio *float64 `json:"sign_root_vs_proof_verify,omitempty"`
	// ObsNilOverheadPct is the cost of per-packet instrumentation calls
	// on a nil *obs.Registry over the same loop without them, in percent
	// (measured with -obs; the acceptance bound is < 2%).
	ObsNilOverheadPct *float64 `json:"obs_nil_overhead_pct,omitempty"`
}

func run(name string, bytes int, f func(b *testing.B)) Result {
	r := testing.Benchmark(f)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return Result{
		Name:    name,
		NsPerOp: ns,
		MBPerS:  float64(bytes) / ns * 1e3, // bytes/ns -> MB/s (1e6 bytes)
	}
}

func randData(rng *rand.Rand, k, plen int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, plen)
		for j := range data[i] {
			data[i][j] = byte(rng.Uint32())
		}
	}
	return data
}

// serverResults appends the server-side rows: the batch rekey pipeline
// (parallel and sequential reference) at N=4096 and optionally 2^20,
// and the missing-shard FEC decoder against the full-inverse reference
// at 1 and k/2 losses. With check set, a parallel pipeline slower than
// 1.25x the sequential reference at N=4096 aborts the run: that guard
// is the CI tripwire against the fan-out machinery regressing below
// the path it replaced. Both sides of the comparison are measured in
// this same process under the same dispatched GF(2^8) kernel (recorded
// per row), so the gate is always like-for-like -- it never compares a
// fresh run against a baseline file produced by different hardware.
func serverResults(bl *Baseline, rng *rand.Rand, big, check bool) {
	sizes := []int{4096}
	if big {
		sizes = append(sizes, 1<<20)
	}
	for _, n := range sizes {
		base := keytree.New(4, keys.NewDeterministicGenerator(uint64(n)))
		joins := make([]keytree.Member, n)
		for i := range joins {
			joins[i] = keytree.Member(i)
		}
		if _, err := base.ProcessBatch(joins, nil); err != nil {
			panic(err)
		}
		perm := rng.Perm(n)[:n/4]
		leaves := make([]keytree.Member, len(perm))
		for i, p := range perm {
			leaves[i] = keytree.Member(p)
		}
		batch := func(seq bool) Result {
			name := fmt.Sprintf("ProcessBatch/N=%d,J=0,L=N÷4", n)
			if seq {
				name += "/seq"
			}
			return run(name, 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tr := base.Clone()
					b.StartTimer()
					var err error
					if seq {
						_, err = tr.ProcessBatchSeq(nil, leaves)
					} else {
						_, err = tr.ProcessBatch(nil, leaves)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		// A sub-second op runs only once or twice per testing.Benchmark
		// call, so a single run is at the mercy of scheduler noise and
		// first-touch page faults on the ~0.5 GB heap; take the best of
		// two runs, which converges to each path's true floor.
		best := func(seq bool) Result {
			r := batch(seq)
			if r2 := batch(seq); r2.NsPerOp < r.NsPerOp {
				r = r2
			}
			return r
		}
		par, seq := best(false), best(true)
		bl.Results = append(bl.Results, par, seq)
		if check && n == 4096 && par.NsPerOp > seq.NsPerOp*1.25 {
			fmt.Fprintf(os.Stderr,
				"fecbench: parallel ProcessBatch (%.0f ns/op) slower than 1.25x sequential reference (%.0f ns/op) at N=4096\n",
				par.NsPerOp, seq.NsPerOp)
			os.Exit(1)
		}
	}

	const k, plen = 10, 1027
	coder, err := fec.NewCoder(k, k)
	if err != nil {
		panic(err)
	}
	data := randData(rng, k, plen)
	parity, err := coder.EncodeAll(data, 0, k)
	if err != nil {
		panic(err)
	}
	for _, nLoss := range []int{1, k / 2} {
		var shards []fec.Shard
		for j := nLoss; j < k; j++ {
			shards = append(shards, fec.Shard{Index: j, Data: data[j]})
		}
		for i := 0; i < nLoss; i++ {
			shards = append(shards, fec.Shard{Index: k + i, Data: parity[i]})
		}
		outBuf := make([][]byte, k)
		res := run(
			fmt.Sprintf("FECDecode/loss=%d", nLoss), k*plen,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := coder.DecodeInto(outBuf, shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		res.Kernel = gf256.KernelName()
		bl.Results = append(bl.Results, res)
		res = run(
			fmt.Sprintf("FECDecode/loss=%d/ref", nLoss), k*plen,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := coder.RefDecode(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		res.Kernel = gf256.KernelName()
		bl.Results = append(bl.Results, res)
	}
}

// signResults appends the amortized interval-signing rows: the
// per-interval RSA root signature and verification, the Merkle tree
// build over the interval's leaves, and the per-packet O(log n)
// inclusion-proof verify at growing leaf counts (its cost climbs one
// hash per doubling -- the logarithm the amortization rests on). With
// check set, the run aborts unless a per-packet proof verify at 4096
// leaves is at least 10x cheaper than the RSA signature it amortizes:
// the regression tripwire for the sign-once-per-interval design.
func signResults(bl *Baseline, check bool) {
	signer, err := keys.NewSigner(2048)
	if err != nil {
		panic(err)
	}
	leaves := make([]keys.MerkleHash, 65536)
	for i := range leaves {
		var buf [8]byte
		for j := 0; j < 8; j++ {
			buf[j] = byte(i >> (8 * j))
		}
		leaves[i] = keys.LeafHash(0x01, buf[:])
	}
	root := keys.NewMerkleTree(leaves[:4096]).Root()

	signRow := run("Sign/interval_root_rsa2048", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := signer.SignRoot(root); err != nil {
				b.Fatal(err)
			}
		}
	})
	sig, err := signer.SignRoot(root)
	if err != nil {
		panic(err)
	}
	verifyRow := run("Sign/verify_root_rsa2048", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := keys.VerifyRoot(signer.Public(), root, sig); err != nil {
				b.Fatal(err)
			}
		}
	})
	bl.Results = append(bl.Results, signRow, verifyRow)

	var proof4096 float64
	for _, n := range []int{256, 4096, 65536} {
		sub := leaves[:n]
		bl.Results = append(bl.Results, run(
			fmt.Sprintf("Sign/merkle_build/leaves=%d", n), n*len(keys.MerkleHash{}),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					keys.NewMerkleTree(sub)
				}
			}))
		tree := keys.NewMerkleTree(sub)
		proof := tree.AppendProof(nil, n/2)
		leaf := sub[n/2]
		res := run(
			fmt.Sprintf("Sign/proof_verify/leaves=%d", n), 0,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, ok := keys.VerifyMerkleProof(leaf, n/2, n, proof); !ok {
						b.Fatal("proof did not verify")
					}
				}
			})
		bl.Results = append(bl.Results, res)
		if n == 4096 {
			proof4096 = res.NsPerOp
		}
	}

	if proof4096 > 0 {
		ratio := signRow.NsPerOp / proof4096
		bl.SignAmortRatio = &ratio
		if check && ratio < 10 {
			fmt.Fprintf(os.Stderr,
				"fecbench: per-packet proof verify (%.0f ns) is only %.1fx cheaper than the per-interval RSA root sign (%.0f ns), want >= 10x\n",
				proof4096, ratio, signRow.NsPerOp)
			os.Exit(1)
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_fec.json", "output file ('-' for stdout)")
	withObs := flag.Bool("obs", false, "also measure the obs no-op instrumentation overhead")
	server := flag.Bool("server", false, "also measure the server batch-rekey pipeline and the missing-shard decoder")
	serverBig := flag.Bool("server.big", false, "with -server: include the 2^20-member batch (slow)")
	serverCheck := flag.Bool("server.check", false, "with -server: exit nonzero if the parallel pipeline falls behind 1.25x the sequential reference at N=4096")
	sign := flag.Bool("sign", false, "also measure the amortized interval-signing primitives (RSA root sign, Merkle build, proof verify)")
	signCheck := flag.Bool("sign.check", false, "exit nonzero unless a per-packet proof verify is >= 10x cheaper than the per-interval RSA root sign (implies -sign)")
	flag.Parse()

	bl := Baseline{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Kernel:      gf256.KernelName(),
		CPUFeatures: gf256.CPUFeatures(),
		GoVersion:   runtime.Version(),
	}
	rng := rand.New(rand.NewPCG(1, 1))

	// MulAddSlice across every kernel tier this CPU can run, so the
	// baseline records what each SIMD path delivers, not just the best.
	active := gf256.KernelName()
	var kernel1027, ref1027 float64
	ns8K := map[string]float64{}
	for _, kern := range gf256.AvailableKernels() {
		if err := gf256.SetKernel(kern); err != nil {
			panic(err)
		}
		for _, n := range []int{64, 1027, 8192} {
			src, dst := make([]byte, n), make([]byte, n)
			for i := range src {
				src[i] = byte(rng.Uint32())
			}
			res := run(fmt.Sprintf("MulAddSlice/%s/%dB", kern, n), n, func(b *testing.B) {
				b.SetBytes(int64(n))
				for i := 0; i < b.N; i++ {
					gf256.MulAddSlice(dst, src, 0x57)
				}
			})
			res.Kernel = kern
			bl.Results = append(bl.Results, res)
			if n == 1027 && kern == active {
				kernel1027 = res.NsPerOp
			}
			if n == 8192 {
				ns8K[kern] = res.NsPerOp
			}
		}
	}
	if err := gf256.SetKernel(active); err != nil {
		panic(err)
	}
	for _, n := range []int{64, 1027, 8192} {
		src, dst := make([]byte, n), make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Uint32())
		}
		res := run(fmt.Sprintf("MulAddSlice/ref/%dB", n), n, func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				gf256.RefMulAddSlice(dst, src, 0x57)
			}
		})
		bl.Results = append(bl.Results, res)
		if n == 1027 {
			ref1027 = res.NsPerOp
		}
	}
	if kernel1027 > 0 {
		bl.SpeedupRef = ref1027 / kernel1027
	}
	if ssse3, ok := ns8K["ssse3"]; ok {
		for kern, ns := range ns8K {
			if kern != "ssse3" && kern != "generic" && ns > 0 {
				if bl.Speedup8KvsSSSE3 == nil {
					bl.Speedup8KvsSSSE3 = map[string]float64{}
				}
				bl.Speedup8KvsSSSE3[kern] = ssse3 / ns
			}
		}
	}

	for _, k := range []int{1, 5, 10, 20, 50} {
		for _, plen := range []int{64, 1027, 8192} {
			coder, err := fec.NewCoder(k, k)
			if err != nil {
				panic(err)
			}
			data := randData(rng, k, plen)
			res := run(
				fmt.Sprintf("FECEncode/k%d/%dB", k, plen), k*plen,
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := coder.EncodeAll(data, 0, k); err != nil {
							b.Fatal(err)
						}
					}
				})
			res.Kernel = gf256.KernelName()
			bl.Results = append(bl.Results, res)
		}
	}

	const blocks, k, plen = 32, 10, 1027
	coder, err := fec.NewCoder(k, fec.MaxShards-k)
	if err != nil {
		panic(err)
	}
	reqs := make([]protocol.BlockParity, blocks)
	for b := range reqs {
		reqs[b] = protocol.BlockParity{Data: randData(rng, k, plen), First: 0, N: k / 2}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		res := run(
			fmt.Sprintf("FECEncodeParallel/blocks%d/workers%d", blocks, workers), blocks*k*plen,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := protocol.EncodeBlocks(context.Background(), coder, reqs, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		res.Kernel = gf256.KernelName()
		res.Workers = workers
		bl.Results = append(bl.Results, res)
	}

	if *server {
		serverResults(&bl, rng, *serverBig, *serverCheck)
	}

	if *sign || *signCheck {
		signResults(&bl, *signCheck)
	}

	if *withObs {
		// The transport's per-packet instrumentation is one counter
		// increment next to ~1us of marshal/encode work; reproduce that
		// ratio with a k=10 block encode plus one Inc per shard, against
		// a nil registry (the path every unobserved run takes).
		const ok, oplen = 10, 1027
		ocoder, err := fec.NewCoder(ok, ok)
		if err != nil {
			panic(err)
		}
		odata := randData(rng, ok, oplen)
		var nilReg *obs.Registry
		baseFn := func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ocoder.EncodeAll(odata, 0, ok); err != nil {
					b.Fatal(err)
				}
			}
		}
		instrFn := func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ocoder.EncodeAll(odata, 0, ok); err != nil {
					b.Fatal(err)
				}
				for s := 0; s < ok; s++ {
					nilReg.Inc(obs.CParitySent)
				}
			}
		}
		// The per-call delta (~1ns of nil check per ~1us of encode) is
		// far below single-run scheduler noise, so interleave several
		// runs of each loop and difference the minima, which converge to
		// each loop's true floor.
		base := run("ObsOverhead/baseline", ok*oplen, baseFn)
		instr := run("ObsOverhead/nilreg", ok*oplen, instrFn)
		for rep := 0; rep < 4; rep++ {
			if r := run("ObsOverhead/baseline", ok*oplen, baseFn); r.NsPerOp < base.NsPerOp {
				base = r
			}
			if r := run("ObsOverhead/nilreg", ok*oplen, instrFn); r.NsPerOp < instr.NsPerOp {
				instr = r
			}
		}
		bl.Results = append(bl.Results, base, instr)
		pct := (instr.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		bl.ObsNilOverheadPct = &pct
	}

	enc, err := json.MarshalIndent(&bl, "", "  ")
	if err != nil {
		panic(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (kernel=%s, MulAddSlice 1027B speedup vs ref: %.1fx)\n", *out, bl.Kernel, bl.SpeedupRef)
	if bl.ObsNilOverheadPct != nil {
		fmt.Printf("obs nil-registry overhead: %+.2f%%\n", *bl.ObsNilOverheadPct)
	}
}
