package rekey

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/packet"
)

func newServer(t testing.TB, seed uint64) *Server {
	t.Helper()
	s, err := NewServer(WithKeySeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bootstrap creates a server with n members and returns their Member
// clients, fully keyed via the first rekey message.
func bootstrap(t testing.TB, s *Server, n int) map[MemberID]*Member {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.QueueJoin(MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	members := make(map[MemberID]*Member, n)
	for i := 0; i < n; i++ {
		cred, ok := s.Credentials(MemberID(i))
		if !ok {
			t.Fatalf("no credentials for member %d", i)
		}
		m, err := NewMember(cred)
		if err != nil {
			t.Fatal(err)
		}
		deliverSpecific(t, rm, m, cred.NodeID)
		members[MemberID(i)] = m
	}
	return members
}

// deliverSpecific hands the member its exact ENC packet.
func deliverSpecific(t testing.TB, rm *RekeyMessage, m *Member, nodeID int) {
	t.Helper()
	p, ok := rm.PacketFor(nodeID)
	if !ok {
		t.Fatalf("no packet for node %d", nodeID)
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Ingest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("node %d: specific packet did not complete recovery", nodeID)
	}
}

func TestServerValidation(t *testing.T) {
	badDeg := DefaultTuning()
	badDeg.Degree = 1
	if _, err := NewServer(WithTuning(badDeg)); err == nil {
		t.Error("degree 1 accepted")
	}
	badK := DefaultTuning()
	badK.K = 1000
	if _, err := NewServer(WithTuning(badK)); err == nil {
		t.Error("block size 1000 accepted")
	}
	badStrat := DefaultTuning()
	badStrat.Strategy = "no-such-strategy"
	if _, err := NewServer(WithTuning(badStrat)); err == nil {
		t.Error("unknown placement strategy accepted")
	}
	altStrat := DefaultTuning()
	altStrat.Strategy = "batchplace"
	if _, err := NewServer(WithTuning(altStrat)); err != nil {
		t.Errorf("batchplace strategy rejected: %v", err)
	}
	s := newServer(t, 1)
	if err := s.QueueJoin(5); err != nil {
		t.Fatal(err)
	}
	if err := s.QueueJoin(5); err == nil {
		t.Error("double join queued")
	}
	if err := s.QueueLeave(7); err == nil {
		t.Error("leave of unknown member queued")
	}
	if _, err := s.Rekey(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rekey(); !errors.Is(err, ErrNoChange) {
		t.Errorf("empty rekey error = %v, want ErrNoChange", err)
	}
	if err := s.QueueLeave(5); err != nil {
		t.Fatal(err)
	}
	if err := s.QueueLeave(5); err == nil {
		t.Error("double leave queued")
	}
}

func TestBootstrapAllMembersKeyed(t *testing.T) {
	s := newServer(t, 2)
	members := bootstrap(t, s, 100)
	want := s.GroupKey()
	for id, m := range members {
		gk, ok := m.GroupKey()
		if !ok || gk != want {
			t.Fatalf("member %d has wrong group key", id)
		}
	}
}

func TestLeaveRekeysEveryone(t *testing.T) {
	s := newServer(t, 3)
	members := bootstrap(t, s, 64)
	old := s.GroupKey()
	if err := s.QueueLeave(7); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	if s.GroupKey() == old {
		t.Fatal("group key unchanged after leave")
	}
	delete(members, 7)
	for id, m := range members {
		deliverSpecific(t, rm, m, m.ID())
		gk, ok := m.GroupKey()
		if !ok || gk != s.GroupKey() {
			t.Fatalf("member %d: wrong key after leave rekey", id)
		}
	}
}

func TestMemberRecoversViaFEC(t *testing.T) {
	s := newServer(t, 4)
	members := bootstrap(t, s, 1024)
	for i := 0; i < 256; i++ {
		if err := s.QueueLeave(MemberID(i)); err != nil {
			t.Fatal(err)
		}
		delete(members, MemberID(i))
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	if rm.Blocks() < 2 {
		t.Fatalf("workload too small: %d blocks", rm.Blocks())
	}

	// Pick a member whose packet lies outside the last block (the last
	// block's padding duplicates could deliver the specific packet as a
	// "different" shard); find its packet's block; withhold the specific
	// packet, deliver the rest of the block plus one parity packet.
	// Iterate by member ID so the choice is deterministic.
	var victim *Member
	var blk, seq int
	for id := MemberID(0); victim == nil && id < 1024; id++ {
		m, ok := members[id]
		if !ok {
			continue
		}
		nodeID := m.ID() // unchanged: no splits in a pure-leave batch
		pi := rm.Plan.UserPacket[nodeID]
		if b, s := rm.Part.Slot(pi); b < rm.Blocks()-1 {
			victim, blk, seq = m, b, s
		}
	}
	if victim == nil {
		t.Fatal("no member with a packet outside the last block")
	}

	k := rm.Part.K
	delivered := 0
	for s2 := 0; s2 < k; s2++ {
		if s2 == seq {
			continue // lose the specific packet
		}
		raw, err := rm.ENC[blk*k+s2].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		res, err := victim.Ingest(raw)
		if err != nil {
			t.Fatal(err)
		}
		if res.Done {
			t.Fatal("done before k shards arrived")
		}
		delivered++
	}
	if victim.Done() {
		t.Fatal("victim done too early")
	}
	par, err := rm.Parity(blk, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := par.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := victim.Ingest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("k-th shard (parity) did not complete FEC recovery")
	}
	gk, ok := victim.GroupKey()
	if !ok || gk != s.GroupKey() {
		t.Fatal("FEC-recovered member has wrong group key")
	}
}

func TestMemberNACKAndUSR(t *testing.T) {
	s := newServer(t, 5)
	members := bootstrap(t, s, 1024)
	for i := 0; i < 256; i++ {
		if err := s.QueueLeave(MemberID(i)); err != nil {
			t.Fatal(err)
		}
		delete(members, MemberID(i))
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	if rm.Blocks() < 2 {
		t.Fatalf("workload too small: %d blocks", rm.Blocks())
	}
	var victim *Member
	for _, m := range members {
		victim = m
		break
	}
	nodeID := victim.ID()
	pi := rm.Plan.UserPacket[nodeID]
	blk, _ := rm.Part.Slot(pi)
	k := rm.Part.K

	// Deliver a couple of other-block packets so the member notices the
	// message, then check its NACK names the right block.
	other := (blk + 1) % rm.Blocks()
	for s2 := 0; s2 < 3 && s2 < k; s2++ {
		raw, err := rm.ENC[other*k+s2].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := victim.Ingest(raw); err != nil {
			t.Fatal(err)
		}
	}
	nack, ok := victim.NACK()
	if !ok {
		t.Fatal("no NACK from a pending member")
	}
	if nack.MsgID != rm.MsgID {
		t.Fatalf("NACK msgID %d, want %d", nack.MsgID, rm.MsgID)
	}
	found := false
	for _, r := range nack.Requests {
		if int(r.BlockID) == blk {
			found = true
			if int(r.Count) != k {
				t.Fatalf("requested %d parity for untouched block, want %d", r.Count, k)
			}
		}
	}
	if !found {
		t.Fatalf("NACK omits the member's block %d: %+v", blk, nack.Requests)
	}

	// Server answers with a USR packet; the member completes.
	usr, err := rm.USRFor(int(nack.UserID))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := usr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := victim.Ingest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("USR did not complete recovery")
	}
	gk, ok := victim.GroupKey()
	if !ok || gk != s.GroupKey() {
		t.Fatal("USR-recovered member has wrong group key")
	}
	if _, ok := victim.NACK(); ok {
		t.Fatal("done member still NACKs")
	}
}

func TestChurnOverManyIntervals(t *testing.T) {
	s := newServer(t, 6)
	members := bootstrap(t, s, 128)
	rng := rand.New(rand.NewPCG(6, 6))
	nextID := MemberID(128)
	for interval := 0; interval < 10; interval++ {
		// Random churn.
		var gone []MemberID
		for id := range members {
			if rng.Float64() < 0.2 {
				gone = append(gone, id)
			}
			if len(gone) == len(members)-1 {
				break
			}
		}
		for _, id := range gone {
			if err := s.QueueLeave(id); err != nil {
				t.Fatal(err)
			}
			delete(members, id)
		}
		var fresh []MemberID
		for i := 0; i < rng.IntN(20); i++ {
			fresh = append(fresh, nextID)
			if err := s.QueueJoin(nextID); err != nil {
				t.Fatal(err)
			}
			nextID++
		}
		if len(gone) == 0 && len(fresh) == 0 {
			continue
		}
		rm, err := s.Rekey()
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		for _, id := range fresh {
			cred, ok := s.Credentials(id)
			if !ok {
				t.Fatalf("no credentials for %d", id)
			}
			m, err := NewMember(cred)
			if err != nil {
				t.Fatal(err)
			}
			members[id] = m
		}
		for id, m := range members {
			cred, _ := s.Credentials(id)
			deliverSpecific(t, rm, m, cred.NodeID)
			gk, ok := m.GroupKey()
			if !ok || gk != s.GroupKey() {
				t.Fatalf("interval %d member %d: wrong group key", interval, id)
			}
		}
	}
}

func TestParityStability(t *testing.T) {
	s := newServer(t, 7)
	bootstrap(t, s, 128)
	if err := s.QueueLeave(3); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	a, err := rm.Parity(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rm.Parity(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Marshal()
	rb, _ := b.Marshal()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("parity packet not stable across calls")
		}
	}
	if _, err := rm.Parity(rm.Blocks(), 0); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}

func TestEvictedMemberCannotFollow(t *testing.T) {
	s := newServer(t, 8)
	members := bootstrap(t, s, 64)
	evicted := members[9]
	if err := s.QueueLeave(9); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	// Feed the evicted member every multicast packet; it must never
	// learn the new group key.
	old, _ := evicted.GroupKey()
	for _, p := range rm.ENC {
		raw, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		// Ingest may error (its unwrap fails) or simply not complete.
		res, _ := evicted.Ingest(raw)
		if res.Done {
			gk, _ := evicted.GroupKey()
			if gk != old {
				t.Fatal("evicted member derived the new group key")
			}
		}
	}
	gk, _ := evicted.GroupKey()
	if gk != old {
		t.Fatal("evicted member's group key changed")
	}
	if gk == s.GroupKey() {
		t.Fatal("evicted member holds the current group key")
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	s := newServer(t, 9)
	members := bootstrap(t, s, 16)
	m := members[0]
	if _, err := m.Ingest(nil); err == nil {
		t.Error("nil packet accepted")
	}
	if _, err := m.Ingest(make([]byte, 50)); err == nil {
		t.Error("malformed packet accepted")
	}
	nackRaw, _ := (&packet.NACK{}).Marshal()
	if _, err := m.Ingest(nackRaw); err == nil {
		t.Error("NACK accepted by a member")
	}
}
