package rekey

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/blockplan"
	"repro/internal/fec"
	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
	"repro/internal/packet"
)

// Sentinel errors returned by Member.Ingest. Wrapped errors carry
// detail; match with errors.Is.
var (
	// ErrBadPacket: the bytes are not a packet a member can consume
	// (malformed, truncated, or a server-bound type such as NACK).
	ErrBadPacket = errors.New("rekey: bad packet")
	// ErrWrongMessage: a well-formed packet that does not apply to this
	// member's state -- its encryptions do not unwrap with the keys
	// held, or its IDs are inconsistent with the member's derived ID.
	ErrWrongMessage = errors.New("rekey: packet does not apply to this member")
	// ErrStale: a packet for a rekey message the member has already
	// completed; it carries no new information.
	ErrStale = errors.New("rekey: stale packet for a completed message")
)

// IngestResult is the typed outcome of feeding one packet to a Member.
type IngestResult struct {
	// Kind is the packet type consumed (ENC, PARITY or USR).
	Kind packet.Type
	// MsgID is the rekey message the packet belongs to.
	MsgID uint8
	// Block and Seq locate ENC/PARITY shards; both are -1 for USR.
	Block, Seq int
	// Duplicate reports a shard the member already held.
	Duplicate bool
	// Recovered reports that completion required FEC decoding (as
	// opposed to directly receiving the member's ENC or a USR).
	Recovered bool
	// Done reports that this packet completed the member's key
	// recovery for the current rekey message.
	Done bool
}

// Member is the client side of the rekey protocol: it ingests raw
// ENC/PARITY/USR packets, recovers its specific ENC packet (directly or
// by Reed-Solomon decoding), rederives its node ID each interval, and
// maintains its view of the group and auxiliary keys. It produces the
// NACK the user protocol (Fig. 27) would send at a round boundary.
//
// Rekey messages must be ingested in interval order (keys of one
// interval encrypt keys of the next); packets within a message may
// arrive in any order. Member is safe for concurrent use.
type Member struct {
	mu    sync.Mutex
	view  *keytree.UserView // guarded by mu
	k     int
	coder *fec.Coder
	cur   *msgAssembly // guarded by mu
	// scratch holds the k decode output buffers, reused across blocks
	// and messages via fec.DecodeInto.
	scratch [][]byte // guarded by mu
	// verifier, when non-nil, makes every ingested packet prove itself
	// into a signed interval Merkle root (see auth.go). Guarded by mu.
	verifier *keys.RootVerifier
}

// msgAssembly accumulates one rekey message's shards.
type msgAssembly struct {
	msgID  uint8
	est    blockplan.Estimator
	shards map[int]map[int][]byte // block -> seq -> FEC payload
	maxKID int
	done   bool
	// blockRoots records each block's verified Merkle subtree root
	// (from ENC sub-proofs or PARITY aux roots); FEC-decoded blocks are
	// re-verified against it before their encryptions are applied.
	blockRoots map[int]keys.MerkleHash
}

// NewMember creates a member from its registration credentials.
func NewMember(c Credentials) (*Member, error) {
	if c.Degree < 2 || c.BlockSize < 1 {
		return nil, fmt.Errorf("rekey: bad credentials: degree %d block size %d", c.Degree, c.BlockSize)
	}
	coder, err := fec.NewCoder(c.BlockSize, fec.MaxShards-c.BlockSize)
	if err != nil {
		return nil, err
	}
	return &Member{
		view:    keytree.NewUserView(c.Degree, c.Member, c.NodeID, c.Key),
		k:       c.BlockSize,
		coder:   coder,
		scratch: make([][]byte, c.BlockSize),
	}, nil
}

// SetObs attaches a metrics registry to the member's FEC decoder
// (decode-matrix cache hits/misses). Returns the Member for chaining.
func (m *Member) SetObs(r *obs.Registry) *Member {
	m.coder.SetObs(r)
	return m
}

// SetVerifier attaches an interval-authentication verifier (built over
// Server.SignerPublic): every ingested packet must then carry an auth
// trailer proving it into a signed interval Merkle root. The root's
// RSA signature is checked once per interval and cached; each packet
// costs only its O(log n) proof. Returns the Member for chaining.
func (m *Member) SetVerifier(v *keys.RootVerifier) *Member {
	m.mu.Lock()
	m.verifier = v
	m.mu.Unlock()
	return m
}

// ID returns the member's current node ID.
func (m *Member) ID() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.ID
}

// GroupKey returns the group key as this member knows it.
func (m *Member) GroupKey() (keys.Key, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.GroupKey()
}

// Keys returns a copy of all keys the member holds, by node ID.
func (m *Member) Keys() map[int]keys.Key {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]keys.Key, len(m.view.Keys))
	for id, k := range m.view.Keys {
		out[id] = k
	}
	return out
}

// Done reports whether the member has recovered its keys for the rekey
// message currently being assembled (true when idle).
func (m *Member) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur == nil || m.cur.done
}

// Ingest consumes one raw packet from the network and reports what it
// meant: which shard it was, whether it was a duplicate, and whether it
// completed the member's key recovery for the current rekey message
// (IngestResult.Done). Errors wrap the package sentinels (ErrBadPacket,
// ErrWrongMessage, ErrStale) for errors.Is dispatch; transports treat
// all three as non-fatal.
func (m *Member) Ingest(raw []byte) (IngestResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	raw, tr, err := m.splitAuthLocked(raw)
	if err != nil {
		return IngestResult{Block: -1, Seq: -1}, err
	}
	typ, err := packet.Detect(raw)
	if err != nil {
		return IngestResult{Block: -1, Seq: -1}, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	switch typ {
	case packet.TypeENC:
		p, err := packet.ParseENC(raw)
		if err != nil {
			return IngestResult{Kind: typ, Block: -1, Seq: -1}, fmt.Errorf("%w: %v", ErrBadPacket, err)
		}
		var blockRoot *keys.MerkleHash
		if m.verifier != nil {
			root, err := m.verifyENCAuth(raw, p, tr)
			if err != nil {
				return IngestResult{Kind: typ, MsgID: p.MsgID, Block: int(p.BlockID), Seq: int(p.Seq)}, err
			}
			blockRoot = &root
		}
		return m.ingestENCLocked(p, raw, blockRoot)
	case packet.TypePARITY:
		p, err := packet.ParsePARITY(raw)
		if err != nil {
			return IngestResult{Kind: typ, Block: -1, Seq: -1}, fmt.Errorf("%w: %v", ErrBadPacket, err)
		}
		var blockRoot *keys.MerkleHash
		if m.verifier != nil {
			root, err := m.verifyPARITYAuth(p, tr)
			if err != nil {
				return IngestResult{Kind: typ, MsgID: p.MsgID, Block: int(p.BlockID), Seq: int(p.Seq)}, err
			}
			blockRoot = &root
		}
		return m.ingestPARITYLocked(p, blockRoot)
	case packet.TypeUSR:
		p, err := packet.ParseUSR(raw)
		if err != nil {
			return IngestResult{Kind: typ, Block: -1, Seq: -1}, fmt.Errorf("%w: %v", ErrBadPacket, err)
		}
		if m.verifier != nil {
			if err := m.verifyUSRAuth(raw, tr); err != nil {
				return IngestResult{Kind: typ, MsgID: p.MsgID, Block: -1, Seq: -1}, err
			}
		}
		return m.ingestUSRLocked(p)
	default:
		return IngestResult{Kind: typ, Block: -1, Seq: -1},
			fmt.Errorf("%w: member received %v packet", ErrBadPacket, typ)
	}
}

// splitAuthLocked separates a datagram into packet bytes and auth
// trailer under the member's policy. With a verifier set, every packet
// must carry a structurally valid trailer. Without one, a well-formed
// trailer is stripped and ignored -- the member interoperates with an
// authenticating server without checking signatures -- but only when
// the stripped packet still has a plausible wire length, so plain
// fixed-length packets can never be misread as trailered ones.
func (m *Member) splitAuthLocked(raw []byte) ([]byte, *packet.AuthTrailer, error) {
	inner, tr, err := packet.SplitAuth(raw)
	if m.verifier == nil {
		if err != nil {
			return raw, nil, nil
		}
		switch tr.Kind {
		case packet.TypeENC, packet.TypePARITY:
			if len(inner) != packet.PacketLen {
				return raw, nil, nil
			}
		case packet.TypeUSR:
			if len(inner) < 5 || (len(inner)-5)%packet.EncEntryLen != 0 {
				return raw, nil, nil
			}
		}
		return inner, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("%w: interval auth: %v", ErrBadPacket, err)
	}
	return inner, tr, nil
}

// verifyRootLocked recomputes and checks the interval root: proof up
// the top tree from a sub-tree root, then the cached RSA check.
func (m *Member) verifyRootLocked(subRoot keys.MerkleHash, topIndex int, tr *packet.AuthTrailer) error {
	root, ok := keys.VerifyMerkleProof(subRoot, topIndex, tr.NTop, tr.TopProof)
	if !ok {
		return fmt.Errorf("%w: interval auth: top proof does not verify", ErrBadPacket)
	}
	if _, err := m.verifier.VerifyRoot(root, tr.Sig); err != nil {
		return fmt.Errorf("%w: interval root signature: %v", ErrBadPacket, err)
	}
	return nil
}

// verifyENCAuth proves an ENC packet into the signed interval root and
// returns its block's subtree root.
func (m *Member) verifyENCAuth(inner []byte, p *packet.ENC, tr *packet.AuthTrailer) (keys.MerkleHash, error) {
	var zero keys.MerkleHash
	if tr.NSub != m.k || tr.LeafIndex != int(p.Seq) {
		return zero, fmt.Errorf("%w: interval auth: leaf position %d/%d does not match seq %d, k %d",
			ErrBadPacket, tr.LeafIndex, tr.NSub, p.Seq, m.k)
	}
	if int(p.BlockID) >= tr.NTop-1 {
		return zero, fmt.Errorf("%w: interval auth: block %d outside %d-block top tree",
			ErrBadPacket, p.BlockID, tr.NTop-1)
	}
	leaf := keys.LeafHash(keys.DomainENC, inner)
	blockRoot, ok := keys.VerifyMerkleProof(leaf, int(p.Seq), tr.NSub, tr.SubProof)
	if !ok {
		return zero, fmt.Errorf("%w: interval auth: block proof does not verify", ErrBadPacket)
	}
	if err := m.verifyRootLocked(blockRoot, int(p.BlockID), tr); err != nil {
		return zero, err
	}
	return blockRoot, nil
}

// verifyPARITYAuth proves a PARITY packet's claimed block root into
// the signed interval root. The parity payload itself is code, not a
// tree leaf; the decoded block is checked against the returned root
// after FEC recovery (tryDecodeLocked).
func (m *Member) verifyPARITYAuth(p *packet.PARITY, tr *packet.AuthTrailer) (keys.MerkleHash, error) {
	var zero keys.MerkleHash
	if !tr.HasAux || len(tr.SubProof) != 0 {
		return zero, fmt.Errorf("%w: interval auth: PARITY trailer without a block root", ErrBadPacket)
	}
	if int(p.BlockID) >= tr.NTop-1 {
		return zero, fmt.Errorf("%w: interval auth: block %d outside %d-block top tree",
			ErrBadPacket, p.BlockID, tr.NTop-1)
	}
	if err := m.verifyRootLocked(tr.Aux, int(p.BlockID), tr); err != nil {
		return zero, err
	}
	return tr.Aux, nil
}

// verifyUSRAuth proves a USR packet into the signed interval root (the
// USR subtree is the top tree's last leaf).
func (m *Member) verifyUSRAuth(inner []byte, tr *packet.AuthTrailer) error {
	leaf := keys.LeafHash(keys.DomainUSR, inner)
	usrRoot, ok := keys.VerifyMerkleProof(leaf, tr.LeafIndex, tr.NSub, tr.SubProof)
	if !ok {
		return fmt.Errorf("%w: interval auth: USR proof does not verify", ErrBadPacket)
	}
	return m.verifyRootLocked(usrRoot, tr.NTop-1, tr)
}

// recordBlockRootLocked stores a packet's verified block root,
// rejecting a packet that contradicts an earlier verified root for the
// same block (two distinct signed intervals sharing a message ID).
func recordBlockRootLocked(a *msgAssembly, block int, root *keys.MerkleHash) error {
	if root == nil {
		return nil
	}
	if a.blockRoots == nil {
		a.blockRoots = make(map[int]keys.MerkleHash)
	}
	if prev, ok := a.blockRoots[block]; ok && prev != *root {
		return fmt.Errorf("%w: block %d root contradicts an earlier verified packet", ErrWrongMessage, block)
	}
	a.blockRoots[block] = *root
	return nil
}

// assemblyLocked returns the current assembly, starting a fresh one when a
// new message ID appears.
func (m *Member) assemblyLocked(msgID uint8) *msgAssembly {
	if m.cur == nil || m.cur.msgID != msgID {
		m.cur = &msgAssembly{
			msgID:  msgID,
			est:    blockplan.NewEstimator(),
			shards: make(map[int]map[int][]byte),
		}
	}
	return m.cur
}

func (m *Member) ingestENCLocked(p *packet.ENC, raw []byte, blockRoot *keys.MerkleHash) (IngestResult, error) {
	res := IngestResult{Kind: packet.TypeENC, MsgID: p.MsgID, Block: int(p.BlockID), Seq: int(p.Seq)}
	a := m.assemblyLocked(p.MsgID)
	if a.done {
		return res, ErrStale
	}
	if err := recordBlockRootLocked(a, int(p.BlockID), blockRoot); err != nil {
		return res, err
	}
	a.maxKID = int(p.MaxKID)
	// Rederive this interval's node ID before the range check.
	myID, ok := keytree.NewID(m.view.D, m.view.ID, int(p.MaxKID))
	if !ok {
		return res, fmt.Errorf("%w: member %d has no valid ID under maxKID %d",
			ErrWrongMessage, m.view.Member, p.MaxKID)
	}
	if int(p.FrmID) <= myID && myID <= int(p.ToID) {
		if err := m.view.Apply(int(p.MaxKID), p.Encs); err != nil {
			return res, fmt.Errorf("%w: %v", ErrWrongMessage, err)
		}
		a.done = true
		res.Done = true
		return res, nil
	}
	if !p.Dup {
		a.est.Observe(myID, blockplan.ENCHeader{
			BlockID: int(p.BlockID), Seq: int(p.Seq),
			FrmID: int(p.FrmID), ToID: int(p.ToID),
			MaxKID: int(p.MaxKID),
		}, m.k, m.view.D)
	}
	res.Duplicate = !m.storeLocked(a, int(p.BlockID), int(p.Seq), raw[packet.FECOffset:])
	return m.tryDecodeLocked(a, res)
}

func (m *Member) ingestPARITYLocked(p *packet.PARITY, blockRoot *keys.MerkleHash) (IngestResult, error) {
	res := IngestResult{Kind: packet.TypePARITY, MsgID: p.MsgID, Block: int(p.BlockID), Seq: int(p.Seq)}
	a := m.assemblyLocked(p.MsgID)
	if a.done {
		return res, ErrStale
	}
	if err := recordBlockRootLocked(a, int(p.BlockID), blockRoot); err != nil {
		return res, err
	}
	res.Duplicate = !m.storeLocked(a, int(p.BlockID), int(p.Seq), p.Payload)
	return m.tryDecodeLocked(a, res)
}

func (m *Member) ingestUSRLocked(p *packet.USR) (IngestResult, error) {
	res := IngestResult{Kind: packet.TypeUSR, MsgID: p.MsgID, Block: -1, Seq: -1}
	a := m.assemblyLocked(p.MsgID)
	if a.done {
		return res, ErrStale
	}
	if err := m.view.Apply(int(p.MaxKID), p.Encs); err != nil {
		return res, fmt.Errorf("%w: %v", ErrWrongMessage, err)
	}
	if m.view.ID != int(p.NewID) {
		return res, fmt.Errorf("%w: USR says ID %d, derived %d", ErrWrongMessage, p.NewID, m.view.ID)
	}
	a.done = true
	res.Done = true
	return res, nil
}

// storeLocked records a shard and reports whether it was new.
func (m *Member) storeLocked(a *msgAssembly, block, seq int, payload []byte) bool {
	blk := a.shards[block]
	if blk == nil {
		blk = make(map[int][]byte)
		a.shards[block] = blk
	}
	if _, dup := blk[seq]; dup {
		return false
	}
	blk[seq] = append([]byte(nil), payload...)
	return true
}

// tryDecodeLocked attempts FEC recovery of every candidate block inside the
// estimated block-ID range that holds at least k shards; a decoded
// block that contains the member's packet completes recovery.
func (m *Member) tryDecodeLocked(a *msgAssembly, res IngestResult) (IngestResult, error) {
	lo := a.est.Low
	if lo < 0 {
		lo = 0
	}
	for block, shardMap := range a.shards {
		if block < lo || block > a.est.High || len(shardMap) < m.k {
			continue
		}
		shards := make([]fec.Shard, 0, len(shardMap))
		for seq, payload := range shardMap {
			shards = append(shards, fec.Shard{Index: seq, Data: payload})
		}
		if err := m.coder.DecodeInto(m.scratch, shards); err != nil {
			continue // fewer than k distinct shards
		}
		fulls := make([][]byte, m.k)
		for seq, payload := range m.scratch {
			full := make([]byte, packet.PacketLen)
			full[0] = byte(packet.TypeENC)<<6 | a.msgID
			full[1] = byte(block)
			full[2] = byte(seq)
			copy(full[packet.FECOffset:], payload)
			fulls[seq] = full
		}
		if m.verifier != nil {
			// Parity payloads are not tree leaves, so a decoded block
			// proves itself by reproducing the verified block root from
			// its k reconstructed packets. A mismatch means at least one
			// stored shard was forged: drop the whole block so honest
			// retransmissions can rebuild it.
			want, ok := a.blockRoots[block]
			if !ok || !blockRootMatches(fulls, want) {
				delete(a.shards, block)
				continue
			}
		}
		for seq, full := range fulls {
			p, err := packet.ParseENC(full)
			if err != nil {
				return res, fmt.Errorf("rekey: decoded block %d slot %d corrupt: %w", block, seq, err)
			}
			myID, ok := keytree.NewID(m.view.D, m.view.ID, int(p.MaxKID))
			if !ok {
				continue
			}
			if int(p.FrmID) <= myID && myID <= int(p.ToID) {
				if err := m.view.Apply(int(p.MaxKID), p.Encs); err != nil {
					return res, fmt.Errorf("%w: %v", ErrWrongMessage, err)
				}
				a.done = true
				res.Done = true
				res.Recovered = true
				return res, nil
			}
		}
	}
	return res, nil
}

// blockRootMatches recomputes a decoded block's Merkle subtree root
// from its k reconstructed packets and compares it to the verified
// root its shards arrived under.
func blockRootMatches(fulls [][]byte, want keys.MerkleHash) bool {
	leaves := make([]keys.MerkleHash, len(fulls))
	for i, full := range fulls {
		leaves[i] = keys.LeafHash(keys.DomainENC, full)
	}
	return keys.NewMerkleTree(leaves).Root() == want
}

// NACK returns the feedback the member would send at a round boundary:
// the parity packets needed per candidate block (Fig. 27). It returns
// ok=false when the member is done or has seen nothing of the current
// message.
func (m *Member) NACK() (*packet.NACK, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a := m.cur
	if a == nil || a.done || len(a.shards) == 0 {
		return nil, false
	}
	lo, hi := a.est.Low, a.est.High
	if lo < 0 {
		lo = 0
	}
	// Clamp the upper bound to blocks we can name on the wire.
	maxSeen := 0
	for b := range a.shards {
		if b > maxSeen {
			maxSeen = b
		}
	}
	if hi > maxSeen+8 {
		hi = maxSeen + 8 // rule-6 bound can exceed reality; stay modest
	}
	if hi > 0xff {
		hi = 0xff
	}
	// Report the rederived (post-batch) node ID so the server can
	// address a USR packet without translation.
	id := m.view.ID
	if nid, ok := keytree.NewID(m.view.D, m.view.ID, a.maxKID); ok {
		id = nid
	}
	n := &packet.NACK{MsgID: a.msgID, UserID: uint16(id)}
	for b := lo; b <= hi; b++ {
		need := m.k - len(a.shards[b])
		if need > 0 {
			n.Requests = append(n.Requests, packet.BlockRequest{Count: uint8(need), BlockID: uint8(b)})
		}
	}
	if len(n.Requests) == 0 {
		// Range fully stocked yet undecodable cannot happen (the true
		// block decodes); report one packet for robustness.
		n.Requests = append(n.Requests, packet.BlockRequest{Count: 1, BlockID: uint8(lo)})
	}
	return n, true
}
