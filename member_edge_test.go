package rekey

import (
	"errors"
	"testing"

	"repro/internal/packet"
)

// TestMemberDuplicateIngestIdempotent feeds the same packet repeatedly.
func TestMemberDuplicateIngestIdempotent(t *testing.T) {
	s := newServer(t, 30)
	members := bootstrap(t, s, 32)
	m := members[3]
	if err := s.QueueLeave(5); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	cred, _ := s.Credentials(3)
	pkt, _ := rm.PacketFor(cred.NodeID)
	raw, _ := pkt.Marshal()
	for i := 0; i < 3; i++ {
		// Re-ingesting after completion is reported as ErrStale, never
		// as a hard failure or a changed key.
		if _, err := m.Ingest(raw); err != nil && !errors.Is(err, ErrStale) {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	gk, ok := m.GroupKey()
	if !ok || gk != s.GroupKey() {
		t.Fatal("wrong group key after duplicate ingest")
	}
}

// TestMemberNACKBeforeAnyPacket: a member that has seen nothing of a
// message has nothing to NACK about.
func TestMemberNACKBeforeAnyPacket(t *testing.T) {
	s := newServer(t, 31)
	members := bootstrap(t, s, 16)
	if _, ok := members[1].NACK(); ok {
		t.Fatal("idle member produced a NACK")
	}
}

// TestMemberParityOnlyRecovery: a member that receives zero ENC packets
// of its block but k parity packets still recovers (pure FEC path).
func TestMemberParityOnlyRecovery(t *testing.T) {
	s := newServer(t, 32)
	members := bootstrap(t, s, 1024)
	for i := 0; i < 256; i++ {
		if err := s.QueueLeave(MemberID(i)); err != nil {
			t.Fatal(err)
		}
		delete(members, MemberID(i))
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	var victim *Member
	for _, m := range members {
		victim = m
		break
	}
	nodeID := victim.ID()
	pi := rm.Plan.UserPacket[nodeID]
	blk, _ := rm.Part.Slot(pi)
	k := rm.Part.K

	// First, one ENC packet from ANOTHER block so the estimator learns
	// the message exists and bounds the range; then k parity packets of
	// the victim's block.
	other := (blk + 1) % rm.Blocks()
	raw, _ := rm.ENC[other*k].Marshal()
	if _, err := victim.Ingest(raw); err != nil {
		t.Fatal(err)
	}
	var res IngestResult
	for i := 0; i < k; i++ {
		par, err := rm.Parity(blk, i)
		if err != nil {
			t.Fatal(err)
		}
		praw, _ := par.Marshal()
		res, err = victim.Ingest(praw)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !res.Done {
		t.Fatal("k parity packets did not recover the block")
	}
	gk, ok := victim.GroupKey()
	if !ok || gk != s.GroupKey() {
		t.Fatal("wrong group key after parity-only recovery")
	}
}

// TestMemberStaleMessagePacketsIgnoredAfterDone: once done with message
// m, further packets of m change nothing.
func TestMemberStaleMessagePacketsIgnoredAfterDone(t *testing.T) {
	s := newServer(t, 33)
	members := bootstrap(t, s, 64)
	m := members[9]
	if err := s.QueueLeave(2); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	cred, _ := s.Credentials(9)
	deliverSpecific(t, rm, m, cred.NodeID)
	gk1, _ := m.GroupKey()
	// A parity packet of the same message must be a no-op now.
	if rm.Blocks() > 0 {
		par, err := rm.Parity(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := par.Marshal()
		res, err := m.Ingest(raw)
		if !errors.Is(err, ErrStale) {
			t.Fatalf("stale parity: err = %v, want ErrStale", err)
		}
		if res.Done {
			t.Fatal("done member reported completion again")
		}
	}
	gk2, _ := m.GroupKey()
	if gk1 != gk2 {
		t.Fatal("group key changed after post-completion packet")
	}
}

// TestMemberUSRIDMismatch: a USR packet whose NewID disagrees with the
// member's derivation is rejected.
func TestMemberUSRIDMismatch(t *testing.T) {
	s := newServer(t, 34)
	members := bootstrap(t, s, 64)
	m := members[4]
	if err := s.QueueLeave(8); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	cred, _ := s.Credentials(4)
	usr, err := rm.USRFor(cred.NodeID)
	if err != nil {
		t.Fatal(err)
	}
	usr.NewID++ // someone else's ID
	raw, _ := usr.Marshal()
	if _, err := m.Ingest(raw); err == nil {
		t.Fatal("mismatched USR accepted")
	}
}

// TestNewMemberValidation rejects nonsense credentials.
func TestNewMemberValidation(t *testing.T) {
	if _, err := NewMember(Credentials{Degree: 1, BlockSize: 10}); err == nil {
		t.Error("degree 1 accepted")
	}
	if _, err := NewMember(Credentials{Degree: 4, BlockSize: 0}); err == nil {
		t.Error("block size 0 accepted")
	}
	if _, err := NewMember(Credentials{Degree: 4, BlockSize: 300}); err == nil {
		t.Error("block size 300 accepted")
	}
}

// TestMemberKeysAccessorCopies ensures the Keys snapshot is detached.
func TestMemberKeysAccessorCopies(t *testing.T) {
	s := newServer(t, 35)
	members := bootstrap(t, s, 16)
	m := members[2]
	snap := m.Keys()
	for id := range snap {
		delete(snap, id)
	}
	if len(m.Keys()) == 0 {
		t.Fatal("mutating the snapshot mutated the member")
	}
}

// TestUSRAloneBootstrapsJoiner: a joining member keyed purely by USR.
func TestUSRAloneBootstrapsJoiner(t *testing.T) {
	s := newServer(t, 36)
	bootstrap(t, s, 64)
	if err := s.QueueJoin(500); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	cred, _ := s.Credentials(500)
	m, err := NewMember(cred)
	if err != nil {
		t.Fatal(err)
	}
	usr, err := rm.USRFor(cred.NodeID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := usr.Marshal()
	res, err := m.Ingest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("USR did not complete the joiner")
	}
	gk, ok := m.GroupKey()
	if !ok || gk != s.GroupKey() {
		t.Fatal("joiner has wrong group key")
	}
}

// TestUSRForUnknownNode errors out of range rather than panicking.
func TestUSRForOutOfRange(t *testing.T) {
	s := newServer(t, 37)
	bootstrap(t, s, 16)
	if err := s.QueueLeave(1); err != nil {
		t.Fatal(err)
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rm.USRFor(1 << 20); err == nil {
		t.Fatal("node ID beyond wire field accepted")
	}
	// Unknown-but-representable node: empty USR (no encryptions on that
	// path) is fine; members validate the ID themselves.
	usr, err := rm.USRFor(0xffff)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := usr.Marshal(); err != nil {
		t.Fatal(err)
	}
	_ = packet.PacketLen
}
