package rekey

// Amortized interval signing (DESIGN.md "Amortized interval
// authentication"): instead of signing every packet, Rekey builds one
// two-tier Merkle tree over everything the interval can send and signs
// only its root.
//
//	top tree leaves:  [blockRoot_0 .. blockRoot_{B-1}, usrRoot]
//	blockRoot_b:      root over the k ENC leaf hashes of block b
//	                  (leaf s = H(0x00 || ENC-domain || packet bytes))
//	usrRoot:          root over one USR leaf per current user, in
//	                  sorted node-ID order (leaf = H(0x00 || USR-domain
//	                  || USR packet bytes))
//
// Every outgoing packet carries a packet.AuthTrailer: ENC packets
// prove leaf -> blockRoot -> root; PARITY packets (whose payload is
// code, not a tree leaf) carry blockRoot explicitly plus its top
// proof, and the decoded block is checked against that root after FEC
// recovery; USR packets prove leaf -> usrRoot -> root. The root
// signature rides in every trailer so any first packet authenticates
// the interval; members cache verified roots (keys.RootVerifier) and
// pay the RSA check once per interval.

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"time"

	"repro/internal/keys"
	"repro/internal/obs"
	"repro/internal/packet"
)

// ErrNoAuthLeaf is returned by WireUSR when the requested node ID has
// no leaf in the interval's USR subtree (it was not a user when the
// message was signed), so no authenticated unicast can be built.
var ErrNoAuthLeaf = errors.New("rekey: user has no leaf in the interval auth tree")

// WithSigner attaches an interval signer: each rekey message's Merkle
// root is signed once and every packet carries an inclusion proof plus
// that signature. Members verify with a keys.RootVerifier over
// SignerPublic.
func WithSigner(s *keys.Signer) Option { return func(c *Config) { c.Signer = s } }

// SignerPublic returns the public key members verify interval roots
// against, or nil when the server does not sign.
func (s *Server) SignerPublic() *rsa.PublicKey {
	if s.cfg.Signer == nil {
		return nil
	}
	return s.cfg.Signer.Public()
}

// intervalAuth is one rekey message's authentication state, built once
// under Server.mu and read-only afterwards.
type intervalAuth struct {
	blockTrees []*keys.MerkleTree
	usrTree    *keys.MerkleTree
	top        *keys.MerkleTree
	usrIndex   map[int]int // user node ID -> usrTree leaf index
	sig        []byte      // RSA signature over top.Root()
	nTop       int
	encWire    [][]byte // full ENC datagrams: packet bytes + trailer
	parityTr   [][]byte // per-block PARITY trailer bytes
}

// Authenticated reports whether the message carries interval
// authentication (the server was built WithSigner).
func (rm *RekeyMessage) Authenticated() bool { return rm.auth != nil }

// buildAuth constructs the interval Merkle tree, signs its root and
// pre-builds the per-ENC and per-block trailers. Called once from
// Rekey; rm is not yet shared.
func (rm *RekeyMessage) buildAuth(signer *keys.Signer) error {
	var start time.Time
	if rm.obs.Enabled() {
		start = time.Now()
	}
	nBlocks := rm.Blocks()
	a := &intervalAuth{
		blockTrees: make([]*keys.MerkleTree, nBlocks),
		usrIndex:   make(map[int]int, len(rm.Result.UserIDs)),
		nTop:       nBlocks + 1,
		encWire:    make([][]byte, len(rm.ENC)),
		parityTr:   make([][]byte, nBlocks),
	}

	// Block subtrees over the ENC packet bytes (kept: they become the
	// send datagrams and the FEC payloads).
	raws := make([][]byte, len(rm.ENC))
	leaves := make([]keys.MerkleHash, len(rm.ENC))
	for i, enc := range rm.ENC {
		raw, err := enc.Marshal()
		if err != nil {
			return err
		}
		raws[i] = raw
		leaves[i] = keys.LeafHash(keys.DomainENC, raw)
	}
	topLeaves := make([]keys.MerkleHash, 0, a.nTop)
	for b := 0; b < nBlocks; b++ {
		a.blockTrees[b] = keys.NewMerkleTree(leaves[b*rm.k : (b+1)*rm.k])
		topLeaves = append(topLeaves, a.blockTrees[b].Root())
	}

	// USR subtree: one leaf per current user, sorted node-ID order.
	usrLeaves := make([]keys.MerkleHash, len(rm.Result.UserIDs))
	for i, uid := range rm.Result.UserIDs {
		usr, err := rm.USRFor(uid)
		if err != nil {
			return err
		}
		raw, err := usr.Marshal()
		if err != nil {
			return err
		}
		usrLeaves[i] = keys.LeafHash(keys.DomainUSR, raw)
		a.usrIndex[uid] = i
	}
	a.usrTree = keys.NewMerkleTree(usrLeaves)
	topLeaves = append(topLeaves, a.usrTree.Root())

	a.top = keys.NewMerkleTree(topLeaves)
	root := a.top.Root()
	sig, err := signer.SignRoot(root)
	if err != nil {
		return err
	}
	a.sig = sig

	// Pre-built trailers: one per ENC packet, one per block for PARITY
	// (every parity packet of a block shares the same trailer).
	for i := range rm.ENC {
		b, s := i/rm.k, i%rm.k
		tr := packet.AuthTrailer{
			Kind:      packet.TypeENC,
			NTop:      a.nTop,
			LeafIndex: s,
			NSub:      rm.k,
			SubProof:  a.blockTrees[b].AppendProof(nil, s),
			TopProof:  a.top.AppendProof(nil, b),
			Sig:       a.sig,
		}
		wire, err := tr.AppendAuthTrailer(raws[i])
		if err != nil {
			return err
		}
		a.encWire[i] = wire
		rm.obs.Observe(obs.HMerkleProofBytes, float64(len(wire)-packet.PacketLen))
	}
	for b := 0; b < nBlocks; b++ {
		tr := packet.AuthTrailer{
			Kind:     packet.TypePARITY,
			NTop:     a.nTop,
			TopProof: a.top.AppendProof(nil, b),
			HasAux:   true,
			Aux:      a.blockTrees[b].Root(),
			Sig:      a.sig,
		}
		tb, err := tr.AppendAuthTrailer(nil)
		if err != nil {
			return err
		}
		a.parityTr[b] = tb
		rm.obs.Observe(obs.HMerkleProofBytes, float64(len(tb)))
	}
	rm.auth = a
	if rm.obs.Enabled() {
		rm.obs.ObserveSince(obs.HSignRoot, start)
	}
	return nil
}

// WireENC returns ENC datagram i's send bytes: the packet plus, on an
// authenticated message, its auth trailer. The returned slice is
// shared and must not be modified; after the first call for a given i
// the bytes are cached, so repeated sends of one interval's packets
// allocate nothing.
func (rm *RekeyMessage) WireENC(i int) ([]byte, error) {
	if rm.auth != nil {
		return rm.auth.encWire[i], nil
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if rm.wire == nil {
		rm.wire = make([][]byte, len(rm.ENC))
	}
	if rm.wire[i] == nil {
		raw, err := rm.ENC[i].Marshal()
		if err != nil {
			return nil, err
		}
		rm.wire[i] = raw
	}
	return rm.wire[i], nil
}

// AppendWireParity appends the send bytes of PARITY packet idx of the
// given block -- packet plus trailer on an authenticated message -- to
// dst and returns the extended slice. With the parity payload cached
// (PrecomputeParity) and enough capacity in dst it does not allocate:
// the datagram is built straight from the cached payload and the
// pre-built per-block trailer, with no intermediate packet struct.
func (rm *RekeyMessage) AppendWireParity(dst []byte, block, idx int) ([]byte, error) {
	payload, err := rm.parityPayload(block, idx)
	if err != nil {
		return nil, err
	}
	if block > 0xff || rm.k+idx > 0xff {
		return nil, fmt.Errorf("rekey: parity shard (%d,%d) exceeds wire fields", block, rm.k+idx)
	}
	dst, err = packet.AppendParity(dst, rm.MsgID, uint8(block), uint8(rm.k+idx), payload)
	if err != nil {
		return nil, err
	}
	if rm.auth != nil {
		dst = append(dst, rm.auth.parityTr[block]...)
	}
	return dst, nil
}

// WireUSR returns the unicast datagram for the given user node ID:
// the USR packet plus, on an authenticated message, its auth trailer
// (leaf -> usrRoot -> interval root, built on demand -- unicast is the
// cold path).
func (rm *RekeyMessage) WireUSR(nodeID int) ([]byte, error) {
	usr, err := rm.USRFor(nodeID)
	if err != nil {
		return nil, err
	}
	raw, err := usr.Marshal()
	if err != nil {
		return nil, err
	}
	a := rm.auth
	if a == nil {
		return raw, nil
	}
	idx, ok := a.usrIndex[nodeID]
	if !ok {
		return nil, ErrNoAuthLeaf
	}
	tr := packet.AuthTrailer{
		Kind:      packet.TypeUSR,
		NTop:      a.nTop,
		LeafIndex: idx,
		NSub:      a.usrTree.NumLeaves(),
		SubProof:  a.usrTree.AppendProof(nil, idx),
		TopProof:  a.top.AppendProof(nil, a.nTop-1),
		Sig:       a.sig,
	}
	wire, err := tr.AppendAuthTrailer(raw)
	if err != nil {
		return nil, err
	}
	rm.obs.Observe(obs.HMerkleProofBytes, float64(len(wire)-len(raw)))
	return wire, nil
}
