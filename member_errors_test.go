package rekey

import (
	"errors"
	"testing"

	"repro/internal/packet"
)

// freshMember builds a server with n members and returns one member
// that has NOT yet ingested anything of the first rekey message.
func freshMember(t *testing.T, seed uint64, n int) (*Server, *RekeyMessage, *Member, Credentials) {
	t.Helper()
	s := newServer(t, seed)
	for i := 0; i < n; i++ {
		if err := s.QueueJoin(MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	cred, ok := s.Credentials(0)
	if !ok {
		t.Fatal("no credentials for member 0")
	}
	m, err := NewMember(cred)
	if err != nil {
		t.Fatal(err)
	}
	return s, rm, m, cred
}

// TestIngestErrBadPacket: garbage and non-member packet types are
// ErrBadPacket, and the sentinel survives errors.Is through wrapping.
func TestIngestErrBadPacket(t *testing.T) {
	_, _, m, _ := freshMember(t, 51, 8)
	for name, raw := range map[string][]byte{
		"nil":       nil,
		"truncated": make([]byte, 5),
		"random":    {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08},
	} {
		_, err := m.Ingest(raw)
		if !errors.Is(err, ErrBadPacket) {
			t.Errorf("%s: err = %v, want ErrBadPacket", name, err)
		}
	}
	nackRaw, err := (&packet.NACK{}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(nackRaw); !errors.Is(err, ErrBadPacket) {
		t.Errorf("NACK: err = %v, want ErrBadPacket", err)
	}
}

// TestIngestErrWrongMessage: a USR addressed to a different node does
// not apply and reports ErrWrongMessage, leaving the member unkeyed.
func TestIngestErrWrongMessage(t *testing.T) {
	s, rm, m, cred := freshMember(t, 52, 8)
	other, ok := s.Credentials(1)
	if !ok || other.NodeID == cred.NodeID {
		t.Fatal("need a distinct second member")
	}
	usr, err := rm.USRFor(other.NodeID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := usr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Ingest(raw)
	if !errors.Is(err, ErrWrongMessage) {
		t.Fatalf("err = %v, want ErrWrongMessage", err)
	}
	if errors.Is(err, ErrBadPacket) || errors.Is(err, ErrStale) {
		t.Fatalf("err = %v matches more than one sentinel", err)
	}
	if res.Kind != packet.TypeUSR {
		t.Fatalf("res.Kind = %v, want USR", res.Kind)
	}
	if res.Done {
		t.Fatal("wrong-message ingest reported Done")
	}
	if _, ok := m.GroupKey(); ok {
		t.Fatal("member keyed by someone else's USR")
	}
}

// TestIngestErrStale: packets of a completed message are ErrStale and
// carry the packet's identity in the result.
func TestIngestErrStale(t *testing.T) {
	_, rm, m, cred := freshMember(t, 53, 8)
	usr, err := rm.USRFor(cred.NodeID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := usr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Ingest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("USR did not complete the member")
	}
	// Any further packet of the same message is stale now.
	res, err = m.Ingest(raw)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	if res.Kind != packet.TypeUSR || res.MsgID != usr.MsgID {
		t.Fatalf("stale result = %+v", res)
	}
	if res.Done {
		t.Fatal("stale ingest reported Done")
	}
	if len(rm.ENC) > 0 {
		encRaw, err := rm.ENC[0].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Ingest(encRaw); !errors.Is(err, ErrStale) {
			t.Fatalf("stale ENC err = %v, want ErrStale", err)
		}
	}
}

// TestIngestResultFields checks the typed result on the ENC shard path:
// kind, block/seq coordinates, the Duplicate flag, and Recovered on a
// FEC-completed block.
func TestIngestResultFields(t *testing.T) {
	s := newServer(t, 54)
	members := bootstrap(t, s, 512)
	for i := 0; i < 128; i++ {
		if err := s.QueueLeave(MemberID(i)); err != nil {
			t.Fatal(err)
		}
		delete(members, MemberID(i))
	}
	rm, err := s.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	var m *Member
	for _, mm := range members {
		m = mm
		break
	}
	if rm.Blocks() < 2 {
		t.Fatalf("need >= 2 blocks, got %d", rm.Blocks())
	}
	nodeID := m.ID()
	pi := rm.Plan.UserPacket[nodeID]
	blk, _ := rm.Part.Slot(pi)
	k := rm.Part.K

	// A shard from another block: counted, not duplicate, not done.
	otherBlk := (blk + 1) % rm.Blocks()
	p := rm.ENC[otherBlk*k]
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Ingest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != packet.TypeENC || res.MsgID != p.MsgID {
		t.Fatalf("res = %+v", res)
	}
	if res.Block != int(p.BlockID) || res.Seq != int(p.Seq) {
		t.Fatalf("res coordinates = (%d,%d), want (%d,%d)", res.Block, res.Seq, p.BlockID, p.Seq)
	}
	if res.Duplicate || res.Done {
		t.Fatalf("first shard: res = %+v", res)
	}

	// The same shard again is a duplicate.
	res, err = m.Ingest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate {
		t.Fatal("repeated shard not flagged Duplicate")
	}

	// Recover the member's own block purely from parity: the completing
	// ingest must report Done and Recovered.
	var last IngestResult
	for i := 0; i < k; i++ {
		par, err := rm.Parity(blk, i)
		if err != nil {
			t.Fatal(err)
		}
		praw, err := par.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		last, err = m.Ingest(praw)
		if err != nil {
			t.Fatal(err)
		}
		if last.Kind != packet.TypePARITY {
			t.Fatalf("parity res.Kind = %v", last.Kind)
		}
	}
	if !last.Done || !last.Recovered {
		t.Fatalf("final parity res = %+v, want Done && Recovered", last)
	}
	gk, ok := m.GroupKey()
	if !ok || gk != s.GroupKey() {
		t.Fatal("wrong group key after FEC recovery")
	}
}
