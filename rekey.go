// Package rekey is a scalable and reliable group rekeying library: the
// key management and rekey transport system of "Reliable group
// rekeying: a performance analysis" (SIGCOMM 2001) and its companion
// protocol paper.
//
// A Server maintains a logical key hierarchy (key tree) over the group
// members and processes joins and leaves in periodic batches. Each
// batch yields a RekeyMessage: ENC packets produced by the
// user-oriented key assignment algorithm (every member's encryptions in
// one packet), partitioned into FEC blocks for which Reed-Solomon
// PARITY packets can be generated, plus per-member USR packets for the
// unicast stage. A Member consumes those packets -- in any mixture of
// direct reception, FEC recovery and unicast -- and maintains the
// member's view of the group key.
//
// The packet bookkeeping and loss-recovery policy (rounds, NACKs,
// adaptive proactivity) live in internal/protocol for simulation and in
// internal/udptrans for the wire; this package is the key-management
// core both share.
//
// Servers are built with functional options mirroring keytree.New:
// NewServer(WithTuning(t), WithKeySeed(seed), WithObs(reg)). The
// options populate a validated Config core embedding Tuning (the
// shared protocol knobs -- k, d, rho0, numNACK, round budget, workers
// -- defined once in internal/tuning and reused by every layer).
// Passing a registry via WithObs threads live metrics and trace events
// through the server, the message builder and the transports; a nil
// registry costs only a nil check. Member.Ingest reports typed
// outcomes: an IngestResult plus errors wrapping the ErrBadPacket,
// ErrWrongMessage and ErrStale sentinels for errors.Is dispatch.
//
// Internally the server's key tree state lives in one internal/shard
// Shard -- the same addressable unit a multi-shard Coordinator manages
// -- while this package keeps distribution: assignment, block
// partitioning, FEC parity and message signing. A single-shard server
// and a shard under a coordinator run the identical tree pipeline.
package rekey

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/assign"
	"repro/internal/blockplan"
	"repro/internal/fec"
	"repro/internal/gf256"
	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/protocol"
	"repro/internal/shard"
	"repro/internal/tuning"
)

// MemberID identifies a group member across its lifetime.
type MemberID = keytree.Member

// Credentials is what registration hands a member: its u-node ID, its
// individual key, and the group constants it needs client-side.
type Credentials struct {
	Member    MemberID
	NodeID    int
	Key       keys.Key
	Degree    int
	BlockSize int
}

// Tuning is the protocol's shared tuning core: the single definition
// of k, tree degree, rho0, the NACK targets and the worker bound. It
// is embedded here, in protocol.Config, and read by the UDP transport,
// so every layer agrees on one validated set of knobs.
type Tuning = tuning.Tuning

// DefaultTuning returns the paper's default knobs (DESIGN.md): k=10,
// d=4, rho0=1, numNACK=20 (cap 100), unicast after 2 multicast rounds.
func DefaultTuning() Tuning { return tuning.Default() }

// Config is the server's validated options core; NewServer's
// functional options populate it. Construct servers with NewServer;
// the Config-accepting NewServerConfig shim exists only for migration.
type Config struct {
	// Tuning holds the shared protocol knobs. Zero-valued fields take
	// the paper defaults (DefaultTuning); the server itself consumes K
	// and Degree, while the transports read the rest through
	// Server.Tuning so rho0, the NACK target and the worker bound are
	// configured in exactly one place.
	Tuning
	// KeySeed, when non-zero, makes key generation deterministic --
	// for tests and experiments only.
	KeySeed uint64
	// Obs, when non-nil, receives the server's metrics and trace
	// events. A nil registry costs the pipeline nothing.
	Obs *obs.Registry
	// Signer, when non-nil, turns on amortized interval signing: each
	// rekey message's Merkle root is signed once and every packet
	// carries an inclusion proof plus that signature (see auth.go).
	Signer *keys.Signer
}

func (c Config) withDefaults() Config {
	c.Tuning = c.Tuning.WithDefaults()
	return c
}

// Option configures a Server (see NewServer).
type Option func(*Config)

// WithTuning sets the shared protocol knobs; zero-valued fields take
// the paper defaults.
func WithTuning(t Tuning) Option { return func(c *Config) { c.Tuning = t } }

// WithKeySeed makes key generation deterministic -- tests and
// experiments only.
func WithKeySeed(seed uint64) Option { return func(c *Config) { c.KeySeed = seed } }

// WithObs attaches an observability registry to the server, the
// message builder and the key tree pipeline.
func WithObs(reg *obs.Registry) Option { return func(c *Config) { c.Obs = reg } }

// Server is the group key server: registration, key management and
// rekey message construction. It is safe for concurrent use.
//
// The key tree and its pending membership queues live in a single
// internal/shard Shard; the server owns the distribution side --
// message IDs, assignment, FEC partitioning.
type Server struct {
	cfg   Config
	obs   *obs.Registry
	shard *shard.Shard

	mu sync.Mutex
	// The message state below is guarded by mu.
	msgSeq  uint8         // guarded by mu
	lastMsg *RekeyMessage // guarded by mu
}

// NewServer creates a server with an empty group. With no options it
// uses the paper's default tuning, a CSPRNG key generator and no
// observability.
func NewServer(opts ...Option) (*Server, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return buildServer(cfg)
}

// NewServerConfig creates a server from an explicit Config.
//
// Deprecated: use NewServer with WithTuning / WithKeySeed / WithObs.
// This shim exists for callers migrating from the old
// NewServer(Config) signature and will be removed.
func NewServerConfig(cfg Config) (*Server, error) { return buildServer(cfg) }

func buildServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Tuning.Validate(); err != nil {
		return nil, fmt.Errorf("rekey: %w", err)
	}
	strat, err := keytree.NewStrategy(cfg.Strategy)
	if err != nil {
		return nil, fmt.Errorf("rekey: %w", err)
	}
	if cfg.GF256Kernel != "" {
		if err := gf256.SetKernel(cfg.GF256Kernel); err != nil {
			return nil, fmt.Errorf("rekey: %w", err)
		}
	}
	var gen *keys.Generator
	if cfg.KeySeed != 0 {
		gen = keys.NewDeterministicGenerator(cfg.KeySeed)
	}
	sh, err := shard.New(shard.Config{
		Degree:   cfg.Degree,
		Workers:  cfg.Workers,
		Strategy: strat,
		Gen:      gen,
		Obs:      cfg.Obs,
	})
	if err != nil {
		return nil, fmt.Errorf("rekey: %w", err)
	}
	return &Server{cfg: cfg, obs: cfg.Obs, shard: sh}, nil
}

// Tuning returns the server's effective (defaulted, validated) tuning.
// The transports read rho0, the round budget and the worker bound from
// here so the knobs stay defined in one place.
func (s *Server) Tuning() Tuning { return s.cfg.Tuning }

// Obs returns the registry the server reports to (nil when
// unobserved). The UDP transport shares it.
func (s *Server) Obs() *obs.Registry { return s.obs }

// QueueJoin records a join request for the next rekey interval. The
// member's credentials become available after the next Rekey call.
func (s *Server) QueueJoin(m MemberID) error {
	if err := s.shard.QueueJoin(m); err != nil {
		return fmt.Errorf("rekey: %w", err)
	}
	j, _ := s.shard.Pending()
	s.obs.Set(obs.GPendingJoins, float64(j))
	return nil
}

// QueueLeave records a leave request for the next rekey interval.
func (s *Server) QueueLeave(m MemberID) error {
	if err := s.shard.QueueLeave(m); err != nil {
		return fmt.Errorf("rekey: %w", err)
	}
	_, l := s.shard.Pending()
	s.obs.Set(obs.GPendingLeaves, float64(l))
	return nil
}

// Pending reports the queued joins and leaves.
func (s *Server) Pending() (joins, leaves int) {
	return s.shard.Pending()
}

// N returns the current group size.
func (s *Server) N() int { return s.shard.N() }

// GroupKey returns the current group key.
func (s *Server) GroupKey() keys.Key { return s.shard.RootKey() }

// Credentials returns a current member's registration material.
func (s *Server) Credentials(m MemberID) (Credentials, bool) {
	id, ok := s.shard.UserID(m)
	if !ok {
		return Credentials{}, false
	}
	key, _ := s.shard.IndividualKey(m)
	return Credentials{
		Member: m, NodeID: id, Key: key,
		Degree: s.cfg.Degree, BlockSize: s.cfg.K,
	}, true
}

// PathKeys returns the keys member m should hold after a completed
// rekey: its individual key plus the key of every k-node on its path to
// the root, keyed by node ID. Consistency oracles and end-to-end tests
// compare recovered member state against it.
func (s *Server) PathKeys(m MemberID) (map[int]keys.Key, bool) {
	return s.shard.PathKeys(m)
}

// Snapshot returns the server's key tree as deterministic snapshot
// bytes -- the failover checkpoint a standby server restores from
// (keytree.Restore / shard.Shard.Restore).
func (s *Server) Snapshot() []byte { return s.shard.Snapshot() }

// ErrNoChange is returned by Rekey when no membership changes are
// pending: no rekey message is needed.
var ErrNoChange = errors.New("rekey: no pending membership changes")

// Rekey processes the queued batch (the end of a rekey interval): it
// updates the key tree via the marking algorithm, runs key assignment,
// and returns the rekey message to transport.
func (s *Server) Rekey() (*RekeyMessage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	joins, leaves := s.shard.Pending()
	if joins+leaves == 0 {
		return nil, ErrNoChange
	}
	var buildStart time.Time
	if s.obs.Enabled() {
		buildStart = time.Now()
	}
	res, err := s.shard.ProcessPending()
	if err != nil {
		return nil, err
	}
	if res == nil {
		// A concurrent Rekey drained the queues first.
		return nil, ErrNoChange
	}

	plan, err := assign.Build(res)
	if err != nil {
		return nil, err
	}
	msgID := s.msgSeq & packet.MaxMsgID
	s.msgSeq++
	encs, err := assign.Materialize(plan, res, msgID, s.cfg.K)
	if err != nil {
		return nil, err
	}
	part, err := blockplan.NewPartition(len(plan.Packets), s.cfg.K)
	if err != nil {
		return nil, err
	}
	rm := &RekeyMessage{
		MsgID:  msgID,
		Result: res,
		Plan:   plan,
		ENC:    encs,
		Part:   part,
		degree: s.cfg.Degree,
		k:      s.cfg.K,
		obs:    s.obs,
	}
	if s.cfg.Signer != nil {
		if err := rm.buildAuth(s.cfg.Signer); err != nil {
			return nil, err
		}
	}
	s.lastMsg = rm
	if s.obs.Enabled() {
		s.obs.Inc(obs.CRekeys)
		s.obs.Add(obs.CJoins, int64(joins))
		s.obs.Add(obs.CLeaves, int64(leaves))
		s.obs.Observe(obs.HBatchSize, float64(joins+leaves))
		s.obs.ObserveSince(obs.HRekeyBuild, buildStart)
		s.obs.Set(obs.GGroupSize, float64(s.shard.N()))
		s.obs.Set(obs.GPendingJoins, 0)
		s.obs.Set(obs.GPendingLeaves, 0)
		s.obs.Emit(obs.Event{Kind: obs.EvRekeyBuilt, MsgID: msgID, Value: float64(part.NumReal)})
	}
	return rm, nil
}

// LastMessage returns the most recent rekey message, if any.
func (s *Server) LastMessage() *RekeyMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastMsg
}

// RekeyMessage is one interval's rekey workload, ready for transport.
type RekeyMessage struct {
	MsgID  uint8
	Result *keytree.BatchResult
	Plan   *assign.Plan
	// ENC holds the materialised packets in send order: block b's data
	// slot s is ENC[b*k+s]; last-block padding duplicates included.
	ENC  []*packet.ENC
	Part blockplan.Partition

	degree int
	k      int
	obs    *obs.Registry
	// auth is the interval's authentication state (Merkle trees, root
	// signature, pre-built trailers); nil on an unsigned server. Built
	// once in Rekey, read-only afterwards.
	auth *intervalAuth

	mu     sync.Mutex
	coder  *fec.Coder // guarded by mu
	data   [][][]byte // guarded by mu; per block: k FEC payloads, built lazily
	parity [][][]byte // guarded by mu; per block: parity payloads generated so far
	wire   [][]byte   // guarded by mu; cached ENC datagrams on unsigned messages
}

// Blocks returns the number of FEC blocks.
func (rm *RekeyMessage) Blocks() int { return rm.Part.NumBlocks() }

// ensureCoderLocked initialises the lazy FEC state; the Locked suffix
// records that callers hold rm.mu.
func (rm *RekeyMessage) ensureCoderLocked() error {
	if rm.coder != nil {
		return nil
	}
	c, err := fec.NewCoder(rm.k, fec.MaxShards-rm.k)
	if err != nil {
		return err
	}
	rm.coder = c
	rm.data = make([][][]byte, rm.Blocks())
	rm.parity = make([][][]byte, rm.Blocks())
	return nil
}

// blockDataLocked materialises (once) the FEC payloads of one block.
// Callers hold rm.mu.
func (rm *RekeyMessage) blockDataLocked(block int) ([][]byte, error) {
	if rm.data[block] == nil {
		payloads := make([][]byte, rm.k)
		for s := 0; s < rm.k; s++ {
			if rm.auth != nil {
				// The authenticated wire bytes already exist; parity
				// covers the packet span, not the trailer.
				payloads[s] = rm.auth.encWire[block*rm.k+s][packet.FECOffset:packet.PacketLen]
				continue
			}
			raw, err := rm.ENC[block*rm.k+s].Marshal()
			if err != nil {
				return nil, err
			}
			payloads[s] = raw[packet.FECOffset:]
		}
		rm.data[block] = payloads
	}
	return rm.data[block], nil
}

// parityPacket wraps a cached payload in its wire header.
func (rm *RekeyMessage) parityPacket(block, idx int, payload []byte) (*packet.PARITY, error) {
	if block > 0xff || rm.k+idx > 0xff {
		return nil, fmt.Errorf("rekey: parity shard (%d,%d) exceeds wire fields", block, rm.k+idx)
	}
	return &packet.PARITY{
		MsgID:   rm.MsgID,
		BlockID: uint8(block),
		Seq:     uint8(rm.k + idx),
		Payload: payload,
	}, nil
}

// Parity generates PARITY packet idx (0-based, stable across calls) for
// the given block. Generated payloads are cached: parity indices are
// stable, so a prefix of each block's parity sequence is kept and
// extended on demand (or in bulk by PrecomputeParity).
func (rm *RekeyMessage) Parity(block, idx int) (*packet.PARITY, error) {
	payload, err := rm.parityPayload(block, idx)
	if err != nil {
		return nil, err
	}
	return rm.parityPacket(block, idx, payload)
}

// parityPayload returns (generating and caching if needed) the raw FEC
// payload of parity packet idx of the given block. On a cache hit it
// does not allocate, which makes it the backing for the zero-copy send
// path (AppendWireParity).
func (rm *RekeyMessage) parityPayload(block, idx int) ([]byte, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if err := rm.ensureCoderLocked(); err != nil {
		return nil, err
	}
	if block < 0 || block >= rm.Blocks() {
		return nil, fmt.Errorf("rekey: block %d out of range", block)
	}
	if idx < 0 || idx >= rm.coder.MaxParity() {
		return nil, fmt.Errorf("fec: parity index %d out of range [0,%d)", idx, rm.coder.MaxParity())
	}
	if idx >= len(rm.parity[block]) {
		rm.obs.Inc(obs.CParityCacheMiss)
		data, err := rm.blockDataLocked(block)
		if err != nil {
			return nil, err
		}
		have := len(rm.parity[block])
		fresh, err := rm.coder.EncodeAll(data, have, idx+1-have)
		if err != nil {
			return nil, err
		}
		rm.parity[block] = append(rm.parity[block], fresh...)
	} else {
		rm.obs.Inc(obs.CParityCacheHit)
	}
	return rm.parity[block][idx], nil
}

// PrecomputeParity generates (and caches) parity payloads for many
// blocks at once: after it returns, block b has at least counts[b]
// parity packets cached, so subsequent Parity calls in that range are
// lookups. The per-block encodes fan out across a bounded worker pool
// (workers <= 0 means GOMAXPROCS); the cached bytes are identical to
// what serial Parity calls would produce. counts may be shorter than
// the block count; missing entries mean zero. Cancelling ctx abandons
// the remaining encodes and returns ctx.Err(); already-cached parity
// stays cached.
func (rm *RekeyMessage) PrecomputeParity(ctx context.Context, counts []int, workers int) error {
	rm.mu.Lock()
	if err := rm.ensureCoderLocked(); err != nil {
		rm.mu.Unlock()
		return err
	}
	if len(counts) > rm.Blocks() {
		rm.mu.Unlock()
		return fmt.Errorf("rekey: parity counts for %d blocks, message has %d", len(counts), rm.Blocks())
	}
	var reqs []protocol.BlockParity
	var blockOf []int
	for b, want := range counts {
		have := len(rm.parity[b])
		if want <= have {
			continue
		}
		if want > rm.coder.MaxParity() {
			rm.mu.Unlock()
			return fmt.Errorf("rekey: block %d wants %d parity packets, max %d", b, want, rm.coder.MaxParity())
		}
		data, err := rm.blockDataLocked(b)
		if err != nil {
			rm.mu.Unlock()
			return err
		}
		reqs = append(reqs, protocol.BlockParity{Data: data, First: have, N: want - have})
		blockOf = append(blockOf, b)
	}
	rm.mu.Unlock()
	if len(reqs) == 0 {
		return nil
	}
	var encStart time.Time
	if rm.obs.Enabled() {
		encStart = time.Now()
	}

	// Encode outside the lock: the coder and the materialised block data
	// are read-only from here on.
	outs, err := protocol.EncodeBlocks(ctx, rm.coder, reqs, workers)
	if err != nil {
		return err
	}
	if rm.obs.Enabled() {
		rm.obs.ObserveSince(obs.HParityEncode, encStart)
		for _, rq := range reqs {
			rm.obs.Observe(obs.HParityPerBlock, float64(rq.N))
		}
	}

	rm.mu.Lock()
	defer rm.mu.Unlock()
	for i, b := range blockOf {
		// A concurrent caller may have extended this block's prefix in
		// the meantime; parity bytes are deterministic, so splice in only
		// the packets that are still missing.
		for j, p := range outs[i] {
			if reqs[i].First+j == len(rm.parity[b]) {
				rm.parity[b] = append(rm.parity[b], p)
			}
		}
	}
	return nil
}

// PacketFor returns the ENC packet serving the given user node ID.
func (rm *RekeyMessage) PacketFor(nodeID int) (*packet.ENC, bool) {
	pi, ok := rm.Plan.UserPacket[nodeID]
	if !ok {
		return nil, false
	}
	return rm.ENC[pi], true
}

// USRFor builds the unicast USR packet for the given user node ID: just
// that user's encryptions plus its (possibly new) ID.
func (rm *RekeyMessage) USRFor(nodeID int) (*packet.USR, error) {
	if nodeID > 0xffff || rm.Result.MaxKID > 0xffff {
		return nil, fmt.Errorf("rekey: node ID %d exceeds wire field", nodeID)
	}
	return &packet.USR{
		MsgID:  rm.MsgID,
		NewID:  uint16(nodeID),
		MaxKID: uint16(rm.Result.MaxKID),
		Encs:   rm.Result.UserNeeds(nodeID),
	}, nil
}

// NumRealPackets returns h, the number of real (non-duplicate) ENC
// packets in the message.
func (rm *RekeyMessage) NumRealPackets() int { return rm.Part.NumReal }
