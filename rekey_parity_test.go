package rekey_test

// Tests for the rekey message's parity cache and its parallel
// precompute path: whatever mixture of Parity, PrecomputeParity and
// concurrency produces a PARITY packet, the bytes must equal the ones
// a fresh message generates serially.

import (
	"bytes"
	"context"
	"sync"
	"testing"

	rekey "repro"
)

// twoMessages builds two identical rekey messages from two servers fed
// the same deterministic workload.
func twoMessages(t *testing.T, n int) (*rekey.RekeyMessage, *rekey.RekeyMessage) {
	t.Helper()
	var rms [2]*rekey.RekeyMessage
	for i := range rms {
		srv, err := rekey.NewServer(rekey.WithKeySeed(42))
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < n; m++ {
			if err := srv.QueueJoin(rekey.MemberID(m)); err != nil {
				t.Fatal(err)
			}
		}
		rm, err := srv.Rekey()
		if err != nil {
			t.Fatal(err)
		}
		rms[i] = rm
	}
	return rms[0], rms[1]
}

func TestPrecomputeParityMatchesSerial(t *testing.T) {
	pre, serial := twoMessages(t, 700) // several FEC blocks at k=10
	blocks := pre.Blocks()
	if blocks < 2 {
		t.Fatalf("want a multi-block message, got %d block(s)", blocks)
	}
	counts := make([]int, blocks)
	for b := range counts {
		counts[b] = 3 + b%5
	}
	if err := pre.PrecomputeParity(context.Background(), counts, 4); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < blocks; b++ {
		for i := 0; i < counts[b]; i++ {
			got, err := pre.Parity(b, i)
			if err != nil {
				t.Fatal(err)
			}
			want, err := serial.Parity(b, i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Payload, want.Payload) || got.Seq != want.Seq || got.BlockID != want.BlockID {
				t.Fatalf("precomputed parity (%d,%d) differs from serial", b, i)
			}
		}
	}
	// Extending past the precomputed prefix must still match.
	for b := 0; b < blocks; b++ {
		got, err := pre.Parity(b, counts[b]+2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := serial.Parity(b, counts[b]+2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("post-prefix parity (%d,%d) differs from serial", b, counts[b]+2)
		}
	}
}

// TestParityConcurrentCallers hammers one message's parity cache from
// many goroutines mixing Parity and PrecomputeParity; run under -race
// this checks the cache's locking, and every result is checked against
// a serially generated twin.
func TestParityConcurrentCallers(t *testing.T) {
	rm, serial := twoMessages(t, 500)
	blocks := rm.Blocks()
	const perBlock = 6
	want := make([][][]byte, blocks)
	for b := 0; b < blocks; b++ {
		want[b] = make([][]byte, perBlock)
		for i := 0; i < perBlock; i++ {
			p, err := serial.Parity(b, i)
			if err != nil {
				t.Fatal(err)
			}
			want[b][i] = p.Payload
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				counts := make([]int, blocks)
				for b := range counts {
					counts[b] = 1 + (b+g)%perBlock
				}
				if err := rm.PrecomputeParity(context.Background(), counts, 2); err != nil {
					errc <- err
					return
				}
			}
			for b := 0; b < blocks; b++ {
				for i := 0; i < perBlock; i++ {
					p, err := rm.Parity(b, i)
					if err != nil {
						errc <- err
						return
					}
					if !bytes.Equal(p.Payload, want[b][i]) {
						t.Errorf("goroutine %d: parity (%d,%d) differs from serial", g, b, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestPrecomputeParityErrors(t *testing.T) {
	rm, _ := twoMessages(t, 64)
	tooMany := make([]int, rm.Blocks()+1)
	if err := rm.PrecomputeParity(context.Background(), tooMany, 2); err == nil {
		t.Error("counts longer than block count accepted")
	}
	huge := make([]int, rm.Blocks())
	huge[0] = 1 << 10
	if err := rm.PrecomputeParity(context.Background(), huge, 2); err == nil {
		t.Error("count beyond MaxParity accepted")
	}
	// nil / short counts are fine and do nothing.
	if err := rm.PrecomputeParity(context.Background(), nil, 2); err != nil {
		t.Errorf("nil counts: %v", err)
	}
}
