// UDPGroup: a complete group over real UDP sockets on loopback. The key
// server multicasts ENC + proactive PARITY packets; a quarter of the
// members drop 30% of multicast packets, so recovery exercises the
// NACK / reactive-parity / unicast machinery end to end -- the protocol
// on real bytes rather than in the simulator.
//
//	go run ./examples/udpgroup
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	rekey "repro"
	"repro/internal/packet"
	"repro/internal/udptrans"
)

func main() {
	ctx := context.Background()
	const n = 150
	// Rely on reactive recovery (rho = 1) so the NACK path shows up.
	tun := rekey.DefaultTuning()
	tun.InitialRho = 1.0
	ks, err := rekey.NewServer(rekey.WithTuning(tun))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := udptrans.NewServer(ks, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("key server transport on %s\n", srv.Addr())

	for i := 1; i <= n; i++ {
		if err := ks.QueueJoin(rekey.MemberID(i)); err != nil {
			log.Fatal(err)
		}
	}
	msg, err := ks.Rekey()
	if err != nil {
		log.Fatal(err)
	}

	clients := map[rekey.MemberID]*udptrans.Client{}
	for i := 1; i <= n; i++ {
		id := rekey.MemberID(i)
		cred, _ := ks.Credentials(id)
		c, err := udptrans.NewClient(cred, srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		if i%4 == 0 { // every 4th member sits behind a lossy link
			rng := rand.New(rand.NewPCG(uint64(i), 99))
			c.Drop = func(pkt []byte) bool {
				typ, err := packet.Detect(pkt)
				if err != nil || typ == packet.TypeUSR {
					return false
				}
				return rng.Float64() < 0.5
			}
		}
		clients[id] = c
		srv.SetMemberAddr(id, c.Addr())
		go c.Run(ctx) //nolint:errcheck
		defer c.Close()
	}

	opts := udptrans.DefaultOptions()
	st, err := srv.Distribute(ctx, msg, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap: %d ENC, %d PARITY, %d USR, rounds %d, NACKs/round %v\n",
		st.EncSent, st.ParitySent, st.UsrSent, st.Rounds, st.NACKsPerRound)

	agree := 0
	want := ks.GroupKey()
	for _, c := range clients {
		if gk, ok := c.Member.GroupKey(); ok && gk.Equal(want) {
			agree++
		}
	}
	fmt.Printf("group key %s: %d/%d members agree\n", want.String(), agree, len(clients))

	// Churn interval: ten members leave, one joins.
	for _, id := range []rekey.MemberID{4, 9, 13, 21, 33, 47, 58, 66, 79, 91} {
		if err := ks.QueueLeave(id); err != nil {
			log.Fatal(err)
		}
		clients[id].Close()
		srv.RemoveMemberAddr(id)
		delete(clients, id)
	}
	if err := ks.QueueJoin(1000); err != nil {
		log.Fatal(err)
	}
	msg, err = ks.Rekey()
	if err != nil {
		log.Fatal(err)
	}
	cred, _ := ks.Credentials(1000)
	c, err := udptrans.NewClient(cred, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	clients[1000] = c
	srv.SetMemberAddr(1000, c.Addr())
	go c.Run(ctx) //nolint:errcheck
	defer c.Close()

	st, err = srv.Distribute(ctx, msg, opts)
	if err != nil {
		log.Fatal(err)
	}
	agree = 0
	want = ks.GroupKey()
	for _, c := range clients {
		if gk, ok := c.Member.GroupKey(); ok && gk.Equal(want) {
			agree++
		}
	}
	fmt.Printf("after churn: group key %s: %d/%d members agree (%d ENC, %d PARITY, %d USR)\n",
		want.String(), agree, len(clients), st.EncSent, st.ParitySent, st.UsrSent)
}
