// Lossy: runs the rekey transport over the paper's simulated topology
// (20% of users behind 20%-loss links, the rest at 2%, 1% source loss)
// and shows the adaptive proactivity controller converging: after a few
// rekey messages the first-round NACK count settles around the target
// while bandwidth overhead stays modest.
//
//	go run ./examples/lossy
package main

import (
	"fmt"
	"log"

	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/workload"
)

func main() {
	const n = 4096
	gen, err := workload.NewGenerator(n, 4, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	star := netsim.DefaultStar(gen.PostBatchUsers(0, n/4), 42)
	net, err := netsim.NewStar(star)
	if err != nil {
		log.Fatal(err)
	}
	cfg := protocol.DefaultConfig()
	cfg.AdaptiveRho = true
	cfg.NumNACK = 20
	cfg.MaxMulticastRounds = 2 // then unicast
	sess, err := protocol.NewSession(cfg, net, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("group: %d users (%d leave per interval), 20%% of receivers at 20%% loss\n", n, n/4)
	fmt.Printf("%-4s %-6s %-12s %-10s %-10s %-8s %-8s\n",
		"msg", "rho", "round1NACKs", "overhead", "usrPkts", "rounds", "missed")
	for i := 0; i < 15; i++ {
		res, plan, err := gen.Batch(0, n/4)
		if err != nil {
			log.Fatal(err)
		}
		msg, err := protocol.BuildMessage(res, plan, 10, 4)
		if err != nil {
			log.Fatal(err)
		}
		met, err := sess.Run(msg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-6.2f %-12d %-10.3f %-10d %-8d %-8d\n",
			met.MsgID, met.RhoUsed, met.Round1NACKs, met.BandwidthOverhead(),
			met.UsrSent, met.MulticastRounds, met.MissedDeadline)
	}
	fmt.Printf("\nfinal proactivity factor: %.2f (NACK target %d)\n", sess.Rho(), sess.NumNACK())
}
