// Pay-per-view: the paper's motivating application. A 4096-user group
// receives content encrypted under the evolving group key; each rekey
// interval processes a batch of subscription churn, and a user whose
// subscription lapses is provably locked out of subsequent content
// while every remaining subscriber keeps decrypting seamlessly.
//
//	go run ./examples/payperview
package main

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"

	rekey "repro"
	"repro/internal/keys"
)

const subscribers = 4096

func main() {
	server, err := rekey.NewServer()
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= subscribers; i++ {
		if err := server.QueueJoin(rekey.MemberID(i)); err != nil {
			log.Fatal(err)
		}
	}
	msg, err := server.Rekey()
	if err != nil {
		log.Fatal(err)
	}
	members := map[rekey.MemberID]*rekey.Member{}
	for i := 1; i <= subscribers; i++ {
		members[rekey.MemberID(i)] = mustMember(server, rekey.MemberID(i), msg)
	}
	fmt.Printf("bootstrapped %d subscribers: %d ENC packets, %d encryptions, dup overhead %.3f\n",
		server.N(), msg.NumRealPackets(), len(msg.Result.Encryptions), msg.Plan.DuplicationOverhead())

	rng := rand.New(rand.NewPCG(7, 7))
	nextID := rekey.MemberID(subscribers + 1)
	var lapsed *rekey.Member
	var lapsedID rekey.MemberID

	for interval := 1; interval <= 5; interval++ {
		// Broadcast this interval's content under the current group key.
		content := fmt.Sprintf("interval %d: pay-per-view frame data", interval)
		ct := seal(server.GroupKey(), []byte(content))

		// Every subscriber decrypts.
		ok := 0
		for _, m := range members {
			gk, have := m.GroupKey()
			if have && bytes.Equal(open(gk, ct), []byte(content)) {
				ok++
			}
		}
		fmt.Printf("interval %d: %d/%d subscribers decrypted the broadcast\n", interval, ok, len(members))
		if lapsed != nil {
			gk, _ := lapsed.GroupKey()
			if bytes.Equal(open(gk, ct), []byte(content)) {
				log.Fatalf("lapsed subscriber %d decrypted interval %d!", lapsedID, interval)
			}
			fmt.Printf("interval %d: lapsed subscriber %d locked out\n", interval, lapsedID)
		}

		// Churn: ~2% lapse (one of them tracked), ~2% subscribe.
		var leaves []rekey.MemberID
		for id := range members {
			if rng.Float64() < 0.02 {
				leaves = append(leaves, id)
			}
		}
		if len(leaves) == 0 {
			for id := range members {
				leaves = append(leaves, id)
				break
			}
		}
		for _, id := range leaves {
			if err := server.QueueLeave(id); err != nil {
				log.Fatal(err)
			}
		}
		lapsedID = leaves[0]
		lapsed = members[lapsedID]
		for _, id := range leaves {
			delete(members, id)
		}
		joins := rng.IntN(100) + 20
		var fresh []rekey.MemberID
		for j := 0; j < joins; j++ {
			fresh = append(fresh, nextID)
			if err := server.QueueJoin(nextID); err != nil {
				log.Fatal(err)
			}
			nextID++
		}

		msg, err = server.Rekey()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rekey %d: %d leave, %d join -> %d ENC packets (%d blocks), %d updated keys\n",
			interval, len(leaves), len(fresh), msg.NumRealPackets(), msg.Blocks(), msg.Result.UpdatedKNodes)
		for _, id := range fresh {
			members[id] = mustMember(server, id, msg)
		}
		for id, m := range members {
			cred, _ := server.Credentials(id)
			deliver(msg, m, cred.NodeID)
		}
	}
	fmt.Println("done: forward secrecy held across all intervals")
}

func mustMember(server *rekey.Server, id rekey.MemberID, msg *rekey.RekeyMessage) *rekey.Member {
	cred, ok := server.Credentials(id)
	if !ok {
		log.Fatalf("no credentials for %d", id)
	}
	m, err := rekey.NewMember(cred)
	if err != nil {
		log.Fatal(err)
	}
	deliver(msg, m, cred.NodeID)
	return m
}

func deliver(msg *rekey.RekeyMessage, m *rekey.Member, nodeID int) {
	pkt, ok := msg.PacketFor(nodeID)
	if !ok {
		log.Fatalf("no packet for node %d", nodeID)
	}
	raw, err := pkt.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	// Fresh joiners are keyed at construction and see their packet a
	// second time in the delivery sweep; that duplicate is ErrStale by
	// design, not a failure.
	if _, err := m.Ingest(raw); err != nil && !errors.Is(err, rekey.ErrStale) {
		log.Fatal(err)
	}
}

// seal encrypts content under the group key with AES-CTR (zero IV is
// fine here: each interval uses a fresh key).
func seal(gk keys.Key, plaintext []byte) []byte {
	block, err := aes.NewCipher(gk[:])
	if err != nil {
		log.Fatal(err)
	}
	out := make([]byte, len(plaintext))
	cipher.NewCTR(block, make([]byte, aes.BlockSize)).XORKeyStream(out, plaintext)
	return out
}

//rekeylint:declassify the AEAD-opened broadcast payload is pay-per-view content, not key material
func open(gk keys.Key, ct []byte) []byte {
	return seal(gk, ct) // CTR is symmetric
}
