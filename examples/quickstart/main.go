// Quickstart: create a group key server, register members, process a
// batch of joins and leaves, and let every member derive the new group
// key from its single ENC packet.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rekey "repro"
)

func main() {
	// A key server with the paper's defaults: degree-4 key tree, FEC
	// block size 10.
	server, err := rekey.NewServer()
	if err != nil {
		log.Fatal(err)
	}

	// Register 64 members; the batch is processed at the end of the
	// rekey interval by Rekey().
	for i := 1; i <= 64; i++ {
		if err := server.QueueJoin(rekey.MemberID(i)); err != nil {
			log.Fatal(err)
		}
	}
	msg, err := server.Rekey()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap: %d members, %d encryptions in %d ENC packets (%d FEC blocks)\n",
		server.N(), len(msg.Result.Encryptions), msg.NumRealPackets(), msg.Blocks())

	// Each member is constructed from its registration credentials and
	// fed its one specific ENC packet -- the UKA guarantee.
	members := map[rekey.MemberID]*rekey.Member{}
	for i := 1; i <= 64; i++ {
		cred, _ := server.Credentials(rekey.MemberID(i))
		m, err := rekey.NewMember(cred)
		if err != nil {
			log.Fatal(err)
		}
		deliver(msg, m, cred.NodeID)
		members[rekey.MemberID(i)] = m
	}
	fmt.Printf("group key: %s (all %d members agree: %v)\n",
		server.GroupKey().String(), len(members), allAgree(server, members))

	// One rekey interval later: members 7 and 23 leave, members 65 and
	// 66 join. One rekey message re-keys everyone.
	for _, id := range []rekey.MemberID{7, 23} {
		if err := server.QueueLeave(id); err != nil {
			log.Fatal(err)
		}
		delete(members, id)
	}
	for _, id := range []rekey.MemberID{65, 66} {
		if err := server.QueueJoin(id); err != nil {
			log.Fatal(err)
		}
	}
	msg, err = server.Rekey()
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []rekey.MemberID{65, 66} {
		cred, _ := server.Credentials(id)
		m, err := rekey.NewMember(cred)
		if err != nil {
			log.Fatal(err)
		}
		members[id] = m
	}
	for id, m := range members {
		cred, _ := server.Credentials(id)
		deliver(msg, m, cred.NodeID)
	}
	fmt.Printf("after churn (2 leave, 2 join): group key %s (all %d members agree: %v)\n",
		server.GroupKey().String(), len(members), allAgree(server, members))
}

// deliver hands a member its specific ENC packet over "the wire".
// (The UDP transport finds the packet by user-ID range; in process we
// look it up directly with the member's post-batch node ID.)
func deliver(msg *rekey.RekeyMessage, m *rekey.Member, nodeID int) {
	pkt, ok := msg.PacketFor(nodeID)
	if !ok {
		log.Fatalf("no packet for node %d", nodeID)
	}
	raw, err := pkt.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Ingest(raw); err != nil {
		log.Fatal(err)
	}
}

func allAgree(server *rekey.Server, members map[rekey.MemberID]*rekey.Member) bool {
	want := server.GroupKey()
	for _, m := range members {
		gk, ok := m.GroupKey()
		if !ok || !gk.Equal(want) {
			return false
		}
	}
	return true
}
