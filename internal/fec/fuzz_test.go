package fec

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// FuzzFECDecode drives the MDS property from fuzzer-chosen parameters:
// derive (k, m, packet length, shard subset) from the input, encode a
// block, hand Decode an arbitrary k-sized mixture of data and parity
// shards, and require exact reconstruction. It then corrupts shard
// indices and requires Decode to fail loudly (error), never to return
// success with wrong data.
func FuzzFECDecode(f *testing.F) {
	f.Add(uint8(10), uint8(5), uint16(64), uint64(1))
	f.Add(uint8(1), uint8(1), uint16(1), uint64(2))
	f.Add(uint8(50), uint8(25), uint16(128), uint64(3))
	f.Add(uint8(20), uint8(20), uint16(1024), uint64(4))
	f.Fuzz(func(t *testing.T, kRaw, mRaw uint8, plenRaw uint16, seed uint64) {
		k := int(kRaw)%100 + 1
		m := int(mRaw)%(MaxShards-k) + 1
		plen := int(plenRaw)%2048 + 1
		rng := rand.New(rand.NewPCG(seed, 0xfec))

		c, err := NewCoder(k, m)
		if err != nil {
			t.Fatalf("NewCoder(%d,%d): %v", k, m, err)
		}
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, plen)
			for j := range data[i] {
				data[i][j] = byte(rng.Uint32())
			}
		}
		parity, err := c.EncodeAll(data, 0, m)
		if err != nil {
			t.Fatalf("EncodeAll: %v", err)
		}

		// Pick a random k-subset of the k+m shards.
		perm := rng.Perm(k + m)
		shards := make([]Shard, 0, k)
		for _, idx := range perm[:k] {
			if idx < k {
				shards = append(shards, Shard{Index: idx, Data: data[idx]})
			} else {
				shards = append(shards, Shard{Index: idx, Data: parity[idx-k]})
			}
		}
		got, err := c.Decode(shards)
		if err != nil {
			t.Fatalf("Decode of %d valid shards (k=%d, m=%d): %v", len(shards), k, m, err)
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				t.Fatalf("reconstructed packet %d differs (k=%d, m=%d, plen=%d)", i, k, m, plen)
			}
		}

		// Corrupt one shard's index so the set no longer holds k distinct
		// valid indices: duplicate another shard's index, or push it out
		// of range. Decode must return an error, not wrong data.
		bad := make([]Shard, len(shards))
		copy(bad, shards)
		victim := rng.IntN(len(bad))
		if len(bad) > 1 && rng.IntN(2) == 0 {
			bad[victim].Index = bad[(victim+1)%len(bad)].Index
		} else {
			bad[victim].Index = k + m + rng.IntN(8)
		}
		if _, err := c.Decode(bad); err == nil {
			t.Fatalf("Decode accepted a corrupted shard index set (k=%d, m=%d)", k, m)
		}
	})
}

// FuzzDecodeShardSoup feeds Decode arbitrary shard index/length
// combinations: it must never panic, and any successful decode under a
// consistent shard set must round-trip through re-encoding.
func FuzzDecodeShardSoup(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2, 3, 4, 5})
	f.Add(uint8(5), []byte{250, 251, 0, 0, 9})
	f.Fuzz(func(t *testing.T, kRaw uint8, soup []byte) {
		k := int(kRaw)%20 + 1
		c, err := NewCoder(k, k)
		if err != nil {
			t.Fatal(err)
		}
		const plen = 8
		// Each soup byte becomes one shard: index from the byte (possibly
		// invalid, duplicated, or out of range), payload derived from it.
		shards := make([]Shard, 0, len(soup))
		for i, b := range soup {
			n := plen
			if b%7 == 0 {
				n = int(b%13) + 1 // mismatched lengths must be rejected
			}
			payload := make([]byte, n)
			for j := range payload {
				payload[j] = b ^ byte(i) ^ byte(j)
			}
			shards = append(shards, Shard{Index: int(b) - 3, Data: payload})
		}
		// Must not panic; errors are fine.
		c.Decode(shards)
	})
}
