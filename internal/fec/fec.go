// Package fec implements a systematic Reed-Solomon erasure code over
// GF(2^8), the "RSE coder" the rekey transport protocol uses to produce
// PARITY packets for each block of ENC packets.
//
// A Coder is configured with a block size k (number of data packets).
// Encode produces any number m of parity packets (k+m <= 256); a receiver
// holding ANY k of the k+m packets of a block reconstructs the k data
// packets. This is the same maximum-distance-separable property as
// L. Rizzo's Vandermonde-based codec used by the paper; we derive parity
// rows from a Cauchy matrix, whose square submatrices are all invertible,
// which makes the systematic construction direct.
//
// Encoding cost for one parity packet is Theta(k * packetLen), matching
// the linear-in-k encoding-time model in the paper's Section 5.
package fec

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// MaxShards is the maximum total number of packets (data + parity) in one
// block. It is bounded by the field size.
const MaxShards = 256

// Coder encodes and decodes fixed-size packet blocks.
// A Coder is safe for concurrent use by multiple goroutines after
// construction: its state is read-only.
type Coder struct {
	k int
	// cauchyRow(i) over data index j is 1/(x_i ^ y_j) with
	// x_i = k + i (parity index space) and y_j = j (data index space).
	// Rows are materialised lazily up to maxParity at construction.
	rows [][]byte
}

// NewCoder returns a Coder for blocks of k data packets able to produce
// up to maxParity parity packets. It returns an error if the shard
// counts exceed the field bound.
func NewCoder(k, maxParity int) (*Coder, error) {
	if k <= 0 {
		return nil, fmt.Errorf("fec: block size k = %d, must be positive", k)
	}
	if maxParity < 0 {
		return nil, fmt.Errorf("fec: maxParity = %d, must be non-negative", maxParity)
	}
	if k+maxParity > MaxShards {
		return nil, fmt.Errorf("fec: k+maxParity = %d exceeds %d", k+maxParity, MaxShards)
	}
	c := &Coder{k: k, rows: make([][]byte, maxParity)}
	for i := range c.rows {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = gf256.Inv(byte(k+i) ^ byte(j))
		}
		c.rows[i] = row
	}
	return c, nil
}

// K returns the block size (number of data packets per block).
func (c *Coder) K() int { return c.k }

// MaxParity returns the maximum number of parity packets the Coder can
// produce for one block.
func (c *Coder) MaxParity() int { return len(c.rows) }

// ErrShortBlock is returned by Decode when fewer than k packets of the
// block are available.
var ErrShortBlock = errors.New("fec: fewer than k packets available")

// Parity computes parity packet number idx (0-based) for the given data
// packets. All data packets must have equal length; the result has the
// same length. Parity indices are stable: packet idx is the same bytes
// regardless of how many other parity packets are generated, so the
// server can generate additional parity packets in later rounds without
// re-encoding earlier ones.
func (c *Coder) Parity(data [][]byte, idx int) ([]byte, error) {
	if err := c.checkData(data); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(c.rows) {
		return nil, fmt.Errorf("fec: parity index %d out of range [0,%d)", idx, len(c.rows))
	}
	out := make([]byte, len(data[0]))
	row := c.rows[idx]
	for j, d := range data {
		gf256.MulAddSlice(out, d, row[j])
	}
	return out, nil
}

// Encode computes parity packets [first, first+n) for the block, one
// row at a time. It is the simple serial path; EncodeAll produces the
// same bytes with better locality and fewer allocations.
func (c *Coder) Encode(data [][]byte, first, n int) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		p, err := c.Parity(data, first+i)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// EncodeAll computes parity packets [first, first+n) for the block in
// one pass over the data: each data packet is loaded once and
// accumulated into every parity row while it is hot in cache, instead
// of re-walking all k data packets per parity row as Encode does. The
// n outputs share one row-major allocation. The bytes produced are
// identical to Encode's (parity indices are stable).
func (c *Coder) EncodeAll(data [][]byte, first, n int) ([][]byte, error) {
	if err := c.checkData(data); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("fec: parity count %d, must be non-negative", n)
	}
	if first < 0 || first+n > len(c.rows) {
		return nil, fmt.Errorf("fec: parity range [%d,%d) outside [0,%d)", first, first+n, len(c.rows))
	}
	plen := len(data[0])
	buf := make([]byte, n*plen)
	out := make([][]byte, n)
	for i := range out {
		out[i] = buf[i*plen : (i+1)*plen : (i+1)*plen]
	}
	for j, d := range data {
		for i := 0; i < n; i++ {
			gf256.MulAddSlice(out[i], d, c.rows[first+i][j])
		}
	}
	return out, nil
}

func (c *Coder) checkData(data [][]byte) error {
	if len(data) != c.k {
		return fmt.Errorf("fec: got %d data packets, coder expects k=%d", len(data), c.k)
	}
	l := len(data[0])
	for i, d := range data {
		if len(d) != l {
			return fmt.Errorf("fec: data packet %d has length %d, want %d", i, len(d), l)
		}
	}
	return nil
}

// Shard is one received packet of a block: its index in the block's
// shard space (data packets occupy [0,k), parity packet i occupies k+i)
// and its payload.
type Shard struct {
	Index int
	Data  []byte
}

// Decode reconstructs the k data packets of a block from any k received
// shards. Extra shards beyond k are ignored. It returns ErrShortBlock if
// fewer than k distinct shard indices are present.
func (c *Coder) Decode(shards []Shard) ([][]byte, error) {
	k := c.k
	// Select k shards with distinct indices, preferring data shards
	// (identity rows keep the decode matrix well-conditioned and cheap).
	seen := make(map[int]bool, len(shards))
	picked := make([]Shard, 0, k)
	for _, s := range shards {
		if s.Index >= 0 && s.Index < k && !seen[s.Index] {
			seen[s.Index] = true
			picked = append(picked, s)
		}
	}
	for _, s := range shards {
		if len(picked) == k {
			break
		}
		if s.Index >= k && s.Index < k+len(c.rows) && !seen[s.Index] {
			seen[s.Index] = true
			picked = append(picked, s)
		}
	}
	if len(picked) < k {
		return nil, ErrShortBlock
	}
	var plen = len(picked[0].Data)
	for _, s := range picked {
		if len(s.Data) != plen {
			return nil, fmt.Errorf("fec: shard %d has length %d, want %d", s.Index, len(s.Data), plen)
		}
	}

	// Fast path: all k data shards present.
	allData := true
	for _, s := range picked {
		if s.Index >= k {
			allData = false
			break
		}
	}
	out := make([][]byte, k)
	if allData {
		for _, s := range picked {
			out[s.Index] = append([]byte(nil), s.Data...)
		}
		return out, nil
	}

	// Build the k x k decode matrix whose row r is the generator row of
	// shard picked[r], invert it, and multiply by the received payloads.
	m := gf256.NewMatrix(k, k)
	for r, s := range picked {
		if s.Index < k {
			m.Set(r, s.Index, 1)
		} else {
			copy(m.Row(r), c.rows[s.Index-k])
		}
	}
	inv, ok := m.Invert()
	if !ok {
		// Cannot happen for a Cauchy code with distinct indices; guard
		// anyway so corrupted indices fail loudly rather than silently.
		return nil, errors.New("fec: decode matrix singular")
	}
	for i := 0; i < k; i++ {
		row := inv.Row(i)
		d := make([]byte, plen)
		for r, coef := range row {
			if coef != 0 {
				gf256.MulAddSlice(d, picked[r].Data, coef)
			}
		}
		out[i] = d
	}
	return out, nil
}
