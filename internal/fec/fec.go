// Package fec implements a systematic Reed-Solomon erasure code over
// GF(2^8), the "RSE coder" the rekey transport protocol uses to produce
// PARITY packets for each block of ENC packets.
//
// A Coder is configured with a block size k (number of data packets).
// Encode produces any number m of parity packets (k+m <= 256); a receiver
// holding ANY k of the k+m packets of a block reconstructs the k data
// packets. This is the same maximum-distance-separable property as
// L. Rizzo's Vandermonde-based codec used by the paper; we derive parity
// rows from a Cauchy matrix, whose square submatrices are all invertible,
// which makes the systematic construction direct.
//
// Encoding cost for one parity packet is Theta(k * packetLen), matching
// the linear-in-k encoding-time model in the paper's Section 5.
package fec

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gf256"
	"repro/internal/obs"
)

// MaxShards is the maximum total number of packets (data + parity) in one
// block. It is bounded by the field size.
const MaxShards = 256

// Coder encodes and decodes fixed-size packet blocks.
// A Coder is safe for concurrent use by multiple goroutines after
// construction: the code tables are read-only and the decode-matrix
// cache is internally locked.
type Coder struct {
	k int
	// cauchyRow(i) over data index j is 1/(x_i ^ y_j) with
	// x_i = k + i (parity index space) and y_j = j (data index space).
	// Rows are materialised lazily up to maxParity at construction.
	rows [][]byte
	// cache holds solved decode matrices keyed by loss pattern; loss
	// patterns repeat heavily across blocks of one rekey message (and
	// across messages under stable loss), so the Gauss-Jordan inversion
	// is usually paid once per pattern.
	cache invCache
	// reg receives decode-cache hit/miss counters; nil costs a nil check.
	reg *obs.Registry
}

// NewCoder returns a Coder for blocks of k data packets able to produce
// up to maxParity parity packets. It returns an error if the shard
// counts exceed the field bound.
func NewCoder(k, maxParity int) (*Coder, error) {
	if k <= 0 {
		return nil, fmt.Errorf("fec: block size k = %d, must be positive", k)
	}
	if maxParity < 0 {
		return nil, fmt.Errorf("fec: maxParity = %d, must be non-negative", maxParity)
	}
	if k+maxParity > MaxShards {
		return nil, fmt.Errorf("fec: k+maxParity = %d exceeds %d", k+maxParity, MaxShards)
	}
	c := &Coder{k: k, rows: make([][]byte, maxParity)}
	for i := range c.rows {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = gf256.Inv(byte(k+i) ^ byte(j))
		}
		c.rows[i] = row
	}
	return c, nil
}

// SetObs attaches a metrics registry (nil detaches). Returns the Coder
// for chaining.
func (c *Coder) SetObs(r *obs.Registry) *Coder {
	c.reg = r
	return c
}

// K returns the block size (number of data packets per block).
func (c *Coder) K() int { return c.k }

// MaxParity returns the maximum number of parity packets the Coder can
// produce for one block.
func (c *Coder) MaxParity() int { return len(c.rows) }

// ErrShortBlock is returned by Decode when fewer than k packets of the
// block are available.
var ErrShortBlock = errors.New("fec: fewer than k packets available")

// Parity computes parity packet number idx (0-based) for the given data
// packets. All data packets must have equal length; the result has the
// same length. Parity indices are stable: packet idx is the same bytes
// regardless of how many other parity packets are generated, so the
// server can generate additional parity packets in later rounds without
// re-encoding earlier ones.
func (c *Coder) Parity(data [][]byte, idx int) ([]byte, error) {
	if err := c.checkData(data); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(c.rows) {
		return nil, fmt.Errorf("fec: parity index %d out of range [0,%d)", idx, len(c.rows))
	}
	out := make([]byte, len(data[0]))
	row := c.rows[idx]
	for j, d := range data {
		gf256.MulAddSlice(out, d, row[j])
	}
	return out, nil
}

// Encode computes parity packets [first, first+n) for the block, one
// row at a time. It is the simple serial path; EncodeAll produces the
// same bytes with better locality and fewer allocations.
func (c *Coder) Encode(data [][]byte, first, n int) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		p, err := c.Parity(data, first+i)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// EncodeAll computes parity packets [first, first+n) for the block in
// one pass over the data: each data packet is loaded once and
// accumulated into every parity row while it is hot in cache, instead
// of re-walking all k data packets per parity row as Encode does. The
// n outputs share one row-major allocation. The bytes produced are
// identical to Encode's (parity indices are stable).
//
//rekeylint:hotpath
func (c *Coder) EncodeAll(data [][]byte, first, n int) ([][]byte, error) {
	if err := c.checkData(data); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, errParityCount(n) //rekeylint:ignore cold validation-error path boxes its operands
	}
	if first < 0 || first+n > len(c.rows) {
		return nil, errParityRange(first, n, len(c.rows)) //rekeylint:ignore cold validation-error path boxes its operands
	}
	plen := len(data[0])
	buf := make([]byte, n*plen) //rekeylint:ignore contractual output: one row-major parity buffer per block, amortized over n packets
	out := make([][]byte, n)
	for i := range out {
		out[i] = buf[i*plen : (i+1)*plen : (i+1)*plen]
	}
	for j, d := range data {
		for i := 0; i < n; i++ {
			gf256.MulAddSlice(out[i], d, c.rows[first+i][j])
		}
	}
	return out, nil
}

// errParityCount, errParityRange, errOutSlots and errShardLen keep
// fmt off the annotated hot paths; the message strings are unchanged.
func errParityCount(n int) error {
	return fmt.Errorf("fec: parity count %d, must be non-negative", n)
}

func errParityRange(first, n, max int) error {
	return fmt.Errorf("fec: parity range [%d,%d) outside [0,%d)", first, first+n, max)
}

func errOutSlots(got, k int) error {
	return fmt.Errorf("fec: out has %d slots, coder expects k=%d", got, k)
}

func errShardLen(idx, got, want int) error {
	return fmt.Errorf("fec: shard %d has length %d, want %d", idx, got, want)
}

func (c *Coder) checkData(data [][]byte) error {
	if len(data) != c.k {
		return fmt.Errorf("fec: got %d data packets, coder expects k=%d", len(data), c.k)
	}
	l := len(data[0])
	for i, d := range data {
		if len(d) != l {
			return fmt.Errorf("fec: data packet %d has length %d, want %d", i, len(d), l)
		}
	}
	return nil
}

// Shard is one received packet of a block: its index in the block's
// shard space (data packets occupy [0,k), parity packet i occupies k+i)
// and its payload.
type Shard struct {
	Index int
	Data  []byte
}

// Decode reconstructs the k data packets of a block from any k received
// shards. Extra shards beyond k are ignored. It returns ErrShortBlock if
// fewer than k distinct shard indices are present.
func (c *Coder) Decode(shards []Shard) ([][]byte, error) {
	out := make([][]byte, c.k)
	if err := c.DecodeInto(out, shards); err != nil {
		return nil, err
	}
	return out, nil
}

// shardMask tracks which of the up-to-256 shard indices have been seen;
// the per-call map the old decoder built for this dominated its small-
// loss profile.
type shardMask [MaxShards / 64]uint64

func (m *shardMask) testAndSet(i int) bool {
	w, b := i>>6, uint(i)&63
	if m[w]&(1<<b) != 0 {
		return true
	}
	m[w] |= 1 << b
	return false
}

// DecodeInto is Decode writing the k reconstructed data packets into
// out, which must have length k. Non-nil entries with sufficient
// capacity are reused in place (a receiver draining many blocks can
// recycle one buffer set); short or nil entries are allocated.
//
// Rather than inverting the full k x k decode matrix and re-deriving
// every data packet, DecodeInto substitutes the data shards that
// arrived and solves only for the missing ones: with m losses it
// inverts an m x m system and does O(m*k) slice operations of plen
// bytes, against the reference decoder's O(k^2). Solved coefficient
// matrices are cached per loss pattern (see invCache).
//
//rekeylint:hotpath
func (c *Coder) DecodeInto(out [][]byte, shards []Shard) error {
	k := c.k
	if len(out) != k {
		return errOutSlots(len(out), k) //rekeylint:ignore cold validation-error path boxes its operands
	}

	// Partition the received shards by index: dataPos[j] locates the
	// shard holding data packet j; parityPos collects distinct parity
	// shards. Duplicate and out-of-range indices are ignored.
	var seen shardMask
	dataPos := make([]int, k) //rekeylint:ignore per-call index scratch sized by the loss pattern; the per-byte GF(2^8) kernels below are the hot loop
	for i := range dataPos {
		dataPos[i] = -1
	}
	parityPos := make([]int, len(shards)) //rekeylint:ignore per-call index scratch sized by the loss pattern; the per-byte GF(2^8) kernels below are the hot loop
	np := 0
	have := 0
	for i, s := range shards {
		switch {
		case s.Index >= 0 && s.Index < k:
			if !seen.testAndSet(s.Index) {
				dataPos[s.Index] = i
				have++
			}
		case s.Index >= k && s.Index < k+len(c.rows):
			if !seen.testAndSet(s.Index) {
				parityPos[np] = i
				np++
			}
		}
	}
	parityPos = parityPos[:np]
	missing := make([]int, k-have) //rekeylint:ignore per-call index scratch sized by the loss pattern; the per-byte GF(2^8) kernels below are the hot loop
	nm := 0
	for j, p := range dataPos {
		if p < 0 {
			missing[nm] = j
			nm++
		}
	}
	m := len(missing)
	if m > len(parityPos) {
		return ErrShortBlock
	}
	// Normalise the parity choice to the m lowest indices: the solved
	// matrix depends only on (missing, parities used), so a canonical
	// pick maximises cache hits; the reconstructed bytes are exact
	// either way. Insertion sort keeps sort.Slice's closure off the hot
	// path; indices are distinct after dedup, so the order matches.
	for a := 1; a < len(parityPos); a++ {
		p := parityPos[a]
		b := a
		for b > 0 && shards[parityPos[b-1]].Index > shards[p].Index {
			parityPos[b] = parityPos[b-1]
			b--
		}
		parityPos[b] = p
	}
	parityPos = parityPos[:m]

	// Validate the lengths of every shard the decode will touch.
	plen := -1
	for _, p := range dataPos {
		if p >= 0 {
			plen = len(shards[p].Data)
			break
		}
	}
	if plen < 0 && m > 0 {
		plen = len(shards[parityPos[0]].Data)
	}
	for j, p := range dataPos {
		if p >= 0 && len(shards[p].Data) != plen {
			return errShardLen(j, len(shards[p].Data), plen) //rekeylint:ignore cold validation-error path boxes its operands
		}
	}
	for _, p := range parityPos {
		if len(shards[p].Data) != plen {
			return errShardLen(shards[p].Index, len(shards[p].Data), plen) //rekeylint:ignore cold validation-error path boxes its operands
		}
	}

	// Received data packets are already the answer: copy them through.
	for j, p := range dataPos {
		if p >= 0 {
			d := ensure(out[j], plen) //rekeylint:ignore amortized: ensure reallocates only when the caller's slot is undersized
			copy(d, shards[p].Data)
			out[j] = d
		}
	}
	if m == 0 {
		return nil
	}

	coef, err := c.solveCoef(missing, parityPos, shards, dataPos)
	if err != nil {
		return err
	}

	// Reconstruct each missing packet as a coefficient combination of
	// the m parity payloads followed by the k-m received data payloads.
	for ci, j := range missing {
		d := ensure(out[j], plen) //rekeylint:ignore amortized: ensure reallocates only when the caller's slot is undersized
		clear(d)
		row := coef.Row(ci)
		for r, p := range parityPos {
			gf256.MulAddSlice(d, shards[p].Data, row[r])
		}
		col := m
		for _, p := range dataPos {
			if p < 0 {
				continue
			}
			if w := row[col]; w != 0 {
				gf256.MulAddSlice(d, shards[p].Data, w)
			}
			col++
		}
		out[j] = d
	}
	return nil
}

// ensure returns buf resized to n bytes, reusing its storage when the
// capacity suffices.
func ensure(buf []byte, n int) []byte {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]byte, n)
}

// solveCoef returns the m x k coefficient matrix for the given loss
// pattern: row ci reconstructs missing data packet missing[ci]; its
// first m columns weight the chosen parity payloads (in parityPos
// order) and the remaining k-m columns weight the received data
// payloads (ascending data index). Patterns are cached.
//
// Derivation: each chosen parity p satisfies
// y_p = sum_j rows[p][j]*x_j, so over the missing set M,
// sum_{j in M} rows[p][j]*x_j = y_p + sum_{j received} rows[p][j]*x_j
// (addition is XOR). With A the m x m submatrix rows[p][M], the
// missing packets are x_M = A^-1*y + (A^-1*R_received)*x_received,
// which is exactly the two column groups of the returned matrix.
func (c *Coder) solveCoef(missing, parityPos []int, shards []Shard, dataPos []int) (*gf256.Matrix, error) {
	k, m := c.k, len(missing)

	// Cache key: count-prefixed missing data indices then parity
	// indices, one byte each (all fit: indices < MaxShards).
	kb := make([]byte, 0, 1+k)
	kb = append(kb, byte(m))
	for _, j := range missing {
		kb = append(kb, byte(j))
	}
	for _, p := range parityPos {
		kb = append(kb, byte(shards[p].Index))
	}
	key := string(kb)
	if coef := c.cache.get(key); coef != nil {
		c.reg.Inc(obs.CDecodeCacheHit)
		return coef, nil
	}
	c.reg.Inc(obs.CDecodeCacheMiss)

	a := gf256.NewMatrix(m, m)
	for r, p := range parityPos {
		row := c.rows[shards[p].Index-k]
		for ci, j := range missing {
			a.Set(r, ci, row[j])
		}
	}
	inv, ok := a.Invert()
	if !ok {
		// Cannot happen for a Cauchy code with distinct indices; guard
		// anyway so corrupted indices fail loudly rather than silently.
		return nil, errors.New("fec: decode matrix singular")
	}

	coef := gf256.NewMatrix(m, k)
	for ci := 0; ci < m; ci++ {
		dst := coef.Row(ci)
		src := inv.Row(ci)
		copy(dst[:m], src)
		col := m
		for j, p := range dataPos {
			if p >= 0 {
				// (A^-1 * R_received)[ci][j]
				var w byte
				for r, pp := range parityPos {
					w ^= gf256.Mul(src[r], c.rows[shards[pp].Index-k][j])
				}
				dst[col] = w
				col++
			}
		}
	}
	c.cache.put(key, coef)
	return coef, nil
}

// invCacheCap bounds the solved-pattern cache. Loss patterns under the
// paper's independent-loss model concentrate on few-loss combinations;
// 32 patterns cover the working set of a receiver at realistic loss
// rates while bounding memory at ~32*k bytes per entry.
const invCacheCap = 32

// invCache is a small mutex-guarded LRU of solved coefficient
// matrices keyed by loss pattern.
type invCache struct {
	mu    sync.Mutex
	m     map[string]*gf256.Matrix // guarded by mu
	order []string                 // guarded by mu; least recently used first
}

func (ic *invCache) get(key string) *gf256.Matrix {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	coef, ok := ic.m[key]
	if !ok {
		return nil
	}
	for i, k := range ic.order {
		if k == key {
			copy(ic.order[i:], ic.order[i+1:])
			ic.order[len(ic.order)-1] = key
			break
		}
	}
	return coef
}

func (ic *invCache) put(key string, coef *gf256.Matrix) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if ic.m == nil {
		ic.m = make(map[string]*gf256.Matrix, invCacheCap)
	}
	if _, ok := ic.m[key]; ok {
		return // raced with another decoder; keep the incumbent
	}
	if len(ic.order) >= invCacheCap {
		delete(ic.m, ic.order[0])
		copy(ic.order, ic.order[1:])
		ic.order = ic.order[:len(ic.order)-1]
	}
	ic.m[key] = coef
	ic.order = append(ic.order, key)
}

// RefDecode is the retained full-inverse reference decoder: it picks k
// shards (data first, in input order), builds the k x k decode matrix,
// inverts it, and multiplies every row -- O(k^2) slice operations and
// a fresh inversion per call. Differential tests and the decode
// benchmarks compare DecodeInto against it; production callers use
// Decode/DecodeInto.
func (c *Coder) RefDecode(shards []Shard) ([][]byte, error) {
	k := c.k
	// Select k shards with distinct indices, preferring data shards
	// (identity rows keep the decode matrix well-conditioned and cheap).
	seen := make(map[int]bool, len(shards))
	picked := make([]Shard, 0, k)
	for _, s := range shards {
		if s.Index >= 0 && s.Index < k && !seen[s.Index] {
			seen[s.Index] = true
			picked = append(picked, s)
		}
	}
	for _, s := range shards {
		if len(picked) == k {
			break
		}
		if s.Index >= k && s.Index < k+len(c.rows) && !seen[s.Index] {
			seen[s.Index] = true
			picked = append(picked, s)
		}
	}
	if len(picked) < k {
		return nil, ErrShortBlock
	}
	var plen = len(picked[0].Data)
	for _, s := range picked {
		if len(s.Data) != plen {
			return nil, fmt.Errorf("fec: shard %d has length %d, want %d", s.Index, len(s.Data), plen)
		}
	}

	// Fast path: all k data shards present.
	allData := true
	for _, s := range picked {
		if s.Index >= k {
			allData = false
			break
		}
	}
	out := make([][]byte, k)
	if allData {
		for _, s := range picked {
			out[s.Index] = append([]byte(nil), s.Data...)
		}
		return out, nil
	}

	// Build the k x k decode matrix whose row r is the generator row of
	// shard picked[r], invert it, and multiply by the received payloads.
	m := gf256.NewMatrix(k, k)
	for r, s := range picked {
		if s.Index < k {
			m.Set(r, s.Index, 1)
		} else {
			copy(m.Row(r), c.rows[s.Index-k])
		}
	}
	inv, ok := m.Invert()
	if !ok {
		// Cannot happen for a Cauchy code with distinct indices; guard
		// anyway so corrupted indices fail loudly rather than silently.
		return nil, errors.New("fec: decode matrix singular")
	}
	for i := 0; i < k; i++ {
		row := inv.Row(i)
		d := make([]byte, plen)
		for r, coef := range row {
			if coef != 0 {
				gf256.MulAddSlice(d, picked[r].Data, coef)
			}
		}
		out[i] = d
	}
	return out, nil
}
