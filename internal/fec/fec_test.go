package fec

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand, k, plen int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, plen)
		for j := range data[i] {
			data[i][j] = byte(rng.Uint32())
		}
	}
	return data
}

func TestNewCoderBounds(t *testing.T) {
	if _, err := NewCoder(0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewCoder(-1, 1); err == nil {
		t.Error("k=-1 accepted")
	}
	if _, err := NewCoder(10, -1); err == nil {
		t.Error("maxParity=-1 accepted")
	}
	if _, err := NewCoder(200, 57); err == nil {
		t.Error("k+maxParity>256 accepted")
	}
	if _, err := NewCoder(200, 56); err != nil {
		t.Error("k+maxParity=256 rejected")
	}
}

func TestParityStableAcrossRounds(t *testing.T) {
	// Parity packet i must be identical whether generated in the first
	// round or as an extra packet in a later round; the protocol relies
	// on this to send fresh parity without invalidating earlier packets.
	rng := rand.New(rand.NewPCG(1, 2))
	data := randBlock(rng, 10, 64)
	c, err := NewCoder(10, 40)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Encode(data, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Encode(data, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if !bytes.Equal(first[i], again[i]) {
			t.Fatalf("parity %d changed between encode calls", i)
		}
	}
}

func TestDecodeAllData(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	data := randBlock(rng, 8, 100)
	c, _ := NewCoder(8, 8)
	shards := make([]Shard, 8)
	for i := range shards {
		shards[i] = Shard{Index: i, Data: data[i]}
	}
	got, err := c.Decode(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("data shard %d mismatch", i)
		}
	}
}

func TestDecodeWithErasures(t *testing.T) {
	// Every combination of losses up to k parity substitutions must
	// reconstruct exactly, for several k.
	for _, k := range []int{1, 2, 5, 10} {
		rng := rand.New(rand.NewPCG(uint64(k), 99))
		data := randBlock(rng, k, 128)
		c, err := NewCoder(k, k)
		if err != nil {
			t.Fatal(err)
		}
		parity, err := c.Encode(data, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		// Lose the first e data packets, replace with first e parity.
		for e := 0; e <= k; e++ {
			var shards []Shard
			for i := e; i < k; i++ {
				shards = append(shards, Shard{Index: i, Data: data[i]})
			}
			for i := 0; i < e; i++ {
				shards = append(shards, Shard{Index: k + i, Data: parity[i]})
			}
			got, err := c.Decode(shards)
			if err != nil {
				t.Fatalf("k=%d e=%d: %v", k, e, err)
			}
			for i := range data {
				if !bytes.Equal(got[i], data[i]) {
					t.Fatalf("k=%d e=%d: shard %d mismatch", k, e, i)
				}
			}
		}
	}
}

func TestDecodeRandomErasurePatterns(t *testing.T) {
	const k, m, plen = 10, 20, 50
	rng := rand.New(rand.NewPCG(7, 8))
	data := randBlock(rng, k, plen)
	c, _ := NewCoder(k, m)
	parity, _ := c.Encode(data, 0, m)
	all := make([]Shard, 0, k+m)
	for i := range data {
		all = append(all, Shard{Index: i, Data: data[i]})
	}
	for i := range parity {
		all = append(all, Shard{Index: k + i, Data: parity[i]})
	}
	for trial := 0; trial < 200; trial++ {
		perm := rng.Perm(len(all))
		keep := k + rng.IntN(m)
		shards := make([]Shard, 0, keep)
		for _, idx := range perm[:keep] {
			shards = append(shards, all[idx])
		}
		got, err := c.Decode(shards)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				t.Fatalf("trial %d: shard %d mismatch", trial, i)
			}
		}
	}
}

func TestDecodeShortBlock(t *testing.T) {
	c, _ := NewCoder(5, 5)
	data := randBlock(rand.New(rand.NewPCG(1, 1)), 5, 10)
	shards := []Shard{
		{Index: 0, Data: data[0]},
		{Index: 1, Data: data[1]},
		{Index: 0, Data: data[0]}, // duplicate must not count twice
	}
	if _, err := c.Decode(shards); !errors.Is(err, ErrShortBlock) {
		t.Fatalf("got %v, want ErrShortBlock", err)
	}
}

func TestDecodeIgnoresDuplicatesAndExtra(t *testing.T) {
	const k = 4
	rng := rand.New(rand.NewPCG(5, 6))
	data := randBlock(rng, k, 32)
	c, _ := NewCoder(k, 4)
	parity, _ := c.Encode(data, 0, 4)
	shards := []Shard{
		{Index: k, Data: parity[0]},
		{Index: k, Data: parity[0]},
		{Index: 0, Data: data[0]},
		{Index: 0, Data: data[0]},
		{Index: k + 1, Data: parity[1]},
		{Index: k + 2, Data: parity[2]},
		{Index: k + 3, Data: parity[3]},
	}
	got, err := c.Decode(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	c, _ := NewCoder(3, 3)
	short := [][]byte{{1}, {2}}
	if _, err := c.Encode(short, 0, 1); err == nil {
		t.Error("wrong shard count accepted")
	}
	uneven := [][]byte{{1, 2}, {3}, {4, 5}}
	if _, err := c.Encode(uneven, 0, 1); err == nil {
		t.Error("uneven lengths accepted")
	}
	ok := [][]byte{{1}, {2}, {3}}
	if _, err := c.Parity(ok, 3); err == nil {
		t.Error("parity index out of range accepted")
	}
	if _, err := c.Parity(ok, -1); err == nil {
		t.Error("negative parity index accepted")
	}
}

func TestDecodeRejectsUnevenShardLengths(t *testing.T) {
	c, _ := NewCoder(2, 2)
	shards := []Shard{
		{Index: 0, Data: []byte{1, 2}},
		{Index: 1, Data: []byte{3}},
	}
	if _, err := c.Decode(shards); err == nil {
		t.Error("uneven shard lengths accepted")
	}
}

// Property: for random payloads, block sizes, and loss patterns that keep
// at least k shards, Decode inverts Encode.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(seed uint64, kRaw, plenRaw uint8) bool {
		k := int(kRaw)%16 + 1
		plen := int(plenRaw)%100 + 1
		rng := rand.New(rand.NewPCG(seed, 0xdead))
		data := randBlock(rng, k, plen)
		c, err := NewCoder(k, k)
		if err != nil {
			return false
		}
		parity, err := c.Encode(data, 0, k)
		if err != nil {
			return false
		}
		all := make([]Shard, 0, 2*k)
		for i := range data {
			all = append(all, Shard{Index: i, Data: data[i]})
		}
		for i := range parity {
			all = append(all, Shard{Index: k + i, Data: parity[i]})
		}
		perm := rng.Perm(len(all))
		shards := make([]Shard, 0, k)
		for _, idx := range perm[:k] {
			shards = append(shards, all[idx])
		}
		got, err := c.Decode(shards)
		if err != nil {
			return false
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func benchEncode(b *testing.B, k int) {
	const plen = 1023 // parity covers ENC packet bytes 4..1026
	rng := rand.New(rand.NewPCG(1, uint64(k)))
	data := randBlock(rng, k, plen)
	c, err := NewCoder(k, k)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(plen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Parity(data, i%k); err != nil {
			b.Fatal(err)
		}
	}
}

// The per-parity-packet encode cost should grow ~linearly with k,
// the property exploited by the paper's block partitioning (Fig. 8 right).
func BenchmarkFECEncodeK1(b *testing.B)  { benchEncode(b, 1) }
func BenchmarkFECEncodeK5(b *testing.B)  { benchEncode(b, 5) }
func BenchmarkFECEncodeK10(b *testing.B) { benchEncode(b, 10) }
func BenchmarkFECEncodeK30(b *testing.B) { benchEncode(b, 30) }
func BenchmarkFECEncodeK50(b *testing.B) { benchEncode(b, 50) }

func BenchmarkFECDecodeK10AllParity(b *testing.B) {
	const k, plen = 10, 1023
	rng := rand.New(rand.NewPCG(2, 3))
	data := randBlock(rng, k, plen)
	c, _ := NewCoder(k, k)
	parity, _ := c.Encode(data, 0, k)
	shards := make([]Shard, k)
	for i := range shards {
		shards[i] = Shard{Index: k + i, Data: parity[i]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(shards); err != nil {
			b.Fatal(err)
		}
	}
}
