package fec

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/obs"
)

// TestDecodeIntoMatchesRefDecode drives the missing-shard-only decoder
// and the retained full-inverse reference over randomized loss
// patterns, shard orders and duplicate deliveries; the reconstructed
// data must be identical bytes.
func TestDecodeIntoMatchesRefDecode(t *testing.T) {
	for _, tc := range []struct{ k, maxParity int }{
		{1, 4}, {2, 6}, {10, 20}, {32, 32}, {128, 128},
	} {
		t.Run(fmt.Sprintf("k=%d", tc.k), func(t *testing.T) {
			c, err := NewCoder(tc.k, tc.maxParity)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(uint64(tc.k), 9))
			for trial := 0; trial < 60; trial++ {
				plen := 1 + rng.IntN(200)
				data := randBlock(rng, tc.k, plen)
				parity, err := c.EncodeAll(data, 0, tc.maxParity)
				if err != nil {
					t.Fatal(err)
				}

				// Drop up to maxParity data shards, supply enough parity,
				// sprinkle duplicates, then shuffle delivery order.
				nLoss := rng.IntN(min(tc.k, tc.maxParity) + 1)
				lost := rng.Perm(tc.k)[:nLoss]
				isLost := make(map[int]bool, nLoss)
				for _, j := range lost {
					isLost[j] = true
				}
				var shards []Shard
				for j, d := range data {
					if !isLost[j] {
						shards = append(shards, Shard{Index: j, Data: d})
					}
				}
				for _, i := range rng.Perm(tc.maxParity)[:nLoss+rng.IntN(tc.maxParity-nLoss+1)] {
					shards = append(shards, Shard{Index: tc.k + i, Data: parity[i]})
				}
				if len(shards) > 0 {
					for n := rng.IntN(3); n > 0; n-- {
						shards = append(shards, shards[rng.IntN(len(shards))])
					}
				}
				rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })

				got, errNew := c.Decode(shards)
				ref, errRef := c.RefDecode(shards)
				if errNew != nil || errRef != nil {
					t.Fatalf("trial %d: decode errors: new=%v ref=%v", trial, errNew, errRef)
				}
				for j := range got {
					if !bytes.Equal(got[j], ref[j]) {
						t.Fatalf("trial %d: packet %d differs from reference", trial, j)
					}
					if !bytes.Equal(got[j], data[j]) {
						t.Fatalf("trial %d: packet %d differs from original", trial, j)
					}
				}
			}
		})
	}
}

// TestDecodeIntoReusesBuffers checks the documented buffer contract:
// entries with sufficient capacity are filled in place, short or nil
// entries are replaced.
func TestDecodeIntoReusesBuffers(t *testing.T) {
	const k, plen = 8, 64
	c, err := NewCoder(k, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	data := randBlock(rng, k, plen)
	parity, err := c.EncodeAll(data, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	shards := []Shard{{Index: k, Data: parity[0]}, {Index: k + 2, Data: parity[2]}}
	for j := 2; j < k; j++ {
		shards = append(shards, Shard{Index: j, Data: data[j]})
	}

	out := make([][]byte, k)
	big := make([]byte, 2*plen) // ample capacity: must be reused
	out[0] = big
	out[3] = make([]byte, 1) // too short: must be replaced
	if err := c.DecodeInto(out, shards); err != nil {
		t.Fatal(err)
	}
	for j := range out {
		if !bytes.Equal(out[j], data[j]) {
			t.Fatalf("packet %d wrong after DecodeInto", j)
		}
		if len(out[j]) != plen {
			t.Fatalf("packet %d has length %d, want %d", j, len(out[j]), plen)
		}
	}
	if &out[0][0] != &big[0] {
		t.Error("capacious buffer was not reused")
	}

	// Second decode with the same buffers must still be correct
	// (stale contents must not leak through).
	if err := c.DecodeInto(out, shards); err != nil {
		t.Fatal(err)
	}
	for j := range out {
		if !bytes.Equal(out[j], data[j]) {
			t.Fatalf("packet %d wrong on buffer-reuse decode", j)
		}
	}

	if err := c.DecodeInto(make([][]byte, k-1), shards); err == nil {
		t.Error("short out slice accepted")
	}
}

// TestDecodeMatrixCache checks that repeating one loss pattern pays for
// a single matrix solve and that the obs counters see the traffic.
func TestDecodeMatrixCache(t *testing.T) {
	const k, plen = 10, 32
	reg := obs.New()
	c, err := NewCoder(k, 10)
	if err != nil {
		t.Fatal(err)
	}
	c.SetObs(reg)
	rng := rand.New(rand.NewPCG(7, 8))

	decodeWithLoss := func(lost ...int) {
		t.Helper()
		data := randBlock(rng, k, plen)
		parity, err := c.EncodeAll(data, 0, len(lost))
		if err != nil {
			t.Fatal(err)
		}
		isLost := make(map[int]bool)
		for _, j := range lost {
			isLost[j] = true
		}
		var shards []Shard
		for j, d := range data {
			if !isLost[j] {
				shards = append(shards, Shard{Index: j, Data: d})
			}
		}
		for i := range lost {
			shards = append(shards, Shard{Index: k + i, Data: parity[i]})
		}
		got, err := c.Decode(shards)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if !bytes.Equal(got[j], data[j]) {
				t.Fatalf("packet %d wrong", j)
			}
		}
	}

	for i := 0; i < 5; i++ {
		decodeWithLoss(3) // same pattern: one miss, then hits
	}
	decodeWithLoss(4)    // new pattern: one more miss
	decodeWithLoss(3, 4) // distinct from both singles
	decodeWithLoss()     // all-data: no cache traffic

	hit := reg.CounterValue(obs.CDecodeCacheHit)
	miss := reg.CounterValue(obs.CDecodeCacheMiss)
	if miss != 3 {
		t.Errorf("decode_cache_miss = %d, want 3", miss)
	}
	if hit != 4 {
		t.Errorf("decode_cache_hit = %d, want 4", hit)
	}
}

// TestInvCacheEviction fills the LRU beyond capacity and checks the
// oldest pattern is re-solved while a recently-used one is not.
func TestInvCacheEviction(t *testing.T) {
	var ic invCache
	for i := 0; i < invCacheCap+5; i++ {
		ic.put(fmt.Sprintf("p%03d", i), nil)
	}
	if n := len(ic.m); n != invCacheCap {
		t.Fatalf("cache holds %d entries, cap is %d", n, invCacheCap)
	}
	if _, ok := ic.m["p000"]; ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := ic.m[fmt.Sprintf("p%03d", invCacheCap+4)]; !ok {
		t.Error("newest entry missing")
	}
}
