package fec

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// TestEncodeAllMatchesEncode is the differential test for the one-pass
// encoder: for a sweep of (k, parity window, packet length) it must
// produce byte-identical output to the row-at-a-time Encode path.
func TestEncodeAllMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, k := range []int{1, 2, 5, 10, 20, 50} {
		for _, plen := range []int{1, 7, 64, 1027} {
			c, err := NewCoder(k, k+3)
			if err != nil {
				t.Fatal(err)
			}
			data := randBlock(rng, k, plen)
			for _, win := range [][2]int{{0, 0}, {0, 1}, {0, k}, {1, k}, {3, k - 1}, {0, k + 3}} {
				first, n := win[0], win[1]
				want, err := c.Encode(data, first, n)
				if err != nil {
					t.Fatalf("Encode(k=%d, first=%d, n=%d): %v", k, first, n, err)
				}
				got, err := c.EncodeAll(data, first, n)
				if err != nil {
					t.Fatalf("EncodeAll(k=%d, first=%d, n=%d): %v", k, first, n, err)
				}
				if len(got) != len(want) {
					t.Fatalf("EncodeAll returned %d packets, want %d", len(got), len(want))
				}
				for i := range got {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("EncodeAll(k=%d, plen=%d, first=%d, n=%d) differs at parity %d", k, plen, first, n, i)
					}
				}
			}
		}
	}
}

func TestEncodeAllErrors(t *testing.T) {
	c, err := NewCoder(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 8))
	data := randBlock(rng, 3, 16)
	if _, err := c.EncodeAll(data, 0, -1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := c.EncodeAll(data, -1, 1); err == nil {
		t.Error("negative first accepted")
	}
	if _, err := c.EncodeAll(data, 2, 2); err == nil {
		t.Error("range past MaxParity accepted")
	}
	if _, err := c.EncodeAll(data[:2], 0, 1); err == nil {
		t.Error("short block accepted")
	}
	uneven := [][]byte{make([]byte, 16), make([]byte, 16), make([]byte, 15)}
	if _, err := c.EncodeAll(uneven, 0, 1); err == nil {
		t.Error("uneven packet lengths accepted")
	}
}

// TestEncodeAllOutputsIndependent ensures the shared backing allocation
// does not let writes to one parity packet bleed into another.
func TestEncodeAllOutputsIndependent(t *testing.T) {
	c, _ := NewCoder(4, 4)
	rng := rand.New(rand.NewPCG(9, 9))
	data := randBlock(rng, 4, 32)
	out, err := c.EncodeAll(data, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want2 := append([]byte(nil), out[2]...)
	for i := range out[1] {
		out[1][i] = 0xAA
	}
	out[1] = append(out[1], 0xBB) // capacity is clipped: must not spill into out[2]
	if !bytes.Equal(out[2], want2) {
		t.Fatal("mutating one parity packet altered its neighbour")
	}
}
