package experiments

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/fec"
	"repro/internal/keys"
	"repro/internal/packet"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "a-server-capacity",
		Paper: "companion analysis (SIGCOMM 2001)",
		Desc:  "max sustainable group size vs rekey interval, from measured sign/wrap/FEC costs",
		Run:   runCapacity,
	})
}

// MeasureCosts times the key server's unit operations on this machine:
// one RSA-1024 signature per message, one AES key wrap per encryption,
// and Reed-Solomon parity generation (normalised per parity packet per
// unit of block size).
func MeasureCosts() (analysis.Costs, error) {
	var c analysis.Costs
	c.PacketLen = packet.PacketLen

	signer, err := keys.NewSigner(1024)
	if err != nil {
		return c, err
	}
	msg := make([]byte, packet.PacketLen)
	const signReps = 20
	start := time.Now()
	for i := 0; i < signReps; i++ {
		if _, err := signer.Sign(msg); err != nil {
			return c, err
		}
	}
	c.Sign = time.Since(start).Seconds() / signReps

	g := keys.NewDeterministicGenerator(1)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	const wrapReps = 20000
	start = time.Now()
	for i := 0; i < wrapReps; i++ {
		keys.Wrap(outer, inner)
	}
	c.Wrap = time.Since(start).Seconds() / wrapReps

	const k = 10
	coder, err := fec.NewCoder(k, k)
	if err != nil {
		return c, err
	}
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, packet.ParityPayloadLen)
		for j := range data[i] {
			data[i][j] = byte(i + j)
		}
	}
	// Measure through the one-pass encoder the server actually uses
	// (EncodeAll over a k-parity window), then normalise to the
	// analysis model's unit: one parity packet per unit of block size.
	const fecReps = 200
	start = time.Now()
	for i := 0; i < fecReps; i++ {
		if _, err := coder.EncodeAll(data, 0, k); err != nil {
			return c, err
		}
	}
	perParity := time.Since(start).Seconds() / (fecReps * k)
	c.ParityPerBlockByte = perParity / k
	return c, nil
}

func runCapacity(o Options) ([]*stats.Figure, error) {
	costs, err := MeasureCosts()
	if err != nil {
		return nil, err
	}
	fig := &stats.Figure{
		ID: "A-CAP",
		Title: fmt.Sprintf("max group size vs rekey interval (d=4, L=N/4, k=10, rho=1.5; measured: sign=%.2gs wrap=%.2gs parity/k=%.2gs)",
			costs.Sign, costs.Wrap, costs.ParityPerBlockByte),
		XLabel: "rekey interval (s)",
		YLabel: "max group size N",
	}
	s := fig.NewSeries("key server capacity")
	intervals := []float64{0.1, 1, 10, 60, 300}
	if o.Quick {
		intervals = []float64{1, 60}
	}
	for _, iv := range intervals {
		n, err := analysis.MaxGroupSize(costs, 4, 0.25, 10, 1.5, iv)
		if err != nil {
			return nil, err
		}
		s.Add(iv, float64(n))
	}
	return []*stats.Figure{fig}, nil
}
