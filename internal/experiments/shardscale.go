// Sharded scale-out: the same churn scenarios of scenarios.go driven
// through the internal/shard Coordinator at 1, 2, 4 and 8 shards, with
// the invariant oracles watching every merged consistent-cut message
// and a netsim transport leg delivering one shard's channel per
// interval. Each shard models one single-core key server (shard trees
// and the coordinator's batch phase both run with one worker), so the
// interval critical path -- the slowest shard's batch plus the serial
// top-tree merge -- is what a horizontally scaled deployment would
// wait on. cmd/rekeybench renders the result as the "Sharded
// scale-out" table in EXPERIMENTS.md.

package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/assign"
	"repro/internal/keytree"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/protocol"
	"repro/internal/shard"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// ShardCounts is the scale-out axis of the suite.
func ShardCounts() []int { return []int{1, 2, 4, 8} }

// shardScenarioSpecs returns the churn trajectories of the scale-out
// suite. Sizes differ from ScenarioSpecs: batches must be large enough
// that per-shard wall times dominate timer noise at 8 shards.
func shardScenarioSpecs() []ScenarioSpec {
	return []ScenarioSpec{
		{"diurnal", func(quick bool) workload.Scenario {
			if quick {
				return &workload.Diurnal{Base: 1024, Mean: 96, Amplitude: 0.8, Period: 4, Total: 8}
			}
			return &workload.Diurnal{Base: 8192, Mean: 256, Amplitude: 0.8, Period: 12, Total: 24}
		}},
		{"flash-crowd", func(quick bool) workload.Scenario {
			if quick {
				return &workload.FlashCrowd{Base: 512, Spike: 2048, SpikeAt: 1, Total: 4, Background: 16}
			}
			return &workload.FlashCrowd{Base: 4096, Spike: 16384, SpikeAt: 2, Total: 6, Background: 64}
		}},
	}
}

// shardRouteWidth is the member-ID block width dealt round-robin to
// shards. Narrow enough that the sequentially allocated scenario
// populations spread evenly at every shard count of the suite.
const shardRouteWidth = 16

// ShardCell is one (scenario, shard count) run of the scale-out suite.
type ShardCell struct {
	Scenario string
	Shards   int
	Rekeys   int // intervals that actually rekeyed
	FinalN   int
	Changes  int // joins+leaves applied across all rekeying intervals
	Encs     int // total encryptions, shard slices plus top tree
	TopEncs  int // coordinator top-tree encryptions within Encs
	// CritNs is the summed interval critical path: the slowest shard's
	// batch time plus the coordinator's serial merge, per interval.
	CritNs  int64
	MergeNs int64 // summed coordinator merge time within CritNs
	// Throughput is membership changes applied per critical-path
	// millisecond; Speedup is that rate relative to the 1-shard row of
	// the same scenario (filled by RunShardSuite).
	Throughput float64
	Speedup    float64
	Restores   int // mid-run snapshot failovers exercised
	Checks     int64
	Violations int64
	OK         bool
	Err        string
}

// shardRepeats is how many times each cell is re-run. A cell is fully
// deterministic given its seed -- identical churn, identical keys --
// so repeated runs differ only in wall time, and taking the
// interval-wise minimum critical path discards GC pauses and scheduler
// preemptions that would otherwise swamp quick-scale batches.
const shardRepeats = 3

// runShardCell runs one (scenario, shard count) cell shardRepeats
// times and folds the repeats into one row with noise-trimmed timing.
func runShardCell(ss ScenarioSpec, s int, opts Options) ShardCell {
	cell, crit, merge := runShardCellOnce(ss, s, opts)
	if !cell.OK {
		return cell
	}
	for r := 1; r < shardRepeats; r++ {
		again, crit2, merge2 := runShardCellOnce(ss, s, opts)
		if !again.OK {
			return again
		}
		if again.Encs != cell.Encs || len(crit2) != len(crit) {
			cell.OK = false
			cell.Err = fmt.Sprintf("repeat %d diverged: %d encs / %d intervals vs %d / %d",
				r, again.Encs, len(crit2), cell.Encs, len(crit))
			return cell
		}
		for i := range crit {
			if crit2[i] < crit[i] {
				crit[i] = crit2[i]
			}
			if merge2[i] < merge[i] {
				merge[i] = merge2[i]
			}
		}
	}
	cell.CritNs, cell.MergeNs = 0, 0
	for i := range crit {
		cell.CritNs += crit[i]
		cell.MergeNs += merge[i]
	}
	if cell.CritNs > 0 {
		cell.Throughput = float64(cell.Changes) / (float64(cell.CritNs) / 1e6)
	}
	return cell
}

// runShardCellOnce drives one scenario through a Coordinator with s
// shards, oracles active, restoring one shard from its own snapshot
// mid-run and delivering one shard's wire channel per interval over
// the paper's impaired star network. Returns the per-rekeying-interval
// critical-path and merge times alongside the aggregated cell.
func runShardCellOnce(ss ScenarioSpec, s int, opts Options) (ShardCell, []int64, []int64) {
	cell := ShardCell{Scenario: ss.ID, Shards: s}
	var critNs, mergeNs []int64
	fail := func(err error) (ShardCell, []int64, []int64) {
		cell.Err = err.Error()
		return cell, nil, nil
	}
	ctx := context.Background()

	tn := tuning.Default()
	tn.Shards = s
	tn.ShardRange = shardRouteWidth
	// One worker everywhere: each shard stands in for one single-core
	// server, so the measured fan-out is horizontal, not threading.
	tn.Workers = 1
	reg := obs.New()
	c, err := shard.NewCoordinator(shard.CoordinatorConfig{
		Tuning:  tn,
		KeySeed: opts.Seed ^ 0x5ad5,
		Obs:     reg,
	})
	if err != nil {
		return fail(err)
	}

	// Bootstrap the base population in one uncounted interval, then
	// seed the oracle's member views from the coordinator's tree view.
	scn := ss.Build(opts.Quick)
	n := scn.Bootstrap()
	for m := 0; m < n; m++ {
		if err := c.QueueJoin(keytree.Member(m)); err != nil {
			return fail(err)
		}
	}
	if _, err := c.Rekey(ctx); err != nil {
		return fail(err)
	}
	pcfg := protocol.DefaultConfig()
	pcfg.Obs = reg
	orc := oracle.New(c, oracle.Config{
		MaxMulticastRounds: pcfg.MaxMulticastRounds,
		MaxUnicastWaves:    50,
	})
	orc.SetObs(reg)
	if err := orc.Bootstrap(); err != nil {
		return fail(err)
	}

	rng := rand.New(rand.NewPCG(opts.Seed, 0x5ca1e))
	next := keytree.Member(n)
	alloc := func() keytree.Member {
		m := next
		next++
		return m
	}
	var sess *protocol.Session
	lastSent := -1 // last shard whose channel went over the wire
	for i := 0; i < scn.Intervals(); i++ {
		joins, leaves := scn.Churn(i, c.Members(), rng, alloc)
		for _, m := range leaves {
			if err := c.QueueLeave(m); err != nil {
				return fail(err)
			}
		}
		for _, m := range joins {
			if err := c.QueueJoin(m); err != nil {
				return fail(err)
			}
		}
		m, err := c.Rekey(ctx)
		if errors.Is(err, shard.ErrNoChange) {
			continue
		}
		if err != nil {
			return fail(err)
		}
		if err := orc.ObserveBatch(m, joins, leaves); err != nil {
			return fail(err)
		}
		cell.Rekeys++
		cell.Changes += len(joins) + len(leaves)
		cell.Encs += m.TotalEncryptions()
		cell.TopEncs += len(m.TopEncs)
		var maxBatch int64
		for _, ns := range m.ShardBatchNs {
			if ns > maxBatch {
				maxBatch = ns
			}
		}
		critNs = append(critNs, maxBatch+m.MergeNs)
		mergeNs = append(mergeNs, m.MergeNs)
		cell.CritNs += maxBatch + m.MergeNs
		cell.MergeNs += m.MergeNs

		// Mid-run failover: restore one shard from its own snapshot and
		// keep going; the oracle must not notice.
		if s > 1 && i == scn.Intervals()/2 {
			idx := s / 2
			if err := c.RestoreShard(idx, c.Shard(idx).Snapshot()); err != nil {
				return fail(err)
			}
		}

		// Transport leg: deliver one changed shard's wire channel over
		// the impaired star, rotating through shards across intervals.
		// Per-shard channels keep block IDs and user ranges local, so a
		// shard's slice replays through the unsharded protocol stack.
		send := -1
		for k := 1; k <= s; k++ {
			cand := (lastSent + k) % s
			if m.Slices[cand].Res != nil {
				send = cand
				break
			}
		}
		if send < 0 {
			continue
		}
		lastSent = send
		res := m.Slices[send].Res
		plan, err := assign.Build(res)
		if err != nil {
			return fail(err)
		}
		pmsg, err := protocol.BuildMessage(res, plan, pcfg.K, c.Degree())
		if err != nil {
			return fail(err)
		}
		star, err := netsim.NewStar(netsim.DefaultStar(c.Shard(send).N(), opts.Seed^0xce11+uint64(i)))
		if err != nil {
			return fail(err)
		}
		if sess == nil {
			if sess, err = protocol.NewSession(pcfg, star, opts.Seed^0xbeef); err != nil {
				return fail(err)
			}
		} else {
			sess.Rebind(star)
		}
		met, err := sess.Run(pmsg)
		if err != nil {
			return fail(err)
		}
		if err := orc.CheckRecovery(met); err != nil {
			return fail(err)
		}
	}
	for i := 0; i < s; i++ {
		if err := c.Shard(i).CheckInvariant(); err != nil {
			return fail(err)
		}
		cell.Restores += c.Shard(i).Restores()
	}
	cell.FinalN = c.N()
	if cell.CritNs > 0 {
		cell.Throughput = float64(cell.Changes) / (float64(cell.CritNs) / 1e6)
	}
	cell.Checks = reg.CounterValue(obs.COracleChecks)
	cell.Violations = reg.CounterValue(obs.COracleViolations)
	cell.OK = cell.Violations == 0 && cell.Err == "" && cell.Rekeys > 0 &&
		(s == 1 || cell.Restores > 0)
	return cell, critNs, mergeNs
}

// RunShardSuite runs every scenario at every shard count and fills the
// per-scenario speedup column relative to the 1-shard row.
func RunShardSuite(opts Options) []ShardCell {
	opts = opts.fill()
	var cells []ShardCell
	base := make(map[string]float64) // scenario -> 1-shard throughput
	for _, ss := range shardScenarioSpecs() {
		for _, s := range ShardCounts() {
			cell := runShardCell(ss, s, opts)
			if s == 1 {
				base[ss.ID] = cell.Throughput
			}
			if b := base[cell.Scenario]; b > 0 {
				cell.Speedup = cell.Throughput / b
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// ShardMarkdown renders the suite as the markdown table embedded in
// EXPERIMENTS.md ("Sharded scale-out").
func ShardMarkdown(cells []ShardCell) string {
	var b strings.Builder
	b.WriteString("| scenario | shards | rekeys | final N | changes | encryptions | top encs | crit path ms | merge ms | changes/ms | speedup | restores | oracle checks | violations | verdict |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|\n")
	for _, c := range cells {
		verdict := "PASS"
		if !c.OK {
			verdict = "FAIL"
			if c.Err != "" {
				verdict = "FAIL: " + c.Err
			}
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %.2f | %.2f | %.0f | %.2f | %d | %d | %d | %s |\n",
			c.Scenario, c.Shards, c.Rekeys, c.FinalN, c.Changes, c.Encs, c.TopEncs,
			float64(c.CritNs)/1e6, float64(c.MergeNs)/1e6, c.Throughput, c.Speedup,
			c.Restores, c.Checks, c.Violations, verdict)
	}
	return b.String()
}

// shardCheckSpeedupFloor is the 4-shard diurnal speedup the quick-scale
// CI guard insists on. The committed full-scale table shows >= 3x; the
// CI floor is deliberately lenient because quick-scale batches are
// small enough for shared-runner timer noise to matter.
const shardCheckSpeedupFloor = 1.5

// ShardCheck runs the quick-scale suite and returns an error if any
// cell fails, any oracle violation fires, or the diurnal 4-shard run
// loses the scale-out win -- the CI guard behind rekeybench
// -shard.check.
func ShardCheck(opts Options) error {
	opts.Quick = true
	cells := RunShardSuite(opts)
	var bad []string
	for _, c := range cells {
		if !c.OK || c.Violations != 0 {
			bad = append(bad, fmt.Sprintf("%s/%d shards: %s", c.Scenario, c.Shards, c.Err))
		}
		if c.Scenario == "diurnal" && c.Shards == 4 && c.Speedup < shardCheckSpeedupFloor {
			bad = append(bad, fmt.Sprintf("diurnal 4-shard speedup %.2f below floor %.1f", c.Speedup, shardCheckSpeedupFloor))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("shard check: %d problem(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
