// Scenario suite: churn trajectories beyond the paper's stationary
// workload, each run under a matrix of network impairments with the
// invariant oracles of package oracle watching every batch and every
// transport run. cmd/rekeybench renders the result as the comparison
// table in EXPERIMENTS.md ("Scenarios beyond the paper").

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ScenarioSpec names one churn scenario at full and quick scale.
type ScenarioSpec struct {
	ID    string
	Build func(quick bool) workload.Scenario
}

// ImpairmentSpec names one network condition of the matrix.
type ImpairmentSpec struct {
	ID   string
	Star func(n int, seed uint64) netsim.StarConfig
}

// ScenarioSpecs returns the four churn scenarios of the suite.
func ScenarioSpecs() []ScenarioSpec {
	return []ScenarioSpec{
		{"flash-crowd", func(quick bool) workload.Scenario {
			if quick {
				return &workload.FlashCrowd{Base: 256, Spike: 2048, SpikeAt: 1, Total: 4, Background: 4}
			}
			return &workload.FlashCrowd{Base: 4096, Spike: 100000, SpikeAt: 2, Total: 6, Background: 8}
		}},
		{"diurnal", func(quick bool) workload.Scenario {
			if quick {
				return &workload.Diurnal{Base: 256, Mean: 24, Amplitude: 0.8, Period: 4, Total: 8}
			}
			return &workload.Diurnal{Base: 4096, Mean: 128, Amplitude: 0.8, Period: 12, Total: 24}
		}},
		{"partition-rejoin", func(quick bool) workload.Scenario {
			if quick {
				return &workload.PartitionRejoin{Base: 256, Fraction: 0.25, PartitionAt: 1, RejoinAt: 2, Total: 4}
			}
			return &workload.PartitionRejoin{Base: 4096, Fraction: 0.25, PartitionAt: 2, RejoinAt: 4, Total: 6}
		}},
		{"adversarial-leave", func(quick bool) workload.Scenario {
			if quick {
				return &workload.AdversarialLeave{Base: 256, Alpha: 0.25, At: 1, Total: 3}
			}
			return &workload.AdversarialLeave{Base: 4096, Alpha: 0.25, At: 2, Total: 4}
		}},
	}
}

// ImpairmentSpecs returns the network-condition axis of the matrix.
func ImpairmentSpecs() []ImpairmentSpec {
	return []ImpairmentSpec{
		{"paper", func(n int, seed uint64) netsim.StarConfig {
			return netsim.DefaultStar(n, seed)
		}},
		{"correlated", func(n int, seed uint64) netsim.StarConfig {
			cfg := netsim.DefaultStar(n, seed)
			cfg.Clusters, cfg.PCluster = 16, 0.15
			return cfg
		}},
		{"burst", func(n int, seed uint64) netsim.StarConfig {
			return netsim.StarConfig{
				N: n, Alpha: 0.5, PHigh: 0.35, PLow: 0.05, PSource: 0.05, Seed: seed,
			}
		}},
	}
}

// ScenarioCell is one (scenario, impairment) run of the matrix.
type ScenarioCell struct {
	Scenario   string
	Impairment string
	Rekeys     int // intervals that actually rekeyed
	PeakN      int
	FinalN     int
	Encs       int     // total encryptions across the run
	BatchNs    int64   // total ProcessBatch wall time across the run
	Overhead   float64 // mean server bandwidth overhead h'/h
	Rounds     float64 // mean multicast rounds per message
	MaxWaves   int     // worst unicast waves of any message
	R1NACKs    float64 // mean round-1 NACKs per message
	Checks     int64   // oracle checks run
	Violations int64   // oracle violations found
	OK         bool
	Err        string // first infrastructure or oracle error, if any
}

// runScenarioCell drives one scenario under one impairment with the
// three invariant oracles active. drOpts parameterise the driver's key
// tree (the strategy race passes workload.WithStrategy).
func runScenarioCell(ss ScenarioSpec, is ImpairmentSpec, opts Options, drOpts ...workload.DriverOption) ScenarioCell {
	cell := ScenarioCell{Scenario: ss.ID, Impairment: is.ID}
	fail := func(err error) ScenarioCell {
		cell.Err = err.Error()
		return cell
	}

	dr, err := workload.NewDriver(ss.Build(opts.Quick), 4, opts.Seed, drOpts...)
	if err != nil {
		return fail(err)
	}
	reg := obs.New()
	dr.SetObs(reg)
	cfg := protocol.DefaultConfig()
	cfg.Obs = reg
	orc := oracle.New(dr.Tree(), oracle.Config{
		MaxMulticastRounds: cfg.MaxMulticastRounds,
		MaxUnicastWaves:    50, // the protocol's internal wave budget
	})
	orc.SetObs(reg)
	if err := orc.Bootstrap(); err != nil {
		return fail(err)
	}

	var sess *protocol.Session
	var roundAcc, overheadAcc, nackAcc stats.Accumulator
	cell.PeakN = len(dr.Tree().Members())
	for {
		st, ok, err := dr.Step()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		if st.Res == nil {
			continue
		}
		if err := orc.ObserveBatch(st.Res, st.Joins, st.Leaves); err != nil {
			return fail(err)
		}
		n := len(dr.Tree().Members())
		if n > cell.PeakN {
			cell.PeakN = n
		}
		cell.Encs += len(st.Res.Encryptions)
		cell.BatchNs += st.BatchNs

		// Transport: deliver this interval's message over the impaired
		// network sized to the post-batch population. The session (and
		// its adaptive rho state) carries across intervals; the network
		// is rebuilt because the population changed.
		star, err := netsim.NewStar(is.Star(n, opts.Seed^uint64(0xce11)+uint64(st.Interval)))
		if err != nil {
			return fail(err)
		}
		if sess == nil {
			if sess, err = protocol.NewSession(cfg, star, opts.Seed^0xbeef); err != nil {
				return fail(err)
			}
		} else {
			sess.Rebind(star)
		}
		msg, err := protocol.BuildMessage(st.Res, st.Plan, cfg.K, 4)
		if err != nil {
			return fail(err)
		}
		met, err := sess.Run(msg)
		if err != nil {
			return fail(err)
		}
		if err := orc.CheckRecovery(met); err != nil {
			return fail(err)
		}
		cell.Rekeys++
		roundAcc.Add(float64(met.MulticastRounds))
		overheadAcc.Add(met.BandwidthOverhead())
		nackAcc.Add(float64(met.Round1NACKs))
		if met.UnicastWaves > cell.MaxWaves {
			cell.MaxWaves = met.UnicastWaves
		}
	}
	cell.FinalN = len(dr.Tree().Members())
	cell.Rounds = roundAcc.Mean()
	cell.Overhead = overheadAcc.Mean()
	cell.R1NACKs = nackAcc.Mean()
	cell.Checks = reg.CounterValue(obs.COracleChecks)
	cell.Violations = reg.CounterValue(obs.COracleViolations)
	cell.OK = cell.Violations == 0 && cell.Err == "" && cell.Rekeys > 0
	return cell
}

// RunScenarioSuite runs the full scenario x impairment matrix.
func RunScenarioSuite(opts Options) []ScenarioCell {
	opts = opts.fill()
	var cells []ScenarioCell
	for _, ss := range ScenarioSpecs() {
		for _, is := range ImpairmentSpecs() {
			cells = append(cells, runScenarioCell(ss, is, opts))
		}
	}
	return cells
}

// ScenarioMarkdown renders the matrix as the markdown comparison table
// embedded in EXPERIMENTS.md.
func ScenarioMarkdown(cells []ScenarioCell) string {
	var b strings.Builder
	b.WriteString("| scenario | network | rekeys | peak N | final N | encryptions | overhead h'/h | mcast rounds | max uni waves | round-1 NACKs | oracle checks | verdict |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|\n")
	for _, c := range cells {
		verdict := "PASS"
		if !c.OK {
			verdict = "FAIL"
			if c.Err != "" {
				verdict = "FAIL: " + c.Err
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %d | %.3f | %.2f | %d | %.1f | %d | %s |\n",
			c.Scenario, c.Impairment, c.Rekeys, c.PeakN, c.FinalN, c.Encs,
			c.Overhead, c.Rounds, c.MaxWaves, c.R1NACKs, c.Checks, verdict)
	}
	return b.String()
}

// ScenarioCheck runs the quick-scale matrix and returns an error if any
// cell fails -- the CI regression guard behind rekeybench
// -scenario.check.
func ScenarioCheck(opts Options) error {
	opts.Quick = true
	cells := RunScenarioSuite(opts)
	var bad []string
	for _, c := range cells {
		if !c.OK {
			bad = append(bad, fmt.Sprintf("%s/%s: %s", c.Scenario, c.Impairment, c.Err))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("scenario check: %d of %d cells failed:\n  %s",
			len(bad), len(cells), strings.Join(bad, "\n  "))
	}
	return nil
}
