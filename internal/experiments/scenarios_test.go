package experiments

import (
	"strings"
	"testing"
)

// TestScenarioMatrix runs every scenario x impairment cell at quick
// scale and requires all three oracles to pass in each.
func TestScenarioMatrix(t *testing.T) {
	opts := Options{Quick: true, Seed: 7}
	for _, ss := range ScenarioSpecs() {
		for _, is := range ImpairmentSpecs() {
			ss, is := ss, is
			t.Run(ss.ID+"/"+is.ID, func(t *testing.T) {
				t.Parallel()
				cell := runScenarioCell(ss, is, opts.fill())
				if cell.Err != "" {
					t.Fatalf("cell failed: %s", cell.Err)
				}
				if !cell.OK {
					t.Fatalf("cell not OK: %+v", cell)
				}
				if cell.Violations != 0 {
					t.Fatalf("%d oracle violations", cell.Violations)
				}
				if cell.Rekeys == 0 || cell.Checks == 0 {
					t.Fatalf("vacuous cell: rekeys=%d checks=%d", cell.Rekeys, cell.Checks)
				}
				// Every rekeyed interval ran one batch check and one
				// recovery check.
				if cell.Checks != int64(2*cell.Rekeys) {
					t.Fatalf("checks=%d, want %d (2 per rekey)", cell.Checks, 2*cell.Rekeys)
				}
			})
		}
	}
}

// TestScenarioCellDeterministic runs one cell twice with the same seed
// and requires identical rendered rows.
func TestScenarioCellDeterministic(t *testing.T) {
	opts := Options{Quick: true, Seed: 13}.fill()
	ss := ScenarioSpecs()[0]
	is := ImpairmentSpecs()[1] // correlated: exercises cluster links too
	a := ScenarioMarkdown([]ScenarioCell{runScenarioCell(ss, is, opts)})
	b := ScenarioMarkdown([]ScenarioCell{runScenarioCell(ss, is, opts)})
	if a != b {
		t.Fatalf("cell not deterministic:\n%s\n%s", a, b)
	}
}

func TestScenarioMarkdownShape(t *testing.T) {
	cells := []ScenarioCell{
		{Scenario: "s", Impairment: "i", Rekeys: 1, OK: true},
		{Scenario: "s", Impairment: "j", Err: "boom"},
	}
	md := ScenarioMarkdown(cells)
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[2], "PASS") || !strings.Contains(lines[3], "FAIL: boom") {
		t.Fatalf("verdicts wrong:\n%s", md)
	}
}

func TestScenarioCheck(t *testing.T) {
	if err := ScenarioCheck(Options{Seed: 7}); err != nil {
		t.Fatal(err)
	}
}
