package experiments

// The SIGCOMM paper's headline motivation for periodic batch rekeying:
// processing J joins and L leaves as one batch costs far fewer
// encryptions -- and exactly one signing -- compared with rekeying after
// every request. These experiments quantify both, and sweep the key
// tree degree the system fixes at 4.

import (
	"fmt"

	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "a-batch-vs-individual",
		Paper: "batch rekeying motivation (SIGCOMM 2001 / WWW10)",
		Desc:  "encryptions and signings: one batch vs per-request rekeying",
		Run:   runBatchVsIndividual,
	})
	register(Experiment{
		ID:    "a-degree-sweep",
		Paper: "key tree degree discussion (SIGCOMM 2001)",
		Desc:  "rekey message size vs key tree degree d",
		Run:   runDegreeSweep,
	})
}

// runBatchVsIndividual compares, for growing churn L (J=L), the total
// encryptions of a single batch against the sum over L individual
// leave-rekeys followed by L individual join-rekeys, plus the signing
// counts (1 vs 2L).
func runBatchVsIndividual(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := 4096
	trials := 4
	if o.Quick {
		n, trials = 512, 2
	}
	enc := &stats.Figure{
		ID:     "A-BATCH-enc",
		Title:  fmt.Sprintf("total encryptions: one batch vs per-request rekeying (N=%d, J=L)", n),
		XLabel: "requests L (=J)", YLabel: "encryptions",
	}
	sign := &stats.Figure{
		ID:     "A-BATCH-sign",
		Title:  "signing operations per interval",
		XLabel: "requests L (=J)", YLabel: "signings",
	}
	sb := enc.NewSeries("batch")
	si := enc.NewSeries("individual")
	gb := sign.NewSeries("batch")
	gi := sign.NewSeries("individual")

	fracs := []float64{0.01, 0.05, 0.125, 0.25, 0.5}
	if o.Quick {
		fracs = []float64{0.05, 0.25}
	}
	for _, frac := range fracs {
		l := int(frac * float64(n))
		if l < 1 {
			l = 1
		}
		var batch, indiv stats.Accumulator
		for trial := 0; trial < trials; trial++ {
			seed := o.Seed + uint64(l*7+trial)
			// Batch: one message for J=L joins + L leaves.
			gen, err := workload.NewGenerator(n, 4, 10, seed)
			if err != nil {
				return nil, err
			}
			res, _, err := gen.Batch(l, l)
			if err != nil {
				return nil, err
			}
			batch.AddInt(len(res.Encryptions))

			// Individual: same membership change as 2L single-request
			// batches on a live tree.
			tr := keytree.New(4, keys.NewDeterministicGenerator(seed^0x1d1), keytree.WithLite(true))
			joins := make([]keytree.Member, n)
			for i := range joins {
				joins[i] = keytree.Member(i)
			}
			if _, err := tr.ProcessBatch(joins, nil); err != nil {
				return nil, err
			}
			total := 0
			members := tr.Members()
			for i := 0; i < l; i++ {
				r, err := tr.ProcessBatch(nil, []keytree.Member{members[i*3%len(members)]})
				if err != nil {
					return nil, err
				}
				total += len(r.Encryptions)
			}
			for i := 0; i < l; i++ {
				r, err := tr.ProcessBatch([]keytree.Member{keytree.Member(n + 1000 + i)}, nil)
				if err != nil {
					return nil, err
				}
				total += len(r.Encryptions)
			}
			indiv.AddInt(total)
		}
		sb.Add(float64(l), batch.Mean())
		si.Add(float64(l), indiv.Mean())
		gb.Add(float64(l), 1)
		gi.Add(float64(l), float64(2*l))
	}
	return []*stats.Figure{enc, sign}, nil
}

// runDegreeSweep measures rekey message size (encryptions and ENC
// packets) across tree degrees at fixed N and churn. The paper fixes
// d=4, the known sweet spot for LKH: small d means tall trees (many
// levels to re-key), large d means wide updates (d encryptions per
// changed node).
func runDegreeSweep(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := 4096
	trials := 5
	if o.Quick {
		n, trials = 1024, 2
	}
	fig := &stats.Figure{
		ID:     "A-DEG",
		Title:  fmt.Sprintf("rekey message size vs key tree degree (N=%d, J=0, L=N/4)", n),
		XLabel: "degree d", YLabel: "count",
	}
	se := fig.NewSeries("encryptions")
	sp := fig.NewSeries("ENC packets")
	for _, d := range []int{2, 3, 4, 6, 8, 16} {
		gen, err := workload.NewGenerator(n, d, 10, o.Seed+uint64(d))
		if err != nil {
			return nil, err
		}
		var encs, pkts stats.Accumulator
		for t := 0; t < trials; t++ {
			res, plan, err := gen.Batch(0, n/4)
			if err != nil {
				return nil, err
			}
			encs.AddInt(len(res.Encryptions))
			pkts.AddInt(len(plan.Packets))
		}
		se.Add(float64(d), encs.Mean())
		sp.Add(float64(d), pkts.Mean())
	}
	return []*stats.Figure{fig}, nil
}
