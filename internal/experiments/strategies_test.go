package experiments

import (
	"strings"
	"testing"

	"repro/internal/keytree"
	"repro/internal/oracle"
	"repro/internal/workload"
)

// TestStrategiesUnderAdversarialLeave drives every registered placement
// strategy through the colluding-leaver scenario with the full oracle
// active: after every rekeying interval, each surviving member must be
// able to reach the new group key from exactly the encryptions
// addressed to it, and no evicted member may.
func TestStrategiesUnderAdversarialLeave(t *testing.T) {
	for _, name := range keytree.StrategyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			strat, err := keytree.NewStrategy(name)
			if err != nil {
				t.Fatal(err)
			}
			scn := &workload.AdversarialLeave{Base: 512, Alpha: 0.5, At: 1, Total: 4}
			dr, err := workload.NewDriver(scn, 4, 17, workload.WithStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}
			o := oracle.New(dr.Tree(), oracle.Config{MaxMulticastRounds: 2, MaxUnicastWaves: 50})
			if err := o.Bootstrap(); err != nil {
				t.Fatal(err)
			}
			batches := 0
			for {
				st, ok, err := dr.Step()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if st.Res == nil {
					continue
				}
				batches++
				if err := o.ObserveBatch(st.Res, st.Joins, st.Leaves); err != nil {
					t.Fatalf("interval %d: %v", st.Interval, err)
				}
				if err := dr.Tree().CheckInvariant(); err != nil {
					t.Fatalf("interval %d: %v", st.Interval, err)
				}
			}
			if batches == 0 {
				t.Fatal("scenario produced no rekeying intervals")
			}
		})
	}
}

// TestStrategySuiteQuick runs the quick-scale race end to end and
// sanity-checks the aggregated rows and the rendered table.
func TestStrategySuiteQuick(t *testing.T) {
	cells := RunStrategySuite(Options{Quick: true, Seed: 7})
	wantRows := len(keytree.StrategyNames()) * len(ScenarioSpecs())
	if len(cells) != wantRows {
		t.Fatalf("got %d rows, want %d", len(cells), wantRows)
	}
	for _, c := range cells {
		if !c.OK {
			t.Errorf("%s/%s failed: %s", c.Strategy, c.Scenario, c.Err)
		}
		if c.Violations != 0 {
			t.Errorf("%s/%s: %d oracle violations", c.Strategy, c.Scenario, c.Violations)
		}
		if c.Rekeys == 0 || c.Encs == 0 || c.Checks == 0 {
			t.Errorf("vacuous row %s/%s: %+v", c.Strategy, c.Scenario, c)
		}
		if c.Bytes != int64(c.Encs)*encWireBytes {
			t.Errorf("%s/%s: bytes %d != encs %d * %d", c.Strategy, c.Scenario, c.Bytes, c.Encs, encWireBytes)
		}
	}
	md := StrategyMarkdown(cells)
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != wantRows+2 {
		t.Fatalf("table has %d lines, want %d", len(lines), wantRows+2)
	}
	for _, c := range cells {
		if c.Strategy == keytree.StrategyPaper && !strings.Contains(md, "| 1.000 |") {
			t.Fatal("paper rows missing the 1.000 vs-paper ratio")
		}
	}
}

func TestStrategyCheck(t *testing.T) {
	if err := StrategyCheck(Options{Seed: 7}); err != nil {
		t.Fatal(err)
	}
}
