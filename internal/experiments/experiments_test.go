package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func quickOpts() Options { return Options{Quick: true, Messages: 5, Seed: 3} }

func TestRegistryComplete(t *testing.T) {
	// Every figure of the paper's evaluation must have a registered
	// regenerator (see DESIGN.md experiment index).
	want := []string{
		"f6-enc-grid", "f6-enc-vs-n", "f7-dup-grid", "f7-dup-vs-n",
		"f8-bw-vs-k", "f8-enctime-vs-k",
		"f9-nacks-vs-rho", "f9-rounds-vs-rho",
		"f10-user-rounds", "f10-bw-vs-rho",
		"f12-rho-trace", "f13-nack-trace", "f14-nack-target-sweep",
		"f15-nack-vs-k", "f16-bw-vs-k-alpha", "f16-bw-vs-k-n",
		"f17-server-rounds", "f17-user-rounds",
		"f18-latency-vs-numnack", "f18-bw-vs-numnack",
		"f19-adaptive-extra-alpha", "f20-adaptive-extra-n",
		"f21-deadline-trace",
		"a-enc-analysis", "a-server-capacity",
		"a-batch-vs-individual", "a-degree-sweep",
		"abl-uka-baseline", "abl-interleave",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry holds %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown ID found")
	}
}

func series(t *testing.T, figs []*stats.Figure, figIdx int, label string) *stats.Series {
	t.Helper()
	if figIdx >= len(figs) {
		t.Fatalf("only %d figures", len(figs))
	}
	for _, s := range figs[figIdx].Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("series %q missing from %s", label, figs[figIdx].ID)
	return nil
}

func ys(s *stats.Series) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

func TestF6GridShape(t *testing.T) {
	figs, err := runF6Grid(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// More joins => more packets, at fixed L (linear growth in J).
	n := 1024
	loJ := series(t, figs, 0, "J=0")
	hiJ := series(t, figs, 0, "J=1024")
	for i := range loJ.Points {
		if hiJ.Points[i].Y < loJ.Points[i].Y {
			t.Fatalf("J=%d packets fewer than J=0 at L=%g", n, loJ.Points[i].X)
		}
	}
	// At J=0, packets rise then fall in L (peak near N/d).
	y := ys(loJ)
	if !(y[1] > y[0] && y[len(y)-1] < y[1]) {
		t.Fatalf("no rise-then-fall in L at J=0: %v", y)
	}
}

func TestF6VsNShape(t *testing.T) {
	figs, err := runF6VsN(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := series(t, figs, 0, "J=0, L=N/4")
	y := ys(s)
	for i := 1; i < len(y); i++ {
		if y[i] <= y[i-1] {
			t.Fatalf("packets not increasing in N: %v", y)
		}
	}
	// Roughly linear in N: quadrupling N should roughly quadruple
	// packets (allow a factor-2 band).
	last, prev := y[len(y)-1], y[len(y)-2]
	if r := last / math.Max(prev, 1); r < 2 || r > 8 {
		t.Fatalf("growth ratio %v not ~4", r)
	}
}

func TestF7Shapes(t *testing.T) {
	figs, err := runF7VsN(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := series(t, figs, 0, "J=0, L=N/4")
	y := ys(s)
	// Duplication overhead grows with N and respects the paper's bound
	// (log_d(N)-1)/46 for the balanced workloads.
	for i, p := range s.Points {
		bound := (math.Log(p.X)/math.Log(4) - 1 + 0.5) / 46 // slack half-level
		if y[i] > bound {
			t.Fatalf("N=%g: duplication %.4f above bound %.4f", p.X, y[i], bound)
		}
	}
	if y[len(y)-1] <= y[0] {
		t.Fatalf("duplication overhead not growing with N: %v", y)
	}
}

func TestF8BandwidthFlatForMidK(t *testing.T) {
	figs, err := runF8Bandwidth(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := series(t, figs, 0, "alpha=0.2")
	var k1, k10, k50 float64
	for _, p := range s.Points {
		switch p.X {
		case 1:
			k1 = p.Y
		case 10:
			k10 = p.Y
		case 50:
			k50 = p.Y
		}
	}
	if k10 <= 1.0 {
		t.Fatalf("k=10 overhead %.2f <= 1", k10)
	}
	// k=1 needs at least as much as k=10 (finer blocks recover fewer
	// users per parity packet); k=50 pays last-block duplication.
	if k1 < k10*0.95 {
		t.Fatalf("k=1 overhead %.2f below k=10 %.2f", k1, k10)
	}
	if k50 < k10 {
		t.Fatalf("k=50 overhead %.2f below k=10 %.2f (no duplication bump)", k50, k10)
	}
}

func TestF9NACKsDropWithRho(t *testing.T) {
	figs, err := runF9NACKs(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := series(t, figs, 0, "alpha=0.2")
	y := ys(s)
	if y[0] < 10 {
		t.Fatalf("rho=1 NACKs %.1f suspiciously low", y[0])
	}
	if y[len(y)-1] > y[0]/10 {
		t.Fatalf("NACKs did not drop steeply: %v", y)
	}
}

func TestF10UserRoundsMassInRound1(t *testing.T) {
	figs, err := runF10UserRounds(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := series(t, figs, 0, "rho=1")
	if s.Points[0].Y < 0.94 {
		t.Fatalf("rho=1 round-1 fraction %.4f < 0.94", s.Points[0].Y)
	}
	s2 := series(t, figs, 0, "rho=2")
	if s2.Points[0].Y < s.Points[0].Y {
		t.Fatalf("rho=2 fraction %.4f below rho=1 %.4f", s2.Points[0].Y, s.Points[0].Y)
	}
}

func TestF12RhoSettles(t *testing.T) {
	figs, err := runF12RhoTrace(Options{Quick: true, Messages: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// From rho=2, the trajectory must come down for alpha=0.2.
	var fig2 *stats.Figure
	for _, f := range figs {
		if strings.Contains(f.ID, "init2") {
			fig2 = f
		}
	}
	if fig2 == nil {
		t.Fatal("missing init rho=2 figure")
	}
	for _, s := range fig2.Series {
		if s.Label != "alpha=0.2" {
			continue
		}
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if last >= first {
			t.Fatalf("rho did not decrease from 2: first=%v last=%v", first, last)
		}
	}
}

func TestF21MissesDecline(t *testing.T) {
	figs, err := runF21(Options{Quick: true, Messages: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("%d figures, want 2", len(figs))
	}
	st := figs[1].Series[0]
	first, last := st.Points[0].Y, st.Points[len(st.Points)-1].Y
	if last > first {
		t.Fatalf("numNACK grew from %v to %v despite misses", first, last)
	}
}

func TestEncAnalysisAgreement(t *testing.T) {
	figs, err := runEncAnalysis(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	closed := series(t, figs, 0, "closed form")
	sim := series(t, figs, 0, "marking algorithm (simulated)")
	for i := range closed.Points {
		c, s := closed.Points[i].Y, sim.Points[i].Y
		if c == 0 && s == 0 {
			continue
		}
		if math.Abs(c-s) > 0.08*c+4 {
			t.Fatalf("L=%g: closed %v vs simulated %v", closed.Points[i].X, c, s)
		}
	}
}

func TestCapacityMonotone(t *testing.T) {
	figs, err := runCapacity(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := figs[0].Series[0]
	if len(s.Points) < 2 {
		t.Fatal("too few points")
	}
	if s.Points[len(s.Points)-1].Y < s.Points[0].Y {
		t.Fatal("capacity not increasing with interval")
	}
	if s.Points[len(s.Points)-1].Y < 1024 {
		t.Fatalf("60 s interval supports only %g users", s.Points[len(s.Points)-1].Y)
	}
}

func TestFprintFormat(t *testing.T) {
	fig := &stats.Figure{ID: "X", Title: "demo", XLabel: "k", YLabel: "y"}
	s := fig.NewSeries("a")
	s.Add(1, 2.5)
	var buf bytes.Buffer
	if err := Fprint(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## X — demo", "[a]", "1\t2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
