package experiments

// Ablations for the design choices DESIGN.md calls out: the
// user-oriented key assignment (vs the encryption-oriented baseline it
// replaced) and the interleaved send order (vs sequential).

import (
	"fmt"

	"repro/internal/assign"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "abl-uka-baseline",
		Paper: "Section 4 design rationale",
		Desc:  "UKA vs encryption-oriented baseline: one-round failure rate and packets sent",
		Run:   runAblUKA,
	})
	register(Experiment{
		ID:    "abl-interleave",
		Paper: "Section 5.1 design rationale",
		Desc:  "interleaved vs sequential send order under burst loss",
		Run:   runAblInterleave,
	})
}

// runAblUKA measures, for one multicast round with rho=1 and no FEC
// recovery, the fraction of users left wanting under (a) UKA (each user
// needs exactly one packet, some encryptions duplicated) and (b) the
// encryption-oriented baseline (no duplicates, users need up to
// tree-height packets). The paper's motivation for UKA is exactly this
// gap; its price is the duplication overhead, reported as packet counts.
func runAblUKA(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fail := &stats.Figure{
		ID:     "ABL-UKA-fail",
		Title:  fmt.Sprintf("one-round failure fraction, UKA vs encryption-oriented baseline (N=%d, L=N/4, rho=1)", n),
		XLabel: "alpha", YLabel: "fraction of users missing keys after round 1",
	}
	cost := &stats.Figure{
		ID:     "ABL-UKA-cost",
		Title:  "packets per rekey message (the price of user orientation)",
		XLabel: "alpha", YLabel: "ENC packets",
	}
	sUKA := fail.NewSeries("UKA")
	sBase := fail.NewSeries("baseline")
	cUKA := cost.NewSeries("UKA")
	cBase := cost.NewSeries("baseline")

	gen, err := workload.NewGenerator(n, 4, 10, o.Seed)
	if err != nil {
		return nil, err
	}
	for _, alpha := range alphaSweep(o.Quick) {
		star := netsim.StarConfig{
			N: gen.PostBatchUsers(0, n/4), Alpha: alpha,
			PHigh: 0.20, PLow: 0.02, PSource: 0.01, Seed: o.Seed ^ 0xab1,
		}
		net, err := netsim.NewStar(star)
		if err != nil {
			return nil, err
		}
		var failUKA, failBase, pktUKA, pktBase stats.Accumulator
		for m := 0; m < o.Messages; m++ {
			res, plan, err := gen.Batch(0, n/4)
			if err != nil {
				return nil, err
			}
			base, err := assign.BuildBaseline(res, assign.Capacity)
			if err != nil {
				return nil, err
			}
			pktUKA.AddInt(len(plan.Packets))
			pktBase.AddInt(len(base.Packets))

			// One shared delivery trial: send max(|UKA|,|base|) packet
			// slots; packet i of either scheme is lost for user u iff
			// slot i is lost (both schemes face identical loss).
			slots := max(len(plan.Packets), len(base.Packets))
			times := make([]float64, slots)
			for i := range times {
				times[i] = float64(m*slots+i) * 0.1
			}
			rd := net.MulticastRound(times)
			nUsers := len(res.UserIDs)
			fU, fB := 0, 0
			for ui, nodeID := range res.UserIDs {
				got := map[int]bool{}
				for _, idx := range rd.Received(ui) {
					got[idx] = true
				}
				if pi, ok := plan.UserPacket[nodeID]; ok && !got[pi] {
					fU++
				}
				for _, pi := range base.UserPackets[nodeID] {
					if !got[pi] {
						fB++
						break
					}
				}
			}
			failUKA.Add(float64(fU) / float64(nUsers))
			failBase.Add(float64(fB) / float64(nUsers))
		}
		sUKA.Add(alpha, failUKA.Mean())
		sBase.Add(alpha, failBase.Mean())
		cUKA.Add(alpha, pktUKA.Mean())
		cBase.Add(alpha, pktBase.Mean())
	}
	return []*stats.Figure{fail, cost}, nil
}

// runAblInterleave compares the default interleaved send order with a
// sequential order under the bursty loss model: sequential sends place
// same-block shards 100 ms apart, inside one mean burst, so a burst
// claims several shards of one block and recovery needs more parity.
func runAblInterleave(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{
		ID:     "ABL-ILV",
		Title:  fmt.Sprintf("interleaved vs sequential send order (N=%d, L=N/4, k=10, rho=1)", n),
		XLabel: "alpha", YLabel: "avg server bandwidth overhead",
	}
	nfig := &stats.Figure{
		ID:     "ABL-ILV-nacks",
		Title:  "first-round NACKs, interleaved vs sequential",
		XLabel: "alpha", YLabel: "avg # NACKs (round 1)",
	}
	for _, seq := range []bool{false, true} {
		label := "interleaved"
		if seq {
			label = "sequential"
		}
		s := fig.NewSeries(label)
		sn := nfig.NewSeries(label)
		for _, alpha := range alphaSweep(o.Quick) {
			ms, err := runTransportSeq(transportConfig{
				N: n, Alpha: alpha, Rho: 1, Messages: o.Messages, Seed: o.Seed,
			}, seq)
			if err != nil {
				return nil, err
			}
			s.Add(alpha, meanOver(ms, 0, (*protocol.Metrics).BandwidthOverhead))
			sn.Add(alpha, meanOver(ms, 0, func(m *protocol.Metrics) float64 { return float64(m.Round1NACKs) }))
		}
	}
	return []*stats.Figure{fig, nfig}, nil
}

// runTransportSeq is runTransport with the send-order switch exposed.
func runTransportSeq(tc transportConfig, sequential bool) ([]*protocol.Metrics, error) {
	tc.sequential = sequential
	return runTransport(tc)
}
