package experiments

import "testing"

func TestBatchVsIndividual(t *testing.T) {
	figs, err := runBatchVsIndividual(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	enc := figs[0]
	var batch, indiv *[]float64
	for _, s := range enc.Series {
		vals := ys(s)
		if s.Label == "batch" {
			batch = &vals
		} else {
			indiv = &vals
		}
	}
	if batch == nil || indiv == nil {
		t.Fatal("missing series")
	}
	for i := range *batch {
		if (*batch)[i] >= (*indiv)[i] {
			t.Fatalf("point %d: batch %.0f not cheaper than individual %.0f",
				i, (*batch)[i], (*indiv)[i])
		}
	}
	// At 25% churn the saving should be large (>2x).
	last := len(*batch) - 1
	if (*indiv)[last]/(*batch)[last] < 2 {
		t.Fatalf("saving at high churn only %.1fx", (*indiv)[last]/(*batch)[last])
	}
}

func TestDegreeSweep(t *testing.T) {
	figs, err := runDegreeSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	encs := series(t, figs, 0, "encryptions")
	byD := map[float64]float64{}
	for _, p := range encs.Points {
		byD[p.X] = p.Y
	}
	// d=16 must cost more encryptions than d=4 (wide updates), and d=2
	// more than d=4 (tall trees) -- the d~4 sweet spot.
	if byD[4] >= byD[16] {
		t.Fatalf("d=4 (%.0f) not cheaper than d=16 (%.0f)", byD[4], byD[16])
	}
	if byD[4] >= byD[2] {
		t.Fatalf("d=4 (%.0f) not cheaper than d=2 (%.0f)", byD[4], byD[2])
	}
}
