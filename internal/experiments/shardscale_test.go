package experiments

import (
	"strings"
	"testing"
)

// TestShardSuiteQuick runs the quick-scale scale-out suite end to end
// and sanity-checks every row: oracles silent, failover exercised at
// every multi-shard count, single-shard rows free of top-tree
// encryptions, and the rendered table well-formed. Speedup magnitude is
// deliberately not asserted here (timer noise under `go test -race` and
// loaded runners); ShardCheck owns the lenient CI floor.
func TestShardSuiteQuick(t *testing.T) {
	cells := RunShardSuite(Options{Quick: true, Seed: 7})
	wantRows := len(shardScenarioSpecs()) * len(ShardCounts())
	if len(cells) != wantRows {
		t.Fatalf("got %d rows, want %d", len(cells), wantRows)
	}
	for _, c := range cells {
		if !c.OK {
			t.Errorf("%s/%d shards failed: %s", c.Scenario, c.Shards, c.Err)
		}
		if c.Violations != 0 {
			t.Errorf("%s/%d shards: %d oracle violations", c.Scenario, c.Shards, c.Violations)
		}
		if c.Rekeys == 0 || c.Encs == 0 || c.Checks == 0 || c.Changes == 0 {
			t.Errorf("vacuous row %s/%d: %+v", c.Scenario, c.Shards, c)
		}
		if c.Shards == 1 {
			if c.TopEncs != 0 {
				t.Errorf("%s/1 shard: %d top-tree encryptions, want 0", c.Scenario, c.TopEncs)
			}
			if c.Restores != 0 {
				t.Errorf("%s/1 shard: %d restores, want 0", c.Scenario, c.Restores)
			}
		} else {
			if c.TopEncs == 0 {
				t.Errorf("%s/%d shards: no top-tree encryptions", c.Scenario, c.Shards)
			}
			if c.Restores == 0 {
				t.Errorf("%s/%d shards: mid-run failover never exercised", c.Scenario, c.Shards)
			}
		}
	}
	md := ShardMarkdown(cells)
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != wantRows+2 {
		t.Fatalf("table has %d lines, want %d", len(lines), wantRows+2)
	}
	if !strings.Contains(md, "| diurnal | 4 |") {
		t.Fatal("table missing the diurnal 4-shard row")
	}
}
