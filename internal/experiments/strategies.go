// Strategy race: every registered keytree placement strategy driven
// through the full scenario x impairment matrix of scenarios.go with
// the invariant oracles active, compared on the rekey workload it
// induces -- encryptions, rekey payload bytes and batch latency.
// cmd/rekeybench renders the result as the strategy comparison table in
// EXPERIMENTS.md.

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/workload"
)

// encWireBytes is the rekey payload cost of one encryption on the
// wire: the node ID plus the wrapped key (AES block and truncated MAC).
const encWireBytes = 4 + keys.WrappedSize

// StrategyCell aggregates one (strategy, scenario) row of the race over
// the whole impairment axis: the tree's evolution -- hence rekeys,
// encryption counts and batch latency -- depends only on the churn
// schedule, while the oracle checks and transport overheads accumulate
// across all three network conditions.
type StrategyCell struct {
	Strategy string
	Scenario string
	Rekeys   int   // rekeying intervals per impairment run
	Encs     int   // total encryptions per impairment run
	Bytes    int64 // rekey payload bytes those encryptions cost
	// MeanBatchUs is the mean ProcessBatch wall time per rekeying
	// interval, microseconds, averaged over every impairment run.
	MeanBatchUs float64
	Overhead    float64 // mean transport bandwidth overhead h'/h
	Checks      int64   // oracle checks across all impairments
	Violations  int64   // oracle violations across all impairments
	OK          bool
	Err         string
}

// RunStrategySuite races every registered strategy through the full
// scenario x impairment matrix and returns one aggregated cell per
// (strategy, scenario), strategies in registry order, scenarios in
// suite order.
func RunStrategySuite(opts Options) []StrategyCell {
	opts = opts.fill()
	var out []StrategyCell
	for _, name := range keytree.StrategyNames() {
		for _, ss := range ScenarioSpecs() {
			out = append(out, runStrategyRow(name, ss, opts))
		}
	}
	return out
}

// runStrategyRow drives one strategy through one scenario under every
// impairment and folds the runs into a StrategyCell.
func runStrategyRow(name string, ss ScenarioSpec, opts Options) StrategyCell {
	row := StrategyCell{Strategy: name, Scenario: ss.ID, OK: true}
	var batchNs int64
	var overheadSum float64
	runs := 0
	for _, is := range ImpairmentSpecs() {
		strat, err := keytree.NewStrategy(name)
		if err != nil {
			row.OK, row.Err = false, err.Error()
			return row
		}
		cell := runScenarioCell(ss, is, opts, workload.WithStrategy(strat))
		// The churn schedule is seeded independently of the network, so
		// every impairment run replays the identical tree evolution;
		// record it once and flag any divergence as a failure.
		if runs == 0 {
			row.Rekeys, row.Encs = cell.Rekeys, cell.Encs
		} else if cell.Encs != row.Encs || cell.Rekeys != row.Rekeys {
			row.OK = false
			row.Err = fmt.Sprintf("impairment %s diverged: %d encs / %d rekeys vs %d / %d",
				is.ID, cell.Encs, cell.Rekeys, row.Encs, row.Rekeys)
		}
		batchNs += cell.BatchNs
		overheadSum += cell.Overhead
		row.Checks += cell.Checks
		row.Violations += cell.Violations
		if !cell.OK {
			row.OK = false
			if row.Err == "" {
				row.Err = fmt.Sprintf("impairment %s: %s", is.ID, cell.Err)
			}
		}
		runs++
	}
	row.Bytes = int64(row.Encs) * encWireBytes
	if totalBatches := row.Rekeys * runs; totalBatches > 0 {
		row.MeanBatchUs = float64(batchNs) / float64(totalBatches) / 1e3
	}
	if runs > 0 {
		row.Overhead = overheadSum / float64(runs)
	}
	return row
}

// StrategyMarkdown renders the race as the markdown comparison table
// embedded in EXPERIMENTS.md. The "vs paper" column is the strategy's
// encryption count relative to the paper strategy on the same scenario.
func StrategyMarkdown(cells []StrategyCell) string {
	paperEncs := make(map[string]int)
	for _, c := range cells {
		if c.Strategy == keytree.StrategyPaper {
			paperEncs[c.Scenario] = c.Encs
		}
	}
	var b strings.Builder
	b.WriteString("| strategy | scenario | rekeys | encryptions | payload bytes | vs paper | mean batch us | overhead h'/h | oracle checks | violations | verdict |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---|\n")
	for _, c := range cells {
		vs := "-"
		if p, ok := paperEncs[c.Scenario]; ok && p > 0 {
			vs = fmt.Sprintf("%.3f", float64(c.Encs)/float64(p))
		}
		verdict := "PASS"
		if !c.OK {
			verdict = "FAIL"
			if c.Err != "" {
				verdict = "FAIL: " + c.Err
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %s | %.1f | %.3f | %d | %d | %s |\n",
			c.Strategy, c.Scenario, c.Rekeys, c.Encs, c.Bytes, vs,
			c.MeanBatchUs, c.Overhead, c.Checks, c.Violations, verdict)
	}
	return b.String()
}

// StrategyCheck runs the quick-scale race and returns an error if any
// (strategy, scenario) row fails or sees an oracle violation -- the CI
// regression guard behind rekeybench -strategy.check.
func StrategyCheck(opts Options) error {
	opts.Quick = true
	cells := RunStrategySuite(opts)
	var bad []string
	seenPaper := false
	for _, c := range cells {
		if c.Strategy == keytree.StrategyPaper {
			seenPaper = true
		}
		if !c.OK || c.Violations != 0 {
			bad = append(bad, fmt.Sprintf("%s/%s: %s", c.Strategy, c.Scenario, c.Err))
		}
	}
	if !seenPaper {
		bad = append(bad, "paper strategy missing from registry")
	}
	if len(bad) > 0 {
		return fmt.Errorf("strategy check: %d of %d rows failed:\n  %s",
			len(bad), len(cells), strings.Join(bad, "\n  "))
	}
	return nil
}
