package experiments

import (
	"fmt"

	"repro/internal/protocol"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "f8-bw-vs-k", Paper: "Fig. 8 (left)", Desc: "server bandwidth overhead vs block size k, rho=1", Run: runF8Bandwidth})
	register(Experiment{ID: "f8-enctime-vs-k", Paper: "Fig. 8 (right)", Desc: "relative overall FEC encoding time vs block size k, rho=1", Run: runF8EncTime})
	register(Experiment{ID: "f9-nacks-vs-rho", Paper: "Fig. 9 (left)", Desc: "average first-round NACKs vs proactivity factor", Run: runF9NACKs})
	register(Experiment{ID: "f9-rounds-vs-rho", Paper: "Fig. 9 (right)", Desc: "average rounds for all users to receive vs proactivity factor", Run: runF9Rounds})
	register(Experiment{ID: "f10-user-rounds", Paper: "Fig. 10 (left)", Desc: "fraction of users needing a given number of rounds", Run: runF10UserRounds})
	register(Experiment{ID: "f10-bw-vs-rho", Paper: "Fig. 10 (right)", Desc: "average server bandwidth overhead vs proactivity factor", Run: runF10Bandwidth})
	register(Experiment{ID: "f12-rho-trace", Paper: "Fig. 12", Desc: "adaptive proactivity factor trajectory over rekey messages", Run: runF12RhoTrace})
	register(Experiment{ID: "f13-nack-trace", Paper: "Fig. 13", Desc: "first-round NACKs per rekey message under adaptive rho", Run: runF13NACKTrace})
	register(Experiment{ID: "f14-nack-target-sweep", Paper: "Fig. 14", Desc: "NACK traces for different numNACK targets", Run: runF14TargetSweep})
	register(Experiment{ID: "f15-nack-vs-k", Paper: "Fig. 15", Desc: "NACK traces for different block sizes under adaptive rho", Run: runF15NACKvsK})
	register(Experiment{ID: "f16-bw-vs-k-alpha", Paper: "Fig. 16 (left)", Desc: "bandwidth overhead vs k under adaptive rho, per alpha", Run: runF16Alpha})
	register(Experiment{ID: "f16-bw-vs-k-n", Paper: "Fig. 16 (right)", Desc: "bandwidth overhead vs k under adaptive rho, per group size", Run: runF16N})
	register(Experiment{ID: "f17-server-rounds", Paper: "Fig. 17 (left)", Desc: "average rounds for all users vs k, adaptive rho", Run: runF17Server})
	register(Experiment{ID: "f17-user-rounds", Paper: "Fig. 17 (right)", Desc: "average rounds needed by a user vs k, adaptive rho", Run: runF17User})
	register(Experiment{ID: "f18-latency-vs-numnack", Paper: "Fig. 18 (left)", Desc: "average user rounds vs numNACK", Run: runF18Latency})
	register(Experiment{ID: "f18-bw-vs-numnack", Paper: "Fig. 18 (right)", Desc: "average server bandwidth overhead vs numNACK", Run: runF18Bandwidth})
	register(Experiment{ID: "f19-adaptive-extra-alpha", Paper: "Fig. 19", Desc: "extra bandwidth of adaptive rho vs rho=1, per alpha", Run: runF19})
	register(Experiment{ID: "f20-adaptive-extra-n", Paper: "Fig. 20", Desc: "extra bandwidth of adaptive rho vs rho=1, per group size", Run: runF20})
	register(Experiment{ID: "f21-deadline-trace", Paper: "Fig. 21", Desc: "deadline misses and numNACK adaptation over 100 messages", Run: runF21})
}

func alphaSweep(quick bool) []float64 {
	if quick {
		return []float64{0, 0.2}
	}
	return []float64{0, 0.2, 0.4, 1.0}
}

func kSweep(quick bool) []int {
	if quick {
		return []int{1, 10, 50}
	}
	return []int{1, 2, 5, 10, 15, 20, 30, 40, 50}
}

func rhoSweep(quick bool) []float64 {
	if quick {
		return []float64{1.0, 1.6, 2.2, 3.0}
	}
	return []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.6, 3.0}
}

func defaultN(quick bool) int {
	if quick {
		return 1024
	}
	return 4096
}

// warmup is how many leading messages adaptive-rho averages skip so the
// controller has settled (Fig. 12 shows settling within ~5 messages).
const warmup = 5

func runF8Bandwidth(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F8l", Title: fmt.Sprintf("server bandwidth overhead vs k (rho=1, N=%d, L=N/4)", n), XLabel: "k", YLabel: "avg server bandwidth overhead"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, k := range kSweep(o.Quick) {
			ms, err := runTransport(transportConfig{N: n, K: k, Alpha: alpha, Rho: 1, Messages: o.Messages, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			s.Add(float64(k), meanOver(ms, 0, (*protocol.Metrics).BandwidthOverhead))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF8EncTime(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F8r", Title: fmt.Sprintf("relative FEC encoding time vs k (rho=1, N=%d): k time units per parity packet", n), XLabel: "k", YLabel: "relative encoding time"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, k := range kSweep(o.Quick) {
			ms, err := runTransport(transportConfig{N: n, K: k, Alpha: alpha, Rho: 1, Messages: o.Messages, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			s.Add(float64(k), meanOver(ms, 0, func(m *protocol.Metrics) float64 {
				return float64(m.ParitySent * k)
			}))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF9NACKs(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F9l", Title: fmt.Sprintf("average first-round NACKs vs rho (N=%d, k=10)", n), XLabel: "proactivity factor", YLabel: "avg # NACKs (round 1)"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, rho := range rhoSweep(o.Quick) {
			ms, err := runTransport(transportConfig{N: n, Alpha: alpha, Rho: rho, Messages: o.Messages, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			s.Add(rho, meanOver(ms, 0, func(m *protocol.Metrics) float64 { return float64(m.Round1NACKs) }))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF9Rounds(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F9r", Title: fmt.Sprintf("average rounds until all users recover vs rho (N=%d, k=10)", n), XLabel: "proactivity factor", YLabel: "avg # server rounds"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, rho := range rhoSweep(o.Quick) {
			ms, err := runTransport(transportConfig{N: n, Alpha: alpha, Rho: rho, Messages: o.Messages, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			s.Add(rho, meanOver(ms, 0, func(m *protocol.Metrics) float64 { return float64(m.MulticastRounds) }))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF10UserRounds(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F10l", Title: fmt.Sprintf("fraction of users finishing in a given round (N=%d, alpha=20%%)", n), XLabel: "round", YLabel: "fraction of users"}
	for _, rho := range []float64{1.0, 1.6, 2.0} {
		ms, err := runTransport(transportConfig{N: n, Alpha: 0.2, Rho: rho, Messages: o.Messages, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		hist := map[int]int{}
		users := 0
		for _, m := range ms {
			for r, c := range m.UserRoundHist {
				hist[r] += c
			}
			users += m.NeededUsers
		}
		s := fig.NewSeries(fmt.Sprintf("rho=%g", rho))
		for r := 1; r <= 6; r++ {
			if users > 0 {
				s.Add(float64(r), float64(hist[r])/float64(users))
			}
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF10Bandwidth(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F10r", Title: fmt.Sprintf("average server bandwidth overhead vs rho (N=%d, k=10)", n), XLabel: "proactivity factor", YLabel: "avg server bandwidth overhead"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, rho := range rhoSweep(o.Quick) {
			ms, err := runTransport(transportConfig{N: n, Alpha: alpha, Rho: rho, Messages: o.Messages, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			s.Add(rho, meanOver(ms, 0, (*protocol.Metrics).BandwidthOverhead))
		}
	}
	return []*stats.Figure{fig}, nil
}

// adaptiveTrace runs an adaptive-rho session and returns per-message
// metrics for trace figures.
func adaptiveTrace(o Options, n int, k int, alpha float64, initRho float64, numNACK int) ([]*protocol.Metrics, error) {
	return runTransport(transportConfig{
		N: n, K: k, Alpha: alpha, Rho: initRho, Adaptive: true,
		NumNACK: numNACK, Messages: o.Messages, Seed: o.Seed,
	})
}

func runF12RhoTrace(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	var figs []*stats.Figure
	for _, initRho := range []float64{1.0, 2.0} {
		fig := &stats.Figure{ID: fmt.Sprintf("F12-init%g", initRho), Title: fmt.Sprintf("adaptive rho trajectory, initial rho=%g (N=%d, numNACK=20)", initRho, n), XLabel: "rekey message ID", YLabel: "proactivity factor"}
		for _, alpha := range alphaSweep(o.Quick) {
			ms, err := adaptiveTrace(o, n, 10, alpha, initRho, 20)
			if err != nil {
				return nil, err
			}
			s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
			for i, m := range ms {
				s.Add(float64(i), m.RhoUsed)
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

func runF13NACKTrace(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	var figs []*stats.Figure
	for _, initRho := range []float64{1.0, 2.0} {
		fig := &stats.Figure{ID: fmt.Sprintf("F13-init%g", initRho), Title: fmt.Sprintf("first-round NACKs per message, initial rho=%g (N=%d, numNACK=20)", initRho, n), XLabel: "rekey message ID", YLabel: "# NACKs (round 1)"}
		for _, alpha := range alphaSweep(o.Quick) {
			ms, err := adaptiveTrace(o, n, 10, alpha, initRho, 20)
			if err != nil {
				return nil, err
			}
			s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
			for i, m := range ms {
				s.Add(float64(i), float64(m.Round1NACKs))
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

func runF14TargetSweep(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	targets := []int{0, 5, 10, 40, 100}
	if o.Quick {
		targets = []int{0, 10, 100}
	}
	var figs []*stats.Figure
	for _, initRho := range []float64{1.0, 2.0} {
		fig := &stats.Figure{ID: fmt.Sprintf("F14-init%g", initRho), Title: fmt.Sprintf("first-round NACKs per message for numNACK targets, initial rho=%g (N=%d, alpha=20%%)", initRho, n), XLabel: "rekey message ID", YLabel: "# NACKs (round 1)"}
		for _, target := range targets {
			tc := transportConfig{N: n, Alpha: 0.2, Rho: initRho, Adaptive: true, NumNACK: target, Messages: o.Messages, Seed: o.Seed}
			if target == 0 {
				// fill() treats 0 as unset; -1 sentinel is mapped here.
				tc.NumNACK = -1
			}
			ms, err := runTransport(tc)
			if err != nil {
				return nil, err
			}
			s := fig.NewSeries(fmt.Sprintf("numNACK=%d", target))
			for i, m := range ms {
				s.Add(float64(i), float64(m.Round1NACKs))
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

func runF15NACKvsK(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	ks := []int{1, 5, 10, 30, 50}
	if o.Quick {
		ks = []int{1, 10, 50}
	}
	var figs []*stats.Figure
	for _, initRho := range []float64{1.0, 2.0} {
		fig := &stats.Figure{ID: fmt.Sprintf("F15-init%g", initRho), Title: fmt.Sprintf("first-round NACKs per message for block sizes, initial rho=%g (N=%d, alpha=20%%, numNACK=20)", initRho, n), XLabel: "rekey message ID", YLabel: "# NACKs (round 1)"}
		for _, k := range ks {
			ms, err := adaptiveTrace(o, n, k, 0.2, initRho, 20)
			if err != nil {
				return nil, err
			}
			s := fig.NewSeries(fmt.Sprintf("k=%d", k))
			for i, m := range ms {
				s.Add(float64(i), float64(m.Round1NACKs))
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

func runF16Alpha(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F16l", Title: fmt.Sprintf("bandwidth overhead vs k, adaptive rho (N=%d, numNACK=20)", n), XLabel: "k", YLabel: "avg server bandwidth overhead"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, k := range kSweep(o.Quick) {
			ms, err := adaptiveTrace(o, n, k, alpha, 1.0, 20)
			if err != nil {
				return nil, err
			}
			s.Add(float64(k), meanOver(ms, warmup, (*protocol.Metrics).BandwidthOverhead))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF16N(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	ns := []int{1024, 4096, 8192, 16384}
	if o.Quick {
		ns = []int{1024, 4096}
	}
	fig := &stats.Figure{ID: "F16r", Title: "bandwidth overhead vs k, adaptive rho (alpha=20%, numNACK=20)", XLabel: "k", YLabel: "avg server bandwidth overhead"}
	for _, n := range ns {
		s := fig.NewSeries(fmt.Sprintf("N=%d", n))
		for _, k := range kSweep(o.Quick) {
			ms, err := adaptiveTrace(o, n, k, 0.2, 1.0, 20)
			if err != nil {
				return nil, err
			}
			s.Add(float64(k), meanOver(ms, warmup, (*protocol.Metrics).BandwidthOverhead))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF17Server(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F17l", Title: fmt.Sprintf("average rounds for all users vs k, adaptive rho (N=%d, numNACK=20)", n), XLabel: "k", YLabel: "avg # server rounds"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, k := range kSweep(o.Quick) {
			ms, err := adaptiveTrace(o, n, k, alpha, 1.0, 20)
			if err != nil {
				return nil, err
			}
			s.Add(float64(k), meanOver(ms, warmup, func(m *protocol.Metrics) float64 { return float64(m.MulticastRounds) }))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF17User(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F17r", Title: fmt.Sprintf("average rounds needed by a user vs k, adaptive rho (N=%d, numNACK=20)", n), XLabel: "k", YLabel: "avg # rounds per user"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, k := range kSweep(o.Quick) {
			ms, err := adaptiveTrace(o, n, k, alpha, 1.0, 20)
			if err != nil {
				return nil, err
			}
			s.Add(float64(k), meanOver(ms, warmup, (*protocol.Metrics).AvgUserRounds))
		}
	}
	return []*stats.Figure{fig}, nil
}

func numNACKSweep(quick bool) []int {
	if quick {
		return []int{-1, 20, 100}
	}
	return []int{-1, 5, 10, 20, 40, 60, 80, 100}
}

func runF18Latency(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F18l", Title: fmt.Sprintf("average rounds needed by a user vs numNACK (N=%d, k=10)", n), XLabel: "numNACK", YLabel: "avg # rounds per user"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, target := range numNACKSweep(o.Quick) {
			ms, err := runTransport(transportConfig{N: n, Alpha: alpha, Rho: 1, Adaptive: true, NumNACK: target, Messages: o.Messages, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			x := float64(target)
			if target == -1 {
				x = 0
			}
			s.Add(x, meanOver(ms, warmup, (*protocol.Metrics).AvgUserRounds))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF18Bandwidth(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	fig := &stats.Figure{ID: "F18r", Title: fmt.Sprintf("average server bandwidth overhead vs numNACK (N=%d, k=10)", n), XLabel: "numNACK", YLabel: "avg server bandwidth overhead"}
	for _, alpha := range alphaSweep(o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("alpha=%g", alpha))
		for _, target := range numNACKSweep(o.Quick) {
			ms, err := runTransport(transportConfig{N: n, Alpha: alpha, Rho: 1, Adaptive: true, NumNACK: target, Messages: o.Messages, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			x := float64(target)
			if target == -1 {
				x = 0
			}
			s.Add(x, meanOver(ms, warmup, (*protocol.Metrics).BandwidthOverhead))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF19(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	alphas := []float64{0, 0.2, 1.0}
	if o.Quick {
		alphas = []float64{0, 0.2}
	}
	fig := &stats.Figure{ID: "F19", Title: fmt.Sprintf("adaptive rho vs rho=1 bandwidth overhead (N=%d, numNACK=20)", n), XLabel: "k", YLabel: "avg server bandwidth overhead"}
	for _, alpha := range alphas {
		sA := fig.NewSeries(fmt.Sprintf("alpha=%g, adaptive rho", alpha))
		sF := fig.NewSeries(fmt.Sprintf("alpha=%g, rho=1", alpha))
		for _, k := range kSweep(o.Quick) {
			msA, err := adaptiveTrace(o, n, k, alpha, 1.0, 20)
			if err != nil {
				return nil, err
			}
			msF, err := runTransport(transportConfig{N: n, K: k, Alpha: alpha, Rho: 1, Messages: o.Messages, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			sA.Add(float64(k), meanOver(msA, warmup, (*protocol.Metrics).BandwidthOverhead))
			sF.Add(float64(k), meanOver(msF, warmup, (*protocol.Metrics).BandwidthOverhead))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF20(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	ns := []int{1024, 8192, 16384}
	if o.Quick {
		ns = []int{1024, 4096}
	}
	fig := &stats.Figure{ID: "F20", Title: "adaptive rho vs rho=1 bandwidth overhead per group size (alpha=20%, numNACK=20)", XLabel: "k", YLabel: "avg server bandwidth overhead"}
	for _, n := range ns {
		sA := fig.NewSeries(fmt.Sprintf("N=%d, adaptive rho", n))
		sF := fig.NewSeries(fmt.Sprintf("N=%d, rho=1", n))
		for _, k := range kSweep(o.Quick) {
			msA, err := adaptiveTrace(o, n, k, 0.2, 1.0, 20)
			if err != nil {
				return nil, err
			}
			msF, err := runTransport(transportConfig{N: n, K: k, Alpha: 0.2, Rho: 1, Messages: o.Messages, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			sA.Add(float64(k), meanOver(msA, warmup, (*protocol.Metrics).BandwidthOverhead))
			sF.Add(float64(k), meanOver(msF, warmup, (*protocol.Metrics).BandwidthOverhead))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runF21(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := defaultN(o.Quick)
	messages := 100
	if o.Quick {
		messages = 20
	}
	ms, err := runTransport(transportConfig{
		N: n, Alpha: 0.2, Rho: 1, Adaptive: true,
		NumNACK: 200, MaxNACK: 200, AdaptNACK: true,
		Deadline: 2, MaxMcast: 2,
		Messages: messages, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	misses := &stats.Figure{ID: "F21l", Title: fmt.Sprintf("users missing the 2-round deadline (N=%d, initial numNACK=200)", n), XLabel: "rekey message ID", YLabel: "# users missing deadline"}
	target := &stats.Figure{ID: "F21r", Title: "numNACK adaptation", XLabel: "rekey message ID", YLabel: "numNACK"}
	sm := misses.NewSeries("deadline=2 rounds")
	st := target.NewSeries("deadline=2 rounds")
	for i, m := range ms {
		sm.Add(float64(i), float64(m.MissedDeadline))
		st.Add(float64(i), float64(m.NumNACKTarget))
	}
	return []*stats.Figure{misses, target}, nil
}
