package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/stats"
	"repro/internal/workload"
)

// batchPoint runs `trials` independent (J,L) batches on an N-user tree
// and returns the mean ENC packet count and mean duplication overhead.
func batchPoint(n, j, l, trials int, seed uint64) (encPkts, dupOverhead float64, err error) {
	gen, err := workload.NewGenerator(n, 4, 10, seed)
	if err != nil {
		return 0, 0, err
	}
	var pkts, dup stats.Accumulator
	for t := 0; t < trials; t++ {
		_, plan, err := gen.Batch(j, l)
		if err != nil {
			return 0, 0, err
		}
		pkts.AddInt(len(plan.Packets))
		dup.Add(plan.DuplicationOverhead())
	}
	return pkts.Mean(), dup.Mean(), nil
}

func init() {
	register(Experiment{
		ID:    "f6-enc-grid",
		Paper: "Fig. 6 (middle)",
		Desc:  "average number of ENC packets as a function of J and L, N=4096",
		Run:   runF6Grid,
	})
	register(Experiment{
		ID:    "f6-enc-vs-n",
		Paper: "Fig. 6 (right)",
		Desc:  "average number of ENC packets as a function of N",
		Run:   runF6VsN,
	})
	register(Experiment{
		ID:    "f7-dup-grid",
		Paper: "Fig. 7 (left)",
		Desc:  "average duplication overhead as a function of J and L, N=4096",
		Run:   runF7Grid,
	})
	register(Experiment{
		ID:    "f7-dup-vs-n",
		Paper: "Fig. 7 (right)",
		Desc:  "average duplication overhead as a function of N",
		Run:   runF7VsN,
	})
	register(Experiment{
		ID:    "a-enc-analysis",
		Paper: "companion analysis (SIGCOMM 2001)",
		Desc:  "expected encryptions: closed form vs marking-algorithm simulation",
		Run:   runEncAnalysis,
	})
}

func gridValues(n int, quick bool) []int {
	if quick {
		return []int{0, n / 4, n / 2, n}
	}
	step := n / 8
	vals := make([]int, 0, 9)
	for v := 0; v <= n; v += step {
		vals = append(vals, v)
	}
	return vals
}

func runF6Grid(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := 4096
	trials := 5
	if o.Quick {
		n, trials = 1024, 2
	}
	figP := &stats.Figure{ID: "F6m", Title: fmt.Sprintf("avg # ENC packets vs (J,L), N=%d, d=4", n), XLabel: "L", YLabel: "avg # ENC packets"}
	for _, j := range gridValues(n, o.Quick) {
		s := figP.NewSeries(fmt.Sprintf("J=%d", j))
		for _, l := range gridValues(n, o.Quick) {
			pkts, _, err := batchPoint(n, j, l, trials, o.Seed+uint64(j*31+l))
			if err != nil {
				return nil, err
			}
			s.Add(float64(l), pkts)
		}
	}
	return []*stats.Figure{figP}, nil
}

func runF7Grid(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := 4096
	trials := 5
	if o.Quick {
		n, trials = 1024, 2
	}
	fig := &stats.Figure{ID: "F7l", Title: fmt.Sprintf("avg duplication overhead vs (J,L), N=%d, d=4", n), XLabel: "L", YLabel: "avg duplication overhead"}
	for _, j := range gridValues(n, o.Quick) {
		s := fig.NewSeries(fmt.Sprintf("J=%d", j))
		for _, l := range gridValues(n, o.Quick) {
			_, dup, err := batchPoint(n, j, l, trials, o.Seed+uint64(j*37+l))
			if err != nil {
				return nil, err
			}
			s.Add(float64(l), dup)
		}
	}
	return []*stats.Figure{fig}, nil
}

func nSweep(quick bool) []int {
	if quick {
		return []int{16, 64, 256, 1024}
	}
	return []int{16, 64, 256, 1024, 4096, 16384}
}

func runF6VsN(o Options) ([]*stats.Figure, error) {
	return runVsN(o, "F6r", "avg # ENC packets vs N", "avg # ENC packets", func(p, d float64) float64 { return p })
}

func runF7VsN(o Options) ([]*stats.Figure, error) {
	return runVsN(o, "F7r", "avg duplication overhead vs N", "avg duplication overhead", func(p, d float64) float64 { return d })
}

func runVsN(o Options, id, title, ylabel string, pick func(pkts, dup float64) float64) ([]*stats.Figure, error) {
	o = o.fill()
	trials := 5
	if o.Quick {
		trials = 2
	}
	fig := &stats.Figure{ID: id, Title: title + ", d=4", XLabel: "N", YLabel: ylabel}
	combos := []struct {
		label string
		jl    func(n int) (int, int)
	}{
		{"J=0, L=N/4", func(n int) (int, int) { return 0, n / 4 }},
		{"J=N/4, L=N/4", func(n int) (int, int) { return n / 4, n / 4 }},
		{"J=N/4, L=0", func(n int) (int, int) { return n / 4, 0 }},
	}
	for _, c := range combos {
		s := fig.NewSeries(c.label)
		for _, n := range nSweep(o.Quick) {
			j, l := c.jl(n)
			pkts, dup, err := batchPoint(n, j, l, trials, o.Seed+uint64(n+j))
			if err != nil {
				return nil, err
			}
			s.Add(float64(n), pick(pkts, dup))
		}
	}
	return []*stats.Figure{fig}, nil
}

func runEncAnalysis(o Options) ([]*stats.Figure, error) {
	o = o.fill()
	n := 4096
	trials := 8
	if o.Quick {
		n, trials = 256, 4
	}
	fig := &stats.Figure{
		ID:     "A-ENC",
		Title:  fmt.Sprintf("expected encryptions for L of N=%d leaves: closed form vs marking algorithm", n),
		XLabel: "L", YLabel: "encryptions",
	}
	closed := fig.NewSeries("closed form")
	sim := fig.NewSeries("marking algorithm (simulated)")
	gen, err := workload.NewGenerator(n, 4, 10, o.Seed)
	if err != nil {
		return nil, err
	}
	for _, frac := range []float64{0.02, 0.0625, 0.125, 0.25, 0.5, 0.75, 0.9375} {
		l := int(frac * float64(n))
		want, err := analysis.ExpectedEncryptionsLeave(n, 4, l)
		if err != nil {
			return nil, err
		}
		closed.Add(float64(l), want)
		var acc stats.Accumulator
		for t := 0; t < trials; t++ {
			res, _, err := gen.Batch(0, l)
			if err != nil {
				return nil, err
			}
			acc.AddInt(len(res.Encryptions))
		}
		sim.Add(float64(l), acc.Mean())
	}
	return []*stats.Figure{fig}, nil
}
