package experiments

import "testing"

func TestAblationsRun(t *testing.T) {
	figs, err := runAblUKA(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline must fail strictly more often than UKA at alpha=0.2.
	var uka, base float64
	for _, s := range figs[0].Series {
		for _, p := range s.Points {
			if p.X == 0.2 {
				if s.Label == "UKA" {
					uka = p.Y
				} else {
					base = p.Y
				}
			}
		}
	}
	if base <= uka {
		t.Fatalf("baseline failure %.4f not worse than UKA %.4f", base, uka)
	}
	// And the baseline must send fewer packets (no duplication).
	var ukaPk, basePk float64
	for _, s := range figs[1].Series {
		for _, p := range s.Points {
			if p.X == 0.2 {
				if s.Label == "UKA" {
					ukaPk = p.Y
				} else {
					basePk = p.Y
				}
			}
		}
	}
	if basePk > ukaPk {
		t.Fatalf("baseline packets %.1f exceed UKA %.1f", basePk, ukaPk)
	}

	if _, err := runAblInterleave(quickOpts()); err != nil {
		t.Fatal(err)
	}
}
