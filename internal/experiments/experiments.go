// Package experiments regenerates every figure of the paper's
// evaluation: each registered experiment runs the workload the paper
// describes and emits the same series the paper plots, as stats.Figure
// values that cmd/rekeybench renders as text tables.
//
// See DESIGN.md for the experiment index (figure -> modules -> runner).
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options control experiment scale. The zero value is replaced by
// Defaults(); Quick shrinks sweeps so the full suite runs in CI time.
type Options struct {
	// Messages is the number of rekey messages (or trials) per
	// configuration point.
	Messages int
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks group sizes and sweep ranges for fast runs.
	Quick bool
}

// Defaults returns the paper-scale options.
func Defaults() Options { return Options{Messages: 25, Seed: 1} }

func (o Options) fill() Options {
	if o.Messages <= 0 {
		if o.Quick {
			o.Messages = 6
		} else {
			o.Messages = 25
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Runner executes one experiment.
type Runner func(Options) ([]*stats.Figure, error)

// Experiment is a registered, runnable reproduction of one paper figure
// (or analysis table).
type Experiment struct {
	ID    string // e.g. "f9-nacks-vs-rho"
	Paper string // the figure/table it regenerates, e.g. "Fig. 9 (left)"
	Desc  string
	Run   Runner
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Fprint renders a figure as an aligned text table: one block per
// series, rows of "x<TAB>y".
func Fprint(w io.Writer, f *stats.Figure) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	if f.XLabel != "" || f.YLabel != "" {
		if _, err := fmt.Fprintf(w, "# x: %s, y: %s\n", f.XLabel, f.YLabel); err != nil {
			return err
		}
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "\n[%s]\n", s.Label); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%g\t%g\n", p.X, p.Y); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// transportConfig bundles the knobs of one transport run.
type transportConfig struct {
	N         int // pre-batch group size
	J, L      int // churn per message (L defaults to N/4 when both zero)
	K         int
	Alpha     float64
	Rho       float64
	Adaptive  bool
	NumNACK   int
	MaxNACK   int
	AdaptNACK bool
	MaxMcast  int // 0 = multicast until done
	Deadline  int
	EarlyUni  bool
	Messages  int
	Seed      uint64
	// sequential disables interleaving (ablation only).
	sequential bool
}

func (tc transportConfig) fill() transportConfig {
	if tc.K == 0 {
		tc.K = 10
	}
	if tc.Rho == 0 {
		tc.Rho = 1
	}
	if tc.NumNACK == 0 {
		tc.NumNACK = 20
	}
	if tc.MaxNACK == 0 {
		tc.MaxNACK = 100
	}
	if tc.J == 0 && tc.L == 0 {
		tc.L = tc.N / 4
	}
	return tc
}

// runTransport executes Messages rekey messages and returns their
// metrics. Each message applies an independent (J,L) batch to the same
// pristine N-user tree, the paper's stationary workload.
func runTransport(tc transportConfig) ([]*protocol.Metrics, error) {
	tc = tc.fill()
	gen, err := workload.NewGenerator(tc.N, 4, tc.K, tc.Seed)
	if err != nil {
		return nil, err
	}
	star := netsim.StarConfig{
		N:     gen.PostBatchUsers(tc.J, tc.L),
		Alpha: tc.Alpha, PHigh: 0.20, PLow: 0.02, PSource: 0.01,
		Seed: tc.Seed ^ 0xfeed,
	}
	net, err := netsim.NewStar(star)
	if err != nil {
		return nil, err
	}
	cfg := protocol.DefaultConfig()
	cfg.K = tc.K
	cfg.InitialRho = tc.Rho
	cfg.AdaptiveRho = tc.Adaptive
	cfg.NumNACK = tc.NumNACK
	if cfg.NumNACK < 0 {
		cfg.NumNACK = 0 // -1 is the sweep sentinel for a zero target
	}
	cfg.MaxNACK = tc.MaxNACK
	cfg.AdaptNumNACK = tc.AdaptNACK
	cfg.MaxMulticastRounds = tc.MaxMcast
	cfg.DeadlineRounds = tc.Deadline
	cfg.EarlyUnicast = tc.EarlyUni
	cfg.SequentialSend = tc.sequential
	sess, err := protocol.NewSession(cfg, net, tc.Seed^0xbeef)
	if err != nil {
		return nil, err
	}
	out := make([]*protocol.Metrics, 0, tc.Messages)
	for i := 0; i < tc.Messages; i++ {
		res, plan, err := gen.Batch(tc.J, tc.L)
		if err != nil {
			return nil, err
		}
		msg, err := protocol.BuildMessage(res, plan, tc.K, 4)
		if err != nil {
			return nil, err
		}
		met, err := sess.Run(msg)
		if err != nil {
			return nil, err
		}
		out = append(out, met)
	}
	return out, nil
}

// meanOver computes the mean of a metric over messages, optionally
// skipping a warmup prefix.
func meanOver(ms []*protocol.Metrics, warmup int, f func(*protocol.Metrics) float64) float64 {
	var acc stats.Accumulator
	for i, m := range ms {
		if i < warmup {
			continue
		}
		acc.Add(f(m))
	}
	return acc.Mean()
}
