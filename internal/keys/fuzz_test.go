package keys

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWrapContext drives the cached-state wrap/unwrap context against
// the one-shot Wrap/Unwrap pair from fuzzer-chosen key material: the
// wrapped bytes must be identical, both unwrap paths must agree, and a
// flipped bit anywhere in the wrapped blob must yield ErrBadTag.
func FuzzWrapContext(f *testing.F) {
	f.Add([]byte("outer-seed-material"), []byte("inner-seed"), uint8(0))
	f.Add([]byte{}, []byte{0xff}, uint8(7))
	f.Add(bytes.Repeat([]byte{0x36}, 32), bytes.Repeat([]byte{0x5c}, 32), uint8(17))
	f.Fuzz(func(t *testing.T, outerRaw, innerRaw []byte, flip uint8) {
		var outer, inner Key
		copy(outer[:], outerRaw)
		copy(inner[:], innerRaw)

		ctx := NewWrapContext(outer)
		got := ctx.Wrap(inner)
		want := Wrap(outer, inner)
		if got != want {
			t.Fatalf("WrapContext.Wrap = %x, Wrap = %x", got, want)
		}

		fromCtx, errCtx := ctx.Unwrap(got)
		fromRef, errRef := Unwrap(outer, got)
		if errCtx != nil || errRef != nil {
			t.Fatalf("round-trip errors: ctx=%v ref=%v", errCtx, errRef)
		}
		if fromCtx != inner || fromRef != inner {
			t.Fatal("round trip did not recover the inner key")
		}

		// Corrupt one bit; both unwrap paths must reject it.
		c := got
		c[int(flip)%WrappedSize] ^= 1 << (flip % 8)
		if _, err := ctx.Unwrap(c); !errors.Is(err, ErrBadTag) {
			t.Fatalf("context accepted corrupted wrap: %v", err)
		}
		if _, err := Unwrap(outer, c); !errors.Is(err, ErrBadTag) {
			t.Fatalf("reference accepted corrupted wrap: %v", err)
		}
	})
}
