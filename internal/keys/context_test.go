package keys

import (
	"errors"
	"testing"
	"testing/quick"
)

// TestWrapContextMatchesWrap checks the cached-state context against the
// one-shot Wrap for many key pairs, including re-keying one context.
func TestWrapContextMatchesWrap(t *testing.T) {
	g := NewDeterministicGenerator(100)
	ctx := NewWrapContext(Key{})
	for i := 0; i < 200; i++ {
		outer, inner := g.MustNewKey(), g.MustNewKey()
		ctx.SetKey(outer)
		got := ctx.Wrap(inner)
		want := Wrap(outer, inner)
		if got != want {
			t.Fatalf("iteration %d: WrapContext.Wrap != Wrap", i)
		}
		var into [WrappedSize]byte
		ctx.WrapInto(&into, inner)
		if into != want {
			t.Fatalf("iteration %d: WrapInto != Wrap", i)
		}
	}
}

// TestWrapContextUnwrapRoundTrip checks context-based unwrapping against
// both context and one-shot wrapping.
func TestWrapContextUnwrapRoundTrip(t *testing.T) {
	g := NewDeterministicGenerator(101)
	for i := 0; i < 100; i++ {
		outer, inner := g.MustNewKey(), g.MustNewKey()
		ctx := NewUnwrapContext(outer)
		got, err := ctx.Unwrap(Wrap(outer, inner))
		if err != nil {
			t.Fatal(err)
		}
		if got != inner {
			t.Fatal("context unwrap did not recover the inner key")
		}
		if _, err := ctx.Unwrap(NewWrapContext(g.MustNewKey()).Wrap(inner)); !errors.Is(err, ErrBadTag) {
			t.Fatalf("unwrap under wrong key: err=%v, want ErrBadTag", err)
		}
	}
}

// TestWrapContextCorruptionDetected mirrors TestUnwrapCorruptionDetected
// on the context path.
func TestWrapContextCorruptionDetected(t *testing.T) {
	g := NewDeterministicGenerator(102)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	ctx := NewWrapContext(outer)
	w := ctx.Wrap(inner)
	for i := 0; i < WrappedSize; i++ {
		c := w
		c[i] ^= 0x01
		if _, err := ctx.Unwrap(c); !errors.Is(err, ErrBadTag) {
			t.Fatalf("corruption at byte %d undetected by context", i)
		}
	}
}

// TestQuickWrapContext cross-checks context wrap/unwrap against the
// one-shot functions over random keys.
func TestQuickWrapContext(t *testing.T) {
	ctx := NewWrapContext(Key{})
	f := func(outer, inner Key) bool {
		ctx.SetKey(outer)
		w := ctx.Wrap(inner)
		if w != Wrap(outer, inner) {
			return false
		}
		a, errA := ctx.Unwrap(w)
		b, errB := Unwrap(outer, w)
		return errA == nil && errB == nil && a == inner && b == inner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestNewKeysMatchesSequentialDraws is the batched-CSPRNG determinism
// contract: NewKeys(n) must consume the stream exactly as n NewKey
// calls do, so the parallel batch pipeline (bulk draws) emits the same
// keys as the sequential reference (per-key draws).
func TestNewKeysMatchesSequentialDraws(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000} {
		a := NewDeterministicGenerator(7)
		b := NewDeterministicGenerator(7)
		bulk, err := a.NewKeys(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if k := b.MustNewKey(); k != bulk[i] {
				t.Fatalf("n=%d: bulk key %d differs from sequential draw", n, i)
			}
		}
		// The streams must stay aligned after the bulk draw too.
		if a.MustNewKey() != b.MustNewKey() {
			t.Fatalf("n=%d: stream positions diverged after bulk draw", n)
		}
	}
}

// TestNewKeysProduction exercises the AES-CTR DRBG path: distinct
// non-zero keys across bulk draws and across the reseed boundary.
func TestNewKeysProduction(t *testing.T) {
	g := NewGenerator()
	seen := make(map[Key]bool)
	// 3*65536 keys would cross reseeds; keep it quick but cross one
	// refill by drawing more than reseedEvery/KeySize keys in chunks.
	total := reseedEvery/KeySize + 100
	for total > 0 {
		n := 4096
		if n > total {
			n = total
		}
		ks, err := g.NewKeys(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ks {
			if k.Zero() {
				t.Fatal("generated the reserved all-zero key")
			}
			if seen[k] {
				t.Fatal("duplicate key generated")
			}
			seen[k] = true
		}
		total -= n
	}
}

// TestNewKeysZeroAndNegative covers the degenerate sizes.
func TestNewKeysZeroAndNegative(t *testing.T) {
	g := NewDeterministicGenerator(9)
	for _, n := range []int{0, -3} {
		ks, err := g.NewKeys(n)
		if err != nil || ks != nil {
			t.Fatalf("NewKeys(%d) = %v, %v; want nil, nil", n, ks, err)
		}
	}
}
