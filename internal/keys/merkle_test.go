package keys

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand/v2"
	"testing"
)

func merkleLeaves(rng *rand.Rand, n int) []MerkleHash {
	leaves := make([]MerkleHash, n)
	for i := range leaves {
		var body [32]byte
		for j := range body {
			body[j] = byte(rng.Uint32())
		}
		leaves[i] = LeafHash(DomainENC, body[:])
	}
	return leaves
}

// refRoot recomputes the root by straightforward level reduction,
// independent of the MerkleTree structure.
func refRoot(level []MerkleHash) MerkleHash {
	for len(level) > 1 {
		var next []MerkleHash
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, nodeHash(&level[i], &level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

func TestMerkleProofsAllLeavesAllSizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 46, 47, 64, 100} {
		leaves := merkleLeaves(rng, n)
		tree := NewMerkleTree(leaves)
		if tree.NumLeaves() != n {
			t.Fatalf("NumLeaves = %d, want %d", tree.NumLeaves(), n)
		}
		if want := refRoot(leaves); tree.Root() != want {
			t.Fatalf("n=%d: root mismatch vs reference reduction", n)
		}
		for i := 0; i < n; i++ {
			proof := tree.AppendProof(nil, i)
			root, ok := VerifyMerkleProof(leaves[i], i, n, proof)
			if !ok || root != tree.Root() {
				t.Fatalf("n=%d leaf %d: proof did not verify (ok=%v)", n, i, ok)
			}
			// Tampered leaf must yield a different root.
			bad := leaves[i]
			bad[0] ^= 1
			root, ok = VerifyMerkleProof(bad, i, n, proof)
			if ok && root == tree.Root() {
				t.Fatalf("n=%d leaf %d: tampered leaf reproduced the root", n, i)
			}
			// Wrong position must not verify to the same root.
			if n > 1 {
				j := (i + 1) % n
				root, ok = VerifyMerkleProof(leaves[i], j, n, proof)
				if ok && root == tree.Root() {
					t.Fatalf("n=%d: leaf %d verified at position %d", n, i, j)
				}
			}
			// Truncated and extended proofs are rejected outright.
			if len(proof) > 0 {
				if _, ok := VerifyMerkleProof(leaves[i], i, n, proof[:len(proof)-1]); ok {
					t.Fatalf("n=%d leaf %d: truncated proof accepted", n, i)
				}
			}
			if _, ok := VerifyMerkleProof(leaves[i], i, n, append(append([]MerkleHash(nil), proof...), MerkleHash{})); ok {
				t.Fatalf("n=%d leaf %d: extended proof accepted", n, i)
			}
		}
	}
}

func TestMerkleProofLengthLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for _, n := range []int{1, 2, 46, 64, 1000, 4096} {
		tree := NewMerkleTree(merkleLeaves(rng, n))
		maxLen := 0
		for i := 0; i < n; i++ {
			if l := len(tree.AppendProof(nil, i)); l > maxLen {
				maxLen = l
			}
		}
		bound := 0
		for c := n; c > 1; c = (c + 1) / 2 {
			bound++
		}
		if maxLen > bound {
			t.Fatalf("n=%d: proof length %d exceeds ceil(log2) bound %d", n, maxLen, bound)
		}
	}
}

func TestLeafHashDomainSeparation(t *testing.T) {
	body := []byte("same bytes")
	if LeafHash(DomainENC, body) == LeafHash(DomainUSR, body) {
		t.Fatal("ENC and USR leaves collide on identical bodies")
	}
	// A leaf hash must differ from a plain hash of the same bytes and
	// from an interior node over them.
	plain := sha256.Sum256(body)
	if LeafHash(DomainENC, body) == plain {
		t.Fatal("leaf hash equals undomained SHA-256")
	}
}

func TestVerifyMerkleProofRejectsBadPositions(t *testing.T) {
	leaf := LeafHash(DomainENC, []byte("x"))
	if _, ok := VerifyMerkleProof(leaf, -1, 4, nil); ok {
		t.Fatal("negative index accepted")
	}
	if _, ok := VerifyMerkleProof(leaf, 4, 4, nil); ok {
		t.Fatal("index == numLeaves accepted")
	}
	if _, ok := VerifyMerkleProof(leaf, 0, 0, nil); ok {
		t.Fatal("zero-leaf tree accepted")
	}
	// Single-leaf tree: the leaf is the root, the proof is empty.
	root, ok := VerifyMerkleProof(leaf, 0, 1, nil)
	if !ok || root != leaf {
		t.Fatal("single-leaf proof failed")
	}
}

func TestRootVerifierCachesAcrossPackets(t *testing.T) {
	signer, err := NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	tree := NewMerkleTree(merkleLeaves(rng, 46))
	sig, err := signer.SignRoot(tree.Root())
	if err != nil {
		t.Fatal(err)
	}
	v := NewRootVerifier(signer.Public())
	cached, err := v.VerifyRoot(tree.Root(), sig)
	if err != nil || cached {
		t.Fatalf("first verify: cached=%v err=%v, want fresh success", cached, err)
	}
	for i := 0; i < 10; i++ {
		cached, err = v.VerifyRoot(tree.Root(), sig)
		if err != nil || !cached {
			t.Fatalf("repeat verify %d: cached=%v err=%v, want cache hit", i, cached, err)
		}
	}
	// A different root with the same signature must fail and stay
	// uncached.
	other := tree.Root()
	other[0] ^= 1
	if _, err := v.VerifyRoot(other, sig); err == nil {
		t.Fatal("forged root accepted")
	}
	if cached, _ := v.VerifyRoot(tree.Root(), sig); !cached {
		t.Fatal("genuine root evicted by failed verification")
	}
}

func TestRootVerifierCacheEviction(t *testing.T) {
	signer, err := NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	v := NewRootVerifier(signer.Public())
	roots := make([]MerkleHash, rootCacheSize+2)
	for i := range roots {
		roots[i] = LeafHash(DomainENC, []byte{byte(i)})
		sig, err := signer.SignRoot(roots[i])
		if err != nil {
			t.Fatal(err)
		}
		if cached, err := v.VerifyRoot(roots[i], sig); err != nil || cached {
			t.Fatalf("root %d: cached=%v err=%v", i, cached, err)
		}
	}
	// The oldest roots have been evicted; the newest are still cached.
	sigLast, _ := signer.SignRoot(roots[len(roots)-1])
	if cached, _ := v.VerifyRoot(roots[len(roots)-1], sigLast); !cached {
		t.Fatal("most recent root not cached")
	}
	sig0, _ := signer.SignRoot(roots[0])
	if cached, _ := v.VerifyRoot(roots[0], sig0); cached {
		t.Fatal("evicted root still reported cached")
	}
}

// FuzzVerifyMerkleProof throws arbitrary positions and mutated proofs
// at the verifier: it must never reproduce the genuine root except for
// the genuine (leaf, index, proof) triple.
func FuzzVerifyMerkleProof(f *testing.F) {
	f.Add(uint8(5), uint8(2), uint8(0), uint8(0))
	f.Add(uint8(46), uint8(0), uint8(1), uint8(7))
	f.Add(uint8(1), uint8(0), uint8(0xff), uint8(31))
	f.Fuzz(func(t *testing.T, nRaw, iRaw, flip, flipPos uint8) {
		n := int(nRaw%64) + 1
		i := int(iRaw) % n
		rng := rand.New(rand.NewPCG(uint64(nRaw), uint64(iRaw)))
		leaves := merkleLeaves(rng, n)
		tree := NewMerkleTree(leaves)
		proof := tree.AppendProof(nil, i)
		root, ok := VerifyMerkleProof(leaves[i], i, n, proof)
		if !ok || root != tree.Root() {
			t.Fatalf("genuine proof rejected (n=%d i=%d)", n, i)
		}
		if flip != 0 && len(proof) > 0 {
			k := int(flipPos) % len(proof)
			proof[k][int(flipPos)%HashSize] ^= flip
			root, ok = VerifyMerkleProof(leaves[i], i, n, proof)
			if ok && root == tree.Root() {
				t.Fatalf("mutated proof reproduced root (n=%d i=%d)", n, i)
			}
		}
	})
}

// BenchmarkMerkleVerify pins the O(log n) claim: per-packet verify
// cost grows by one hash per doubling, not linearly.
func BenchmarkMerkleVerify(b *testing.B) {
	rng := rand.New(rand.NewPCG(10, 10))
	for _, n := range []int{64, 4096} {
		leaves := merkleLeaves(rng, n)
		tree := NewMerkleTree(leaves)
		proof := tree.AppendProof(nil, n/2)
		root := tree.Root()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, ok := VerifyMerkleProof(leaves[n/2], n/2, n, proof)
				if !ok || got != root {
					b.Fatal("verify failed")
				}
			}
		})
	}
}

func BenchmarkMerkleBuild(b *testing.B) {
	// One leaf per ENC packet of a large interval, packet-sized bodies:
	// the server-side per-interval hashing cost.
	body := bytes.Repeat([]byte{0xa5}, 1027)
	for _, n := range []int{46, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			leaves := make([]MerkleHash, n)
			b.SetBytes(int64(n * len(body)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range leaves {
					leaves[j] = LeafHash(DomainENC, body)
				}
				tree := NewMerkleTree(leaves)
				_ = tree.Root()
			}
		})
	}
}

// BenchmarkSignRootVsPerPacket contrasts one root signature per
// interval against the sign-per-packet cost it replaces.
func BenchmarkSignRootVsPerPacket(b *testing.B) {
	signer, err := NewSigner(1024)
	if err != nil {
		b.Fatal(err)
	}
	body := bytes.Repeat([]byte{0x3c}, 1027)
	const pkts = 46
	b.Run("interval-merkle", func(b *testing.B) {
		leaves := make([]MerkleHash, pkts)
		for i := 0; i < b.N; i++ {
			for j := range leaves {
				leaves[j] = LeafHash(DomainENC, body)
			}
			tree := NewMerkleTree(leaves)
			if _, err := signer.SignRoot(tree.Root()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-packet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < pkts; j++ {
				if _, err := signer.Sign(body); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
