package keys

// Amortized interval authentication: instead of one RSA signature per
// packet (or per message part), the server builds a Merkle tree over
// the hashes of everything an interval sends, signs only the root, and
// lets every packet carry an O(log n) inclusion proof. A member checks
// the proof (a handful of SHA-256 compressions), recomputes the root,
// and pays the RSA verification once per interval -- the RootVerifier
// below caches roots whose signature already checked out.
//
// Hashing is domain-separated: leaves hash as H(0x00 || domain ||
// data) and interior nodes as H(0x01 || left || right), so a leaf can
// never be confused with a node and leaves of different packet kinds
// can never be confused with each other. Odd nodes at any level are
// promoted unchanged (no duplication), which keeps proofs minimal and
// makes the leaf count part of what a verifier must know -- proofs are
// checked against an explicit (index, numLeaves) position.

import (
	"crypto/rsa"
	"crypto/sha256"
	"sync"
)

// HashSize is the size of the Merkle tree's hashes (SHA-256).
const HashSize = sha256.Size

// MerkleHash is one node or leaf hash of an interval's Merkle tree.
type MerkleHash = [HashSize]byte

// Leaf-domain bytes: each packet kind hashes under its own domain so
// (for example) an ENC body can never stand in for a USR body.
const (
	DomainENC   = 0x01
	DomainUSR   = 0x02
	DomainBlock = 0x03 // block-subtree roots feeding the top tree
	DomainSlice = 0x04 // sharded path: one slice's canonical bytes
	DomainTop   = 0x05 // sharded path: the coordinator's top encryptions
)

// LeafHash hashes one leaf: H(0x00 || domain || data).
func LeafHash(domain byte, data []byte) MerkleHash {
	h := sha256.New()
	var pre [2]byte
	pre[0] = 0x00
	pre[1] = domain
	h.Write(pre[:])
	h.Write(data)
	var out MerkleHash
	h.Sum(out[:0])
	return out
}

// nodeHash hashes one interior node: H(0x01 || left || right).
func nodeHash(left, right *MerkleHash) MerkleHash {
	h := sha256.New()
	var pre [1]byte
	pre[0] = 0x01
	h.Write(pre[:])
	h.Write(left[:])
	h.Write(right[:])
	var out MerkleHash
	h.Sum(out[:0])
	return out
}

// MerkleTree is a binary hash tree over a fixed ordered leaf set. A
// lone node at the end of an odd-width level is promoted unchanged.
// The zero-leaf tree is not representable; callers always have at
// least one packet per interval.
type MerkleTree struct {
	// levels[0] is the leaf level; levels[len-1] has exactly one node,
	// the root.
	levels [][]MerkleHash
}

// NewMerkleTree builds the tree over the given leaf hashes. It panics
// on an empty leaf set. The leaves slice is copied.
func NewMerkleTree(leaves []MerkleHash) *MerkleTree {
	if len(leaves) == 0 {
		panic("keys: Merkle tree over zero leaves")
	}
	t := &MerkleTree{}
	level := append([]MerkleHash(nil), leaves...)
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]MerkleHash, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			next[i/2] = nodeHash(&level[i], &level[i+1])
		}
		if len(level)%2 == 1 {
			next[len(next)-1] = level[len(level)-1]
		}
		level = next
		t.levels = append(t.levels, level)
	}
	return t
}

// NumLeaves returns the leaf count the tree was built over.
func (t *MerkleTree) NumLeaves() int { return len(t.levels[0]) }

// Root returns the tree's root hash.
func (t *MerkleTree) Root() MerkleHash {
	return t.levels[len(t.levels)-1][0]
}

// AppendProof appends leaf i's inclusion proof (the sibling hash at
// each level where one exists, leaf level first) to dst and returns
// the extended slice. Proof length is at most ceil(log2(NumLeaves)).
func (t *MerkleTree) AppendProof(dst []MerkleHash, i int) []MerkleHash {
	if i < 0 || i >= t.NumLeaves() {
		panic("keys: Merkle proof index out of range")
	}
	for _, level := range t.levels[:len(t.levels)-1] {
		if sib := i ^ 1; sib < len(level) {
			dst = append(dst, level[sib])
		}
		i >>= 1
	}
	return dst
}

// VerifyMerkleProof recomputes the root implied by leaf sitting at
// position index of a numLeaves-leaf tree with the given sibling
// proof. ok is false when the proof length does not match the position
// (too short, too long, or an out-of-range index): a false proof never
// yields a usable root.
func VerifyMerkleProof(leaf MerkleHash, index, numLeaves int, proof []MerkleHash) (root MerkleHash, ok bool) {
	if index < 0 || index >= numLeaves || numLeaves < 1 {
		return MerkleHash{}, false
	}
	h := leaf
	p := 0
	for numLeaves > 1 {
		if sib := index ^ 1; sib < numLeaves {
			if p >= len(proof) {
				return MerkleHash{}, false
			}
			if index&1 == 0 {
				h = nodeHash(&h, &proof[p])
			} else {
				h = nodeHash(&proof[p], &h)
			}
			p++
		}
		index >>= 1
		numLeaves = (numLeaves + 1) / 2
	}
	if p != len(proof) {
		return MerkleHash{}, false
	}
	return h, true
}

// SignRoot signs a Merkle root: one RSA signature covering every
// packet of the interval.
func (s *Signer) SignRoot(root MerkleHash) ([]byte, error) {
	return s.Sign(root[:])
}

// VerifyRoot checks an interval root signature without caching.
func VerifyRoot(pub *rsa.PublicKey, root MerkleHash, sig []byte) error {
	return Verify(pub, root[:], sig)
}

// rootCacheSize bounds the RootVerifier's verified-root memory. Rekey
// message IDs wrap at 64, and a member only ever straddles a few
// intervals, so a handful of entries already gives a ~100% hit rate
// after the first packet of each interval.
const rootCacheSize = 8

// RootVerifier amortizes interval signature checks: the first packet
// of an interval pays the RSA verification of the signed root, every
// later packet whose proof recomputes the same root is a cache hit.
// It is safe for concurrent use.
type RootVerifier struct {
	pub *rsa.PublicKey

	mu sync.Mutex
	// cache is a tiny FIFO-evicted set of verified roots.
	cache [rootCacheSize]MerkleHash
	used  int
	next  int
}

// NewRootVerifier returns a verifier trusting the given public key.
func NewRootVerifier(pub *rsa.PublicKey) *RootVerifier {
	return &RootVerifier{pub: pub}
}

// Public returns the trusted public key.
func (v *RootVerifier) Public() *rsa.PublicKey { return v.pub }

// VerifyRoot checks sig over root, consulting and filling the verified
// cache. cached reports whether the RSA check was skipped.
func (v *RootVerifier) VerifyRoot(root MerkleHash, sig []byte) (cached bool, err error) {
	v.mu.Lock()
	for i := 0; i < v.used; i++ {
		if v.cache[i] == root {
			v.mu.Unlock()
			return true, nil
		}
	}
	v.mu.Unlock()
	if err := VerifyRoot(v.pub, root, sig); err != nil {
		return false, err
	}
	v.mu.Lock()
	v.cache[v.next] = root
	v.next = (v.next + 1) % rootCacheSize
	if v.used < rootCacheSize {
		v.used++
	}
	v.mu.Unlock()
	return false, nil
}
