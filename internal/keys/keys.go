// Package keys provides the cryptographic material used by the group
// key management system: 128-bit symmetric keys, the key-wrapping
// operation {k'}_k that produces the "encryptions" carried in rekey
// messages, and the digital signature the key server applies once per
// rekey message.
//
// The wrap format is a single AES-128 block (the wrapped key) followed
// by a 2-byte truncated HMAC-SHA256 tag, 18 bytes total. Together with
// the 4-byte key ID this gives the 22-byte encryption entry assumed by
// the packet format, which fits 46 encryptions in a 1027-byte ENC packet
// -- the constant the paper uses when bounding duplication overhead.
package keys

import (
	"crypto"
	"crypto/aes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// KeySize is the size in bytes of every group, auxiliary, and individual
// key managed by the system.
const KeySize = 16

// TagSize is the size of the truncated integrity tag appended to each
// wrapped key.
const TagSize = 2

// WrappedSize is the size of one wrapped key: ciphertext plus tag.
const WrappedSize = KeySize + TagSize

// Key is a 128-bit symmetric key.
type Key [KeySize]byte

// Zero reports whether the key is the all-zero value, which the system
// never generates and treats as "no key".
func (k Key) Zero() bool { return k == Key{} }

// String renders a short fingerprint, not the key bytes, so keys can be
// logged without disclosure.
func (k Key) String() string {
	sum := sha256.Sum256(k[:])
	return fmt.Sprintf("key(%x)", sum[:4])
}

// Generator produces fresh keys. The zero value is not usable; use
// NewGenerator or NewDeterministicGenerator.
type Generator struct {
	r io.Reader
}

// NewGenerator returns a Generator backed by crypto/rand.
func NewGenerator() *Generator { return &Generator{r: rand.Reader} }

// NewDeterministicGenerator returns a Generator whose output is a
// reproducible function of seed. Experiments and tests use it so runs
// are repeatable; production servers use NewGenerator.
func NewDeterministicGenerator(seed uint64) *Generator {
	return &Generator{r: &detReader{state: seed ^ 0x9e3779b97f4a7c15}}
}

// detReader is a splitmix64-based stream, adequate for repeatable tests
// (not for production key material).
type detReader struct {
	state uint64
	buf   [8]byte
	n     int
}

func (d *detReader) Read(p []byte) (int, error) {
	for i := range p {
		if d.n == 0 {
			d.state += 0x9e3779b97f4a7c15
			z := d.state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			binary.LittleEndian.PutUint64(d.buf[:], z)
			d.n = 8
		}
		p[i] = d.buf[8-d.n]
		d.n--
	}
	return len(p), nil
}

// NewKey returns a fresh key.
func (g *Generator) NewKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(g.r, k[:]); err != nil {
		return Key{}, fmt.Errorf("keys: generating key: %w", err)
	}
	if k.Zero() {
		k[0] = 1 // the all-zero key is reserved
	}
	return k, nil
}

// MustNewKey is NewKey for contexts (tests, deterministic experiments)
// where generation cannot fail.
func (g *Generator) MustNewKey() Key {
	k, err := g.NewKey()
	if err != nil {
		panic(err)
	}
	return k
}

// ErrBadTag is returned by Unwrap when the integrity tag does not match,
// i.e. the wrapping key is wrong or the ciphertext was corrupted.
var ErrBadTag = errors.New("keys: wrapped key integrity tag mismatch")

// Wrap encrypts the key inner under the key outer, producing the
// "encryption" {inner}_outer carried in ENC and USR packets.
func Wrap(outer, inner Key) [WrappedSize]byte {
	var out [WrappedSize]byte
	block, err := aes.NewCipher(outer[:])
	if err != nil {
		panic(err) // KeySize is a valid AES-128 key length
	}
	block.Encrypt(out[:KeySize], inner[:])
	mac := hmac.New(sha256.New, outer[:])
	mac.Write(out[:KeySize])
	copy(out[KeySize:], mac.Sum(nil)[:TagSize])
	return out
}

// Unwrap decrypts a wrapped key with the key outer, verifying the
// integrity tag first. A tag mismatch yields ErrBadTag.
func Unwrap(outer Key, wrapped [WrappedSize]byte) (Key, error) {
	mac := hmac.New(sha256.New, outer[:])
	mac.Write(wrapped[:KeySize])
	if !hmac.Equal(mac.Sum(nil)[:TagSize], wrapped[KeySize:]) {
		return Key{}, ErrBadTag
	}
	block, err := aes.NewCipher(outer[:])
	if err != nil {
		panic(err)
	}
	var k Key
	block.Decrypt(k[:], wrapped[:KeySize])
	return k, nil
}

// Signer signs rekey messages. Signing is the expensive per-message
// operation whose amortisation motivates periodic batch rekeying; the
// capacity analysis benchmarks it.
type Signer struct {
	priv *rsa.PrivateKey
}

// NewSigner generates an RSA key pair of the given bit length
// (1024 matches the paper's era; use >=2048 for modern deployments).
func NewSigner(bits int) (*Signer, error) {
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("keys: generating signing key: %w", err)
	}
	return &Signer{priv: priv}, nil
}

// Sign returns an RSA PKCS#1 v1.5 signature over SHA-256 of msg.
func (s *Signer) Sign(msg []byte) ([]byte, error) {
	sum := sha256.Sum256(msg)
	return rsa.SignPKCS1v15(rand.Reader, s.priv, crypto.SHA256, sum[:])
}

// Public returns the verification key.
func (s *Signer) Public() *rsa.PublicKey { return &s.priv.PublicKey }

// Verify checks an RSA PKCS#1 v1.5 signature produced by Sign.
func Verify(pub *rsa.PublicKey, msg, sig []byte) error {
	sum := sha256.Sum256(msg)
	return rsa.VerifyPKCS1v15(pub, crypto.SHA256, sum[:], sig)
}
