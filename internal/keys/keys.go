// Package keys provides the cryptographic material used by the group
// key management system: 128-bit symmetric keys, the key-wrapping
// operation {k'}_k that produces the "encryptions" carried in rekey
// messages, and the digital signature the key server applies once per
// rekey message.
//
// The wrap format is a single AES-128 block (the wrapped key) followed
// by a 2-byte truncated HMAC-SHA256 tag, 18 bytes total. Together with
// the 4-byte key ID this gives the 22-byte encryption entry assumed by
// the packet format, which fits 46 encryptions in a 1027-byte ENC packet
// -- the constant the paper uses when bounding duplication overhead.
package keys

import (
	"crypto"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
)

// KeySize is the size in bytes of every group, auxiliary, and individual
// key managed by the system.
const KeySize = 16

// TagSize is the size of the truncated integrity tag appended to each
// wrapped key.
const TagSize = 2

// WrappedSize is the size of one wrapped key: ciphertext plus tag.
const WrappedSize = KeySize + TagSize

// Key is a 128-bit symmetric key.
type Key [KeySize]byte

// Zero reports whether the key is the all-zero value, which the system
// never generates and treats as "no key". The check is constant-time:
// even a presence test on key bytes must not leak how many leading
// bytes are zero.
func (k Key) Zero() bool {
	var zero Key
	return subtle.ConstantTimeCompare(k[:], zero[:]) == 1
}

// Equal reports whether two keys hold the same bytes, in constant
// time. Use this (never ==, which short-circuits on the first
// differing word) wherever a comparison involves live key material.
func (k Key) Equal(other Key) bool {
	return subtle.ConstantTimeCompare(k[:], other[:]) == 1
}

// Wipe zeroes the key bytes in place, for retiring interval keys and
// scratch copies. The function is marked noinline so the stores
// target memory the compiler must treat as escaping through the
// receiver pointer; inlined into a caller whose key is about to die,
// dead-store elimination could otherwise delete the wipe.
//
//go:noinline
func (k *Key) Wipe() {
	for i := range k {
		k[i] = 0
	}
}

// String renders a short fingerprint, not the key bytes, so keys can be
// logged without disclosure.
//
//rekeylint:declassify SHA-256 fingerprint; preimage-resistant, key bytes never rendered
func (k Key) String() string {
	sum := sha256.Sum256(k[:])
	return fmt.Sprintf("key(%x)", sum[:4])
}

// Generator produces fresh keys. The zero value is not usable; use
// NewGenerator or NewDeterministicGenerator. A Generator is not safe
// for concurrent use; the key server serialises batches around it.
type Generator struct {
	r io.Reader
}

// NewGenerator returns a Generator backed by an AES-CTR DRBG that is
// seeded (and periodically reseeded) from crypto/rand. Batch rekeying
// draws O(L*log N) keys per interval; pulling each 16-byte key from
// crypto/rand individually prices every draw at a system call, while
// the DRBG amortises the entropy read over a megabyte of output.
func NewGenerator() *Generator { return &Generator{r: &ctrDRBG{}} }

// ctrDRBG is a deterministic random bit generator: an AES-128-CTR
// keystream whose key and IV come from crypto/rand, reseeded after
// reseedEvery bytes of output so no single keystream runs long. Read
// never fails once a seed has been obtained; seeding errors surface
// through NewKey's error return.
type ctrDRBG struct {
	stream    cipher.Stream
	remaining int
}

// reseedEvery is how much DRBG output one (key, IV) seed may produce
// before a fresh seed is drawn: 1 MiB, or 65536 keys.
const reseedEvery = 1 << 20

func (d *ctrDRBG) reseed() error {
	var seed [aes.BlockSize + KeySize]byte
	if _, err := io.ReadFull(rand.Reader, seed[:]); err != nil {
		return fmt.Errorf("keys: reseeding DRBG: %w", err)
	}
	block, err := aes.NewCipher(seed[:KeySize])
	if err != nil {
		return err
	}
	d.stream = cipher.NewCTR(block, seed[KeySize:])
	d.remaining = reseedEvery
	return nil
}

func (d *ctrDRBG) Read(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		if d.remaining == 0 {
			if err := d.reseed(); err != nil {
				return total - len(p), err
			}
		}
		n := len(p)
		if n > d.remaining {
			n = d.remaining
		}
		// CTR keystream: XOR into zeroed output.
		chunk := p[:n]
		for i := range chunk {
			chunk[i] = 0
		}
		d.stream.XORKeyStream(chunk, chunk)
		d.remaining -= n
		p = p[n:]
	}
	return total, nil
}

// NewDeterministicGenerator returns a Generator whose output is a
// reproducible function of seed. Experiments and tests use it so runs
// are repeatable; production servers use NewGenerator.
func NewDeterministicGenerator(seed uint64) *Generator {
	return &Generator{r: &detReader{state: seed ^ 0x9e3779b97f4a7c15}}
}

// detReader is a splitmix64-based stream, adequate for repeatable tests
// (not for production key material).
type detReader struct {
	state uint64
	buf   [8]byte
	n     int
}

func (d *detReader) next() uint64 {
	d.state += 0x9e3779b97f4a7c15
	z := d.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (d *detReader) Read(p []byte) (int, error) {
	i := 0
	// Bulk path for word-aligned stream positions: NewKeys draws
	// megabytes through here, and the byte stream must stay identical
	// to the byte-at-a-time path below.
	if d.n == 0 {
		for ; i+8 <= len(p); i += 8 {
			binary.LittleEndian.PutUint64(p[i:], d.next())
		}
	}
	for ; i < len(p); i++ {
		if d.n == 0 {
			binary.LittleEndian.PutUint64(d.buf[:], d.next())
			d.n = 8
		}
		p[i] = d.buf[8-d.n]
		d.n--
	}
	return len(p), nil
}

// NewKey returns a fresh key.
func (g *Generator) NewKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(g.r, k[:]); err != nil {
		return Key{}, fmt.Errorf("keys: generating key: %w", err)
	}
	if k.Zero() {
		k[0] = 1 // the all-zero key is reserved
	}
	return k, nil
}

// MustNewKey is NewKey for contexts (tests, deterministic experiments)
// where generation cannot fail.
func (g *Generator) MustNewKey() Key {
	k, err := g.NewKey()
	if err != nil {
		panic(err)
	}
	return k
}

// NewKeys returns n fresh keys drawn in one bulk read from the
// underlying stream. The keys are exactly the ones n successive NewKey
// calls would return (batch rekeying relies on this to stay
// byte-identical to the sequential reference path), but the stream is
// consumed in a single ReadFull instead of n small reads.
func (g *Generator) NewKeys(n int) ([]Key, error) {
	if n <= 0 {
		return nil, nil
	}
	buf := make([]byte, n*KeySize)
	if _, err := io.ReadFull(g.r, buf); err != nil {
		return nil, fmt.Errorf("keys: generating %d keys: %w", n, err)
	}
	out := make([]Key, n)
	for i := range out {
		copy(out[i][:], buf[i*KeySize:])
		if out[i].Zero() {
			out[i][0] = 1 // the all-zero key is reserved
		}
	}
	return out, nil
}

// ErrBadTag is returned by Unwrap when the integrity tag does not match,
// i.e. the wrapping key is wrong or the ciphertext was corrupted.
var ErrBadTag = errors.New("keys: wrapped key integrity tag mismatch")

// Wrap encrypts the key inner under the key outer, producing the
// "encryption" {inner}_outer carried in ENC and USR packets.
func Wrap(outer, inner Key) [WrappedSize]byte {
	var out [WrappedSize]byte
	block, err := aes.NewCipher(outer[:])
	if err != nil {
		panic(err) // KeySize is a valid AES-128 key length
	}
	block.Encrypt(out[:KeySize], inner[:])
	mac := hmac.New(sha256.New, outer[:])
	mac.Write(out[:KeySize])
	copy(out[KeySize:], mac.Sum(nil)[:TagSize])
	return out
}

// Unwrap decrypts a wrapped key with the key outer, verifying the
// integrity tag first. A tag mismatch yields ErrBadTag.
func Unwrap(outer Key, wrapped [WrappedSize]byte) (Key, error) {
	var sum [sha256.Size]byte
	mac := hmac.New(sha256.New, outer[:])
	mac.Write(wrapped[:KeySize])
	if !hmac.Equal(mac.Sum(sum[:0])[:TagSize], wrapped[KeySize:]) {
		return Key{}, ErrBadTag
	}
	block, err := aes.NewCipher(outer[:])
	if err != nil {
		panic(err)
	}
	var k Key
	block.Decrypt(k[:], wrapped[:KeySize])
	return k, nil
}

// hmacBlockSize is SHA-256's block length, the pad width of HMAC.
const hmacBlockSize = 64

// WrapContext performs the same {k'}_k operation as Wrap and Unwrap,
// but holds the per-outer-key state -- the AES cipher.Block and the
// HMAC-SHA256 pads plus one reusable SHA-256 digest -- so that a hot
// loop wrapping or unwrapping many keys reuses one context instead of
// rebuilding cipher and MAC objects per call. SetKey re-keys the
// context in place; WrapInto writes into a caller-supplied buffer. The
// bytes produced are exactly Wrap's. A context is not safe for
// concurrent use; the batch pipeline keeps one per worker.
type WrapContext struct {
	block      cipher.Block
	digest     hash.Hash // one SHA-256, reused for inner and outer pass
	ipad, opad [hmacBlockSize]byte
	sum        [sha256.Size]byte
	// in stages WrapInto's inner key: cipher.Block.Encrypt is an
	// interface call, so slicing a stack parameter into it forces the
	// parameter to escape (one 16-byte allocation per wrap); staging
	// through context storage keeps the hot path allocation-free.
	in Key
}

// NewWrapContext returns a context keyed for outer.
func NewWrapContext(outer Key) *WrapContext {
	w := &WrapContext{digest: sha256.New()}
	w.SetKey(outer)
	return w
}

// SetKey re-keys the context for a new outer key, reusing the digest
// and pad storage (the only allocation is the AES key schedule).
func (w *WrapContext) SetKey(outer Key) {
	block, err := aes.NewCipher(outer[:])
	if err != nil {
		panic(err) // KeySize is a valid AES-128 key length
	}
	w.block = block
	for i := range w.ipad {
		w.ipad[i], w.opad[i] = 0x36, 0x5c
	}
	for i, b := range outer {
		w.ipad[i] ^= b
		w.opad[i] ^= b
	}
}

// tag computes the truncated HMAC-SHA256 tag over ct into w.sum[:TagSize].
// HMAC(K, m) = H(opad || H(ipad || m)); the key is shorter than the
// block size, so the pads are the zero-padded key XOR constants.
//
//rekeylint:hotpath
func (w *WrapContext) tag(ct []byte) {
	d := w.digest
	d.Reset()
	d.Write(w.ipad[:])
	d.Write(ct)
	inner := d.Sum(w.sum[:0])
	d.Reset()
	d.Write(w.opad[:])
	d.Write(inner)
	d.Sum(w.sum[:0])
}

// WrapInto encrypts inner under the context's key into out,
// allocation-free. The bytes are identical to Wrap's.
//
//rekeylint:hotpath
func (w *WrapContext) WrapInto(out *[WrappedSize]byte, inner Key) {
	w.in = inner
	w.block.Encrypt(out[:KeySize], w.in[:])
	w.tag(out[:KeySize])
	copy(out[KeySize:], w.sum[:TagSize])
}

// Wrap is WrapInto returning the wrapped key by value.
func (w *WrapContext) Wrap(inner Key) [WrappedSize]byte {
	var out [WrappedSize]byte
	w.WrapInto(&out, inner)
	return out
}

// Unwrap decrypts a wrapped key with the context's key, verifying the
// truncated tag first. A tag mismatch yields ErrBadTag. Results are
// identical to the package-level Unwrap.
func (w *WrapContext) Unwrap(wrapped [WrappedSize]byte) (Key, error) {
	w.tag(wrapped[:KeySize])
	if !hmac.Equal(w.sum[:TagSize], wrapped[KeySize:]) {
		return Key{}, ErrBadTag
	}
	var k Key
	w.block.Decrypt(k[:], wrapped[:KeySize])
	return k, nil
}

// UnwrapContext is the member-side name for the same cached-cipher
// context: the ingest path re-keys one context per path edge instead
// of building a fresh HMAC and cipher per unwrap.
type UnwrapContext = WrapContext

// NewUnwrapContext returns a context keyed for outer.
func NewUnwrapContext(outer Key) *UnwrapContext { return NewWrapContext(outer) }

// Signer signs rekey messages. Signing is the expensive per-message
// operation whose amortisation motivates periodic batch rekeying; the
// capacity analysis benchmarks it.
type Signer struct {
	priv *rsa.PrivateKey
}

// NewSigner generates an RSA key pair of the given bit length
// (1024 matches the paper's era; use >=2048 for modern deployments).
func NewSigner(bits int) (*Signer, error) {
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("keys: generating signing key: %w", err)
	}
	return &Signer{priv: priv}, nil
}

// Sign returns an RSA PKCS#1 v1.5 signature over SHA-256 of msg.
func (s *Signer) Sign(msg []byte) ([]byte, error) {
	sum := sha256.Sum256(msg)
	return rsa.SignPKCS1v15(rand.Reader, s.priv, crypto.SHA256, sum[:])
}

// Public returns the verification key.
func (s *Signer) Public() *rsa.PublicKey { return &s.priv.PublicKey }

// Verify checks an RSA PKCS#1 v1.5 signature produced by Sign.
func Verify(pub *rsa.PublicKey, msg, sig []byte) error {
	sum := sha256.Sum256(msg)
	return rsa.VerifyPKCS1v15(pub, crypto.SHA256, sum[:], sig)
}
