package keys

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestDeterministicGeneratorRepeatable(t *testing.T) {
	a := NewDeterministicGenerator(42)
	b := NewDeterministicGenerator(42)
	for i := 0; i < 10; i++ {
		ka, kb := a.MustNewKey(), b.MustNewKey()
		if ka != kb {
			t.Fatalf("key %d differs between identically-seeded generators", i)
		}
	}
}

func TestDeterministicGeneratorSeedsDiffer(t *testing.T) {
	a := NewDeterministicGenerator(1).MustNewKey()
	b := NewDeterministicGenerator(2).MustNewKey()
	if a == b {
		t.Fatal("different seeds produced identical first key")
	}
}

func TestGeneratorProducesDistinctNonZeroKeys(t *testing.T) {
	g := NewGenerator()
	seen := make(map[Key]bool)
	for i := 0; i < 100; i++ {
		k := g.MustNewKey()
		if k.Zero() {
			t.Fatal("generated the reserved all-zero key")
		}
		if seen[k] {
			t.Fatal("duplicate key generated")
		}
		seen[k] = true
	}
}

func TestWrapUnwrapRoundTrip(t *testing.T) {
	g := NewDeterministicGenerator(7)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	w := Wrap(outer, inner)
	got, err := Unwrap(outer, w)
	if err != nil {
		t.Fatal(err)
	}
	if got != inner {
		t.Fatal("unwrap did not recover the inner key")
	}
}

func TestUnwrapWrongKeyFails(t *testing.T) {
	g := NewDeterministicGenerator(8)
	outer, inner, wrong := g.MustNewKey(), g.MustNewKey(), g.MustNewKey()
	w := Wrap(outer, inner)
	if _, err := Unwrap(wrong, w); !errors.Is(err, ErrBadTag) {
		t.Fatalf("unwrap with wrong key: err=%v, want ErrBadTag", err)
	}
}

func TestUnwrapCorruptionDetected(t *testing.T) {
	g := NewDeterministicGenerator(9)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	w := Wrap(outer, inner)
	for i := 0; i < WrappedSize; i++ {
		c := w
		c[i] ^= 0x80
		if _, err := Unwrap(outer, c); !errors.Is(err, ErrBadTag) {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}

func TestWrapDeterministic(t *testing.T) {
	g := NewDeterministicGenerator(10)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	if Wrap(outer, inner) != Wrap(outer, inner) {
		t.Fatal("Wrap is not deterministic for fixed keys")
	}
}

func TestQuickWrapUnwrap(t *testing.T) {
	f := func(outer, inner Key) bool {
		got, err := Unwrap(outer, Wrap(outer, inner))
		return err == nil && got == inner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKeyStringDoesNotLeak(t *testing.T) {
	k := NewDeterministicGenerator(11).MustNewKey()
	s := k.String()
	if bytes.Contains([]byte(s), k[:4]) {
		t.Fatal("String appears to contain raw key bytes")
	}
}

func TestSignVerify(t *testing.T) {
	s, err := NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("rekey message 12")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s.Public(), msg, sig); err != nil {
		t.Fatalf("verify failed: %v", err)
	}
	if err := Verify(s.Public(), []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message verified")
	}
}

func BenchmarkWrap(b *testing.B) {
	g := NewDeterministicGenerator(12)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Wrap(outer, inner)
	}
}

func BenchmarkUnwrap(b *testing.B) {
	g := NewDeterministicGenerator(13)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	w := Wrap(outer, inner)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unwrap(outer, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSign measures the per-rekey-message signing cost, the term
// the key-server capacity analysis amortises via batch rekeying.
func BenchmarkSign(b *testing.B) {
	s, err := NewSigner(1024)
	if err != nil {
		b.Fatal(err)
	}
	msg := bytes.Repeat([]byte{0xab}, 1027)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKeyEqualZeroWipe(t *testing.T) {
	g := NewDeterministicGenerator(7)
	a := g.MustNewKey()
	b := a
	if !a.Equal(b) {
		t.Fatal("identical keys compare unequal")
	}
	b[len(b)-1] ^= 1
	if a.Equal(b) {
		t.Fatal("keys differing in one bit compare equal")
	}
	if a.Zero() {
		t.Fatal("generated key reports Zero")
	}
	a.Wipe()
	if !a.Zero() {
		t.Fatalf("wiped key is not zero: %v", a)
	}
	var z Key
	if !a.Equal(z) {
		t.Fatal("wiped key does not equal the zero key")
	}
}
