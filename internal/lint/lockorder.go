package lint

// lockorder: deadlock prevention by construction. Every sync.Mutex /
// sync.RWMutex field in the module is a *lock class* named after its
// declaration site (shard.Shard.mu, obs.Registry.trace.mu); this
// analyzer scans each function for acquisitions performed while other
// classes are held -- directly, or transitively through statically
// resolved calls -- and builds the module's lock-acquisition graph.
// Two properties are enforced:
//
//  1. The graph is acyclic. Any cycle (including a class acquired
//     while an instance of the same class is held) is reported: class
//     level acquisition cycles are exactly the shapes that deadlock
//     under the wrong interleaving.
//
//  2. Edges between *ranked* classes respect the canonical order
//     pinned in lockRanks (documented in DESIGN.md). The canonical
//     order is stricter than mere acyclicity: it stops two
//     independently-acyclic patches from composing into a cycle
//     later, because each would have failed the rank check alone.
//
// The analysis is conservative and class-level. It tracks held sets
// through straight-line code, clones them at branch boundaries (a
// conditionally-acquired lock never leaks into the fallthrough path),
// treats `defer mu.Unlock()` as held-to-end, and scans function
// literals with an empty held set of their own. Calls through
// interfaces and closure-typed variables are invisible to the call
// graph (callgraph.go); the race detector and the adversarial churn
// harness cover that dynamic remainder.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// LockOrder enforces an acyclic, canonically-ranked lock-acquisition
// order across the module.
var LockOrder = &ModuleAnalyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition must follow the canonical lock-order DAG (no cycles, ranked edges in order)",
	Run:  runLockOrder,
}

// lockRanks pins the canonical acquisition order of the repository's
// lock classes: an edge (held -> acquired) between two ranked classes
// must go strictly rank-upward. Unranked classes (fixtures, future
// code) are still covered by cycle detection. Keep this table in sync
// with the "Canonical lock order" section of DESIGN.md.
var lockRanks = map[string]int{
	"keyserverd.daemon.mu":  10,
	"rekey.Server.mu":       20,
	"udptrans.Server.mu":    30,
	"udptrans.Client.mu":    40,
	"shard.Coordinator.mu":  50,
	"shard.Shard.mu":        60,
	"rekey.Member.mu":       70,
	"rekey.RekeyMessage.mu": 80,
	"keys.RootVerifier.mu":  90,
	"fec.invCache.mu":       100,
	"obs.Registry.trace.mu": 110,
}

// lockOrderDebug, when set (by tests), receives every edge of the
// acquisition graph as it is recorded.
var lockOrderDebug func(from, to, via string, pos token.Position)

// A lockEdge is one observed acquisition: `to` acquired while `from`
// was held, at pos; via names the intermediate callee for edges found
// through the call graph ("" for direct acquisitions).
type lockEdge struct {
	from, to *types.Var
	pos      token.Position
	via      string
	inTarget bool
}

type lockOrderState struct {
	mp *ModulePass
	// class maps each mutex field/var object to its display name.
	class map[*types.Var]string

	// direct[f] is the set of classes f's body acquires directly.
	direct map[*types.Func]map[*types.Var]bool
	// calls records every statically-resolved call made while at
	// least one class was held.
	calls []heldCall
	edges map[[2]*types.Var]*lockEdge
}

type heldCall struct {
	callee   *types.Func
	held     []*types.Var
	pos      token.Position
	inTarget bool
}

func runLockOrder(mp *ModulePass) error {
	st := &lockOrderState{
		mp:     mp,
		class:  make(map[*types.Var]string),
		direct: make(map[*types.Func]map[*types.Var]bool),
		edges:  make(map[[2]*types.Var]*lockEdge),
	}
	st.collectClasses()
	for _, pkg := range mp.All {
		for _, f := range pkg.Files {
			if IsTestFilename(mp.Fset.Position(f.Pos()).Filename) {
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
				st.scanBody(pkg, obj, fn.Body, nil)
			}
		}
	}
	st.closeOverCalls()
	st.report()
	return nil
}

// collectClasses names every sync.Mutex / sync.RWMutex declared by the
// module: struct fields (walking nested anonymous structs, so the obs
// registry's trace.mu gets its qualified name) and package-level vars.
func (st *lockOrderState) collectClasses() {
	for _, pkg := range st.mp.All {
		display := pkg.Pkg.Name()
		if display == "main" {
			display = path.Base(strings.TrimSuffix(pkg.Path, ".test"))
		}
		display = strings.TrimSuffix(display, "_test")
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if IsTestFilename(st.mp.Fset.Position(obj.Pos()).Filename) {
				continue
			}
			switch o := obj.(type) {
			case *types.TypeName:
				if s, ok := o.Type().Underlying().(*types.Struct); ok {
					st.walkStruct(s, display+"."+o.Name())
				}
			case *types.Var:
				if isMutexType(o.Type()) {
					st.class[o] = display + "." + o.Name()
				}
			}
		}
	}
}

func (st *lockOrderState) walkStruct(s *types.Struct, prefix string) {
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		ft := types.Unalias(f.Type())
		if isMutexType(ft) {
			st.class[f] = prefix + "." + f.Name()
			continue
		}
		// Descend into anonymous struct fields only; named struct
		// fields are classed under their own type's name.
		if inner, ok := ft.(*types.Struct); ok {
			st.walkStruct(inner, prefix+"."+f.Name())
		}
	}
}

func isMutexType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// --- per-function scan ---

// scanBody walks one function body (or function literal) with a
// mutable held set, recording direct acquisitions, acquisition edges
// and held calls. fn is nil for function literals: their acquisitions
// make edges but do not join any function's acquires-set (a literal
// often runs on its own goroutine, where the enclosing function's
// locks are not held).
func (st *lockOrderState) scanBody(pkg *Package, fn *types.Func, body *ast.BlockStmt, held []*types.Var) {
	inTarget := st.mp.Targets[pkg]
	var walkStmt func(s ast.Stmt, held *[]*types.Var)
	var walkExpr func(e ast.Expr, held *[]*types.Var)

	acquire := func(v *types.Var, pos token.Pos, held *[]*types.Var) {
		for _, h := range *held {
			st.addEdge(h, v, st.mp.Fset.Position(pos), "", inTarget)
		}
		*held = append(*held, v)
		if fn != nil {
			set := st.direct[fn]
			if set == nil {
				set = make(map[*types.Var]bool)
				st.direct[fn] = set
			}
			set[v] = true
		}
	}
	release := func(v *types.Var, held *[]*types.Var) {
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i] == v {
				*held = append((*held)[:i], (*held)[i+1:]...)
				return
			}
		}
	}
	handleCall := func(call *ast.CallExpr, held *[]*types.Var) {
		if v, op := st.lockOp(pkg.Info, call); v != nil {
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock":
				acquire(v, call.Pos(), held)
			case "Unlock", "RUnlock":
				release(v, held)
			}
			return
		}
		if len(*held) == 0 {
			return
		}
		if callee := CalleeOf(pkg.Info, call); callee != nil {
			st.calls = append(st.calls, heldCall{
				callee:   callee,
				held:     append([]*types.Var(nil), *held...),
				pos:      st.mp.Fset.Position(call.Pos()),
				inTarget: inTarget,
			})
		}
	}

	walkExpr = func(e ast.Expr, held *[]*types.Var) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				st.scanBody(pkg, nil, x.Body, nil)
				return false
			case *ast.CallExpr:
				// Visit arguments first (inner calls complete before
				// the outer call runs), then the call itself.
				for _, a := range x.Args {
					walkExpr(a, held)
				}
				walkExpr(x.Fun, held)
				handleCall(x, held)
				return false
			}
			return true
		})
	}

	clone := func(held []*types.Var) []*types.Var {
		return append([]*types.Var(nil), held...)
	}

	walkStmt = func(s ast.Stmt, held *[]*types.Var) {
		switch x := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, sub := range x.List {
				walkStmt(sub, held)
			}
		case *ast.IfStmt:
			walkStmt(x.Init, held)
			walkExpr(x.Cond, held)
			branch := clone(*held)
			walkStmt(x.Body, &branch)
			if x.Else != nil {
				branch = clone(*held)
				walkStmt(x.Else, &branch)
			}
		case *ast.ForStmt:
			walkStmt(x.Init, held)
			walkExpr(x.Cond, held)
			branch := clone(*held)
			walkStmt(x.Body, &branch)
			walkStmt(x.Post, &branch)
		case *ast.RangeStmt:
			walkExpr(x.X, held)
			branch := clone(*held)
			walkStmt(x.Body, &branch)
		case *ast.SwitchStmt:
			walkStmt(x.Init, held)
			walkExpr(x.Tag, held)
			for _, c := range x.Body.List {
				branch := clone(*held)
				walkStmt(c, &branch)
			}
		case *ast.TypeSwitchStmt:
			walkStmt(x.Init, held)
			walkStmt(x.Assign, held)
			for _, c := range x.Body.List {
				branch := clone(*held)
				walkStmt(c, &branch)
			}
		case *ast.CaseClause:
			for _, e := range x.List {
				walkExpr(e, held)
			}
			for _, sub := range x.Body {
				walkStmt(sub, held)
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				branch := clone(*held)
				walkStmt(c, &branch)
			}
		case *ast.CommClause:
			walkStmt(x.Comm, held)
			for _, sub := range x.Body {
				walkStmt(sub, held)
			}
		case *ast.LabeledStmt:
			walkStmt(x.Stmt, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps mu held to function end -- the
			// model's default, so nothing to do; any other deferred
			// call runs while the still-held classes are held.
			if v, op := st.lockOp(pkg.Info, x.Call); v != nil && (op == "Unlock" || op == "RUnlock") {
				return
			}
			walkExpr(x.Call, held)
		case *ast.GoStmt:
			// The goroutine does not inherit the held set; a literal
			// is scanned fresh, arguments are evaluated here.
			for _, a := range x.Call.Args {
				walkExpr(a, held)
			}
			if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				st.scanBody(pkg, nil, lit.Body, nil)
			}
		default:
			// Leaf statements (assign, expr, return, send, incdec,
			// decl...): process contained calls in order.
			ast.Inspect(s, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					walkExpr(e, held)
					return false
				}
				return true
			})
		}
	}

	h := held
	walkStmt(body, &h)
}

// lockOp reports whether call is a Lock/Unlock-family method call on a
// classed mutex, returning the mutex object and the method name.
func (st *lockOrderState) lockOp(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	var v *types.Var
	switch x := unparen(sel.X).(type) {
	case *ast.Ident:
		v, _ = info.Uses[x].(*types.Var)
	case *ast.SelectorExpr:
		v, _ = info.Uses[x.Sel].(*types.Var)
	case *ast.UnaryExpr:
		if inner, ok := unparen(x.X).(*ast.SelectorExpr); ok && x.Op == token.AND {
			v, _ = info.Uses[inner.Sel].(*types.Var)
		}
	}
	if v == nil || st.class[v] == "" {
		return nil, ""
	}
	return v, op
}

func (st *lockOrderState) addEdge(from, to *types.Var, pos token.Position, via string, inTarget bool) {
	key := [2]*types.Var{from, to}
	if e := st.edges[key]; e != nil {
		// Keep the first direct sighting; upgrade via-edges to direct.
		if e.via != "" && via == "" {
			e.pos, e.via, e.inTarget = pos, via, inTarget
		}
		return
	}
	st.edges[key] = &lockEdge{from: from, to: to, pos: pos, via: via, inTarget: inTarget}
	if lockOrderDebug != nil {
		lockOrderDebug(st.class[from], st.class[to], via, pos)
	}
}

// closeOverCalls computes each function's transitive acquires-set over
// the call graph and converts every held call into edges from the held
// classes to everything the callee (transitively) acquires.
func (st *lockOrderState) closeOverCalls() {
	acq := make(map[*types.Func]map[*types.Var]bool, len(st.direct))
	for fn, set := range st.direct {
		cp := make(map[*types.Var]bool, len(set))
		for v := range set {
			cp[v] = true
		}
		acq[fn] = cp
	}
	for changed := true; changed; {
		changed = false
		for fn := range st.mp.Graph.Nodes {
			for _, callee := range st.mp.Graph.Calls[fn] {
				for v := range acq[callee] {
					set := acq[fn]
					if set == nil {
						set = make(map[*types.Var]bool)
						acq[fn] = set
					}
					if !set[v] {
						set[v] = true
						changed = true
					}
				}
			}
		}
	}
	for _, hc := range st.calls {
		for v := range acq[hc.callee] {
			for _, h := range hc.held {
				st.addEdge(h, v, hc.pos, hc.callee.Name(), hc.inTarget)
			}
		}
	}
}

// report checks the accumulated graph: self-edges, cycles, then rank
// order on the remaining edges.
func (st *lockOrderState) report() {
	edges := make([]*lockEdge, 0, len(st.edges))
	for _, e := range st.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return st.class[a.to] < st.class[b.to]
	})

	succ := make(map[*types.Var][]*types.Var)
	for _, e := range edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	inCycle := st.cyclicNodes(succ)

	reportedCycle := make(map[string]bool)
	for _, e := range edges {
		if !e.inTarget {
			continue
		}
		suffix := ""
		if e.via != "" {
			suffix = fmt.Sprintf(" (via call to %s)", e.via)
		}
		if e.from == e.to {
			st.mp.ReportAt(e.pos, "lock class %s acquired while an instance of %s is already held%s; instance order is not statically checkable -- restructure to release first",
				st.class[e.to], st.class[e.from], suffix)
			continue
		}
		if inCycle[e.from] && inCycle[e.to] {
			cyc := st.cyclePath(succ, e.from, e.to)
			if !reportedCycle[cyc] {
				reportedCycle[cyc] = true
				st.mp.ReportAt(e.pos, "lock-order cycle: %s%s; see the canonical lock order in DESIGN.md", cyc, suffix)
			}
			continue
		}
		rf, okf := lockRanks[st.class[e.from]]
		rt, okt := lockRanks[st.class[e.to]]
		if okf && okt && rf >= rt {
			st.mp.ReportAt(e.pos, "acquires %s while holding %s%s, violating the canonical lock order (%s ranks before %s; see DESIGN.md)",
				st.class[e.to], st.class[e.from], suffix, st.class[e.to], st.class[e.from])
		}
	}
}

// cyclicNodes returns the classes that sit on some acquisition cycle
// (members of a strongly connected component of size > 1, or with a
// self-loop -- self-loops are reported separately).
func (st *lockOrderState) cyclicNodes(succ map[*types.Var][]*types.Var) map[*types.Var]bool {
	// Tarjan's SCC, iterative enough for our graph sizes via recursion.
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	var stack []*types.Var
	next := 0
	out := make(map[*types.Var]bool)
	var strong func(v *types.Var)
	strong = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					out[w] = true
				}
			}
		}
	}
	for v := range succ {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}

// cyclePath renders a cycle through the edge from->to as a stable
// "A -> B -> ... -> A" string, for reporting and deduplication.
func (st *lockOrderState) cyclePath(succ map[*types.Var][]*types.Var, from, to *types.Var) string {
	// BFS from `to` back to `from`; the edge from->to closes the loop.
	prev := map[*types.Var]*types.Var{to: nil}
	queue := []*types.Var{to}
	for len(queue) > 0 && prev[from] == nil && from != to {
		v := queue[0]
		queue = queue[1:]
		ws := append([]*types.Var(nil), succ[v]...)
		sort.Slice(ws, func(i, j int) bool { return st.class[ws[i]] < st.class[ws[j]] })
		for _, w := range ws {
			if _, seen := prev[w]; !seen {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	var names []string
	for v := from; v != nil; v = prev[v] {
		names = append(names, st.class[v])
		if v == to {
			break
		}
	}
	// names is from..to along reversed prev pointers; rebuild as
	// from -> to -> ... -> from.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	ordered := append([]string{st.class[from]}, names...)
	ordered = append(ordered, st.class[from])
	// Dedup immediate repeats introduced by the reconstruction.
	var parts []string
	for _, n := range ordered {
		if len(parts) == 0 || parts[len(parts)-1] != n {
			parts = append(parts, n)
		}
	}
	return strings.Join(parts, " -> ")
}
