package lint

// obsnil: the nil-registry invariant from the PR-2 observability layer.
// Every method on *obs.Registry is documented safe on a nil receiver --
// that is what lets unobserved pipelines pay only a nil check. The
// contract has two sides: inside the obs package, any registry method
// that touches receiver state must open with the `if r == nil` guard
// (or touch no fields at all, like the HTTP handler constructors);
// outside it, callers must not dereference or copy a possibly-nil
// registry value -- they go through methods, which are nil-safe.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsNil enforces the nil-receiver discipline of obs registry types.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "obs registry methods start with the nil-receiver guard; callers never dereference a possibly-nil registry",
	Run:  runObsNil,
}

// obsPkgSuffix identifies the registry's home package (fixtures load
// under a synthetic path with the same suffix).
const obsPkgSuffix = "internal/obs"

// isRegistryType reports whether t (after stripping pointers) is a
// registry type declared in an obs package.
func isRegistryType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return strings.HasSuffix(obj.Name(), "Registry") && strings.HasSuffix(pkgPathOf(obj), obsPkgSuffix)
}

func runObsNil(pass *Pass) error {
	inObs := strings.HasSuffix(pass.Path, obsPkgSuffix)
	for _, f := range pass.Files {
		if inObs {
			checkRegistryMethods(pass, f)
		}
		checkRegistryCallers(pass, f, inObs)
	}
	return nil
}

// checkRegistryMethods verifies the guard inside the obs package.
func checkRegistryMethods(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
			continue
		}
		recvField := fn.Recv.List[0]
		if len(recvField.Names) == 0 {
			continue // unnamed receiver cannot be dereferenced
		}
		recvIdent := recvField.Names[0]
		recvObj := pass.Info.Defs[recvIdent]
		if recvObj == nil || !isRegistryType(recvObj.Type()) {
			continue
		}
		if _, isPtr := recvObj.Type().(*types.Pointer); !isPtr {
			pass.Reportf(fn.Pos(), "method %s on registry value receiver; use a pointer receiver so the nil-registry contract holds", fn.Name.Name)
			continue
		}
		if !methodTouchesReceiverFields(pass, fn, recvObj) {
			continue // forwarding methods (Inc, handler constructors) are nil-safe through their callees
		}
		if !startsWithNilGuard(pass, fn.Body, recvObj) {
			pass.Reportf(fn.Pos(), "registry method %s touches receiver fields without the leading `if %s == nil` guard", fn.Name.Name, recvIdent.Name)
		}
	}
}

// methodTouchesReceiverFields reports whether any selector chain rooted
// at the receiver reaches a struct field (method calls are fine: each
// callee re-checks nil).
func methodTouchesReceiverFields(pass *Pass, fn *ast.FuncDecl, recvObj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if root := chainRoot(sel.X); root != nil && pass.Info.Uses[root] == recvObj {
			found = true
			return false
		}
		return true
	})
	return found
}

// startsWithNilGuard reports whether the body's first statement is
// `if recv == nil { ... return ... }`.
func startsWithNilGuard(pass *Pass, body *ast.BlockStmt, recvObj types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && pass.Info.Uses[id] == recvObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(isRecv(bin.X) && isNil(bin.Y) || isNil(bin.X) && isRecv(bin.Y)) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// checkRegistryCallers flags dereferences and field selections on
// possibly-nil registry values outside the obs package.
func checkRegistryCallers(pass *Pass, f *ast.File, inObs bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.StarExpr:
			// *reg copies the struct through a possibly-nil pointer.
			// Distinguish expression deref from the type *Registry.
			if tv, ok := pass.Info.Types[x.X]; ok && !tv.IsType() && isRegistryType(tv.Type) {
				if _, isPtr := tv.Type.(*types.Pointer); isPtr {
					pass.Reportf(x.Pos(), "dereference of possibly-nil registry; registries are passed as pointers and used via methods")
				}
			}
		case *ast.SelectorExpr:
			if inObs {
				return true // methods legitimately touch fields after their guard
			}
			selection, ok := pass.Info.Selections[x]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if tv, ok := pass.Info.Types[x.X]; ok && isRegistryType(tv.Type) {
				pass.Reportf(x.Pos(), "field access on possibly-nil registry; use registry methods, which are nil-safe")
			}
		}
		return true
	})
}
