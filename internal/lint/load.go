package lint

// This file is rekeylint's package loader: a module-aware wrapper over
// go/build (file selection, build tags), go/parser and go/types that
// type-checks packages of this module without golang.org/x/tools. The
// container this repo builds in has no module proxy access, so standard
// library dependencies are type-checked from GOROOT source via
// go/importer's "source" mode -- one shared, lazily-seeded importer for
// the whole process -- and module-internal imports are resolved
// recursively by the loader itself.

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was loaded under. External
	// test packages ("package foo_test" files) load as Path+".test".
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Loader loads and type-checks packages of one module.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string
	// Overrides maps an import path to a directory, letting fixtures
	// masquerade as key-path packages (e.g. repro/internal/obs).
	Overrides map[string]string
	// IncludeTests adds in-package _test.go files to each package and
	// loads external test packages alongside.
	IncludeTests bool

	// Order lists every module package this loader has type-checked, in
	// completion order -- imports finish before their importers, so the
	// slice is topologically sorted dependencies-first. Module analyses
	// (keyflow's facts layer, the lockorder call graph) walk it to see
	// the whole module at once with per-package facts already computed.
	Order []*Package

	ctxt    build.Context
	pkgs    map[string]*Package
	loading map[string]bool
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("lint: no go.mod found above working directory")
		}
		dir = parent
	}
}

// modulePath reads the module path from go.mod.
func modulePath(modRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", modRoot)
}

// NewLoader returns a loader for the module rooted at modRoot.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(modRoot)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// The GOROOT source importer cannot process cgo-using variants of
	// net/os; the pure-Go fallbacks type-check identically for our
	// purposes, so analyze the tree as if CGO_ENABLED=0.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:      token.NewFileSet(),
		ModRoot:   modRoot,
		ModPath:   modPath,
		Overrides: make(map[string]string),
		ctxt:      ctxt,
		pkgs:      make(map[string]*Package),
		loading:   make(map[string]bool),
	}, nil
}

// stdImporter is the process-wide standard-library importer, shared by
// every Loader so GOROOT source is type-checked at most once per
// process. go/types drives it single-threaded per Check call; the
// mutex serialises across loaders.
var (
	stdMu       sync.Mutex
	stdImporter types.ImporterFrom
)

func importStd(path string) (*types.Package, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	if stdImporter == nil {
		// The source importer consults build.Default; cgo-tagged files
		// in net and os/user do not type-check offline.
		build.Default.CgoEnabled = false
		stdImporter = importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
	}
	return stdImporter.ImportFrom(path, "", 0)
}

// dirFor maps a module import path to its directory, honoring
// overrides.
func (l *Loader) dirFor(path string) (string, bool) {
	if dir, ok := l.Overrides[path]; ok {
		return dir, true
	}
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom for the type checker: module
// (and override) paths load through the loader, everything else through
// the shared GOROOT source importer.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return importStd(path)
}

// Packages loads the package at the given import path and, when
// IncludeTests is set and the directory has "package foo_test" files,
// its external test package as well.
func (l *Loader) Packages(path string) ([]*Package, error) {
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	out := []*Package{pkg}
	if l.IncludeTests {
		xt, err := l.loadXTest(path)
		if err != nil {
			return nil, err
		}
		if xt != nil {
			out = append(out, xt)
		}
	}
	return out, nil
}

// load loads (or returns the cached) package at an import path the
// loader can place in the module or overrides.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %q is outside module %q", path, l.ModPath)
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	var files []string
	switch {
	case err == nil:
		files = append(files, bp.GoFiles...)
		if l.IncludeTests {
			files = append(files, bp.TestGoFiles...)
		}
	case isNoGoError(err) && l.IncludeTests && bp != nil && len(bp.TestGoFiles) > 0:
		// Test-only directories (e.g. internal/e2e) still deserve
		// linting; the in-package test files form the package.
		files = bp.TestGoFiles
	default:
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	l.Order = append(l.Order, pkg)
	return pkg, nil
}

// loadXTest loads the external test package of path, or nil if the
// directory has no XTestGoFiles.
func (l *Loader) loadXTest(path string) (*Package, error) {
	xpath := path + ".test"
	if pkg, ok := l.pkgs[xpath]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, nil
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil && !isNoGoError(err) {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	if bp == nil || len(bp.XTestGoFiles) == 0 {
		return nil, nil
	}
	pkg, err := l.check(xpath, dir, bp.XTestGoFiles)
	if err != nil {
		return nil, err
	}
	l.pkgs[xpath] = pkg
	l.Order = append(l.Order, pkg)
	return pkg, nil
}

func isNoGoError(err error) bool {
	var ng *build.NoGoError
	return errors.As(err, &ng)
}

// check parses and type-checks one set of files as a package.
func (l *Loader) check(path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		// Report at most a few: a broken package should fail the lint
		// run loudly, not drown it.
		max := len(typeErrs)
		if max > 5 {
			max = 5
		}
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, errors.Join(typeErrs[:max]...))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info}, nil
}
