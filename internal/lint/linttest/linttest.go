// Package linttest runs one rekeylint analyzer over a testdata fixture
// package and compares its diagnostics against `// want "regexp"`
// comments in the fixture source -- the analysistest idiom, rebuilt on
// the project's own loader so fixtures can masquerade as key-path
// packages via synthetic import paths.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/lint"
)

// A Fixture describes one testdata package to analyze.
type Fixture struct {
	// Dir is the fixture directory, relative to the test's working
	// directory (e.g. "testdata/hotpathalloc").
	Dir string
	// Path is the import path the fixture loads under. Path-scoped
	// analyzers key off suffixes like internal/keys or internal/obs, so
	// fixtures pick paths accordingly.
	Path string
	// Overrides maps further synthetic import paths to directories, for
	// fixtures that import a stand-in package (a caller fixture
	// importing a fake repro/internal/obs, say).
	Overrides map[string]string
	// IncludeTests loads the fixture's _test.go files too, for
	// exercising test-file exemptions.
	IncludeTests bool
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run analyzes the fixture with a and fails t on any mismatch between
// reported diagnostics and the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, fx Fixture) {
	t.Helper()
	modRoot, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = fx.IncludeTests
	dir, err := filepath.Abs(fx.Dir)
	if err != nil {
		t.Fatal(err)
	}
	loader.Overrides[fx.Path] = dir
	for p, d := range fx.Overrides {
		abs, err := filepath.Abs(d)
		if err != nil {
			t.Fatal(err)
		}
		loader.Overrides[p] = abs
	}
	pkgs, err := loader.Packages(fx.Path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fx.Dir, err)
	}

	var diags []lint.Diagnostic
	var wants []*want
	for _, pkg := range pkgs {
		ds, err := lint.RunAnalyzers(pkg, loader.Fset, []*lint.Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
		ws, err := collectWants(loader.Fset, pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// RunModule analyzes the fixture with a module-wide analyzer and fails
// t on any mismatch between reported diagnostics and the fixture's
// want comments. The fixture package and its overrides form the loaded
// closure; only the fixture package itself is a reporting target,
// mirroring a partial rekeylint run.
func RunModule(t *testing.T, ma *lint.ModuleAnalyzer, fx Fixture) {
	t.Helper()
	modRoot, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = fx.IncludeTests
	dir, err := filepath.Abs(fx.Dir)
	if err != nil {
		t.Fatal(err)
	}
	loader.Overrides[fx.Path] = dir
	for p, d := range fx.Overrides {
		abs, err := filepath.Abs(d)
		if err != nil {
			t.Fatal(err)
		}
		loader.Overrides[p] = abs
	}
	pkgs, err := loader.Packages(fx.Path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fx.Dir, err)
	}

	diags, err := lint.RunModuleAnalyzers(loader, modRoot, pkgs, []*lint.ModuleAnalyzer{ma})
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, pkg := range pkgs {
		ws, err := collectWants(loader.Fset, pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// consume marks the first unmatched want on the diagnostic's line whose
// regexp matches its message.
func consume(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRe extracts the payload of a want comment; the quoted regexps
// are then pulled out one Go string literal at a time.
var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(.*)`)
	literalRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func collectWants(fset *token.FileSet, pkg *lint.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lits := literalRe.FindAllString(m[1], -1)
				if len(lits) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, lit := range lits {
					s, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: s})
				}
			}
		}
	}
	return wants, nil
}
