package lint

// errsentinel: the typed-error invariant from the PR-2 Member.Ingest
// redesign. ErrBadPacket, ErrWrongMessage and ErrStale (and the other
// package sentinels: ErrBadTag, ErrShortBlock, ErrNoChange) are
// returned wrapped -- fmt.Errorf("%w: ...", ErrBadPacket) -- so a ==
// comparison silently stops matching the moment a call site adds
// context. errors.Is is the only correct dispatch; this analyzer bans
// == / != and switch-case comparisons against any package-level `Err*`
// sentinel, in tests too (tests were where the last == holdouts hid).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrSentinel bans direct comparisons against sentinel error values.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc:  "compare sentinel errors with errors.Is, never == / != or switch cases",
	Run:  runErrSentinel,
}

func runErrSentinel(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				s := sentinelVar(pass, x.X)
				if s == nil {
					s = sentinelVar(pass, x.Y)
				}
				if s != nil {
					pass.Reportf(x.Pos(), "%s is compared with %s; sentinels are returned wrapped, use errors.Is", s.Name(), x.Op)
				}
			case *ast.SwitchStmt:
				if x.Tag == nil {
					return true
				}
				tv, ok := pass.Info.Types[x.Tag]
				if !ok || !types.Identical(tv.Type, errorType) {
					return true
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinelVar(pass, e); s != nil {
							pass.Reportf(e.Pos(), "switch case compares %s with ==; sentinels are returned wrapped, use errors.Is", s.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelVar resolves e to a package-level error variable named Err*.
func sentinelVar(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil // locals named Err* are not sentinels
	}
	if !types.Identical(v.Type(), errorType) {
		return nil
	}
	return v
}
