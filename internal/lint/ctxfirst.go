package lint

// ctxfirst: the cancellation-plumbing invariant from the PR-2 context
// work (Distribute and Client.Run take ctx; the daemons wire signal
// contexts through). Two rules, both function-local and conservative:
// a context.Context parameter anywhere but first is always wrong; and
// an exported function whose own body visibly blocks -- spawns
// goroutines, selects, sends or receives on channels, sleeps, or waits
// on a WaitGroup -- must accept a context so its caller can bound it.
// Close methods are exempt (io.Closer fixes that signature), as are
// test files.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFirst enforces context.Context placement and presence on exported
// blocking APIs.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported blocking APIs take context.Context as their first parameter",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxPlacement(pass, fn)
			if !fn.Name.IsExported() || fn.Name.Name == "Close" {
				continue
			}
			if hasCtxFirst(pass, fn) {
				continue
			}
			if pos, what := blockingConstruct(pass, fn.Body); pos.IsValid() {
				pass.Reportf(fn.Pos(), "exported %s blocks (%s) but does not take a context.Context first parameter", fn.Name.Name, what)
			}
		}
	}
	return nil
}

// checkCtxPlacement flags a context.Context parameter at any position
// but the first (exported or not: a misplaced ctx is wrong everywhere).
func checkCtxPlacement(pass *Pass, fn *ast.FuncDecl) {
	idx := 0
	for _, field := range fn.Type.Params.List {
		tv := pass.Info.Types[field.Type]
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(tv.Type) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fn.Name.Name)
		}
		idx += n
	}
}

func hasCtxFirst(pass *Pass, fn *ast.FuncDecl) bool {
	params := fn.Type.Params.List
	if len(params) == 0 {
		return false
	}
	return isContextType(pass.Info.Types[params[0].Type].Type)
}

// blockingConstruct scans a body (not descending into closures, which
// may never run in this call) for constructs that block or spawn.
func blockingConstruct(pass *Pass, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			pos, what = x.Pos(), "spawns goroutines"
		case *ast.SelectStmt:
			pos, what = x.Pos(), "selects on channels"
		case *ast.SendStmt:
			pos, what = x.Pos(), "sends on a channel"
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pos, what = x.Pos(), "receives from a channel"
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pos, what = x.Pos(), "ranges over a channel"
				}
			}
		case *ast.CallExpr:
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				obj := pass.Info.Uses[sel.Sel]
				switch {
				case obj != nil && pkgPathOf(obj) == "time" && sel.Sel.Name == "Sleep":
					pos, what = x.Pos(), "calls time.Sleep"
				case sel.Sel.Name == "Wait" && isWaitGroup(pass, sel.X):
					pos, what = x.Pos(), "waits on a sync.WaitGroup"
				}
			}
		}
		return !pos.IsValid()
	})
	return pos, what
}

func isWaitGroup(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && pkgPathOf(obj) == "sync"
}
