package lint

// guardedby: the lock-discipline invariant behind the Server, Member
// and udptrans state machines. A struct field annotated
// `// guarded by mu` may only be touched by functions that visibly
// take that mutex, or by helpers that declare the caller holds it via
// the *Locked name suffix. The check is function-local and textual on
// purpose: it will not prove absence of races (the race detector does
// that at runtime), but it catches the common regression -- a new
// method reading rm.coder or s.tree without locking -- at build time.

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces `// guarded by <mu>` field annotations.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guarded by <mu>` are only accessed under that mutex or in *Locked helpers",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

func runGuardedBy(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // the suffix is the documented caller-holds-lock contract
			}
			checkGuardedAccesses(pass, fn, guarded)
		}
	}
	return nil
}

// collectGuardedFields maps each annotated field object to the name of
// the mutex that guards it (the last dot component of the annotation,
// so `guarded by s.mu` and `guarded by mu` both mean the sibling field
// mu).
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotationMutex(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func annotationMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			name := m[1]
			if i := strings.LastIndex(name, "."); i >= 0 {
				name = name[i+1:]
			}
			return name
		}
	}
	return ""
}

// checkGuardedAccesses reports accesses to guarded fields in fn unless
// the body visibly locks the guarding mutex. Accesses through a local
// variable that fn itself built from a composite literal are exempt:
// the value is not shared yet, so constructors need no lock.
func checkGuardedAccesses(pass *Pass, fn *ast.FuncDecl, guarded map[types.Object]string) {
	fresh := freshLocals(pass, fn)
	var accesses []struct {
		sel *ast.SelectorExpr
		mu  string
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, ok := guarded[fieldObject(selection)]
		if !ok {
			return true
		}
		if root := chainRoot(sel.X); root != nil {
			if obj := pass.Info.Uses[root]; obj != nil && fresh[obj] {
				return true
			}
		}
		accesses = append(accesses, struct {
			sel *ast.SelectorExpr
			mu  string
		}{sel, mu})
		return true
	})
	if len(accesses) == 0 {
		return
	}
	locked := lockedMutexes(pass, fn.Body)
	for _, a := range accesses {
		if locked[a.mu] {
			continue
		}
		pass.Reportf(a.sel.Sel.Pos(), "%s is guarded by %s but %s does not lock it; lock %s or rename the helper with a Locked suffix",
			a.sel.Sel.Name, a.mu, fn.Name.Name, a.mu)
	}
}

// fieldObject returns the object of the selected field.
func fieldObject(selection *types.Selection) types.Object {
	return selection.Obj()
}

// freshLocals returns the set of local variables fn initialises from a
// composite literal (`v := T{...}` or `v := &T{...}`), i.e. values that
// cannot yet be shared with another goroutine.
func freshLocals(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := unparen(as.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = unparen(ue.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

// lockedMutexes scans the body for `<x>.<mu>.Lock()` / `.RLock()`
// calls and returns the set of mutex field names locked anywhere in
// the function (including inside closures handed to helpers).
func lockedMutexes(pass *Pass, body *ast.BlockStmt) map[string]bool {
	locked := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			locked[x.Sel.Name] = true
		case *ast.Ident:
			locked[x.Name] = true
		}
		return true
	})
	return locked
}
