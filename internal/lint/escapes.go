package lint

// escapes: the static replacement for the runtime AllocsPerRun spot
// check. The hotpathalloc analyzer rejects the AST constructs that
// *visibly* allocate (append growth, literals, closures, fmt); this
// analyzer closes the remaining gap by asking the compiler itself: it
// runs `go build -gcflags=-m=2` over every package declaring a
// //rekeylint:hotpath function, parses the escape-analysis
// diagnostics, and fails if any escape or heap move lands inside a
// hotpath body. That proves the zero-allocation property for *every*
// annotated hot path on every commit, not just the ones a benchmark
// happens to exercise -- with one reading caveat: the proof covers the
// annotated bodies, not their callees, which is why the runtime
// AllocsPerRun gates stay alongside it (see DESIGN.md).
//
// Two diagnostic classes are deliberately accepted:
//
//   - `"..." escapes to heap` where the subject is a constant string:
//     panic("static message") boxes interned read-only data, no
//     runtime allocation happens (hotpathalloc documents the same
//     carve-out for panic).
//   - `leaking param: x` and friends: a parameter leaking means the
//     *caller's* argument may escape at the call site; the annotated
//     function itself performs no allocation.

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Escapes proves //rekeylint:hotpath functions free of heap escapes
// using the compiler's own escape analysis.
var Escapes = &ModuleAnalyzer{
	Name: "escapes",
	Doc:  "//rekeylint:hotpath functions must compile with zero heap escapes (go build -gcflags=-m=2 proof)",
	Run:  runEscapes,
}

// hotRange is one annotated function's body extent.
type hotRange struct {
	name       string
	file       string // absolute path
	start, end int    // line range, inclusive
}

func runEscapes(mp *ModulePass) error {
	var ranges []hotRange
	dirSet := make(map[string]bool)
	var dirs []string
	for _, pkg := range mp.All {
		if !mp.Targets[pkg] {
			continue
		}
		for _, f := range pkg.Files {
			pos := mp.Fset.Position(f.Pos())
			if IsTestFilename(pos.Filename) {
				continue // go build compiles non-test files only
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !hasDirective(fn.Doc, "hotpath") {
					continue
				}
				start := mp.Fset.Position(fn.Body.Pos())
				end := mp.Fset.Position(fn.Body.End())
				ranges = append(ranges, hotRange{
					name:  fn.Name.Name,
					file:  start.Filename,
					start: start.Line,
					end:   end.Line,
				})
				if !dirSet[pkg.Dir] {
					dirSet[pkg.Dir] = true
					dirs = append(dirs, pkg.Dir)
				}
			}
		}
	}
	if len(ranges) == 0 {
		return nil
	}
	sort.Strings(dirs)

	args := []string{"build", "-gcflags=-m=2"}
	for _, dir := range dirs {
		rel, err := filepath.Rel(mp.ModRoot, dir)
		if err != nil {
			return fmt.Errorf("escapes: %w", err)
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = mp.ModRoot
	out, err := cmd.CombinedOutput()
	diags := parseEscapeDiags(out)
	if err != nil && len(diags) == 0 {
		// A genuine build failure (the -m output itself never fails
		// the compile); surface it instead of passing silently.
		return fmt.Errorf("escapes: go build -gcflags=-m=2: %v\n%s", err, out)
	}

	seen := make(map[string]bool)
	for _, d := range diags {
		abs := d.file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(mp.ModRoot, abs)
		}
		for _, hr := range ranges {
			if abs != hr.file || d.line < hr.start || d.line > hr.end {
				continue
			}
			key := fmt.Sprintf("%s:%d:%d:%s", abs, d.line, d.col, d.msg)
			if seen[key] {
				continue
			}
			seen[key] = true
			mp.ReportAt(token.Position{Filename: abs, Line: d.line, Column: d.col},
				"heap allocation in hot path %s: %s (restructure, or demote the //rekeylint:hotpath annotation)", hr.name, d.msg)
		}
	}
	return nil
}

// escapeDiag is one parsed compiler diagnostic that implies a runtime
// heap allocation.
type escapeDiag struct {
	file      string
	line, col int
	msg       string
}

var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// constStringRe matches escape subjects that are string constants --
// interned static data, not runtime allocations.
var constStringRe = regexp.MustCompile(`^"(?:[^"\\]|\\.)*"(?:\s*\+\s*"(?:[^"\\]|\\.)*")*$`)

// parseEscapeDiags extracts the allocation-implying lines from
// -gcflags=-m=2 output: `<expr> escapes to heap` and
// `moved to heap: <name>`. Inlining chatter, `does not escape` and
// `leaking param` lines are dropped.
func parseEscapeDiags(out []byte) []escapeDiag {
	var diags []escapeDiag
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		var subject string
		switch {
		case strings.HasSuffix(msg, " escapes to heap") || strings.HasSuffix(msg, " escapes to heap:"):
			subject = strings.TrimSuffix(strings.TrimSuffix(msg, ":"), " escapes to heap")
			if constStringRe.MatchString(strings.TrimSpace(subject)) {
				continue // panic("constant"): interned, no allocation
			}
		case strings.HasPrefix(msg, "moved to heap: "):
			subject = strings.TrimPrefix(msg, "moved to heap: ")
		default:
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		diags = append(diags, escapeDiag{
			file: m[1],
			line: ln,
			col:  col,
			msg:  strings.TrimSuffix(msg, ":"),
		})
		_ = subject
	}
	return diags
}
