package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// One fixture run per analyzer: positive and negative cases live in
// the testdata packages as `// want` comments.

func TestCryptorandRestricted(t *testing.T) {
	linttest.Run(t, lint.Cryptorand, linttest.Fixture{
		Dir:          "testdata/cryptorand/keys",
		Path:         "repro/internal/keys",
		IncludeTests: true,
	})
}

func TestCryptorandInjectedOnly(t *testing.T) {
	linttest.Run(t, lint.Cryptorand, linttest.Fixture{
		Dir:  "testdata/cryptorand/strategy",
		Path: "repro/internal/keytree",
	})
}

func TestCryptorandUnrestricted(t *testing.T) {
	linttest.Run(t, lint.Cryptorand, linttest.Fixture{
		Dir:  "testdata/cryptorand/sim",
		Path: "repro/internal/sim",
	})
}

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, linttest.Fixture{
		Dir:  "testdata/hotpathalloc",
		Path: "repro/internal/hp",
	})
}

func TestObsNilRegistry(t *testing.T) {
	linttest.Run(t, lint.ObsNil, linttest.Fixture{
		Dir:  "testdata/obsnil/obs",
		Path: "repro/internal/obs",
	})
}

func TestObsNilCallers(t *testing.T) {
	linttest.Run(t, lint.ObsNil, linttest.Fixture{
		Dir:  "testdata/obsnil/caller",
		Path: "repro/internal/caller",
		Overrides: map[string]string{
			"repro/internal/obs": "testdata/obsnil/obs",
		},
	})
}

func TestCtxFirst(t *testing.T) {
	linttest.Run(t, lint.CtxFirst, linttest.Fixture{
		Dir:  "testdata/ctxfirst",
		Path: "repro/internal/cf",
	})
}

func TestErrSentinel(t *testing.T) {
	linttest.Run(t, lint.ErrSentinel, linttest.Fixture{
		Dir:          "testdata/errsentinel",
		Path:         "repro/internal/es",
		IncludeTests: true,
	})
}

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, lint.GuardedBy, linttest.Fixture{
		Dir:  "testdata/guardedby",
		Path: "repro/internal/gb",
	})
}

// TestIgnoreRequiresReason checks the suppression mechanism directly:
// a bare //rekeylint:ignore suppresses nothing and is itself reported.
func TestIgnoreRequiresReason(t *testing.T) {
	modRoot, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs("testdata/ignores")
	if err != nil {
		t.Fatal(err)
	}
	loader.Overrides["repro/internal/ig"] = dir
	pkgs, err := loader.Packages("repro/internal/ig")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkgs[0], loader.Fset, []*lint.Analyzer{lint.HotPathAlloc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (missing reason + unsuppressed append): %v", len(diags), diags)
	}
	var sawReason, sawAppend bool
	for _, d := range diags {
		switch d.Analyzer {
		case "rekeylint":
			sawReason = true
		case "hotpathalloc":
			sawAppend = true
		}
	}
	if !sawReason || !sawAppend {
		t.Fatalf("diagnostics missing expected pair: %v", diags)
	}
}

// --- module-wide analyzers ---

func TestKeyFlow(t *testing.T) {
	linttest.RunModule(t, lint.KeyFlow, linttest.Fixture{
		Dir:  "testdata/keyflow/app",
		Path: "repro/internal/app",
		Overrides: map[string]string{
			"repro/internal/keys":   "testdata/keyflow/keys",
			"repro/internal/helper": "testdata/keyflow/helper",
		},
	})
}

func TestLockOrderDAG(t *testing.T) {
	linttest.RunModule(t, lint.LockOrder, linttest.Fixture{
		Dir:  "testdata/lockorder/dag",
		Path: "repro/internal/dag",
	})
}

func TestLockOrderCycle(t *testing.T) {
	linttest.RunModule(t, lint.LockOrder, linttest.Fixture{
		Dir:  "testdata/lockorder/cycle",
		Path: "repro/internal/cycle",
	})
}

func TestEscapesHot(t *testing.T) {
	linttest.RunModule(t, lint.Escapes, linttest.Fixture{
		Dir:  "testdata/escapes/hot",
		Path: "repro/internal/hot",
	})
}

func TestEscapesClean(t *testing.T) {
	linttest.RunModule(t, lint.Escapes, linttest.Fixture{
		Dir:  "testdata/escapes/clean",
		Path: "repro/internal/clean",
	})
}
