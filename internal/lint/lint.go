// Package lint is rekeylint: a project-native static-analysis suite
// that machine-checks the invariants this repository's crypto, hot-path
// and concurrency work depends on but `go vet` cannot see.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Reportf and analysistest-style "// want" fixtures)
// but is self-contained on the standard library's go/ast, go/types and
// go/importer packages, so the repository keeps its zero-dependency
// module while still getting a real multichecker. Packages are loaded
// and type-checked by Loader (load.go); Run (run.go) expands `./...`
// patterns, applies `//rekeylint:ignore <reason>` suppressions and
// returns the surviving diagnostics.
//
// The analyzer set (one file each):
//
//   - cryptorand:   key-path packages must not use math/rand or
//     time-seeded randomness (crypto material comes from the batched
//     CSPRNG in internal/keys only).
//   - hotpathalloc: functions annotated //rekeylint:hotpath must stay
//     free of append growth, map/slice literals, closures, fmt calls
//     and interface-boxing conversions.
//   - obsnil:       methods on the obs registry must start with the
//     nil-receiver guard that makes a nil *Registry a no-op, and no
//     caller may dereference a possibly-nil registry.
//   - ctxfirst:     exported blocking APIs take context.Context first.
//   - errsentinel:  sentinel errors are matched with errors.Is, never
//     compared with == / != or switched on.
//   - guardedby:    fields annotated "guarded by <mu>" are only
//     touched by functions that lock that mutex (function-local,
//     conservative; the *Locked name suffix marks caller-held locks).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test output.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf. A returned error aborts the whole lint run (it
	// means the analyzer itself failed, not that the code is bad).
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, positioned in the linted source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path. Fixture packages are loaded
	// under synthetic paths, so path-scoped analyzers (cryptorand,
	// obsnil) can be exercised from testdata.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file is a _test.go file. Several
// analyzers exempt tests (deterministic seeds and direct field pokes
// are fine there); errsentinel deliberately does not.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// DefaultAnalyzers returns the full rekeylint suite, the set
// cmd/rekeylint runs as a CI gate.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Cryptorand,
		HotPathAlloc,
		ObsNil,
		CtxFirst,
		ErrSentinel,
		GuardedBy,
	}
}

// hasDirective reports whether the comment group contains the given
// //rekeylint:<name> directive line.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "rekeylint:"+name || strings.HasPrefix(text, "rekeylint:"+name+" ") {
			return true
		}
	}
	return false
}

// ignoreDirective matches one //rekeylint:ignore comment and captures
// the (required) reason; the index itself lives in run.go.
const ignorePrefix = "rekeylint:ignore"

// declassifyReason returns the reason attached to a
// //rekeylint:declassify directive on the declaration, and whether the
// directive is present at all. Declassify is keyflow's only sanitizer
// besides crypto/subtle: the function's internal flows are accepted as
// reviewed and its results are treated as public. Like ignore, the
// directive requires a reason so every trust decision is auditable.
func declassifyReason(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "rekeylint:declassify"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// sortIgnores orders ignore entries by file, line.
func sortIgnores(entries []IgnoreEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
}

// sortDiags orders findings by file, line, column, analyzer.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// --- small shared type/AST helpers used by several analyzers ---

var errorType = types.Universe.Lookup("error").Type()

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// chainRoot returns the identifier at the base of a selector/index
// chain (r in r.trace.buf[i]), or nil when the chain is rooted in a
// call or other non-identifier expression.
func chainRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// pkgPathOf returns the import path of the package declaring obj, or ""
// for universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
