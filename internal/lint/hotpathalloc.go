package lint

// hotpathalloc: the allocation-discipline invariant behind the PR-1
// GF(2^8) kernels and the PR-3 million-member wrap pipeline. Functions
// annotated //rekeylint:hotpath (WrapInto, the MulAddSlice kernels and
// their FEC callers, DecodeInto, the obs counter fast paths) are the
// per-key and per-byte inner loops whose benchmarks assume zero
// allocation; this analyzer rejects the constructs that (re)introduce
// hidden allocations: append growth, map/slice composite literals,
// closures, fmt calls, and interface-boxing conversions.

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc enforces allocation-free bodies for functions annotated
// //rekeylint:hotpath.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//rekeylint:hotpath functions must avoid append growth, map/slice literals, closures, fmt and interface boxing",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "hotpath") {
				continue
			}
			checkHotBody(pass, fn.Body)
		}
	}
	return nil
}

func checkHotBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure in hot path allocates; hoist it or restructure")
			return false // the closure itself is the finding
		case *ast.CompositeLit:
			switch pass.Info.Types[x].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal in hot path allocates")
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal in hot path allocates")
			}
		case *ast.CallExpr:
			checkHotCall(pass, x)
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	fun := unparen(call.Fun)

	// Type conversions: flag conversions to interface types.
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		if isBoxing(tv.Type, pass.Info.Types[call.Args[0]].Type) {
			pass.Reportf(call.Pos(), "conversion to interface type %s boxes in hot path", tv.Type)
		}
		return
	}

	// Builtins: only append is an allocation hazard here (panic's
	// argument is interned static data on the cold path).
	if id, ok := fun.(*ast.Ident); ok {
		if obj, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			if obj.Name() == "append" {
				pass.Reportf(call.Pos(), "append in hot path may grow its backing array; write through a pre-sized buffer instead")
			}
			return
		}
	}

	// fmt calls: Sprintf/Errorf/Fprintf all allocate (and box their
	// variadic operands).
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj := pass.Info.Uses[sel.Sel]; obj != nil && pkgPathOf(obj) == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s in hot path allocates; move formatting to a cold helper", sel.Sel.Name)
			return
		}
	}

	// Interface boxing through ordinary calls: a concrete argument
	// passed to an interface-typed parameter escapes to the heap.
	sig, ok := pass.Info.Types[fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isBoxing(pt, pass.Info.Types[arg].Type) {
			pass.Reportf(arg.Pos(), "argument boxes into interface parameter %s in hot path", pt)
		}
	}
}

// isBoxing reports whether assigning a value of concrete type from to
// an interface destination type to would box.
func isBoxing(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := from.Underlying().(*types.Interface); ok {
		return false // interface-to-interface carries the existing box
	}
	if basic, ok := from.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return true
}
