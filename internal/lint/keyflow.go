package lint

// keyflow: interprocedural taint tracking of secret key material. The
// paper's security argument assumes node keys are visible only to the
// key server and never leave it except wrapped (encrypted) or hashed;
// this analyzer makes that a build-time property:
//
//   Sources   values whose type is, or structurally contains, one of
//             the secret types -- keys.Key, keys.Generator (and its
//             DRBG state), keys.WrapContext, keys.Signer,
//             crypto/rsa.PrivateKey -- plus anything derived from them
//             by assignment, slicing, arithmetic or hashing.
//   Sinks     fmt.*, log.* / log/slog, errors.New, panic, print(ln),
//             and obs trace attachments (Registry.Emit): a secret that
//             reaches one ends up in a log line, an error string or a
//             trace ring served over HTTP.
//   Compare   == / != on secret-bearing values, bytes.Equal/Compare or
//             reflect.DeepEqual on tainted bytes, switch on a secret
//             tag, and secret-typed map keys are all variable-time;
//             the only sanctioned comparators are crypto/subtle and
//             keys.Key.Equal (itself built on subtle).
//   Sanitize  results of crypto/subtle functions are public, and a
//             function annotated //rekeylint:declassify <reason> is
//             trusted: its body is exempt and its results are public
//             (keys.Wrap emits ciphertext, Key.String a fingerprint).
//
// The analysis is type- and flow-based per function, and goes
// interprocedural through the facts layer: analyzing internal/keys
// first (Loader.Order is dependencies-first), every function gets a
// "leaks" fact recording which parameters it passes to a sink --
// directly or via further calls -- so a dependent package calling
// helper(k[:]) is flagged at the call site even though the fmt call
// sits two packages away. Test files are exempt: fixture keys are
// deterministic and printed on purpose; production and harness code is
// not.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// KeyFlow reports secret key material flowing into logs, errors,
// traces or variable-time comparisons.
var KeyFlow = &ModuleAnalyzer{
	Name: "keyflow",
	Doc:  "secret key material must not reach fmt/log/errors/panic/trace sinks or non-constant-time comparisons",
	Run:  runKeyFlow,
}

// secretTypeNames lists the named types whose values are secret, per
// package import-path suffix. The suffix match lets fixture modules
// exercise the analyzer with a stand-in internal/keys.
var secretTypeNames = map[string][]string{
	"internal/keys": {"Key", "Generator", "WrapContext", "Signer", "ctrDRBG"},
	"crypto/rsa":    {"PrivateKey"},
}

// kfLeaks is the per-function fact: bit i set means parameter i
// (receiver first, when present) flows to a sink inside the function
// or one of its callees.
type kfLeaks struct {
	mask uint64
	sink string // description of the first sink reached, for messages
}

const (
	// kfSecretBit marks taint carrying actual secret bytes; lower bits
	// mark which parameter a value derives from (for the leaks fact).
	kfSecretBit = uint64(1) << 63
	kfMaxParams = 62
)

type keyflowState struct {
	mp       *ModulePass
	contains map[types.Type]bool
	visiting map[types.Type]bool
}

func runKeyFlow(mp *ModulePass) error {
	st := &keyflowState{
		mp:       mp,
		contains: make(map[types.Type]bool),
		visiting: make(map[types.Type]bool),
	}
	// Dependencies-first: facts computed for a package are complete
	// before any importer is analyzed. Within a package, iterate until
	// the leak facts stop changing so intra-package helper chains
	// resolve regardless of declaration order.
	for _, pkg := range mp.All {
		for pass := 0; pass < 8; pass++ {
			changed := false
			for _, f := range pkg.Files {
				if IsTestFilename(mp.Fset.Position(f.Pos()).Filename) {
					continue
				}
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					if changedFacts := st.analyzeFunc(pkg, fn, false); changedFacts {
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}
	// Reporting pass over the target packages only.
	for _, pkg := range mp.All {
		if !mp.Targets[pkg] {
			continue
		}
		for _, f := range pkg.Files {
			if IsTestFilename(mp.Fset.Position(f.Pos()).Filename) {
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				st.analyzeFunc(pkg, fn, true)
			}
		}
	}
	return nil
}

// isSecretTypeName reports whether the named type is one of the
// declared secret roots.
func isSecretTypeName(obj *types.TypeName) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	for suffix, names := range secretTypeNames {
		if pkg.Path() == suffix || strings.HasSuffix(pkg.Path(), "/"+suffix) {
			for _, n := range names {
				if obj.Name() == n {
					return true
				}
			}
		}
	}
	return false
}

// typeContainsSecret reports whether a value of type t structurally
// embeds secret material (a Key field, a slice of keys, a pointer to a
// Generator...). Interfaces and function types are opaque: a secret
// behind an interface is tracked at the point it was boxed, not after.
func (st *keyflowState) typeContainsSecret(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if v, ok := st.contains[t]; ok {
		return v
	}
	if st.visiting[t] {
		return false // recursive type; the cycle itself adds nothing
	}
	st.visiting[t] = true
	defer delete(st.visiting, t)

	var v bool
	switch u := t.(type) {
	case *types.Named:
		if isSecretTypeName(u.Obj()) {
			v = true
		} else {
			v = st.typeContainsSecret(u.Underlying())
		}
	case *types.Pointer:
		v = st.typeContainsSecret(u.Elem())
	case *types.Slice:
		v = st.typeContainsSecret(u.Elem())
	case *types.Array:
		v = st.typeContainsSecret(u.Elem())
	case *types.Chan:
		v = st.typeContainsSecret(u.Elem())
	case *types.Map:
		v = st.typeContainsSecret(u.Key()) || st.typeContainsSecret(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if st.typeContainsSecret(u.Field(i).Type()) {
				v = true
				break
			}
		}
	}
	st.contains[t] = v
	return v
}

// funcTaint is the per-function analysis state.
type funcTaint struct {
	st     *keyflowState
	pkg    *Package
	fn     *ast.FuncDecl
	report bool
	// taint maps objects (params, locals) to their flow mask.
	taint map[types.Object]uint64
	// params lists the function's parameters, receiver first, in fact
	// bit order.
	params []types.Object
	// leak accumulates the function's leaks fact this pass.
	leak kfLeaks
}

// analyzeFunc runs the taint analysis over one function; when report
// is false it only (re)computes the leaks fact, returning whether the
// fact changed.
func (st *keyflowState) analyzeFunc(pkg *Package, fn *ast.FuncDecl, report bool) bool {
	if reason, ok := declassifyReason(fn.Doc); ok {
		if reason == "" && report {
			st.mp.Reportf(fn.Pos(), "rekeylint:declassify requires a reason, e.g. //rekeylint:declassify emits ciphertext, not key bytes")
		}
		return false // trusted: body exempt, results public
	}
	ft := &funcTaint{st: st, pkg: pkg, fn: fn, report: report, taint: make(map[types.Object]uint64)}
	ft.seedParams()
	ft.propagate()
	ft.check()

	obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
	if obj == nil || ft.leak.mask == 0 {
		return false
	}
	prev, _ := st.mp.Facts.Get(obj, "keyflow.leaks")
	if p, ok := prev.(kfLeaks); ok && p.mask == (p.mask|ft.leak.mask) {
		return false
	}
	merged := ft.leak
	if p, ok := prev.(kfLeaks); ok {
		merged.mask |= p.mask
	}
	st.mp.Facts.Set(obj, "keyflow.leaks", merged)
	return true
}

func (ft *funcTaint) seedParams() {
	addObj := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := ft.pkg.Info.Defs[id]
		if obj == nil || len(ft.params) >= kfMaxParams {
			return
		}
		ft.taint[obj] |= uint64(1) << uint(len(ft.params))
		ft.params = append(ft.params, obj)
	}
	if ft.fn.Recv != nil {
		for _, field := range ft.fn.Recv.List {
			for _, name := range field.Names {
				addObj(name)
			}
		}
	}
	if ft.fn.Type.Params != nil {
		for _, field := range ft.fn.Type.Params.List {
			for _, name := range field.Names {
				addObj(name)
			}
		}
	}
}

// propagate iterates assignment-based taint flow to a fixpoint.
func (ft *funcTaint) propagate() {
	for i := 0; i < 10; i++ {
		if !ft.flowOnce() {
			return
		}
	}
}

func (ft *funcTaint) flowOnce() bool {
	changed := false
	mark := func(id *ast.Ident, m uint64) {
		if id == nil || id.Name == "_" || m == 0 {
			return
		}
		obj := ft.pkg.Info.Defs[id]
		if obj == nil {
			obj = ft.pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if ft.taint[obj]|m != ft.taint[obj] {
			ft.taint[obj] |= m
			changed = true
		}
	}
	ast.Inspect(ft.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					ft.assignMask(lhs, ft.exprMask(x.Rhs[i]), mark)
				}
			} else if len(x.Rhs) == 1 {
				// Multi-value: taint each target by its own result
				// slot, so `k, err := g.NewKey()` taints k but not err.
				masks := ft.multiValueMasks(x.Rhs[0], len(x.Lhs))
				for i, lhs := range x.Lhs {
					ft.assignMask(lhs, masks[i], mark)
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == len(x.Names) {
				for i, name := range x.Names {
					mark(name, ft.exprMask(x.Values[i]))
				}
			} else if len(x.Values) == 1 {
				m := ft.exprMask(x.Values[0])
				for _, name := range x.Names {
					mark(name, m)
				}
			}
		case *ast.CallExpr:
			// copy(dst, src) moves bytes without an assignment; the
			// destination inherits the source's taint.
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 2 {
				if b, ok := ft.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
					ft.assignMask(x.Args[0], ft.exprMask(x.Args[1]), mark)
				}
			}
		case *ast.RangeStmt:
			m := ft.exprMask(x.X)
			if m != 0 {
				t := ft.pkg.Info.Types[x.X].Type
				// Each loop variable keeps the source taint only if
				// its own type can hold secret bytes: ranging a
				// map[Key]int taints the keys, not the int IDs.
				if x.Value != nil {
					if id, ok := x.Value.(*ast.Ident); ok && ft.carriesElem(id) {
						mark(id, m)
					}
				}
				if x.Key != nil {
					if id, ok := x.Key.(*ast.Ident); ok && ft.carriesElem(id) {
						if t != nil {
							if _, isMap := t.Underlying().(*types.Map); isMap {
								mark(id, m)
							}
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

// carriesElem reports whether the expression's own static type can
// hold secret bytes extracted from a tainted aggregate: byte storage,
// strings, secret-embedding types, or a single byte (k[0] stays
// secret; the int ID stored beside a key does not).
func (ft *funcTaint) carriesElem(e ast.Expr) bool {
	var t types.Type
	if tv, ok := ft.pkg.Info.Types[e]; ok {
		t = tv.Type
	} else if id, ok := e.(*ast.Ident); ok {
		// Range loop variables have Defs entries but no Types entry.
		if obj := ft.pkg.Info.Defs[id]; obj != nil {
			t = obj.Type()
		} else if obj := ft.pkg.Info.Uses[id]; obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		return true // no type info: stay conservative
	}
	return ft.st.carries(t) || isByte(t)
}

// assignMask taints the assignment target: an identifier directly, or
// the root variable of a field/index write (storing a secret into a
// struct taints the struct-typed local).
func (ft *funcTaint) assignMask(lhs ast.Expr, m uint64, mark func(*ast.Ident, uint64)) {
	if m == 0 {
		return
	}
	switch t := unparen(lhs).(type) {
	case *ast.Ident:
		mark(t, m)
	default:
		if root := chainRoot(lhs); root != nil {
			if obj := ft.pkg.Info.Uses[root]; obj != nil {
				if _, isLocal := ft.taint[obj]; isLocal || obj.Parent() != ft.pkg.Pkg.Scope() {
					mark(root, m)
				}
			}
		}
	}
}

// byteBacked reports whether a value of this type is raw byte storage
// -- a slice or array chain bottoming out in uint8 ([]byte, [16]byte,
// [][]byte). Only such values can physically hold secret bytes copied
// out of a key, so only they propagate flow taint through a struct
// field selection: t.uids ([]int) or cfg.Strategy (string) selected
// from a secret-holding struct are lengths and names, not material.
func byteBacked(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByte(u.Elem()) || byteBacked(u.Elem())
	case *types.Array:
		return isByte(u.Elem()) || byteBacked(u.Elem())
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// byteCarrier is byteBacked plus strings: a call result derived from
// secret input keeps its taint when it is byte storage *or* a string
// (hex.EncodeToString of key bytes), while an int count or an error
// produced beside a key does not. Pointers and interfaces are handled
// by the type-based rule instead -- a *Tree that holds keys is secret
// by type, while an error returned beside a key is not secret by flow.
func byteCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()&types.IsString != 0
	}
	return byteBacked(t)
}

// carries reports whether a result of type t keeps the taint of the
// inputs that produced it: byte carriers and secret-embedding types
// do, scalars and opaque values do not.
func (st *keyflowState) carries(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if st.carries(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return byteCarrier(t) || st.typeContainsSecret(t)
}

// multiValueMasks computes per-slot taint for a multi-value RHS: for
// tuple-returning calls each result slot is gated by its own type.
func (ft *funcTaint) multiValueMasks(rhs ast.Expr, n int) []uint64 {
	masks := make([]uint64, n)
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		if tv, ok := ft.pkg.Info.Types[call]; ok {
			if tup, ok := tv.Type.(*types.Tuple); ok && tup.Len() == n {
				raw := ft.rawCallMask(call)
				for i := range masks {
					if ft.st.carries(tup.At(i).Type()) {
						masks[i] = raw
					}
				}
				return masks
			}
		}
	}
	m := ft.exprMask(rhs)
	for i := range masks {
		masks[i] = m
	}
	return masks
}

// exprMask computes the taint mask of an expression: the union of the
// flow masks of the objects it reads, plus the secret bit whenever its
// static type structurally contains secret material.
func (ft *funcTaint) exprMask(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	var m uint64
	if tv, ok := ft.pkg.Info.Types[e]; ok && ft.st.typeContainsSecret(tv.Type) {
		m |= kfSecretBit
	}
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if obj := ft.pkg.Info.Uses[x]; obj != nil {
			m |= ft.taint[obj]
		}
	case *ast.SelectorExpr:
		// Field selection narrows: an int or string field of a tainted
		// struct is not itself secret; byte storage keeps the taint.
		if tv, ok := ft.pkg.Info.Types[x]; ok && byteBacked(tv.Type) {
			m |= ft.exprMask(x.X)
		}
	case *ast.IndexExpr:
		// Indexing narrows like field selection: a byte of a key is
		// secret, the Member ID looked up in a map[Key]Member is not.
		if ft.carriesElem(x) {
			m |= ft.exprMask(x.X)
		}
	case *ast.SliceExpr:
		m |= ft.exprMask(x.X)
	case *ast.StarExpr:
		m |= ft.exprMask(x.X)
	case *ast.UnaryExpr:
		m |= ft.exprMask(x.X)
	case *ast.BinaryExpr:
		m |= ft.exprMask(x.X) | ft.exprMask(x.Y)
	case *ast.TypeAssertExpr:
		m |= ft.exprMask(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= ft.exprMask(kv.Value)
			} else {
				m |= ft.exprMask(el)
			}
		}
	case *ast.CallExpr:
		m |= ft.callMask(x)
	}
	return m
}

// callMask computes the taint of a call used as a single value: the
// raw input taint, gated by whether the result type can carry bytes at
// all (the length of a key is public; a hash of it is not).
func (ft *funcTaint) callMask(call *ast.CallExpr) uint64 {
	raw := ft.rawCallMask(call)
	if raw == 0 {
		return 0
	}
	if tv, ok := ft.pkg.Info.Types[call]; ok && !ft.st.carries(tv.Type) {
		return 0
	}
	return raw
}

// rawCallMask computes the union of a call's input taint -- arguments
// plus method receiver -- after sanitizers.
func (ft *funcTaint) rawCallMask(call *ast.CallExpr) uint64 {
	fun := unparen(call.Fun)

	// Conversions propagate their operand.
	if tv, ok := ft.pkg.Info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return ft.exprMask(call.Args[0])
		}
		return 0
	}
	// Builtins: len/cap of a secret are public sizes.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := ft.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				return 0
			}
			var m uint64
			for _, a := range call.Args {
				m |= ft.exprMask(a)
			}
			return m
		}
	}
	callee := CalleeOf(ft.pkg.Info, call)
	if callee != nil {
		path := pkgPathOf(callee)
		if path == "crypto/subtle" {
			return 0 // the sanctioned constant-time results are public
		}
		if ft.isDeclassified(callee) {
			return 0
		}
	}
	var m uint64
	for _, a := range call.Args {
		m |= ft.exprMask(a)
	}
	// A method call on a receiver that IS a secret object yields
	// tainted output (Key.bytes, a DRBG read, mac.Sum over an HMAC
	// keyed with secret bytes). Methods on aggregates that merely
	// *contain* keys (Server, Member, Tree) contribute no receiver
	// taint at all -- not even parameter bits: they overwhelmingly
	// return protocol data derived from their arguments, their
	// key-typed results are caught by the type-based rule anyway, and
	// propagating aggregate-receiver bits turns every byte the struct
	// ever touched into a false interprocedural chain.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if ft.st.directSecretType(ft.typeOf(sel.X)) {
			m |= ft.exprMask(sel.X)
		}
	}
	return m
}

// typeOf resolves an expression's static type, or nil.
func (ft *funcTaint) typeOf(e ast.Expr) types.Type {
	if tv, ok := ft.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// directSecretType reports whether t (through pointers) is itself one
// of the declared secret types, as opposed to a struct that embeds one
// somewhere.
func (st *keyflowState) directSecretType(t types.Type) bool {
	for {
		p, ok := types.Unalias(t).(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	return isSecretTypeName(named.Obj())
}

// isDeclassified reports whether the callee carries the declassify
// directive (resolved through the call graph so cross-package calls
// see the annotation).
func (ft *funcTaint) isDeclassified(callee *types.Func) bool {
	node := ft.st.mp.Graph.Nodes[callee]
	if node == nil {
		return false
	}
	_, ok := declassifyReason(node.Decl.Doc)
	return ok
}

// check walks the body reporting sink flows and variable-time
// comparisons, and accumulates the leaks fact.
func (ft *funcTaint) check() {
	ast.Inspect(ft.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			ft.checkCall(x)
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				ft.checkCompare(x)
			}
		case *ast.SwitchStmt:
			if x.Tag != nil && ft.exprMask(x.Tag)&kfSecretBit != 0 {
				ft.reportf(x.Tag.Pos(), "switch on secret value is a non-constant-time comparison; use subtle.ConstantTimeCompare per case")
			}
		case *ast.IndexExpr:
			if tv, ok := ft.pkg.Info.Types[x.X]; ok {
				if mt, ok := tv.Type.Underlying().(*types.Map); ok && ft.st.typeContainsSecret(mt.Key()) {
					ft.reportf(x.Pos(), "map keyed by secret type %s hashes key bytes in variable time and retains them; key by key ID instead", mt.Key())
				}
			}
		}
		return true
	})
}

func (ft *funcTaint) reportf(pos token.Pos, format string, args ...any) {
	if ft.report {
		ft.st.mp.Reportf(pos, format, args...)
	}
}

// keyFlowDebug, when set (tests only), observes every leak-fact
// contribution: which function, at which position, leaked which
// parameter bits into which sink.
var keyFlowDebug func(fn string, pos token.Position, bits uint64, sink string)

// noteSink records that the given argument mask reached a sink: a
// concrete secret is reported, a parameter-derived value becomes part
// of the function's leaks fact.
func (ft *funcTaint) noteSink(pos token.Pos, m uint64, sink string) {
	if m&kfSecretBit != 0 {
		ft.reportf(pos, "secret key material flows into %s; hash it, pass a fingerprint (Key.String), or annotate the reviewed path //rekeylint:declassify <reason>", sink)
		return
	}
	if bits := m &^ kfSecretBit; bits != 0 {
		if ft.leak.mask|bits != ft.leak.mask {
			ft.leak.mask |= bits
			if ft.leak.sink == "" {
				ft.leak.sink = sink
			}
			if keyFlowDebug != nil {
				keyFlowDebug(ft.fn.Name.Name, ft.st.mp.Fset.Position(pos), bits, sink)
			}
		}
	}
}

func (ft *funcTaint) checkCall(call *ast.CallExpr) {
	fun := unparen(call.Fun)

	// panic / print / println builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := ft.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic", "print", "println":
				for _, a := range call.Args {
					ft.noteSink(a.Pos(), ft.exprMask(a), b.Name())
				}
			}
			return
		}
	}

	callee := CalleeOf(ft.pkg.Info, call)
	if callee == nil {
		return
	}
	path := pkgPathOf(callee)
	sink := ""
	switch {
	case path == "fmt":
		sink = "fmt." + callee.Name()
	case path == "log" || path == "log/slog":
		sink = path + "." + callee.Name()
	case path == "errors" && callee.Name() == "New":
		sink = "errors.New"
	case callee.Name() == "Emit" && strings.HasSuffix(path, "internal/obs"):
		sink = "the obs trace ring (Registry.Emit)"
	}
	if sink != "" {
		for _, a := range call.Args {
			ft.noteSink(a.Pos(), ft.exprMask(a), sink)
		}
		return
	}

	// bytes.Equal / bytes.Compare / reflect.DeepEqual on tainted data.
	if (path == "bytes" && (callee.Name() == "Equal" || callee.Name() == "Compare")) ||
		(path == "reflect" && callee.Name() == "DeepEqual") {
		for _, a := range call.Args {
			if ft.exprMask(a)&kfSecretBit != 0 {
				ft.reportf(a.Pos(), "%s.%s on secret key material is not constant-time; use subtle.ConstantTimeCompare", path, callee.Name())
				break
			}
		}
		return
	}

	// Interprocedural: callee passes some parameter onward to a sink.
	if fact, ok := ft.st.mp.Facts.Get(callee, "keyflow.leaks"); ok {
		leaks := fact.(kfLeaks)
		// Parameter numbering in the fact counts the receiver first.
		// Use the callee's own signature: the type of a method-value
		// selector expression has no Recv, so resolving through the
		// call expression would misalign every argument bit by one.
		argOffset := 0
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			argOffset = 1
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if leaks.mask&1 != 0 {
					ft.noteSinkVia(sel.X.Pos(), ft.exprMask(sel.X), callee, leaks.sink)
				}
			}
		}
		for i, a := range call.Args {
			bit := uint64(1) << uint(i+argOffset)
			if leaks.mask&bit != 0 {
				ft.noteSinkVia(a.Pos(), ft.exprMask(a), callee, leaks.sink)
			}
		}
	}
}

func (ft *funcTaint) noteSinkVia(pos token.Pos, m uint64, callee *types.Func, sink string) {
	if m&kfSecretBit != 0 {
		ft.reportf(pos, "secret key material flows into %s, which passes it to %s", callee.Name(), sink)
		return
	}
	if bits := m &^ kfSecretBit; bits != 0 {
		if ft.leak.mask|bits != ft.leak.mask {
			ft.leak.mask |= bits
			if ft.leak.sink == "" {
				ft.leak.sink = sink
			}
			if keyFlowDebug != nil {
				keyFlowDebug(ft.fn.Name.Name, ft.st.mp.Fset.Position(pos), bits, "via "+callee.Name()+" -> "+sink)
			}
		}
	}
}

// checkCompare flags == / != over values that embed secret bytes.
// Pointer, interface, channel and function comparisons compare
// identity, not bytes, and nil checks are always fine.
func (ft *funcTaint) checkCompare(x *ast.BinaryExpr) {
	if isNilExpr(ft.pkg.Info, x.X) || isNilExpr(ft.pkg.Info, x.Y) {
		return
	}
	for _, side := range []ast.Expr{x.X, x.Y} {
		tv, ok := ft.pkg.Info.Types[side]
		if !ok || tv.Type == nil {
			continue
		}
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Chan, *types.Signature, *types.Map, *types.Slice:
			return // identity comparison, no key bytes inspected
		}
	}
	if ft.exprMask(x.X)&kfSecretBit != 0 || ft.exprMask(x.Y)&kfSecretBit != 0 {
		ft.reportf(x.OpPos, "non-constant-time comparison of secret key material; use keys.Key.Equal or subtle.ConstantTimeCompare")
	}
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
