package lint

// cryptorand: the key-material invariant from the PR-3 batched-CSPRNG
// work. Every key the system hands out flows from internal/keys --
// crypto/rand seeding an AES-CTR DRBG, or the explicitly-labelled
// deterministic splitmix64 generator for tests and experiments. A
// stray math/rand (or a DRBG seeded from the wall clock) in a key path
// silently downgrades key material to guessable; this analyzer makes
// that a build failure instead of a review catch.

import (
	"go/ast"
	"strings"
)

// cryptorandRestricted lists the import-path suffixes of key-material
// packages. The module root package (the rekey server and member) is
// restricted too; simulation-side packages (protocol, netsim,
// workload) legitimately use math/rand for loss processes.
var cryptorandRestricted = []string{
	"internal/keys",
	"internal/keytree",
	"internal/gf256",
	"internal/fec",
}

// cryptorandInjectedOnly lists packages whose entropy must arrive
// through an injected keys.Generator rather than a direct crypto/rand
// read: keytree placement strategies draw keys via the TreeOps facade,
// and a private crypto/rand call would bypass the deterministic
// generators that the differential, golden and fuzz suites rely on --
// silently, since the output would still look random. internal/keys
// itself is the one sanctioned crypto/rand consumer.
var cryptorandInjectedOnly = []string{
	"internal/keytree",
}

// Cryptorand forbids math/rand and time-seeded randomness in key-path
// packages. Test files are exempt: deterministic fixtures are the
// point there.
var Cryptorand = &Analyzer{
	Name: "cryptorand",
	Doc:  "key-path packages must draw randomness from the internal/keys CSPRNG, not math/rand or the clock",
	Run:  runCryptorand,
}

func cryptorandInjectedOnlyApplies(path string) bool {
	for _, suf := range cryptorandInjectedOnly {
		if strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}

func cryptorandApplies(path string) bool {
	if !strings.Contains(path, "/") {
		return true // the module root package holds rekey.go and member.go
	}
	for _, suf := range cryptorandRestricted {
		if strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}

func runCryptorand(pass *Pass) error {
	if !cryptorandApplies(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "key-path package imports %s; key material must come from the internal/keys CSPRNG", path)
			}
			if path == "crypto/rand" && cryptorandInjectedOnlyApplies(pass.Path) {
				pass.Reportf(imp.Pos(), "package imports crypto/rand directly; draw entropy from the injected keys.Generator instead")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSeedingCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if usesWallClock(pass, arg) {
					pass.Reportf(call.Pos(), "seeding randomness from the wall clock; key-path seeds must be explicit or come from crypto/rand")
					break
				}
			}
			return true
		})
	}
	return nil
}

// isSeedingCall reports whether the call plants a seed into a
// generator: Seed / NewSource / NewPCG / NewChaCha8 / any
// *Deterministic* constructor.
func isSeedingCall(pass *Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return name == "Seed" || name == "NewSource" || name == "NewPCG" ||
		name == "NewChaCha8" || strings.Contains(name, "Deterministic")
}

// usesWallClock reports whether the expression contains a call to
// time.Now (e.g. time.Now().UnixNano() as a seed).
func usesWallClock(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		if obj := pass.Info.Uses[sel.Sel]; obj != nil && pkgPathOf(obj) == "time" {
			found = true
			return false
		}
		return true
	})
	return found
}
