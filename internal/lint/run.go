package lint

// Run drives the whole suite over package patterns -- the multichecker
// entry point cmd/rekeylint and the driver tests share.

import (
	"fmt"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
)

// Run loads every package matched by patterns (relative to modRoot;
// "./..." walks the tree, "./dir" names one package) and applies the
// analyzers, returning the surviving diagnostics sorted by position.
// Test files are included. Directories named testdata are skipped by
// the ... expansion but can be named explicitly -- that is how the
// driver test points the binary at a known-bad tree.
func Run(modRoot string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = true
	dirs, err := expandPatterns(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		path, err := importPathFor(modRoot, loader.ModPath, dir)
		if err != nil {
			return nil, err
		}
		pkgs, err := loader.Packages(path)
		if err != nil {
			return nil, err
		}
		for _, pkg := range pkgs {
			ds, err := RunAnalyzers(pkg, loader.Fset, analyzers)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
	}
	sortDiags(diags)
	return diags, nil
}

// RunAnalyzers applies the analyzers to one loaded package and filters
// the findings through the package's //rekeylint:ignore directives.
func RunAnalyzers(pkg *Package, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Path:     strings.TrimSuffix(pkg.Path, ".test"),
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return applyIgnores(fset, pkg.Files, diags), nil
}

// expandPatterns resolves package patterns to package directories.
func expandPatterns(modRoot string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		root := filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	matches, _ := filepath.Glob(filepath.Join(dir, "*.go"))
	return len(matches) > 0
}

// importPathFor maps a directory back to its import path in the module.
func importPathFor(modRoot, modPath, dir string) (string, error) {
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return modPath, nil
	}
	if strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: %s is outside the module", dir)
	}
	return modPath + "/" + rel, nil
}
