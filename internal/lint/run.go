package lint

// Run drives the whole suite over package patterns -- the multichecker
// entry point cmd/rekeylint and the driver tests share. RunFull is the
// complete pipeline: per-package analyzers, then module analyzers over
// the loaded closure (keyflow / lockorder / escapes), then one global
// suppression pass that both filters diagnostics through
// //rekeylint:ignore directives and audits the directives themselves
// (missing reasons and stale suppressions are findings).

import (
	"fmt"
	"go/ast"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
)

// A Result is one full lint run: the surviving diagnostics plus the
// suppression audit (every //rekeylint:ignore seen, with usage).
type Result struct {
	Diags []Diagnostic
	// Ignores lists every well-formed //rekeylint:ignore directive in
	// the analyzed packages, sorted by position. Used reports whether
	// the directive suppressed at least one diagnostic in this run.
	Ignores []IgnoreEntry
}

// An IgnoreEntry is one //rekeylint:ignore directive.
type IgnoreEntry struct {
	Pos    token.Position
	Reason string
	Used   bool
}

// Run loads every package matched by patterns (relative to modRoot;
// "./..." walks the tree, "./dir" names one package) and applies the
// per-package analyzers, returning the surviving diagnostics sorted by
// position. A pattern that matches no packages is an error, not a
// silent pass -- a typo'd pattern must not green a CI gate.
func Run(modRoot string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunFull(modRoot, patterns, analyzers, nil)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunFull is Run plus module analyzers and the suppression audit. The
// stale-ignore check only runs when the full default suite is active
// (an ignore aimed at a filtered-out analyzer is not stale).
func RunFull(modRoot string, patterns []string, analyzers []*Analyzer, modAnalyzers []*ModuleAnalyzer) (*Result, error) {
	loader, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = true
	dirs, err := expandPatterns(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	targetSet := make(map[*Package]bool)
	for _, dir := range dirs {
		path, err := importPathFor(modRoot, loader.ModPath, dir)
		if err != nil {
			return nil, err
		}
		pkgs, err := loader.Packages(path)
		if err != nil {
			return nil, err
		}
		for _, pkg := range pkgs {
			if !targetSet[pkg] {
				targetSet[pkg] = true
				targets = append(targets, pkg)
			}
		}
	}

	var raw []Diagnostic
	for _, pkg := range targets {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.Fset,
				Path:     strings.TrimSuffix(pkg.Path, ".test"),
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	if len(modAnalyzers) > 0 {
		mp := &ModulePass{
			Fset:    loader.Fset,
			ModRoot: modRoot,
			ModPath: loader.ModPath,
			All:     loader.Order,
			Targets: targetSet,
			Graph:   BuildCallGraph(loader.Order),
			Facts:   NewFactBase(),
			diags:   &raw,
		}
		for _, ma := range modAnalyzers {
			mp.Analyzer = ma
			if err := ma.Run(mp); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s: %w", ma.Name, err)
			}
		}
	}

	idx := newIgnoreIndex()
	for _, pkg := range targets {
		idx.collect(loader.Fset, pkg.Files, &raw)
	}
	diags := idx.filter(raw)
	if fullSuite(analyzers, modAnalyzers) {
		diags = append(diags, idx.stale()...)
	}
	sortDiags(diags)
	return &Result{Diags: diags, Ignores: idx.sortedEntries()}, nil
}

// fullSuite reports whether the run includes every default analyzer,
// the precondition for calling an unused ignore stale.
func fullSuite(analyzers []*Analyzer, modAnalyzers []*ModuleAnalyzer) bool {
	have := make(map[string]bool)
	for _, a := range analyzers {
		have[a.Name] = true
	}
	for _, ma := range modAnalyzers {
		have[ma.Name] = true
	}
	for _, a := range DefaultAnalyzers() {
		if !have[a.Name] {
			return false
		}
	}
	for _, ma := range DefaultModuleAnalyzers() {
		if !have[ma.Name] {
			return false
		}
	}
	return true
}

// RunAnalyzers applies the analyzers to one loaded package and filters
// the findings through the package's //rekeylint:ignore directives --
// the single-package entry point linttest uses. No stale-ignore audit
// happens here; fixtures run one analyzer at a time.
func RunAnalyzers(pkg *Package, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Path:     strings.TrimSuffix(pkg.Path, ".test"),
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	idx := newIgnoreIndex()
	idx.collect(fset, pkg.Files, &diags)
	return idx.filter(diags), nil
}

// RunModuleAnalyzers applies module analyzers over a loader's full
// package closure, reporting findings only in targets and filtering
// them through the targets' ignore directives -- the single-fixture
// entry point linttest uses for keyflow / lockorder / escapes. The
// loader must already have loaded the targets (All comes from its
// dependency order).
func RunModuleAnalyzers(loader *Loader, modRoot string, targets []*Package, modAnalyzers []*ModuleAnalyzer) ([]Diagnostic, error) {
	targetSet := make(map[*Package]bool, len(targets))
	for _, pkg := range targets {
		targetSet[pkg] = true
	}
	var diags []Diagnostic
	mp := &ModulePass{
		Fset:    loader.Fset,
		ModRoot: modRoot,
		ModPath: loader.ModPath,
		All:     loader.Order,
		Targets: targetSet,
		Graph:   BuildCallGraph(loader.Order),
		Facts:   NewFactBase(),
		diags:   &diags,
	}
	for _, ma := range modAnalyzers {
		mp.Analyzer = ma
		if err := ma.Run(mp); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s: %w", ma.Name, err)
		}
	}
	idx := newIgnoreIndex()
	for _, pkg := range targets {
		idx.collect(loader.Fset, pkg.Files, &diags)
	}
	return idx.filter(diags), nil
}

// --- suppression index ---

// ignoreIndex resolves //rekeylint:ignore directives and tracks which
// of them actually suppressed something.
type ignoreIndex struct {
	entries []*IgnoreEntry
	// byLine maps filename -> line -> entry for the suppression test.
	byLine map[string]map[int]*IgnoreEntry
}

func newIgnoreIndex() *ignoreIndex {
	return &ignoreIndex{byLine: make(map[string]map[int]*IgnoreEntry)}
}

// collect scans the files for ignore directives. A directive without a
// reason is appended to diags as a finding (a reviewed reason is what
// makes a suppression auditable) and does not suppress anything.
func (idx *ignoreIndex) collect(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				pos := fset.Position(c.Pos())
				if m := idx.byLine[pos.Filename]; m != nil && m[pos.Line] != nil {
					continue // same file loaded under package and xtest package
				}
				if reason == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "rekeylint",
						Message:  "rekeylint:ignore requires a reason, e.g. //rekeylint:ignore cold error path",
					})
					continue
				}
				e := &IgnoreEntry{Pos: pos, Reason: reason}
				idx.entries = append(idx.entries, e)
				m := idx.byLine[pos.Filename]
				if m == nil {
					m = make(map[int]*IgnoreEntry)
					idx.byLine[pos.Filename] = m
				}
				m[pos.Line] = e
			}
		}
	}
}

// filter drops diagnostics suppressed by an ignore on the same line or
// the line immediately above, marking the consumed entries used.
func (idx *ignoreIndex) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "rekeylint" { // never suppress the suppression checks
			if m := idx.byLine[d.Pos.Filename]; m != nil {
				if e := m[d.Pos.Line]; e != nil {
					e.Used = true
					continue
				}
				if e := m[d.Pos.Line-1]; e != nil {
					e.Used = true
					continue
				}
			}
		}
		out = append(out, d)
	}
	return out
}

// stale returns a finding for every ignore that suppressed nothing:
// either the underlying issue was fixed (delete the comment) or the
// comment drifted away from the line it shields.
func (idx *ignoreIndex) stale() []Diagnostic {
	var out []Diagnostic
	for _, e := range idx.entries {
		if e.Used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      e.Pos,
			Analyzer: "rekeylint",
			Message:  fmt.Sprintf("stale rekeylint:ignore (suppresses nothing): %s", e.Reason),
		})
	}
	return out
}

func (idx *ignoreIndex) sortedEntries() []IgnoreEntry {
	out := make([]IgnoreEntry, len(idx.entries))
	for i, e := range idx.entries {
		out[i] = *e
	}
	// entries were collected in package order; sort by position for a
	// stable audit listing.
	sortIgnores(out)
	return out
}

// expandPatterns resolves package patterns to package directories. A
// pattern that resolves to nothing (typo'd path, tree with no Go
// files) is an error so the CI gate cannot silently lint nothing.
func expandPatterns(modRoot string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		matched := 0
		recursive := false
		cleaned := pat
		if rest, ok := strings.CutSuffix(cleaned, "/..."); ok {
			recursive = true
			cleaned = rest
			if cleaned == "." || cleaned == "" {
				cleaned = "."
			}
		}
		root := filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(cleaned, "./")))
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
				matched++
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if matched == 0 {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	matches, _ := filepath.Glob(filepath.Join(dir, "*.go"))
	return len(matches) > 0
}

// importPathFor maps a directory back to its import path in the module.
func importPathFor(modRoot, modPath, dir string) (string, error) {
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return modPath, nil
	}
	if strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: %s is outside the module", dir)
	}
	return modPath + "/" + rel, nil
}
