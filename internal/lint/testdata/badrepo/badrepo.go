// Package badrepo is a known-bad module: the driver test points
// cmd/rekeylint at it and expects a non-zero exit. Its module root
// counts as a key-path package, so the math/rand import is a finding,
// and the == sentinel comparison is a second one.
package badrepo

import (
	"errors"
	"math/rand"
)

var ErrBoom = errors.New("badrepo: boom")

func Roll() int { return rand.Intn(6) }

func IsBoom(err error) bool { return err == ErrBoom }
