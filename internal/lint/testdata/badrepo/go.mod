module badrepo

go 1.24
