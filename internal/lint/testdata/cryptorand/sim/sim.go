// Fixture: loaded under repro/internal/sim, which is not a key-path
// package; simulation loss processes may use math/rand freely.
package sim

import (
	"math/rand"
	"time"
)

// Jitter draws from a clock-seeded PRNG; fine outside key paths.
func Jitter() float64 {
	r := rand.New(rand.NewSource(time.Now().UnixNano()))
	return r.Float64()
}
