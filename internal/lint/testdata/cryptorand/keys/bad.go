// Fixture: loaded under repro/internal/keys, so the cryptorand
// analyzer treats it as a key-material package.
package keys

import (
	"math/rand" // want "key-path package imports math/rand"
	"time"
)

// NewGenerator seeds from the wall clock, which makes key material
// guessable; both the import and the seed are findings.
func NewGenerator() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeding randomness from the wall clock"
}

func newDeterministicStream(seed int64) int64 { return seed }

// SeedFromClock smuggles the clock through a deterministic-generator
// constructor.
func SeedFromClock() int64 {
	return newDeterministicStream(time.Now().Unix()) // want "seeding randomness from the wall clock"
}

// SeedExplicit passes a caller-chosen seed; that is the allowed shape.
func SeedExplicit(seed int64) int64 {
	return newDeterministicStream(seed)
}
