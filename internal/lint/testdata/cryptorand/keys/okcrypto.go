// internal/keys is the one sanctioned crypto/rand consumer (it seeds
// the DRBG); the direct-import ban applies only to the injected-only
// packages, so this file is clean.
package keys

import "crypto/rand"

// SeedBytes reads DRBG seed material straight from the OS; allowed
// here and nowhere downstream.
func SeedBytes() []byte {
	b := make([]byte, 32)
	rand.Read(b)
	return b
}
