package keys

import (
	"math/rand"
	"time"
)

// Test files are exempt: deterministic and clock seeds are fine in
// fixtures and benchmarks.
func testHelperSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
