// Fixture: loaded under repro/internal/keytree, the injected-only
// package: placement strategies must draw every byte of entropy from
// the tree's injected keys.Generator, so even crypto/rand -- fine in
// internal/keys itself -- is a finding here.
package keytree

import (
	crand "crypto/rand" // want "imports crypto/rand directly"
	"math/rand"         // want "key-path package imports math/rand"
)

// PrivateKeyBytes bypasses the injected generator; the import above is
// the finding, independent of how the bytes are used.
func PrivateKeyBytes() []byte {
	b := make([]byte, 16)
	crand.Read(b)
	return b
}

// ShuffledOrder uses math/rand for placement order, which both breaks
// determinism and is banned in key-path packages.
func ShuffledOrder(n int) []int {
	out := rand.Perm(n)
	return out
}
