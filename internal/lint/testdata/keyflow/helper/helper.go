// Fixture: a dependency package whose helpers forward their arguments
// to fmt sinks. The keyflow facts layer must record the leak here and
// surface it at call sites in the importing fixture package -- the
// interprocedural half of the analyzer.
package helper

import "fmt"

// Describe formats its argument bytes into an error: any caller
// passing secret material leaks it, two packages away from the sink.
func Describe(b []byte) error {
	return fmt.Errorf("helper: payload %x", b)
}

// Count only reads the length, which is public.
func Count(b []byte) error {
	return fmt.Errorf("helper: %d bytes", len(b))
}
