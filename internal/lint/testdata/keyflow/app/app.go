// Fixture: the consuming package for the keyflow analyzer -- direct
// sinks, variable-time comparisons, sanitizers, declassification, and
// interprocedural leaks through the helper fixture package.
package app

import (
	"bytes"
	"crypto/subtle"
	"fmt"

	"repro/internal/helper"
	"repro/internal/keys"
)

// Direct flows into fmt sinks.
func direct(k keys.Key) {
	fmt.Printf("key: %v\n", k)    // want "secret key material flows into fmt.Printf"
	fmt.Println(k[:])             // want "secret key material flows into fmt.Println"
	_ = fmt.Sprintf("%x", k[:4])  // want "secret key material flows into fmt.Sprintf"
	fmt.Printf("len: %d", len(k)) // a length is public: no finding
	fmt.Println(k.String())       // declassified fingerprint: no finding
}

// Derived values keep the taint: copies, slices, hex blobs.
func derived(k keys.Key) {
	cp := make([]byte, len(k))
	copy(cp, k[:])
	buf := append([]byte("prefix"), cp...)
	panic(fmt.Sprint(buf)) // want "secret key material flows into fmt.Sprint" "secret key material flows into panic"
}

// Comparisons must be constant-time.
func compare(a, b keys.Key, raw []byte) bool {
	if a == b { // want "non-constant-time comparison of secret key material"
		return true
	}
	if bytes.Equal(a[:], raw) { // want "bytes.Equal on secret key material is not constant-time"
		return true
	}
	switch a { // want "switch on secret value is a non-constant-time comparison"
	case b:
		return true
	}
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1 && a.Equal(b) // sanctioned: no finding
}

// Secret-keyed maps hash key bytes in variable time and retain them.
func index(m map[keys.Key]int, k keys.Key) int {
	return m[k] // want "map keyed by secret type"
}

// Interprocedural: the sink is in the helper package; the finding is
// at this call site, driven by the cross-package leaks fact.
func viaHelper(k keys.Key) {
	_ = helper.Describe(k[:]) // want "secret key material flows into Describe, which passes it to fmt.Errorf"
	_ = helper.Count(k[:])    // only the public length leaks: no finding
}

// Intra-package interprocedural: the local fixpoint must find the
// chain before the reporting pass.
func logLocal(b []byte) error {
	return fmt.Errorf("app: %x", b)
}

func viaLocal(k keys.Key) {
	_ = logLocal(k[:]) // want "secret key material flows into logLocal, which passes it to fmt.Errorf"
}

// A reviewed declassified path is exempt end to end.
//
//rekeylint:declassify fixture: renders a reviewed audit line
func audit(k keys.Key) string {
	return fmt.Sprintf("audit %x", k[:])
}

func useAudit(k keys.Key) {
	fmt.Println(audit(k)) // declassified result is public: no finding
}
