// Fixture: a stand-in for the real key package, loaded under
// repro/internal/keys so the keyflow analyzer's secret-type roots
// (keys.Key and friends) resolve against it.
package keys

import "crypto/subtle"

// Key is the fixture secret type.
type Key [16]byte

// Equal is the sanctioned constant-time comparator.
func (k Key) Equal(other Key) bool {
	return subtle.ConstantTimeCompare(k[:], other[:]) == 1
}

// String renders a reviewed public fingerprint, not key bytes.
//
//rekeylint:declassify fixture fingerprint, never raw key bytes
func (k Key) String() string {
	return "key-fingerprint"
}
