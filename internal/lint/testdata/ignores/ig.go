// Fixture for the suppression mechanism itself: an ignore without a
// reason is a finding of its own and suppresses nothing.
package ig

//rekeylint:hotpath
func grow(dst []byte, b byte) []byte {
	//rekeylint:ignore
	return append(dst, b)
}
