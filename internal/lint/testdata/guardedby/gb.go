// Fixture for guardedby: `// guarded by <mu>` fields are only touched
// under that mutex, in *Locked helpers, or on freshly-built values.
package gb

import "sync"

// Box mirrors the Server/Member pattern.
type Box struct {
	mu sync.Mutex
	// count is guarded by mu
	count int
	seq   uint64 // guarded by mu
	label string
}

// Inc locks before touching: the required shape.
func (b *Box) Inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.count++
}

// Peek reads a guarded field with no lock.
func (b *Box) Peek() int {
	return b.count // want "count is guarded by mu"
}

// bumpLocked declares via its suffix that the caller holds mu.
func (b *Box) bumpLocked() {
	b.count++
	b.seq++
}

// New touches guarded fields of a value it just built; nothing else
// can see the value yet, so no lock is needed.
func New(label string) *Box {
	b := &Box{label: label}
	b.count = 1
	b.seq = 1
	return b
}

// describe has neither lock nor Locked suffix.
func describe(b *Box) (int, uint64) {
	return b.count, b.seq // want "count is guarded by mu" "seq is guarded by mu"
}

// RBox shows that RLock satisfies the check too.
type RBox struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

func (r *RBox) Get() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.val
}

// Two shows that locking the wrong mutex does not satisfy the
// annotation.
type Two struct {
	amu sync.Mutex
	bmu sync.Mutex
	a   int // guarded by amu
}

func (t *Two) Wrong() int {
	t.bmu.Lock()
	defer t.bmu.Unlock()
	return t.a // want "a is guarded by amu"
}
