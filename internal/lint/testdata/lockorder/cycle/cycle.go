// Fixture: two lock classes acquired in both orders -- the canonical
// deadlock shape. The lockorder analyzer must report the cycle at the
// acquisition edges.
package cycle

import "sync"

type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

func (a *A) Forward() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.mu.Lock() // want "lock-order cycle"
	a.b.mu.Unlock()
}

func (b *B) Backward() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.a.mu.Lock() // want "lock-order cycle"
	b.a.mu.Unlock()
}
