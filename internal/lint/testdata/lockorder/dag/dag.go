// Fixture: a module whose mutex acquisitions form a consistent DAG --
// outer is always taken before inner, including through a call -- so
// the lockorder analyzer must stay silent.
package dag

import "sync"

type Outer struct {
	mu    sync.Mutex
	inner *Inner
}

type Inner struct {
	mu sync.RWMutex
	n  int
}

// Nested acquisition in one canonical direction.
func (o *Outer) Bump() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.mu.Lock()
	o.inner.n++
	o.inner.mu.Unlock()
}

// The same direction through a call edge: Bump's callee acquires the
// inner lock while the outer is held.
func (o *Outer) BumpVia() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.add(1)
}

func (i *Inner) add(d int) {
	i.mu.Lock()
	i.n += d
	i.mu.Unlock()
}

// Sequential, never nested: release before taking the other.
func (o *Outer) Sequential() int {
	o.mu.Lock()
	o.mu.Unlock()
	o.inner.mu.RLock()
	defer o.inner.mu.RUnlock()
	return o.inner.n
}
