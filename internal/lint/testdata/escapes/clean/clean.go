// Fixture: hotpath functions the escapes analyzer must accept -- no
// allocation at all, a constant-string panic (interned, not a runtime
// allocation), and a leaking parameter (the caller's problem, not an
// allocation in this body).
package clean

// Sum is allocation-free.
//
//rekeylint:hotpath
func Sum(b []byte) int {
	s := 0
	for _, v := range b {
		s += int(v)
	}
	return s
}

// Guard panics with a constant string: the compiler reports the
// interned string "escaping", but nothing is allocated at run time.
//
//rekeylint:hotpath
func Guard(n int) int {
	if n < 0 {
		panic("clean: negative length")
	}
	return n
}

// Passthrough leaks its parameter to the caller; the annotated body
// itself performs no allocation.
//
//rekeylint:hotpath
func Passthrough(b []byte) []byte {
	return b[:len(b):len(b)]
}
