// Fixture: a //rekeylint:hotpath function that heap-allocates. The
// escapes analyzer compiles this directory with -gcflags=-m=2 and must
// attribute the allocation to the annotated body.
package hot

// Alloc returns a fresh buffer every call: the make escapes into the
// caller, which is exactly what a hot path must not do.
//
//rekeylint:hotpath
func Alloc(n int) []byte {
	return make([]byte, n) // want "heap allocation in hot path Alloc"
}

// ColdAlloc allocates identically but is not annotated: no finding.
func ColdAlloc(n int) []byte {
	return make([]byte, n)
}
