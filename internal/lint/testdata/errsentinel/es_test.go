package es

// errsentinel deliberately covers test files: the last == holdouts in
// the repo hid in tests.
func checkStale(err error) bool {
	return err == ErrStale // want "ErrStale is compared with =="
}
