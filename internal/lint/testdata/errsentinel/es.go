// Fixture for errsentinel: sentinels are returned wrapped, so direct
// comparisons silently break.
package es

import (
	"errors"
	"fmt"
)

// ErrStale and ErrBadPacket mirror the repo's wrapped sentinels.
var (
	ErrStale     = errors.New("es: stale")
	ErrBadPacket = errors.New("es: bad packet")
)

func do(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: n=%d", ErrStale, n)
	}
	return nil
}

// IsStale uses ==, which misses the wrapped form do returns.
func IsStale(err error) bool {
	return err == ErrStale // want "ErrStale is compared with =="
}

// NotStale uses != with the sentinel on the left.
func NotStale(err error) bool {
	return ErrStale != err // want "ErrStale is compared with !="
}

// Classify switches on the error, which compares cases with ==.
func Classify(err error) int {
	switch err {
	case ErrStale: // want "switch case compares ErrStale"
		return 1
	case ErrBadPacket: // want "switch case compares ErrBadPacket"
		return 2
	}
	return 0
}

// OK is the required shape.
func OK(err error) bool {
	return errors.Is(err, ErrStale)
}

// Happened compares to nil, which is not a sentinel comparison.
func Happened(err error) bool {
	return err != nil
}

// local Err-named variables are not sentinels.
func local() bool {
	ErrTmp := errors.New("tmp")
	return ErrTmp == nil
}
