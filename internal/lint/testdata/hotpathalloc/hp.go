// Fixture for hotpathalloc: only //rekeylint:hotpath bodies are
// checked, and each hidden-allocation construct is a finding.
package hp

import "fmt"

func sink(v any) { _ = v }

//rekeylint:hotpath
func hotAppend(dst, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, b) // want "append in hot path"
	}
	return dst
}

//rekeylint:hotpath
func hotLiterals(n int) int {
	m := map[int]int{n: n} // want "map literal in hot path"
	s := []int{n}          // want "slice literal in hot path"
	return m[n] + s[0]
}

//rekeylint:hotpath
func hotClosure(n int) int {
	f := func() int { return n } // want "closure in hot path"
	return f()
}

//rekeylint:hotpath
func hotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf in hot path allocates"
}

//rekeylint:hotpath
func hotBox(n int) {
	sink(n) // want "argument boxes into interface parameter"
}

//rekeylint:hotpath
func hotConvert(n int) any {
	return any(n) // want "conversion to interface type"
}

//rekeylint:hotpath
func hotVariadicPassThrough(vs []any) {
	variadic(vs...) // s... passes the existing slice; no per-element boxing
}

func variadic(vs ...any) { _ = vs }

// hotOK shows the allowed shapes: copies into pre-sized buffers,
// builtin calls, and panics with static messages.
//
//rekeylint:hotpath
func hotOK(dst, src []byte) int {
	n := copy(dst, src)
	if len(dst) == 0 {
		panic("hp: empty dst")
	}
	return n
}

// hotIgnored carries a reviewed suppression; the finding is dropped.
//
//rekeylint:hotpath
func hotIgnored(dst []byte, b byte) []byte {
	return append(dst, b) //rekeylint:ignore caller pre-sizes dst capacity
}

// coldPath is unannotated; the same constructs are fine here.
func coldPath(n int) string {
	s := []int{n}
	return fmt.Sprintf("%v", append(s, n))
}
