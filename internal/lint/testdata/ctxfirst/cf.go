// Fixture for ctxfirst: context placement and the blocking-API rule.
package cf

import (
	"context"
	"sync"
	"time"
)

// Serve blocks but takes ctx first: the required shape.
func Serve(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
	case <-ch:
	}
}

// Publish misplaces its context (wrong anywhere, exported or not).
func Publish(name string, ctx context.Context) { // want "context.Context must be the first parameter"
	_ = name
	_ = ctx
}

// Fanout spawns goroutines and waits with no way to cancel.
func Fanout(n int) { // want "does not take a context.Context first parameter"
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { wg.Done() }()
	}
	wg.Wait()
}

// Retry sleeps, which also demands a context.
func Retry() { // want "does not take a context.Context first parameter"
	time.Sleep(time.Millisecond)
}

// drain is unexported: blocking internals are the caller's concern.
func drain(ch chan int) {
	for range ch {
	}
}

// Conn.Close blocks but io.Closer fixes that signature; exempt.
type Conn struct{ done chan struct{} }

func (c *Conn) Close() error {
	<-c.done
	return nil
}

// Sum is exported but never blocks in its own body; no context needed.
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Spawn only defines a closure that would block; the closure may never
// run in this call, so the function itself is not flagged.
func Spawn() func() {
	return func() { time.Sleep(time.Millisecond) }
}
