// Fixture: code outside internal/obs must treat a registry pointer as
// possibly nil and only go through its (nil-safe) methods.
package caller

import "repro/internal/obs"

// Count calls methods; methods carry their own nil guards.
func Count(r *obs.Registry) {
	r.Inc("count")
}

// Clone dereferences a possibly-nil pointer to copy the struct.
func Clone(r *obs.Registry) obs.Registry {
	return *r // want "dereference of possibly-nil registry"
}

// Toggle pokes a field directly, bypassing the guard.
func Toggle(r *obs.Registry) {
	r.Debug = true // want "field access on possibly-nil registry"
}
