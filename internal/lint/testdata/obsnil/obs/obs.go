// Fixture: a miniature of internal/obs. Loaded under
// repro/internal/obs so the analyzer applies the in-package rules.
package obs

import "sync"

// Registry mirrors the real registry: every method must stay safe on a
// nil receiver so unobserved pipelines pay only the nil check.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	// Debug is exported only so the caller fixture can exercise the
	// outside-the-package field-access check.
	Debug bool
}

// Add guards, then touches fields: the required shape.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.counters == nil {
		r.counters = make(map[string]int64)
	}
	r.counters[name] += delta
	r.mu.Unlock()
}

// Inc forwards to a guarded method and touches no fields itself; it
// needs no guard of its own.
func (r *Registry) Inc(name string) {
	r.Add(name, 1)
}

// Reset touches fields with no guard.
func (r *Registry) Reset(name string) { // want "touches receiver fields without the leading"
	r.mu.Lock()
	delete(r.counters, name)
	r.mu.Unlock()
}

// Size uses a value receiver, which breaks the nil contract outright.
func (r Registry) Size() int { // want "value receiver"
	return len(r.counters)
}
