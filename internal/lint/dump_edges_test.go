package lint

import (
	"fmt"
	"go/token"
	"os"
	"testing"
)

func TestDumpLockEdges(t *testing.T) {
	if os.Getenv("DUMP_EDGES") == "" {
		t.Skip("set DUMP_EDGES=1")
	}
	lockOrderDebug = func(from, to, via string, pos token.Position) {
		fmt.Printf("EDGE %-28s -> %-28s via=%-16s %s:%d\n", from, to, via, pos.Filename, pos.Line)
	}
	defer func() { lockOrderDebug = nil }()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunFull(root, []string{"./..."}, nil, []*ModuleAnalyzer{LockOrder})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDumpKeyFlowFacts(t *testing.T) {
	if os.Getenv("DUMP_FACTS") == "" {
		t.Skip("set DUMP_FACTS=1")
	}
	keyFlowDebug = func(fn string, pos token.Position, bits uint64, sink string) {
		fmt.Printf("LEAK %-24s bits=%#x %-40s %s:%d\n", fn, bits, sink, pos.Filename, pos.Line)
	}
	defer func() { keyFlowDebug = nil }()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunFull(root, []string{"./..."}, nil, []*ModuleAnalyzer{KeyFlow})
	if err != nil {
		t.Fatal(err)
	}
}
