package lint

// callgraph.go builds the static call graph the module analyzers walk.
// Resolution is deliberately conservative and cheap: a call site is an
// edge only when the callee is statically known -- a package-level
// function, a method called on a concrete receiver, or a method value
// whose object go/types resolves. Calls through interface values and
// closure-typed variables stay unresolved (lockorder and keyflow note
// this in their docs: they prove the static structure, the race
// detector and runtime gates cover the dynamic remainder).

import (
	"go/ast"
	"go/types"
)

// A FuncNode is one declared function or method of the module.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	File *ast.File
}

// A CallGraph maps every module function to its declaration and its
// statically-resolved callees.
type CallGraph struct {
	// Nodes indexes module functions (and methods) by object. Standard
	// library callees appear in Calls but have no node.
	Nodes map[*types.Func]*FuncNode
	// Calls lists each function's statically-resolved callees, in
	// source order, duplicates preserved.
	Calls map[*types.Func][]*types.Func
}

// BuildCallGraph constructs the call graph over the given packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes: make(map[*types.Func]*FuncNode),
		Calls: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[obj] = &FuncNode{Obj: obj, Decl: fn, Pkg: pkg, File: f}
				if fn.Body == nil {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeOf(pkg.Info, call); callee != nil {
						g.Calls[obj] = append(g.Calls[obj], callee)
					}
					return true
				})
			}
		}
	}
	return g
}

// CalleeOf resolves a call expression to its static callee, or nil for
// dynamic calls (interface methods resolve to the interface's method
// object, which has no body in the graph -- callers treat that the
// same as unresolved).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
