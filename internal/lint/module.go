package lint

// This file is the module-wide half of the rekeylint framework. The
// original analyzers (lint.go, run.go) are intraprocedural: one
// type-checked package in, diagnostics out. The keyflow, lockorder and
// escapes analyzers need to see the whole module at once -- a secret
// key leaks through a helper in another package, a lock cycle spans
// rekey.Server and internal/shard -- so they run as ModuleAnalyzers
// over a ModulePass that carries every loaded package in dependency
// order, a static call graph (callgraph.go) and a cross-package facts
// layer.
//
// Facts follow the golang.org/x/tools/go/analysis model in miniature:
// while analyzing package P, an analyzer may attach a named fact to any
// object P exports (or uses internally); when a dependent package Q is
// analyzed later, facts attached to the objects Q imports are visible.
// Because Loader.Order is topologically sorted dependencies-first, a
// single forward walk gives every package the facts of everything it
// imports -- no fixpoint across packages is needed (within a package,
// analyzers iterate locally as required).

import (
	"fmt"
	"go/token"
	"go/types"
)

// A ModuleAnalyzer is one named check over the whole loaded module.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run inspects the module behind mp and reports findings via
	// mp.Reportf / mp.ReportAt. A returned error aborts the lint run.
	Run func(mp *ModulePass) error
}

// A ModulePass carries the whole loaded module through one module
// analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Fset     *token.FileSet
	ModRoot  string
	ModPath  string

	// All lists every module package the loader type-checked --
	// analysis targets and their module-internal dependencies --
	// topologically sorted dependencies-first.
	All []*Package
	// Targets is the subset of All matched by the run's patterns.
	// Analyzers compute facts over All but report findings only in
	// targets, mirroring how a partial `rekeylint ./internal/shard`
	// run should not complain about unrelated packages.
	Targets map[*Package]bool

	// Graph is the module's static call graph.
	Graph *CallGraph
	// Facts is the cross-package fact store, shared by all module
	// analyzers in one run (names are prefixed per analyzer).
	Facts *FactBase

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	mp.ReportAt(mp.Fset.Position(pos), format, args...)
}

// ReportAt records a finding at an already-resolved position. The
// escapes analyzer uses it: compiler diagnostics arrive as file:line
// strings, not token.Pos values inside the FileSet.
func (mp *ModulePass) ReportAt(pos token.Position, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      pos,
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFilename reports whether the file path names a _test.go file.
func IsTestFilename(name string) bool {
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// A FactBase stores per-object facts keyed by (object, fact name).
type FactBase struct {
	m map[factKey]any
}

type factKey struct {
	obj  types.Object
	name string
}

// NewFactBase returns an empty fact store.
func NewFactBase() *FactBase { return &FactBase{m: make(map[factKey]any)} }

// Set attaches fact name=v to obj, overwriting any previous value.
func (fb *FactBase) Set(obj types.Object, name string, v any) {
	fb.m[factKey{obj, name}] = v
}

// Get returns the fact name attached to obj, if any.
func (fb *FactBase) Get(obj types.Object, name string) (any, bool) {
	v, ok := fb.m[factKey{obj, name}]
	return v, ok
}

// DefaultModuleAnalyzers returns the module-wide rekeylint suite; with
// DefaultAnalyzers it forms the full CI gate.
func DefaultModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		KeyFlow,
		LockOrder,
		Escapes,
	}
}
