package protocol

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/workload"
)

// session builds a generator, star network and session for an N-user
// group with J=0, L=n/4 churn (the paper's default workload).
func session(t testing.TB, cfg Config, n int, star netsim.StarConfig, seed uint64) (*workload.Generator, *Session) {
	t.Helper()
	gen, err := workload.NewGenerator(n, 4, cfg.K, seed)
	if err != nil {
		t.Fatal(err)
	}
	star.N = gen.PostBatchUsers(0, n/4)
	star.Seed = seed
	net, err := netsim.NewStar(star)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg, net, seed)
	if err != nil {
		t.Fatal(err)
	}
	return gen, s
}

func lossless() netsim.StarConfig {
	return netsim.StarConfig{Alpha: 0, PHigh: 0, PLow: 0, PSource: 0}
}

func paperStar() netsim.StarConfig {
	return netsim.StarConfig{Alpha: 0.2, PHigh: 0.2, PLow: 0.02, PSource: 0.01}
}

func next(t testing.TB, gen *workload.Generator, j, l int) *Message {
	t.Helper()
	res, plan, err := gen.Batch(j, l)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := BuildMessage(res, plan, gen.K(), gen.Degree())
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func run(t testing.TB, gen *workload.Generator, s *Session, n int) *Metrics {
	t.Helper()
	met, err := s.Run(next(t, gen, 0, n/4))
	if err != nil {
		t.Fatal(err)
	}
	return met
}

func TestLosslessOneRound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveRho = false
	gen, s := session(t, cfg, 512, lossless(), 1)
	met := run(t, gen, s, 512)
	if !met.AllDone {
		t.Fatal("not all users recovered on a lossless network")
	}
	if met.MulticastRounds != 1 {
		t.Fatalf("took %d rounds, want 1", met.MulticastRounds)
	}
	if met.Round1NACKs != 0 {
		t.Fatalf("%d NACKs on a lossless network", met.Round1NACKs)
	}
	if met.UsrSent != 0 {
		t.Fatalf("%d USR packets sent", met.UsrSent)
	}
	// With rho=1 the only overhead is last-block duplication.
	if met.ParitySent != 0 {
		t.Fatalf("parity sent with rho=1 and no loss: %d", met.ParitySent)
	}
	if met.MulticastSent != met.EncPackets+met.DupSent {
		t.Fatalf("sent %d, want %d ENC + %d dup", met.MulticastSent, met.EncPackets, met.DupSent)
	}
	if met.MissedDeadline != 0 {
		t.Fatalf("%d deadline misses", met.MissedDeadline)
	}
	if got := met.UserRoundHist[1]; got != met.NeededUsers {
		t.Fatalf("%d of %d users finished in round 1", got, met.NeededUsers)
	}
}

func TestLossyMulticastOnlyCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveRho = false
	cfg.MaxMulticastRounds = 0 // multicast until done
	cfg.DeadlineRounds = 0
	gen, s := session(t, cfg, 1024, paperStar(), 2)
	met := run(t, gen, s, 1024)
	if !met.AllDone {
		t.Fatal("multicast-only run did not complete")
	}
	if met.MulticastRounds < 2 {
		t.Fatalf("lossy run finished in %d rounds; suspicious", met.MulticastRounds)
	}
	if met.Round1NACKs == 0 {
		t.Fatal("no NACKs despite 20% high-loss users")
	}
	if ov := met.BandwidthOverhead(); ov <= 1.0 || ov > 5 {
		t.Fatalf("bandwidth overhead %.2f out of plausible range", ov)
	}
	if met.UsrSent != 0 {
		t.Fatal("unicast used in multicast-only mode")
	}
}

func TestProactivityReducesNACKs(t *testing.T) {
	// The paper's Fig. 9: first-round NACKs fall steeply with rho.
	nacks := map[float64]int{}
	for _, rho := range []float64{1.0, 1.6, 2.2} {
		cfg := DefaultConfig()
		cfg.AdaptiveRho = false
		cfg.InitialRho = rho
		cfg.MaxMulticastRounds = 0
		cfg.DeadlineRounds = 0
		gen, s := session(t, cfg, 2048, paperStar(), 3)
		total := 0
		for i := 0; i < 3; i++ {
			total += run(t, gen, s, 2048).Round1NACKs
		}
		nacks[rho] = total
	}
	if !(nacks[1.0] > nacks[1.6] && nacks[1.6] > nacks[2.2]) {
		t.Fatalf("NACKs not decreasing in rho: %v", nacks)
	}
	if nacks[1.0] < 10*max(nacks[2.2], 1) {
		t.Fatalf("NACK drop not steep: %v", nacks)
	}
}

func TestUnicastCompletesStragglers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveRho = false
	cfg.MaxMulticastRounds = 2
	gen, s := session(t, cfg, 2048, paperStar(), 4)
	met := run(t, gen, s, 2048)
	if !met.AllDone {
		t.Fatal("run with unicast did not complete")
	}
	if met.MulticastRounds > 2 {
		t.Fatalf("ran %d multicast rounds, cap 2", met.MulticastRounds)
	}
	// With rho=1 on a lossy network, someone always needs unicast.
	if met.UsrSent == 0 {
		t.Fatal("no USR packets despite unfinished users after 2 rounds")
	}
	// Every needed user is accounted for in the finishing histogram.
	total := 0
	for _, c := range met.UserRoundHist {
		total += c
	}
	if total != met.NeededUsers {
		t.Fatalf("histogram covers %d of %d users", total, met.NeededUsers)
	}
}

func TestAdjustRhoConvergesToTarget(t *testing.T) {
	// Fig. 12/13: rho settles within a few messages and first-round
	// NACKs fluctuate around numNACK.
	for _, initRho := range []float64{1.0, 2.0} {
		cfg := DefaultConfig()
		cfg.InitialRho = initRho
		cfg.NumNACK = 20
		cfg.MaxMulticastRounds = 0
		cfg.DeadlineRounds = 0
		gen, s := session(t, cfg, 4096, paperStar(), 5)
		var tail []int
		for i := 0; i < 15; i++ {
			met := run(t, gen, s, 4096)
			if i >= 5 {
				tail = append(tail, met.Round1NACKs)
			}
		}
		sum := 0
		for _, v := range tail {
			sum += v
		}
		avg := float64(sum) / float64(len(tail))
		if avg < 2 || avg > 60 {
			t.Fatalf("initRho=%v: settled NACK average %.1f, want near 20", initRho, avg)
		}
	}
}

func TestAdjustRhoStableValuesAgree(t *testing.T) {
	// Starting from rho=1 and rho=2 must converge to similar rho.
	settle := func(initRho float64) float64 {
		cfg := DefaultConfig()
		cfg.InitialRho = initRho
		cfg.MaxMulticastRounds = 0
		cfg.DeadlineRounds = 0
		gen, s := session(t, cfg, 4096, paperStar(), 6)
		for i := 0; i < 12; i++ {
			run(t, gen, s, 4096)
		}
		return s.Rho()
	}
	a, b := settle(1.0), settle(2.0)
	if diff := a - b; diff > 0.3 || diff < -0.3 {
		t.Fatalf("stable rho differs: %v vs %v", a, b)
	}
}

func TestNumNACKAdaptsDownOnMisses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumNACK = 200
	cfg.MaxNACK = 200
	cfg.AdaptNumNACK = true
	cfg.DeadlineRounds = 2
	cfg.MaxMulticastRounds = 2
	gen, s := session(t, cfg, 2048, paperStar(), 7)
	start := s.NumNACK()
	missesEarly := 0
	for i := 0; i < 10; i++ {
		met := run(t, gen, s, 2048)
		if i < 3 {
			missesEarly += met.MissedDeadline
		}
	}
	if missesEarly == 0 {
		t.Skip("no early misses; cannot exercise adaptation")
	}
	if s.NumNACK() >= start {
		t.Fatalf("numNACK did not decrease: %d -> %d", start, s.NumNACK())
	}
}

func TestDeterministicForSeed(t *testing.T) {
	runOnce := func() []int {
		cfg := DefaultConfig()
		gen, s := session(t, cfg, 1024, paperStar(), 42)
		var out []int
		for i := 0; i < 5; i++ {
			met := run(t, gen, s, 1024)
			out = append(out, met.Round1NACKs, met.MulticastSent, met.UsrSent)
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// Results must not depend on the parallel fan-out width.
	runWith := func(workers int) []int {
		cfg := DefaultConfig()
		cfg.Workers = workers
		gen, s := session(t, cfg, 1024, paperStar(), 43)
		var out []int
		for i := 0; i < 3; i++ {
			met := run(t, gen, s, 1024)
			out = append(out, met.Round1NACKs, met.MulticastSent, met.UsrSent, met.MissedDeadline)
		}
		return out
	}
	a, b := runWith(1), runWith(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker counts change results at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig()
	gen, s := session(t, cfg, 256, lossless(), 8)
	msg := next(t, gen, 0, 64)
	msg.UserPkt = msg.UserPkt[:10] // wrong population
	if _, err := s.Run(msg); err == nil {
		t.Fatal("population mismatch accepted")
	}
	badK := DefaultConfig()
	badK.K = 0
	if _, err := NewSession(badK, nil, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad := DefaultConfig()
	bad.AdaptNumNACK = true
	bad.DeadlineRounds = 0
	if _, err := NewSession(bad, nil, 1); err == nil {
		t.Fatal("AdaptNumNACK without deadline accepted")
	}
}

func TestEarlyUnicastSwitches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveRho = false
	cfg.MaxMulticastRounds = 10
	cfg.EarlyUnicast = true
	cfg.DeadlineRounds = 0
	gen, s := session(t, cfg, 2048, paperStar(), 9)
	met := run(t, gen, s, 2048)
	if !met.AllDone {
		t.Fatal("run did not complete")
	}
	// With few stragglers and small USR packets, the switch happens well
	// before the 10-round cap.
	if met.MulticastRounds >= 10 && met.UsrSent == 0 {
		t.Fatalf("early unicast never triggered: %d rounds, %d USR", met.MulticastRounds, met.UsrSent)
	}
}

func TestEmptyMessage(t *testing.T) {
	cfg := DefaultConfig()
	gen, err := workload.NewGenerator(64, 4, cfg.K, 10)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.NewStar(netsim.StarConfig{N: 64, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg, net, 10)
	if err != nil {
		t.Fatal(err)
	}
	met, err := s.Run(next(t, gen, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !met.AllDone || met.MulticastSent != 0 {
		t.Fatalf("empty message sent %d packets", met.MulticastSent)
	}
}

func BenchmarkSessionN4096(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MaxMulticastRounds = 0
	cfg.DeadlineRounds = 0
	gen, s := session(b, cfg, 4096, paperStar(), 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(b, gen, s, 4096)
	}
}
