package protocol

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/blockplan"
	"repro/internal/fec"
)

func makeReqs(rng *rand.Rand, blocks, k, plen int, rho float64) []BlockParity {
	pro := blockplan.ProactiveParity(k, rho)
	reqs := make([]BlockParity, blocks)
	for b := range reqs {
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, plen)
			for j := range data[i] {
				data[i][j] = byte(rng.Uint32())
			}
		}
		reqs[b] = BlockParity{Data: data, First: 0, N: pro}
	}
	return reqs
}

// TestEncodeBlocksDeterministic: for several (blocks, k, rho)
// combinations, every worker count must produce output byte-identical
// to the serial path (workers=1), which itself must match the plain
// per-block Encode.
func TestEncodeBlocksDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	cases := []struct {
		blocks, k int
		rho       float64
	}{
		{1, 10, 1.5},
		{3, 1, 2.0},
		{7, 5, 1.2},
		{16, 10, 1.5},
		{33, 20, 1.1},
	}
	for _, tc := range cases {
		c, err := fec.NewCoder(tc.k, fec.MaxShards-tc.k)
		if err != nil {
			t.Fatal(err)
		}
		reqs := makeReqs(rng, tc.blocks, tc.k, 256, tc.rho)
		serial, err := EncodeBlocks(context.Background(), c, reqs, 1)
		if err != nil {
			t.Fatalf("serial EncodeBlocks(%+v): %v", tc, err)
		}
		for b, req := range reqs {
			want, err := c.Encode(req.Data, req.First, req.N)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !bytes.Equal(serial[b][i], want[i]) {
					t.Fatalf("serial pool output differs from Encode at block %d parity %d", b, i)
				}
			}
		}
		for _, workers := range []int{0, 2, 3, 4, 8, 64} {
			got, err := EncodeBlocks(context.Background(), c, reqs, workers)
			if err != nil {
				t.Fatalf("EncodeBlocks(workers=%d): %v", workers, err)
			}
			for b := range serial {
				if len(got[b]) != len(serial[b]) {
					t.Fatalf("workers=%d block %d: %d parity packets, want %d", workers, b, len(got[b]), len(serial[b]))
				}
				for i := range serial[b] {
					if !bytes.Equal(got[b][i], serial[b][i]) {
						t.Fatalf("workers=%d output differs from serial at block %d parity %d", workers, b, i)
					}
				}
			}
		}
	}
}

func TestEncodeBlocksEmptyAndErrors(t *testing.T) {
	c, _ := fec.NewCoder(4, 4)
	out, err := EncodeBlocks(context.Background(), c, nil, 4)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty request list: out=%v err=%v", out, err)
	}
	rng := rand.New(rand.NewPCG(12, 12))
	reqs := makeReqs(rng, 4, 4, 64, 1.5)
	reqs[2].N = 99 // out of range for maxParity=4
	if _, err := EncodeBlocks(context.Background(), c, reqs, 2); err == nil {
		t.Fatal("out-of-range parity request did not error")
	}
	reqs[2].N = 2
	reqs[2].Data = reqs[2].Data[:3] // short block
	if _, err := EncodeBlocks(context.Background(), c, reqs, 2); err == nil {
		t.Fatal("short block did not error")
	}
}

// TestEncodeBlocksSharedCoderConcurrent runs several concurrent
// "rekey messages" through one shared Coder, each with its own worker
// fan-out, and checks every message's output against the serial path.
// Run with -race this doubles as the data-race check on the shared
// read-only Coder.
func TestEncodeBlocksSharedCoderConcurrent(t *testing.T) {
	const k = 10
	coder, err := fec.NewCoder(k, fec.MaxShards-k)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 8
	type msg struct {
		reqs []BlockParity
		want [][][]byte
	}
	all := make([]msg, msgs)
	for m := range all {
		rng := rand.New(rand.NewPCG(uint64(m), 99))
		all[m].reqs = makeReqs(rng, 5+m, k, 256, 1.5)
		all[m].want, err = EncodeBlocks(context.Background(), coder, all[m].reqs, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, msgs)
	for m := range all {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			got, err := EncodeBlocks(context.Background(), coder, all[m].reqs, 4)
			if err != nil {
				errc <- err
				return
			}
			for b := range got {
				for i := range got[b] {
					if !bytes.Equal(got[b][i], all[m].want[b][i]) {
						errc <- errMismatch{m, b, i}
						return
					}
				}
			}
		}(m)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type errMismatch struct{ m, b, i int }

func (e errMismatch) Error() string {
	return "concurrent encode mismatch"
}

func BenchmarkEncodeBlocksWorkers(b *testing.B) {
	const blocks, k, plen = 32, 10, 1024
	coder, err := fec.NewCoder(k, fec.MaxShards-k)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(13, 13))
	reqs := makeReqs(rng, blocks, k, plen, 1.5)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dw", workers), func(b *testing.B) {
			b.SetBytes(int64(blocks * k * plen))
			for i := 0; i < b.N; i++ {
				if _, err := EncodeBlocks(context.Background(), coder, reqs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
