package protocol

// This file implements the parallel FEC encode pool. A rekey message's
// parity generation is embarrassingly parallel across its blocks (the
// Coder is read-only after construction), so the per-message
// multi-block encode fans out across a bounded set of workers,
// mirroring the WaitGroup sharding the receiver simulation in
// processRound uses. The output is byte-for-byte identical to the
// serial per-block encode regardless of worker count.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/fec"
	"repro/internal/tuning"
)

// BlockParity is one block's encode request: generate parity shards
// [First, First+N) for the block whose data packets are Data.
type BlockParity struct {
	Data  [][]byte
	First int
	N     int
}

// EncodeBlocks generates parity for many blocks of one rekey message,
// fanning the per-block Coder.EncodeAll calls across min(workers,
// blocks) goroutines; workers <= 0 means GOMAXPROCS. Result [b][i] is
// parity packet First+i of reqs[b]. The first per-block error aborts
// the whole call. Cancelling ctx stops workers between blocks and
// returns ctx.Err(); a million-member parity precompute is long enough
// that shutdown must be able to interrupt it.
//
// The Coder is shared, not copied: it is safe for concurrent use, so
// several rekey messages may encode through one Coder from concurrent
// EncodeBlocks calls.
func EncodeBlocks(ctx context.Context, c *fec.Coder, reqs []BlockParity, workers int) ([][][]byte, error) {
	workers = tuning.ResolveWorkers(workers)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	out := make([][][]byte, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(reqs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(reqs))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for b := lo; b < hi; b++ {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				p, err := c.EncodeAll(reqs[b].Data, reqs[b].First, reqs[b].N)
				if err != nil {
					errs[w] = fmt.Errorf("protocol: encode block %d: %w", b, err)
					return
				}
				out[b] = p
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
