package protocol

import (
	"testing"

	"repro/internal/obs"
)

func TestSendBufPoolReuseAndCounters(t *testing.T) {
	reg := obs.New()
	p := NewBufPool(64, reg)

	a := p.Get()
	a.Store(append(a.Take(), 1, 2, 3))
	if got := a.Bytes(); len(got) != 3 || got[0] != 1 {
		t.Fatalf("Bytes() = %v, want [1 2 3]", got)
	}
	a.Release()

	b := p.Get()
	if len(b.Bytes()) != 0 {
		t.Fatalf("recycled buffer not reset: len = %d", len(b.Bytes()))
	}
	if cap(b.Take()) < 64 {
		t.Fatalf("recycled buffer cap = %d, want >= 64", cap(b.Take()))
	}
	b.Release()

	snap := reg.Snapshot()
	if snap.Counters["sendbuf_alloc"] < 1 {
		t.Errorf("sendbuf_alloc = %d, want >= 1", snap.Counters["sendbuf_alloc"])
	}
	if snap.Counters["sendbuf_reuse"] < 1 {
		t.Errorf("sendbuf_reuse = %d, want >= 1", snap.Counters["sendbuf_reuse"])
	}
}

func TestSendBufRetainBlocksRepooling(t *testing.T) {
	reg := obs.New()
	p := NewBufPool(8, reg)

	sb := p.Get() // alloc #1, refs=1
	sb.Retain()   // refs=2
	sb.Release()  // refs=1: still held, must NOT return to the pool

	other := p.Get() // pool empty -> alloc #2
	if got := reg.Snapshot().Counters["sendbuf_alloc"]; got != 2 {
		t.Fatalf("sendbuf_alloc after Get with live buffer = %d, want 2", got)
	}
	other.Release()
	sb.Release() // refs=0: now pooled
}

func TestSendBufOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	p := NewBufPool(8, nil)
	sb := p.Get()
	sb.Release()
	sb.Release()
}

// TestSendBufSteadyStateAllocs is the pool's core guarantee: a warm
// get/build/release cycle allocates nothing.
func TestSendBufSteadyStateAllocs(t *testing.T) {
	p := NewBufPool(2048, nil)
	payload := make([]byte, 1027)
	warm := p.Get()
	warm.Store(append(warm.Take(), payload...))
	warm.Release()

	allocs := testing.AllocsPerRun(100, func() {
		sb := p.Get()
		sb.Store(append(sb.Take(), payload...))
		sb.Release()
	})
	if allocs != 0 {
		t.Errorf("allocs per get/build/release cycle = %v, want 0", allocs)
	}
}
