package protocol

// This file implements the pooled, reference-counted send buffers the
// transport hot path builds datagrams into. Before this pool, every
// multicast send marshalled into a fresh slice (one allocation and one
// copy per packet per round); with it, a round reuses one buffer per
// sender goroutine and the steady state allocates nothing. Reference
// counting lets one built datagram be shared across a fan-out (or an
// async sender) and returned to the pool exactly once, when the last
// holder releases it.

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// SendBuf is one pooled send buffer. Builders obtain the empty slice
// with Take, extend it with append-style marshallers (the buffer is
// pre-sized so a datagram-sized build never grows it), and publish the
// result with Store. The zero value is not usable; get one from a
// BufPool.
type SendBuf struct {
	b    []byte
	refs atomic.Int32
	pool *BufPool
}

// Take returns the buffer's backing slice truncated to length zero,
// ready for an append-style builder. The caller must hand the grown
// slice back via Store (append may have moved the backing array if the
// build exceeded the pool's buffer capacity).
//
//rekeylint:hotpath
func (sb *SendBuf) Take() []byte { return sb.b[:0] }

// Store publishes b -- which must derive from a Take() on this buffer
// -- as the buffer's contents, retaining any grown capacity for reuse.
//
//rekeylint:hotpath
func (sb *SendBuf) Store(b []byte) { sb.b = b }

// Bytes returns the current contents (the last Store).
//
//rekeylint:hotpath
func (sb *SendBuf) Bytes() []byte { return sb.b }

// Retain adds a reference: the buffer will not return to the pool
// until every holder has called Release.
//
//rekeylint:hotpath
func (sb *SendBuf) Retain() { sb.refs.Add(1) }

// Release drops one reference; the last release returns the buffer to
// its pool. Releasing more times than Get+Retain is a bug and panics.
//
//rekeylint:hotpath
func (sb *SendBuf) Release() {
	n := sb.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("protocol: SendBuf over-released")
	}
	sb.pool.pool.Put(sb) //rekeylint:ignore pooling an existing *SendBuf stores a pointer already on the heap, no new allocation
}

// BufPool hands out SendBufs with at least its configured capacity,
// recycling released buffers through a sync.Pool. Reuse and fresh
// allocations are counted (obs.CSendBufReuse / obs.CSendBufAlloc) so a
// benchmark run can prove the steady state stopped allocating.
type BufPool struct {
	cap  int
	reg  *obs.Registry // nil-safe, like all registry call sites
	pool sync.Pool
}

// NewBufPool returns a pool of buffers with bufCap bytes of capacity,
// reporting reuse into reg (which may be nil).
func NewBufPool(bufCap int, reg *obs.Registry) *BufPool {
	return &BufPool{cap: bufCap, reg: reg}
}

// Get returns an empty buffer with one reference held by the caller.
//
//rekeylint:hotpath
func (p *BufPool) Get() *SendBuf {
	if v := p.pool.Get(); v != nil {
		sb := v.(*SendBuf)
		sb.b = sb.b[:0]
		sb.refs.Store(1)
		p.reg.Inc(obs.CSendBufReuse)
		return sb
	}
	p.reg.Inc(obs.CSendBufAlloc)
	sb := &SendBuf{pool: p} //rekeylint:ignore pool-miss path: the steady state recycles, only a cold miss allocates
	sb.b = make([]byte, 0, p.cap) //rekeylint:ignore pool-miss path: the steady state recycles, only a cold miss allocates
	sb.refs.Store(1)
	return sb
}
