// Package protocol implements the rekey transport protocol's server and
// user state machines (Figures 2, 3, 11, 22, 26 and 27 of the protocol
// paper) over a simulated multicast network.
//
// For each rekey message the server multicasts the message's ENC packets
// plus ceil((rho-1)*k) proactive PARITY packets per block, interleaved
// across blocks. At each round boundary it collects NACKs, each carrying
// the number of parity packets a user still needs per block; it then
// either multicasts amax[i] fresh parity packets per block, or -- after
// at most MaxMulticastRounds rounds, or as soon as unicasting would be
// cheaper -- switches to unicasting small USR packets with escalating
// duplication. The proactivity factor rho adapts across messages so the
// first-round NACK count tracks a target (AdjustRho, Fig. 11), and the
// target itself adapts to deadline misses.
//
// The engine tracks packet bookkeeping rather than ciphertext bytes:
// which shards each user received determines recoverability exactly
// (the MDS property of the FEC code), so bandwidth, NACK, latency and
// deadline metrics are identical to a byte-level run at a fraction of
// the cost. Byte-level operation is exercised by the fec, packet and
// assign packages and the UDP transport.
package protocol

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"

	"repro/internal/assign"
	"repro/internal/blockplan"
	"repro/internal/keytree"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/tuning"
)

// Config holds the transport protocol parameters. The shared knobs
// (k, degree, rho0, NACK targets, round budget, workers) come from the
// embedded tuning core -- the same struct rekey.Config embeds -- so
// they are defined and validated in exactly one place; the fields
// declared here are simulation-specific. DefaultConfig returns the
// paper's defaults.
type Config struct {
	// Tuning is the shared knob core; see package tuning. Note that
	// here MaxMulticastRounds = 0 disables unicast entirely (multicast
	// until every user recovers), and the session reads Degree only
	// through each Message's TreeDegree.
	tuning.Tuning
	// AdaptiveRho enables the AdjustRho algorithm; when false, rho stays
	// at InitialRho for every message.
	AdaptiveRho bool
	// AdaptNumNACK enables deadline-driven adaptation of NumNACK
	// (requires DeadlineRounds > 0).
	AdaptNumNACK bool
	// EarlyUnicast also switches to unicast as soon as the total size of
	// the pending USR packets is no more than the PARITY packets the
	// next multicast round would send.
	EarlyUnicast bool
	// DeadlineRounds is the soft real-time deadline, in multicast
	// rounds. Zero disables deadline accounting.
	DeadlineRounds int
	// SendInterval is the time between consecutive multicast packets
	// (seconds); the paper's server sends 10 packets/second.
	SendInterval float64
	// RoundSlack is added to each round's duration beyond transmission
	// time, covering the maximum user RTT.
	RoundSlack float64
	// UnicastInterval is the duration of one unicast retransmission
	// wave, typically one RTT -- much shorter than a multicast round.
	UnicastInterval float64
	// SequentialSend disables the interleaved send order, transmitting
	// each block's shards back to back. The protocol interleaves by
	// default so a burst-loss period cannot claim several shards of one
	// block; this switch exists for the ablation experiment.
	SequentialSend bool
	// Obs, when non-nil, receives per-round metrics and trace events
	// (NACKs per round, RhoAdjusted, SwitchToUnicast). A nil registry
	// costs the simulation hot path only a pointer check.
	Obs *obs.Registry
}

// DefaultConfig returns the paper's default parameters: the shared
// tuning defaults (k=10, rho0=1, numNACK target 20 capped at 100,
// unicast after 2 multicast rounds) plus adaptive rho, deadline 2
// rounds, 10 packets/second.
func DefaultConfig() Config {
	return Config{
		Tuning:          tuning.Default(),
		AdaptiveRho:     true,
		AdaptNumNACK:    false,
		EarlyUnicast:    false,
		DeadlineRounds:  2,
		SendInterval:    0.100,
		RoundSlack:      0.500,
		UnicastInterval: 0.200,
	}
}

func (c Config) validate() error {
	t := c.Tuning
	if t.Degree == 0 {
		// The session never reads Degree (each Message carries its
		// TreeDegree), so don't force callers to set it.
		t.Degree = tuning.Default().Degree
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("protocol: %w", err)
	}
	if c.SendInterval <= 0 {
		return fmt.Errorf("protocol: SendInterval = %v, want > 0", c.SendInterval)
	}
	if c.AdaptNumNACK && c.DeadlineRounds <= 0 {
		return fmt.Errorf("protocol: AdaptNumNACK requires DeadlineRounds > 0")
	}
	return nil
}

// Message is the transport-level description of one rekey message: its
// ENC packets, their user ranges, and which packet each user needs.
// Build one with BuildMessage.
type Message struct {
	// Part partitions the NumEnc real packets into blocks of K.
	Part blockplan.Partition
	// UserPkt[i] is user i's specific ENC packet index, or -1 if user i
	// needs nothing this interval.
	UserPkt []int
	// FrmID and ToID give each real packet's user-ID range.
	FrmID, ToID []int
	// UserNodeID maps user index to key tree node ID.
	UserNodeID []int
	// EncsPerUser is how many encryptions each user needs (sizes its
	// USR packet).
	EncsPerUser []int
	// MaxKID is field 5 of every ENC packet.
	MaxKID int
	// TreeDegree is the key tree degree (estimation uses it).
	TreeDegree int
}

// NumEnc returns h, the number of real ENC packets in the message.
func (m *Message) NumEnc() int { return m.Part.NumReal }

// BuildMessage assembles the transport descriptor for a batch result and
// its UKA plan, with FEC block size k. The network's user index i is
// identified with res.UserIDs[i].
func BuildMessage(res *keytree.BatchResult, plan *assign.Plan, k, treeDegree int) (*Message, error) {
	part, err := blockplan.NewPartition(len(plan.Packets), k)
	if err != nil {
		return nil, err
	}
	m := &Message{
		Part:        part,
		UserPkt:     make([]int, len(res.UserIDs)),
		FrmID:       make([]int, len(plan.Packets)),
		ToID:        make([]int, len(plan.Packets)),
		UserNodeID:  append([]int(nil), res.UserIDs...),
		EncsPerUser: make([]int, len(res.UserIDs)),
		MaxKID:      res.MaxKID,
		TreeDegree:  treeDegree,
	}
	for i, pp := range plan.Packets {
		m.FrmID[i], m.ToID[i] = pp.FrmID, pp.ToID
	}
	var needs []uint32
	for i, nodeID := range res.UserIDs {
		if pi, ok := plan.UserPacket[nodeID]; ok {
			m.UserPkt[i] = pi
		} else {
			m.UserPkt[i] = -1
		}
		needs = res.AppendUserNeedIDs(needs[:0], nodeID)
		m.EncsPerUser[i] = len(needs)
	}
	return m, nil
}

// Metrics reports one rekey message's transport outcome.
type Metrics struct {
	MsgID         int
	RhoUsed       float64
	NumNACKTarget int
	EncPackets    int // h: real ENC packets
	Blocks        int
	// MulticastSent is h': every multicast packet sent (ENC packets
	// including last-block duplicates, plus all PARITY packets, across
	// all rounds).
	MulticastSent int
	ParitySent    int
	DupSent       int
	Round1NACKs   int
	NACKsPerRound []int
	// MulticastRounds is the number of multicast rounds run.
	MulticastRounds int
	UsrSent         int
	UnicastWaves    int
	// UserRoundHist maps finishing round to user count. Multicast
	// finishers record their round (1-based); unicast finishers record
	// MulticastRounds + wave.
	UserRoundHist  map[int]int
	MissedDeadline int
	// NeededUsers is how many users needed any packet this message.
	NeededUsers int
	AllDone     bool
	// Elapsed is simulated seconds from first send to completion.
	Elapsed float64
}

// BandwidthOverhead is h'/h, the server multicast bandwidth overhead.
func (m *Metrics) BandwidthOverhead() float64 {
	if m.EncPackets == 0 {
		return 0
	}
	return float64(m.MulticastSent) / float64(m.EncPackets)
}

// AvgUserRounds is the mean finishing round over users that needed
// packets.
func (m *Metrics) AvgUserRounds() float64 {
	total, n := 0, 0
	for r, c := range m.UserRoundHist {
		total += r * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// Session runs rekey messages over one network, carrying the adaptive
// state (rho and the NACK target) across messages as the key server
// does.
type Session struct {
	cfg     Config
	net     *netsim.Star
	rho     float64
	numNACK int
	now     float64
	msgSeq  int
	rng     *rand.Rand
}

// NewSession creates a session. The star network's user count fixes the
// group size every message must match.
func NewSession(cfg Config, net *netsim.Star, seed uint64) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.Obs.Set(obs.GRho, cfg.InitialRho)
	return &Session{
		cfg:     cfg,
		net:     net,
		rho:     cfg.InitialRho,
		numNACK: cfg.NumNACK,
		rng:     rand.New(rand.NewPCG(seed, 0x5e55)),
	}, nil
}

// Rho returns the proactivity factor the next message will use.
func (s *Session) Rho() float64 { return s.rho }

// Rebind swaps the session's network while carrying the adaptive state
// (rho, the NACK target) across the change. Scenario harnesses use it:
// churn changes the group size every interval, so each rekey message
// runs on a freshly built star sized to the post-batch membership while
// the server-side controllers persist, as they do in a real key server.
// The simulation clock restarts at zero so the new links begin in their
// stationary state.
func (s *Session) Rebind(net *netsim.Star) {
	s.net = net
	s.now = 0
}

// NumNACK returns the current first-round NACK target.
func (s *Session) NumNACK() int { return s.numNACK }

// userState is the engine's per-user transport state for one message.
type userState struct {
	pkt         int // specific real ENC packet index; -1 = nothing needed
	block       int
	counts      []uint16 // shards received per block
	est         blockplan.Estimator
	gotSpecific bool
	doneRound   int // 0 = pending; >0 finishing round index
}

func (u *userState) done() bool { return u.pkt < 0 || u.doneRound > 0 }

// recovered reports whether the user can produce its specific packet:
// it received it directly, or holds >= k shards of its block.
func (u *userState) recovered(k int) bool {
	return u.gotSpecific || int(u.counts[u.block]) >= k
}

// Run executes the transport protocol for one rekey message and returns
// its metrics. An empty message (no ENC packets) returns immediately.
func (s *Session) Run(msg *Message) (*Metrics, error) {
	if len(msg.UserPkt) != s.net.N() {
		return nil, fmt.Errorf("protocol: message for %d users on a %d-user network", len(msg.UserPkt), s.net.N())
	}
	cfg := s.cfg
	k := cfg.K
	if msg.Part.K != k {
		return nil, fmt.Errorf("protocol: message partition uses k=%d, session k=%d", msg.Part.K, k)
	}
	met := &Metrics{
		MsgID:         s.msgSeq,
		RhoUsed:       s.rho,
		NumNACKTarget: s.numNACK,
		EncPackets:    msg.NumEnc(),
		Blocks:        msg.Part.NumBlocks(),
		UserRoundHist: make(map[int]int),
	}
	s.msgSeq++
	if msg.NumEnc() == 0 {
		met.AllDone = true
		return met, nil
	}

	blocks := msg.Part.NumBlocks()
	users := make([]userState, len(msg.UserPkt))
	pending := 0
	for i := range users {
		users[i] = userState{pkt: msg.UserPkt[i], est: blockplan.NewEstimator()}
		if msg.UserPkt[i] >= 0 {
			users[i].block, _ = msg.Part.Slot(msg.UserPkt[i])
			users[i].counts = make([]uint16, blocks)
			pending++
		}
	}
	met.NeededUsers = pending

	start := s.now
	nextParity := make([]int, blocks) // next fresh parity shard index per block
	for b := range nextParity {
		nextParity[b] = k
	}

	// feedback aggregates one round's NACKs.
	type feedback struct {
		nacks int
		a     []int // per-NACK maximum parity request
		amax  []int // per-block maximum parity request
	}

	const maxRounds = 64
	round := 0
	var lastFb feedback
	for {
		round++
		var refs []blockplan.Ref
		perBlock := make([][]int, blocks)
		if round == 1 {
			pro := blockplan.ProactiveParity(k, s.rho)
			for b := 0; b < blocks; b++ {
				for sh := 0; sh < k+pro; sh++ {
					perBlock[b] = append(perBlock[b], sh)
				}
			}
		} else {
			for b := 0; b < blocks; b++ {
				for j := 0; j < lastFb.amax[b]; j++ {
					perBlock[b] = append(perBlock[b], nextParity[b])
					nextParity[b]++
				}
			}
		}
		if cfg.SequentialSend {
			for b, shards := range perBlock {
				for _, sh := range shards {
					refs = append(refs, blockplan.Ref{Block: b, Shard: sh})
				}
			}
		} else {
			refs = blockplan.Interleave(perBlock)
		}
		met.MulticastSent += len(refs)
		for _, r := range refs {
			switch {
			case r.IsParity(k):
				met.ParitySent++
			case msg.Part.IsDuplicate(r.Block, r.Shard):
				met.DupSent++
			}
		}
		cfg.Obs.Emit(obs.Event{Kind: obs.EvRoundStart, MsgID: uint8(met.MsgID & 0x3f),
			Round: round, Value: float64(len(refs))})
		times := make([]float64, len(refs))
		for i := range times {
			times[i] = s.now + float64(i)*cfg.SendInterval
		}
		rd := s.net.MulticastRound(times)
		s.now += float64(len(refs))*cfg.SendInterval + cfg.RoundSlack

		fb := s.processRound(msg, users, refs, rd, round, blocks, met)
		met.NACKsPerRound = append(met.NACKsPerRound, fb.nacks)
		cfg.Obs.Observe(obs.HNACKsPerRound, float64(fb.nacks))
		if round == 1 {
			met.Round1NACKs = fb.nacks
			if cfg.AdaptiveRho {
				s.adjustRho(fb.a)
			}
		}
		lastFb = fb
		met.MulticastRounds = round

		if fb.nacks == 0 {
			met.AllDone = true
			break
		}
		if cfg.MaxMulticastRounds > 0 && round >= cfg.MaxMulticastRounds {
			break
		}
		if cfg.EarlyUnicast && s.usrBytes(msg, users) <= s.parityBytes(fb.amax) {
			break
		}
		if round >= maxRounds {
			break
		}
	}

	// Deadline accounting happens at the multicast/unicast boundary:
	// a user meets the deadline iff it recovered within DeadlineRounds
	// multicast rounds.
	if cfg.DeadlineRounds > 0 {
		for i := range users {
			u := &users[i]
			if u.pkt < 0 {
				continue
			}
			if u.doneRound == 0 || u.doneRound > cfg.DeadlineRounds {
				met.MissedDeadline++
			}
		}
		if cfg.AdaptNumNACK {
			if met.MissedDeadline == 0 {
				s.numNACK = min(s.numNACK+1, cfg.MaxNACK)
			} else {
				s.numNACK = max(s.numNACK-met.MissedDeadline, 0)
			}
		}
	}

	if !met.AllDone {
		if cfg.Obs.Enabled() {
			pending := 0
			for i := range users {
				if !users[i].done() {
					pending++
				}
			}
			cfg.Obs.Emit(obs.Event{Kind: obs.EvSwitchToUnicast,
				MsgID: uint8(met.MsgID & 0x3f), Round: met.MulticastRounds, Value: float64(pending)})
		}
		s.unicast(msg, users, met)
	}
	met.Elapsed = s.now - start
	// Idle gap between rekey messages keeps link processes realistic.
	s.now += cfg.RoundSlack
	return met, nil
}

// processRound distributes one round's deliveries to the pending users
// (in parallel) and aggregates their feedback.
func (s *Session) processRound(msg *Message, users []userState, refs []blockplan.Ref, rd *netsim.RoundDelivery, round, blocks int, met *Metrics) (fb struct {
	nacks int
	a     []int
	amax  []int
}) {
	k := s.cfg.K
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type partial struct {
		nacks int
		a     []int
		amax  []int
		hist  map[int]int
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (len(users) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(users))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p := &parts[w]
			p.amax = make([]int, blocks)
			p.hist = make(map[int]int)
			for ui := lo; ui < hi; ui++ {
				u := &users[ui]
				if u.done() {
					// Done users still consume the round so their link
					// processes advance deterministically.
					rd.Received(ui)
					continue
				}
				for _, idx := range rd.Received(ui) {
					r := refs[idx]
					u.counts[r.Block]++
					if !r.IsParity(k) {
						real := msg.Part.RealIndex(r.Block, r.Shard)
						if real == u.pkt {
							u.gotSpecific = true
						}
						if !msg.Part.IsDuplicate(r.Block, r.Shard) {
							u.est.Observe(msg.UserNodeID[ui], blockplan.ENCHeader{
								BlockID: r.Block, Seq: r.Shard,
								FrmID: msg.FrmID[real], ToID: msg.ToID[real],
								MaxKID: msg.MaxKID,
							}, k, msg.TreeDegree)
						}
					}
				}
				if u.recovered(k) {
					u.doneRound = round
					p.hist[round]++
					continue
				}
				// NACK: request parity for each block in the estimated
				// range still short of k.
				lo, hi := u.est.Low, u.est.High
				if lo < 0 {
					lo = 0
				}
				if hi > blocks-1 {
					hi = blocks - 1
				}
				maxA := 0
				for b := lo; b <= hi; b++ {
					if a := k - int(u.counts[b]); a > 0 {
						if a > p.amax[b] {
							p.amax[b] = a
						}
						if a > maxA {
							maxA = a
						}
					}
				}
				if maxA > 0 {
					p.nacks++
					p.a = append(p.a, maxA)
				} else {
					// The estimated range is fully stocked yet the user
					// could not decode its packet: only possible when the
					// range excludes the true block, which the estimator
					// forbids. Guard regardless.
					p.nacks++
					p.a = append(p.a, 1)
					if p.amax[u.block] < 1 {
						p.amax[u.block] = 1
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	fb.amax = make([]int, blocks)
	for _, p := range parts {
		fb.nacks += p.nacks
		fb.a = append(fb.a, p.a...)
		for b, v := range p.amax {
			if v > fb.amax[b] {
				fb.amax[b] = v
			}
		}
		for r, c := range p.hist {
			met.UserRoundHist[r] += c
		}
	}
	return fb
}

// adjustRho implements the AdjustRho algorithm (Fig. 11) on the
// first-round NACK list.
func (s *Session) adjustRho(a []int) {
	k := s.cfg.K
	target := s.numNACK
	before := s.rho
	switch {
	case len(a) > target:
		sort.Sort(sort.Reverse(sort.IntSlice(a)))
		add := a[target] // the (numNACK+1)-th largest request
		s.rho = (float64(add) + math.Ceil(float64(k)*s.rho-1e-9)) / float64(k)
	case len(a) < target:
		prob := math.Max(0, float64(target-len(a)*2)/float64(target))
		if s.rng.Float64() < prob {
			s.rho = math.Max(0, math.Ceil(float64(k)*s.rho-1-1e-9)) / float64(k)
		}
	}
	if s.rho != before {
		s.cfg.Obs.Emit(obs.Event{Kind: obs.EvRhoAdjusted, MsgID: uint8(s.msgSeq & 0x3f), Value: s.rho})
	}
	s.cfg.Obs.Set(obs.GRho, s.rho)
}

// usrBytes is the total size of the USR packets (plus UDP headers) that
// unicasting now would send to the still-pending users.
func (s *Session) usrBytes(msg *Message, users []userState) int {
	const udpHeader = 8
	total := 0
	for i := range users {
		if users[i].done() {
			continue
		}
		total += 5 + packet.EncEntryLen*msg.EncsPerUser[i] + udpHeader
	}
	return total
}

// parityBytes is the size of the PARITY packets the next multicast round
// would send.
func (s *Session) parityBytes(amax []int) int {
	const udpHeader = 8
	n := 0
	for _, a := range amax {
		n += a
	}
	return n * (packet.PacketLen + udpHeader)
}

// unicast implements Switch2Unicast (Fig. 22): wave w sends w+1
// duplicate USR packets to each pending user, starting at 2 duplicates,
// until every user has recovered.
func (s *Session) unicast(msg *Message, users []userState, met *Metrics) {
	pendingIdx := make([]int, 0)
	for i := range users {
		if !users[i].done() {
			pendingIdx = append(pendingIdx, i)
		}
	}
	const maxWaves = 50
	dups := 2
	for wave := 1; len(pendingIdx) > 0 && wave <= maxWaves; wave++ {
		var still []int
		for _, ui := range pendingIdx {
			got := false
			for j := 0; j < dups; j++ {
				met.UsrSent++
				// Duplicates of one wave go out back to back; distinct
				// users' sends share the wave window.
				t := s.now + float64(j)*0.001
				if s.net.Unicast(ui, t) {
					got = true
				}
			}
			if got {
				users[ui].doneRound = met.MulticastRounds + wave
				met.UserRoundHist[met.MulticastRounds+wave]++
			} else {
				still = append(still, ui)
			}
		}
		s.now += s.cfg.UnicastInterval
		met.UnicastWaves = wave
		pendingIdx = still
		dups++
	}
	met.AllDone = len(pendingIdx) == 0
}
