package protocol

import (
	"math"
	"testing"

	"repro/internal/netsim"
)

func newBareSession(t *testing.T, cfg Config) *Session {
	t.Helper()
	net, err := netsim.NewStar(netsim.StarConfig{N: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg, net, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAdjustRhoIncrease checks the Fig. 11 worked example: 10 NACKs with
// requests a0>=...>=a9, target numNACK=2, k=10, rho=1: the server adds
// a2 parity packets per block, so rho becomes (a2+10)/10.
func TestAdjustRhoIncrease(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumNACK = 2
	s := newBareSession(t, cfg)
	s.rho = 1.0
	a := []int{9, 7, 5, 4, 3, 3, 2, 2, 1, 1}
	s.adjustRho(append([]int(nil), a...))
	want := (5.0 + 10.0) / 10.0
	if math.Abs(s.rho-want) > 1e-12 {
		t.Fatalf("rho = %v, want %v", s.rho, want)
	}
}

func TestAdjustRhoIncreaseUnsortedInput(t *testing.T) {
	// The algorithm sorts descending itself.
	cfg := DefaultConfig()
	cfg.NumNACK = 1
	s := newBareSession(t, cfg)
	s.rho = 1.0
	s.adjustRho([]int{1, 9, 4})
	want := (4.0 + 10.0) / 10.0
	if math.Abs(s.rho-want) > 1e-12 {
		t.Fatalf("rho = %v, want %v", s.rho, want)
	}
}

func TestAdjustRhoNoChangeAtTarget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumNACK = 3
	s := newBareSession(t, cfg)
	s.rho = 1.4
	s.adjustRho([]int{2, 2, 1})
	if s.rho != 1.4 {
		t.Fatalf("rho changed to %v with exactly-target NACKs", s.rho)
	}
}

func TestAdjustRhoDecreaseProbability(t *testing.T) {
	// With zero NACKs the decrease probability is 1: rho must drop by
	// exactly one packet's worth.
	cfg := DefaultConfig()
	cfg.NumNACK = 20
	s := newBareSession(t, cfg)
	s.rho = 2.0
	s.adjustRho(nil)
	want := math.Ceil(10*2.0-1) / 10 // 1.9
	if math.Abs(s.rho-want) > 1e-12 {
		t.Fatalf("rho = %v, want %v", s.rho, want)
	}
	// With size(A)*2 >= target the probability is 0: never decreases.
	s.rho = 2.0
	for i := 0; i < 50; i++ {
		s.adjustRho([]int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}) // 10 NACKs, 2*10 >= 20
		if s.rho != 2.0 {
			t.Fatalf("rho decreased to %v with zero decrease probability", s.rho)
		}
	}
}

func TestAdjustRhoZeroTarget(t *testing.T) {
	// numNACK = 0: any NACK raises rho by the largest request.
	cfg := DefaultConfig()
	cfg.NumNACK = 0
	s := newBareSession(t, cfg)
	s.rho = 1.0
	s.adjustRho([]int{3, 1})
	want := (3.0 + 10.0) / 10.0
	if math.Abs(s.rho-want) > 1e-12 {
		t.Fatalf("rho = %v, want %v", s.rho, want)
	}
}

func TestUserStateRecovered(t *testing.T) {
	u := userState{pkt: 3, block: 1, counts: []uint16{0, 4, 0}}
	if u.recovered(10) {
		t.Fatal("recovered with 4 of 10 shards")
	}
	u.counts[1] = 10
	if !u.recovered(10) {
		t.Fatal("not recovered with k shards")
	}
	u.counts[1] = 0
	u.gotSpecific = true
	if !u.recovered(10) {
		t.Fatal("not recovered despite specific packet")
	}
}

func TestMetricsDerivations(t *testing.T) {
	m := &Metrics{EncPackets: 100, MulticastSent: 150,
		UserRoundHist: map[int]int{1: 90, 2: 10}}
	if got := m.BandwidthOverhead(); got != 1.5 {
		t.Fatalf("overhead %v", got)
	}
	if got := m.AvgUserRounds(); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("avg rounds %v", got)
	}
	empty := &Metrics{UserRoundHist: map[int]int{}}
	if empty.BandwidthOverhead() != 0 || empty.AvgUserRounds() != 0 {
		t.Fatal("empty metrics not zero")
	}
}
