// Sharded-coordinator end-to-end: real rekey.Member clients fed raw
// marshalled wire packets from a multi-shard interval. The member code
// predates package shard and knows nothing about it -- if every
// survivor lands on the coordinator's group key from exactly its shard
// channel's bytes, and an evicted member cannot, the merged message is
// indistinguishable from a single-tree server's output on the wire.

package e2e

import (
	"context"
	"errors"
	"testing"

	rekey "repro"
	"repro/internal/keytree"
	"repro/internal/packet"
	"repro/internal/shard"
	"repro/internal/tuning"
)

const memberBlockSize = 4

// ingestChannel feeds every ENC packet of one shard channel, raw, into
// the member. strict fails the test on any ingest error; the evicted
// path disables it (undecryptable leftovers are the expected outcome).
func ingestChannel(t *testing.T, m *rekey.Member, pkts []*packet.ENC, strict bool) {
	t.Helper()
	for _, p := range pkts {
		raw, err := p.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		// ErrStale is routine: once the member's own ENC completes the
		// message, the rest of the channel is redundant by design.
		if _, err := m.Ingest(raw); err != nil && strict && !errors.Is(err, rekey.ErrStale) {
			t.Fatalf("ingest: %v", err)
		}
	}
}

func TestShardedWireFeedsRealMembers(t *testing.T) {
	tn := tuning.Default()
	tn.Shards = 4
	tn.ShardRange = 4
	c, err := shard.NewCoordinator(shard.CoordinatorConfig{Tuning: tn, KeySeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Bootstrap 48 members -- 12 routing blocks dealt over 4 shards.
	for m := 0; m < 48; m++ {
		if err := c.QueueJoin(keytree.Member(m)); err != nil {
			t.Fatal(err)
		}
	}
	boot, err := c.Rekey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wboot, err := boot.Materialize(memberBlockSize)
	if err != nil {
		t.Fatal(err)
	}

	// Registration: each member gets only ID, individual key and group
	// constants -- path keys come off the wire, as in the UDP transport.
	newMember := func(m keytree.Member) *rekey.Member {
		uid, ok := c.UserID(m)
		if !ok {
			t.Fatalf("no user ID for member %d", m)
		}
		ik, ok := c.IndividualKey(m)
		if !ok {
			t.Fatalf("no individual key for member %d", m)
		}
		mem, err := rekey.NewMember(rekey.Credentials{
			Member: m, NodeID: uid, Key: ik,
			Degree: c.Degree(), BlockSize: memberBlockSize,
		})
		if err != nil {
			t.Fatalf("member %d: %v", m, err)
		}
		return mem
	}
	members := make(map[keytree.Member]*rekey.Member)
	for _, m := range c.Members() {
		members[m] = newMember(m)
	}
	for m, mem := range members {
		s, _, ok := wboot.PacketFor(mustUID(t, c, m))
		if !ok {
			t.Fatalf("no bootstrap packet for member %d", m)
		}
		ingestChannel(t, mem, wboot.PerShard[s], true)
		gk, ok := mem.GroupKey()
		if !ok || gk != c.GroupKey() {
			t.Fatalf("member %d not keyed after bootstrap (ok=%v)", m, ok)
		}
	}

	// Churn touching every shard: five leavers, three joiners.
	leaves := []keytree.Member{1, 5, 9, 13, 17}
	joins := []keytree.Member{100, 201, 302}
	for _, m := range leaves {
		if err := c.QueueLeave(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range joins {
		if err := c.QueueJoin(m); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := c.Rekey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	w, err := merged.Materialize(memberBlockSize)
	if err != nil {
		t.Fatal(err)
	}

	evicted := make(map[keytree.Member]*rekey.Member)
	for _, m := range leaves {
		evicted[m] = members[m]
		delete(members, m)
	}
	for _, m := range joins {
		members[m] = newMember(m)
	}

	want := c.GroupKey()
	usrDone := false
	for m, mem := range members {
		uid := mustUID(t, c, m)
		if !usrDone {
			// One member recovers from its unicast USR packet alone.
			usr, err := w.USRFor(uid)
			if err != nil {
				t.Fatalf("USRFor(%d): %v", uid, err)
			}
			raw, err := usr.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mem.Ingest(raw); err != nil {
				t.Fatalf("member %d USR ingest: %v", m, err)
			}
			usrDone = true
		} else {
			s, _, ok := w.PacketFor(uid)
			if !ok {
				t.Fatalf("no packet for member %d (uid %d)", m, uid)
			}
			ingestChannel(t, mem, w.PerShard[s], true)
		}
		gk, ok := mem.GroupKey()
		if !ok {
			t.Fatalf("member %d has no group key after churn interval", m)
		}
		if gk != want {
			t.Fatalf("member %d derived the wrong group key", m)
		}
	}

	// Forward secrecy on the wire: an evicted member replaying every
	// channel of the new interval must never reach the new group key.
	for m, mem := range evicted {
		for s := range w.PerShard {
			ingestChannel(t, mem, w.PerShard[s], false)
		}
		if gk, ok := mem.GroupKey(); ok && gk == want {
			t.Fatalf("evicted member %d recovered the new group key", m)
		}
	}
}

func mustUID(t *testing.T, c *shard.Coordinator, m keytree.Member) int {
	t.Helper()
	uid, ok := c.UserID(m)
	if !ok {
		t.Fatalf("no user ID for member %d", m)
	}
	return uid
}
