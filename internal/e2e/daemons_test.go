// Package e2e integration-tests the keyserverd and memberd binaries:
// it builds them, starts a key server with a short rekey interval, has
// several members register over the control port, and waits for every
// member to print a derived group key.
package e2e

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func build(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// internal/e2e -> repo root
	return filepath.Dir(filepath.Dir(wd))
}

func TestDaemonsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("binary integration test")
	}
	dir := t.TempDir()
	serverBin := build(t, dir, "./cmd/keyserverd", "keyserverd")
	memberBin := build(t, dir, "./cmd/memberd", "memberd")

	ctl := "127.0.0.1:17701"
	srv := exec.Command(serverBin, "-ctl", ctl, "-udp", "127.0.0.1:0", "-interval", "400ms", "-seed", "7")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	// Learn the transport UDP and metrics HTTP addresses from the
	// startup log lines.
	udpRe := regexp.MustCompile(`transport on (\S+),`)
	httpRe := regexp.MustCompile(`metrics on (http://\S+)/metrics`)
	var udpAddr, httpBase string
	sc := bufio.NewScanner(stderr)
	deadline := time.After(10 * time.Second)
	addrCh := make(chan string, 1)
	httpCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := udpRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if m := httpRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case httpCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case httpBase = <-httpCh:
	case <-deadline:
		t.Fatal("keyserverd did not log its metrics address")
	}
	select {
	case udpAddr = <-addrCh:
	case <-deadline:
		t.Fatal("keyserverd did not log its transport address")
	}

	const members = 3
	var wg sync.WaitGroup
	errs := make([]error, members)
	outs := make([]string, members)
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(memberBin,
				"-id", fmt.Sprint(i+1), "-ctl", ctl, "-server-udp", udpAddr, "-once")
			out, err := cmd.CombinedOutput()
			outs[i], errs[i] = string(out), err
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("members did not finish within 30s")
	}
	for i := 0; i < members; i++ {
		if errs[i] != nil {
			t.Fatalf("member %d: %v\n%s", i+1, errs[i], outs[i])
		}
		if !strings.Contains(outs[i], "group key key(") {
			t.Fatalf("member %d never printed a group key:\n%s", i+1, outs[i])
		}
	}

	// The daemon's observability endpoints must reflect the rekeys that
	// just keyed those members.
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	getJSON(t, httpBase+"/metrics", &snap)
	if snap.Counters["rekeys"] < 1 {
		t.Errorf("rekeys counter = %d, want >= 1", snap.Counters["rekeys"])
	}
	if snap.Counters["enc_sent"] < 1 {
		t.Errorf("enc_sent counter = %d, want >= 1", snap.Counters["enc_sent"])
	}
	if snap.Counters["joins"] < members {
		t.Errorf("joins counter = %d, want >= %d", snap.Counters["joins"], members)
	}
	if snap.Gauges["group_size"] < 1 {
		t.Errorf("group_size gauge = %v, want >= 1", snap.Gauges["group_size"])
	}
	if snap.Gauges["rho"] != 1.2 {
		t.Errorf("rho gauge = %v, want the daemon default 1.2", snap.Gauges["rho"])
	}

	var trace struct {
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	getJSON(t, httpBase+"/trace", &trace)
	kinds := map[string]int{}
	for _, ev := range trace.Events {
		kinds[ev.Kind]++
	}
	if kinds["RekeyBuilt"] < 1 {
		t.Errorf("trace has no RekeyBuilt events: %v", kinds)
	}
	if kinds["RoundStart"] < 1 {
		t.Errorf("trace has no RoundStart events: %v", kinds)
	}
}

// getJSON fetches url and decodes the response body into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: json: %v\n%s", url, err, body)
	}
}
