package shard

import (
	"crypto/rsa"
	"encoding/binary"
	"fmt"

	"repro/internal/assign"
	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/packet"
)

// Slice is one shard's share of a merged interval: the shard's local
// batch result viewed through globalized node IDs, plus access to the
// top-tree encryptions sitting above the shard's root. It implements
// assign.Source, so the UKA packer runs unchanged per shard channel.
type Slice struct {
	m *Merged
	// Index is the owning shard's index; Pos its top-tree leaf slot.
	Index, Pos int
	// Res is the shard's local batch result; nil when the shard had no
	// membership change this interval (its members may still need
	// top-tree encryptions).
	Res *keytree.BatchResult
	// MaxKID is the shard's post-batch maximum k-node ID, globalized --
	// the value members of this shard rederive their IDs against.
	// Lemma 4.1 holds per shard subtree, not across the composite tree,
	// which is why MaxKID is per slice rather than per message. -1 when
	// the shard has never held a member.
	MaxKID int
	// userIDs are the shard's post-batch u-node IDs, globalized, sorted.
	userIDs []int
}

// UserList returns the slice's post-batch global user IDs, ascending.
// (Globalization is order-preserving within one shard subtree.)
func (sl *Slice) UserList() []int { return sl.userIDs }

// PacketMaxKID returns the globalized MaxKID stamped into this shard
// channel's ENC packets.
func (sl *Slice) PacketMaxKID() int { return sl.MaxKID }

// Encryption resolves one encryption by global encrypting-node ID.
func (sl *Slice) Encryption(id int) (keytree.Encryption, bool) {
	return sl.m.encAt(id)
}

// AppendUserNeedIDs appends the global encryption IDs user userID needs:
// its globalized shard path plus the keyed top-tree ancestors.
func (sl *Slice) AppendUserNeedIDs(dst []uint32, userID int) []uint32 {
	sl.m.forNeeds(userID, func(e keytree.Encryption) {
		dst = append(dst, e.ID)
	})
	return dst
}

// Merged is one coordinator interval's consistent-cut output: every
// changed shard's batch plus the top-tree encryptions that re-key the
// root paths, under a single message ID and (optionally) a single
// signature. It implements oracle.Batch over the composite ID space.
type Merged struct {
	MsgID uint8
	// GroupKey is the composite group key after the interval.
	GroupKey keys.Key
	// Slices has exactly one entry per shard, indexed by shard.
	Slices []*Slice
	// TopEncs are the coordinator-level encryptions, deepest level
	// first; each wraps a refreshed top key under a live child's key.
	TopEncs []keytree.Encryption
	// Sig is the signature over SignedBytes, when a signer is configured.
	Sig []byte
	// MergeNs is the coordinator's serial merge time for the interval.
	MergeNs int64
	// ShardBatchNs holds each shard's ProcessPending wall time for the
	// interval, indexed by shard (zero for shards with no batch). The
	// scale-out harness reads max(ShardBatchNs)+MergeNs as the
	// interval's critical path.
	ShardBatchNs []int64

	d        int
	topLevel int
	leafBase int
	topByID  map[int]keytree.Encryption
}

// Degree returns the composite tree degree.
func (m *Merged) Degree() int { return m.d }

// TotalEncryptions counts every encryption of the interval across
// shard slices and the top tree.
func (m *Merged) TotalEncryptions() int {
	n := len(m.TopEncs)
	for _, sl := range m.Slices {
		if sl.Res != nil {
			n += len(sl.Res.Encryptions)
		}
	}
	return n
}

// sliceFor returns the slice owning global node id (a node at or below
// the leaf level), or nil.
func (m *Merged) sliceFor(id int) *Slice {
	l := Level(m.d, id) - m.topLevel
	if l < 0 {
		return nil
	}
	anc := id
	for i := 0; i < l; i++ {
		anc = (anc - 1) / m.d
	}
	s := anc - m.leafBase
	if s < 0 || s >= len(m.Slices) {
		return nil
	}
	return m.Slices[s]
}

// encAt resolves the interval's encryption keyed by global node id:
// top-tree encryptions first, then the owning shard's local result
// with the ID globalized on the way out.
func (m *Merged) encAt(id int) (keytree.Encryption, bool) {
	if e, ok := m.topByID[id]; ok {
		return e, true
	}
	sl := m.sliceFor(id)
	if sl == nil || sl.Res == nil {
		return keytree.Encryption{}, false
	}
	local, ok := localize(m.d, sl.Pos, m.topLevel, id)
	if !ok {
		return keytree.Encryption{}, false
	}
	e, ok := sl.Res.Encryption(local)
	if !ok {
		return keytree.Encryption{}, false
	}
	e.ID = uint32(id)
	return e, true
}

// forNeeds walks user userID's global root path bottom-up and yields
// the encryption at every node that has one -- exactly the entries the
// member's UserView.Apply consumes.
func (m *Merged) forNeeds(userID int, fn func(keytree.Encryption)) {
	for id := userID; id >= 0; id = keytree.ParentID(m.d, id) {
		if e, ok := m.encAt(id); ok {
			fn(e)
		}
	}
}

// MaxKIDFor returns the globalized per-shard MaxKID governing user
// userID's Theorem 4.2 rederivation. Part of the oracle Batch interface.
func (m *Merged) MaxKIDFor(userID int) int {
	if sl := m.sliceFor(userID); sl != nil {
		return sl.MaxKID
	}
	return -1
}

// AppendUserNeeds appends the encryptions addressed to global user
// userID, bottom-up. Part of the oracle Batch interface.
func (m *Merged) AppendUserNeeds(dst []keytree.Encryption, userID int) []keytree.Encryption {
	m.forNeeds(userID, func(e keytree.Encryption) {
		dst = append(dst, e)
	})
	return dst
}

// ForEachEncryption sweeps every encryption of the interval: each
// changed shard's entries (globalized), then the top-tree entries.
// Part of the oracle Batch interface.
func (m *Merged) ForEachEncryption(fn func(keytree.Encryption)) {
	for _, sl := range m.Slices {
		if sl.Res == nil {
			continue
		}
		pos := sl.Pos
		sl.Res.ForEachEncryption(func(e keytree.Encryption) {
			e.ID = uint32(globalize(m.d, pos, int(e.ID)))
			fn(e)
		})
	}
	for _, e := range m.TopEncs {
		fn(e)
	}
}

// signedMagic versions the canonical signed encoding of a merged
// message. "2" is the Merkle revision: the interval signature covers a
// tree root over per-slice segments rather than one flat byte string.
const signedMagic = "SHMRG2\n\x00"

// appendSegHeader pins the interval context -- magic, message ID,
// topology, leaf position -- into every signed segment, so a segment
// can never be replayed under a different interval or slot.
func (m *Merged) appendSegHeader(buf []byte, index int) []byte {
	buf = append(buf, signedMagic...)
	buf = append(buf, m.MsgID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.d))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.topLevel))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Slices)))
	return binary.BigEndian.AppendUint32(buf, uint32(index))
}

func appendEnc(buf []byte, e keytree.Encryption) []byte {
	buf = binary.BigEndian.AppendUint32(buf, e.ID)
	return append(buf, e.Wrapped[:]...)
}

// SliceBytes returns slice s's canonical signed segment: the interval
// header plus the slice's globalized MaxKID, user list and encryptions
// (ID + wrapped bytes -- public wire data; no raw key material).
// Members verify the same bytes they can reassemble from received
// packets.
func (m *Merged) SliceBytes(s int) []byte {
	sl := m.Slices[s]
	buf := m.appendSegHeader(nil, s)
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(sl.MaxKID)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(sl.userIDs)))
	for _, u := range sl.userIDs {
		buf = binary.BigEndian.AppendUint64(buf, uint64(u))
	}
	if sl.Res == nil {
		return binary.BigEndian.AppendUint32(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(sl.Res.Encryptions)))
	pos := sl.Pos
	sl.Res.ForEachEncryption(func(e keytree.Encryption) {
		e.ID = uint32(globalize(m.d, pos, int(e.ID)))
		buf = appendEnc(buf, e)
	})
	return buf
}

// TopBytes returns the coordinator segment: the interval header plus
// the top-tree encryptions. It is the auth tree's last leaf.
func (m *Merged) TopBytes() []byte {
	buf := m.appendSegHeader(nil, len(m.Slices))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.TopEncs)))
	for _, e := range m.TopEncs {
		buf = appendEnc(buf, e)
	}
	return buf
}

// NumAuthLeaves returns the interval auth tree's leaf count: one per
// slice plus the coordinator's top segment.
func (m *Merged) NumAuthLeaves() int { return len(m.Slices) + 1 }

// authTree builds the interval's Merkle tree: leaf s hashes slice s's
// segment under the slice domain; the last leaf hashes the top segment
// under the top domain.
func (m *Merged) authTree() *keys.MerkleTree {
	leaves := make([]keys.MerkleHash, m.NumAuthLeaves())
	for s := range m.Slices {
		leaves[s] = keys.LeafHash(keys.DomainSlice, m.SliceBytes(s))
	}
	leaves[len(m.Slices)] = keys.LeafHash(keys.DomainTop, m.TopBytes())
	return keys.NewMerkleTree(leaves)
}

// AuthRoot returns the Merkle root the interval signature covers: one
// RSA signature for every shard's slice and the top tree.
func (m *Merged) AuthRoot() keys.MerkleHash { return m.authTree().Root() }

// SliceProof appends the inclusion proof for auth leaf index (a slice
// index, or len(Slices) for the top segment) to dst: what a
// shard-channel consumer needs to verify just its slice in
// O(log shards) hashing.
func (m *Merged) SliceProof(dst []keys.MerkleHash, index int) []keys.MerkleHash {
	return m.authTree().AppendProof(dst, index)
}

// VerifyMerged checks a merged message's interval signature: the
// recomputed auth root against Sig. One RSA verification covers every
// slice of the interval.
func VerifyMerged(pub *rsa.PublicKey, m *Merged) error {
	return keys.VerifyRoot(pub, m.AuthRoot(), m.Sig)
}

// VerifySegment checks one signed segment against an interval root
// signature using its inclusion proof: O(log shards) hashing plus one
// RSA check that v caches across segments of the same interval. domain
// is keys.DomainSlice or keys.DomainTop; index and numLeaves position
// the leaf (see SliceProof).
func VerifySegment(v *keys.RootVerifier, domain byte, segment []byte, index, numLeaves int, proof []keys.MerkleHash, sig []byte) error {
	leaf := keys.LeafHash(domain, segment)
	root, ok := keys.VerifyMerkleProof(leaf, index, numLeaves, proof)
	if !ok {
		return fmt.Errorf("shard: segment proof does not verify (leaf %d of %d)", index, numLeaves)
	}
	if _, err := v.VerifyRoot(root, sig); err != nil {
		return fmt.Errorf("shard: interval root signature: %w", err)
	}
	return nil
}

// WireMessage is a merged interval rendered into wire-format ENC
// packets. Each shard gets its own packet channel with block IDs
// starting at zero: shard user-ID ranges interleave in the global ID
// space, so one flat channel would break the UKA increasing-range
// property the member-side block estimator relies on.
type WireMessage struct {
	MsgID uint8
	// PerShard[s] holds shard s's ENC packets (including last-block
	// duplicate padding), in block-major order.
	PerShard [][]*packet.ENC

	m     *Merged
	plans []*assign.Plan
}

// Materialize packs the merged interval into per-shard wire packets
// with FEC block size k. Wire fields are 16-bit, so this is only
// usable when globalized IDs fit; large-scale harnesses measure on the
// Merged form directly.
func (m *Merged) Materialize(k int) (*WireMessage, error) {
	w := &WireMessage{MsgID: m.MsgID, m: m}
	for _, sl := range m.Slices {
		plan, err := assign.Build(sl)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sl.Index, err)
		}
		pkts, err := assign.Materialize(plan, sl, m.MsgID, k)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sl.Index, err)
		}
		w.plans = append(w.plans, plan)
		w.PerShard = append(w.PerShard, pkts)
	}
	return w, nil
}

// Plan returns shard s's assignment plan.
func (w *WireMessage) Plan(s int) *assign.Plan { return w.plans[s] }

// PacketFor returns the shard channel and ENC packet serving the given
// post-batch global user node ID.
func (w *WireMessage) PacketFor(nodeID int) (shard int, pkt *packet.ENC, ok bool) {
	sl := w.m.sliceFor(nodeID)
	if sl == nil {
		return 0, nil, false
	}
	pi, ok := w.plans[sl.Index].UserPacket[nodeID]
	if !ok {
		return 0, nil, false
	}
	// The first NumReal slots of a channel are the real packets in plan
	// order; padding duplicates only ever follow them.
	return sl.Index, w.PerShard[sl.Index][pi], true
}

// USRFor builds the unicast USR packet for a post-batch global user
// node ID.
func (w *WireMessage) USRFor(nodeID int) (*packet.USR, error) {
	sl := w.m.sliceFor(nodeID)
	if sl == nil {
		return nil, fmt.Errorf("shard: user node %d outside every shard", nodeID)
	}
	if nodeID > 0xffff || sl.MaxKID > 0xffff {
		return nil, fmt.Errorf("shard: node ID %d / maxKID %d exceeds wire field", nodeID, sl.MaxKID)
	}
	return &packet.USR{
		MsgID:  w.MsgID,
		NewID:  uint16(nodeID),
		MaxKID: uint16(sl.MaxKID),
		Encs:   w.m.AppendUserNeeds(nil, nodeID),
	}, nil
}
