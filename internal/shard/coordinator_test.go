package shard

import (
	"context"
	"errors"
	"testing"

	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/oracle"
	"repro/internal/tuning"
)

func newTestCoordinator(t testing.TB, shards, shardRange int, seed uint64) *Coordinator {
	t.Helper()
	tn := tuning.Default()
	tn.Shards = shards
	tn.ShardRange = shardRange
	c, err := NewCoordinator(CoordinatorConfig{Tuning: tn, KeySeed: seed})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

func queueAll(t testing.TB, c *Coordinator, joins, leaves []keytree.Member) {
	t.Helper()
	for _, m := range joins {
		if err := c.QueueJoin(m); err != nil {
			t.Fatalf("QueueJoin(%d): %v", m, err)
		}
	}
	for _, m := range leaves {
		if err := c.QueueLeave(m); err != nil {
			t.Fatalf("QueueLeave(%d): %v", m, err)
		}
	}
}

// A single-shard coordinator is the unsharded server: no top tree, no
// top encryptions, and an interval output byte-identical to a plain
// keytree fed the same batches from the same generator stream.
func TestSingleShardMatchesPlainTree(t *testing.T) {
	const seed = 7
	c := newTestCoordinator(t, 1, 0, seed)
	// Shard 0's generator: the same lane derivation NewCoordinator uses.
	tree := keytree.New(4, keys.NewDeterministicGenerator(laneSeed(seed, 1)))

	var joins []keytree.Member
	for m := 0; m < 100; m++ {
		joins = append(joins, keytree.Member(m))
	}
	leaves := []keytree.Member{3, 17, 55}

	intervals := [][2][]keytree.Member{{joins, nil}, {{200, 201}, leaves}}
	for i, iv := range intervals {
		queueAll(t, c, iv[0], iv[1])
		m, err := c.Rekey(context.Background())
		if err != nil {
			t.Fatalf("interval %d: Rekey: %v", i, err)
		}
		res, err := tree.ProcessBatch(iv[0], iv[1])
		if err != nil {
			t.Fatalf("interval %d: ProcessBatch: %v", i, err)
		}
		if len(m.TopEncs) != 0 {
			t.Fatalf("interval %d: S=1 produced %d top encryptions", i, len(m.TopEncs))
		}
		if m.GroupKey != res.GroupKey {
			t.Fatalf("interval %d: group key mismatch", i)
		}
		sl := m.Slices[0]
		if sl.MaxKID != res.MaxKID {
			t.Fatalf("interval %d: MaxKID %d, want %d", i, sl.MaxKID, res.MaxKID)
		}
		var got []keytree.Encryption
		m.ForEachEncryption(func(e keytree.Encryption) { got = append(got, e) })
		if len(got) != len(res.Encryptions) {
			t.Fatalf("interval %d: %d encryptions, want %d", i, len(got), len(res.Encryptions))
		}
		for j := range got {
			if got[j] != res.Encryptions[j] {
				t.Fatalf("interval %d: encryption %d differs: %v vs %v", i, j, got[j], res.Encryptions[j])
			}
		}
	}
}

func TestRekeyNoChange(t *testing.T) {
	c := newTestCoordinator(t, 2, 4, 1)
	if _, err := c.Rekey(context.Background()); !errors.Is(err, ErrNoChange) {
		t.Fatalf("Rekey on empty queues: %v, want ErrNoChange", err)
	}
}

func TestRoutingAndQueueValidation(t *testing.T) {
	c := newTestCoordinator(t, 4, 8, 1)
	// (m/8) mod 4: members 0-7 -> shard 0, 8-15 -> shard 1, 32-39 -> shard 0.
	for m, want := range map[keytree.Member]int{0: 0, 7: 0, 8: 1, 31: 3, 32: 0, 1000: 1} {
		if got := c.ShardFor(m); got != want {
			t.Fatalf("ShardFor(%d) = %d, want %d", m, got, want)
		}
	}
	if err := c.QueueJoin(5); err != nil {
		t.Fatal(err)
	}
	if err := c.QueueJoin(5); err == nil {
		t.Fatal("duplicate queued join not rejected")
	}
	if err := c.QueueLeave(6); err == nil {
		t.Fatal("leave of absent member not rejected")
	}
	if err := c.QueueJoin(-1); err == nil {
		t.Fatal("negative member handle not rejected")
	}
}

// churnRun drives a coordinator through scripted churn with the
// protocol oracle attached, covering partial intervals (some shards
// unchanged) and members spread across every shard.
func churnRun(t *testing.T, c *Coordinator, intervals int, failoverAt int) {
	t.Helper()
	live := make(map[keytree.Member]bool)
	next := keytree.Member(0)

	var joins []keytree.Member
	for i := 0; i < 150; i++ {
		joins = append(joins, next)
		live[next] = true
		next++
	}
	queueAll(t, c, joins, nil)
	if _, err := c.Rekey(context.Background()); err != nil {
		t.Fatalf("bootstrap Rekey: %v", err)
	}
	orc := oracle.New(c, oracle.Config{MaxMulticastRounds: 2, MaxUnicastWaves: 8})
	if err := orc.Bootstrap(); err != nil {
		t.Fatalf("oracle Bootstrap: %v", err)
	}

	for iv := 1; iv <= intervals; iv++ {
		joins = joins[:0]
		var leaves []keytree.Member
		if iv%3 == 0 {
			// A narrow interval: churn confined to one member-ID block, so
			// most shards see no batch (Res == nil slices on the wire).
			joins = append(joins, next)
			live[next] = true
			next++
		} else {
			k := 0
			for m := range live {
				if int(m)%5 == iv%5 {
					leaves = append(leaves, m)
					delete(live, m)
					if k++; k == 6 {
						break
					}
				}
			}
			for j := 0; j < 8; j++ {
				joins = append(joins, next)
				live[next] = true
				next++
			}
		}
		queueAll(t, c, joins, leaves)
		m, err := c.Rekey(context.Background())
		if err != nil {
			t.Fatalf("interval %d: Rekey: %v", iv, err)
		}
		if err := orc.ObserveBatch(m, joins, leaves); err != nil {
			t.Fatalf("interval %d: oracle: %v", iv, err)
		}
		if iv == failoverAt {
			// Crash-restart one shard from its own snapshot between
			// intervals: the restored tree must be indistinguishable.
			s := c.Shards() / 2
			if err := c.RestoreShard(s, c.Shard(s).Snapshot()); err != nil {
				t.Fatalf("interval %d: RestoreShard: %v", iv, err)
			}
			if got := c.Shard(s).Restores(); got != 1 {
				t.Fatalf("shard %d restore count %d, want 1", s, got)
			}
		}
	}
	for s := 0; s < c.Shards(); s++ {
		if err := c.Shard(s).CheckInvariant(); err != nil {
			t.Fatalf("shard %d invariant: %v", s, err)
		}
	}
	if got := orc.Members(); got != len(live) {
		t.Fatalf("oracle tracks %d members, want %d", got, len(live))
	}
}

func TestCoordinatorOracleInvariants(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		c := newTestCoordinator(t, shards, 8, 42+uint64(shards))
		churnRun(t, c, 10, 0)
	}
}

func TestFailoverRestoreMidRun(t *testing.T) {
	c := newTestCoordinator(t, 4, 8, 99)
	churnRun(t, c, 12, 6)
}

func TestSignedMergedVerifies(t *testing.T) {
	signer, err := keys.NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	tn := tuning.Default()
	tn.Shards = 2
	tn.ShardRange = 4
	c, err := NewCoordinator(CoordinatorConfig{Tuning: tn, KeySeed: 5, Signer: signer})
	if err != nil {
		t.Fatal(err)
	}
	var joins []keytree.Member
	for m := 0; m < 20; m++ {
		joins = append(joins, keytree.Member(m))
	}
	queueAll(t, c, joins, nil)
	m, err := c.Rekey(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sig) == 0 {
		t.Fatal("merged message not signed")
	}
	if err := VerifyMerged(signer.Public(), m); err != nil {
		t.Fatalf("VerifyMerged: %v", err)
	}
	if len(m.TopEncs) == 0 {
		t.Fatal("S=2 interval produced no top encryptions")
	}
	m.TopEncs[0].Wrapped[0] ^= 1
	if err := VerifyMerged(signer.Public(), m); err == nil {
		t.Fatal("tampered merged message still verifies")
	}
}

// TestSliceProofsVerifyIndependently checks the amortized path: each
// slice segment (and the top segment) proves itself into the signed
// interval root via its inclusion proof, with the RSA check paid once
// and cached across segments.
func TestSliceProofsVerifyIndependently(t *testing.T) {
	signer, err := keys.NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	tn := tuning.Default()
	tn.Shards = 4
	tn.ShardRange = 4
	c, err := NewCoordinator(CoordinatorConfig{Tuning: tn, KeySeed: 6, Signer: signer})
	if err != nil {
		t.Fatal(err)
	}
	var joins []keytree.Member
	for m := 0; m < 40; m++ {
		joins = append(joins, keytree.Member(m))
	}
	queueAll(t, c, joins, nil)
	m, err := c.Rekey(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	v := keys.NewRootVerifier(signer.Public())
	n := m.NumAuthLeaves()
	for s := 0; s < len(m.Slices); s++ {
		proof := m.SliceProof(nil, s)
		if err := VerifySegment(v, keys.DomainSlice, m.SliceBytes(s), s, n, proof, m.Sig); err != nil {
			t.Fatalf("slice %d: %v", s, err)
		}
		// A segment under the wrong index or with tampered bytes fails.
		if err := VerifySegment(v, keys.DomainSlice, m.SliceBytes(s), (s+1)%len(m.Slices), n, proof, m.Sig); err == nil {
			t.Fatalf("slice %d verified under the wrong index", s)
		}
		seg := m.SliceBytes(s)
		seg[len(seg)-1] ^= 1
		if err := VerifySegment(v, keys.DomainSlice, seg, s, n, proof, m.Sig); err == nil {
			t.Fatalf("slice %d: tampered segment verified", s)
		}
		// The slice domain must not accept the top segment's position.
		if err := VerifySegment(v, keys.DomainTop, m.SliceBytes(s), s, n, proof, m.Sig); err == nil {
			t.Fatalf("slice %d verified under the top domain", s)
		}
	}
	topProof := m.SliceProof(nil, n-1)
	if err := VerifySegment(v, keys.DomainTop, m.TopBytes(), n-1, n, topProof, m.Sig); err != nil {
		t.Fatalf("top segment: %v", err)
	}
}

// TestWireDeliversToMemberViews materialises a multi-shard interval
// into per-shard ENC packets and replays each member's packet into a
// client-side UserView exactly as a member would consume it: rederive
// the ID from the packet's MaxKID, apply the packet's encryptions.
// Every view must land on the coordinator's path keys and group key --
// the member cannot tell it is talking to shards.
func TestWireDeliversToMemberViews(t *testing.T) {
	c := newTestCoordinator(t, 2, 4, 11)
	var joins []keytree.Member
	for m := 0; m < 16; m++ {
		joins = append(joins, keytree.Member(m))
	}
	queueAll(t, c, joins, nil)
	if _, err := c.Rekey(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Registration handout: ID, individual key, then full path keys.
	views := make(map[keytree.Member]*keytree.UserView)
	for _, m := range c.Members() {
		uid, _ := c.UserID(m)
		ik, _ := c.IndividualKey(m)
		v := keytree.NewUserView(c.Degree(), m, uid, ik)
		pk, ok := c.PathKeys(m)
		if !ok {
			t.Fatalf("no path keys for member %d", m)
		}
		for id, k := range pk {
			v.Keys[id] = k
		}
		views[m] = v
	}

	leaves := []keytree.Member{2, 9}
	newJoins := []keytree.Member{40, 41}
	for _, m := range leaves {
		delete(views, m)
	}
	queueAll(t, c, newJoins, leaves)
	merged, err := c.Rekey(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	w, err := merged.Materialize(3)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if len(w.PerShard) != 2 {
		t.Fatalf("%d shard channels, want 2", len(w.PerShard))
	}

	usrDone := false
	for m, v := range views {
		maxKID := merged.MaxKIDFor(v.ID)
		newID, ok := keytree.NewID(v.D, v.ID, maxKID)
		if !ok {
			t.Fatalf("member %d: no post-batch ID (old %d, maxKID %d)", m, v.ID, maxKID)
		}
		if !usrDone {
			// One member takes the unicast path.
			usr, err := w.USRFor(newID)
			if err != nil {
				t.Fatalf("USRFor(%d): %v", newID, err)
			}
			if err := v.Apply(int(usr.MaxKID), usr.Encs); err != nil {
				t.Fatalf("member %d: USR apply: %v", m, err)
			}
			usrDone = true
		} else {
			shardIdx, pkt, ok := w.PacketFor(newID)
			if !ok {
				t.Fatalf("member %d: no ENC packet for node %d", m, newID)
			}
			if want := c.ShardFor(m); shardIdx != want {
				t.Fatalf("member %d served on channel %d, want %d", m, shardIdx, want)
			}
			if int(pkt.FrmID) > newID || newID > int(pkt.ToID) {
				t.Fatalf("member %d: packet range [%d,%d] misses node %d", m, pkt.FrmID, pkt.ToID, newID)
			}
			if err := v.Apply(int(pkt.MaxKID), pkt.Encs); err != nil {
				t.Fatalf("member %d: ENC apply: %v", m, err)
			}
		}
		if v.ID != newID {
			t.Fatalf("member %d: view ID %d, want %d", m, v.ID, newID)
		}
		want, _ := c.PathKeys(m)
		for id, wk := range want {
			if got, ok := v.Keys[id]; !ok || got != wk {
				t.Fatalf("member %d: node %d key mismatch after apply", m, id)
			}
		}
		gk, ok := v.GroupKey()
		if !ok || gk != c.GroupKey() {
			t.Fatalf("member %d did not converge to the group key", m)
		}
	}
}

// FuzzCoordinatorConsistency drives a small multi-shard coordinator
// with a byte-scripted churn schedule under the full protocol oracle.
func FuzzCoordinatorConsistency(f *testing.F) {
	f.Add([]byte{2, 3, 0x1f, 0x02, 0xff, 0x07})
	f.Add([]byte{4, 1, 0xaa, 0x55, 0x13, 0x37, 0x99, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		shards := 1 + int(data[0]%4)
		c := newTestCoordinator(t, shards, 4, 1000+uint64(data[1]))
		data = data[2:]

		live := make(map[keytree.Member]bool)
		var order []keytree.Member
		next := keytree.Member(0)
		for i := 0; i < 20; i++ {
			if err := c.QueueJoin(next); err != nil {
				t.Fatal(err)
			}
			live[next] = true
			order = append(order, next)
			next++
		}
		if _, err := c.Rekey(context.Background()); err != nil {
			t.Fatal(err)
		}
		orc := oracle.New(c, oracle.Config{MaxMulticastRounds: 2, MaxUnicastWaves: 8})
		if err := orc.Bootstrap(); err != nil {
			t.Fatal(err)
		}

		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			var joins, leaves []keytree.Member
			nj := int(op >> 4 & 0x7)
			nl := int(op & 0x7)
			for i := 0; i < nl && len(order) > 0; i++ {
				// Deterministic victim: rotate through the join order.
				m := order[int(op)%len(order)]
				order = append(order[:int(op)%len(order)], order[int(op)%len(order)+1:]...)
				if !live[m] {
					continue
				}
				leaves = append(leaves, m)
				delete(live, m)
			}
			for i := 0; i < nj; i++ {
				joins = append(joins, next)
				live[next] = true
				order = append(order, next)
				next++
			}
			for _, m := range joins {
				if err := c.QueueJoin(m); err != nil {
					t.Fatal(err)
				}
			}
			for _, m := range leaves {
				if err := c.QueueLeave(m); err != nil {
					t.Fatal(err)
				}
			}
			m, err := c.Rekey(context.Background())
			if errors.Is(err, ErrNoChange) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := orc.ObserveBatch(m, joins, leaves); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < c.Shards(); s++ {
			if err := c.Shard(s).CheckInvariant(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
