// Package shard makes the key tree horizontally scalable: a Shard is
// an addressable unit owning one keytree.Tree plus its batch pipeline
// over a slice of the member population, and a Coordinator routes
// joins/leaves to shards, runs every shard's interval batch in
// parallel, and stitches the shard root keys together under a thin
// coordinator-level top tree so that the merged output is a single
// consistent-cut rekey message indistinguishable from one giant
// tree's. See topology.go for the ID-space construction and DESIGN.md
// "Sharded architecture" for the contract.
package shard

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
)

// Config configures one shard.
type Config struct {
	// Index is the shard's slot under the coordinator's top tree.
	Index int
	// Degree is the key tree degree d (uniform across the group).
	Degree int
	// Workers bounds the shard tree's parallel wrap pipeline; <= 0
	// means GOMAXPROCS. Scale-out harnesses pin it to 1 so each shard
	// models one single-core shard server.
	Workers int
	// Strategy is the batch placement strategy; nil means PaperMarking.
	Strategy keytree.Strategy
	// Gen supplies the shard's key draws; nil means a fresh CSPRNG.
	// Shards must not share a generator: independent streams are what
	// keep the per-shard pipelines free of cross-shard ordering.
	Gen *keys.Generator
	// Obs receives shard batch metrics; nil disables them.
	Obs *obs.Registry
}

// Shard owns one key tree and its pending membership changes. It is
// safe for concurrent use; the coordinator calls ProcessPending on
// many shards in parallel.
type Shard struct {
	idx int
	d   int
	cfg Config
	reg *obs.Registry

	mu sync.Mutex
	// The state below is guarded by mu.
	tree     *keytree.Tree           // guarded by mu
	joins    []keytree.Member        // guarded by mu
	leaves   []keytree.Member        // guarded by mu
	queued   map[keytree.Member]bool // guarded by mu
	restores int                     // guarded by mu
}

// New creates an empty shard.
func New(cfg Config) (*Shard, error) {
	if cfg.Degree < 2 {
		return nil, fmt.Errorf("shard: degree %d < 2", cfg.Degree)
	}
	gen := cfg.Gen
	if gen == nil {
		gen = keys.NewGenerator()
	}
	return &Shard{
		idx: cfg.Index,
		d:   cfg.Degree,
		cfg: cfg,
		reg: cfg.Obs,
		tree: keytree.New(cfg.Degree, gen,
			keytree.WithWorkers(cfg.Workers),
			keytree.WithObs(cfg.Obs),
			keytree.WithStrategy(cfg.Strategy)),
		queued: make(map[keytree.Member]bool),
	}, nil
}

// Index returns the shard's slot under the coordinator top tree.
func (s *Shard) Index() int { return s.idx }

// Degree returns the shard tree's degree.
func (s *Shard) Degree() int { return s.d }

// QueueJoin records a join for the shard's next batch.
func (s *Shard) QueueJoin(m keytree.Member) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tree.UserID(m); ok {
		return fmt.Errorf("shard %d: member %d already present", s.idx, m)
	}
	if s.queued[m] {
		return fmt.Errorf("shard %d: member %d already queued", s.idx, m)
	}
	s.queued[m] = true
	s.joins = append(s.joins, m)
	return nil
}

// QueueLeave records a leave for the shard's next batch.
func (s *Shard) QueueLeave(m keytree.Member) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tree.UserID(m); !ok {
		return fmt.Errorf("shard %d: member %d not present", s.idx, m)
	}
	if s.queued[m] {
		return fmt.Errorf("shard %d: member %d already queued", s.idx, m)
	}
	s.queued[m] = true
	s.leaves = append(s.leaves, m)
	return nil
}

// Pending reports the queued joins and leaves.
func (s *Shard) Pending() (joins, leaves int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.joins), len(s.leaves)
}

// ProcessPending applies the queued batch to the shard tree and
// returns its result, or (nil, nil) when nothing is pending. The
// batch wall time lands in the HShardBatch histogram: it is one
// shard's share of a coordinator interval, the quantity the scale-out
// harness measures.
func (s *Shard) ProcessPending() (*keytree.BatchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.joins) == 0 && len(s.leaves) == 0 {
		return nil, nil
	}
	start := time.Now()
	res, err := s.tree.ProcessBatch(s.joins, s.leaves)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", s.idx, err)
	}
	s.joins, s.leaves = nil, nil
	s.queued = make(map[keytree.Member]bool)
	if s.reg.Enabled() {
		s.reg.Inc(obs.CShardBatches)
		s.reg.ObserveSince(obs.HShardBatch, start)
	}
	return res, nil
}

// Snapshot returns the shard tree's deterministic byte snapshot -- the
// failover unit a standby restores from.
func (s *Shard) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Snapshot()
}

// Restore replaces the shard's tree with one rebuilt from snapshot
// bytes, modelling a crashed shard server restarting from its last
// checkpoint. Pending requests are dropped (crash semantics: requests
// not yet in a snapshot are the routing layer's to retry); gen
// supplies the restarted shard's future key draws and must not be a
// generator another shard uses.
func (s *Shard) Restore(data []byte, gen *keys.Generator) error {
	if gen == nil {
		gen = keys.NewGenerator()
	}
	tree, err := keytree.Restore(data, gen,
		keytree.WithWorkers(s.cfg.Workers),
		keytree.WithObs(s.cfg.Obs),
		keytree.WithStrategy(s.cfg.Strategy))
	if err != nil {
		return fmt.Errorf("shard %d: %w", s.idx, err)
	}
	if tree.Degree() != s.d {
		return fmt.Errorf("shard %d: snapshot degree %d, shard degree %d", s.idx, tree.Degree(), s.d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tree = tree
	s.joins, s.leaves = nil, nil
	s.queued = make(map[keytree.Member]bool)
	s.restores++
	if s.reg.Enabled() {
		s.reg.Inc(obs.CShardRestores)
	}
	return nil
}

// Restores returns how many times this shard restored from a snapshot.
func (s *Shard) Restores() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restores
}

// N returns the shard's current member count.
func (s *Shard) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.N()
}

// RootKey returns the shard tree's root key -- the "individual key" of
// the shard's leaf slot in the coordinator top tree.
func (s *Shard) RootKey() keys.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.GroupKey()
}

// MaxKID returns the shard tree's local maximum k-node ID.
func (s *Shard) MaxKID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.MaxKID()
}

// UserIDs returns the shard tree's sorted local u-node IDs.
func (s *Shard) UserIDs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.UserIDs()
}

// Members returns the shard's members sorted by local node ID.
func (s *Shard) Members() []keytree.Member {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Members()
}

// UserID returns member m's local u-node ID.
func (s *Shard) UserID(m keytree.Member) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.UserID(m)
}

// IndividualKey returns member m's individual key.
func (s *Shard) IndividualKey(m keytree.Member) (keys.Key, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.IndividualKey(m)
}

// PathKeys returns member m's local path keys, keyed by local node ID.
func (s *Shard) PathKeys(m keytree.Member) (map[int]keys.Key, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.PathKeys(m)
}

// NodeKey resolves the key at a local node ID.
func (s *Shard) NodeKey(id int) (keys.Key, keytree.NodeKind, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.NodeKey(id)
}

// ForEachKNode sweeps the shard tree's live auxiliary keys in
// ascending local ID order.
func (s *Shard) ForEachKNode(fn func(id int, k keys.Key)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tree.ForEachKNode(fn)
}

// CheckInvariant validates the shard tree (tests).
func (s *Shard) CheckInvariant() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.CheckInvariant()
}
