package shard

import "testing"

func TestLevelAndLevelStart(t *testing.T) {
	for _, d := range []int{2, 3, 4, 8} {
		for l := 0; l < 6; l++ {
			lo, hi := LevelStart(d, l), LevelStart(d, l+1)
			if got := hi - lo; got != pow(d, l) {
				t.Fatalf("d=%d level %d width %d, want %d", d, l, got, pow(d, l))
			}
			for _, id := range []int{lo, lo + (hi-lo)/2, hi - 1} {
				if got := Level(d, id); got != l {
					t.Fatalf("d=%d Level(%d) = %d, want %d", d, id, got, l)
				}
			}
		}
	}
}

func TestTopHeight(t *testing.T) {
	cases := []struct{ d, s, h int }{
		{4, 1, 0}, {4, 2, 1}, {4, 4, 1}, {4, 5, 2}, {4, 16, 2}, {4, 17, 3},
		{2, 1, 0}, {2, 2, 1}, {2, 3, 2}, {2, 8, 3},
	}
	for _, c := range cases {
		if got := topHeight(c.d, c.s); got != c.h {
			t.Fatalf("topHeight(%d, %d) = %d, want %d", c.d, c.s, got, c.h)
		}
	}
}

// Globalization must commute with the child relation -- the property
// that lets members run parent walks and Theorem 4.2 rederivation on
// global IDs without knowing about shards.
func TestGlobalizeCommutesWithChildren(t *testing.T) {
	for _, d := range []int{2, 4} {
		for _, pos := range []int{0, 1, 3, LevelStart(d, 2) + 1} {
			for local := 0; local < 200; local++ {
				g := globalize(d, pos, local)
				for j := 1; j <= d; j++ {
					want := d*g + j
					if got := globalize(d, pos, d*local+j); got != want {
						t.Fatalf("d=%d pos=%d: globalize(child %d) = %d, want child of %d = %d",
							d, pos, d*local+j, got, g, want)
					}
				}
			}
		}
	}
}

// Globalization must also preserve ID order (the numbering is
// level-ordered), which is what keeps per-shard MaxKID sound: every
// comparison NewID makes on global IDs matches the local one.
func TestGlobalizeOrderPreserving(t *testing.T) {
	d, pos := 4, LevelStart(4, 1)+2
	prev := -1
	for local := 0; local < 500; local++ {
		g := globalize(d, pos, local)
		if g <= prev {
			t.Fatalf("globalize(%d)=%d not greater than globalize(%d)=%d", local, g, local-1, prev)
		}
		prev = g
	}
}

func TestLocalizeRoundTrip(t *testing.T) {
	d := 4
	posLevel := 2
	pos := LevelStart(d, posLevel) + 3
	other := pos + 1
	for local := 0; local < 300; local++ {
		g := globalize(d, pos, local)
		back, ok := localize(d, pos, posLevel, g)
		if !ok || back != local {
			t.Fatalf("localize(globalize(%d)) = (%d, %v)", local, back, ok)
		}
		// The same global ID must not localize into a sibling subtree.
		if _, ok := localize(d, other, posLevel, g); ok {
			t.Fatalf("global %d localized into foreign subtree at pos %d", g, other)
		}
	}
	// Nodes above the shard leaf level never localize.
	if _, ok := localize(d, pos, posLevel, 0); ok {
		t.Fatal("top-tree root localized into a shard")
	}
}

// With a single shard the top tree vanishes and globalization is the
// identity -- the S=1 coordinator is literally the unsharded server.
func TestSingleShardIdentity(t *testing.T) {
	d := 4
	if h := topHeight(d, 1); h != 0 {
		t.Fatalf("topHeight(d,1) = %d, want 0", h)
	}
	for local := 0; local < 100; local++ {
		if g := globalize(d, 0, local); g != local {
			t.Fatalf("S=1 globalize(%d) = %d, want identity", local, g)
		}
	}
}
