package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/tuning"
)

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Tuning supplies Degree, K, the Shards/ShardRange routing knobs
	// and the coordinator's parallelism bound (Workers).
	tuning.Tuning
	// KeySeed, when non-zero, derives one deterministic generator per
	// shard (plus one for the top tree) -- tests and experiments only.
	KeySeed uint64
	// ShardWorkers bounds each shard tree's internal wrap pipeline;
	// 0 inherits Tuning.Workers. Scale-out harnesses set 1 so a shard
	// models one single-core server and the speedup measured is the
	// coordinator's horizontal fan-out, not intra-batch threading.
	ShardWorkers int
	// Signer, when non-nil, signs every merged interval's Merkle auth
	// root (Merged.AuthRoot) -- one signature per consistent cut,
	// however many shards contributed, with per-slice inclusion proofs
	// available via Merged.SliceProof.
	Signer *keys.Signer
	// Obs receives coordinator and shard metrics; nil disables them.
	Obs *obs.Registry
}

// topNode is one coordinator-level internal node: the thin root-path
// layer above the shard trees.
type topNode struct {
	keyed bool
	key   keys.Key
}

// Coordinator routes membership changes to shards and merges their
// interval batches into one consistent-cut rekey message. It is safe
// for concurrent use.
type Coordinator struct {
	d, k     int
	rangeW   int
	workers  int
	keySeed  uint64
	signer   *keys.Signer
	reg      *obs.Registry
	shards   []*Shard
	topLevel int // top-tree height H: the level of the shard leaf slots
	leafBase int // A(H): global ID of the first leaf slot

	mu sync.Mutex
	// The state below is guarded by mu.
	top      []topNode       // guarded by mu; internal top nodes, IDs [0, leafBase)
	topGen   *keys.Generator // guarded by mu
	msgSeq   uint8           // guarded by mu
	restores int             // guarded by mu; counts RestoreShard calls for gen derivation
}

// shardSeedSalt separates the deterministic generator streams of
// shards, the top tree and failover restores (splitmix64 constant).
const shardSeedSalt = 0x9e3779b97f4a7c15

// laneSeed derives one decorrelated generator seed per lane (top tree,
// each shard, each failover restore) from a single KeySeed. splitmix64's
// state space is one additive orbit, so naive seed+offset derivations
// can land two lanes on the same stream -- the XOR inside the
// deterministic generator cancels exactly for small seeds, which a
// coordinator fuzz run caught as a cross-shard key-value collision.
// Running the lane through the splitmix64 finalizer scatters lanes to
// astronomically distant orbit positions.
func laneSeed(seed, lane uint64) uint64 {
	z := seed ^ (lane+1)*shardSeedSalt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewCoordinator builds S empty shards under a top tree. S and the
// routing block width come from the tuning knobs (EffectiveShards /
// EffectiveShardRange).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.Tuning = cfg.Tuning.WithDefaults()
	if err := cfg.Tuning.Validate(); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	strat, err := keytree.NewStrategy(cfg.Strategy)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	s := cfg.EffectiveShards()
	d := cfg.Degree
	shardWorkers := cfg.ShardWorkers
	if shardWorkers == 0 {
		shardWorkers = cfg.Workers
	}
	c := &Coordinator{
		d:        d,
		k:        cfg.K,
		rangeW:   cfg.EffectiveShardRange(),
		workers:  cfg.EffectiveWorkers(),
		keySeed:  cfg.KeySeed,
		signer:   cfg.Signer,
		reg:      cfg.Obs,
		topLevel: topHeight(d, s),
	}
	c.leafBase = LevelStart(d, c.topLevel)
	c.top = make([]topNode, c.leafBase)
	if cfg.KeySeed != 0 {
		c.topGen = keys.NewDeterministicGenerator(laneSeed(cfg.KeySeed, 0))
	} else {
		c.topGen = keys.NewGenerator()
	}
	for i := 0; i < s; i++ {
		var gen *keys.Generator
		if cfg.KeySeed != 0 {
			gen = keys.NewDeterministicGenerator(laneSeed(cfg.KeySeed, uint64(i)+1))
		}
		sh, err := New(Config{
			Index:    i,
			Degree:   d,
			Workers:  shardWorkers,
			Strategy: strat,
			Gen:      gen,
			Obs:      cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// Shards returns the shard count S.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Degree returns the composite tree's degree.
func (c *Coordinator) Degree() int { return c.d }

// TopLevel returns the top-tree height H (shard roots sit at level H).
func (c *Coordinator) TopLevel() int { return c.topLevel }

// Pos returns the global node ID of shard s's root (its leaf slot).
func (c *Coordinator) Pos(s int) int { return c.leafBase + s }

// Shard returns shard s, the addressable unit (snapshots, failover,
// direct inspection).
func (c *Coordinator) Shard(s int) *Shard { return c.shards[s] }

// ShardFor returns the shard index owning member m: W-wide contiguous
// member-ID blocks dealt round-robin, so sequentially allocated
// populations spread evenly.
func (c *Coordinator) ShardFor(m keytree.Member) int {
	return int((int64(m) / int64(c.rangeW)) % int64(len(c.shards)))
}

// QueueJoin routes a join to its shard.
func (c *Coordinator) QueueJoin(m keytree.Member) error {
	if m < 0 {
		return fmt.Errorf("shard: negative member handle %d", m)
	}
	return c.shards[c.ShardFor(m)].QueueJoin(m)
}

// QueueLeave routes a leave to its shard.
func (c *Coordinator) QueueLeave(m keytree.Member) error {
	if m < 0 {
		return fmt.Errorf("shard: negative member handle %d", m)
	}
	return c.shards[c.ShardFor(m)].QueueLeave(m)
}

// Pending sums queued joins and leaves across shards.
func (c *Coordinator) Pending() (joins, leaves int) {
	for _, sh := range c.shards {
		j, l := sh.Pending()
		joins += j
		leaves += l
	}
	return joins, leaves
}

// N returns the group size across all shards.
func (c *Coordinator) N() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.N()
	}
	return n
}

// ErrNoChange is returned by Rekey when no shard has pending
// membership changes.
var ErrNoChange = errors.New("shard: no pending membership changes")

// Rekey ends one interval: every shard with pending changes runs its
// batch in parallel, then the coordinator refreshes the top-tree keys
// on every changed shard's root path, wraps them for the live
// children, and returns the merged consistent-cut message -- signed
// once if a signer is configured.
//
// A cancelled ctx stops the interval before any shard batch that has
// not yet started; batches already running are allowed to finish so
// that no shard is left mid-mutation. Cancellation abandons the
// interval: completed batches keep their new tree state but their
// results are discarded, so the caller must treat the group session
// as broken and re-bootstrap members rather than retry.
func (c *Coordinator) Rekey(ctx context.Context) (*Merged, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	var pend []int
	for i, sh := range c.shards {
		if j, l := sh.Pending(); j+l > 0 {
			pend = append(pend, i)
		}
	}
	if len(pend) == 0 {
		return nil, ErrNoChange
	}
	msgID := c.msgSeq & packet.MaxMsgID
	c.msgSeq++

	// Phase 1: shard batches, in parallel, bounded by the coordinator's
	// worker knob. Each shard draws from its own generator, so the
	// results do not depend on scheduling order.
	results := make([]*keytree.BatchResult, len(c.shards))
	errs := make([]error, len(c.shards))
	batchNs := make([]int64, len(c.shards))
	sem := make(chan struct{}, c.workers)
	var wg sync.WaitGroup
	var ctxErr error
	for _, i := range pend {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			ctxErr = ctx.Err()
		}
		if ctxErr != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			results[i], errs[i] = c.shards[i].ProcessPending()
			batchNs[i] = time.Since(start).Nanoseconds()
		}(i)
	}
	wg.Wait()
	if ctxErr != nil {
		return nil, fmt.Errorf("shard: rekey interval interrupted: %w", ctxErr)
	}
	for _, i := range pend {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}

	// Phase 2: the merge -- top-tree rekey plus slice assembly, the
	// serial root-path work that must stay thin for scale-out to hold.
	mergeStart := time.Now()
	m, err := c.mergeLocked(msgID, results)
	if err != nil {
		return nil, err
	}
	if c.signer != nil {
		sig, err := c.signer.SignRoot(m.AuthRoot())
		if err != nil {
			return nil, fmt.Errorf("shard: signing merged message: %w", err)
		}
		m.Sig = sig
	}
	m.MergeNs = time.Since(mergeStart).Nanoseconds()
	m.ShardBatchNs = batchNs
	if c.reg.Enabled() {
		c.reg.ObserveSince(obs.HCoordMerge, mergeStart)
	}
	return m, nil
}

// mergeLocked refreshes the top tree for the interval's changed shards
// and assembles the Merged message. Callers hold c.mu.
func (c *Coordinator) mergeLocked(msgID uint8, results []*keytree.BatchResult) (*Merged, error) {
	d := c.d
	// live[t]: does top subtree t contain any current member? Leaves
	// consult the (post-batch) shard populations; internal nodes fold
	// their children bottom-up (children have larger IDs).
	liveLeaf := func(id int) bool {
		s := id - c.leafBase
		return s >= 0 && s < len(c.shards) && c.shards[s].N() > 0
	}
	live := make([]bool, c.leafBase)
	for t := c.leafBase - 1; t >= 0; t-- {
		for ch := d*t + 1; ch <= d*t+d; ch++ {
			if ch < c.leafBase {
				if live[ch] {
					live[t] = true
					break
				}
			} else if liveLeaf(ch) {
				live[t] = true
				break
			}
		}
	}

	// Mark the root path of every changed shard. With a single shard
	// there is no top tree (the shard root is the group root) and no
	// marking to do.
	marked := make(map[int]bool)
	for s, res := range results {
		if res == nil || c.leafBase == 0 {
			continue
		}
		for p := (c.Pos(s) - 1) / d; ; p = (p - 1) / d {
			marked[p] = true
			if p == 0 {
				break
			}
		}
	}
	markedIDs := make([]int, 0, len(marked))
	for t := range marked {
		markedIDs = append(markedIDs, t)
	}
	// Fresh keys are drawn in ascending-ID order (deterministic), then
	// encryptions are emitted deepest level first -- the same bottom-up
	// convention keytree uses, with every child key read after all
	// marked keys are installed (a consistent cut).
	sort.Ints(markedIDs)
	fresh, err := c.topGen.NewKeys(len(markedIDs))
	if err != nil {
		return nil, fmt.Errorf("shard: top-tree key generation: %w", err)
	}
	for i, t := range markedIDs {
		c.top[t] = topNode{keyed: true, key: fresh[i]}
	}
	emitOrder := append([]int(nil), markedIDs...)
	sort.Slice(emitOrder, func(i, j int) bool {
		li, lj := Level(d, emitOrder[i]), Level(d, emitOrder[j])
		if li != lj {
			return li > lj
		}
		return emitOrder[i] < emitOrder[j]
	})
	var topEncs []keytree.Encryption
	for _, t := range emitOrder {
		for ch := d*t + 1; ch <= d*t+d; ch++ {
			var ck keys.Key
			switch {
			case ch < c.leafBase:
				if !live[ch] || !c.top[ch].keyed {
					continue
				}
				ck = c.top[ch].key
			default:
				s := ch - c.leafBase
				if s < 0 || s >= len(c.shards) || c.shards[s].N() == 0 {
					continue
				}
				ck = c.shards[s].RootKey()
			}
			topEncs = append(topEncs, keytree.Encryption{
				ID:      uint32(ch),
				Wrapped: keys.Wrap(ck, c.top[t].key),
			})
		}
	}

	m := &Merged{
		MsgID:    msgID,
		TopEncs:  topEncs,
		d:        d,
		topLevel: c.topLevel,
		leafBase: c.leafBase,
		topByID:  make(map[int]keytree.Encryption, len(topEncs)),
	}
	for _, e := range topEncs {
		m.topByID[int(e.ID)] = e
	}
	for s, sh := range c.shards {
		pos := c.Pos(s)
		sl := &Slice{m: m, Index: s, Pos: pos, Res: results[s], MaxKID: -1}
		var localUIDs []int
		var localMax int
		if results[s] != nil {
			localUIDs, localMax = results[s].UserIDs, results[s].MaxKID
		} else {
			localUIDs, localMax = sh.UserIDs(), sh.MaxKID()
		}
		if localMax >= 0 {
			sl.MaxKID = globalize(d, pos, localMax)
		}
		sl.userIDs = make([]int, len(localUIDs))
		for i, u := range localUIDs {
			sl.userIDs[i] = globalize(d, pos, u)
		}
		m.Slices = append(m.Slices, sl)
	}
	m.GroupKey = c.groupKeyLocked()
	return m, nil
}

// groupKeyLocked returns the composite group key: the top root's key,
// or with a single shard the shard root itself. Callers hold c.mu.
func (c *Coordinator) groupKeyLocked() keys.Key {
	if c.leafBase == 0 {
		return c.shards[0].RootKey()
	}
	if !c.top[0].keyed {
		return keys.Key{}
	}
	return c.top[0].key
}

// RestoreShard replaces shard s's tree from a snapshot, modelling a
// shard-server failover mid-run. The restored shard draws future keys
// from a fresh stream (derived deterministically under KeySeed).
func (c *Coordinator) RestoreShard(s int, snapshot []byte) error {
	if s < 0 || s >= len(c.shards) {
		return fmt.Errorf("shard: restore index %d out of range [0,%d)", s, len(c.shards))
	}
	c.mu.Lock()
	c.restores++
	var gen *keys.Generator
	if c.keySeed != 0 {
		// Restore lanes follow the shard lanes: lane S+r for restore r.
		gen = keys.NewDeterministicGenerator(laneSeed(c.keySeed, uint64(len(c.shards))+uint64(c.restores)))
	} else {
		gen = keys.NewGenerator()
	}
	c.mu.Unlock()
	return c.shards[s].Restore(snapshot, gen)
}

// --- oracle.TreeView over the composite tree ---

// Members returns every member across shards, sorted by global ID.
func (c *Coordinator) Members() []keytree.Member {
	type mu struct {
		m  keytree.Member
		id int
	}
	var all []mu
	for s, sh := range c.shards {
		pos := c.Pos(s)
		for _, m := range sh.Members() {
			lid, _ := sh.UserID(m)
			all = append(all, mu{m, globalize(c.d, pos, lid)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	out := make([]keytree.Member, len(all))
	for i, e := range all {
		out[i] = e.m
	}
	return out
}

// UserID returns member m's global u-node ID.
func (c *Coordinator) UserID(m keytree.Member) (int, bool) {
	sh := c.shards[c.ShardFor(m)]
	lid, ok := sh.UserID(m)
	if !ok {
		return 0, false
	}
	return globalize(c.d, c.Pos(sh.Index()), lid), true
}

// IndividualKey returns member m's individual key.
func (c *Coordinator) IndividualKey(m keytree.Member) (keys.Key, bool) {
	return c.shards[c.ShardFor(m)].IndividualKey(m)
}

// PathKeys returns the keys member m should hold, keyed by global node
// ID: its shard path globalized plus the top-tree keys above its
// shard's root.
func (c *Coordinator) PathKeys(m keytree.Member) (map[int]keys.Key, bool) {
	sh := c.shards[c.ShardFor(m)]
	local, ok := sh.PathKeys(m)
	if !ok {
		return nil, false
	}
	pos := c.Pos(sh.Index())
	out := make(map[int]keys.Key, len(local)+c.topLevel)
	for id, k := range local {
		out[globalize(c.d, pos, id)] = k
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for p := pos; p > 0; {
		p = (p - 1) / c.d
		if c.top[p].keyed {
			out[p] = c.top[p].key
		}
	}
	return out, true
}

// GroupKey returns the composite group key.
func (c *Coordinator) GroupKey() keys.Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groupKeyLocked()
}

// NodeKey resolves the key at a global node ID: a top-tree node or a
// globalized shard node.
func (c *Coordinator) NodeKey(id int) (keys.Key, keytree.NodeKind, bool) {
	if id < 0 {
		return keys.Key{}, keytree.NNode, false
	}
	if id < c.leafBase {
		c.mu.Lock()
		defer c.mu.Unlock()
		if !c.top[id].keyed {
			return keys.Key{}, keytree.NNode, false
		}
		return c.top[id].key, keytree.KNode, true
	}
	sh, local, ok := c.resolve(id)
	if !ok {
		return keys.Key{}, keytree.NNode, false
	}
	return sh.NodeKey(local)
}

// resolve maps a global ID at or below the leaf level to its owning
// shard and local ID.
func (c *Coordinator) resolve(id int) (*Shard, int, bool) {
	l := Level(c.d, id) - c.topLevel
	if l < 0 {
		return nil, 0, false
	}
	anc := id
	for i := 0; i < l; i++ {
		anc = (anc - 1) / c.d
	}
	s := anc - c.leafBase
	if s < 0 || s >= len(c.shards) {
		return nil, 0, false
	}
	return c.shards[s], id - anc*pow(c.d, l), true
}

// ForEachKNode sweeps every live auxiliary key of the composite tree:
// the keyed top nodes, then each shard's k-nodes globalized.
func (c *Coordinator) ForEachKNode(fn func(id int, k keys.Key)) {
	c.mu.Lock()
	for id := range c.top {
		if c.top[id].keyed {
			fn(id, c.top[id].key)
		}
	}
	c.mu.Unlock()
	for s, sh := range c.shards {
		pos := c.Pos(s)
		sh.ForEachKNode(func(id int, k keys.Key) {
			fn(globalize(c.d, pos, id), k)
		})
	}
}
