// Composite-tree topology: how S independent shard trees hang under
// one coordinator-level top tree in a single global node-ID space.
//
// The top tree is a perfect d-ary tree of height H = ceil(log_d S):
// its internal nodes occupy global IDs [0, A(H)) and its leaf slots
// occupy [A(H), A(H+1)), where A(l) = (d^l-1)/(d-1) is the first ID of
// level l. Shard s's tree root is grafted at leaf slot P(s) = A(H)+s,
// so a shard-local node x at local level l maps to global ID
//
//	global(x) = x + P(s) * d^l.
//
// This globalization commutes with the child relation
// (global(d*x+j) = d*global(x)+j for j in 1..d), so parent walks,
// leftmost-split arithmetic and the Theorem 4.2 rederivation all hold
// on globalized IDs exactly as they do locally -- members never learn
// they are talking to a shard. With S=1 the top tree is empty
// (H=0, P(0)=0) and globalization is the identity: the coordinator's
// output is byte-identical to a single tree's.
package shard

// Level returns the level of node id in a d-ary top-down numbering:
// the l with A(l) <= id < A(l+1). The root is level 0.
func Level(d, id int) int {
	l := 0
	next := 1 // A(l+1) - A(l) = d^l nodes at level l
	start := 0
	for id >= start+next {
		start += next
		next *= d
		l++
	}
	return l
}

// LevelStart returns A(l) = (d^l-1)/(d-1), the first node ID at level l.
func LevelStart(d, l int) int {
	start := 0
	pow := 1
	for i := 0; i < l; i++ {
		start += pow
		pow *= d
	}
	return start
}

// pow returns d^l for small l.
func pow(d, l int) int {
	p := 1
	for i := 0; i < l; i++ {
		p *= d
	}
	return p
}

// topHeight returns the height H of the smallest perfect d-ary tree
// with at least s leaves: the smallest H with d^H >= s.
func topHeight(d, s int) int {
	h := 0
	for leaves := 1; leaves < s; leaves *= d {
		h++
	}
	return h
}

// globalize maps a shard-local node ID to its global composite-tree ID
// given the shard's leaf position pos: local + pos*d^Level(local).
func globalize(d, pos, local int) int {
	return local + pos*pow(d, Level(d, local))
}

// localize inverts globalize for the shard at leaf position pos (at
// level posLevel): it returns the local ID and true iff global lies in
// that shard's subtree.
func localize(d, pos, posLevel, global int) (int, bool) {
	l := Level(d, global) - posLevel
	if l < 0 {
		return 0, false
	}
	// The level-posLevel ancestor of global must be pos itself.
	anc := global
	for i := 0; i < l; i++ {
		anc = (anc - 1) / d
	}
	if anc != pos {
		return 0, false
	}
	return global - pos*pow(d, l), true
}
