package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestNilRegistryNoops: every method must be a safe no-op on nil, since
// the uninstrumented hot paths call straight through.
func TestNilRegistryNoops(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.Inc(CEncSent)
	r.Add(CNACKRecv, 7)
	r.Set(GRho, 1.5)
	r.Observe(HNACKsPerRound, 3)
	r.Emit(Event{Kind: EvRoundStart})
	if got := r.CounterValue(CEncSent); got != 0 {
		t.Fatalf("nil CounterValue = %d", got)
	}
	if got := r.GaugeValue(GRho); got != 0 {
		t.Fatalf("nil GaugeValue = %v", got)
	}
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil Events = %v", evs)
	}
	if d := r.EventsDropped(); d != 0 {
		t.Fatalf("nil EventsDropped = %d", d)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil Snapshot not empty")
	}
}

// TestConcurrentCounters hammers counters, gauges and histograms from
// many goroutines (run under -race) and checks the totals are exact.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Inc(CEncSent)
				r.Add(CParitySent, 2)
				r.Set(GRho, 1.25)
				r.Observe(HNACKsPerRound, float64(i%7))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue(CEncSent); got != workers*perWorker {
		t.Fatalf("enc_sent = %d, want %d", got, workers*perWorker)
	}
	if got := r.CounterValue(CParitySent); got != 2*workers*perWorker {
		t.Fatalf("parity_sent = %d, want %d", got, 2*workers*perWorker)
	}
	if got := r.GaugeValue(GRho); got != 1.25 {
		t.Fatalf("rho = %v, want 1.25", got)
	}
	hs := r.Snapshot().Histograms["nacks_per_round"]
	if hs.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", hs.Count, workers*perWorker)
	}
	// Sum accumulates via CAS; must be exact for integer observations.
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i % 7)
	}
	wantSum *= workers
	if math.Abs(hs.Sum-wantSum) > 1e-6 {
		t.Fatalf("hist sum = %v, want %v", hs.Sum, wantSum)
	}
	var inBuckets int64
	for _, b := range hs.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != hs.Count {
		t.Fatalf("bucket counts total %d, want %d", inBuckets, hs.Count)
	}
}

// TestConcurrentEmit checks ring-buffer trace integrity under
// concurrent writers: sequence numbers must be dense and unique.
func TestConcurrentEmit(t *testing.T) {
	r := NewWithDepth(256)
	const workers = 4
	const perWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Emit(Event{Kind: EvNACKReceived, User: w*perWorker + i})
			}
		}(w)
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != 256 {
		t.Fatalf("retained %d events, want 256", len(evs))
	}
	if dropped := r.EventsDropped(); dropped != workers*perWorker-256 {
		t.Fatalf("dropped = %d, want %d", dropped, workers*perWorker-256)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-dense seq at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestRingWraparound: a depth-8 ring retains exactly the last 8 events
// in emit order.
func TestRingWraparound(t *testing.T) {
	r := NewWithDepth(8)
	for i := 0; i < 20; i++ {
		r.Emit(Event{Kind: EvRoundStart, Round: i})
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if ev.Round != 12+i {
			t.Fatalf("event %d has Round %d, want %d", i, ev.Round, 12+i)
		}
		if ev.Seq != uint64(12+i) {
			t.Fatalf("event %d has Seq %d, want %d", i, ev.Seq, 12+i)
		}
		if ev.Name != "RoundStart" {
			t.Fatalf("event %d has Name %q", i, ev.Name)
		}
	}
	if d := r.EventsDropped(); d != 12 {
		t.Fatalf("dropped = %d, want 12", d)
	}
}

// TestEventsBeforeWrap returns fewer events than depth without stale
// zero entries.
func TestEventsBeforeWrap(t *testing.T) {
	r := NewWithDepth(8)
	r.Emit(Event{Kind: EvRekeyBuilt, Value: 42})
	evs := r.Events()
	if len(evs) != 1 || evs[0].Value != 42 || evs[0].Name != "RekeyBuilt" {
		t.Fatalf("events = %+v", evs)
	}
	if d := r.EventsDropped(); d != 0 {
		t.Fatalf("dropped = %d, want 0", d)
	}
}

// TestSnapshotJSON: the snapshot must marshal (no +Inf leakage) and
// round-trip the overflow bucket as null.
func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Observe(HRoundLatency, 99) // lands in the +Inf overflow bucket
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var snap struct {
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				Le    *float64 `json:"le"`
				Count int64    `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	hs := snap.Histograms["round_latency_s"]
	if hs.Count != 1 {
		t.Fatalf("round_latency_s count = %d", hs.Count)
	}
	last := hs.Buckets[len(hs.Buckets)-1]
	if last.Le != nil {
		t.Fatalf("overflow bucket le = %v, want null", *last.Le)
	}
	if last.Count != 1 {
		t.Fatalf("overflow bucket count = %d, want 1", last.Count)
	}
}

// TestHandlers drives /metrics and /trace through the mux.
func TestHandlers(t *testing.T) {
	r := New()
	r.Inc(CRekeys)
	r.Set(GGroupSize, 128)
	r.Emit(Event{Kind: EvSwitchToUnicast, MsgID: 3, Value: 2})
	mux := r.ServeMux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	var m struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("/metrics json: %v", err)
	}
	if m.Counters["rekeys"] != 1 || m.Gauges["group_size"] != 128 {
		t.Fatalf("/metrics contents: %+v", m)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/trace status %d", rec.Code)
	}
	var tr struct {
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			Kind  string  `json:"kind"`
			MsgID uint8   `json:"msg_id"`
			Value float64 `json:"value"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("/trace json: %v", err)
	}
	if len(tr.Events) != 1 || tr.Events[0].Kind != "SwitchToUnicast" ||
		tr.Events[0].MsgID != 3 || tr.Events[0].Value != 2 {
		t.Fatalf("/trace contents: %+v", tr)
	}
}
