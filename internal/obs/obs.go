// Package obs is the rekey pipeline's observability layer: a
// lightweight, allocation-conscious metrics and event-trace subsystem.
//
// A Registry holds a fixed set of atomic counters, gauges and bounded
// histograms (identified by compile-time IDs, so the hot path touches a
// fixed-size array slot -- no map lookups, no allocation) plus a
// ring-buffer trace of typed protocol events (RoundStart, NACKReceived,
// RhoAdjusted, SwitchToUnicast, MemberDone, ...). One registry is
// threaded through the key server, the transport protocol engine and
// the UDP transport; the daemons expose it over HTTP (see http.go).
//
// Every method is safe on a nil *Registry and does nothing, so
// uninstrumented paths -- the simulation harness, benchmarks -- pay
// only a nil check. Callers doing extra work purely to feed the
// registry (timing a phase, say) should gate it on Enabled.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies a monotonically increasing counter.
type Counter int

// Counters. Server-side (key server + transport) first, then
// client-side; one registry usually populates only one side.
const (
	// CRekeys counts rekey messages built by the key server.
	CRekeys Counter = iota
	// CJoins and CLeaves count membership changes processed in batches.
	CJoins
	CLeaves
	// CEncSent, CParitySent and CUsrSent count multicast/unicast packets
	// the transport sent, by type (one per packet, not per receiver).
	CEncSent
	CParitySent
	CUsrSent
	// CNACKRecv counts NACK packets the server accepted (deduplicated
	// per user per round, matching udptrans.Stats).
	CNACKRecv
	// CNACKIgnored counts NACKs dropped as duplicate/stale/garbled.
	CNACKIgnored
	// CParityCacheHit / CParityCacheMiss count Parity() calls served
	// from the per-message parity cache vs needing a fresh FEC encode.
	CParityCacheHit
	CParityCacheMiss
	// CUnicastWaves counts USR retransmission waves run.
	CUnicastWaves
	// CKeysGenerated counts fresh keys the key server drew (individual
	// keys for placed users plus new k-node keys).
	CKeysGenerated
	// CWraps counts {k'}_k wrap operations the batch pipeline performed.
	CWraps
	// CWrapNs accumulates nanoseconds spent in the wrap-emission phase
	// of batch processing (the AES+HMAC-dominated server hot path).
	CWrapNs
	// Client side.
	// CEncRecv, CParityRecv and CUsrRecv count packets a member's
	// transport client received, by type.
	CEncRecv
	CParityRecv
	CUsrRecv
	// CNACKSent counts NACKs the client emitted at round boundaries.
	CNACKSent
	// CIngestStale counts packets for an already-completed message.
	CIngestStale
	// CIngestErrors counts malformed or misdirected packets.
	CIngestErrors
	// CFECRecoveries counts completions that needed FEC decoding.
	CFECRecoveries
	// CDecodeCacheHit / CDecodeCacheMiss count FEC decodes whose
	// inverted decode matrix was served from the coder's LRU cache vs
	// freshly inverted (loss patterns repeat across blocks in a burst).
	CDecodeCacheHit
	CDecodeCacheMiss
	// Scenario harness side.
	// CScenarioSteps counts churn batches a scenario driver applied.
	CScenarioSteps
	// COracleChecks counts invariant-oracle batch verifications run;
	// COracleViolations counts checks that found a protocol invariant
	// broken (forward secrecy, key consistency or a recovery bound).
	COracleChecks
	COracleViolations
	// Sharded server side.
	// CShardBatches counts per-shard ProcessPending batches the
	// coordinator ran; CShardRestores counts mid-run shard failovers
	// restored from a snapshot.
	CShardBatches
	CShardRestores
	// Zero-copy send path.
	// CSendBufReuse counts pooled send buffers served from the pool;
	// CSendBufAlloc counts fresh allocations the pool had to make.
	CSendBufReuse
	CSendBufAlloc

	numCounters
)

var counterNames = [numCounters]string{
	CRekeys:           "rekeys",
	CJoins:            "joins",
	CLeaves:           "leaves",
	CEncSent:          "enc_sent",
	CParitySent:       "parity_sent",
	CUsrSent:          "usr_sent",
	CNACKRecv:         "nack_recv",
	CNACKIgnored:      "nack_ignored",
	CParityCacheHit:   "parity_cache_hit",
	CParityCacheMiss:  "parity_cache_miss",
	CUnicastWaves:     "unicast_waves",
	CKeysGenerated:    "keys_generated",
	CWraps:            "wraps",
	CWrapNs:           "wrap_ns",
	CEncRecv:          "enc_recv",
	CParityRecv:       "parity_recv",
	CUsrRecv:          "usr_recv",
	CNACKSent:         "nack_sent",
	CIngestStale:      "ingest_stale",
	CIngestErrors:     "ingest_errors",
	CFECRecoveries:    "fec_recoveries",
	CDecodeCacheHit:   "decode_cache_hit",
	CDecodeCacheMiss:  "decode_cache_miss",
	CScenarioSteps:    "scenario_steps",
	COracleChecks:     "oracle_checks",
	COracleViolations: "oracle_violations",
	CShardBatches:     "shard_batches",
	CShardRestores:    "shard_restores",
	CSendBufReuse:     "sendbuf_reuse",
	CSendBufAlloc:     "sendbuf_alloc",
}

// Gauge identifies a last-value-wins measurement.
type Gauge int

const (
	// GRho is the proactivity factor in effect.
	GRho Gauge = iota
	// GGroupSize is the key server's current member count.
	GGroupSize
	// GPendingJoins / GPendingLeaves are the queued batch sizes.
	GPendingJoins
	GPendingLeaves

	numGauges
)

var gaugeNames = [numGauges]string{
	GRho:           "rho",
	GGroupSize:     "group_size",
	GPendingJoins:  "pending_joins",
	GPendingLeaves: "pending_leaves",
}

// Hist identifies a bounded histogram.
type Hist int

const (
	// HRoundLatency is seconds from a round's first send to the end of
	// its NACK collection window.
	HRoundLatency Hist = iota
	// HNACKsPerRound is accepted NACKs per feedback round.
	HNACKsPerRound
	// HParityPerBlock is parity packets generated per block per message.
	HParityPerBlock
	// HBatchSize is joins+leaves per rekey batch.
	HBatchSize
	// HRekeyBuild is seconds to build one rekey message (marking + key
	// assignment + materialisation -- the sign/wrap-dominated phase).
	HRekeyBuild
	// HParityEncode is seconds per PrecomputeParity fan-out.
	HParityEncode
	// HShardBatch is seconds per shard ProcessPending batch (one
	// shard's share of a coordinator interval).
	HShardBatch
	// HCoordMerge is seconds the coordinator spends merging shard
	// results under the top tree and signing, per interval.
	HCoordMerge
	// HSignRoot is seconds per interval spent building the interval
	// Merkle tree and signing its root (the amortized-signing cost that
	// replaces sign-per-message).
	HSignRoot
	// HMerkleProofBytes is the auth trailer size in bytes per packet
	// kind built (the O(log n) proof overhead the paper's capacity
	// analysis must budget for).
	HMerkleProofBytes

	numHists
)

var histNames = [numHists]string{
	HRoundLatency:     "round_latency_s",
	HNACKsPerRound:    "nacks_per_round",
	HParityPerBlock:   "parity_per_block",
	HBatchSize:        "batch_size",
	HRekeyBuild:       "rekey_build_s",
	HParityEncode:     "parity_encode_s",
	HShardBatch:       "shard_batch_s",
	HCoordMerge:       "coord_merge_s",
	HSignRoot:         "sign_root_s",
	HMerkleProofBytes: "merkle_proof_bytes",
}

// histBounds are each histogram's bucket upper bounds (a final +Inf
// bucket is implicit). Kept small: histograms are bounded by design.
var histBounds = [numHists][]float64{
	HRoundLatency:     {0.001, 0.005, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5},
	HNACKsPerRound:    {0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000},
	HParityPerBlock:   {0, 1, 2, 3, 5, 8, 13, 21, 34, 55},
	HBatchSize:        {1, 2, 5, 10, 20, 50, 100, 500, 1000, 5000},
	HRekeyBuild:       {0.0001, 0.0005, 0.001, 0.005, 0.02, 0.05, 0.1, 0.5, 1, 5},
	HParityEncode:     {0.0001, 0.0005, 0.001, 0.005, 0.02, 0.05, 0.1, 0.5, 1, 5},
	HShardBatch:       {0.0001, 0.0005, 0.001, 0.005, 0.02, 0.05, 0.1, 0.5, 1, 5},
	HCoordMerge:       {0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.02, 0.05, 0.1, 0.5, 1},
	HSignRoot:         {0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.02, 0.05, 0.1, 0.5, 1},
	HMerkleProofBytes: {0, 64, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048},
}

// EventKind types a trace event.
type EventKind uint8

const (
	// EvRekeyBuilt: the key server built a rekey message
	// (Value = real ENC packet count h).
	EvRekeyBuilt EventKind = iota
	// EvRoundStart: a multicast round began (Value = packets to send).
	EvRoundStart
	// EvNACKReceived: the server accepted a NACK (User = node ID,
	// Value = max parity requested in it).
	EvNACKReceived
	// EvRhoAdjusted: AdjustRho changed the proactivity factor
	// (Value = new rho).
	EvRhoAdjusted
	// EvSwitchToUnicast: the transport entered the unicast USR phase
	// (Value = pending user count).
	EvSwitchToUnicast
	// EvMemberDone: a member completed key recovery (client side;
	// Value = 1 if recovery needed FEC decoding).
	EvMemberDone
)

var eventKindNames = [...]string{
	EvRekeyBuilt:      "RekeyBuilt",
	EvRoundStart:      "RoundStart",
	EvNACKReceived:    "NACKReceived",
	EvRhoAdjusted:     "RhoAdjusted",
	EvSwitchToUnicast: "SwitchToUnicast",
	EvMemberDone:      "MemberDone",
}

// String returns the event kind's wire name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "Unknown"
}

// Event is one trace entry. Seq and Time are assigned by Emit.
type Event struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Kind  EventKind `json:"-"`
	Name  string    `json:"kind"` // Kind.String(), filled by Emit
	MsgID uint8     `json:"msg_id"`
	Round int       `json:"round,omitempty"`
	User  int       `json:"user,omitempty"`
	Value float64   `json:"value,omitempty"`
}

// DefaultTraceDepth is the ring size New uses.
const DefaultTraceDepth = 1024

// Registry is one pipeline's metrics + trace sink. The zero value is
// not usable; construct with New or NewWithDepth. All methods are
// goroutine-safe and no-ops on a nil receiver.
type Registry struct {
	counters [numCounters]atomic.Int64
	gauges   [numGauges]atomic.Uint64 // math.Float64bits
	hists    [numHists]histogram
	start    time.Time

	trace struct {
		mu   sync.Mutex
		buf  []Event // guarded by mu
		next uint64  // guarded by mu; total emitted, buf slot = next % len(buf)
	}
}

type histogram struct {
	count   atomic.Int64
	sum     atomic.Uint64 // math.Float64bits, CAS-accumulated
	buckets []atomic.Int64
}

// New returns a registry with the default trace depth.
func New() *Registry { return NewWithDepth(DefaultTraceDepth) }

// NewWithDepth returns a registry whose event ring holds depth entries
// (minimum 1).
func NewWithDepth(depth int) *Registry {
	if depth < 1 {
		depth = 1
	}
	r := &Registry{start: time.Now()}
	for h := range r.hists {
		r.hists[h].buckets = make([]atomic.Int64, len(histBounds[h])+1)
	}
	r.trace.buf = make([]Event, depth)
	return r
}

// Enabled reports whether the registry records anything. Use it to gate
// work done solely to compute an observation (e.g. time.Now pairs).
//
//rekeylint:hotpath
func (r *Registry) Enabled() bool { return r != nil }

// Add increments counter c by n.
//
//rekeylint:hotpath
func (r *Registry) Add(c Counter, n int64) {
	if r == nil {
		return
	}
	r.counters[c].Add(n)
}

// Inc increments counter c by one.
//
//rekeylint:hotpath
func (r *Registry) Inc(c Counter) { r.Add(c, 1) }

// CounterValue returns counter c's current value (0 on nil).
//
//rekeylint:hotpath
func (r *Registry) CounterValue(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// Set stores gauge g.
//
//rekeylint:hotpath
func (r *Registry) Set(g Gauge, v float64) {
	if r == nil {
		return
	}
	r.gauges[g].Store(math.Float64bits(v))
}

// GaugeValue returns gauge g's current value (0 on nil).
//
//rekeylint:hotpath
func (r *Registry) GaugeValue(g Gauge) float64 {
	if r == nil {
		return 0
	}
	return math.Float64frombits(r.gauges[g].Load())
}

// Observe records v into histogram h.
//
//rekeylint:hotpath
func (r *Registry) Observe(h Hist, v float64) {
	if r == nil {
		return
	}
	hg := &r.hists[h]
	hg.count.Add(1)
	for {
		old := hg.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if hg.sum.CompareAndSwap(old, nw) {
			break
		}
	}
	bounds := histBounds[h]
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	hg.buckets[i].Add(1)
}

// ObserveSince records the seconds elapsed since start into h. start is
// typically taken only when Enabled() -- on a nil registry this is a
// no-op regardless.
//
//rekeylint:hotpath
func (r *Registry) ObserveSince(h Hist, start time.Time) {
	if r == nil {
		return
	}
	r.Observe(h, time.Since(start).Seconds())
}

// Emit appends a trace event, stamping Seq and Time. ev.Name is
// derived from ev.Kind.
func (r *Registry) Emit(ev Event) {
	if r == nil {
		return
	}
	t := &r.trace
	now := time.Now()
	t.mu.Lock()
	ev.Seq = t.next
	ev.Time = now
	ev.Name = ev.Kind.String()
	t.buf[t.next%uint64(len(t.buf))] = ev
	t.next++
	t.mu.Unlock()
}

// Events returns the retained trace, oldest first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	t := &r.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	depth := uint64(len(t.buf))
	lo := uint64(0)
	if n > depth {
		lo = n - depth
	}
	out := make([]Event, 0, n-lo)
	for s := lo; s < n; s++ {
		out = append(out, t.buf[s%depth])
	}
	return out
}

// EventsDropped returns how many events fell off the ring.
func (r *Registry) EventsDropped() uint64 {
	if r == nil {
		return 0
	}
	t := &r.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next > uint64(len(t.buf)) {
		return t.next - uint64(len(t.buf))
	}
	return 0
}

// Bucket is one histogram bucket in a snapshot: count of observations
// <= Le (the last bucket's Le is +Inf, rendered as null in JSON).
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistSnapshot is one histogram's state.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time JSON-friendly view of the registry.
type Snapshot struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Counters      map[string]int64        `json:"counters"`
	Gauges        map[string]float64      `json:"gauges"`
	Histograms    map[string]HistSnapshot `json:"histograms"`
}

// emptySnapshot allocates the map-initialized zero snapshot.
func emptySnapshot() Snapshot {
	return Snapshot{
		Counters:   make(map[string]int64, int(numCounters)),
		Gauges:     make(map[string]float64, int(numGauges)),
		Histograms: make(map[string]HistSnapshot, int(numHists)),
	}
}

// Snapshot captures every metric. Safe (and empty) on nil.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return emptySnapshot()
	}
	s := emptySnapshot()
	s.UptimeSeconds = time.Since(r.start).Seconds()
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[counterNames[c]] = r.counters[c].Load()
	}
	for g := Gauge(0); g < numGauges; g++ {
		s.Gauges[gaugeNames[g]] = math.Float64frombits(r.gauges[g].Load())
	}
	for h := Hist(0); h < numHists; h++ {
		hg := &r.hists[h]
		hs := HistSnapshot{
			Count: hg.count.Load(),
			Sum:   math.Float64frombits(hg.sum.Load()),
		}
		bounds := histBounds[h]
		for i := range hg.buckets {
			le := math.Inf(1)
			if i < len(bounds) {
				le = bounds[i]
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: hg.buckets[i].Load()})
		}
		s.Histograms[histNames[h]] = hs
	}
	return s
}
