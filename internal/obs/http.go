package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// MarshalJSON renders the +Inf upper bound of the overflow bucket as
// null (encoding/json rejects infinities).
func (b Bucket) MarshalJSON() ([]byte, error) {
	type alias struct {
		Le    *float64 `json:"le"`
		Count int64    `json:"count"`
	}
	a := alias{Count: b.Count}
	if !isInf(b.Le) {
		le := b.Le
		a.Le = &le
	}
	return json.Marshal(a)
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }

// MetricsHandler serves the registry snapshot as expvar-style JSON.
// Usable (serving an empty snapshot) even on a nil registry.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Snapshot())
	})
}

// TraceHandler serves the retained event trace, oldest first, as JSON:
// {"dropped": N, "events": [...]}.
func (r *Registry) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{r.EventsDropped(), r.Events()})
	})
}

// ServeMux returns a mux with the registry mounted at /metrics and
// /trace -- what the daemons (and tests) expose over HTTP.
func (r *Registry) ServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/trace", r.TraceHandler())
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(enc, '\n')) //nolint:errcheck
}
