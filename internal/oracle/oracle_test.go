package oracle

import (
	"errors"
	"testing"

	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// driveScenario runs a scenario under the oracle and returns it.
func driveScenario(t *testing.T, scn workload.Scenario, seed uint64) (*workload.Driver, *Oracle) {
	t.Helper()
	dr, err := workload.NewDriver(scn, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	o := New(dr.Tree(), Config{MaxMulticastRounds: 2, MaxUnicastWaves: 50})
	if err := o.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	for {
		st, ok, err := dr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if st.Res == nil {
			continue
		}
		if err := o.ObserveBatch(st.Res, st.Joins, st.Leaves); err != nil {
			t.Fatalf("interval %d: %v", st.Interval, err)
		}
	}
	return dr, o
}

func TestOracleAcceptsAllScenarios(t *testing.T) {
	for _, tc := range []struct {
		name string
		scn  workload.Scenario
	}{
		{"flash-crowd", &workload.FlashCrowd{Base: 128, Spike: 1024, SpikeAt: 1, Total: 4, Background: 3}},
		{"diurnal", &workload.Diurnal{Base: 128, Mean: 16, Amplitude: 0.8, Period: 4, Total: 8}},
		{"partition-rejoin", &workload.PartitionRejoin{Base: 128, Fraction: 0.25, PartitionAt: 1, RejoinAt: 3, Total: 5}},
		{"adversarial-leave", &workload.AdversarialLeave{Base: 128, Alpha: 0.25, At: 1, Total: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dr, o := driveScenario(t, tc.scn, 33)
			if o.Members() != len(dr.Tree().Members()) {
				t.Fatalf("oracle tracks %d members, tree has %d", o.Members(), len(dr.Tree().Members()))
			}
		})
	}
}

func TestOracleDepartedKeysAccumulate(t *testing.T) {
	_, o := driveScenario(t, &workload.AdversarialLeave{Base: 64, Alpha: 0.5, At: 0, Total: 1}, 5)
	if o.DepartedKeys() == 0 {
		t.Fatal("mass leave recorded no departed keys")
	}
}

// TestOracleDifferentialAttacker validates the set-based forward-secrecy
// check against a real attacker at small scale: a departed member
// attempts transitive closure over every post-leave encryption, counting
// a key as "learned" only when it matches the tree's true key for that
// node (exact, unlike trial decryption with 2-byte tags). The attacker
// must learn nothing the oracle did not flag -- and since the oracle
// passed, nothing at all.
func TestOracleDifferentialAttacker(t *testing.T) {
	dr, err := workload.NewDriver(&workload.Diurnal{Base: 64, Mean: 12, Amplitude: 0.9, Period: 4, Total: 8}, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	o := New(dr.Tree(), Config{MaxMulticastRounds: 2, MaxUnicastWaves: 50})
	if err := o.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	// attacker key sets: all key values held at leave time, per leaver.
	attackers := make(map[keytree.Member]map[keys.Key]bool)
	for {
		st, ok, err := dr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if st.Res == nil {
			continue
		}
		// Freeze leavers' holdings before the oracle retires their views.
		for _, m := range st.Leaves {
			held := make(map[keys.Key]bool)
			for _, k := range o.views[m].Keys {
				held[k] = true
			}
			attackers[m] = held
		}
		if err := o.ObserveBatch(st.Res, st.Joins, st.Leaves); err != nil {
			t.Fatal(err)
		}
		// Every attacker tries transitive closure over this batch's
		// encryptions: it can unwrap {parent}_child iff it holds the true
		// current key of the child node.
		for m, held := range attackers {
			for changed := true; changed; {
				changed = false
				for i := range st.Res.Encryptions {
					child := int(st.Res.Encryptions[i].ID)
					ck, _, ok := dr.Tree().NodeKey(child)
					if !ok || !held[ck] {
						continue
					}
					parent := keytree.ParentID(dr.Tree().Degree(), child)
					pk, _, ok := dr.Tree().NodeKey(parent)
					if ok && !held[pk] {
						held[pk] = true
						changed = true
					}
				}
			}
			// The attacker may hold no current k-node key, in particular
			// not the group key.
			gotGroup := held[dr.Tree().GroupKey()]
			if gotGroup {
				t.Fatalf("departed member %d recovered the group key", m)
			}
			dr.Tree().ForEachKNode(func(id int, k keys.Key) {
				if held[k] {
					t.Errorf("departed member %d holds current key of k-node %d", m, id)
				}
			})
		}
	}
	if len(attackers) == 0 {
		t.Fatal("scenario produced no leavers; differential test vacuous")
	}
}

// TestOracleDetectsUnrotatedKeys injects a forward-secrecy bug: the
// oracle is told a member left, but the server never processed that
// leave, so the tree still holds keys the "leaver" knows.
func TestOracleDetectsUnrotatedKeys(t *testing.T) {
	dr, err := workload.NewDriver(&workload.FlashCrowd{Base: 64, Spike: 0, SpikeAt: -1, Total: 1, Background: 0}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := New(dr.Tree(), Config{MaxMulticastRounds: 2, MaxUnicastWaves: 50})
	if err := o.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	// Server processes a join-only batch; oracle is told member 0 also
	// left. Member 0's path keys were never rotated.
	res, err := dr.Tree().ProcessBatch([]keytree.Member{1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = o.ObserveBatch(res, []keytree.Member{1000}, []keytree.Member{0})
	var v *Violation
	if !errors.As(err, &v) || v.Invariant != "forward-secrecy" {
		t.Fatalf("want forward-secrecy violation, got %v", err)
	}
}

// TestOracleDetectsCorruptedView injects a key-consistency bug: one
// member's client state is corrupted so it can no longer unwrap its
// path, or silently diverges.
func TestOracleDetectsCorruptedView(t *testing.T) {
	dr, err := workload.NewDriver(&workload.Diurnal{Base: 64, Mean: 8, Amplitude: 0.5, Period: 4, Total: 2}, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	o := New(dr.Tree(), Config{MaxMulticastRounds: 2, MaxUnicastWaves: 50})
	if err := o.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a surviving member's group-key entry. Consistency must
	// catch the divergence even if this batch leaves node 0's key
	// deliverable (it is rewrapped every batch, so Apply will fix it --
	// corrupt a deeper path key instead: flip every key the view holds).
	var victim *keytree.UserView
	for _, v := range o.views {
		victim = v
		break
	}
	for id := range victim.Keys {
		k := victim.Keys[id]
		k[0] ^= 0xFF
		victim.Keys[id] = k
	}
	st, ok, err := dr.Step()
	if err != nil || !ok || st.Res == nil {
		t.Fatalf("step: ok=%v res=%v err=%v", ok, st.Res, err)
	}
	err = o.ObserveBatch(st.Res, st.Joins, st.Leaves)
	var v *Violation
	if !errors.As(err, &v) || v.Invariant != "key-consistency" {
		t.Fatalf("want key-consistency violation, got %v", err)
	}
}

func TestCheckRecovery(t *testing.T) {
	o := New(keytree.New(2, keys.NewDeterministicGenerator(1)), Config{MaxMulticastRounds: 2, MaxUnicastWaves: 5})
	reg := obs.New()
	o.SetObs(reg)
	cases := []struct {
		met  protocol.Metrics
		fail bool
	}{
		{protocol.Metrics{AllDone: true, MulticastRounds: 2, UnicastWaves: 0}, false},
		{protocol.Metrics{AllDone: true, MulticastRounds: 2, UnicastWaves: 5}, false},
		{protocol.Metrics{AllDone: false, MulticastRounds: 1}, true},
		{protocol.Metrics{AllDone: true, MulticastRounds: 3}, true},
		{protocol.Metrics{AllDone: true, MulticastRounds: 2, UnicastWaves: 6}, true},
	}
	fails := 0
	for i, tc := range cases {
		err := o.CheckRecovery(&tc.met)
		if (err != nil) != tc.fail {
			t.Errorf("case %d: err=%v want fail=%v", i, err, tc.fail)
		}
		if err != nil {
			fails++
			var v *Violation
			if !errors.As(err, &v) || v.Invariant != "recovery-bound" {
				t.Errorf("case %d: wrong violation %v", i, err)
			}
		}
	}
	if got := reg.CounterValue(obs.COracleChecks); got != int64(len(cases)) {
		t.Errorf("oracle_checks = %d, want %d", got, len(cases))
	}
	if got := reg.CounterValue(obs.COracleViolations); got != int64(fails) {
		t.Errorf("oracle_violations = %d, want %d", got, fails)
	}
}

func TestOracleObsCounters(t *testing.T) {
	dr, err := workload.NewDriver(&workload.AdversarialLeave{Base: 32, Alpha: 0.25, At: 0, Total: 1}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := New(dr.Tree(), Config{MaxMulticastRounds: 2, MaxUnicastWaves: 50})
	reg := obs.New()
	o.SetObs(reg)
	if err := o.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	st, _, err := dr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if err := o.ObserveBatch(st.Res, st.Joins, st.Leaves); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue(obs.COracleChecks); got != 1 {
		t.Errorf("oracle_checks = %d, want 1", got)
	}
	if got := reg.CounterValue(obs.COracleViolations); got != 0 {
		t.Errorf("oracle_violations = %d, want 0", got)
	}
}
