// Package oracle checks protocol invariants over a live rekeying run:
//
//   - Forward secrecy: no member who has left can unwrap any key
//     generated after its departure. Checked set-theoretically -- every
//     key value a leaver ever held is recorded, and no later wrap may
//     use such a value, nor may any surviving node hold one. (A
//     crypto-trial check would be defeated by the 2-byte truncated
//     wrap tag: with ~2^-16 false-positive unwraps, "the attacker
//     decrypted something" is noise at scale; key-value identity is
//     exact.)
//
//   - Key consistency: after each batch, every member's client-side
//     view -- reconstructed purely from maxKID and the encryptions
//     addressed to it -- holds exactly the path keys the server's tree
//     says it should, so all survivors converge to one group key.
//
//   - Recovery-bound compliance: a transport run finishes within the
//     configured multicast-round and unicast-wave budgets.
//
// The oracle mirrors a workload.Driver: Bootstrap once, then
// ObserveBatch after every Driver step, and CheckRecovery after each
// transport run.
package oracle

import (
	"fmt"

	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Config bounds the recovery-compliance check.
type Config struct {
	// MaxMulticastRounds is the largest number of multicast NACK rounds a
	// run may take (the protocol's switchover threshold).
	MaxMulticastRounds int
	// MaxUnicastWaves is the largest number of unicast waves a run may
	// take after switchover.
	MaxUnicastWaves int
}

// TreeView is the server-side key state the oracle audits. A single
// *keytree.Tree implements it directly; a sharded coordinator
// (internal/shard) implements it over its shard trees plus the top
// tree, with node IDs globalized into one composite ID space.
type TreeView interface {
	// Degree is the tree degree d (uniform across a composite tree).
	Degree() int
	// Members returns all current members, sorted by node ID.
	Members() []keytree.Member
	// UserID returns member m's current u-node ID.
	UserID(m keytree.Member) (int, bool)
	// IndividualKey returns member m's individual key.
	IndividualKey(m keytree.Member) (keys.Key, bool)
	// PathKeys returns the keys member m should hold, keyed by node ID.
	PathKeys(m keytree.Member) (map[int]keys.Key, bool)
	// GroupKey returns the root key all members converge to.
	GroupKey() keys.Key
	// NodeKey resolves the key held at a node ID.
	NodeKey(id int) (keys.Key, keytree.NodeKind, bool)
	// ForEachKNode sweeps every live auxiliary key.
	ForEachKNode(fn func(id int, k keys.Key))
}

// Batch is one rekey interval's output as members consume it: the
// per-user MaxKID for Theorem 4.2 rederivation, the encryptions
// addressed to a user, and the full encryption sweep for the wrap-side
// forward-secrecy check. *keytree.BatchResult implements it for a
// single tree; shard.Merged implements it across a coordinator's
// consistent cut.
type Batch interface {
	// MaxKIDFor returns the MaxKID governing user userID's ID
	// rederivation (per-shard under a coordinator, global otherwise).
	MaxKIDFor(userID int) int
	// AppendUserNeeds appends the encryptions addressed to userID.
	AppendUserNeeds(dst []keytree.Encryption, userID int) []keytree.Encryption
	// ForEachEncryption sweeps every encryption of the interval.
	ForEachEncryption(fn func(keytree.Encryption))
}

// Oracle watches one evolving key tree and its members' views.
type Oracle struct {
	tree TreeView
	cfg  Config
	reg  *obs.Registry

	// views is the simulated client state of every current member.
	views map[keytree.Member]*keytree.UserView
	// departed maps every key value any past leaver held to the first
	// leaver that held it. Keys are fresh CSPRNG output, so a value may
	// never legitimately reappear -- records are kept forever.
	departed map[keys.Key]keytree.Member
}

// New returns an oracle over the given tree view. The underlying
// tree(s) must not be lite: the oracle replays real ciphertexts into
// member views.
func New(tree TreeView, cfg Config) *Oracle {
	return &Oracle{
		tree:     tree,
		cfg:      cfg,
		views:    make(map[keytree.Member]*keytree.UserView),
		departed: make(map[keys.Key]keytree.Member),
	}
}

// SetObs attaches an observability registry; nil disables counting.
func (o *Oracle) SetObs(reg *obs.Registry) { o.reg = reg }

// Bootstrap registers a view for every current member, seeded with the
// full path keys the server hands a member at registration. Call once,
// after the tree's initial population and before the first ObserveBatch.
func (o *Oracle) Bootstrap() error {
	for _, m := range o.tree.Members() {
		if err := o.register(m); err != nil {
			return err
		}
		pk, ok := o.tree.PathKeys(m)
		if !ok {
			return fmt.Errorf("oracle: no path keys for member %d", m)
		}
		for id, k := range pk {
			o.views[m].Keys[id] = k
		}
	}
	return nil
}

// register creates the post-registration view (ID + individual key) for
// member m from the server tree's current state.
func (o *Oracle) register(m keytree.Member) error {
	uid, ok := o.tree.UserID(m)
	if !ok {
		return fmt.Errorf("oracle: member %d not in tree", m)
	}
	ik, ok := o.tree.IndividualKey(m)
	if !ok {
		return fmt.Errorf("oracle: member %d has no individual key", m)
	}
	o.views[m] = keytree.NewUserView(o.tree.Degree(), m, uid, ik)
	return nil
}

// Violation is a detected invariant breach.
type Violation struct {
	Invariant string // "forward-secrecy", "key-consistency", "recovery-bound"
	Detail    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("oracle: %s violated: %s", v.Invariant, v.Detail)
}

// ObserveBatch checks one completed batch: res must be the result of
// applying (joins, leaves) to the oracle's tree. It updates every
// member view from the batch's encryptions, then verifies forward
// secrecy and key consistency. The first violation found is returned
// as a *Violation error.
func (o *Oracle) ObserveBatch(res Batch, joins, leaves []keytree.Member) error {
	o.reg.Inc(obs.COracleChecks)
	if err := o.observeBatch(res, joins, leaves); err != nil {
		o.reg.Inc(obs.COracleViolations)
		return err
	}
	return nil
}

func (o *Oracle) observeBatch(res Batch, joins, leaves []keytree.Member) error {
	// 1. Retire leavers, confiscating every key value they held.
	for _, m := range leaves {
		v, ok := o.views[m]
		if !ok {
			return fmt.Errorf("oracle: leaver %d has no view", m)
		}
		// The oracle is the test harness's omniscient observer: it
		// deliberately retains every departed key *value* to prove the
		// live tree never reuses one, so its index is the key bytes
		// themselves rather than a key ID.
		for _, k := range v.Keys {
			if _, dup := o.departed[k]; !dup { //rekeylint:ignore forward-secrecy oracle retains departed key values by design
				o.departed[k] = m //rekeylint:ignore forward-secrecy oracle retains departed key values by design
			}
		}
		delete(o.views, m)
	}

	// 2. Register joiners (rejoining handles get brand-new views).
	for _, m := range joins {
		if err := o.register(m); err != nil {
			return err
		}
	}

	// 3. Deliver the batch to every member: exactly the encryptions the
	// assignment would address to it, keyed by its post-batch ID.
	for m, v := range o.views {
		maxKID := res.MaxKIDFor(v.ID)
		newID, ok := keytree.NewID(v.D, v.ID, maxKID)
		if !ok {
			return &Violation{"key-consistency", fmt.Sprintf("member %d: no post-batch ID for %d (maxKID %d)", m, v.ID, maxKID)}
		}
		if err := v.Apply(maxKID, res.AppendUserNeeds(nil, newID)); err != nil {
			return &Violation{"key-consistency", fmt.Sprintf("member %d: %v", m, err)}
		}
	}

	// 4. Forward secrecy, wrap side: no encryption in this batch may be
	// wrapped under a key a departed member holds. The wrapping key of
	// an encryption is the current key of the child node it is keyed by.
	var wrapErr error
	res.ForEachEncryption(func(e keytree.Encryption) {
		if wrapErr != nil {
			return
		}
		id := int(e.ID)
		k, _, ok := o.tree.NodeKey(id)
		if !ok {
			wrapErr = &Violation{"forward-secrecy", fmt.Sprintf("encryption keyed by node %d which holds no key", id)}
			return
		}
		if m, bad := o.departed[k]; bad { //rekeylint:ignore forward-secrecy oracle retains departed key values by design
			wrapErr = &Violation{"forward-secrecy", fmt.Sprintf("encryption keyed by node %d is wrapped under a key departed member %d holds", id, m)}
		}
	})
	if wrapErr != nil {
		return wrapErr
	}

	// 5. Forward secrecy, tree side: no surviving node -- k-node or
	// member individual key -- may hold a key a departed member held.
	var fsErr error
	o.tree.ForEachKNode(func(id int, k keys.Key) {
		if m, bad := o.departed[k]; bad && fsErr == nil { //rekeylint:ignore forward-secrecy oracle retains departed key values by design
			fsErr = &Violation{"forward-secrecy", fmt.Sprintf("k-node %d holds a key departed member %d held", id, m)}
		}
	})
	if fsErr != nil {
		return fsErr
	}
	for m := range o.views {
		ik, ok := o.tree.IndividualKey(m)
		if !ok {
			return fmt.Errorf("oracle: member %d lost its individual key", m)
		}
		if dm, bad := o.departed[ik]; bad { //rekeylint:ignore forward-secrecy oracle retains departed key values by design
			return &Violation{"forward-secrecy", fmt.Sprintf("member %d's individual key was held by departed member %d", m, dm)}
		}
	}

	// 6. Key consistency: every member's view contains exactly the path
	// keys the server tree prescribes (stale extra entries are allowed;
	// wrong or missing ones are not), hence a single converged group key.
	group := o.tree.GroupKey()
	for m, v := range o.views {
		want, ok := o.tree.PathKeys(m)
		if !ok {
			return fmt.Errorf("oracle: no path keys for member %d", m)
		}
		for id, wk := range want {
			got, ok := v.Keys[id]
			if !ok {
				return &Violation{"key-consistency", fmt.Sprintf("member %d missing key of node %d", m, id)}
			}
			if !got.Equal(wk) {
				return &Violation{"key-consistency", fmt.Sprintf("member %d holds a wrong key for node %d", m, id)}
			}
		}
		if gk, ok := v.GroupKey(); !ok || !gk.Equal(group) {
			return &Violation{"key-consistency", fmt.Sprintf("member %d did not converge to the group key", m)}
		}
	}
	return nil
}

// Members returns how many member views the oracle currently tracks.
func (o *Oracle) Members() int { return len(o.views) }

// DepartedKeys returns how many confiscated key values are on record.
func (o *Oracle) DepartedKeys() int { return len(o.departed) }

// CheckRecovery verifies one transport run against the configured
// recovery bounds: the run must complete, within the multicast-round
// budget and (if it switched over) the unicast-wave budget.
func (o *Oracle) CheckRecovery(met *protocol.Metrics) error {
	o.reg.Inc(obs.COracleChecks)
	err := o.checkRecovery(met)
	if err != nil {
		o.reg.Inc(obs.COracleViolations)
	}
	return err
}

func (o *Oracle) checkRecovery(met *protocol.Metrics) error {
	if !met.AllDone {
		return &Violation{"recovery-bound", "run ended with users still missing the message"}
	}
	if met.MulticastRounds > o.cfg.MaxMulticastRounds {
		return &Violation{"recovery-bound", fmt.Sprintf("%d multicast rounds > budget %d", met.MulticastRounds, o.cfg.MaxMulticastRounds)}
	}
	if met.UnicastWaves > o.cfg.MaxUnicastWaves {
		return &Violation{"recovery-bound", fmt.Sprintf("%d unicast waves > budget %d", met.UnicastWaves, o.cfg.MaxUnicastWaves)}
	}
	return nil
}
