// Package tuning is the single definition of the rekey protocol's
// tuning knobs. The key server (rekey.Config), the simulation engine
// (protocol.Config) and the UDP transport all embed or read the same
// Tuning struct, so each knob -- FEC block size k, key tree degree d,
// proactivity factor rho, the NACK target, the multicast round budget
// and the encode worker bound -- is defined, defaulted and validated in
// exactly one place. The defaults are the paper's (DESIGN.md): k=10,
// d=4, rho0=1, numNACK=20 (cap 100), switch to unicast after 2
// multicast rounds.
package tuning

import (
	"fmt"
	"runtime"
)

// MaxK bounds the FEC block size: k data shards plus at least k parity
// shards must fit in the Reed-Solomon code's 256-shard space
// (fec.MaxShards / 2, restated here so the bound lives with the knob).
const MaxK = 128

// Tuning holds the protocol knobs shared by every layer.
type Tuning struct {
	// K is the FEC block size k: ENC packets per block. [1, MaxK].
	K int
	// Degree is the key tree degree d. >= 2.
	Degree int
	// InitialRho is the proactivity factor rho0 used for the first rekey
	// message (adaptive runs adjust it afterwards). >= 0; rho < 1 sends
	// no proactive parity.
	InitialRho float64
	// NumNACK is the target number of first-round NACKs the AdjustRho
	// controller steers toward. >= 0.
	NumNACK int
	// MaxNACK caps NumNACK adaptation. >= 0.
	MaxNACK int
	// MaxMulticastRounds is the round count after which the server
	// switches to unicast (the paper suggests 1 or 2). Zero means
	// multicast until every user recovers (simulation only).
	MaxMulticastRounds int
	// Workers bounds the goroutines used for parallel work (FEC encode
	// fan-out, per-user simulation); 0 means GOMAXPROCS. >= 0.
	Workers int
	// Strategy names the key tree's batch placement/marking strategy
	// (keytree.StrategyNames lists the registered ones). Empty means
	// "paper", the marking algorithm of the source paper's Appendix B.
	// Validated by name resolution in rekey.NewServer -- this package
	// sits below keytree and cannot consult the registry itself.
	Strategy string
	// Shards is the number of key tree shards a coordinator splits the
	// group across (internal/shard). 0 means 1: a single tree, the
	// unsharded server. >= 0.
	Shards int
	// ShardRange is the width W of the contiguous member-ID blocks the
	// coordinator routes: member m belongs to shard (m/W) mod Shards,
	// so W-wide blocks are dealt round-robin across shards. 0 means
	// DefaultShardRange. >= 0.
	ShardRange int
	// GF256Kernel forces the GF(2^8) vector kernel tier behind the FEC
	// hot path ("generic", "ssse3", "avx2", "gfni"); empty means runtime
	// CPUID dispatch. Like Strategy it is validated where it is applied
	// (rekey.NewServer, via gf256.SetKernel) -- this package sits below
	// gf256's consumers. The setting is process-global; it exists so
	// tests and benchmarks can pin a tier.
	GF256Kernel string
}

// DefaultShardRange is the member-ID block width used when the
// ShardRange knob is zero: wide enough that a member population
// allocated sequentially stays block-contiguous, narrow enough that a
// few thousand members already spread across every shard.
const DefaultShardRange = 1024

// Default returns the paper's default tuning.
func Default() Tuning {
	return Tuning{
		K:                  10,
		Degree:             4,
		InitialRho:         1.0,
		NumNACK:            20,
		MaxNACK:            100,
		MaxMulticastRounds: 2,
		Strategy:           "paper",
	}
}

// WithDefaults fills zero-valued knobs from Default. Booleans and
// legitimately-zero knobs (MaxMulticastRounds, Workers) are left alone:
// only K, Degree, InitialRho, NumNACK and MaxNACK are defaulted, and
// only when unset.
func (t Tuning) WithDefaults() Tuning {
	d := Default()
	if t.K == 0 {
		t.K = d.K
	}
	if t.Degree == 0 {
		t.Degree = d.Degree
	}
	if t.InitialRho == 0 {
		t.InitialRho = d.InitialRho
	}
	if t.NumNACK == 0 {
		t.NumNACK = d.NumNACK
	}
	if t.MaxNACK == 0 {
		t.MaxNACK = d.MaxNACK
	}
	if t.Strategy == "" {
		t.Strategy = d.Strategy
	}
	return t
}

// ResolveWorkers resolves a Workers knob value to a concrete goroutine
// count: n > 0 is taken as-is, anything else means GOMAXPROCS. Every
// parallel stage (FEC encode fan-out, the batch rekey pipeline) resolves
// its bound through here so "0 = all cores" is defined once.
func ResolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveWorkers resolves the Workers knob (see ResolveWorkers).
func (t Tuning) EffectiveWorkers() int { return ResolveWorkers(t.Workers) }

// Validate checks every knob and returns an error naming the offending
// field, or nil.
func (t Tuning) Validate() error {
	if t.K < 1 || t.K > MaxK {
		return fmt.Errorf("tuning: K = %d, want 1 <= K <= %d", t.K, MaxK)
	}
	if t.Degree < 2 {
		return fmt.Errorf("tuning: Degree = %d, want Degree >= 2", t.Degree)
	}
	if t.InitialRho < 0 {
		return fmt.Errorf("tuning: InitialRho = %g, want InitialRho >= 0", t.InitialRho)
	}
	if t.NumNACK < 0 {
		return fmt.Errorf("tuning: NumNACK = %d, want NumNACK >= 0", t.NumNACK)
	}
	if t.MaxNACK < 0 {
		return fmt.Errorf("tuning: MaxNACK = %d, want MaxNACK >= 0", t.MaxNACK)
	}
	if t.MaxMulticastRounds < 0 {
		return fmt.Errorf("tuning: MaxMulticastRounds = %d, want MaxMulticastRounds >= 0", t.MaxMulticastRounds)
	}
	if t.Workers < 0 {
		return fmt.Errorf("tuning: Workers = %d, want Workers >= 0", t.Workers)
	}
	if t.Shards < 0 {
		return fmt.Errorf("tuning: Shards = %d, want Shards >= 0", t.Shards)
	}
	if t.ShardRange < 0 {
		return fmt.Errorf("tuning: ShardRange = %d, want ShardRange >= 0", t.ShardRange)
	}
	return nil
}

// EffectiveShards resolves the Shards knob: 0 means one shard.
func (t Tuning) EffectiveShards() int {
	if t.Shards > 0 {
		return t.Shards
	}
	return 1
}

// EffectiveShardRange resolves the ShardRange knob: 0 means
// DefaultShardRange.
func (t Tuning) EffectiveShardRange() int {
	if t.ShardRange > 0 {
		return t.ShardRange
	}
	return DefaultShardRange
}
