package tuning

import (
	"strings"
	"testing"
)

// TestDefaultsMatchPaper pins the defaults to the paper's operating
// point documented in DESIGN.md: k=10, d=4, rho0=1, numNACK=20 capped
// at 100, switch to unicast after 2 multicast rounds.
func TestDefaultsMatchPaper(t *testing.T) {
	d := Default()
	if d.K != 10 {
		t.Errorf("K = %d, want 10", d.K)
	}
	if d.Degree != 4 {
		t.Errorf("Degree = %d, want 4", d.Degree)
	}
	if d.InitialRho != 1.0 {
		t.Errorf("InitialRho = %g, want 1", d.InitialRho)
	}
	if d.NumNACK != 20 {
		t.Errorf("NumNACK = %d, want 20", d.NumNACK)
	}
	if d.MaxNACK != 100 {
		t.Errorf("MaxNACK = %d, want 100", d.MaxNACK)
	}
	if d.MaxMulticastRounds != 2 {
		t.Errorf("MaxMulticastRounds = %d, want 2", d.MaxMulticastRounds)
	}
	if d.Workers != 0 {
		t.Errorf("Workers = %d, want 0 (GOMAXPROCS)", d.Workers)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("defaults fail validation: %v", err)
	}
}

// TestWithDefaults fills only unset knobs and preserves explicit ones,
// including the legitimately-zero MaxMulticastRounds and Workers.
func TestWithDefaults(t *testing.T) {
	got := Tuning{}.WithDefaults()
	want := Default()
	want.MaxMulticastRounds = 0 // zero means "multicast until done", kept
	if got != want {
		t.Errorf("zero tuning defaulted to %+v, want %+v", got, want)
	}

	explicit := Tuning{K: 32, Degree: 2, InitialRho: 2.5, NumNACK: 5, MaxNACK: 7, MaxMulticastRounds: 3, Workers: 4, Strategy: "leftmost"}
	if got := explicit.WithDefaults(); got != explicit {
		t.Errorf("explicit tuning mutated: %+v", got)
	}
}

// TestStrategyDefault: the Strategy knob defaults to the paper's
// marking algorithm and explicit names are preserved (resolution
// against the registry happens in rekey.NewServer).
func TestStrategyDefault(t *testing.T) {
	if got := Default().Strategy; got != "paper" {
		t.Errorf("default Strategy = %q, want paper", got)
	}
	if got := (Tuning{}).WithDefaults().Strategy; got != "paper" {
		t.Errorf("zero Strategy defaulted to %q, want paper", got)
	}
}

// TestValidateNamesField: each invalid knob must produce an error whose
// text names the field, so misconfiguration is diagnosable from the
// message alone.
func TestValidateNamesField(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Tuning)
		field string
	}{
		{"K too small", func(t *Tuning) { t.K = 0 }, "K"},
		{"K too large", func(t *Tuning) { t.K = MaxK + 1 }, "K"},
		{"Degree", func(t *Tuning) { t.Degree = 1 }, "Degree"},
		{"InitialRho", func(t *Tuning) { t.InitialRho = -0.1 }, "InitialRho"},
		{"NumNACK", func(t *Tuning) { t.NumNACK = -1 }, "NumNACK"},
		{"MaxNACK", func(t *Tuning) { t.MaxNACK = -1 }, "MaxNACK"},
		{"MaxMulticastRounds", func(t *Tuning) { t.MaxMulticastRounds = -1 }, "MaxMulticastRounds"},
		{"Workers", func(t *Tuning) { t.Workers = -1 }, "Workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tun := Default()
			tc.mut(&tun)
			err := tun.Validate()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error %q does not name field %s", err, tc.field)
			}
		})
	}
}

// TestMaxKWithinCode: k data + k parity shards must fit the RS code.
func TestMaxKWithinCode(t *testing.T) {
	tun := Default()
	tun.K = MaxK
	if err := tun.Validate(); err != nil {
		t.Fatalf("K = MaxK rejected: %v", err)
	}
}
