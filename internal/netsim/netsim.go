// Package netsim simulates the multicast delivery network the paper
// evaluates on: a star topology in which the key server reaches a
// loss-free backbone through one source link and every user hangs off
// the backbone behind its own receiver link. Each link is a two-state
// continuous-time Markov chain (a Gilbert model) producing bursty loss;
// a multicast packet is lost by a user if it is lost on the source link
// or on that user's receiver link at its send time.
//
// The simulation is deterministic for a given seed: every link owns an
// independent random stream, so per-user work can be distributed across
// goroutines without perturbing results.
package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// GilbertLink is a two-state continuous-time Markov loss process.
//
// The paper specifies a mean burst-loss duration and a mean loss-free
// duration of "100/p ms" and "100/(1-p) ms"; taken literally those means
// put the chain in the loss state a fraction 1-p of the time, which
// contradicts p being the loss rate (an apparent typo). We keep the
// stationary loss fraction equal to p and burst durations on the order
// of the paper's 100 ms: mean burst 100 ms, mean loss-free
// 100*(1-p)/p ms. Holding times are exponential.
type GilbertLink struct {
	rng      *rand.Rand
	p        float64
	meanLoss float64 // seconds
	meanOK   float64 // seconds
	lossy    bool
	until    float64 // time at which the current state ends
	now      float64
}

// BurstMean is the mean loss-burst duration in seconds.
const BurstMean = 0.100

// NewGilbertLink returns a link with loss rate p in [0,1), using the
// given random stream. The chain starts in its stationary distribution.
func NewGilbertLink(p float64, rng *rand.Rand) (*GilbertLink, error) {
	if math.IsNaN(p) || p < 0 || p >= 1 {
		return nil, fmt.Errorf("netsim: loss rate %v outside [0,1)", p)
	}
	l := &GilbertLink{rng: rng, p: p, meanLoss: BurstMean}
	if p == 0 {
		return l, nil
	}
	l.meanOK = BurstMean * (1 - p) / p
	l.lossy = rng.Float64() < p
	l.until = l.holding()
	return l, nil
}

// holding samples an exponential holding time for the current state.
func (l *GilbertLink) holding() float64 {
	mean := l.meanOK
	if l.lossy {
		mean = l.meanLoss
	}
	return l.rng.ExpFloat64() * mean
}

// Lost advances the chain to time t (seconds, non-decreasing across
// calls) and reports whether a packet crossing the link at t is lost.
func (l *GilbertLink) Lost(t float64) bool {
	if l.p == 0 {
		return false
	}
	if t < l.now {
		// Callers must present non-decreasing times; clamping keeps the
		// chain consistent if two packets share a timestamp.
		t = l.now
	}
	l.now = t
	for l.until <= t {
		l.lossy = !l.lossy
		l.until += l.holding()
	}
	return l.lossy
}

// LossRate returns the configured stationary loss rate.
func (l *GilbertLink) LossRate() float64 { return l.p }

// StarConfig describes the paper's evaluation topology, optionally
// extended with correlated loss: users partitioned into clusters that
// share one aggregation link each, so a burst on a cluster link claims
// the same packets for every user behind it (a regional outage), on top
// of -- and composable with -- their independent Gilbert receiver links.
type StarConfig struct {
	N       int     // number of users
	Alpha   float64 // fraction of users behind high-loss links
	PHigh   float64 // receiver-link loss rate for the high-loss fraction
	PLow    float64 // receiver-link loss rate for the rest
	PSource float64 // source-link loss rate
	Seed    uint64  // master seed; per-link streams derive from it
	// Clusters, when > 0, partitions users round-robin into this many
	// clusters, each behind a shared Gilbert aggregation link with loss
	// rate PCluster. Zero disables correlated loss (the paper's setup).
	Clusters int
	PCluster float64
}

// DefaultStar returns the paper's default parameters for N users:
// alpha=20% of users at 20% loss, the rest at 2%, source link at 1%.
func DefaultStar(n int, seed uint64) StarConfig {
	return StarConfig{N: n, Alpha: 0.20, PHigh: 0.20, PLow: 0.02, PSource: 0.01, Seed: seed}
}

// Star is an instantiated topology.
type Star struct {
	cfg    StarConfig
	Source *GilbertLink
	Recv   []*GilbertLink
	// HighLoss reports which users sit behind high-loss links.
	HighLoss []bool
	// Cluster holds the shared aggregation links (empty when correlated
	// loss is disabled); ClusterOf maps each user to its cluster.
	Cluster   []*GilbertLink
	ClusterOf []int
}

// NewStar builds the topology. Which users are high-loss is a uniform
// pseudo-random choice of ceil(alpha*N) users derived from the seed.
func NewStar(cfg StarConfig) (*Star, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("netsim: N = %d", cfg.N)
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("netsim: alpha = %v outside [0,1]", cfg.Alpha)
	}
	for _, p := range []float64{cfg.PHigh, cfg.PLow, cfg.PSource, cfg.PCluster} {
		if p < 0 || p >= 1 {
			return nil, fmt.Errorf("netsim: loss rate %v outside [0,1)", p)
		}
	}
	if cfg.Clusters < 0 {
		return nil, fmt.Errorf("netsim: Clusters = %d", cfg.Clusters)
	}
	s := &Star{cfg: cfg, Recv: make([]*GilbertLink, cfg.N), HighLoss: make([]bool, cfg.N)}
	src, err := NewGilbertLink(cfg.PSource, rand.New(rand.NewPCG(cfg.Seed, 0xA11CE)))
	if err != nil {
		return nil, err
	}
	s.Source = src

	nHigh := int(math.Ceil(cfg.Alpha * float64(cfg.N)))
	pick := rand.New(rand.NewPCG(cfg.Seed, 0xB0B))
	for _, idx := range pick.Perm(cfg.N)[:nHigh] {
		s.HighLoss[idx] = true
	}
	for u := 0; u < cfg.N; u++ {
		p := cfg.PLow
		if s.HighLoss[u] {
			p = cfg.PHigh
		}
		link, err := NewGilbertLink(p, rand.New(rand.NewPCG(cfg.Seed, 0xC0FFEE+uint64(u))))
		if err != nil {
			return nil, err
		}
		s.Recv[u] = link
	}
	if cfg.Clusters > 0 {
		s.Cluster = make([]*GilbertLink, cfg.Clusters)
		for c := range s.Cluster {
			link, err := NewGilbertLink(cfg.PCluster, rand.New(rand.NewPCG(cfg.Seed, 0xC1A5+uint64(c))))
			if err != nil {
				return nil, err
			}
			s.Cluster[c] = link
		}
		s.ClusterOf = make([]int, cfg.N)
		for u := range s.ClusterOf {
			s.ClusterOf[u] = u % cfg.Clusters
		}
	}
	return s, nil
}

// N returns the number of users.
func (s *Star) N() int { return s.cfg.N }

// MulticastRound evaluates one round of multicast sends. times[i] is the
// send time of packet i; the returned function recv(u, i) reports
// whether user u received packet i. Source-link outcomes are computed
// once; receiver outcomes are computed lazily per user in a single
// forward pass, so callers may fan users out across goroutines (each
// user touches only its own link).
func (s *Star) MulticastRound(times []float64) *RoundDelivery {
	srcLost := make([]bool, len(times))
	for i, t := range times {
		srcLost[i] = s.Source.Lost(t)
	}
	// Cluster-link outcomes are shared state, so like the source link they
	// are computed once up front; per-user fan-out then stays data-race
	// free and deterministic regardless of evaluation order.
	var cluLost [][]bool
	if len(s.Cluster) > 0 {
		cluLost = make([][]bool, len(s.Cluster))
		for c, link := range s.Cluster {
			cluLost[c] = make([]bool, len(times))
			for i, t := range times {
				cluLost[c][i] = link.Lost(t)
			}
		}
	}
	return &RoundDelivery{star: s, times: times, srcLost: srcLost, cluLost: cluLost}
}

// RoundDelivery is the outcome of one multicast round on the source link
// plus per-user lazy evaluation of receiver links.
type RoundDelivery struct {
	star    *Star
	times   []float64
	srcLost []bool
	cluLost [][]bool // per cluster, per packet; nil without clusters
}

// Received returns the indices of the round's packets that user u
// received. It must be called exactly once per user per round (it
// advances the user's link state); calls for distinct users may run
// concurrently.
func (rd *RoundDelivery) Received(u int) []int {
	link := rd.star.Recv[u]
	var clu []bool
	if rd.cluLost != nil {
		clu = rd.cluLost[rd.star.ClusterOf[u]]
	}
	out := make([]int, 0, len(rd.times))
	for i, t := range rd.times {
		if rd.srcLost[i] {
			continue
		}
		if clu != nil && clu[i] {
			continue
		}
		if !link.Lost(t) {
			out = append(out, i)
		}
	}
	return out
}

// Unicast reports whether a single packet sent to user u at time t is
// delivered (crossing source, cluster and receiver links).
func (s *Star) Unicast(u int, t float64) bool {
	if s.Source.Lost(t) {
		return false
	}
	if len(s.Cluster) > 0 && s.Cluster[s.ClusterOf[u]].Lost(t) {
		return false
	}
	return !s.Recv[u].Lost(t)
}
