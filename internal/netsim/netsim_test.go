package netsim

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
)

func TestGilbertRejectsBadRates(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		if _, err := NewGilbertLink(p, rng); err == nil {
			t.Errorf("loss rate %v accepted", p)
		}
	}
}

func TestGilbertZeroLoss(t *testing.T) {
	l, err := NewGilbertLink(0, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if l.Lost(float64(i) * 0.05) {
			t.Fatal("zero-loss link dropped a packet")
		}
	}
}

func TestGilbertStationaryLossRate(t *testing.T) {
	// Sampling at fixed intervals over a long horizon must observe loss
	// close to the configured rate.
	for _, p := range []float64{0.02, 0.20, 0.5} {
		l, err := NewGilbertLink(p, rand.New(rand.NewPCG(3, uint64(p*1000))))
		if err != nil {
			t.Fatal(err)
		}
		lost := 0
		const n = 200000
		for i := 0; i < n; i++ {
			if l.Lost(float64(i) * 0.1) {
				lost++
			}
		}
		got := float64(lost) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("p=%v: observed loss %.4f", p, got)
		}
	}
}

func TestGilbertBurstiness(t *testing.T) {
	// With 100 ms mean bursts and 10 ms sampling, a lost sample must be
	// followed by another lost sample much more often than the marginal
	// loss rate: P(lost | prev lost) >> p.
	l, _ := NewGilbertLink(0.2, rand.New(rand.NewPCG(4, 4)))
	prev := false
	lossAfterLoss, losses := 0, 0
	const n = 200000
	for i := 0; i < n; i++ {
		cur := l.Lost(float64(i) * 0.01)
		if prev {
			losses++
			if cur {
				lossAfterLoss++
			}
		}
		prev = cur
	}
	if losses == 0 {
		t.Fatal("no losses observed")
	}
	condLoss := float64(lossAfterLoss) / float64(losses)
	if condLoss < 0.6 {
		t.Errorf("P(loss|loss) = %.3f; bursts too weak for a Gilbert model", condLoss)
	}
}

func TestGilbertTimeMonotonicityClamped(t *testing.T) {
	l, _ := NewGilbertLink(0.2, rand.New(rand.NewPCG(5, 5)))
	l.Lost(10)
	// An earlier timestamp must not panic or rewind the chain.
	_ = l.Lost(5)
	_ = l.Lost(10)
}

func TestNewStarValidation(t *testing.T) {
	if _, err := NewStar(StarConfig{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewStar(StarConfig{N: 4, Alpha: 1.5}); err == nil {
		t.Error("alpha>1 accepted")
	}
	if _, err := NewStar(StarConfig{N: 4, PHigh: 2}); err == nil {
		t.Error("PHigh=2 accepted")
	}
}

func TestStarHighLossFraction(t *testing.T) {
	cfg := DefaultStar(1000, 42)
	s, err := NewStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	high := 0
	for _, h := range s.HighLoss {
		if h {
			high++
		}
	}
	if high != 200 {
		t.Fatalf("%d high-loss users, want 200", high)
	}
	for u, link := range s.Recv {
		want := cfg.PLow
		if s.HighLoss[u] {
			want = cfg.PHigh
		}
		if link.LossRate() != want {
			t.Fatalf("user %d loss rate %v, want %v", u, link.LossRate(), want)
		}
	}
}

func TestStarDeterministicForSeed(t *testing.T) {
	times := make([]float64, 50)
	for i := range times {
		times[i] = float64(i) * 0.1
	}
	run := func() [][]int {
		s, err := NewStar(DefaultStar(64, 7))
		if err != nil {
			t.Fatal(err)
		}
		rd := s.MulticastRound(times)
		out := make([][]int, 64)
		for u := 0; u < 64; u++ {
			out[u] = rd.Received(u)
		}
		return out
	}
	a, b := run(), run()
	for u := range a {
		if len(a[u]) != len(b[u]) {
			t.Fatalf("user %d: runs differ", u)
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				t.Fatalf("user %d: runs differ at %d", u, i)
			}
		}
	}
}

func TestStarConcurrentReceivedMatchesSerial(t *testing.T) {
	times := make([]float64, 80)
	for i := range times {
		times[i] = float64(i) * 0.1
	}
	const n = 128
	serial := func() [][]int {
		s, _ := NewStar(DefaultStar(n, 99))
		rd := s.MulticastRound(times)
		out := make([][]int, n)
		for u := 0; u < n; u++ {
			out[u] = rd.Received(u)
		}
		return out
	}()
	parallel := func() [][]int {
		s, _ := NewStar(DefaultStar(n, 99))
		rd := s.MulticastRound(times)
		out := make([][]int, n)
		var wg sync.WaitGroup
		for u := 0; u < n; u++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out[u] = rd.Received(u)
			}()
		}
		wg.Wait()
		return out
	}()
	for u := 0; u < n; u++ {
		if len(serial[u]) != len(parallel[u]) {
			t.Fatalf("user %d: concurrent result differs", u)
		}
		for i := range serial[u] {
			if serial[u][i] != parallel[u][i] {
				t.Fatalf("user %d: concurrent result differs at %d", u, i)
			}
		}
	}
}

func TestMulticastLossRatesPlausible(t *testing.T) {
	// Over many packets, a low-loss user should receive ~97% (2% link +
	// 1% source) and a high-loss user ~79%.
	s, err := NewStar(DefaultStar(400, 123))
	if err != nil {
		t.Fatal(err)
	}
	const rounds, per = 200, 20
	recv := make([]int, 400)
	for r := 0; r < rounds; r++ {
		times := make([]float64, per)
		for i := range times {
			times[i] = float64(r*per+i) * 0.1
		}
		rd := s.MulticastRound(times)
		for u := 0; u < 400; u++ {
			recv[u] += len(rd.Received(u))
		}
	}
	lowSum, lowN, highSum, highN := 0.0, 0, 0.0, 0
	for u := 0; u < 400; u++ {
		frac := float64(recv[u]) / float64(rounds*per)
		if s.HighLoss[u] {
			highSum += frac
			highN++
		} else {
			lowSum += frac
			lowN++
		}
	}
	lowAvg, highAvg := lowSum/float64(lowN), highSum/float64(highN)
	if math.Abs(lowAvg-0.97) > 0.02 {
		t.Errorf("low-loss delivery %.3f, want ~0.97", lowAvg)
	}
	if math.Abs(highAvg-0.79) > 0.04 {
		t.Errorf("high-loss delivery %.3f, want ~0.79", highAvg)
	}
}

func TestUnicastDelivery(t *testing.T) {
	s, err := NewStar(StarConfig{N: 4, Alpha: 0, PLow: 0, PSource: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Unicast(2, 1.0) {
		t.Fatal("lossless unicast dropped")
	}
}
