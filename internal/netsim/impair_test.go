package netsim

import (
	"bytes"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// --- GilbertLink boundary behaviour -------------------------------------

func TestGilbertBoundaryNearZero(t *testing.T) {
	link, err := NewGilbertLink(1e-9, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	// With p ~ 0 the loss-free holding time is astronomically long; the
	// chain must answer quickly (no catch-up loop) and essentially never
	// lose. 10k samples over 10 ks of virtual time.
	losses := 0
	for i := 0; i < 10000; i++ {
		if link.Lost(float64(i)) {
			losses++
		}
	}
	if losses != 0 {
		t.Fatalf("p=1e-9: %d losses in 10k samples", losses)
	}
}

func TestGilbertBoundaryNearOne(t *testing.T) {
	const p = 0.999
	link, err := NewGilbertLink(p, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	// meanOK is 100us here, so sampling every 10ms crosses many state
	// changes per call; the loop in Lost must terminate and the observed
	// rate must still track p.
	losses := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if link.Lost(float64(i) * 0.01) {
			losses++
		}
	}
	got := float64(losses) / n
	if math.Abs(got-p) > 0.005 {
		t.Fatalf("p=%v: observed loss rate %v", p, got)
	}
}

func TestGilbertBoundaryRejects(t *testing.T) {
	for _, p := range []float64{-0.01, 1.0, 1.5, math.Inf(1)} {
		if _, err := NewGilbertLink(p, rand.New(rand.NewPCG(5, 6))); err == nil {
			t.Errorf("p=%v: expected error", p)
		}
	}
	if _, err := NewGilbertLink(math.NaN(), rand.New(rand.NewPCG(5, 6))); err == nil {
		t.Errorf("p=NaN: expected error")
	}
}

func TestGilbertSubMillisecondSampling(t *testing.T) {
	// Sampling far below the 100ms burst scale must preserve both the
	// stationary rate and the burstiness: consecutive 0.1ms samples
	// almost always share a state, so P(loss | prev loss) ~ 1.
	const p = 0.2
	link, err := NewGilbertLink(p, rand.New(rand.NewPCG(7, 8)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2_000_000
	const dt = 1e-4
	losses, lossAfterLoss, prevLoss := 0, 0, 0
	prev := false
	for i := 0; i < n; i++ {
		lost := link.Lost(float64(i) * dt)
		if lost {
			losses++
		}
		if prev {
			prevLoss++
			if lost {
				lossAfterLoss++
			}
		}
		prev = lost
	}
	rate := float64(losses) / n
	if math.Abs(rate-p) > 0.04 {
		t.Fatalf("sub-ms sampling: loss rate %v want ~%v", rate, p)
	}
	cond := float64(lossAfterLoss) / float64(prevLoss)
	if cond < 0.99 {
		t.Fatalf("sub-ms sampling: P(loss|loss) = %v, want near 1 (bursty)", cond)
	}
}

// --- correlated cluster loss --------------------------------------------

func TestStarClusterValidation(t *testing.T) {
	cfg := DefaultStar(8, 1)
	cfg.Clusters = -1
	if _, err := NewStar(cfg); err == nil {
		t.Error("negative Clusters: expected error")
	}
	cfg = DefaultStar(8, 1)
	cfg.Clusters, cfg.PCluster = 2, 1.0
	if _, err := NewStar(cfg); err == nil {
		t.Error("PCluster=1: expected error")
	}
}

func TestStarClusterCorrelation(t *testing.T) {
	// Two users in the same cluster must lose the same packets whenever
	// the shared link bursts. Make individual links lossless so every
	// loss is attributable to source or cluster; source lossless too.
	cfg := StarConfig{N: 8, PHigh: 0, PLow: 0, PSource: 0, Seed: 42, Clusters: 2, PCluster: 0.3}
	s, err := NewStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.ClusterOf[0] != s.ClusterOf[2] || s.ClusterOf[0] == s.ClusterOf[1] {
		t.Fatalf("round-robin assignment broken: %v", s.ClusterOf)
	}
	times := make([]float64, 400)
	for i := range times {
		times[i] = float64(i) * 0.05
	}
	rd := s.MulticastRound(times)
	recv := func(u int) map[int]bool {
		m := make(map[int]bool)
		for _, i := range rd.Received(u) {
			m[i] = true
		}
		return m
	}
	u0, u2 := recv(0), recv(2) // same cluster
	if len(u0) != len(u2) {
		t.Fatalf("same-cluster users diverge: %d vs %d received", len(u0), len(u2))
	}
	for i := range u0 {
		if !u2[i] {
			t.Fatalf("same-cluster users diverge on packet %d", i)
		}
	}
	if len(u0) == len(times) {
		t.Fatal("cluster link at 30% lost nothing in 400 packets")
	}
	u1 := recv(1) // other cluster: independent stream, should differ somewhere
	same := len(u0) == len(u1)
	if same {
		for i := range u0 {
			if !u1[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("cross-cluster users received identical sets; streams look shared")
	}
}

func TestStarClusterDeterminism(t *testing.T) {
	cfg := DefaultStar(16, 9)
	cfg.Clusters, cfg.PCluster = 4, 0.15
	run := func() []int {
		s, err := NewStar(cfg)
		if err != nil {
			t.Fatal(err)
		}
		times := make([]float64, 100)
		for i := range times {
			times[i] = float64(i) * 0.01
		}
		var got []int
		for r := 0; r < 3; r++ {
			rd := s.MulticastRound(times)
			for u := 0; u < cfg.N; u++ {
				got = append(got, len(rd.Received(u)))
			}
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cluster topology not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// --- DupLink ------------------------------------------------------------

func TestDupLinkRate(t *testing.T) {
	const p = 0.15
	l, err := NewDupLink(p, rand.New(rand.NewPCG(11, 12)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	extra := 0
	for i := 0; i < n; i++ {
		c := l.Copies()
		if c != 1 && c != 2 {
			t.Fatalf("Copies() = %d", c)
		}
		extra += c - 1
	}
	got := float64(extra) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("duplication rate %v want ~%v", got, p)
	}
}

func TestDupLinkRejects(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0} {
		if _, err := NewDupLink(p, rand.New(rand.NewPCG(1, 1))); err == nil {
			t.Errorf("pDup=%v: expected error", p)
		}
	}
}

// --- ReorderLink --------------------------------------------------------

func TestReorderLinkConservesAndReorders(t *testing.T) {
	l, err := NewReorderLink(0.25, 3, rand.New(rand.NewPCG(13, 14)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	seen := make(map[int]int, n)
	var order []int
	for i := 0; i < n; i++ {
		pkt := []byte(fmt.Sprintf("%d", i))
		for _, out := range l.Offer(pkt) {
			var v int
			fmt.Sscanf(string(out), "%d", &v)
			seen[v]++
			order = append(order, v)
		}
	}
	for _, out := range l.Flush() {
		var v int
		fmt.Sscanf(string(out), "%d", &v)
		seen[v]++
		order = append(order, v)
	}
	// Conservation: every packet exactly once.
	if len(order) != n {
		t.Fatalf("delivered %d packets, offered %d", len(order), n)
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("packet %d delivered %d times", i, seen[i])
		}
	}
	// Reordering actually happened, and displacement is bounded by the
	// hold depth (a packet held behind 3 others arrives at most ~4 late,
	// plus slack for early eviction cascades).
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no reordering observed at pReorder=0.25")
	}
	for pos, v := range order {
		if d := pos - v; d < -8 || d > 8 {
			t.Fatalf("packet %d displaced by %d, beyond hold depth", v, d)
		}
	}
}

func TestReorderLinkRejects(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := NewReorderLink(1.0, 3, rng); err == nil {
		t.Error("pReorder=1: expected error")
	}
	if _, err := NewReorderLink(0.1, 0, rng); err == nil {
		t.Error("holdFor=0: expected error")
	}
}

// --- Mangler ------------------------------------------------------------

func TestManglerDeterminism(t *testing.T) {
	cfg := MangleConfig{Loss: 0.2, Reorder: 0.2, HoldFor: 2, Dup: 0.1, Interval: 0.02}
	run := func() []string {
		m, err := NewMangler(cfg, 99)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for i := 0; i < 500; i++ {
			pkt := []byte{byte(i), byte(i >> 8)}
			for _, p := range m.Mangle(pkt) {
				out = append(out, string(p))
			}
		}
		for _, p := range m.Flush() {
			out = append(out, string(p))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestManglerLossOnly(t *testing.T) {
	m, err := NewMangler(MangleConfig{Loss: 0.3, Interval: 0.05}, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	delivered := 0
	for i := 0; i < n; i++ {
		delivered += len(m.Mangle([]byte{1}))
	}
	got := 1 - float64(delivered)/n
	if math.Abs(got-0.3) > 0.05 {
		t.Fatalf("mangler loss rate %v want ~0.3", got)
	}
	if got := m.Flush(); got != nil {
		t.Fatalf("Flush without reorder stage returned %d packets", len(got))
	}
}

func TestManglerNoImpairmentPassThrough(t *testing.T) {
	m, err := NewMangler(MangleConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pkt := []byte("hello")
	out := m.Mangle(pkt)
	if len(out) != 1 || !bytes.Equal(out[0], pkt) {
		t.Fatalf("pass-through mangler returned %v", out)
	}
}

func TestManglerRejectsLossWithoutInterval(t *testing.T) {
	if _, err := NewMangler(MangleConfig{Loss: 0.1}, 1); err == nil {
		t.Error("Loss without Interval: expected error")
	}
}
