// Byte-level packet impairments: duplication, reordering and a composed
// Mangler combining them with Gilbert burst loss. These operate on
// opaque packets (not simulated indices) so real transports -- e.g. the
// udptrans client's receive path -- can be exercised under adversarial
// network behaviour deterministically from a seed.

package netsim

import (
	"fmt"
	"math/rand/v2"
)

// DupLink duplicates packets independently with probability PDup: each
// offered packet is delivered once, plus one extra copy with that
// probability. It models a routing flap or a retransmitting middlebox.
type DupLink struct {
	rng  *rand.Rand
	pDup float64
}

// NewDupLink returns a link duplicating with probability pDup in [0,1).
func NewDupLink(pDup float64, rng *rand.Rand) (*DupLink, error) {
	if pDup < 0 || pDup >= 1 {
		return nil, fmt.Errorf("netsim: duplication rate %v outside [0,1)", pDup)
	}
	return &DupLink{rng: rng, pDup: pDup}, nil
}

// Copies returns how many copies of the next packet are delivered
// (1 or 2).
func (l *DupLink) Copies() int {
	if l.pDup > 0 && l.rng.Float64() < l.pDup {
		return 2
	}
	return 1
}

// ReorderLink reorders packets by holding some back: with probability
// PReorder an offered packet is queued and released after HoldFor
// subsequent packets have passed it, so it arrives late but is never
// lost. HoldFor must be >= 1.
type ReorderLink struct {
	rng      *rand.Rand
	pReorder float64
	holdFor  int
	// held[i] are packets waiting for i+1 more passing packets before
	// release (index 0 releases next).
	held [][]byte
}

// NewReorderLink returns a link reordering with probability pReorder in
// [0,1), holding reordered packets back past holdFor later packets.
func NewReorderLink(pReorder float64, holdFor int, rng *rand.Rand) (*ReorderLink, error) {
	if pReorder < 0 || pReorder >= 1 {
		return nil, fmt.Errorf("netsim: reorder rate %v outside [0,1)", pReorder)
	}
	if holdFor < 1 {
		return nil, fmt.Errorf("netsim: reorder hold %d < 1", holdFor)
	}
	return &ReorderLink{rng: rng, pReorder: pReorder, holdFor: holdFor, held: make([][]byte, holdFor)}, nil
}

// Offer presents one packet to the link and returns the packets that
// come out the far end in arrival order: possibly none (the packet was
// held back), possibly several (the packet plus previously held packets
// now due).
func (l *ReorderLink) Offer(pkt []byte) [][]byte {
	var out [][]byte
	if l.pReorder > 0 && l.rng.Float64() < l.pReorder {
		// Hold the packet behind holdFor future packets; anything already
		// in the slot leaves now to bound queueing.
		if due := l.held[l.holdFor-1]; due != nil {
			out = append(out, due)
		}
		l.held[l.holdFor-1] = pkt
	} else {
		out = append(out, pkt)
	}
	// One packet has passed: everything held moves a slot closer.
	if due := l.held[0]; due != nil {
		out = append(out, due)
	}
	copy(l.held, l.held[1:])
	l.held[l.holdFor-1] = nil
	return out
}

// Flush releases every held packet, oldest first. Use it when the
// stream ends so that no packet is silently dropped.
func (l *ReorderLink) Flush() [][]byte {
	var out [][]byte
	for i, p := range l.held {
		if p != nil {
			out = append(out, p)
			l.held[i] = nil
		}
	}
	return out
}

// MangleConfig configures a composed byte-level impairment chain.
type MangleConfig struct {
	Loss     float64 // Gilbert stationary loss rate, [0,1)
	Reorder  float64 // per-packet reorder probability, [0,1)
	HoldFor  int     // packets a reordered packet is held behind (>=1 if Reorder>0)
	Dup      float64 // per-packet duplication probability, [0,1)
	Interval float64 // seconds of virtual time between offered packets (>0 if Loss>0)
}

// Mangler composes burst loss, reordering and duplication into a single
// deterministic per-seed impairment: loss first (a dropped packet cannot
// be reordered or duplicated), then reordering, then duplication of
// whatever emerges.
type Mangler struct {
	cfg     MangleConfig
	loss    *GilbertLink
	reorder *ReorderLink
	dup     *DupLink
	now     float64
}

// NewMangler builds a Mangler from cfg, deriving independent random
// streams for each stage from seed.
func NewMangler(cfg MangleConfig, seed uint64) (*Mangler, error) {
	m := &Mangler{cfg: cfg}
	if cfg.Loss > 0 {
		if cfg.Interval <= 0 {
			return nil, fmt.Errorf("netsim: mangler Interval %v must be > 0 with loss", cfg.Interval)
		}
		link, err := NewGilbertLink(cfg.Loss, rand.New(rand.NewPCG(seed, 0x10555)))
		if err != nil {
			return nil, err
		}
		m.loss = link
	}
	if cfg.Reorder > 0 {
		hold := cfg.HoldFor
		if hold < 1 {
			hold = 1
		}
		link, err := NewReorderLink(cfg.Reorder, hold, rand.New(rand.NewPCG(seed, 0x5EC0)))
		if err != nil {
			return nil, err
		}
		m.reorder = link
	}
	if cfg.Dup > 0 {
		link, err := NewDupLink(cfg.Dup, rand.New(rand.NewPCG(seed, 0xD0B1E)))
		if err != nil {
			return nil, err
		}
		m.dup = link
	}
	return m, nil
}

// Mangle presents one packet to the chain and returns what arrives, in
// order: zero packets (lost or held), or one or more (with duplicates
// and/or released held packets).
func (m *Mangler) Mangle(pkt []byte) [][]byte {
	if m.loss != nil {
		m.now += m.cfg.Interval
		if m.loss.Lost(m.now) {
			return nil
		}
	}
	surviving := [][]byte{pkt}
	if m.reorder != nil {
		surviving = m.reorder.Offer(pkt)
	}
	if m.dup == nil {
		return surviving
	}
	out := make([][]byte, 0, len(surviving))
	for _, p := range surviving {
		for i := m.dup.Copies(); i > 0; i-- {
			out = append(out, p)
		}
	}
	return out
}

// Flush releases packets still held by the reordering stage. Duplication
// is not applied to flushed packets.
func (m *Mangler) Flush() [][]byte {
	if m.reorder == nil {
		return nil
	}
	return m.reorder.Flush()
}
