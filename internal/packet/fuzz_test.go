package packet

import (
	"bytes"
	"testing"

	"repro/internal/keytree"
)

// fuzzEncs derives a (possibly empty) encryption list from fuzz bytes;
// IDs are made non-zero because zero is the wire padding sentinel.
func fuzzEncs(raw []byte, max int) []keytree.Encryption {
	var encs []keytree.Encryption
	for len(raw) >= 5 && len(encs) < max {
		var e keytree.Encryption
		e.ID = uint32(raw[0])<<24 | uint32(raw[1])<<16 | uint32(raw[2])<<8 | uint32(raw[3]) | 1
		for i := range e.Wrapped {
			e.Wrapped[i] = raw[4] ^ byte(i)
		}
		encs = append(encs, e)
		raw = raw[5:]
	}
	return encs
}

// FuzzPacketRoundTrip exercises both directions of every wire format:
// structured packets built from fuzz input must survive
// Marshal -> Parse -> Marshal byte-identically, and raw fuzz bytes fed
// to the parsers must never panic; whatever they accept must re-marshal
// to a parseable packet.
func FuzzPacketRoundTrip(f *testing.F) {
	f.Add(uint8(7), uint8(1), uint8(2), uint16(9), uint16(3), uint16(12), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(uint8(0), uint8(0), uint8(0), uint16(0), uint16(0), uint16(0), []byte{})
	f.Add(uint8(63), uint8(255), uint8(255), uint16(65535), uint16(1), uint16(65535), bytes.Repeat([]byte{0xA5}, 64))
	f.Fuzz(func(t *testing.T, msgID, blockID, seq uint8, maxKID, frmID, toID uint16, raw []byte) {
		msgID &= MaxMsgID

		enc := &ENC{
			MsgID: msgID, BlockID: blockID, Seq: seq,
			Dup:    seq&1 != 0,
			MaxKID: maxKID, FrmID: frmID, ToID: toID,
			Encs: fuzzEncs(raw, MaxEncPerPacket),
		}
		b, err := enc.Marshal()
		if err != nil {
			t.Fatalf("ENC.Marshal: %v", err)
		}
		got, err := ParseENC(b)
		if err != nil {
			t.Fatalf("ParseENC of marshalled packet: %v", err)
		}
		b2, err := got.Marshal()
		if err != nil {
			t.Fatalf("re-Marshal: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatal("ENC did not round-trip byte-identically")
		}

		par := &PARITY{MsgID: msgID, BlockID: blockID, Seq: seq, Payload: make([]byte, ParityPayloadLen)}
		for i := 0; i < len(par.Payload) && i < len(raw); i++ {
			par.Payload[i] = raw[i]
		}
		b, err = par.Marshal()
		if err != nil {
			t.Fatalf("PARITY.Marshal: %v", err)
		}
		gotPar, err := ParsePARITY(b)
		if err != nil {
			t.Fatalf("ParsePARITY of marshalled packet: %v", err)
		}
		b2, err = gotPar.Marshal()
		if err != nil || !bytes.Equal(b, b2) {
			t.Fatalf("PARITY did not round-trip (err=%v)", err)
		}

		usr := &USR{MsgID: msgID, NewID: frmID, MaxKID: maxKID, Encs: fuzzEncs(raw, 64)}
		b, err = usr.Marshal()
		if err != nil {
			t.Fatalf("USR.Marshal: %v", err)
		}
		gotUsr, err := ParseUSR(b)
		if err != nil {
			t.Fatalf("ParseUSR of marshalled packet: %v", err)
		}
		b2, err = gotUsr.Marshal()
		if err != nil || !bytes.Equal(b, b2) {
			t.Fatalf("USR did not round-trip (err=%v)", err)
		}

		nack := &NACK{MsgID: msgID, UserID: toID}
		for i := 0; i+1 < len(raw) && i < 32; i += 2 {
			nack.Requests = append(nack.Requests, BlockRequest{Count: raw[i], BlockID: raw[i+1]})
		}
		b, err = nack.Marshal()
		if err != nil {
			t.Fatalf("NACK.Marshal: %v", err)
		}
		gotNack, err := ParseNACK(b)
		if err != nil {
			t.Fatalf("ParseNACK of marshalled packet: %v", err)
		}
		b2, err = gotNack.Marshal()
		if err != nil || !bytes.Equal(b, b2) {
			t.Fatalf("NACK did not round-trip (err=%v)", err)
		}

		// Hostile direction: the parsers must tolerate arbitrary bytes.
		// Anything they accept must re-marshal into bytes they accept
		// again (parse/marshal reaches a fixed point).
		if p, err := ParseENC(raw); err == nil {
			if b, err := p.Marshal(); err != nil {
				t.Fatalf("re-Marshal of parsed hostile ENC: %v", err)
			} else if _, err := ParseENC(b); err != nil {
				t.Fatalf("re-Parse of parsed hostile ENC: %v", err)
			}
		}
		if p, err := ParsePARITY(raw); err == nil {
			if _, err := p.Marshal(); err != nil {
				t.Fatalf("re-Marshal of parsed hostile PARITY: %v", err)
			}
		}
		if p, err := ParseUSR(raw); err == nil {
			if _, err := p.Marshal(); err != nil {
				t.Fatalf("re-Marshal of parsed hostile USR: %v", err)
			}
		}
		if p, err := ParseNACK(raw); err == nil {
			if _, err := p.Marshal(); err != nil {
				t.Fatalf("re-Marshal of parsed hostile NACK: %v", err)
			}
		}
		Detect(raw)
	})
}
