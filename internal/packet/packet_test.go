package packet

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/keytree"
)

func randEncs(rng *rand.Rand, n int) []keytree.Encryption {
	encs := make([]keytree.Encryption, n)
	for i := range encs {
		encs[i].ID = rng.Uint32()%100000 + 1
		for j := range encs[i].Wrapped {
			encs[i].Wrapped[j] = byte(rng.Uint32())
		}
	}
	return encs
}

func TestENCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{0, 1, 17, MaxEncPerPacket} {
		p := &ENC{
			MsgID:   13,
			BlockID: 7,
			Seq:     3,
			MaxKID:  5460,
			FrmID:   1365,
			ToID:    1402,
			Encs:    randEncs(rng, n),
		}
		b, err := p.Marshal()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(b) != PacketLen {
			t.Fatalf("n=%d: marshalled length %d", n, len(b))
		}
		got, err := ParseENC(b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.MsgID != p.MsgID || got.BlockID != p.BlockID || got.Seq != p.Seq ||
			got.MaxKID != p.MaxKID || got.FrmID != p.FrmID || got.ToID != p.ToID {
			t.Fatalf("n=%d: header mismatch: %+v vs %+v", n, got, p)
		}
		if len(got.Encs) != n {
			t.Fatalf("n=%d: parsed %d encryptions", n, len(got.Encs))
		}
		for i := range got.Encs {
			if got.Encs[i] != p.Encs[i] {
				t.Fatalf("n=%d: encryption %d differs", n, i)
			}
		}
	}
}

func TestENCCapacityIs46(t *testing.T) {
	// The paper's duplication-overhead bound uses 46 encryptions per
	// 1027-byte packet; the wire format must reproduce that constant.
	if MaxEncPerPacket != 46 {
		t.Fatalf("MaxEncPerPacket = %d, want 46", MaxEncPerPacket)
	}
}

func TestENCRejects(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	if _, err := (&ENC{MsgID: 64}).Marshal(); err == nil {
		t.Error("7-bit MsgID accepted")
	}
	if _, err := (&ENC{Encs: randEncs(rng, MaxEncPerPacket+1)}).Marshal(); err == nil {
		t.Error("overfull packet accepted")
	}
	zero := randEncs(rng, 1)
	zero[0].ID = 0
	if _, err := (&ENC{Encs: zero}).Marshal(); err == nil {
		t.Error("encryption ID 0 accepted")
	}
	if _, err := ParseENC(make([]byte, 10)); err == nil {
		t.Error("short ENC parsed")
	}
	b, _ := (&PARITY{Payload: make([]byte, ParityPayloadLen)}).Marshal()
	if _, err := ParseENC(b); err == nil {
		t.Error("PARITY bytes parsed as ENC")
	}
}

func TestPARITYRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xa5}, ParityPayloadLen)
	p := &PARITY{MsgID: 63, BlockID: 255, Seq: 200, Payload: payload}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePARITY(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatal("PARITY round trip mismatch")
	}
}

func TestPARITYRejects(t *testing.T) {
	if _, err := (&PARITY{Payload: make([]byte, 5)}).Marshal(); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := ParsePARITY(make([]byte, PacketLen-1)); err == nil {
		t.Error("short packet parsed")
	}
}

func TestUSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for _, n := range []int{0, 1, 8} {
		p := &USR{MsgID: 5, NewID: 4099, MaxKID: 1364, Encs: randEncs(rng, n)}
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		// USR packets must stay small: 5 bytes + 22 per encryption.
		if len(b) != 5+n*EncEntryLen {
			t.Fatalf("n=%d: USR length %d", n, len(b))
		}
		got, err := ParseUSR(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.NewID != p.NewID || got.MaxKID != p.MaxKID || len(got.Encs) != n {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
		for i := range got.Encs {
			if got.Encs[i] != p.Encs[i] {
				t.Fatalf("n=%d: encryption %d differs", n, i)
			}
		}
	}
}

func TestNACKRoundTrip(t *testing.T) {
	p := &NACK{MsgID: 9, UserID: 2100, Requests: []BlockRequest{{Count: 3, BlockID: 0}, {Count: 7, BlockID: 10}}}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseNACK(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("NACK round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestDetect(t *testing.T) {
	enc, _ := (&ENC{}).Marshal()
	par, _ := (&PARITY{Payload: make([]byte, ParityPayloadLen)}).Marshal()
	usr, _ := (&USR{}).Marshal()
	nack, _ := (&NACK{}).Marshal()
	for _, tc := range []struct {
		b    []byte
		want Type
	}{{enc, TypeENC}, {par, TypePARITY}, {usr, TypeUSR}, {nack, TypeNACK}} {
		got, err := Detect(tc.b)
		if err != nil || got != tc.want {
			t.Errorf("Detect = %v,%v; want %v", got, err, tc.want)
		}
	}
	if _, err := Detect(nil); err == nil {
		t.Error("Detect(nil) succeeded")
	}
}

// Property: any valid ENC header survives a marshal/parse round trip.
func TestQuickENCHeaders(t *testing.T) {
	f := func(msgID, blk, seq uint8, maxKID, frm, to uint16) bool {
		p := &ENC{MsgID: msgID & MaxMsgID, BlockID: blk, Seq: seq, MaxKID: maxKID, FrmID: frm, ToID: to}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := ParseENC(b)
		if err != nil {
			return false
		}
		return got.headerOnly() == p.headerOnly()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func (p *ENC) headerOnly() [6]uint16 {
	return [6]uint16{uint16(p.MsgID), uint16(p.BlockID), uint16(p.Seq), p.MaxKID, p.FrmID, p.ToID}
}

func TestFECOffsetCoversIdentity(t *testing.T) {
	// Fields 1-4 (type+msgID, blockID, seq) must lie outside the
	// FEC-protected span so that parity packets can carry their own
	// identity; maxKID onward is inside.
	if FECOffset != 3 {
		t.Fatalf("FECOffset = %d, want 3", FECOffset)
	}
	if ParityPayloadLen != PacketLen-3 {
		t.Fatalf("ParityPayloadLen = %d", ParityPayloadLen)
	}
}
