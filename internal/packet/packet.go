// Package packet defines the four wire formats of the rekey transport
// protocol (Appendix A of the protocol paper): ENC packets carrying
// encrypted keys, PARITY packets carrying Reed-Solomon redundancy, USR
// packets unicast to individual stragglers, and NACK feedback packets.
//
// All multicast packets are a fixed PacketLen bytes because FEC encoding
// requires fixed-length blocks; ENC packets are zero-padded, which is
// unambiguous because no encryption has ID zero (the root is never an
// encrypting key).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/keys"
	"repro/internal/keytree"
)

// Type is the 2-bit packet type carried in the top bits of byte 0.
type Type uint8

// Packet types.
const (
	TypeENC Type = iota
	TypePARITY
	TypeUSR
	TypeNACK
)

func (t Type) String() string {
	switch t {
	case TypeENC:
		return "ENC"
	case TypePARITY:
		return "PARITY"
	case TypeUSR:
		return "USR"
	case TypeNACK:
		return "NACK"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Wire-format constants.
const (
	// PacketLen is the fixed length of ENC and PARITY packets: the
	// paper's 1027-byte packets.
	PacketLen = 1027
	// ENCHeaderLen is bytes 0..9: type+msgID, blockID, seq, flags,
	// maxKID, frmID, toID.
	ENCHeaderLen = 10
	// FECOffset is where FEC-protected content begins: fields 5-8 of an
	// ENC packet (maxKID onward) are covered by parity; fields 1-4
	// (type, message ID, block ID, sequence number) identify the packet
	// and are not.
	FECOffset = 3
	// EncEntryLen is one <ID, encryption> element: 4-byte encrypting-key
	// ID plus the wrapped key.
	EncEntryLen = 4 + keys.WrappedSize
	// MaxEncPerPacket is how many encryptions fit in one ENC packet:
	// (1027-10)/22 = 46, the constant the paper uses when bounding
	// duplication overhead.
	MaxEncPerPacket = (PacketLen - ENCHeaderLen) / EncEntryLen
	// MaxMsgID is the largest rekey message ID (6-bit field).
	MaxMsgID = 1<<6 - 1
)

// ENC is a multicast packet carrying the encryptions for the users whose
// IDs fall in [FrmID, ToID].
type ENC struct {
	MsgID   uint8 // 6-bit rekey message ID
	BlockID uint8
	Seq     uint8 // sequence number within the block
	// Dup marks a last-block padding duplicate; duplicates count as FEC
	// shards but are excluded from block-ID estimation.
	Dup    bool
	MaxKID uint16
	FrmID  uint16
	ToID   uint16
	Encs   []keytree.Encryption
}

// Marshal renders the packet into exactly PacketLen bytes.
func (p *ENC) Marshal() ([]byte, error) {
	if p.MsgID > MaxMsgID {
		return nil, fmt.Errorf("packet: message ID %d exceeds 6 bits", p.MsgID)
	}
	if len(p.Encs) > MaxEncPerPacket {
		return nil, fmt.Errorf("packet: %d encryptions exceed capacity %d", len(p.Encs), MaxEncPerPacket)
	}
	for _, e := range p.Encs {
		if e.ID == 0 {
			return nil, errors.New("packet: encryption ID 0 is reserved for padding")
		}
	}
	b := make([]byte, PacketLen)
	b[0] = byte(TypeENC)<<6 | p.MsgID
	b[1] = p.BlockID
	b[2] = p.Seq
	if p.Dup {
		b[3] = 1
	}
	binary.BigEndian.PutUint16(b[4:], p.MaxKID)
	binary.BigEndian.PutUint16(b[6:], p.FrmID)
	binary.BigEndian.PutUint16(b[8:], p.ToID)
	off := ENCHeaderLen
	for _, e := range p.Encs {
		binary.BigEndian.PutUint32(b[off:], e.ID)
		copy(b[off+4:], e.Wrapped[:])
		off += EncEntryLen
	}
	return b, nil
}

// ParseENC decodes an ENC packet produced by Marshal.
func ParseENC(b []byte) (*ENC, error) {
	if len(b) != PacketLen {
		return nil, fmt.Errorf("packet: ENC length %d, want %d", len(b), PacketLen)
	}
	if Type(b[0]>>6) != TypeENC {
		return nil, fmt.Errorf("packet: type %v, want ENC", Type(b[0]>>6))
	}
	p := &ENC{
		MsgID:   b[0] & MaxMsgID,
		BlockID: b[1],
		Seq:     b[2],
		Dup:     b[3]&1 != 0,
		MaxKID:  binary.BigEndian.Uint16(b[4:]),
		FrmID:   binary.BigEndian.Uint16(b[6:]),
		ToID:    binary.BigEndian.Uint16(b[8:]),
	}
	for off := ENCHeaderLen; off+EncEntryLen <= PacketLen; off += EncEntryLen {
		id := binary.BigEndian.Uint32(b[off:])
		if id == 0 {
			break // zero padding begins
		}
		var e keytree.Encryption
		e.ID = id
		copy(e.Wrapped[:], b[off+4:])
		p.Encs = append(p.Encs, e)
	}
	return p, nil
}

// PARITY is a multicast packet carrying FEC redundancy for one block.
// Its payload protects bytes FECOffset..PacketLen of the block's ENC
// packets.
type PARITY struct {
	MsgID   uint8
	BlockID uint8
	Seq     uint8 // shard index within the block; k+i for parity i
	Payload []byte
}

// ParityPayloadLen is the FEC-protected span of an ENC packet.
const ParityPayloadLen = PacketLen - FECOffset

// Marshal renders the packet into exactly PacketLen bytes.
func (p *PARITY) Marshal() ([]byte, error) {
	return p.AppendMarshal(make([]byte, 0, PacketLen))
}

// AppendMarshal appends the packet's PacketLen wire bytes to dst and
// returns the extended slice; with enough capacity in dst it does not
// allocate (the send-path fast path).
func (p *PARITY) AppendMarshal(dst []byte) ([]byte, error) {
	return AppendParity(dst, p.MsgID, p.BlockID, p.Seq, p.Payload)
}

// AppendParity appends a PARITY packet's PacketLen wire bytes to dst
// without requiring a PARITY struct, so a send path holding only the
// cached payload slice can build the datagram with zero allocations.
func AppendParity(dst []byte, msgID, blockID, seq uint8, payload []byte) ([]byte, error) {
	if msgID > MaxMsgID {
		return nil, fmt.Errorf("packet: message ID %d exceeds 6 bits", msgID)
	}
	if len(payload) != ParityPayloadLen {
		return nil, fmt.Errorf("packet: parity payload %d bytes, want %d", len(payload), ParityPayloadLen)
	}
	dst = append(dst, byte(TypePARITY)<<6|msgID, blockID, seq)
	return append(dst, payload...), nil
}

// ParsePARITY decodes a PARITY packet produced by Marshal.
func ParsePARITY(b []byte) (*PARITY, error) {
	if len(b) != PacketLen {
		return nil, fmt.Errorf("packet: PARITY length %d, want %d", len(b), PacketLen)
	}
	if Type(b[0]>>6) != TypePARITY {
		return nil, fmt.Errorf("packet: type %v, want PARITY", Type(b[0]>>6))
	}
	return &PARITY{
		MsgID:   b[0] & MaxMsgID,
		BlockID: b[1],
		Seq:     b[2],
		Payload: append([]byte(nil), b[FECOffset:]...),
	}, nil
}

// USR is a unicast packet carrying exactly one user's encryptions plus
// its (possibly changed) user ID. It is small: 3 + 22h bytes for a tree
// of height h.
type USR struct {
	MsgID  uint8
	NewID  uint16
	MaxKID uint16
	Encs   []keytree.Encryption
}

// Marshal renders the packet; USR packets are variable length.
func (p *USR) Marshal() ([]byte, error) {
	if p.MsgID > MaxMsgID {
		return nil, fmt.Errorf("packet: message ID %d exceeds 6 bits", p.MsgID)
	}
	b := make([]byte, 5+len(p.Encs)*EncEntryLen)
	b[0] = byte(TypeUSR)<<6 | p.MsgID
	binary.BigEndian.PutUint16(b[1:], p.NewID)
	binary.BigEndian.PutUint16(b[3:], p.MaxKID)
	off := 5
	for _, e := range p.Encs {
		binary.BigEndian.PutUint32(b[off:], e.ID)
		copy(b[off+4:], e.Wrapped[:])
		off += EncEntryLen
	}
	return b, nil
}

// ParseUSR decodes a USR packet produced by Marshal.
func ParseUSR(b []byte) (*USR, error) {
	if len(b) < 5 || (len(b)-5)%EncEntryLen != 0 {
		return nil, fmt.Errorf("packet: bad USR length %d", len(b))
	}
	if Type(b[0]>>6) != TypeUSR {
		return nil, fmt.Errorf("packet: type %v, want USR", Type(b[0]>>6))
	}
	p := &USR{
		MsgID:  b[0] & MaxMsgID,
		NewID:  binary.BigEndian.Uint16(b[1:]),
		MaxKID: binary.BigEndian.Uint16(b[3:]),
	}
	for off := 5; off < len(b); off += EncEntryLen {
		var e keytree.Encryption
		e.ID = binary.BigEndian.Uint32(b[off:])
		copy(e.Wrapped[:], b[off+4:])
		p.Encs = append(p.Encs, e)
	}
	return p, nil
}

// BlockRequest is one element of a NACK: the user needs Count more
// packets of block BlockID to reach k.
type BlockRequest struct {
	Count   uint8
	BlockID uint8
}

// NACK is user feedback: the PARITY packets needed per block.
type NACK struct {
	MsgID    uint8
	UserID   uint16 // requesting user's node ID (lets the server unicast later)
	Requests []BlockRequest
}

// Marshal renders the packet; NACK packets are variable length.
func (p *NACK) Marshal() ([]byte, error) {
	if p.MsgID > MaxMsgID {
		return nil, fmt.Errorf("packet: message ID %d exceeds 6 bits", p.MsgID)
	}
	b := make([]byte, 3+2*len(p.Requests))
	b[0] = byte(TypeNACK)<<6 | p.MsgID
	binary.BigEndian.PutUint16(b[1:], p.UserID)
	off := 3
	for _, r := range p.Requests {
		b[off] = r.Count
		b[off+1] = r.BlockID
		off += 2
	}
	return b, nil
}

// ParseNACK decodes a NACK packet produced by Marshal.
func ParseNACK(b []byte) (*NACK, error) {
	if len(b) < 3 || (len(b)-3)%2 != 0 {
		return nil, fmt.Errorf("packet: bad NACK length %d", len(b))
	}
	if Type(b[0]>>6) != TypeNACK {
		return nil, fmt.Errorf("packet: type %v, want NACK", Type(b[0]>>6))
	}
	p := &NACK{MsgID: b[0] & MaxMsgID, UserID: binary.BigEndian.Uint16(b[1:])}
	for off := 3; off < len(b); off += 2 {
		p.Requests = append(p.Requests, BlockRequest{Count: b[off], BlockID: b[off+1]})
	}
	return p, nil
}

// Detect returns the type of a raw packet without fully parsing it.
func Detect(b []byte) (Type, error) {
	if len(b) == 0 {
		return 0, errors.New("packet: empty")
	}
	return Type(b[0] >> 6), nil
}
