package packet

// Auth trailer: amortized interval authentication (DESIGN.md). The
// server signs one Merkle root per rekey interval; every packet of the
// interval carries a trailer with the O(log n) inclusion proof(s) that
// tie the packet's bytes to that root, plus the root signature itself
// (so the first packet a member sees -- whichever it is -- suffices to
// authenticate the interval).
//
// The trailer is appended AFTER the packet's normal wire bytes and is
// self-delimiting from the end: the final two bytes are the trailer's
// total length, so a receiver can split packet from trailer without
// knowing the packet kind, and the fixed-length ENC/PARITY formats
// (exactly PacketLen bytes) are untouched. FEC parity covers only the
// inner packet bytes; trailers are per-packet metadata outside the
// coded payload.
//
// Layout (all integers big-endian), reading forward:
//
//	version   u8   = AuthVersion
//	flags     u8   : bits 0-1 = inner packet Type, bit 2 = has aux
//	nTop      u16  : top-tree leaf count
//	leafIndex u32  : leaf position in the sub tree (USR) / seq (ENC)
//	nSub      u32  : sub-tree leaf count (0 = no sub proof level)
//	nProofSub u8   : sub-proof entries (leaf -> sub-tree root)
//	nProofTop u8   : top-proof entries (sub root -> interval root)
//	subProof  32*nProofSub bytes
//	topProof  32*nProofTop bytes
//	aux       32 bytes, present iff flag bit 2 (PARITY: block root)
//	sigLen    u16
//	sig       sigLen bytes
//	trailerLen u16 : total trailer length including these two bytes
//
// The interval root is never carried: the verifier recomputes it from
// the proofs, which is what makes a forged trailer useless -- it can
// only reproduce the signed root by actually containing the signed
// content.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/keys"
)

// AuthVersion is the auth trailer version byte.
const AuthVersion = 1

// Auth trailer size bounds. Proof lengths are ceil(log2(n)): 24 levels
// already cover 16M leaves, far beyond MaxK blocks plus any group size
// this protocol addresses (16-bit user IDs).
const (
	// MaxAuthProofLen bounds each proof's entry count.
	MaxAuthProofLen = 24
	// MaxAuthSigLen bounds the root signature (RSA up to 8192 bits).
	MaxAuthSigLen = 1024
	// authFixedLen is the trailer's fixed overhead: version, flags,
	// nTop, leafIndex, nSub, two proof counts, sigLen and trailerLen.
	authFixedLen = 1 + 1 + 2 + 4 + 4 + 1 + 1 + 2 + 2
	// MaxAuthTrailer is the largest trailer AppendAuthTrailer can emit;
	// send buffers are sized PacketLen+MaxAuthTrailer.
	MaxAuthTrailer = authFixedLen + 2*MaxAuthProofLen*keys.HashSize + keys.HashSize + MaxAuthSigLen
)

// AuthTrailer is a packet's parsed interval-authentication trailer.
type AuthTrailer struct {
	// Kind is the inner packet's type, echoed in the trailer so a
	// trailer cut from one packet kind cannot be spliced onto another.
	Kind Type
	// NTop is the interval's top-tree leaf count.
	NTop int
	// LeafIndex is the packet's leaf position in its sub tree: the
	// packet Seq for ENC, the user's slot in the USR sub tree for USR.
	LeafIndex int
	// NSub is the sub-tree leaf count (k for ENC, the addressed-user
	// count for USR, 0 for PARITY which has no sub level).
	NSub int
	// SubProof proves the packet's leaf hash up to its sub-tree root.
	SubProof []keys.MerkleHash
	// TopProof proves the sub-tree root up to the interval root. The
	// top-tree index is implied by the packet: BlockID for ENC/PARITY,
	// NTop-1 (the last leaf) for USR.
	TopProof []keys.MerkleHash
	// HasAux reports whether Aux is meaningful.
	HasAux bool
	// Aux is the block sub-tree root, carried explicitly by PARITY
	// packets (whose payload is code, not a leaf of the block tree).
	Aux keys.MerkleHash
	// Sig is the RSA signature over the interval root.
	Sig []byte
}

// AppendAuthTrailer appends t's wire form to b and returns the
// extended slice.
func (t *AuthTrailer) AppendAuthTrailer(b []byte) ([]byte, error) {
	if len(t.SubProof) > MaxAuthProofLen || len(t.TopProof) > MaxAuthProofLen {
		return nil, fmt.Errorf("packet: auth proof length %d/%d exceeds %d",
			len(t.SubProof), len(t.TopProof), MaxAuthProofLen)
	}
	if len(t.Sig) == 0 || len(t.Sig) > MaxAuthSigLen {
		return nil, fmt.Errorf("packet: auth signature length %d, want 1..%d", len(t.Sig), MaxAuthSigLen)
	}
	if t.NTop < 1 || t.NTop > 1<<16-1 {
		return nil, fmt.Errorf("packet: auth nTop %d out of range", t.NTop)
	}
	if t.LeafIndex < 0 || int64(t.LeafIndex) > 0xFFFFFFFF || t.NSub < 0 || int64(t.NSub) > 0xFFFFFFFF {
		return nil, fmt.Errorf("packet: auth leaf position %d/%d out of range", t.LeafIndex, t.NSub)
	}
	start := len(b)
	flags := byte(t.Kind) & 0x03
	if t.HasAux {
		flags |= 1 << 2
	}
	b = append(b, AuthVersion, flags)
	b = binary.BigEndian.AppendUint16(b, uint16(t.NTop))
	b = binary.BigEndian.AppendUint32(b, uint32(t.LeafIndex))
	b = binary.BigEndian.AppendUint32(b, uint32(t.NSub))
	b = append(b, byte(len(t.SubProof)), byte(len(t.TopProof)))
	for i := range t.SubProof {
		b = append(b, t.SubProof[i][:]...)
	}
	for i := range t.TopProof {
		b = append(b, t.TopProof[i][:]...)
	}
	if t.HasAux {
		b = append(b, t.Aux[:]...)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(t.Sig)))
	b = append(b, t.Sig...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(b)-start+2))
	return b, nil
}

// SplitAuth splits a received datagram into the inner packet bytes and
// its parsed auth trailer. It fails on any structural inconsistency --
// a bad version, a length that does not add up, proof counts over
// bound, or a trailer kind that contradicts the inner packet's type
// byte. The returned trailer's proof and signature slices are copies;
// inner aliases b.
func SplitAuth(b []byte) (inner []byte, t *AuthTrailer, err error) {
	if len(b) < authFixedLen {
		return nil, nil, fmt.Errorf("packet: %d bytes, too short for an auth trailer", len(b))
	}
	tl := int(binary.BigEndian.Uint16(b[len(b)-2:]))
	if tl < authFixedLen || tl > len(b) {
		return nil, nil, fmt.Errorf("packet: auth trailer length %d out of range", tl)
	}
	inner = b[:len(b)-tl]
	tr := b[len(b)-tl : len(b)-2]
	if tr[0] != AuthVersion {
		return nil, nil, fmt.Errorf("packet: auth trailer version %d, want %d", tr[0], AuthVersion)
	}
	t = &AuthTrailer{
		Kind:      Type(tr[1] & 0x03),
		HasAux:    tr[1]&(1<<2) != 0,
		NTop:      int(binary.BigEndian.Uint16(tr[2:])),
		LeafIndex: int(binary.BigEndian.Uint32(tr[4:])),
		NSub:      int(binary.BigEndian.Uint32(tr[8:])),
	}
	if tr[1]&^0x07 != 0 {
		return nil, nil, fmt.Errorf("packet: auth trailer flags %#x unknown", tr[1])
	}
	if t.NTop < 1 {
		return nil, nil, fmt.Errorf("packet: auth trailer nTop %d out of range", t.NTop)
	}
	nSub, nTop := int(tr[12]), int(tr[13])
	if nSub > MaxAuthProofLen || nTop > MaxAuthProofLen {
		return nil, nil, fmt.Errorf("packet: auth proof counts %d/%d exceed %d", nSub, nTop, MaxAuthProofLen)
	}
	off := 14
	need := off + (nSub+nTop)*keys.HashSize
	if t.HasAux {
		need += keys.HashSize
	}
	if need+2 > len(tr) { // +2 for sigLen
		return nil, nil, fmt.Errorf("packet: auth trailer truncated (%d bytes, need %d)", len(tr), need+2)
	}
	readProof := func(n int) []keys.MerkleHash {
		p := make([]keys.MerkleHash, n)
		for i := range p {
			copy(p[i][:], tr[off:])
			off += keys.HashSize
		}
		return p
	}
	t.SubProof = readProof(nSub)
	t.TopProof = readProof(nTop)
	if t.HasAux {
		copy(t.Aux[:], tr[off:])
		off += keys.HashSize
	}
	sigLen := int(binary.BigEndian.Uint16(tr[off:]))
	off += 2
	if sigLen == 0 || sigLen > MaxAuthSigLen || off+sigLen != len(tr) {
		return nil, nil, fmt.Errorf("packet: auth signature length %d inconsistent with trailer", sigLen)
	}
	t.Sig = append([]byte(nil), tr[off:off+sigLen]...)
	kind, err := Detect(inner)
	if err != nil {
		return nil, nil, err
	}
	if kind != t.Kind {
		return nil, nil, fmt.Errorf("packet: auth trailer kind %v on a %v packet", t.Kind, kind)
	}
	return inner, t, nil
}
