package packet

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/keys"
)

func testTrailer(kind Type, hasAux bool, nSub, nTop int) *AuthTrailer {
	rng := rand.New(rand.NewPCG(uint64(kind), uint64(nSub*100+nTop)))
	hashes := func(n int) []keys.MerkleHash {
		p := make([]keys.MerkleHash, n)
		for i := range p {
			for j := range p[i] {
				p[i][j] = byte(rng.Uint32())
			}
		}
		return p
	}
	t := &AuthTrailer{
		Kind:      kind,
		NTop:      5,
		LeafIndex: 3,
		NSub:      46,
		SubProof:  hashes(nSub),
		TopProof:  hashes(nTop),
		HasAux:    hasAux,
		Sig:       bytes.Repeat([]byte{0x5a}, 128),
	}
	if hasAux {
		t.Aux = hashes(1)[0]
	}
	return t
}

func trailerEqual(a, b *AuthTrailer) bool {
	if a.Kind != b.Kind || a.NTop != b.NTop || a.LeafIndex != b.LeafIndex ||
		a.NSub != b.NSub || a.HasAux != b.HasAux || a.Aux != b.Aux ||
		!bytes.Equal(a.Sig, b.Sig) ||
		len(a.SubProof) != len(b.SubProof) || len(a.TopProof) != len(b.TopProof) {
		return false
	}
	for i := range a.SubProof {
		if a.SubProof[i] != b.SubProof[i] {
			return false
		}
	}
	for i := range a.TopProof {
		if a.TopProof[i] != b.TopProof[i] {
			return false
		}
	}
	return true
}

func TestAuthTrailerRoundTrip(t *testing.T) {
	inner, err := (&PARITY{MsgID: 7, BlockID: 2, Seq: 11, Payload: make([]byte, ParityPayloadLen)}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		kind       Type
		hasAux     bool
		nSub, nTop int
	}{
		{TypePARITY, true, 0, 4},
		{TypePARITY, false, 6, 1},
		{TypePARITY, true, 0, 0},
		{TypePARITY, false, MaxAuthProofLen, MaxAuthProofLen},
	} {
		tr := testTrailer(tc.kind, tc.hasAux, tc.nSub, tc.nTop)
		wire, err := tr.AppendAuthTrailer(append([]byte(nil), inner...))
		if err != nil {
			t.Fatal(err)
		}
		if len(wire)-len(inner) > MaxAuthTrailer {
			t.Fatalf("trailer %d bytes exceeds MaxAuthTrailer %d", len(wire)-len(inner), MaxAuthTrailer)
		}
		gotInner, got, err := SplitAuth(wire)
		if err != nil {
			t.Fatalf("SplitAuth: %v", err)
		}
		if !bytes.Equal(gotInner, inner) {
			t.Fatal("inner packet bytes changed through the trailer round trip")
		}
		if !trailerEqual(tr, got) {
			t.Fatalf("trailer round trip mismatch: %+v vs %+v", tr, got)
		}
	}
}

func TestAuthTrailerKindMismatchRejected(t *testing.T) {
	inner, _ := (&PARITY{MsgID: 1, BlockID: 0, Seq: 10, Payload: make([]byte, ParityPayloadLen)}).Marshal()
	tr := testTrailer(TypeENC, false, 2, 2) // claims ENC over a PARITY packet
	wire, err := tr.AppendAuthTrailer(append([]byte(nil), inner...))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SplitAuth(wire); err == nil {
		t.Fatal("trailer kind/packet type mismatch accepted")
	}
}

func TestAuthTrailerBoundsRejected(t *testing.T) {
	base := testTrailer(TypeUSR, false, 2, 2)
	for name, mutate := range map[string]func(*AuthTrailer){
		"empty sig":     func(tr *AuthTrailer) { tr.Sig = nil },
		"oversized sig": func(tr *AuthTrailer) { tr.Sig = make([]byte, MaxAuthSigLen+1) },
		"long subproof": func(tr *AuthTrailer) { tr.SubProof = make([]keys.MerkleHash, MaxAuthProofLen+1) },
		"long topproof": func(tr *AuthTrailer) { tr.TopProof = make([]keys.MerkleHash, MaxAuthProofLen+1) },
		"zero ntop":     func(tr *AuthTrailer) { tr.NTop = 0 },
		"huge ntop":     func(tr *AuthTrailer) { tr.NTop = 1 << 16 },
	} {
		tr := *base
		mutate(&tr)
		if _, err := tr.AppendAuthTrailer(nil); err == nil {
			t.Fatalf("%s: AppendAuthTrailer accepted", name)
		}
	}
}

func TestSplitAuthStructuralRejection(t *testing.T) {
	inner, _ := (&USR{MsgID: 3, NewID: 9, MaxKID: 4}).Marshal()
	tr := testTrailer(TypeUSR, false, 3, 2)
	wire, err := tr.AppendAuthTrailer(append([]byte(nil), inner...))
	if err != nil {
		t.Fatal(err)
	}
	// Truncations anywhere must not parse into a valid (inner, trailer)
	// pair that still matches the original trailer.
	for cut := 1; cut < len(wire)-len(inner); cut++ {
		_, got, err := SplitAuth(wire[:len(wire)-cut])
		if err == nil && trailerEqual(got, tr) {
			t.Fatalf("truncation of %d bytes reproduced the trailer", cut)
		}
	}
	// A version bump is rejected.
	bad := append([]byte(nil), wire...)
	bad[len(inner)] ^= 0xff
	if _, _, err := SplitAuth(bad); err == nil {
		t.Fatal("corrupt version byte accepted")
	}
	// Too-short input is rejected outright.
	if _, _, err := SplitAuth(wire[:3]); err == nil {
		t.Fatal("short input accepted")
	}
}

// FuzzSplitAuth drives the trailer parser with mutated datagrams: it
// must never panic, and any accepted parse must re-serialize to the
// bytes it was cut from.
func FuzzSplitAuth(f *testing.F) {
	inner, _ := (&PARITY{MsgID: 2, BlockID: 1, Seq: 12, Payload: make([]byte, ParityPayloadLen)}).Marshal()
	seedTr := testTrailer(TypePARITY, true, 0, 3)
	seed, _ := seedTr.AppendAuthTrailer(append([]byte(nil), inner...))
	f.Add(seed, uint16(0), byte(0))
	f.Add(seed, uint16(1050), byte(0x40))
	f.Add([]byte{1, 1, 0, 1}, uint16(2), byte(7))
	f.Fuzz(func(t *testing.T, data []byte, pos uint16, flip byte) {
		if len(data) > 0 && flip != 0 {
			data[int(pos)%len(data)] ^= flip
		}
		gotInner, tr, err := SplitAuth(data)
		if err != nil {
			return
		}
		back, err := tr.AppendAuthTrailer(append([]byte(nil), gotInner...))
		if err != nil {
			t.Fatalf("accepted trailer failed to re-serialize: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("accepted parse does not round-trip to input bytes")
		}
	})
}
