package gf256

// Per-tier differential coverage: the same byte-identity suites the
// default dispatch runs under, repeated with every kernel tier the
// machine supports forced through SetKernel. On AVX2/GFNI hardware
// this is what pins the wider kernels to the scalar references; on a
// bare machine it degenerates to the generic tier and still passes.

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// forEachKernel runs fn once per available kernel tier with dispatch
// forced to that tier, restoring the default afterwards.
func forEachKernel(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	def := KernelName()
	defer func() {
		if err := SetKernel(def); err != nil {
			t.Fatalf("restoring kernel %q: %v", def, err)
		}
	}()
	for _, name := range AvailableKernels() {
		if err := SetKernel(name); err != nil {
			t.Fatalf("SetKernel(%q): %v", name, err)
		}
		t.Run(name, fn)
	}
}

func TestAllKernelTiersMatchRefAllCoefficients(t *testing.T) {
	forEachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewPCG(11, 11))
		for _, n := range kernelLens {
			src := randBytes(rng, n)
			init := randBytes(rng, n)
			got := make([]byte, n)
			want := make([]byte, n)
			for c := 0; c < Order; c++ {
				MulSlice(got, src, byte(c))
				RefMulSlice(want, src, byte(c))
				if !bytes.Equal(got, want) {
					t.Fatalf("%s MulSlice(len=%d, c=%d) diverges from reference", KernelName(), n, c)
				}
				copy(got, init)
				copy(want, init)
				MulAddSlice(got, src, byte(c))
				RefMulAddSlice(want, src, byte(c))
				if !bytes.Equal(got, want) {
					t.Fatalf("%s MulAddSlice(len=%d, c=%d) diverges from reference", KernelName(), n, c)
				}
			}
		}
	})
}

func TestAllKernelTiersUnalignedTails(t *testing.T) {
	forEachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewPCG(12, 12))
		buf := randBytes(rng, 4096)
		acc := randBytes(rng, 4096)
		for trial := 0; trial < 300; trial++ {
			off := rng.IntN(64)
			n := rng.IntN(len(buf) - off)
			c := byte(rng.Uint32())
			src := buf[off : off+n]

			got := make([]byte, n)
			want := make([]byte, n)
			MulSlice(got, src, c)
			RefMulSlice(want, src, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s MulSlice off=%d len=%d c=%d diverges", KernelName(), off, n, c)
			}

			copy(got, acc[off:off+n])
			copy(want, acc[off:off+n])
			MulAddSlice(got, src, c)
			RefMulAddSlice(want, src, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s MulAddSlice off=%d len=%d c=%d diverges", KernelName(), off, n, c)
			}
		}
	})
}

func TestSetKernelValidation(t *testing.T) {
	def := KernelName()
	defer func() {
		if err := SetKernel(def); err != nil {
			t.Fatalf("restoring kernel %q: %v", def, err)
		}
	}()
	if err := SetKernel("bogus"); err == nil {
		t.Fatal("SetKernel(bogus) did not fail")
	}
	avail := AvailableKernels()
	if len(avail) == 0 || avail[0] != "generic" {
		t.Fatalf("AvailableKernels() = %v, want generic first", avail)
	}
	if avail[len(avail)-1] != def {
		t.Fatalf("default kernel %q is not the last available tier %v", def, avail)
	}
	for _, name := range avail {
		if err := SetKernel(name); err != nil {
			t.Fatalf("SetKernel(%q): %v", name, err)
		}
		if got := KernelName(); got != name {
			t.Fatalf("KernelName() = %q after SetKernel(%q)", got, name)
		}
	}
}

// FuzzKernelTiersMatchRef drives every available tier over the same
// fuzz-chosen span and accumulator, demanding byte-identity with the
// scalar references throughout.
func FuzzKernelTiersMatchRef(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, byte(0x57), uint8(3))
	f.Add(bytes.Repeat([]byte{0xaa}, 100), byte(0xff), uint8(17))
	f.Add([]byte{}, byte(0), uint8(0))
	def := KernelName()
	f.Cleanup(func() {
		if err := SetKernel(def); err != nil {
			f.Fatalf("restoring kernel %q: %v", def, err)
		}
	})
	f.Fuzz(func(t *testing.T, src []byte, c byte, off uint8) {
		o := int(off)
		if o > len(src) {
			o = len(src)
		}
		span := src[o:]
		want := make([]byte, len(span))
		wantAdd := make([]byte, len(span))
		RefMulSlice(want, span, c)
		copy(wantAdd, src[:len(span)])
		RefMulAddSlice(wantAdd, span, c)
		got := make([]byte, len(span))
		for _, name := range AvailableKernels() {
			if err := SetKernel(name); err != nil {
				t.Fatalf("SetKernel(%q): %v", name, err)
			}
			MulSlice(got, span, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s MulSlice diverges (len=%d c=%d)", name, len(span), c)
			}
			copy(got, src[:len(span)])
			MulAddSlice(got, span, c)
			if !bytes.Equal(got, wantAdd) {
				t.Fatalf("%s MulAddSlice diverges (len=%d c=%d)", name, len(span), c)
			}
		}
	})
}

// BenchmarkMulAddSliceKernel reports per-tier throughput; fecbench
// reads the same shape into BENCH_fec.json rows.
func BenchmarkMulAddSliceKernel(b *testing.B) {
	def := KernelName()
	defer func() {
		if err := SetKernel(def); err != nil {
			b.Fatalf("restoring kernel %q: %v", def, err)
		}
	}()
	for _, name := range AvailableKernels() {
		if err := SetKernel(name); err != nil {
			b.Fatalf("SetKernel(%q): %v", name, err)
		}
		for _, n := range []int{1027, 8192} {
			b.Run(name+"/"+sizeName(n), func(b *testing.B) {
				src, dst := make([]byte, n), make([]byte, n)
				for i := range src {
					src[i] = byte(i)
				}
				b.SetBytes(int64(n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MulAddSlice(dst, src, 0x57)
				}
			})
		}
	}
}
