// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is represented with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by
// L. Rizzo's erasure codec and by most Reed-Solomon implementations.
// Scalar multiplication and division are table-driven via exp/log
// tables built once at package init.
//
// The hot vector kernels (MulSlice, MulAddSlice) additionally use
// split low/high-nibble product tables in the style of Rizzo's codec
// and klauspost/reedsolomon: for a fixed coefficient c,
//
//	c*s = mulTblLo[c][s&0xf] ^ mulTblHi[c][s>>4]
//
// which replaces the per-byte log/exp lookups and the zero-check
// branch with two branch-free lookups into 16-entry tables that stay
// resident in L1. On amd64 the same pair of 16-entry tables drives an
// SSSE3 PSHUFB kernel that performs the two nibble lookups for 16
// bytes per instruction pair. The original scalar kernels are retained
// as RefMulSlice/RefMulAddSlice, the reference implementations the
// differential tests compare against.
package gf256

// Order is the number of elements in GF(2^8).
const Order = 256

// poly is the primitive polynomial used to generate the field,
// x^8+x^4+x^3+x^2+1, written with the implicit x^8 term as bit 8.
const poly = 0x11d

var (
	expTbl [2 * Order]byte // expTbl[i] = g^i, doubled to avoid a mod in Mul
	logTbl [Order]int      // logTbl[x] = log_g(x); logTbl[0] is unused

	// Split product tables for the vector kernels:
	// mulTblLo[c][n] = c*n and mulTblHi[c][n] = c*(n<<4), so
	// c*s = mulTblLo[c][s&0xf] ^ mulTblHi[c][s>>4] by distributivity.
	// 16-entry rows let the compiler drop bounds checks on nibble
	// indices; the pair of rows for one coefficient is 32 bytes.
	mulTblLo [Order][16]byte
	mulTblHi [Order][16]byte
)

func init() {
	x := 1
	for i := 0; i < Order-1; i++ {
		expTbl[i] = byte(x)
		logTbl[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
	}
	// Duplicate the table so Mul can index log(a)+log(b) directly.
	for i := Order - 1; i < 2*Order; i++ {
		expTbl[i] = expTbl[i-(Order-1)]
	}
	for c := 0; c < Order; c++ {
		for n := 0; n < 16; n++ {
			mulTblLo[c][n] = Mul(byte(c), byte(n))
			mulTblHi[c][n] = Mul(byte(c), byte(n<<4))
		}
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide (XOR).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTbl[logTbl[a]+logTbl[b]]
}

// Exp returns g^e where g is the field generator. The exponent may be
// any integer; it is reduced modulo Order-1 (the order of the
// multiplicative group), so Exp(-1) is the inverse of g and
// Exp(e) == Exp(e+255) for all e.
func Exp(e int) byte {
	e %= Order - 1
	if e < 0 {
		e += Order - 1
	}
	return expTbl[e]
}

// Log returns log_g(x). It panics if x is zero, which has no logarithm.
func Log(x byte) int {
	if x == 0 {
		panic("gf256: log of zero")
	}
	return logTbl[x]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTbl[Order-1-logTbl[a]]
}

// Div returns a/b. It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTbl[logTbl[a]+Order-1-logTbl[b]]
}

// MulSlice sets dst[i] = c*src[i] for all i. dst and src must have the
// same length; they must not overlap unless they are identical slices.
//
//rekeylint:hotpath
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	mulKernel(dst, src, c)
}

// MulAddSlice sets dst[i] ^= c*src[i] for all i: a fused
// multiply-accumulate, the inner loop of Reed-Solomon encoding.
// dst and src must have the same length; they must not overlap unless
// they are identical slices.
//
//rekeylint:hotpath
func MulAddSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
		return
	}
	mulAddKernel(dst, src, c)
}

// KernelName reports which vector kernel implementation MulSlice and
// MulAddSlice currently dispatch to: "generic", "ssse3", "avx2" or
// "gfni".
func KernelName() string { return kernelName() }

// KernelEnv is the environment variable that, when set to a kernel
// name, overrides the probed dispatch tier at package init (ignored if
// the named kernel is unknown or not usable on this CPU). It exists so
// tests and benchmarks can pin a tier from the outside.
const KernelEnv = "REKEY_GF256_KERNEL"

// AvailableKernels lists the kernel implementations usable on this
// machine, slowest first; the last entry is the default dispatch
// choice. Always contains at least "generic".
func AvailableKernels() []string { return availableKernels() }

// SetKernel forces MulSlice/MulAddSlice dispatch to the named kernel
// ("generic", "ssse3", "avx2", "gfni"), or returns an error if the
// kernel is unknown or not usable on this machine. It is meant for
// tests and benchmarks that exercise every tier; it must not be called
// concurrently with slice operations.
func SetKernel(name string) error { return setKernel(name) }

// CPUFeatures lists the probed SIMD capabilities relevant to this
// package ("ssse3", "avx2", "gfni"), in that order; empty on machines
// or builds with none.
func CPUFeatures() []string { return cpuFeatureNames() }

// xorSlice sets dst[i] ^= src[i]: the c==1 accumulate path.
//
//rekeylint:hotpath
func xorSlice(dst, src []byte) {
	i := 0
	for ; i+8 <= len(src); i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= s[0]
		d[1] ^= s[1]
		d[2] ^= s[2]
		d[3] ^= s[3]
		d[4] ^= s[4]
		d[5] ^= s[5]
		d[6] ^= s[6]
		d[7] ^= s[7]
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// mulGeneric is the portable nibble-table kernel behind MulSlice: two
// branch-free 16-entry lookups per byte, 8 bytes per iteration.
// Correct for every c (including 0 and 1); the exported wrapper
// special-cases those only as a shortcut.
//
//rekeylint:hotpath
func mulGeneric(dst, src []byte, c byte) {
	lo, hi := &mulTblLo[c], &mulTblHi[c]
	i := 0
	for ; i+8 <= len(src); i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = lo[s[0]&0xf] ^ hi[s[0]>>4]
		d[1] = lo[s[1]&0xf] ^ hi[s[1]>>4]
		d[2] = lo[s[2]&0xf] ^ hi[s[2]>>4]
		d[3] = lo[s[3]&0xf] ^ hi[s[3]>>4]
		d[4] = lo[s[4]&0xf] ^ hi[s[4]>>4]
		d[5] = lo[s[5]&0xf] ^ hi[s[5]>>4]
		d[6] = lo[s[6]&0xf] ^ hi[s[6]>>4]
		d[7] = lo[s[7]&0xf] ^ hi[s[7]>>4]
	}
	for ; i < len(src); i++ {
		s := src[i]
		dst[i] = lo[s&0xf] ^ hi[s>>4]
	}
}

// mulAddGeneric is the portable nibble-table kernel behind
// MulAddSlice. Correct for every c.
//
//rekeylint:hotpath
func mulAddGeneric(dst, src []byte, c byte) {
	lo, hi := &mulTblLo[c], &mulTblHi[c]
	i := 0
	for ; i+8 <= len(src); i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= lo[s[0]&0xf] ^ hi[s[0]>>4]
		d[1] ^= lo[s[1]&0xf] ^ hi[s[1]>>4]
		d[2] ^= lo[s[2]&0xf] ^ hi[s[2]>>4]
		d[3] ^= lo[s[3]&0xf] ^ hi[s[3]>>4]
		d[4] ^= lo[s[4]&0xf] ^ hi[s[4]>>4]
		d[5] ^= lo[s[5]&0xf] ^ hi[s[5]>>4]
		d[6] ^= lo[s[6]&0xf] ^ hi[s[6]>>4]
		d[7] ^= lo[s[7]&0xf] ^ hi[s[7]>>4]
	}
	for ; i < len(src); i++ {
		s := src[i]
		dst[i] ^= lo[s&0xf] ^ hi[s>>4]
	}
}

// RefMulSlice is the original byte-at-a-time log/exp kernel, retained
// as the reference implementation for differential testing of
// MulSlice. Semantics are identical.
func RefMulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: RefMulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	lc := logTbl[c]
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTbl[lc+logTbl[s]]
		}
	}
}

// RefMulAddSlice is the original byte-at-a-time log/exp kernel,
// retained as the reference implementation for differential testing of
// MulAddSlice. Semantics are identical.
func RefMulAddSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: RefMulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	lc := logTbl[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTbl[lc+logTbl[s]]
		}
	}
}

// Matrix is a dense matrix over GF(2^8) in row-major order.
type Matrix struct {
	Rows, Cols int
	Data       []byte
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("gf256: non-positive matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a slice aliasing row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MulMatrix returns the matrix product a*b.
func MulMatrix(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("gf256: matrix dimension mismatch")
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av != 0 {
				MulAddSlice(orow, b.Row(k), av)
			}
		}
	}
	return out
}

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination, or ok=false if the matrix is singular. The receiver is
// not modified.
func (m *Matrix) Invert() (inv *Matrix, ok bool) {
	if m.Rows != m.Cols {
		panic("gf256: Invert on non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	inv = Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot row.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale the pivot row so the pivot element is 1.
		if p := a.At(col, col); p != 1 {
			pi := Inv(p)
			MulSlice(a.Row(col), a.Row(col), pi)
			MulSlice(inv.Row(col), inv.Row(col), pi)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := a.At(r, col); f != 0 {
				MulAddSlice(a.Row(r), a.Row(col), f)
				MulAddSlice(inv.Row(r), inv.Row(col), f)
			}
		}
	}
	return inv, true
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
