//go:build !amd64 || purego

package gf256

import "fmt"

func kernelName() string { return "generic" }

func setKernel(name string) error {
	if name == "generic" {
		return nil
	}
	return fmt.Errorf("gf256: kernel %q not available in this build (generic only)", name)
}

func availableKernels() []string { return []string{"generic"} }

func cpuFeatureNames() []string { return nil }

//rekeylint:hotpath
func mulKernel(dst, src []byte, c byte) { mulGeneric(dst, src, c) }

//rekeylint:hotpath
func mulAddKernel(dst, src []byte, c byte) { mulAddGeneric(dst, src, c) }
