//go:build !amd64 || purego

package gf256

func kernelName() string { return "generic" }

func mulKernel(dst, src []byte, c byte)    { mulGeneric(dst, src, c) }
func mulAddKernel(dst, src []byte, c byte) { mulAddGeneric(dst, src, c) }
