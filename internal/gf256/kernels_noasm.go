//go:build !amd64 || purego

package gf256

func kernelName() string { return "generic" }

//rekeylint:hotpath
func mulKernel(dst, src []byte, c byte) { mulGeneric(dst, src, c) }

//rekeylint:hotpath
func mulAddKernel(dst, src []byte, c byte) { mulAddGeneric(dst, src, c) }
