package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53,0xCA) = %#x, want %#x", Add(0x53, 0xCA), 0x53^0xCA)
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for x := 0; x < Order; x++ {
		b := byte(x)
		if Mul(b, 1) != b {
			t.Fatalf("Mul(%d,1) = %d, want %d", b, Mul(b, 1), b)
		}
		if Mul(b, 0) != 0 {
			t.Fatalf("Mul(%d,0) = %d, want 0", b, Mul(b, 0))
		}
	}
}

func TestMulMatchesSchoolbook(t *testing.T) {
	// Carry-less multiplication reduced by the field polynomial.
	slow := func(a, b byte) byte {
		var p uint16
		av, bv := uint16(a), uint16(b)
		for i := 0; i < 8; i++ {
			if bv&1 != 0 {
				p ^= av
			}
			bv >>= 1
			av <<= 1
			if av&0x100 != 0 {
				av ^= poly
			}
		}
		return byte(p)
	}
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			got, want := Mul(byte(a), byte(b)), slow(byte(a), byte(b))
			if got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestInvRoundTrip(t *testing.T) {
	for x := 1; x < Order; x++ {
		b := byte(x)
		if Mul(b, Inv(b)) != 1 {
			t.Fatalf("x*Inv(x) != 1 for x=%d", x)
		}
	}
}

func TestDiv(t *testing.T) {
	for a := 0; a < Order; a++ {
		for b := 1; b < Order; b++ {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%d,%d)*%d != %d", a, b, b, a)
			}
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogExpRoundTrip(t *testing.T) {
	for x := 1; x < Order; x++ {
		if Exp(Log(byte(x))) != byte(x) {
			t.Fatalf("Exp(Log(%d)) != %d", x, x)
		}
	}
}

func TestMulAssociativeCommutativeDistributive(t *testing.T) {
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	dist := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("associativity: %v", err)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	if err := quick.Check(dist, nil); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 250, 251, 252, 253}
	dst := make([]byte, len(src))
	for _, c := range []byte{0, 1, 2, 7, 255} {
		MulSlice(dst, src, c)
		for i := range src {
			if dst[i] != Mul(src[i], c) {
				t.Fatalf("MulSlice c=%d idx=%d: got %d want %d", c, i, dst[i], Mul(src[i], c))
			}
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{9, 8, 7, 6, 5}
	dst := []byte{1, 2, 3, 4, 5}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = dst[i] ^ Mul(src[i], 0x1d)
	}
	MulAddSlice(dst, src, 0x1d)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulAddSlice idx=%d: got %d want %d", i, dst[i], want[i])
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MulSlice(make([]byte, 2), make([]byte, 3), 1)
}

func TestMatrixInvertIdentity(t *testing.T) {
	id := Identity(5)
	inv, ok := id.Invert()
	if !ok {
		t.Fatal("identity reported singular")
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if inv.At(i, j) != want {
				t.Fatalf("inv identity at (%d,%d) = %d", i, j, inv.At(i, j))
			}
		}
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	// A Cauchy matrix is always invertible.
	n := 8
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, Inv(byte(i+n)^byte(j)))
		}
	}
	inv, ok := m.Invert()
	if !ok {
		t.Fatal("Cauchy matrix reported singular")
	}
	prod := MulMatrix(m, inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if prod.At(i, j) != want {
				t.Fatalf("m*inv at (%d,%d) = %d, want %d", i, j, prod.At(i, j), want)
			}
		}
	}
}

func TestMatrixSingularDetected(t *testing.T) {
	m := NewMatrix(3, 3)
	// Row 2 = row 0 + row 1 -> singular.
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(0, 2, 3)
	m.Set(1, 0, 4)
	m.Set(1, 1, 5)
	m.Set(1, 2, 6)
	for j := 0; j < 3; j++ {
		m.Set(2, j, Add(m.At(0, j), m.At(1, j)))
	}
	if _, ok := m.Invert(); ok {
		t.Fatal("singular matrix reported invertible")
	}
}

func TestMulMatrixIdentity(t *testing.T) {
	a := NewMatrix(3, 4)
	for i := range a.Data {
		a.Data[i] = byte(i*37 + 5)
	}
	got := MulMatrix(Identity(3), a)
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatalf("I*a differs at %d", i)
		}
	}
}

func BenchmarkMulAddSlice1K(b *testing.B) {
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(dst, src, 0x57)
	}
}
