//go:build amd64 && !purego

package gf256

// hasSSSE3 gates the PSHUFB kernels. SSSE3 (2006) is present on every
// amd64 CPU Go still supports in practice, but it is not part of the
// GOAMD64=v1 baseline, so it is probed once at startup.
var hasSSSE3 = cpuHasSSSE3()

// cpuHasSSSE3 reports whether the CPU supports SSSE3 (CPUID.1:ECX[9]).
func cpuHasSSSE3() bool

// mulVecSSSE3 sets dst[i] = c*src[i] for i in [0,n) where lo and hi are
// the nibble product tables of c. n must be a positive multiple of 16.
//
//go:noescape
func mulVecSSSE3(lo, hi *[16]byte, dst, src *byte, n int)

// mulAddVecSSSE3 sets dst[i] ^= c*src[i] for i in [0,n) where lo and hi
// are the nibble product tables of c. n must be a positive multiple of
// 16.
//
//go:noescape
func mulAddVecSSSE3(lo, hi *[16]byte, dst, src *byte, n int)

func kernelName() string {
	if hasSSSE3 {
		return "ssse3"
	}
	return "generic"
}

//rekeylint:hotpath
func mulKernel(dst, src []byte, c byte) {
	if hasSSSE3 {
		if n := len(src) &^ 15; n > 0 {
			mulVecSSSE3(&mulTblLo[c], &mulTblHi[c], &dst[0], &src[0], n)
			dst, src = dst[n:], src[n:]
		}
	}
	mulGeneric(dst, src, c)
}

//rekeylint:hotpath
func mulAddKernel(dst, src []byte, c byte) {
	if hasSSSE3 {
		if n := len(src) &^ 15; n > 0 {
			mulAddVecSSSE3(&mulTblLo[c], &mulTblHi[c], &dst[0], &src[0], n)
			dst, src = dst[n:], src[n:]
		}
	}
	mulAddGeneric(dst, src, c)
}
