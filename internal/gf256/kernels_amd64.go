//go:build amd64 && !purego

package gf256

import (
	"fmt"
	"os"
)

// CPU feature bits reported by cpuFeatureBits. Each bit means "usable",
// not merely "present": the AVX2 bit also requires OSXSAVE with XMM+YMM
// state enabled in XCR0, and the GFNI bit is only set when the VEX/ymm
// encodings this package emits are usable (GFNI and usable AVX2).
const (
	featSSSE3 = 1 << 0
	featAVX2  = 1 << 1
	featGFNI  = 1 << 2
)

// cpuFeatureBits probes CPUID (and XGETBV where OSXSAVE allows) for the
// feat* bits above.
func cpuFeatureBits() uint32

var features = cpuFeatureBits()

// Kernel tiers, slowest to fastest. Dispatch picks the best tier the
// CPU supports; tests and benchmarks force lower tiers through
// SetKernel to exercise every variant on one machine.
const (
	tierGeneric = iota
	tierSSSE3
	tierAVX2
	tierGFNI
	numTiers
)

var tierNames = [numTiers]string{"generic", "ssse3", "avx2", "gfni"}

var curTier = bestTier()

func bestTier() int {
	switch {
	case features&featGFNI != 0:
		return tierGFNI
	case features&featAVX2 != 0:
		return tierAVX2
	case features&featSSSE3 != 0:
		return tierSSSE3
	}
	return tierGeneric
}

// gfniTbl[c] is the 8x8 GF(2) bit-matrix of "multiply by c" in the
// 0x11d field, packed for GF2P8AFFINEQB: result bit i is
// parity(matrix.byte[7-i] & x), so the row for output bit i -- bit j
// set iff bit i of Mul(c, 1<<j) is set -- lands in byte 7-i. The
// affine instruction's own GF2P8MULB sibling is hardwired to the AES
// polynomial 0x11b and cannot be used here; the affine form evaluates
// an arbitrary linear map, and multiplication by a constant is one.
var gfniTbl [Order]uint64

// init runs after gf256.go's table init (file-name order), so Mul is
// usable here.
func init() {
	for c := 0; c < Order; c++ {
		var m uint64
		for i := 0; i < 8; i++ {
			var row byte
			for j := 0; j < 8; j++ {
				if Mul(byte(c), 1<<j)&(1<<i) != 0 {
					row |= 1 << j
				}
			}
			m |= uint64(row) << (8 * (7 - i))
		}
		gfniTbl[c] = m
	}
	// Best-effort env override for tests and benchmarks: an unknown or
	// unsupported name keeps the probed default rather than failing
	// startup.
	if name := os.Getenv(KernelEnv); name != "" {
		_ = setKernel(name)
	}
}

func kernelName() string { return tierNames[curTier] }

func setKernel(name string) error {
	for t, n := range tierNames[:] {
		if n != name {
			continue
		}
		if t > bestTier() {
			return fmt.Errorf("gf256: kernel %q not usable on this CPU (best is %q)", name, tierNames[bestTier()])
		}
		curTier = t
		return nil
	}
	return fmt.Errorf("gf256: unknown kernel %q", name)
}

func availableKernels() []string {
	return append([]string(nil), tierNames[:bestTier()+1]...)
}

func cpuFeatureNames() []string {
	var out []string
	if features&featSSSE3 != 0 {
		out = append(out, "ssse3")
	}
	if features&featAVX2 != 0 {
		out = append(out, "avx2")
	}
	if features&featGFNI != 0 {
		out = append(out, "gfni")
	}
	return out
}

// mulVecSSSE3 sets dst[i] = c*src[i] for i in [0,n) where lo and hi are
// the nibble product tables of c. n must be a positive multiple of 16.
//
//go:noescape
func mulVecSSSE3(lo, hi *[16]byte, dst, src *byte, n int)

// mulAddVecSSSE3 sets dst[i] ^= c*src[i] for i in [0,n) where lo and hi
// are the nibble product tables of c. n must be a positive multiple of
// 16.
//
//go:noescape
func mulAddVecSSSE3(lo, hi *[16]byte, dst, src *byte, n int)

// mulVecAVX2 and mulAddVecAVX2 are the 256-bit PSHUFB kernels: the same
// nibble tables broadcast into both ymm lanes, 128 bytes per main-loop
// iteration. n must be a positive multiple of 16.
//
//go:noescape
func mulVecAVX2(lo, hi *[16]byte, dst, src *byte, n int)

//go:noescape
func mulAddVecAVX2(lo, hi *[16]byte, dst, src *byte, n int)

// mulVecGFNI and mulAddVecGFNI evaluate the multiply-by-c bit-matrix
// mat (gfniTbl[c]) with VGF2P8AFFINEQB, 64 bytes per main-loop
// iteration. n must be a positive multiple of 16.
//
//go:noescape
func mulVecGFNI(mat uint64, dst, src *byte, n int)

//go:noescape
func mulAddVecGFNI(mat uint64, dst, src *byte, n int)

//rekeylint:hotpath
func mulKernel(dst, src []byte, c byte) {
	if n := len(src) &^ 15; n > 0 {
		switch curTier {
		case tierGFNI:
			mulVecGFNI(gfniTbl[c], &dst[0], &src[0], n)
		case tierAVX2:
			mulVecAVX2(&mulTblLo[c], &mulTblHi[c], &dst[0], &src[0], n)
		case tierSSSE3:
			mulVecSSSE3(&mulTblLo[c], &mulTblHi[c], &dst[0], &src[0], n)
		default:
			mulGeneric(dst, src, c)
			return
		}
		dst, src = dst[n:], src[n:]
	}
	mulGeneric(dst, src, c)
}

//rekeylint:hotpath
func mulAddKernel(dst, src []byte, c byte) {
	if n := len(src) &^ 15; n > 0 {
		switch curTier {
		case tierGFNI:
			mulAddVecGFNI(gfniTbl[c], &dst[0], &src[0], n)
		case tierAVX2:
			mulAddVecAVX2(&mulTblLo[c], &mulTblHi[c], &dst[0], &src[0], n)
		case tierSSSE3:
			mulAddVecSSSE3(&mulTblLo[c], &mulTblHi[c], &dst[0], &src[0], n)
		default:
			mulAddGeneric(dst, src, c)
			return
		}
		dst, src = dst[n:], src[n:]
	}
	mulAddGeneric(dst, src, c)
}
