package gf256

// Differential tests for the table-driven vector kernels: the nibble
// split-table MulSlice/MulAddSlice must match the retained scalar
// reference kernels (RefMulSlice/RefMulAddSlice) byte for byte on
// every coefficient, on lengths around the 8-byte unroll boundary, on
// large packets, and on unaligned sub-slices.

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// kernelLens covers the empty slice, sub-unroll lengths, the unroll
// boundary and its neighbours, the wire packet size, and a large
// power-of-two buffer.
var kernelLens = []int{0, 1, 7, 8, 9, 64, 1027, 8192}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func TestMulSliceMatchesRefAllCoefficients(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range kernelLens {
		src := randBytes(rng, n)
		got := make([]byte, n)
		want := make([]byte, n)
		for c := 0; c < Order; c++ {
			MulSlice(got, src, byte(c))
			RefMulSlice(want, src, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSlice(len=%d, c=%d) diverges from reference", n, c)
			}
		}
	}
}

func TestMulAddSliceMatchesRefAllCoefficients(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, n := range kernelLens {
		src := randBytes(rng, n)
		init := randBytes(rng, n)
		got := make([]byte, n)
		want := make([]byte, n)
		for c := 0; c < Order; c++ {
			copy(got, init)
			copy(want, init)
			MulAddSlice(got, src, byte(c))
			RefMulAddSlice(want, src, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("MulAddSlice(len=%d, c=%d) diverges from reference", n, c)
			}
		}
	}
}

// TestKernelsUnalignedTails slices random windows out of a shared
// buffer so the kernels run at every offset modulo the unroll width,
// with tails of every residue length.
func TestKernelsUnalignedTails(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	buf := randBytes(rng, 4096)
	acc := randBytes(rng, 4096)
	for trial := 0; trial < 500; trial++ {
		off := rng.IntN(64)
		n := rng.IntN(len(buf) - off)
		c := byte(rng.Uint32())
		src := buf[off : off+n]

		got := make([]byte, n)
		want := make([]byte, n)
		MulSlice(got, src, c)
		RefMulSlice(want, src, c)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulSlice off=%d len=%d c=%d diverges", off, n, c)
		}

		copy(got, acc[off:off+n])
		copy(want, acc[off:off+n])
		MulAddSlice(got, src, c)
		RefMulAddSlice(want, src, c)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulAddSlice off=%d len=%d c=%d diverges", off, n, c)
		}
	}
}

// TestGenericKernelsMatchRef pins the portable nibble-table kernels
// directly: on amd64 the exported entry points dispatch to the SSSE3
// kernels for aligned spans, so without this the generic path would
// only ever see sub-16-byte tails.
func TestGenericKernelsMatchRef(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for _, n := range kernelLens {
		src := randBytes(rng, n)
		init := randBytes(rng, n)
		got := make([]byte, n)
		want := make([]byte, n)
		for c := 0; c < Order; c++ {
			// The generic kernels are documented correct for every c,
			// including the 0 and 1 the wrappers shortcut.
			mulGeneric(got, src, byte(c))
			RefMulSlice(want, src, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("mulGeneric(len=%d, c=%d) diverges from reference", n, c)
			}
			copy(got, init)
			copy(want, init)
			mulAddGeneric(got, src, byte(c))
			RefMulAddSlice(want, src, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("mulAddGeneric(len=%d, c=%d) diverges from reference", n, c)
			}
		}
	}
}

// TestMulSliceAliased checks the documented aliasing case: dst and src
// are the same slice (in-place scaling, used by matrix inversion).
func TestMulSliceAliased(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for _, n := range kernelLens {
		for _, c := range []byte{0, 1, 2, 0x1d, 0xff} {
			orig := randBytes(rng, n)
			want := make([]byte, n)
			RefMulSlice(want, orig, c)
			inPlace := append([]byte(nil), orig...)
			MulSlice(inPlace, inPlace, c)
			if !bytes.Equal(inPlace, want) {
				t.Fatalf("aliased MulSlice(len=%d, c=%d) diverges", n, c)
			}
		}
	}
}

// TestMulAddSliceAgainstScalarMul cross-checks the vector kernel
// against the scalar Mul directly, independent of the reference kernel.
func TestMulAddSliceAgainstScalarMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	src := randBytes(rng, 257)
	for c := 0; c < Order; c++ {
		dst := randBytes(rng, len(src))
		want := make([]byte, len(src))
		for i := range src {
			want[i] = dst[i] ^ Mul(src[i], byte(c))
		}
		MulAddSlice(dst, src, byte(c))
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAddSlice c=%d disagrees with scalar Mul", c)
		}
	}
}

func TestRefKernelLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"RefMulSlice":    func() { RefMulSlice(make([]byte, 2), make([]byte, 3), 1) },
		"RefMulAddSlice": func() { RefMulAddSlice(make([]byte, 2), make([]byte, 3), 1) },
		"MulAddSlice":    func() { MulAddSlice(make([]byte, 2), make([]byte, 3), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s length mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestExpFullDomain pins the behaviour of Exp over its whole documented
// domain: any integer, reduced modulo the group order 255.
func TestExpFullDomain(t *testing.T) {
	if Exp(0) != 1 {
		t.Fatalf("Exp(0) = %d, want 1", Exp(0))
	}
	g := Exp(1)
	if Mul(Exp(-1), g) != 1 {
		t.Fatalf("Exp(-1) is not the inverse of g: g=%d Exp(-1)=%d", g, Exp(-1))
	}
	for e := -600; e <= 600; e++ {
		if Exp(e) == 0 {
			t.Fatalf("Exp(%d) = 0; powers of g are never zero", e)
		}
		if Exp(e) != Exp(e+255) {
			t.Fatalf("Exp(%d) != Exp(%d): period is not 255", e, e+255)
		}
		if Mul(Exp(e), Exp(-e)) != 1 {
			t.Fatalf("Exp(%d)*Exp(%d) != 1", e, -e)
		}
		if Mul(Exp(e), g) != Exp(e+1) {
			t.Fatalf("Exp(%d)*g != Exp(%d)", e, e+1)
		}
	}
}

func BenchmarkMulAddSliceTable(b *testing.B) {
	for _, n := range []int{64, 1027, 8192} {
		b.Run(sizeName(n), func(b *testing.B) {
			src, dst := make([]byte, n), make([]byte, n)
			for i := range src {
				src[i] = byte(i)
			}
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulAddSlice(dst, src, 0x57)
			}
		})
	}
}

func BenchmarkMulAddSliceRef(b *testing.B) {
	for _, n := range []int{64, 1027, 8192} {
		b.Run(sizeName(n), func(b *testing.B) {
			src, dst := make([]byte, n), make([]byte, n)
			for i := range src {
				src[i] = byte(i)
			}
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RefMulAddSlice(dst, src, 0x57)
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 64:
		return "64B"
	case 1027:
		return "1027B"
	case 8192:
		return "8KiB"
	}
	return "other"
}
