//go:build amd64 && !purego

#include "textflag.h"

// GF(2^8) vector kernels, SSSE3.
//
// Both kernels carry the two 16-entry nibble product tables of one
// coefficient c in X0 (low) and X1 (high). For a 16-byte chunk S,
// PSHUFB performs the 16 parallel table lookups, so
//
//	c*S = PSHUFB(lo, S & 0x0f) XOR PSHUFB(hi, (S >> 4) & 0x0f)
//
// — the same split-table identity the portable kernel applies one byte
// at a time. The main loop handles 32 bytes per iteration; callers
// guarantee n is a positive multiple of 16, with any sub-16 tail
// handled in Go.

// func cpuHasSSSE3() bool
TEXT ·cpuHasSSSE3(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	SHRL $9, CX
	ANDL $1, CX
	MOVB CX, ret+0(FP)
	RET

// func mulAddVecSSSE3(lo, hi *[16]byte, dst, src *byte, n int)
TEXT ·mulAddVecSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	MOVOU (AX), X0
	MOVOU (BX), X1
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X2
	PUNPCKLQDQ X2, X2

	CMPQ CX, $32
	JL   addtail16

addloop32:
	MOVOU (SI), X4
	MOVOU 16(SI), X8
	MOVO  X4, X5
	MOVO  X8, X9
	PSRLQ $4, X5
	PSRLQ $4, X9
	PAND  X2, X4
	PAND  X2, X5
	PAND  X2, X8
	PAND  X2, X9
	MOVO  X0, X6
	MOVO  X1, X7
	MOVO  X0, X10
	MOVO  X1, X11
	PSHUFB X4, X6
	PSHUFB X5, X7
	PSHUFB X8, X10
	PSHUFB X9, X11
	PXOR  X7, X6
	PXOR  X11, X10
	MOVOU (DI), X12
	MOVOU 16(DI), X13
	PXOR  X12, X6
	PXOR  X13, X10
	MOVOU X6, (DI)
	MOVOU X10, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	CMPQ  CX, $32
	JGE   addloop32

addtail16:
	CMPQ CX, $16
	JL   adddone
	MOVOU (SI), X4
	MOVO  X4, X5
	PSRLQ $4, X5
	PAND  X2, X4
	PAND  X2, X5
	MOVO  X0, X6
	MOVO  X1, X7
	PSHUFB X4, X6
	PSHUFB X5, X7
	PXOR  X7, X6
	MOVOU (DI), X8
	PXOR  X8, X6
	MOVOU X6, (DI)

adddone:
	RET

// func mulVecSSSE3(lo, hi *[16]byte, dst, src *byte, n int)
TEXT ·mulVecSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	MOVOU (AX), X0
	MOVOU (BX), X1
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X2
	PUNPCKLQDQ X2, X2

	CMPQ CX, $32
	JL   multail16

mulloop32:
	MOVOU (SI), X4
	MOVOU 16(SI), X8
	MOVO  X4, X5
	MOVO  X8, X9
	PSRLQ $4, X5
	PSRLQ $4, X9
	PAND  X2, X4
	PAND  X2, X5
	PAND  X2, X8
	PAND  X2, X9
	MOVO  X0, X6
	MOVO  X1, X7
	MOVO  X0, X10
	MOVO  X1, X11
	PSHUFB X4, X6
	PSHUFB X5, X7
	PSHUFB X8, X10
	PSHUFB X9, X11
	PXOR  X7, X6
	PXOR  X11, X10
	MOVOU X6, (DI)
	MOVOU X10, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	CMPQ  CX, $32
	JGE   mulloop32

multail16:
	CMPQ CX, $16
	JL   muldone
	MOVOU (SI), X4
	MOVO  X4, X5
	PSRLQ $4, X5
	PAND  X2, X4
	PAND  X2, X5
	MOVO  X0, X6
	MOVO  X1, X7
	PSHUFB X4, X6
	PSHUFB X5, X7
	PXOR  X7, X6
	MOVOU X6, (DI)

muldone:
	RET
