//go:build amd64 && !purego

#include "textflag.h"

// GF(2^8) vector kernels: SSSE3, AVX2 and GFNI tiers.
//
// The SSSE3 and AVX2 kernels carry the two 16-entry nibble product
// tables of one coefficient c in X0/Y0 (low) and X1/Y1 (high). For a
// 16-byte chunk S, PSHUFB performs the 16 parallel table lookups, so
//
//	c*S = PSHUFB(lo, S & 0x0f) XOR PSHUFB(hi, (S >> 4) & 0x0f)
//
// — the same split-table identity the portable kernel applies one byte
// at a time. AVX2 broadcasts the tables into both ymm lanes
// (VPSHUFB shuffles per 128-bit lane) and handles 128 bytes per
// iteration with 32- and 16-byte tails; mask setup precedes every ymm
// write so no legacy-SSE instruction ever runs with dirty upper state. The GFNI kernels instead
// evaluate the multiply-by-c 8x8 bit-matrix with VGF2P8AFFINEQB
// (matrix qword broadcast into Y0); GF2P8MULB itself is hardwired to
// the AES polynomial 0x11b, so the affine form is the only one usable
// for this field's 0x11d. Callers guarantee n is a positive multiple
// of 16, with any sub-16 tail handled in Go.

// func cpuFeatureBits() uint32
//
// Bit 0: SSSE3 (CPUID.1:ECX[9]).
// Bit 1: AVX2 usable (CPUID.7.0:EBX[5] + OSXSAVE + AVX + XCR0 XMM|YMM).
// Bit 2: GFNI usable under VEX/ymm (CPUID.7.0:ECX[8] + bit 1's checks).
TEXT ·cpuFeatureBits(SB), NOSPLIT, $0-4
	MOVL $1, AX
	CPUID
	MOVL CX, R8
	MOVL $7, AX
	XORL CX, CX
	CPUID
	MOVL BX, R9
	MOVL CX, R10
	XORL R12, R12

	// SSSE3: leaf 1 ECX bit 9.
	MOVL R8, AX
	SHRL $9, AX
	ANDL $1, AX
	ORL  AX, R12

	// OSXSAVE (bit 27) and AVX (bit 28) must both be set before the
	// ymm tiers can even be considered.
	MOVL R8, AX
	ANDL $0x18000000, AX
	CMPL AX, $0x18000000
	JNE  featdone

	// The OS must have enabled XMM (bit 1) and YMM (bit 2) state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  featdone

	// AVX2: leaf 7.0 EBX bit 5.
	TESTL $0x20, R9
	JZ    featdone
	ORL   $2, R12

	// GFNI: leaf 7.0 ECX bit 8.
	TESTL $0x100, R10
	JZ    featdone
	ORL   $4, R12

featdone:
	MOVL R12, ret+0(FP)
	RET

// func mulAddVecSSSE3(lo, hi *[16]byte, dst, src *byte, n int)
TEXT ·mulAddVecSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	MOVOU (AX), X0
	MOVOU (BX), X1
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X2
	PUNPCKLQDQ X2, X2

	CMPQ CX, $32
	JL   addtail16

addloop32:
	MOVOU (SI), X4
	MOVOU 16(SI), X8
	MOVO  X4, X5
	MOVO  X8, X9
	PSRLQ $4, X5
	PSRLQ $4, X9
	PAND  X2, X4
	PAND  X2, X5
	PAND  X2, X8
	PAND  X2, X9
	MOVO  X0, X6
	MOVO  X1, X7
	MOVO  X0, X10
	MOVO  X1, X11
	PSHUFB X4, X6
	PSHUFB X5, X7
	PSHUFB X8, X10
	PSHUFB X9, X11
	PXOR  X7, X6
	PXOR  X11, X10
	MOVOU (DI), X12
	MOVOU 16(DI), X13
	PXOR  X12, X6
	PXOR  X13, X10
	MOVOU X6, (DI)
	MOVOU X10, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	CMPQ  CX, $32
	JGE   addloop32

addtail16:
	CMPQ CX, $16
	JL   adddone
	MOVOU (SI), X4
	MOVO  X4, X5
	PSRLQ $4, X5
	PAND  X2, X4
	PAND  X2, X5
	MOVO  X0, X6
	MOVO  X1, X7
	PSHUFB X4, X6
	PSHUFB X5, X7
	PXOR  X7, X6
	MOVOU (DI), X8
	PXOR  X8, X6
	MOVOU X6, (DI)

adddone:
	RET

// func mulVecSSSE3(lo, hi *[16]byte, dst, src *byte, n int)
TEXT ·mulVecSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	MOVOU (AX), X0
	MOVOU (BX), X1
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X2
	PUNPCKLQDQ X2, X2

	CMPQ CX, $32
	JL   multail16

mulloop32:
	MOVOU (SI), X4
	MOVOU 16(SI), X8
	MOVO  X4, X5
	MOVO  X8, X9
	PSRLQ $4, X5
	PSRLQ $4, X9
	PAND  X2, X4
	PAND  X2, X5
	PAND  X2, X8
	PAND  X2, X9
	MOVO  X0, X6
	MOVO  X1, X7
	MOVO  X0, X10
	MOVO  X1, X11
	PSHUFB X4, X6
	PSHUFB X5, X7
	PSHUFB X8, X10
	PSHUFB X9, X11
	PXOR  X7, X6
	PXOR  X11, X10
	MOVOU X6, (DI)
	MOVOU X10, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	CMPQ  CX, $32
	JGE   mulloop32

multail16:
	CMPQ CX, $16
	JL   muldone
	MOVOU (SI), X4
	MOVO  X4, X5
	PSRLQ $4, X5
	PAND  X2, X4
	PAND  X2, X5
	MOVO  X0, X6
	MOVO  X1, X7
	PSHUFB X4, X6
	PSHUFB X5, X7
	PXOR  X7, X6
	MOVOU X6, (DI)

muldone:
	RET

// func mulAddVecAVX2(lo, hi *[16]byte, dst, src *byte, n int)
TEXT ·mulAddVecAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	// Build the nibble mask before any ymm write: the legacy-SSE MOVQ
	// into X2 must not execute with a dirty ymm upper state, or every
	// call pays an AVX/SSE state-transition stall.
	MOVQ $0x0f0f0f0f0f0f0f0f, DX
	MOVQ DX, X2
	VPBROADCASTQ X2, Y2
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1

	CMPQ CX, $128
	JL   aaddtail32

aaddloop128:
	VMOVDQU (SI), Y4
	VMOVDQU 32(SI), Y8
	VMOVDQU 64(SI), Y12
	VMOVDQU 96(SI), Y14
	VPSRLQ  $4, Y4, Y5
	VPSRLQ  $4, Y8, Y9
	VPSRLQ  $4, Y12, Y13
	VPSRLQ  $4, Y14, Y15
	VPAND   Y2, Y4, Y4
	VPAND   Y2, Y5, Y5
	VPAND   Y2, Y8, Y8
	VPAND   Y2, Y9, Y9
	VPAND   Y2, Y12, Y12
	VPAND   Y2, Y13, Y13
	VPAND   Y2, Y14, Y14
	VPAND   Y2, Y15, Y15
	VPSHUFB Y4, Y0, Y6
	VPSHUFB Y5, Y1, Y7
	VPSHUFB Y8, Y0, Y10
	VPSHUFB Y9, Y1, Y11
	VPXOR   Y7, Y6, Y6
	VPXOR   Y11, Y10, Y10
	VPSHUFB Y12, Y0, Y4
	VPSHUFB Y13, Y1, Y5
	VPSHUFB Y14, Y0, Y8
	VPSHUFB Y15, Y1, Y9
	VPXOR   Y5, Y4, Y4
	VPXOR   Y9, Y8, Y8
	VPXOR   (DI), Y6, Y6
	VPXOR   32(DI), Y10, Y10
	VPXOR   64(DI), Y4, Y4
	VPXOR   96(DI), Y8, Y8
	VMOVDQU Y6, (DI)
	VMOVDQU Y10, 32(DI)
	VMOVDQU Y4, 64(DI)
	VMOVDQU Y8, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $128, CX
	CMPQ    CX, $128
	JGE     aaddloop128

aaddtail32:
	CMPQ CX, $32
	JL   aaddtail16
	VMOVDQU (SI), Y4
	VPSRLQ  $4, Y4, Y5
	VPAND   Y2, Y4, Y4
	VPAND   Y2, Y5, Y5
	VPSHUFB Y4, Y0, Y6
	VPSHUFB Y5, Y1, Y7
	VPXOR   Y7, Y6, Y6
	VPXOR   (DI), Y6, Y6
	VMOVDQU Y6, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JMP     aaddtail32

aaddtail16:
	CMPQ CX, $16
	JL   aadddone
	VMOVDQU (SI), X4
	VPSRLQ  $4, X4, X5
	VPAND   X2, X4, X4
	VPAND   X2, X5, X5
	VPSHUFB X4, X0, X6
	VPSHUFB X5, X1, X7
	VPXOR   X7, X6, X6
	VPXOR   (DI), X6, X6
	VMOVDQU X6, (DI)

aadddone:
	VZEROUPPER
	RET

// func mulVecAVX2(lo, hi *[16]byte, dst, src *byte, n int)
TEXT ·mulVecAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	// Build the nibble mask before any ymm write: the legacy-SSE MOVQ
	// into X2 must not execute with a dirty ymm upper state, or every
	// call pays an AVX/SSE state-transition stall.
	MOVQ $0x0f0f0f0f0f0f0f0f, DX
	MOVQ DX, X2
	VPBROADCASTQ X2, Y2
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1

	CMPQ CX, $128
	JL   amultail32

amulloop128:
	VMOVDQU (SI), Y4
	VMOVDQU 32(SI), Y8
	VMOVDQU 64(SI), Y12
	VMOVDQU 96(SI), Y14
	VPSRLQ  $4, Y4, Y5
	VPSRLQ  $4, Y8, Y9
	VPSRLQ  $4, Y12, Y13
	VPSRLQ  $4, Y14, Y15
	VPAND   Y2, Y4, Y4
	VPAND   Y2, Y5, Y5
	VPAND   Y2, Y8, Y8
	VPAND   Y2, Y9, Y9
	VPAND   Y2, Y12, Y12
	VPAND   Y2, Y13, Y13
	VPAND   Y2, Y14, Y14
	VPAND   Y2, Y15, Y15
	VPSHUFB Y4, Y0, Y6
	VPSHUFB Y5, Y1, Y7
	VPSHUFB Y8, Y0, Y10
	VPSHUFB Y9, Y1, Y11
	VPXOR   Y7, Y6, Y6
	VPXOR   Y11, Y10, Y10
	VPSHUFB Y12, Y0, Y4
	VPSHUFB Y13, Y1, Y5
	VPSHUFB Y14, Y0, Y8
	VPSHUFB Y15, Y1, Y9
	VPXOR   Y5, Y4, Y4
	VPXOR   Y9, Y8, Y8
	VMOVDQU Y6, (DI)
	VMOVDQU Y10, 32(DI)
	VMOVDQU Y4, 64(DI)
	VMOVDQU Y8, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $128, CX
	CMPQ    CX, $128
	JGE     amulloop128

amultail32:
	CMPQ CX, $32
	JL   amultail16
	VMOVDQU (SI), Y4
	VPSRLQ  $4, Y4, Y5
	VPAND   Y2, Y4, Y4
	VPAND   Y2, Y5, Y5
	VPSHUFB Y4, Y0, Y6
	VPSHUFB Y5, Y1, Y7
	VPXOR   Y7, Y6, Y6
	VMOVDQU Y6, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JMP     amultail32

amultail16:
	CMPQ CX, $16
	JL   amuldone
	VMOVDQU (SI), X4
	VPSRLQ  $4, X4, X5
	VPAND   X2, X4, X4
	VPAND   X2, X5, X5
	VPSHUFB X4, X0, X6
	VPSHUFB X5, X1, X7
	VPXOR   X7, X6, X6
	VMOVDQU X6, (DI)

amuldone:
	VZEROUPPER
	RET

// func mulAddVecGFNI(mat uint64, dst, src *byte, n int)
TEXT ·mulAddVecGFNI(SB), NOSPLIT, $0-32
	MOVQ mat+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	MOVQ AX, X0
	VPBROADCASTQ X0, Y0

	CMPQ CX, $64
	JL   gaddtail32

gaddloop64:
	VMOVDQU (SI), Y4
	VMOVDQU 32(SI), Y5
	VGF2P8AFFINEQB $0, Y0, Y4, Y6
	VGF2P8AFFINEQB $0, Y0, Y5, Y7
	VPXOR   (DI), Y6, Y6
	VPXOR   32(DI), Y7, Y7
	VMOVDQU Y6, (DI)
	VMOVDQU Y7, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JGE     gaddloop64

gaddtail32:
	CMPQ CX, $32
	JL   gaddtail16
	VMOVDQU (SI), Y4
	VGF2P8AFFINEQB $0, Y0, Y4, Y6
	VPXOR   (DI), Y6, Y6
	VMOVDQU Y6, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX

gaddtail16:
	CMPQ CX, $16
	JL   gadddone
	VMOVDQU (SI), X4
	VGF2P8AFFINEQB $0, X0, X4, X6
	VPXOR   (DI), X6, X6
	VMOVDQU X6, (DI)

gadddone:
	VZEROUPPER
	RET

// func mulVecGFNI(mat uint64, dst, src *byte, n int)
TEXT ·mulVecGFNI(SB), NOSPLIT, $0-32
	MOVQ mat+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	MOVQ AX, X0
	VPBROADCASTQ X0, Y0

	CMPQ CX, $64
	JL   gmultail32

gmulloop64:
	VMOVDQU (SI), Y4
	VMOVDQU 32(SI), Y5
	VGF2P8AFFINEQB $0, Y0, Y4, Y6
	VGF2P8AFFINEQB $0, Y0, Y5, Y7
	VMOVDQU Y6, (DI)
	VMOVDQU Y7, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JGE     gmulloop64

gmultail32:
	CMPQ CX, $32
	JL   gmultail16
	VMOVDQU (SI), Y4
	VGF2P8AFFINEQB $0, Y0, Y4, Y6
	VMOVDQU Y6, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX

gmultail16:
	CMPQ CX, $16
	JL   gmuldone
	VMOVDQU (SI), X4
	VGF2P8AFFINEQB $0, X0, X4, X6
	VMOVDQU X6, (DI)

gmuldone:
	VZEROUPPER
	RET
