package workload

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/keytree"
	"repro/internal/obs"
)

// runScenario drives a scenario to completion, verifying the tree
// invariant after every batch, and returns a per-interval trace line
// plus the final tree.
func runScenario(t *testing.T, scn Scenario, d int, seed uint64) ([]string, *keytree.Tree) {
	t.Helper()
	dr, err := NewDriver(scn, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	for {
		st, ok, err := dr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		line := fmt.Sprintf("i=%d j=%d l=%d", st.Interval, len(st.Joins), len(st.Leaves))
		if st.Res != nil {
			if err := dr.Tree().CheckInvariant(); err != nil {
				t.Fatalf("interval %d: %v", st.Interval, err)
			}
			line += fmt.Sprintf(" n=%d encs=%d maxkid=%d", len(dr.Tree().Members()), len(st.Res.Encryptions), st.Res.MaxKID)
		}
		trace = append(trace, line)
	}
	return trace, dr.Tree()
}

func TestScenariosDeterministic(t *testing.T) {
	for _, build := range []func() Scenario{
		func() Scenario { return &FlashCrowd{Base: 256, Spike: 2048, SpikeAt: 2, Total: 6, Background: 4} },
		func() Scenario { return &Diurnal{Base: 256, Mean: 24, Amplitude: 0.8, Period: 6, Total: 12} },
		func() Scenario {
			return &PartitionRejoin{Base: 256, Fraction: 0.25, PartitionAt: 1, RejoinAt: 3, Total: 5}
		},
		func() Scenario { return &AdversarialLeave{Base: 256, Alpha: 0.25, At: 1, Total: 3} },
	} {
		scn := build()
		name := scn.Name()
		t.Run(name, func(t *testing.T) {
			a, _ := runScenario(t, scn, 4, 77)
			b, _ := runScenario(t, build(), 4, 77)
			if len(a) != len(b) {
				t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("traces diverge at %d:\n  %s\n  %s", i, a[i], b[i])
				}
			}
			c, _ := runScenario(t, build(), 4, 78)
			diff := len(c) != len(a)
			for i := 0; !diff && i < len(a); i++ {
				diff = a[i] != c[i]
			}
			if !diff && name != "partition-rejoin" && name != "adversarial-leave" {
				// Deterministic-but-seedless scenarios would be suspicious;
				// partition/adversarial use little randomness so may tie.
				t.Logf("note: seeds 77 and 78 produced identical traces for %s", name)
			}
		})
	}
}

func TestFlashCrowdShape(t *testing.T) {
	scn := &FlashCrowd{Base: 256, Spike: 2048, SpikeAt: 2, Total: 6, Background: 4}
	trace, tree := runScenario(t, scn, 4, 1)
	if len(trace) != 6 {
		t.Fatalf("got %d intervals", len(trace))
	}
	n := len(tree.Members())
	if n < 2048 {
		t.Fatalf("final population %d; spike of 2048 not absorbed", n)
	}
}

func TestPartitionRejoinShape(t *testing.T) {
	scn := &PartitionRejoin{Base: 256, Fraction: 0.25, PartitionAt: 1, RejoinAt: 3, Total: 5}
	dr, err := NewDriver(scn, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	var cut []keytree.Member
	pops := make(map[int]int)
	for {
		st, ok, err := dr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if st.Interval == 1 {
			cut = st.Leaves
		}
		if st.Interval == 3 {
			if len(st.Joins) != len(cut) {
				t.Fatalf("rejoin brought back %d of %d", len(st.Joins), len(cut))
			}
			back := make(map[keytree.Member]bool, len(cut))
			for _, m := range cut {
				back[m] = true
			}
			for _, m := range st.Joins {
				if !back[m] {
					t.Fatalf("rejoiner %d was not partitioned", m)
				}
			}
		}
		pops[st.Interval] = len(dr.Tree().Members())
	}
	if len(cut) != 64 {
		t.Fatalf("partition cut %d members, want 64", len(cut))
	}
	if pops[1] != 192 || pops[3] != 256 {
		t.Fatalf("population trajectory %v; want dip to 192 and recovery to 256", pops)
	}
}

func TestAdversarialLeaveDamage(t *testing.T) {
	// Stride-picked leavers must replace at least as many k-nodes as a
	// uniform pick of the same size -- that is the point of the scenario.
	const base, d = 1024, 4
	adversarial := func() int {
		dr, err := NewDriver(&AdversarialLeave{Base: base, Alpha: 0.1, At: 0, Total: 1}, d, 9)
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := dr.Step()
		if err != nil {
			t.Fatal(err)
		}
		return st.Res.UpdatedKNodes
	}()
	uniform := func() int {
		g, err := NewGenerator(base, d, 10, 9)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := g.Batch(0, base/10)
		if err != nil {
			t.Fatal(err)
		}
		return res.UpdatedKNodes
	}()
	if adversarial < uniform {
		t.Fatalf("adversarial leave updated %d k-nodes, uniform %d", adversarial, uniform)
	}
}

func TestDiurnalSwings(t *testing.T) {
	scn := &Diurnal{Base: 512, Mean: 48, Amplitude: 0.9, Period: 8, Total: 16}
	dr, err := NewDriver(scn, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	min, max := 512, 512
	for {
		st, ok, err := dr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		_ = st
		n := len(dr.Tree().Members())
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min < 32 {
		t.Fatalf("diurnal population barely moved: min=%d max=%d", min, max)
	}
}

func TestDriverRejectsBadConfig(t *testing.T) {
	if _, err := NewDriver(&FlashCrowd{Base: 0, Total: 1}, 4, 1); err == nil {
		t.Error("Bootstrap=0: expected error")
	}
	if _, err := NewDriver(&FlashCrowd{Base: 8, Total: 1}, 1, 1); err == nil {
		t.Error("degree=1: expected error")
	}
}

func TestDriverExhaustion(t *testing.T) {
	dr, err := NewDriver(&AdversarialLeave{Base: 8, Alpha: 0.5, At: 0, Total: 1}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := dr.Step(); err != nil || !ok {
		t.Fatalf("first step: ok=%v err=%v", ok, err)
	}
	if _, ok, err := dr.Step(); err != nil || ok {
		t.Fatalf("exhausted step: ok=%v err=%v", ok, err)
	}
}

func TestDriverScenarioStepsCounter(t *testing.T) {
	dr, err := NewDriver(&Diurnal{Base: 64, Mean: 8, Amplitude: 0.5, Period: 4, Total: 6}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	dr.SetObs(reg)
	applied := 0
	for {
		st, ok, err := dr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if st.Res != nil {
			applied++
		}
	}
	if got := reg.CounterValue(obs.CScenarioSteps); got != int64(applied) {
		t.Fatalf("scenario_steps = %d, want %d", got, applied)
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 0))
	for _, mean := range []float64{0, 0.5, 4, 30, 200} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(mean, rng)
		}
		got := float64(sum) / n
		if mean == 0 {
			if got != 0 {
				t.Fatalf("poisson(0) mean %v", got)
			}
			continue
		}
		if got < mean*0.9 || got > mean*1.1 {
			t.Fatalf("poisson(%v) sample mean %v", mean, got)
		}
	}
}
