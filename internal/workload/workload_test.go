package workload

import "testing"

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(0, 4, 10, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewGenerator(10, 1, 10, 1); err == nil {
		t.Error("d=1 accepted")
	}
	if _, err := NewGenerator(10, 4, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestBatchLeavesPristineIntact(t *testing.T) {
	gen, err := NewGenerator(256, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := gen.Batch(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := gen.Batch(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Each batch starts from the same 256-user tree.
	if len(r1.UserIDs) != 192 || len(r2.UserIDs) != 192 {
		t.Fatalf("post-batch sizes %d, %d; want 192", len(r1.UserIDs), len(r2.UserIDs))
	}
	if gen.N() != 256 {
		t.Fatalf("pristine size changed to %d", gen.N())
	}
}

func TestBatchesAreIndependentDraws(t *testing.T) {
	gen, err := NewGenerator(256, 4, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := gen.Batch(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := gen.Batch(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	if len(r1.UserIDs) == len(r2.UserIDs) {
		for i := range r1.UserIDs {
			if r1.UserIDs[i] != r2.UserIDs[i] {
				same = false
				break
			}
		}
	} else {
		same = false
	}
	if same {
		t.Fatal("two batches removed identical leaver sets; RNG not advancing")
	}
}

func TestBatchRejectsOversizedLeave(t *testing.T) {
	gen, err := NewGenerator(16, 4, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := gen.Batch(0, 17); err == nil {
		t.Fatal("L>N accepted")
	}
}

func TestJoinsGetFreshMembers(t *testing.T) {
	gen, err := NewGenerator(64, 4, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := gen.Batch(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.UserIDs) != 80 {
		t.Fatalf("post-batch users %d, want 80", len(r.UserIDs))
	}
	if gen.PostBatchUsers(16, 0) != 80 {
		t.Fatalf("PostBatchUsers = %d", gen.PostBatchUsers(16, 0))
	}
	if gen.K() != 10 || gen.Degree() != 4 {
		t.Fatal("accessor mismatch")
	}
}
