// Package workload generates rekey-message workloads for experiments:
// stationary (N, J, L) batches against a pristine tree (the paper's
// evaluation setup, where every message sees the same group size and
// churn).
package workload

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/assign"
	"repro/internal/keys"
	"repro/internal/keytree"
)

// Generator produces rekey transport messages for a group of fixed size
// N and tree degree d. Each Next() call clones the pristine populated
// tree and applies an independent batch, so successive messages are
// statistically identical -- the stationarity the paper's traces assume.
type Generator struct {
	d, n, k  int
	pristine *keytree.Tree
	rng      *rand.Rand
	next     keytree.Member
}

// NewGenerator builds a generator for an N-user group, degree-d tree,
// and FEC block size k. Lite trees are used: ciphertexts are not
// materialised (transport experiments track packets, not bytes).
func NewGenerator(n, d, k int, seed uint64) (*Generator, error) {
	if n <= 0 || d < 2 || k <= 0 {
		return nil, fmt.Errorf("workload: bad parameters n=%d d=%d k=%d", n, d, k)
	}
	tr := keytree.New(d, keys.NewDeterministicGenerator(seed), keytree.WithLite(true))
	joins := make([]keytree.Member, n)
	for i := range joins {
		joins[i] = keytree.Member(i)
	}
	if _, err := tr.ProcessBatch(joins, nil); err != nil {
		return nil, err
	}
	return &Generator{
		d: d, n: n, k: k,
		pristine: tr,
		rng:      rand.New(rand.NewPCG(seed, 0x10ad)),
		next:     keytree.Member(n),
	}, nil
}

// N returns the group size.
func (g *Generator) N() int { return g.n }

// Batch applies one (J joins, L leaves) batch to a clone of the pristine
// tree and returns the batch result together with its UKA plan. Leavers
// are chosen uniformly at random.
func (g *Generator) Batch(j, l int) (*keytree.BatchResult, *assign.Plan, error) {
	if l > g.n {
		return nil, nil, fmt.Errorf("workload: %d leaves from %d users", l, g.n)
	}
	tr := g.pristine.Clone()
	members := tr.Members()
	perm := g.rng.Perm(len(members))
	leaves := make([]keytree.Member, l)
	for i := 0; i < l; i++ {
		leaves[i] = members[perm[i]]
	}
	joins := make([]keytree.Member, j)
	for i := range joins {
		joins[i] = g.next
		g.next++
	}
	res, err := tr.ProcessBatch(joins, leaves)
	if err != nil {
		return nil, nil, err
	}
	plan, err := assign.Build(res)
	if err != nil {
		return nil, nil, err
	}
	return res, plan, nil
}

// K returns the FEC block size the generator was configured with.
func (g *Generator) K() int { return g.k }

// Degree returns the key tree degree.
func (g *Generator) Degree() int { return g.d }

// PostBatchUsers returns the number of users a (j,l) batch leaves in the
// group: the population the transport network must carry. Transport
// experiments identify network user i with the i-th user ID of the
// post-batch tree.
func (g *Generator) PostBatchUsers(j, l int) int { return g.n + j - l }
