package workload

import (
	"testing"
)

// FuzzGeneratorBatch drives Generator.Batch with arbitrary bounded
// parameters and checks the structural contract: the l>n error path,
// post-batch population accounting, and UKA plan consistency (every
// user's packet exists and carries every encryption that user needs).
func FuzzGeneratorBatch(f *testing.F) {
	f.Add(uint16(8), uint8(0), uint8(3), uint64(1), uint16(3), uint16(2))
	f.Add(uint16(255), uint8(2), uint8(9), uint64(42), uint16(64), uint16(64))
	f.Add(uint16(100), uint8(1), uint8(0), uint64(7), uint16(0), uint16(512))
	f.Add(uint16(1), uint8(5), uint8(19), uint64(9), uint16(1), uint16(1))
	f.Fuzz(func(t *testing.T, n uint16, d, k uint8, seed uint64, j, l uint16) {
		nn := int(n%1024) + 1
		dd := int(d%7) + 2
		kk := int(k%20) + 1
		jj := int(j % 256)
		ll := int(l % 2048)
		g, err := NewGenerator(nn, dd, kk, seed)
		if err != nil {
			t.Fatalf("valid params rejected: %v", err)
		}
		res, plan, err := g.Batch(jj, ll)
		if ll > nn {
			if err == nil {
				t.Fatalf("Batch(%d,%d) on n=%d: expected error", jj, ll, nn)
			}
			return
		}
		if jj == 0 && ll == 0 {
			// Empty batch: the tree layer rejects no-op rekeys.
			if err == nil && len(res.Encryptions) != 0 {
				t.Fatalf("empty batch emitted %d encryptions", len(res.Encryptions))
			}
			return
		}
		if ll == nn && jj == 0 {
			// Emptying the group entirely may be rejected; either way is
			// acceptable, but a success must report zero users.
			if err == nil && len(res.UserIDs) != 0 {
				t.Fatalf("full leave left %d users", len(res.UserIDs))
			}
			return
		}
		if err != nil {
			t.Fatalf("Batch(%d,%d) on n=%d: %v", jj, ll, nn, err)
		}
		if got, want := len(res.UserIDs), g.PostBatchUsers(jj, ll); got != want {
			t.Fatalf("post-batch users %d, want %d", got, want)
		}
		for _, uid := range res.UserIDs {
			if uid <= res.MaxKID {
				t.Fatalf("user ID %d <= maxKID %d", uid, res.MaxKID)
			}
			need := res.UserNeedIDs(uid)
			if len(need) == 0 {
				continue
			}
			pi, ok := plan.UserPacket[uid]
			if !ok {
				t.Fatalf("user %d needs %d encryptions but has no packet", uid, len(need))
			}
			if pi < 0 || pi >= len(plan.Packets) {
				t.Fatalf("user %d assigned packet %d of %d", uid, pi, len(plan.Packets))
			}
			pkt := plan.Packets[pi]
			if uid < pkt.FrmID || uid > pkt.ToID {
				t.Fatalf("user %d outside packet range [%d,%d]", uid, pkt.FrmID, pkt.ToID)
			}
			carried := make(map[uint32]bool, len(pkt.EncIDs))
			for _, id := range pkt.EncIDs {
				carried[id] = true
			}
			for _, id := range need {
				if !carried[id] {
					t.Fatalf("user %d packet %d missing encryption %d", uid, pi, id)
				}
			}
		}
	})
}
