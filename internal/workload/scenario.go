// Adversarial churn scenarios: deterministic interval-by-interval join
// and leave schedules that stress the rekeying pipeline in ways the
// paper's stationary workload does not -- flash crowds, diurnal cycles,
// network partitions healing, and colluding leavers picked to maximise
// key-tree damage. A Driver folds a Scenario into one evolving key tree
// so invariant oracles can watch every batch.

package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/assign"
	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
)

// Scenario describes a churn schedule. Implementations must be
// deterministic given the rng stream they are handed: all randomness
// goes through it, so a Driver seed fully pins the run. Scenarios may
// carry state between intervals (e.g. who is partitioned) and are
// therefore single-use values.
type Scenario interface {
	// Name identifies the scenario in tables and test names.
	Name() string
	// Bootstrap returns the initial group size before interval 0.
	Bootstrap() int
	// Intervals returns how many churn intervals the scenario runs.
	Intervals() int
	// Churn returns the members joining and leaving in interval i.
	// live is the current membership in ascending node-ID order; alloc
	// mints a fresh never-used member handle. Leavers must be distinct
	// members of live, and at least one member must survive.
	Churn(i int, live []keytree.Member, rng *rand.Rand, alloc func() keytree.Member) (joins, leaves []keytree.Member)
}

// poisson samples a Poisson variate with the given mean: Knuth's product
// method for small means, a rounded normal approximation for large ones
// (exact tails do not matter for workload shaping).
func poisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		limit := math.Exp(-mean)
		n, prod := 0, rng.Float64()
		for prod > limit {
			n++
			prod *= rng.Float64()
		}
		return n
	}
	n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
	if n < 0 {
		n = 0
	}
	return n
}

// pickUniform returns l distinct members of live chosen uniformly.
func pickUniform(live []keytree.Member, l int, rng *rand.Rand) []keytree.Member {
	if l > len(live) {
		l = len(live)
	}
	out := make([]keytree.Member, l)
	for i, idx := range rng.Perm(len(live))[:l] {
		out[i] = live[idx]
	}
	return out
}

// FlashCrowd models a quiet group hit by a mass-join event: Base users
// with light Poisson churn (mean Background joins and leaves per
// interval), then Spike joins arriving in the single interval SpikeAt.
// This is the paper's J=10^5 column turned into a trajectory.
type FlashCrowd struct {
	Base       int     // initial group size
	Spike      int     // joins landing in interval SpikeAt
	SpikeAt    int     // which interval the crowd arrives in
	Total      int     // number of intervals
	Background float64 // mean background joins and leaves per interval
}

// Name implements Scenario.
func (s *FlashCrowd) Name() string { return "flash-crowd" }

// Bootstrap implements Scenario.
func (s *FlashCrowd) Bootstrap() int { return s.Base }

// Intervals implements Scenario.
func (s *FlashCrowd) Intervals() int { return s.Total }

// Churn implements Scenario.
func (s *FlashCrowd) Churn(i int, live []keytree.Member, rng *rand.Rand, alloc func() keytree.Member) (joins, leaves []keytree.Member) {
	nj := poisson(s.Background, rng)
	if i == s.SpikeAt {
		nj += s.Spike
	}
	for j := 0; j < nj; j++ {
		joins = append(joins, alloc())
	}
	nl := poisson(s.Background, rng)
	if nl >= len(live) {
		nl = len(live) - 1
	}
	leaves = pickUniform(live, nl, rng)
	return joins, leaves
}

// Diurnal models a daily usage cycle: Poisson joins with mean
// Mean*(1+Amplitude*sin(2*pi*i/Period)) and Poisson leaves with the
// antiphase mean, so the group swells and drains around Base.
type Diurnal struct {
	Base      int     // initial group size
	Mean      float64 // mean churn per interval at the zero crossing
	Amplitude float64 // relative swing in [0,1]
	Period    int     // intervals per cycle
	Total     int     // number of intervals
}

// Name implements Scenario.
func (s *Diurnal) Name() string { return "diurnal" }

// Bootstrap implements Scenario.
func (s *Diurnal) Bootstrap() int { return s.Base }

// Intervals implements Scenario.
func (s *Diurnal) Intervals() int { return s.Total }

// Churn implements Scenario.
func (s *Diurnal) Churn(i int, live []keytree.Member, rng *rand.Rand, alloc func() keytree.Member) (joins, leaves []keytree.Member) {
	phase := math.Sin(2 * math.Pi * float64(i) / float64(s.Period))
	nj := poisson(s.Mean*(1+s.Amplitude*phase), rng)
	nl := poisson(s.Mean*(1-s.Amplitude*phase), rng)
	for j := 0; j < nj; j++ {
		joins = append(joins, alloc())
	}
	if nl >= len(live) {
		nl = len(live) - 1
	}
	leaves = pickUniform(live, nl, rng)
	return joins, leaves
}

// PartitionRejoin models a network partition healing: at PartitionAt a
// contiguous Fraction of the membership (in node-ID order, i.e. one
// subtree-ish region) leaves in a single batch; at RejoinAt the same
// member handles rejoin. Other intervals are quiet. Exercises mass
// leave, shrunken-tree operation, and handle reuse on rejoin.
type PartitionRejoin struct {
	Base        int     // initial group size
	Fraction    float64 // fraction of members partitioned away, (0,1)
	PartitionAt int     // interval the partition cuts
	RejoinAt    int     // interval the partition heals (> PartitionAt)
	Total       int     // number of intervals

	// partitioned holds the cut members between the two events.
	partitioned []keytree.Member
}

// Name implements Scenario.
func (s *PartitionRejoin) Name() string { return "partition-rejoin" }

// Bootstrap implements Scenario.
func (s *PartitionRejoin) Bootstrap() int { return s.Base }

// Intervals implements Scenario.
func (s *PartitionRejoin) Intervals() int { return s.Total }

// Churn implements Scenario.
func (s *PartitionRejoin) Churn(i int, live []keytree.Member, rng *rand.Rand, alloc func() keytree.Member) (joins, leaves []keytree.Member) {
	switch i {
	case s.PartitionAt:
		n := int(s.Fraction * float64(len(live)))
		if n >= len(live) {
			n = len(live) - 1
		}
		if n <= 0 {
			return nil, nil
		}
		// A contiguous run of node-ID-ordered members: the partition takes
		// out a region of the tree, not a scattering.
		start := rng.IntN(len(live) - n + 1)
		s.partitioned = append([]keytree.Member(nil), live[start:start+n]...)
		return nil, s.partitioned
	case s.RejoinAt:
		joins, s.partitioned = s.partitioned, nil
		return joins, nil
	}
	return nil, nil
}

// AdversarialLeave models colluding leavers: at interval At, a fraction
// Alpha of the membership leaves in one batch, chosen by striding across
// the node-ID order so the leavers' tree paths are maximally disjoint --
// the worst case for the number of k-nodes the marking algorithm must
// replace. Other intervals are quiet.
type AdversarialLeave struct {
	Base  int     // initial group size
	Alpha float64 // fraction of members leaving, (0,1)
	At    int     // interval the coordinated leave lands in
	Total int     // number of intervals
}

// Name implements Scenario.
func (s *AdversarialLeave) Name() string { return "adversarial-leave" }

// Bootstrap implements Scenario.
func (s *AdversarialLeave) Bootstrap() int { return s.Base }

// Intervals implements Scenario.
func (s *AdversarialLeave) Intervals() int { return s.Total }

// Churn implements Scenario.
func (s *AdversarialLeave) Churn(i int, live []keytree.Member, rng *rand.Rand, alloc func() keytree.Member) (joins, leaves []keytree.Member) {
	if i != s.At {
		return nil, nil
	}
	n := int(s.Alpha * float64(len(live)))
	if n >= len(live) {
		n = len(live) - 1
	}
	if n <= 0 {
		return nil, nil
	}
	// Evenly spaced over the node-ID order: no two leavers share a low
	// ancestor, so nearly every leaver contributes a full path of
	// replaced k-nodes.
	stride := float64(len(live)) / float64(n)
	leaves = make([]keytree.Member, n)
	for j := 0; j < n; j++ {
		leaves[j] = live[int(float64(j)*stride)]
	}
	return nil, leaves
}

// Step is the outcome of one Driver interval.
type Step struct {
	Interval int
	Joins    []keytree.Member
	Leaves   []keytree.Member
	Res      *keytree.BatchResult
	Plan     *assign.Plan
	// BatchNs is the ProcessBatch wall time for this interval; the
	// strategy race reports it as per-batch rekey latency.
	BatchNs int64
}

// Driver folds a Scenario into one evolving key tree. Unlike Generator
// (which clones a pristine tree per batch), the Driver's tree carries
// state across intervals and materialises real ciphertexts, so invariant
// oracles can check what members can actually decrypt.
type Driver struct {
	scn  Scenario
	tree *keytree.Tree
	rng  *rand.Rand
	next keytree.Member
	i    int
	reg  *obs.Registry
}

// DriverOption configures a Driver at construction time.
type DriverOption func(*driverConfig)

type driverConfig struct {
	treeOpts []keytree.Option
}

// WithStrategy runs the driver's tree under the given placement
// strategy (nil keeps the keytree default).
func WithStrategy(s keytree.Strategy) DriverOption {
	return func(c *driverConfig) {
		c.treeOpts = append(c.treeOpts, keytree.WithStrategy(s))
	}
}

// NewDriver builds a driver for the scenario over a degree-d tree and
// bootstraps the initial population in one batch. All randomness --
// key material and scenario choices -- derives from seed.
func NewDriver(scn Scenario, d int, seed uint64, opts ...DriverOption) (*Driver, error) {
	if d < 2 {
		return nil, fmt.Errorf("workload: degree %d", d)
	}
	n := scn.Bootstrap()
	if n <= 0 {
		return nil, fmt.Errorf("workload: scenario %q bootstraps %d users", scn.Name(), n)
	}
	var dc driverConfig
	for _, o := range opts {
		o(&dc)
	}
	dr := &Driver{
		scn:  scn,
		tree: keytree.New(d, keys.NewDeterministicGenerator(seed), dc.treeOpts...),
		rng:  rand.New(rand.NewPCG(seed, 0x5ce0)),
		next: keytree.Member(n),
	}
	joins := make([]keytree.Member, n)
	for i := range joins {
		joins[i] = keytree.Member(i)
	}
	if _, err := dr.tree.ProcessBatch(joins, nil); err != nil {
		return nil, err
	}
	return dr, nil
}

// Tree exposes the evolving tree (for oracles; do not mutate).
func (dr *Driver) Tree() *keytree.Tree { return dr.tree }

// SetObs attaches an observability registry; each churn batch applied
// increments the scenario_steps counter. nil disables counting.
func (dr *Driver) SetObs(reg *obs.Registry) { dr.reg = reg }

// Step runs the next interval: asks the scenario for churn, applies it
// as one batch, and returns the result. ok is false once the scenario
// is exhausted. Intervals with no churn at all are returned with a nil
// Res and Plan (there is nothing to rekey).
func (dr *Driver) Step() (st *Step, ok bool, err error) {
	if dr.i >= dr.scn.Intervals() {
		return nil, false, nil
	}
	i := dr.i
	dr.i++
	joins, leaves := dr.scn.Churn(i, dr.tree.Members(), dr.rng, dr.alloc)
	st = &Step{Interval: i, Joins: joins, Leaves: leaves}
	if len(joins) == 0 && len(leaves) == 0 {
		return st, true, nil
	}
	batchStart := time.Now()
	res, err := dr.tree.ProcessBatch(joins, leaves)
	st.BatchNs = time.Since(batchStart).Nanoseconds()
	if err != nil {
		return nil, false, fmt.Errorf("workload: %s interval %d: %w", dr.scn.Name(), i, err)
	}
	plan, err := assign.Build(res)
	if err != nil {
		return nil, false, fmt.Errorf("workload: %s interval %d: %w", dr.scn.Name(), i, err)
	}
	st.Res, st.Plan = res, plan
	dr.reg.Inc(obs.CScenarioSteps)
	return st, true, nil
}

// alloc mints a fresh member handle.
func (dr *Driver) alloc() keytree.Member {
	m := dr.next
	dr.next++
	return m
}
