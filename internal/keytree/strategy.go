package keytree

// The TreeStrategy API: batch placement and rekey-subtree marking are a
// pluggable policy, not part of the tree core. A Strategy receives each
// validated (joins, leaves) batch and decides -- through the TreeOps
// facade -- where joiners are placed, which subtrees prune, and how the
// rekey subtree is labelled; the Tree itself retains state ownership,
// key storage, the Lemma 4.1 invariant, key generation and the parallel
// wrap-emission pipeline. See DESIGN.md "Tree strategies" for the full
// contract and how to add an implementation.

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Strategy decides batch placement and marking for one key tree. The
// rekey workload a strategy induces -- how many k-nodes change keys,
// hence how many encryptions each batch emits -- is the quantity the
// strategy race in EXPERIMENTS.md compares.
//
// Contract (enforced by Tree.CheckInvariant, the oracle suite and
// FuzzStrategyEquivalence):
//
//   - PlaceBatch must remove every leaver, place every joiner, and
//     leave the tree satisfying Lemma 4.1 (every k-node ID below every
//     u-node ID) with a correct labelling: exactly the k-nodes whose
//     keys must change carry the Join or Replace label.
//   - Every position a leaver vacates must end the batch either
//     reoccupied or with a Leave-labelled hole whose ancestors are
//     marked, so forward secrecy holds (a departed member's keys never
//     survive).
//   - Tree expansion must use TreeOps.Split (occupant moves to the
//     leftmost child), the rule members rely on to rederive their IDs
//     from maxKID alone (Theorem 4.2).
//   - All key material flows through the facade (TreeOps.Place draws
//     individual keys; the tree draws k-node keys after PlaceBatch
//     returns). Strategies never touch crypto/rand or any other
//     entropy source directly; rekeylint's cryptorand analyzer makes a
//     violation a build failure.
//   - PlaceBatch must be deterministic given the tree state and batch.
//
// A Strategy must be stateless (or internally synchronised): one value
// may serve many trees, including clones raced concurrently.
type Strategy interface {
	// Name identifies the strategy in registries, tables and flags.
	Name() string
	// PlaceBatch applies one validated batch's membership changes.
	PlaceBatch(ops *TreeOps, joins, leaves []Member) error
}

// strategyFactories is the registry of named strategies.
var strategyFactories = map[string]func() Strategy{}

// RegisterStrategy adds a named strategy factory. Registering a
// duplicate name panics: strategy names appear in configs and result
// tables, where silent replacement would corrupt comparisons.
func RegisterStrategy(name string, factory func() Strategy) {
	if name == "" || factory == nil {
		panic("keytree: RegisterStrategy with empty name or nil factory")
	}
	if _, dup := strategyFactories[name]; dup {
		panic(fmt.Sprintf("keytree: strategy %q registered twice", name))
	}
	strategyFactories[name] = factory
}

// NewStrategy instantiates a registered strategy by name. The empty
// name resolves to the default ("paper", the marking algorithm of the
// source paper's Appendix B).
func NewStrategy(name string) (Strategy, error) {
	if name == "" {
		name = StrategyPaper
	}
	f, ok := strategyFactories[name]
	if !ok {
		return nil, fmt.Errorf("keytree: unknown strategy %q (have %v)", name, StrategyNames())
	}
	return f(), nil
}

// StrategyNames returns the registered strategy names, sorted.
func StrategyNames() []string {
	out := make([]string, 0, len(strategyFactories))
	for name := range strategyFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Registered strategy names.
const (
	// StrategyPaper is the paper's Appendix B marking algorithm, the
	// default.
	StrategyPaper = "paper"
	// StrategyBatchPlace is the DC-programming-inspired co-optimised
	// insert/delete placement.
	StrategyBatchPlace = "batchplace"
	// StrategyLeftmost is the cheap leftmost-compaction baseline.
	StrategyLeftmost = "leftmost"
)

func init() {
	RegisterStrategy(StrategyPaper, func() Strategy { return PaperMarking{} })
	RegisterStrategy(StrategyBatchPlace, func() Strategy { return BatchPlace{} })
	RegisterStrategy(StrategyLeftmost, func() Strategy { return LeftmostCompact{} })
}

// Option configures a Tree at construction time.
type Option func(*Tree)

// WithLite skips ciphertext materialisation in ProcessBatch: encryption
// IDs and counts stay exact but Wrapped stays zero. Transport
// experiments that only track packet bookkeeping use it to avoid paying
// for AES on hundreds of simulated rekey messages.
func WithLite(lite bool) Option { return func(t *Tree) { t.lite = lite } }

// WithWorkers bounds the worker pool of the parallel batch pipeline;
// n <= 0 means GOMAXPROCS (resolved via internal/tuning).
func WithWorkers(n int) Option { return func(t *Tree) { t.workers = n } }

// WithObs attaches a metrics registry (nil detaches); a nil registry
// costs only a nil check.
func WithObs(r *obs.Registry) Option { return func(t *Tree) { t.reg = r } }

// WithStrategy selects the tree's placement/marking strategy; nil keeps
// the default PaperMarking.
func WithStrategy(s Strategy) Option {
	return func(t *Tree) {
		if s != nil {
			t.strat = s
		}
	}
}

// TreeOps is the facade through which a Strategy mutates the tree
// during PlaceBatch. It is the strategy's entire sanctioned write
// surface: membership moves, structural growth, prune/promote sweeps
// and labelling. Key material never passes through a strategy's hands
// -- Place draws individual keys from the tree's injected generator,
// and k-node keys are drawn by the tree after PlaceBatch returns. A
// TreeOps is valid only for the duration of one PlaceBatch call.
type TreeOps struct {
	t *Tree
	// Placement marks driving Relabel: positions filled by a pure join,
	// positions refilled after a same-interval departure, and positions
	// vacated this interval (u-nodes removed and not refilled, plus
	// pruned k-nodes).
	joinPos, replacePos, vacatedPos bitset
	// User-ID delta events with final-state cancellation: an ID vacated
	// and refilled within one batch nets out to no uids change, and an
	// ID placed then moved away by a split never enters uids at all.
	removedSet, addedSet map[int]bool
}

func newTreeOps(t *Tree, joins, leaves int) *TreeOps {
	return &TreeOps{
		t:          t,
		removedSet: make(map[int]bool, leaves),
		addedSet:   make(map[int]bool, joins),
	}
}

func (o *TreeOps) uidRemove(id int) {
	if o.addedSet[id] {
		delete(o.addedSet, id)
	} else {
		o.removedSet[id] = true
	}
}

func (o *TreeOps) uidAdd(id int) {
	if o.removedSet[id] {
		delete(o.removedSet, id)
	} else {
		o.addedSet[id] = true
	}
}

// commit folds the batch's u-node removals and additions into the
// tree's maintained sorted user-ID slice. Called by the tree after
// PlaceBatch returns.
func (o *TreeOps) commit() {
	removed := make([]int, 0, len(o.removedSet))
	for id := range o.removedSet {
		removed = append(removed, id)
	}
	added := make([]int, 0, len(o.addedSet))
	for id := range o.addedSet {
		added = append(added, id)
	}
	o.t.commitUserIDs(removed, added)
}

// Degree returns the tree degree d.
func (o *TreeOps) Degree() int { return o.t.d }

// Len returns the allocated node count; IDs beyond it are n-nodes of
// the conceptual infinite expansion.
func (o *TreeOps) Len() int { return len(o.t.nodes) }

// MaxKID returns the maximum current k-node ID, or -1 if none.
func (o *TreeOps) MaxKID() int { return o.t.MaxKID() }

// Kind returns node id's kind, tolerating IDs beyond the allocation.
func (o *TreeOps) Kind(id int) NodeKind { return o.t.kindOf(id) }

// Parent returns the parent ID of node id, or -1 for the root.
func (o *TreeOps) Parent(id int) int { return o.t.Parent(id) }

// UserID returns the u-node position of member m.
func (o *TreeOps) UserID(m Member) (int, bool) { return o.t.UserID(m) }

// Empty reports whether the tree holds no users and no k-nodes (the
// state requiring a root bootstrap before any placement).
func (o *TreeOps) Empty() bool { return o.t.N() == 0 && o.t.MaxKID() < 0 }

// VacatedThisBatch reports whether position id was vacated during the
// current batch (by a leaver's removal or a k-node prune). Inherited
// holes from earlier intervals report false.
func (o *TreeOps) VacatedThisBatch(id int) bool { return o.vacatedPos.get(id) }

// LiveChildren returns how many children of node id are live (u- or
// k-nodes). Cost models use it to price marking a fresh k-node.
func (o *TreeOps) LiveChildren(id int) int {
	n := 0
	first := o.t.d*id + 1
	for c := first; c < first+o.t.d; c++ {
		if o.t.kindOf(c) != NNode {
			n++
		}
	}
	return n
}

// Remove departs member m: its position becomes a vacated n-node. The
// batch prologue has already validated membership, so an unknown member
// is a strategy bug and returns an error.
func (o *TreeOps) Remove(m Member) (id int, err error) {
	id, ok := o.t.loc[m]
	if !ok {
		return 0, fmt.Errorf("keytree: strategy removed unknown member %d", m)
	}
	delete(o.t.loc, m)
	o.t.nodes[id] = node{kind: NNode}
	o.vacatedPos.set(id)
	o.uidRemove(id)
	return id, nil
}

// Place installs joiner m at position id with a fresh individual key
// drawn from the tree's injected generator (draw order is Place call
// order -- strategies that must match a reference stream place in a
// fixed order). replaced records whether the position was vacated this
// same interval, which Relabel turns into Replace rather than Join.
func (o *TreeOps) Place(id int, m Member, replaced bool) {
	o.t.growTo(id)
	o.t.nodes[id] = node{kind: UNode, member: m, key: o.t.gen.MustNewKey()}
	o.t.loc[m] = id
	o.vacatedPos.clear(id)
	o.uidAdd(id)
	if replaced {
		o.replacePos.set(id)
	} else {
		o.joinPos.set(id)
	}
}

// GrowTo extends the allocated tree so that id is a valid index.
func (o *TreeOps) GrowTo(id int) { o.t.growTo(id) }

// SeedRoot bootstraps an empty tree: the root becomes a k-node over a
// first leaf holding member m at node 1.
func (o *TreeOps) SeedRoot(m Member) {
	o.t.growTo(o.t.d)
	o.Place(1, m, false)
	o.t.nodes[0].kind = KNode
}

// Split expands the tree at u-node id per the Theorem 4.2 rule: the
// occupant moves to the leftmost child d*id+1, position id becomes a
// k-node (keyed after PlaceBatch by the tree), and the d-1 sibling
// positions become fresh n-node slots. Returns the leftmost child ID.
func (o *TreeOps) Split(id int) int {
	child := o.t.d*id + 1
	o.t.growTo(child + o.t.d - 1)
	m := o.t.nodes[id]
	o.t.nodes[child] = m
	o.t.loc[m.member] = child
	o.t.nodes[id] = node{kind: KNode}
	o.uidRemove(id)
	o.uidAdd(child)
	return child
}

// PruneEmptyKNodes converts k-nodes whose children are all n-nodes into
// n-nodes, iterating bottom-up until stable, recording the vacated
// positions so Relabel marks them Leave.
func (o *TreeOps) PruneEmptyKNodes() {
	t := o.t
	for id := len(t.nodes) - 1; id >= 0; id-- {
		if t.nodes[id].kind != KNode {
			continue
		}
		allN := true
		first := t.d*id + 1
		for c := first; c < first+t.d; c++ {
			if t.kindOf(c) != NNode {
				allN = false
				break
			}
		}
		if allN {
			t.nodes[id] = node{kind: NNode}
			o.vacatedPos.set(id)
		}
	}
}

// PromoteNNodes converts n-nodes that acquired a u-node or k-node
// descendant into k-nodes (they get keys after PlaceBatch, since their
// labels are necessarily not Unchanged). A single bottom-up pass
// suffices: a node's promotion depends only on deeper nodes.
func (o *TreeOps) PromoteNNodes() {
	t := o.t
	for id := len(t.nodes) - 1; id >= 0; id-- {
		if t.nodes[id].kind != NNode {
			continue
		}
		first := t.d*id + 1
		for c := first; c < first+t.d; c++ {
			k := t.kindOf(c)
			if k == UNode || k == KNode {
				t.nodes[id].kind = KNode
				break
			}
		}
	}
}

// Label returns node id's current rekey-subtree label.
func (o *TreeOps) Label(id int) Label {
	if id >= len(o.t.nodes) {
		return Unchanged
	}
	return o.t.nodes[id].label
}

// SetLabel overrides node id's label directly. Most strategies only
// record placement marks and call Relabel; SetLabel exists for
// strategies with marking rules Relabel cannot express.
func (o *TreeOps) SetLabel(id int, l Label) {
	o.t.growTo(id)
	o.t.nodes[id].label = l
}

// Relabel performs the generic rekey-subtree labelling pass, bottom-up,
// from the placement marks accumulated by Place, Remove, Split and
// PruneEmptyKNodes: n-nodes are Leave only if vacated this interval
// (holes inherited from earlier intervals are no change at all);
// u-nodes take Join or Replace from their placement; a k-node derives
// its label from its children.
func (o *TreeOps) Relabel() {
	t := o.t
	for id := len(t.nodes) - 1; id >= 0; id-- {
		n := &t.nodes[id]
		switch n.kind {
		case NNode:
			if o.vacatedPos.get(id) {
				n.label = Leave
			} else {
				n.label = Unchanged
			}
		case UNode:
			switch {
			case o.joinPos.get(id):
				n.label = Join
			case o.replacePos.get(id):
				n.label = Replace
			default:
				n.label = Unchanged
			}
		case KNode:
			allLeave, allUnchanged, allUnchangedOrJoin := true, true, true
			first := t.d*id + 1
			for c := first; c < first+t.d; c++ {
				var l Label = Leave
				if c < len(t.nodes) {
					l = t.nodes[c].label
				}
				if l != Leave {
					allLeave = false
				}
				if l != Unchanged {
					allUnchanged = false
				}
				if l != Unchanged && l != Join {
					allUnchangedOrJoin = false
				}
			}
			switch {
			case allLeave:
				// Cannot occur: such k-nodes were pruned to n-nodes.
				n.label = Leave
			case allUnchanged:
				n.label = Unchanged
			case allUnchangedOrJoin:
				n.label = Join
			default:
				n.label = Replace
			}
		}
	}
}

// fillWindow places joiners into n-node holes of the u-region window
// (nk, d*nk+d], lowest ID first, and returns how many were placed.
// Positions vacated this interval are marked Replace, inherited holes
// Join.
func fillWindow(ops *TreeOps, extra []Member) int {
	nk := ops.MaxKID()
	hi := ops.Degree()*nk + ops.Degree()
	ops.GrowTo(hi)
	i := 0
	for id := nk + 1; id <= hi && i < len(extra); id++ {
		if ops.Kind(id) == NNode {
			ops.Place(id, extra[i], ops.VacatedThisBatch(id))
			i++
		}
	}
	return i
}

// splitGrow expands the tree to absorb joiners once every position of
// the u-region window is occupied: repeatedly split node nk+1 (nk the
// maximum k-node ID, updated after each split) and fill the fresh
// sibling slots. The precondition -- a fully packed window -- makes the
// split target a u-node and the split children the only new holes, so
// the pass is linear instead of a quadratic window rescan.
func splitGrow(ops *TreeOps, extra []Member) {
	nk := ops.MaxKID()
	i := 0
	for i < len(extra) {
		split := nk + 1
		child := ops.Split(split)
		nk = split
		for id := child + 1; id <= child+ops.Degree()-1 && i < len(extra); id++ {
			ops.Place(id, extra[i], false)
			i++
		}
	}
}
