package keytree

import (
	"math/rand/v2"
	"testing"

	"repro/internal/keys"
)

func newTestTree(t testing.TB, d int, seed uint64) *Tree {
	t.Helper()
	return New(d, keys.NewDeterministicGenerator(seed))
}

// populate adds members 0..n-1 in one batch and fails the test on error.
func populate(t testing.TB, tr *Tree, n int) *BatchResult {
	t.Helper()
	joins := make([]Member, n)
	for i := range joins {
		joins[i] = Member(i)
	}
	res, err := tr.ProcessBatch(joins, nil)
	if err != nil {
		t.Fatalf("populate(%d): %v", n, err)
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatalf("populate(%d): %v", n, err)
	}
	return res
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, 4, 1)
	if tr.N() != 0 {
		t.Fatalf("N = %d, want 0", tr.N())
	}
	if tr.MaxKID() != -1 {
		t.Fatalf("MaxKID = %d, want -1", tr.MaxKID())
	}
	if !tr.GroupKey().Zero() {
		t.Fatal("empty tree has a group key")
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degree 1 accepted")
		}
	}()
	New(1, nil)
}

func TestPopulateBalanced(t *testing.T) {
	for _, tc := range []struct {
		d, n, wantHeight int
	}{
		{4, 1, 1}, {4, 4, 1}, {4, 5, 2}, {4, 16, 2}, {4, 64, 3},
		{4, 4096, 6}, {3, 9, 2}, {2, 8, 3}, {3, 10, 3},
	} {
		tr := newTestTree(t, tc.d, uint64(tc.n))
		populate(t, tr, tc.n)
		if tr.N() != tc.n {
			t.Errorf("d=%d n=%d: N = %d", tc.d, tc.n, tr.N())
		}
		if tr.Height() != tc.wantHeight {
			t.Errorf("d=%d n=%d: height = %d, want %d", tc.d, tc.n, tr.Height(), tc.wantHeight)
		}
	}
}

func TestPaperExampleSection2(t *testing.T) {
	// Figure 1: d=3, users u1..u9; u9 leaves. The rekey message must be
	// exactly ({k78}k7, {k78}k8, {k1-8}k123, {k1-8}k456, {k1-8}k78):
	// five encryptions, keyed by nodes u7, u8, k123, k456, k78 in
	// bottom-up order.
	tr := newTestTree(t, 3, 2)
	populate(t, tr, 9)
	// With 0-based IDs: root 0, level 1 = {1,2,3}, leaves 4..12.
	id9, ok := tr.UserID(Member(8))
	if !ok || id9 != 12 {
		t.Fatalf("u9 at node %d, want 12", id9)
	}
	oldGroupKey := tr.GroupKey()
	res, err := tr.ProcessBatch(nil, []Member{8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	wantIDs := []uint32{10, 11, 1, 2, 3}
	if len(res.Encryptions) != len(wantIDs) {
		t.Fatalf("got %d encryptions, want %d", len(res.Encryptions), len(wantIDs))
	}
	for i, e := range res.Encryptions {
		if e.ID != wantIDs[i] {
			t.Errorf("encryption %d keyed by node %d, want %d", i, e.ID, wantIDs[i])
		}
	}
	if tr.GroupKey() == oldGroupKey {
		t.Fatal("group key did not change after a leave")
	}
	if res.UpdatedKNodes != 2 {
		t.Errorf("UpdatedKNodes = %d, want 2 (k78 and root)", res.UpdatedKNodes)
	}
}

func TestUserNeedsSubsetAndSufficient(t *testing.T) {
	tr := newTestTree(t, 4, 3)
	populate(t, tr, 64)
	res, err := tr.ProcessBatch([]Member{100, 101}, []Member{5, 17, 33})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Members() {
		id, _ := tr.UserID(m)
		needs := res.UserNeeds(id)
		// Every needed encryption is keyed by a node on the user's path.
		onPath := map[int]bool{}
		for p := id; p >= 0; p = tr.Parent(p) {
			onPath[p] = true
		}
		for _, e := range needs {
			if !onPath[int(e.ID)] {
				t.Fatalf("member %d: encryption %d not on path", m, e.ID)
			}
		}
	}
}

func TestJoinEqualsLeaveReplacesInPlace(t *testing.T) {
	tr := newTestTree(t, 4, 4)
	populate(t, tr, 16)
	oldID, _ := tr.UserID(Member(7))
	res, err := tr.ProcessBatch([]Member{99}, []Member{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	newID, ok := tr.UserID(Member(99))
	if !ok || newID != oldID {
		t.Fatalf("replacement member at node %d, want %d", newID, oldID)
	}
	if tr.N() != 16 {
		t.Fatalf("N = %d, want 16", tr.N())
	}
	if res.Joined != 1 || res.Left != 1 {
		t.Fatalf("Joined/Left = %d/%d", res.Joined, res.Left)
	}
}

func TestLeavesPruneTree(t *testing.T) {
	tr := newTestTree(t, 4, 5)
	populate(t, tr, 16)
	// Remove every member under one level-1 k-node: an entire subtree
	// departs, so its k-node must revert to an n-node.
	id0, _ := tr.UserID(Member(0))
	parent := tr.Parent(id0)
	if tr.nodes[parent].kind != KNode {
		t.Fatalf("parent of member 0 is %v before batch", tr.nodes[parent].kind)
	}
	var leaves []Member
	for _, m := range tr.Members() {
		id, _ := tr.UserID(m)
		if tr.Parent(id) == parent {
			leaves = append(leaves, m)
		}
	}
	if len(leaves) != 4 {
		t.Fatalf("subtree holds %d members, want 4", len(leaves))
	}
	if _, err := tr.ProcessBatch(nil, leaves); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if tr.nodes[parent].kind != NNode {
		t.Fatalf("emptied subtree root is %v, want n-node", tr.nodes[parent].kind)
	}
	if tr.N() != 12 {
		t.Fatalf("N = %d, want 12", tr.N())
	}
}

func TestAllLeaveEmptiesTree(t *testing.T) {
	tr := newTestTree(t, 3, 6)
	populate(t, tr, 9)
	var leaves []Member
	for i := 0; i < 9; i++ {
		leaves = append(leaves, Member(i))
	}
	res, err := tr.ProcessBatch(nil, leaves)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if tr.N() != 0 || tr.MaxKID() != -1 {
		t.Fatalf("N=%d MaxKID=%d after full departure", tr.N(), tr.MaxKID())
	}
	if len(res.Encryptions) != 0 {
		t.Fatalf("%d encryptions for an empty group", len(res.Encryptions))
	}
}

func TestSplitGrowsTreeAndTheorem42(t *testing.T) {
	tr := newTestTree(t, 4, 7)
	populate(t, tr, 4) // users at nodes 1..4
	oldID, _ := tr.UserID(Member(0))
	if oldID != 1 {
		t.Fatalf("member 0 at node %d, want 1", oldID)
	}
	res, err := tr.ProcessBatch([]Member{50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// Node 1 split: member 0 moved to its leftmost child, 4*1+1 = 5.
	movedID, _ := tr.UserID(Member(0))
	if movedID != 5 {
		t.Fatalf("member 0 at node %d after split, want 5", movedID)
	}
	// Theorem 4.2 must rederive the move from maxKID alone.
	got, ok := NewID(4, oldID, res.MaxKID)
	if !ok || got != movedID {
		t.Fatalf("NewID(4,%d,%d) = %d,%v; want %d,true", oldID, res.MaxKID, got, ok, movedID)
	}
	// Members 1..3 did not move; NewID must be the identity for them.
	for i := 1; i < 4; i++ {
		id, _ := tr.UserID(Member(i))
		got, ok := NewID(4, id, res.MaxKID)
		if !ok || got != id {
			t.Fatalf("NewID moved stationary member %d: %d -> %d", i, id, got)
		}
	}
}

func TestNewIDUniqueness(t *testing.T) {
	// Theorem 4.2 claims a unique f(x) in (maxKID, d*maxKID+d] for any
	// old ID greater than 0. Verify exhaustively over a parameter box.
	for _, d := range []int{2, 3, 4, 8} {
		for maxKID := 0; maxKID < 300; maxKID++ {
			for m := 1; m <= d*maxKID+d; m++ {
				count := 0
				f := m
				for f <= d*maxKID+d {
					if f > maxKID {
						count++
					}
					f = d*f + 1
				}
				if count > 1 {
					t.Fatalf("d=%d maxKID=%d m=%d: %d candidates", d, maxKID, m, count)
				}
				got, ok := NewID(d, m, maxKID)
				if (count == 1) != ok {
					t.Fatalf("d=%d maxKID=%d m=%d: ok=%v, want %v", d, maxKID, m, ok, count == 1)
				}
				if ok && (got <= maxKID || got > d*maxKID+d) {
					t.Fatalf("d=%d maxKID=%d m=%d: NewID=%d out of range", d, maxKID, m, got)
				}
			}
		}
	}
}

func TestBatchRejectsBadRequests(t *testing.T) {
	tr := newTestTree(t, 4, 8)
	populate(t, tr, 8)
	if _, err := tr.ProcessBatch(nil, []Member{999}); err == nil {
		t.Error("leave of unknown member accepted")
	}
	if _, err := tr.ProcessBatch([]Member{3}, nil); err == nil {
		t.Error("join of present member accepted")
	}
	if _, err := tr.ProcessBatch([]Member{100, 100}, nil); err == nil {
		t.Error("duplicate join accepted")
	}
	if _, err := tr.ProcessBatch(nil, []Member{3, 3}); err == nil {
		t.Error("duplicate leave accepted")
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyBatchIsNoOp(t *testing.T) {
	tr := newTestTree(t, 4, 9)
	populate(t, tr, 8)
	gk := tr.GroupKey()
	res, err := tr.ProcessBatch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Encryptions) != 0 {
		t.Fatal("empty batch produced encryptions")
	}
	if tr.GroupKey() != gk {
		t.Fatal("empty batch changed the group key")
	}
}

// TestUserViewEndToEnd runs members' client views against a random batch
// sequence: after each batch, every surviving member that applies its
// needed encryptions must hold exactly the path keys the server has.
func TestUserViewEndToEnd(t *testing.T) {
	const d = 4
	tr := newTestTree(t, d, 10)
	rng := rand.New(rand.NewPCG(10, 20))
	next := Member(0)
	views := make(map[Member]*UserView)

	join := func(n int) []Member {
		ms := make([]Member, n)
		for i := range ms {
			ms[i] = next
			next++
		}
		return ms
	}
	registerNew := func(ms []Member) {
		for _, m := range ms {
			id, ok := tr.UserID(m)
			if !ok {
				t.Fatalf("joined member %d missing from tree", m)
			}
			ik, _ := tr.IndividualKey(m)
			views[m] = NewUserView(d, m, id, ik)
		}
	}

	applyAll := func(round int, res *BatchResult) {
		for m, v := range views {
			needs := res.UserNeeds(v.mustCurrentID(t, res))
			if err := v.Apply(res.MaxKID, needs); err != nil {
				t.Fatalf("round %d member %d: %v", round, m, err)
			}
			want, _ := tr.PathKeys(m)
			for id, k := range want {
				if v.Keys[id] != k {
					t.Fatalf("round %d member %d: key at node %d diverges", round, m, id)
				}
			}
			gk, ok := v.GroupKey()
			if !ok || gk != tr.GroupKey() {
				t.Fatalf("round %d member %d: wrong group key", round, m)
			}
		}
	}

	// Initial population. New members apply their joining interval's
	// rekey message like everyone else: that is how path keys arrive.
	ms := join(37)
	res0, err := tr.ProcessBatch(ms, nil)
	if err != nil {
		t.Fatal(err)
	}
	registerNew(ms)
	applyAll(-1, res0)

	for round := 0; round < 30; round++ {
		members := tr.Members()
		nLeave := rng.IntN(len(members)/2 + 1)
		perm := rng.Perm(len(members))
		leaves := make([]Member, 0, nLeave)
		for _, idx := range perm[:nLeave] {
			leaves = append(leaves, members[idx])
		}
		joins := join(rng.IntN(20))
		if len(joins) == 0 && len(leaves) == 0 {
			continue
		}
		res, err := tr.ProcessBatch(joins, leaves)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := tr.CheckInvariant(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, m := range leaves {
			delete(views, m)
		}
		registerNew(joins)
		applyAll(round, res)
	}
}

// mustCurrentID rederives the view's post-batch ID the way the transport
// layer would, without mutating the view.
func (u *UserView) mustCurrentID(t *testing.T, res *BatchResult) int {
	t.Helper()
	id, ok := NewID(u.D, u.ID, res.MaxKID)
	if !ok {
		t.Fatalf("member %d: cannot rederive ID", u.Member)
	}
	return id
}

func TestForwardSecrecy(t *testing.T) {
	// A departed member must not be able to unwrap any encryption of the
	// batch that evicts it.
	tr := newTestTree(t, 4, 11)
	populate(t, tr, 16)
	evicted := Member(5)
	id, _ := tr.UserID(evicted)
	ik, _ := tr.IndividualKey(evicted)
	view := NewUserView(4, evicted, id, ik)
	// Give the departing member its full pre-departure key set.
	pk, _ := tr.PathKeys(evicted)
	for nid, k := range pk {
		view.Keys[nid] = k
	}
	oldGroup := tr.GroupKey()

	res, err := tr.ProcessBatch(nil, []Member{evicted})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Encryptions {
		for _, k := range view.Keys {
			if _, err := keys.Unwrap(k, e.Wrapped); err == nil {
				t.Fatalf("departed member's key unwraps encryption %d", e.ID)
			}
		}
	}
	if tr.GroupKey() == oldGroup {
		t.Fatal("group key unchanged after eviction")
	}
}

func TestBackwardSecrecy(t *testing.T) {
	// A newly joined member must not learn the previous group key: the
	// keys it can unwrap are all fresh this interval.
	tr := newTestTree(t, 4, 12)
	populate(t, tr, 16)
	oldGroup := tr.GroupKey()
	res, err := tr.ProcessBatch([]Member{200}, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := tr.UserID(Member(200))
	ik, _ := tr.IndividualKey(Member(200))
	v := NewUserView(4, Member(200), id, ik)
	if err := v.Apply(res.MaxKID, res.UserNeeds(id)); err != nil {
		t.Fatal(err)
	}
	gk, ok := v.GroupKey()
	if !ok {
		t.Fatal("new member did not learn the group key")
	}
	if gk == oldGroup {
		t.Fatal("new group key equals the pre-join group key")
	}
	if gk != tr.GroupKey() {
		t.Fatal("new member learned the wrong group key")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := newTestTree(t, 4, 13)
	populate(t, tr, 32)
	cl := tr.Clone()
	if _, err := cl.ProcessBatch(nil, []Member{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if tr.N() != 32 {
		t.Fatalf("mutating clone changed original: N=%d", tr.N())
	}
	if cl.N() != 29 {
		t.Fatalf("clone N=%d, want 29", cl.N())
	}
	if _, ok := tr.UserID(Member(1)); !ok {
		t.Fatal("original lost a member")
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptionCountGrowsWithLUpToNoverD(t *testing.T) {
	// The paper observes #encryptions rises with L then falls past
	// L ~ N/d as subtrees prune away entirely.
	const n, d = 256, 4
	sizes := map[int]int{}
	for _, L := range []int{16, 64, 240} {
		tr := newTestTree(t, d, uint64(100+L))
		populate(t, tr, n)
		rng := rand.New(rand.NewPCG(uint64(L), 0))
		perm := rng.Perm(n)
		leaves := make([]Member, L)
		for i := 0; i < L; i++ {
			leaves[i] = Member(perm[i])
		}
		res, err := tr.ProcessBatch(nil, leaves)
		if err != nil {
			t.Fatal(err)
		}
		sizes[L] = len(res.Encryptions)
	}
	if !(sizes[16] < sizes[64]) {
		t.Errorf("encryptions did not grow with L: %v", sizes)
	}
	if !(sizes[240] < sizes[64]) {
		t.Errorf("encryptions did not shrink near-total departure: %v", sizes)
	}
}

func TestParentIDRelation(t *testing.T) {
	for _, d := range []int{2, 3, 4, 7} {
		for m := 0; m < 1000; m++ {
			for c := d*m + 1; c <= d*m+d; c++ {
				if ParentID(d, c) != m {
					t.Fatalf("d=%d: ParentID(%d) = %d, want %d", d, c, ParentID(d, c), m)
				}
			}
		}
		if ParentID(d, 0) != -1 {
			t.Fatalf("d=%d: root parent = %d", d, ParentID(d, 0))
		}
	}
}

func BenchmarkProcessBatchN4096L1024(b *testing.B) {
	tr := newTestTree(b, 4, 99)
	populate(b, tr, 4096)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl := tr.Clone()
		members := cl.Members()
		perm := rng.Perm(len(members))
		leaves := make([]Member, 1024)
		for j := range leaves {
			leaves[j] = members[perm[j]]
		}
		b.StartTimer()
		if _, err := cl.ProcessBatch(nil, leaves); err != nil {
			b.Fatal(err)
		}
	}
}
