package keytree

import (
	"sync"
	"sync/atomic"

	"repro/internal/keys"
	"repro/internal/tuning"
)

// emitChunk is the span width of the parallel emission: workers pull
// node-ID spans of this many positions off a shared atomic cursor.
// Large enough that the counting pass and cursor traffic are noise
// against the AES work inside a span, small enough that a
// million-entry level splits into hundreds of units and the pool
// stays balanced even when eligibility is clustered.
const emitChunk = 2048

// emitSpan is one unit of parallel emission work: the eligible nodes
// in [lo, hi) write their encryptions at Encryptions[out:].
type emitSpan struct {
	lo, hi int
	out    int
}

// emitParallel produces exactly emitSeq's output, pre-sized and filled
// in parallel. A serial counting pass over the rekey levels (cheap:
// label/kind tests only, no crypto) fixes each span's output offset by
// prefix sum, so every encryption's position is known before any wrap
// runs; workers then pull spans off an atomic cursor and fill them
// with a per-worker WrapContext. No locks, no post-hoc sorting, and
// the result is byte-identical to the sequential path by construction.
func (t *Tree) emitParallel(res *BatchResult) {
	levelStart := t.levelBounds()
	var spans []emitSpan
	total := 0
	for level := t.height; level >= 1; level-- {
		lo, hi := levelStart[level], levelStart[level+1]
		if hi > len(t.nodes) {
			hi = len(t.nodes)
		}
		levelTotal := total
		for s := lo; s < hi; s += emitChunk {
			e := s + emitChunk
			if e > hi {
				e = hi
			}
			cnt := 0
			for id := s; id < e; id++ {
				if t.emitEligible(id) {
					cnt++
				}
			}
			if cnt > 0 {
				spans = append(spans, emitSpan{lo: s, hi: e, out: total})
				total += cnt
			}
		}
		if total > levelTotal {
			res.levels = append(res.levels, levelSeg{lo: lo, hi: hi, start: levelTotal})
		}
	}
	if total == 0 {
		return
	}
	res.Encryptions = make([]Encryption, total)

	workers := tuning.ResolveWorkers(t.workers)
	if workers > len(spans) {
		workers = len(spans)
	}
	if workers <= 1 || t.lite {
		// Inline: single-threaded fill (lite mode writes IDs only --
		// no crypto to amortise goroutines over).
		ctx := keys.NewWrapContext(keys.Key{})
		for _, sp := range spans {
			t.fillSpan(sp, res, ctx)
		}
		return
	}

	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := keys.NewWrapContext(keys.Key{})
			for {
				i := int(atomic.AddInt64(&cursor, 1)) - 1
				if i >= len(spans) {
					return
				}
				t.fillSpan(spans[i], res, ctx)
			}
		}()
	}
	wg.Wait()
}

// fillSpan writes one span's encryptions at their precomputed offsets.
// Every tree edge has a distinct child (outer) key, so the context is
// re-keyed per edge; what it saves over the one-shot keys.Wrap is the
// per-call cipher/HMAC object construction, which dominates Wrap's
// allocation profile.
//
//rekeylint:hotpath
func (t *Tree) fillSpan(sp emitSpan, res *BatchResult, ctx *keys.WrapContext) {
	out := sp.out
	for id := sp.lo; id < sp.hi; id++ {
		if !t.emitEligible(id) {
			continue
		}
		e := &res.Encryptions[out]
		e.ID = uint32(id)
		if !t.lite {
			ctx.SetKey(t.nodes[id].key)
			ctx.WrapInto(&e.Wrapped, t.nodes[t.Parent(id)].key)
		}
		out++
	}
}
