package keytree

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/keys"
)

// The golden suite pins the marking algorithm's observable output --
// every encryption ID and ciphertext byte, MaxKID, group key, user IDs
// and update counts, across both the parallel and sequential pipelines
// -- as SHA-256 digests over deterministic schedules. The digests in
// testdata/golden_paper_marking.json were generated from the
// pre-TreeStrategy monolithic ProcessBatch, so they prove the extracted
// PaperMarking strategy is byte-identical to the code it replaced.
//
// Regenerate (only when an intentional output change is made) with:
//
//	go test ./internal/keytree -run TestPaperMarkingGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_paper_marking.json from the current implementation")

const goldenFile = "testdata/golden_paper_marking.json"

// goldenHasher folds one pipeline's observable batch outputs into a
// running SHA-256.
type goldenHasher struct {
	h   hash.Hash
	buf [8]byte
}

func newGoldenHasher() *goldenHasher { return &goldenHasher{h: sha256.New()} }

func (g *goldenHasher) writeInt(v int) {
	binary.LittleEndian.PutUint64(g.buf[:], uint64(int64(v)))
	g.h.Write(g.buf[:])
}

func (g *goldenHasher) batch(res *BatchResult, err error) {
	if err != nil {
		g.h.Write([]byte("E"))
		g.h.Write([]byte(err.Error()))
		return
	}
	g.h.Write([]byte("B"))
	g.writeInt(res.MaxKID)
	g.h.Write(res.GroupKey[:])
	g.writeInt(len(res.UserIDs))
	for _, id := range res.UserIDs {
		g.writeInt(id)
	}
	g.writeInt(res.Joined)
	g.writeInt(res.Left)
	g.writeInt(res.UpdatedKNodes)
	g.writeInt(len(res.Encryptions))
	for i := range res.Encryptions {
		g.writeInt(int(res.Encryptions[i].ID))
		g.h.Write(res.Encryptions[i].Wrapped[:])
	}
	// Fold in every user's needed-encryption view: this pins the level
	// segment index (lookup) behaviour, not just the flat slice.
	for _, uid := range res.UserIDs {
		for _, eid := range res.UserNeedIDs(uid) {
			g.writeInt(int(eid))
		}
		g.writeInt(-1)
	}
}

func (g *goldenHasher) sum() string { return fmt.Sprintf("%x", g.h.Sum(nil)) }

// goldenCase drives one schedule: emit is called with successive
// batches; live and mint let the schedule react to the tree's current
// membership exactly the way the fuzz scripts do.
type goldenCase struct {
	name    string
	d       int
	workers int
	seed    uint64
	run     func(step func(joins, leaves []Member), live func() []Member)
}

// goldenDigest replays one case through a parallel-pipeline tree and a
// sequential-reference tree and returns the combined digest. The two
// trees are driven from independent deterministic generators with the
// same seed (a shared generator would interleave the streams).
func goldenDigest(t *testing.T, gc goldenCase) string {
	t.Helper()
	par := New(gc.d, keys.NewDeterministicGenerator(gc.seed), WithWorkers(gc.workers))
	seq := New(gc.d, keys.NewDeterministicGenerator(gc.seed))
	gh := newGoldenHasher()
	step := func(joins, leaves []Member) {
		rp, errP := par.ProcessBatch(joins, leaves)
		rs, errS := seq.ProcessBatchSeq(joins, leaves)
		gh.batch(rp, errP)
		gh.batch(rs, errS)
		if errP == nil {
			if err := par.CheckInvariant(); err != nil {
				t.Fatalf("%s: parallel invariant: %v", gc.name, err)
			}
			if err := seq.CheckInvariant(); err != nil {
				t.Fatalf("%s: sequential invariant: %v", gc.name, err)
			}
		}
	}
	gc.run(step, par.Members)
	return gh.sum()
}

// corpusCases builds one golden case per checked-in fuzz corpus entry,
// replayed through the shared fuzzScript decoder.
func corpusCases(t *testing.T) []goldenCase {
	t.Helper()
	var cases []goldenCase
	for _, dir := range []string{
		"testdata/fuzz/FuzzMarkingAdversarial",
		"testdata/fuzz/FuzzStrategyEquivalence",
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading corpus dir %s: %v", dir, err)
		}
		for _, e := range entries {
			data := readCorpusEntry(t, filepath.Join(dir, e.Name()))
			script, ok := parseFuzzScript(data)
			if !ok {
				continue
			}
			cases = append(cases, goldenCase{
				name: "corpus/" + filepath.Base(dir) + "/" + e.Name(),
				d:    script.d, workers: 3, seed: script.seed,
				run: func(step func(joins, leaves []Member), live func() []Member) {
					boot := make([]Member, script.base)
					for i := range boot {
						boot[i] = Member(i)
					}
					step(boot, nil)
					next := Member(script.base)
					for r := 0; r < script.rounds(); r++ {
						joins, leaves := script.churn(r, live(), &next)
						if len(joins) == 0 && len(leaves) == 0 {
							continue
						}
						step(joins, leaves)
					}
				},
			})
		}
	}
	return cases
}

// readCorpusEntry parses one "go test fuzz v1" corpus file holding a
// single []byte argument.
func readCorpusEntry(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: not a v1 corpus file with one argument", path)
	}
	arg := strings.TrimSpace(lines[1])
	arg = strings.TrimPrefix(arg, "[]byte(")
	arg = strings.TrimSuffix(arg, ")")
	s, err := strconv.Unquote(arg)
	if err != nil {
		t.Fatalf("%s: unquoting corpus bytes: %v", path, err)
	}
	return []byte(s)
}

// randomCase mirrors the diff_test random schedule: batches of up to
// maxJoin joins and uniformly-sized shuffled leave sets.
func randomCase(name string, d, workers int, seed uint64, batches, maxJoin int) goldenCase {
	return goldenCase{
		name: name, d: d, workers: workers, seed: seed,
		run: func(step func(joins, leaves []Member), live func() []Member) {
			rng := rand.New(rand.NewPCG(seed, 77))
			next := Member(0)
			var present []Member
			for b := 0; b < batches; b++ {
				nJoin := rng.IntN(maxJoin)
				nLeave := 0
				if len(present) > 0 {
					nLeave = rng.IntN(len(present) + 1)
				}
				joins := make([]Member, nJoin)
				for i := range joins {
					joins[i] = next
					next++
				}
				rng.Shuffle(len(present), func(i, j int) {
					present[i], present[j] = present[j], present[i]
				})
				leaves := append([]Member(nil), present[:nLeave]...)
				step(joins, leaves)
				present = append(present[nLeave:], joins...)
			}
		},
	}
}

// edgeCase pins the shapes random walks may miss: empty batches, total
// departure, prune cascades, single-member regrowth and error paths.
func edgeCase() goldenCase {
	return goldenCase{
		name: "edges", d: 4, workers: 0, seed: 42,
		run: func(step func(joins, leaves []Member), live func() []Member) {
			step(nil, nil)
			joins := make([]Member, 64)
			for i := range joins {
				joins[i] = Member(i)
			}
			step(joins, nil)
			step(nil, nil)
			step([]Member{100, 101, 102}, []Member{0, 1, 2})
			var leaves []Member
			for i := 3; i < 48; i++ {
				leaves = append(leaves, Member(i))
			}
			step([]Member{200}, leaves)
			all := append([]Member(nil), live()...)
			step(nil, all)
			for i := 0; i < 5; i++ {
				step([]Member{Member(300 + i)}, nil)
			}
			step([]Member{300}, nil)      // already present
			step(nil, []Member{999})      // unknown leave
			step([]Member{400, 400}, nil) // duplicate join
			step(nil, []Member{301, 301}) // duplicate leave
		},
	}
}

// adversarialCase grows a large group then tears strided fractions out
// of it, exercising deep trees, split cascades and wide rekey subtrees.
func adversarialCase(name string, d, workers, base int, seed uint64) goldenCase {
	return goldenCase{
		name: name, d: d, workers: workers, seed: seed,
		run: func(step func(joins, leaves []Member), live func() []Member) {
			boot := make([]Member, base)
			for i := range boot {
				boot[i] = Member(i)
			}
			step(boot, nil)
			next := Member(base)
			for _, frac := range []int{4, 3, 2} { // leave 1/4, then 1/3, then 1/2
				ms := live()
				nl := len(ms) / frac
				stride := float64(len(ms)) / float64(nl)
				leaves := make([]Member, nl)
				for j := 0; j < nl; j++ {
					leaves[j] = ms[int(float64(j)*stride)]
				}
				joins := make([]Member, nl/2)
				for i := range joins {
					joins[i] = next
					next++
				}
				step(joins, leaves)
			}
			regrow := make([]Member, base)
			for i := range regrow {
				regrow[i] = next
				next++
			}
			step(regrow, nil)
		},
	}
}

func goldenCases(t *testing.T) []goldenCase {
	cases := corpusCases(t)
	cases = append(cases,
		randomCase("rand/d2", 2, 0, 101, 25, 40),
		randomCase("rand/d3-w2", 3, 2, 102, 25, 40),
		randomCase("rand/d4", 4, 0, 103, 25, 40),
		randomCase("rand/d4-w3", 4, 3, 104, 25, 40),
		randomCase("rand/d5-w8", 5, 8, 105, 25, 40),
		randomCase("rand/d4-heavy", 4, 4, 777, 12, 300),
		edgeCase(),
		adversarialCase("adv/d4-3k", 4, 0, 3000, 2024),
		adversarialCase("adv/d2-800", 2, 6, 800, 7),
	)
	sort.Slice(cases, func(i, j int) bool { return cases[i].name < cases[j].name })
	return cases
}

// TestPaperMarkingGolden proves the default marking strategy reproduces
// the pre-refactor ProcessBatch/ProcessBatchSeq output byte for byte.
func TestPaperMarkingGolden(t *testing.T) {
	got := make(map[string]string)
	for _, gc := range goldenCases(t) {
		got[gc.name] = goldenDigest(t, gc)
	}

	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), goldenFile)
		return
	}

	raw, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with -update-golden): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cases, suite ran %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("golden case %q no longer runs", name)
			continue
		}
		if g != w {
			t.Errorf("case %q: output diverged from the pre-strategy marking algorithm:\n  got  %s\n  want %s", name, g, w)
		}
	}
}
