package keytree

// fuzzScript is the shared byte-driven batch schedule used by the
// marking fuzz targets and the golden differential suite: one compact
// byte string decodes to a tree degree, a bootstrap population and up
// to eight churn rounds whose leave sets follow adversarial patterns
// (strided, prefix, suffix, scattered). Keeping the decoder in one
// place means the checked-in corpora drive every consumer identically,
// so a corpus entry that once broke the marking algorithm keeps
// guarding its strategies and the golden digests alike.

// fuzzScriptRounds caps the churn rounds one script replays.
const fuzzScriptRounds = 8

// fuzzScript is a decoded schedule header plus the raw round bytes.
type fuzzScript struct {
	d    int    // tree degree, 2..8
	base int    // bootstrap population, >= 2
	seed uint64 // key-generator seed, >= 1
	data []byte // round bytes: triples of (nj, pattern, nl-selector)
}

// parseFuzzScript decodes the script header; ok is false when data is
// too short to describe a run.
func parseFuzzScript(data []byte) (*fuzzScript, bool) {
	if len(data) < 3 {
		return nil, false
	}
	return &fuzzScript{
		d:    int(data[0]%7) + 2,
		base: int(data[1]) + 2,
		seed: uint64(data[2]) + 1,
		data: data[3:],
	}, true
}

// rounds returns how many churn rounds the script encodes.
func (s *fuzzScript) rounds() int {
	n := len(s.data) / 3
	if n > fuzzScriptRounds {
		n = fuzzScriptRounds
	}
	return n
}

// churn decodes round r against the current live membership: nj fresh
// joins (minted via next) and a leave set following the round's byte
// pattern. At least one member always survives.
func (s *fuzzScript) churn(r int, live []Member, next *Member) (joins, leaves []Member) {
	b := s.data[r*3 : r*3+3]
	nj := int(b[0] % 32)
	pattern := b[1] % 4
	nl := int(b[2]) % len(live) // keep >= 1 member

	leaves = make([]Member, 0, nl)
	switch pattern {
	case 0: // strided: maximally disjoint paths
		if nl > 0 {
			stride := float64(len(live)) / float64(nl)
			for j := 0; j < nl; j++ {
				leaves = append(leaves, live[int(float64(j)*stride)])
			}
		}
	case 1: // prefix: one side of the tree
		leaves = append(leaves, live[:nl]...)
	case 2: // suffix: the most recently placed region
		leaves = append(leaves, live[len(live)-nl:]...)
	default: // scattered by a byte-derived odd step
		step := int(b[1]/4)*2 + 1
		for j, idx := 0, 0; j < nl; j, idx = j+1, (idx+step)%len(live) {
			leaves = append(leaves, live[idx])
		}
		leaves = dedupMembers(leaves)
	}

	for j := 0; j < nj; j++ {
		joins = append(joins, *next)
		*next++
	}
	return joins, leaves
}
