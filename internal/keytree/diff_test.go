package keytree

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/keys"
)

// diffPair drives two trees -- one through the parallel ProcessBatch,
// one through the sequential reference ProcessBatchSeq -- with
// deterministic generators built from the same seed. The trees must be
// built independently (not Cloned): a Clone shares one generator, and
// interleaved draws from two consumers would diverge the streams.
type diffPair struct {
	par, seq *Tree
}

func newDiffPair(d int, seed uint64, workers int) *diffPair {
	return &diffPair{
		par: New(d, keys.NewDeterministicGenerator(seed), WithWorkers(workers)),
		seq: New(d, keys.NewDeterministicGenerator(seed)),
	}
}

// step applies the same batch to both trees and fails unless every
// observable output -- encryptions (IDs and ciphertext bytes), MaxKID,
// group key, user IDs, update counts -- is identical.
func (p *diffPair) step(t *testing.T, joins, leaves []Member) {
	t.Helper()
	rp, errP := p.par.ProcessBatch(joins, leaves)
	rs, errS := p.seq.ProcessBatchSeq(joins, leaves)
	if (errP == nil) != (errS == nil) {
		t.Fatalf("error mismatch: parallel=%v sequential=%v", errP, errS)
	}
	if errP != nil {
		if errP.Error() != errS.Error() {
			t.Fatalf("error text mismatch: parallel=%q sequential=%q", errP, errS)
		}
		return
	}
	if err := p.par.CheckInvariant(); err != nil {
		t.Fatalf("parallel tree invariant: %v", err)
	}
	if err := p.seq.CheckInvariant(); err != nil {
		t.Fatalf("sequential tree invariant: %v", err)
	}
	if rp.MaxKID != rs.MaxKID || rp.GroupKey != rs.GroupKey {
		t.Fatalf("MaxKID/GroupKey mismatch: (%d, %x) vs (%d, %x)",
			rp.MaxKID, rp.GroupKey, rs.MaxKID, rs.GroupKey)
	}
	if rp.Joined != rs.Joined || rp.Left != rs.Left || rp.UpdatedKNodes != rs.UpdatedKNodes {
		t.Fatalf("count mismatch: J=%d/%d L=%d/%d updated=%d/%d",
			rp.Joined, rs.Joined, rp.Left, rs.Left, rp.UpdatedKNodes, rs.UpdatedKNodes)
	}
	if len(rp.UserIDs) != len(rs.UserIDs) {
		t.Fatalf("UserIDs length %d vs %d", len(rp.UserIDs), len(rs.UserIDs))
	}
	for i := range rp.UserIDs {
		if rp.UserIDs[i] != rs.UserIDs[i] {
			t.Fatalf("UserIDs[%d] = %d vs %d", i, rp.UserIDs[i], rs.UserIDs[i])
		}
	}
	if len(rp.Encryptions) != len(rs.Encryptions) {
		t.Fatalf("encryption count %d vs %d", len(rp.Encryptions), len(rs.Encryptions))
	}
	for i := range rp.Encryptions {
		ep, es := rp.Encryptions[i], rs.Encryptions[i]
		if ep.ID != es.ID {
			t.Fatalf("Encryptions[%d].ID = %d vs %d", i, ep.ID, es.ID)
		}
		if !bytes.Equal(ep.Wrapped[:], es.Wrapped[:]) {
			t.Fatalf("Encryptions[%d] (ID %d) ciphertext differs:\n  par %x\n  seq %x",
				i, ep.ID, ep.Wrapped, es.Wrapped)
		}
	}
	// The segment index must agree with a linear scan on both results.
	for _, r := range []*BatchResult{rp, rs} {
		for i, e := range r.Encryptions {
			j, ok := r.lookup(int(e.ID))
			if !ok || j != i {
				t.Fatalf("lookup(%d) = (%d, %v), want (%d, true)", e.ID, j, ok, i)
			}
		}
		if _, ok := r.lookup(-1); ok {
			t.Fatal("lookup(-1) found an encryption")
		}
	}
}

// TestProcessBatchMatchesSeqRandomSchedules runs randomized join/leave
// schedules through both pipelines and requires byte-identical results
// at every batch, across degrees and worker counts.
func TestProcessBatchMatchesSeqRandomSchedules(t *testing.T) {
	for _, tc := range []struct {
		d, workers int
		seed       uint64
	}{
		{2, 0, 101},
		{3, 2, 102},
		{4, 0, 103},
		{4, 3, 104},
		{5, 8, 105},
	} {
		t.Run(fmt.Sprintf("d=%d,workers=%d", tc.d, tc.workers), func(t *testing.T) {
			p := newDiffPair(tc.d, tc.seed, tc.workers)
			rng := rand.New(rand.NewPCG(tc.seed, 77))
			next := Member(0)
			var present []Member

			for batch := 0; batch < 25; batch++ {
				nJoin := rng.IntN(40)
				nLeave := 0
				if len(present) > 0 {
					nLeave = rng.IntN(len(present) + 1)
				}
				joins := make([]Member, nJoin)
				for i := range joins {
					joins[i] = next
					next++
				}
				rng.Shuffle(len(present), func(i, j int) {
					present[i], present[j] = present[j], present[i]
				})
				leaves := append([]Member(nil), present[:nLeave]...)
				p.step(t, joins, leaves)
				present = append(present[nLeave:], joins...)
			}
		})
	}
}

// TestProcessBatchMatchesSeqEdgeCases pins the shapes the random walk
// may miss: empty batches, total departure, single-member churn, and
// the J<L prune cascade from a full tree.
func TestProcessBatchMatchesSeqEdgeCases(t *testing.T) {
	p := newDiffPair(4, 42, 0)

	// Empty batch on an empty tree.
	p.step(t, nil, nil)

	// First population.
	joins := make([]Member, 64)
	for i := range joins {
		joins[i] = Member(i)
	}
	p.step(t, joins, nil)

	// Empty batch on a populated tree.
	p.step(t, nil, nil)

	// J == L replacement of a prefix.
	p.step(t, []Member{100, 101, 102}, []Member{0, 1, 2})

	// J < L prune cascade: remove three quarters.
	var leaves []Member
	for i := 3; i < 48; i++ {
		leaves = append(leaves, Member(i))
	}
	p.step(t, []Member{200}, leaves)

	// Total departure.
	var all []Member
	for m := range p.seq.loc {
		all = append(all, m)
	}
	// step shuffles nothing itself; order only affects error paths, and
	// both trees receive the identical slice.
	p.step(t, nil, all)

	// Regrow from empty, one member at a time.
	for i := 0; i < 5; i++ {
		p.step(t, []Member{Member(300 + i)}, nil)
	}

	// Error paths must agree too.
	p.step(t, []Member{300}, nil)      // already present
	p.step(t, nil, []Member{999})      // unknown leave
	p.step(t, []Member{400, 400}, nil) // duplicate join
	p.step(t, nil, []Member{301, 301}) // duplicate leave
}
