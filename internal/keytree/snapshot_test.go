package keytree

import (
	"bytes"
	"testing"

	"repro/internal/keys"
)

// buildSnapshotTree grows a tree through a few churn intervals so the
// snapshot covers joins, leaves and a refilled position.
func buildSnapshotTree(t *testing.T, seed uint64) *Tree {
	t.Helper()
	tr := New(4, keys.NewDeterministicGenerator(seed))
	boot := make([]Member, 300)
	for i := range boot {
		boot[i] = Member(i)
	}
	if _, err := tr.ProcessBatch(boot, nil); err != nil {
		t.Fatal(err)
	}
	leaves := []Member{3, 77, 150, 299}
	joins := []Member{1000, 1001, 1002}
	if _, err := tr.ProcessBatch(joins, leaves); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSnapshotDeterministic(t *testing.T) {
	tr := buildSnapshotTree(t, 7)
	s1 := tr.Snapshot()
	s2 := tr.Snapshot()
	if !bytes.Equal(s1, s2) {
		t.Fatal("two snapshots of the same tree differ")
	}
	if s3 := tr.Clone().Snapshot(); !bytes.Equal(s1, s3) {
		t.Fatal("snapshot of a clone differs from the original's")
	}
	// A restored tree re-snapshots to the identical bytes.
	rt, err := Restore(s1, keys.NewDeterministicGenerator(99))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, rt.Snapshot()) {
		t.Fatal("restore-then-snapshot changed the bytes")
	}
}

func TestSnapshotRoundTripPathKeys(t *testing.T) {
	tr := buildSnapshotTree(t, 11)
	rt, err := Restore(tr.Snapshot(), keys.NewDeterministicGenerator(5))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Degree() != tr.Degree() || rt.Height() != tr.Height() || rt.N() != tr.N() {
		t.Fatalf("shape mismatch: d %d/%d h %d/%d n %d/%d",
			rt.Degree(), tr.Degree(), rt.Height(), tr.Height(), rt.N(), tr.N())
	}
	if rt.MaxKID() != tr.MaxKID() || rt.GroupKey() != tr.GroupKey() {
		t.Fatal("maxKID or group key diverged across restore")
	}
	for _, m := range tr.Members() {
		want, _ := tr.PathKeys(m)
		got, ok := rt.PathKeys(m)
		if !ok {
			t.Fatalf("member %d missing after restore", m)
		}
		if len(got) != len(want) {
			t.Fatalf("member %d: %d path keys, want %d", m, len(got), len(want))
		}
		for id, k := range want {
			if got[id] != k {
				t.Fatalf("member %d: key at node %d diverged", m, id)
			}
		}
	}
}

// TestRestoreThenProcessBatch: two restores of the same snapshot given
// same-seed generators evolve byte-identically, and a restored tree's
// batch output is structurally equal to the original's (same
// encryption IDs; ciphertexts differ because the restored generator
// draws a fresh key stream).
func TestRestoreThenProcessBatch(t *testing.T) {
	tr := buildSnapshotTree(t, 13)
	snap := tr.Snapshot()
	r1, err := Restore(snap, keys.NewDeterministicGenerator(21))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Restore(snap, keys.NewDeterministicGenerator(21))
	if err != nil {
		t.Fatal(err)
	}
	joins := []Member{5000, 5001}
	leaves := []Member{10, 20, 1000}
	b0, err := tr.ProcessBatch(joins, leaves)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.ProcessBatch(joins, leaves)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.ProcessBatch(joins, leaves)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Encryptions) != len(b2.Encryptions) || b1.GroupKey != b2.GroupKey {
		t.Fatal("same-seed restores diverged")
	}
	for i := range b1.Encryptions {
		if b1.Encryptions[i] != b2.Encryptions[i] {
			t.Fatalf("encryption %d differs between same-seed restores", i)
		}
	}
	if len(b0.Encryptions) != len(b1.Encryptions) || b0.MaxKID != b1.MaxKID {
		t.Fatalf("restored tree evolved a different shape: %d encs maxKID %d vs %d encs maxKID %d",
			len(b1.Encryptions), b1.MaxKID, len(b0.Encryptions), b0.MaxKID)
	}
	for i := range b0.Encryptions {
		if b0.Encryptions[i].ID != b1.Encryptions[i].ID {
			t.Fatalf("encryption %d: ID %d vs %d", i, b1.Encryptions[i].ID, b0.Encryptions[i].ID)
		}
	}
	if err := r1.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	tr := buildSnapshotTree(t, 17)
	snap := tr.Snapshot()
	cases := map[string][]byte{
		"empty":     {},
		"magic":     append([]byte("XXSNAP1\n"), snap[8:]...),
		"truncated": snap[:len(snap)-3],
		"trailing":  append(append([]byte(nil), snap...), 0xee),
	}
	// Flip a node kind byte to an invalid value.
	bad := append([]byte(nil), snap...)
	bad[snapHeaderSize] = 0x7f
	cases["badkind"] = bad
	for name, data := range cases {
		if _, err := Restore(data, keys.NewDeterministicGenerator(1)); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

// FuzzSnapshotRestore drives a byte-derived churn schedule, snapshots,
// restores twice and checks restore-then-ProcessBatch equivalence plus
// the tree invariant.
func FuzzSnapshotRestore(f *testing.F) {
	f.Add([]byte{3, 5, 0, 200, 7, 9}, uint8(3))
	f.Add([]byte{10, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Add([]byte{0, 0, 1}, uint8(2))
	f.Fuzz(func(t *testing.T, sched []byte, dRaw uint8) {
		d := 2 + int(dRaw)%4
		tr := New(d, keys.NewDeterministicGenerator(1))
		next := Member(0)
		live := []Member(nil)
		for i := 0; i+1 < len(sched) && i < 12; i += 2 {
			nj := int(sched[i]) % 40
			nl := int(sched[i+1]) % 20
			if nl > len(live) {
				nl = len(live)
			}
			var joins, leaves []Member
			for j := 0; j < nj; j++ {
				joins = append(joins, next)
				next++
			}
			for j := 0; j < nl; j++ {
				// Pick spread-out leavers; indexes shrink as we delete.
				k := (j * 7) % len(live)
				leaves = append(leaves, live[k])
				live = append(live[:k], live[k+1:]...)
			}
			live = append(live, joins...)
			if _, err := tr.ProcessBatch(joins, leaves); err != nil {
				t.Fatal(err)
			}
		}
		snap := tr.Snapshot()
		r1, err := Restore(snap, keys.NewDeterministicGenerator(2))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Restore(snap, keys.NewDeterministicGenerator(2))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, r1.Snapshot()) {
			t.Fatal("restore-then-snapshot changed bytes")
		}
		if len(live) == 0 {
			return
		}
		// One more batch on both restores: must be byte-identical.
		joins := []Member{next, next + 1}
		leaves := []Member{live[0]}
		b1, err := r1.ProcessBatch(joins, leaves)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := r2.ProcessBatch(joins, leaves)
		if err != nil {
			t.Fatal(err)
		}
		if b1.GroupKey != b2.GroupKey || len(b1.Encryptions) != len(b2.Encryptions) {
			t.Fatal("same-seed restores diverged after ProcessBatch")
		}
		for i := range b1.Encryptions {
			if b1.Encryptions[i] != b2.Encryptions[i] {
				t.Fatalf("encryption %d diverged", i)
			}
		}
		if err := r1.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	})
}
