package keytree

// LeftmostCompact is the cheap baseline strategy: it ignores where
// members departed and always packs joiners into the lowest-ID holes of
// the u-region window, splitting only when the window is full. The
// policy is what a naive balanced-tree implementation does and costs
// one O(window) scan per batch; the price is that a departure on the
// right and an arrival on the left mark two root paths where PaperMarking
// would have marked one, so it upper-bounds the encryption counts the
// smarter strategies are judged against.
type LeftmostCompact struct{}

// Name implements Strategy.
func (LeftmostCompact) Name() string { return StrategyLeftmost }

// PlaceBatch implements Strategy.
func (LeftmostCompact) PlaceBatch(ops *TreeOps, joins, leaves []Member) error {
	for _, m := range leaves {
		if _, err := ops.Remove(m); err != nil {
			return err
		}
	}

	i := 0
	if len(joins) > 0 && ops.Empty() {
		ops.SeedRoot(joins[i])
		i++
	}
	if i < len(joins) {
		i += fillWindow(ops, joins[i:])
		splitGrow(ops, joins[i:])
	}

	// Leftmost packing can leave departed positions on the right
	// unfilled even when joiners were available, so the prune cascade
	// runs unconditionally (PaperMarking only needs it when J < L).
	ops.PruneEmptyKNodes()
	ops.PromoteNNodes()
	ops.Relabel()
	return nil
}
