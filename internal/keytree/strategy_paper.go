package keytree

import "sort"

// PaperMarking is the tree-update phase of the paper's marking
// algorithm (Appendix B steps 1-4), extracted behind the Strategy
// interface unchanged: given the same tree and generator state it
// produces byte-identical batches to the pre-strategy monolithic
// ProcessBatch (pinned by TestPaperMarkingGolden). It is the default
// strategy.
//
// Placement policy: departed positions are refilled lowest-ID first in
// join arrival order; when joins outnumber leaves the overflow fills
// the u-region window left to right, then splits expand the tree.
type PaperMarking struct{}

// Name implements Strategy.
func (PaperMarking) Name() string { return StrategyPaper }

// PlaceBatch implements Strategy.
func (PaperMarking) PlaceBatch(ops *TreeOps, joins, leaves []Member) error {
	departed := make([]int, 0, len(leaves))
	for _, m := range leaves {
		id, err := ops.Remove(m)
		if err != nil {
			return err
		}
		departed = append(departed, id)
	}
	sort.Ints(departed)

	J, L := len(joins), len(leaves)
	switch {
	case J == L:
		for i, m := range joins {
			ops.Place(departed[i], m, true)
		}
	case J < L:
		// Fill the J smallest departed positions (they are sorted);
		// the remaining L-J stay n-nodes.
		for i, m := range joins {
			ops.Place(departed[i], m, true)
		}
		// Cascade: k-nodes whose children are all n-nodes become
		// n-nodes, repeated up the tree.
		ops.PruneEmptyKNodes()
	default: // J > L
		for i := 0; i < L; i++ {
			ops.Place(departed[i], joins[i], true)
		}
		placeExtraJoinsPaper(ops, joins[L:])
	}

	// Step 4: any n-node with a descendant u-node becomes a k-node.
	// (Arises when a join fills a position under a pruned subtree.)
	ops.PromoteNNodes()
	ops.Relabel()
	return nil
}

// placeExtraJoinsPaper implements the J > L expansion: fill n-node
// positions with IDs in (nk, d*nk+d], then repeatedly split node nk+1,
// where nk is the maximum k-node ID, updating nk after each split. The
// split node becomes its own leftmost child.
func placeExtraJoinsPaper(ops *TreeOps, extra []Member) {
	i := 0
	if ops.Empty() {
		// Empty tree: seed it by making the root a k-node over a first
		// leaf, then let the regular expansion take over.
		ops.SeedRoot(extra[i])
		i++
	}
	if i >= len(extra) {
		return
	}
	i += fillWindow(ops, extra[i:])
	// Still extra joins: the window is now fully packed, so splitGrow's
	// precondition holds.
	splitGrow(ops, extra[i:])
}
