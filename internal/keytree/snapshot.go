// Snapshot / Restore: a deterministic byte encoding of the full tree
// state, the failover surface shards use to restart mid-run. The
// encoding covers exactly what the server must not lose -- degree,
// height and the node array (kinds, keys, member handles); the loc map
// and the sorted user-ID slice are derived state and are rebuilt on
// restore. The key generator is deliberately NOT serialised: a CSPRNG
// position is not state worth resuming (a restarted shard draws future
// keys from a fresh generator), so Restore takes one explicitly.

package keytree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/keys"
)

// snapMagic identifies and versions the snapshot encoding.
const snapMagic = "KTSNAP1\n"

// snapHeaderSize is magic + d + height + node count.
const snapHeaderSize = len(snapMagic) + 4 + 4 + 8

// Snapshot encodes the tree's full key state as deterministic bytes:
// two snapshots of identical trees are byte-identical, regardless of
// how the trees reached that state. The caller owns the returned slice.
func (t *Tree) Snapshot() []byte {
	size := snapHeaderSize
	for i := range t.nodes {
		switch t.nodes[i].kind {
		case KNode:
			size += 1 + keys.KeySize
		case UNode:
			size += 1 + keys.KeySize + 8
		default:
			size++
		}
	}
	out := make([]byte, 0, size)
	out = append(out, snapMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(t.d))
	out = binary.BigEndian.AppendUint32(out, uint32(t.height))
	out = binary.BigEndian.AppendUint64(out, uint64(len(t.nodes)))
	for i := range t.nodes {
		n := &t.nodes[i]
		out = append(out, byte(n.kind))
		switch n.kind {
		case KNode:
			out = append(out, n.key[:]...)
		case UNode:
			out = append(out, n.key[:]...)
			out = binary.BigEndian.AppendUint64(out, uint64(n.member))
		}
	}
	return out
}

// Restore rebuilds a tree from Snapshot bytes. The generator supplies
// all future key draws (it carries no snapshot state); options
// (WithWorkers, WithObs, WithLite, WithStrategy) configure the restored
// tree exactly as New would. The restored tree is validated with
// CheckInvariant before it is returned.
func Restore(data []byte, gen *keys.Generator, opts ...Option) (*Tree, error) {
	if len(data) < snapHeaderSize || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("keytree: snapshot: bad magic or truncated header")
	}
	p := len(snapMagic)
	d := int(binary.BigEndian.Uint32(data[p:]))
	height := int(binary.BigEndian.Uint32(data[p+4:]))
	count := binary.BigEndian.Uint64(data[p+8:])
	p = snapHeaderSize
	if d < 2 {
		return nil, fmt.Errorf("keytree: snapshot: degree %d < 2", d)
	}
	if height < 1 || height > 64 {
		return nil, fmt.Errorf("keytree: snapshot: height %d out of range", height)
	}
	if want := fullSize(d, height); count != uint64(want) {
		return nil, fmt.Errorf("keytree: snapshot: %d nodes, want %d for d=%d h=%d", count, want, d, height)
	}
	if gen == nil {
		gen = keys.NewGenerator()
	}
	t := &Tree{
		d:      d,
		height: height,
		nodes:  make([]node, count),
		loc:    make(map[Member]int, 64),
		gen:    gen,
		strat:  PaperMarking{},
	}
	for _, o := range opts {
		o(t)
	}
	for id := range t.nodes {
		if p >= len(data) {
			return nil, fmt.Errorf("keytree: snapshot: truncated at node %d", id)
		}
		kind := NodeKind(data[p])
		p++
		switch kind {
		case NNode:
		case KNode:
			if p+keys.KeySize > len(data) {
				return nil, fmt.Errorf("keytree: snapshot: truncated key at node %d", id)
			}
			t.nodes[id].kind = KNode
			copy(t.nodes[id].key[:], data[p:p+keys.KeySize])
			p += keys.KeySize
		case UNode:
			if p+keys.KeySize+8 > len(data) {
				return nil, fmt.Errorf("keytree: snapshot: truncated u-node %d", id)
			}
			t.nodes[id].kind = UNode
			copy(t.nodes[id].key[:], data[p:p+keys.KeySize])
			p += keys.KeySize
			m := Member(binary.BigEndian.Uint64(data[p:]))
			p += 8
			if _, dup := t.loc[m]; dup {
				return nil, fmt.Errorf("keytree: snapshot: member %d appears twice", m)
			}
			t.nodes[id].member = m
			t.loc[m] = id
			t.uids = append(t.uids, id)
		default:
			return nil, fmt.Errorf("keytree: snapshot: node %d has invalid kind %d", id, kind)
		}
	}
	if p != len(data) {
		return nil, fmt.Errorf("keytree: snapshot: %d trailing bytes", len(data)-p)
	}
	if err := t.CheckInvariant(); err != nil {
		return nil, fmt.Errorf("keytree: snapshot: restored tree invalid: %w", err)
	}
	return t, nil
}
