package keytree

import "sort"

// BatchPlace co-optimises the batch's inserts and deletes jointly,
// after the difference-of-convex (DC) placement view of batch rekeying:
// every candidate slot (a position vacated this interval or a hole
// inherited from earlier ones) is priced by the marginal number of
// encryptions filling it would add -- the cost of newly marking its
// yet-unmarked ancestors minus the prune savings the tree would have
// enjoyed had the slot stayed empty -- and joiners go to the cheapest
// slots first. Costs are re-evaluated as the marked region grows, so a
// second joiner placed under a freshly-marked subtree is recognised as
// nearly free, which is exactly the clustering PaperMarking's
// lowest-ID-first refill cannot see.
//
// Above adaptiveCostBudget cost-times-candidate work the adaptive
// re-evaluation falls back to a one-shot ranking: with that much churn
// the marked region converges after a handful of placements and the
// refinement's win is marginal, while the exact greedy would go
// quadratic.
type BatchPlace struct{}

// Name implements Strategy.
func (BatchPlace) Name() string { return StrategyBatchPlace }

const adaptiveCostBudget = 1 << 24

// PlaceBatch implements Strategy.
func (BatchPlace) PlaceBatch(ops *TreeOps, joins, leaves []Member) error {
	departed := make([]int, 0, len(leaves))
	for _, m := range leaves {
		id, err := ops.Remove(m)
		if err != nil {
			return err
		}
		departed = append(departed, id)
	}

	i := 0
	if len(joins) > 0 && ops.Empty() {
		ops.SeedRoot(joins[i])
		i++
	}
	if i < len(joins) {
		placed := placeCheapestFirst(ops, joins[i:], departed)
		i += placed
		// Leftover joiners mean every candidate slot is occupied: the
		// window is fully packed, splitGrow's precondition.
		splitGrow(ops, joins[i:])
	}

	ops.PruneEmptyKNodes()
	ops.PromoteNNodes()
	ops.Relabel()
	return nil
}

// placeCheapestFirst fills up to len(extra) candidate slots of the
// u-region window in marginal-cost order and returns how many joiners
// it placed (the rest overflow to splits).
func placeCheapestFirst(ops *TreeOps, extra []Member, departed []int) int {
	nk := ops.MaxKID()
	if nk < 0 {
		return 0
	}
	hi := ops.Degree()*nk + ops.Degree()
	ops.GrowTo(hi)

	// All u-nodes -- hence all holes -- live in (nk, d*nk+d]: Lemma 4.1
	// bounds them below by nk, and a u-node's parent is a k-node <= nk.
	cands := make([]int, 0, len(departed))
	for id := nk + 1; id <= hi; id++ {
		if ops.Kind(id) == NNode {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return 0
	}

	if len(extra) >= len(cands) {
		// Every slot gets filled; cost order is irrelevant (joiners are
		// interchangeable), so fill in ascending ID order.
		for j, id := range cands {
			ops.Place(id, extra[j], ops.VacatedThisBatch(id))
		}
		return len(cands)
	}

	// alive[id]: does the subtree at id still hold a user after the
	// removals? Dead k-nodes are the prune savings the cost model must
	// not spend: marking them is only paid for slots that resurrect
	// them.
	alive := make([]bool, ops.Len())
	d := ops.Degree()
	for id := ops.Len() - 1; id >= 0; id-- {
		if ops.Kind(id) == UNode {
			alive[id] = true
			continue
		}
		first := d*id + 1
		for c := first; c < first+d && c < len(alive); c++ {
			if alive[c] {
				alive[id] = true
				break
			}
		}
	}

	// Ancestors that rekey regardless of placement: every surviving
	// ancestor of a departure is marked already (its key is compromised
	// by the leaver), so slots under them are cheap.
	marked := make(map[int]bool, len(departed)*2)
	for _, v := range departed {
		for a := ops.Parent(v); a >= 0; a = ops.Parent(a) {
			if marked[a] {
				break
			}
			if alive[a] {
				marked[a] = true
			}
		}
	}

	n := len(extra)
	costs := make([]int, len(cands))
	for j, id := range cands {
		costs[j] = bpMarginalCost(ops, alive, marked, id)
	}
	order := make([]int, len(cands))
	for j := range order {
		order[j] = j
	}
	adaptive := n*len(cands) <= adaptiveCostBudget

	if !adaptive {
		sort.Slice(order, func(a, b int) bool {
			ja, jb := order[a], order[b]
			if costs[ja] != costs[jb] {
				return costs[ja] < costs[jb]
			}
			return cands[ja] < cands[jb]
		})
		for j := 0; j < n; j++ {
			id := cands[order[j]]
			bpCommit(ops, alive, marked, id)
			ops.Place(id, extra[j], ops.VacatedThisBatch(id))
		}
		return n
	}

	taken := make([]bool, len(cands))
	for j := 0; j < n; j++ {
		best := -1
		for k, id := range cands {
			if taken[k] {
				continue
			}
			// Marginal costs only shrink as the marked region grows,
			// so refresh before comparing.
			costs[k] = bpMarginalCost(ops, alive, marked, id)
			if best < 0 || costs[k] < costs[best] || (costs[k] == costs[best] && id < cands[best]) {
				best = k
			}
		}
		id := cands[best]
		taken[best] = true
		bpCommit(ops, alive, marked, id)
		ops.Place(id, extra[j], ops.VacatedThisBatch(id))
	}
	return n
}

// bpMarginalCost prices filling hole h: one encryption for h's own
// edge, plus -- for every ancestor not yet committed to rekeying -- the
// encryptions marking it would emit: one per already-live child, plus
// one for the path child when the placement resurrects a dead branch.
// The walk stops at the first marked ancestor (everything above a
// marked node is marked too).
func bpMarginalCost(ops *TreeOps, alive []bool, marked map[int]bool, h int) int {
	cost := 1
	prevDead := true // the hole itself is dead until filled
	d := ops.Degree()
	for a := ops.Parent(h); a >= 0; a = ops.Parent(a) {
		if marked[a] {
			if prevDead {
				cost++ // the resurrected branch adds one edge under a
			}
			break
		}
		if alive[a] {
			lc := 0
			first := d*a + 1
			for c := first; c < first+d && c < len(alive); c++ {
				if alive[c] {
					lc++
				}
			}
			if prevDead {
				lc++
			}
			cost += lc
			prevDead = false
		} else {
			// Dead ancestor (to-be-pruned k-node or inherited n-node):
			// resurrecting it emits exactly one edge, the path child.
			cost++
			prevDead = true
		}
	}
	return cost
}

// bpCommit records the placement at h in the cost model: the whole
// ancestor chain is now alive and committed to rekeying.
func bpCommit(ops *TreeOps, alive []bool, marked map[int]bool, h int) {
	if h < len(alive) {
		alive[h] = true
	}
	for a := ops.Parent(h); a >= 0; a = ops.Parent(a) {
		if marked[a] {
			break
		}
		marked[a] = true
		if a < len(alive) {
			alive[a] = true
		}
	}
}
