package keytree

// bitset is a growable bit vector indexed by node ID. The marking
// algorithm previously tracked join/replace/vacated positions in
// map[int]bool sets; at batch sizes of 10^5-10^6 the map inserts and
// hashed lookups dominated the bookkeeping, while a bitset costs one
// word op per mark and is read millions of times during relabelling.
type bitset struct {
	w []uint64
}

// set marks bit i, growing the backing storage as needed.
func (b *bitset) set(i int) {
	word := i >> 6
	for word >= len(b.w) {
		b.w = append(b.w, 0)
	}
	b.w[word] |= 1 << (uint(i) & 63)
}

// clear unmarks bit i (a no-op beyond the allocated words).
func (b *bitset) clear(i int) {
	if word := i >> 6; word < len(b.w) {
		b.w[word] &^= 1 << (uint(i) & 63)
	}
}

// get reports whether bit i is marked; bits beyond the allocated words
// are unmarked.
func (b *bitset) get(i int) bool {
	word := i >> 6
	return word < len(b.w) && b.w[word]&(1<<(uint(i)&63)) != 0
}
