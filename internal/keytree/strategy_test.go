package keytree

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/keys"
	"repro/internal/obs"
)

func TestStrategyRegistry(t *testing.T) {
	names := StrategyNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("StrategyNames not sorted: %v", names)
	}
	for _, want := range []string{StrategyPaper, StrategyBatchPlace, StrategyLeftmost} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("strategy %q not registered (have %v)", want, names)
		}
		s, err := NewStrategy(want)
		if err != nil {
			t.Fatalf("NewStrategy(%q): %v", want, err)
		}
		if s.Name() != want {
			t.Errorf("NewStrategy(%q).Name() = %q", want, s.Name())
		}
	}

	s, err := NewStrategy("")
	if err != nil {
		t.Fatalf("empty strategy name: %v", err)
	}
	if s.Name() != StrategyPaper {
		t.Errorf("empty name resolved to %q, want %q", s.Name(), StrategyPaper)
	}

	if _, err := NewStrategy("no-such-strategy"); err == nil {
		t.Error("unknown strategy name accepted")
	} else if !strings.Contains(err.Error(), "no-such-strategy") {
		t.Errorf("unknown-strategy error %q does not name the strategy", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterStrategy did not panic")
		}
	}()
	RegisterStrategy(StrategyPaper, func() Strategy { return PaperMarking{} })
}

// TestTreeDefaults: a bare New uses PaperMarking; WithStrategy(nil)
// keeps it; Clone carries the strategy.
func TestTreeDefaults(t *testing.T) {
	tr := New(4, keys.NewDeterministicGenerator(1))
	if tr.StrategyName() != StrategyPaper {
		t.Errorf("default strategy = %q, want %q", tr.StrategyName(), StrategyPaper)
	}
	tr = New(4, keys.NewDeterministicGenerator(1), WithStrategy(nil))
	if tr.StrategyName() != StrategyPaper {
		t.Errorf("WithStrategy(nil) replaced the default with %q", tr.StrategyName())
	}
	tr = New(4, keys.NewDeterministicGenerator(1), WithStrategy(LeftmostCompact{}))
	if got := tr.Clone().StrategyName(); got != StrategyLeftmost {
		t.Errorf("Clone strategy = %q, want %q", got, StrategyLeftmost)
	}
}

// TestWithLiteMatchesFullCounts: a lite tree emits the same
// encryption IDs and counts as a full tree, just without ciphertext.
func TestWithLiteMatchesFullCounts(t *testing.T) {
	reg := obs.New()
	full := New(3, keys.NewDeterministicGenerator(42),
		WithWorkers(2), WithObs(reg), WithLite(false))

	joins := make([]Member, 50)
	for i := range joins {
		joins[i] = Member(i)
	}
	r1, err := full.ProcessBatch(joins, nil)
	if err != nil {
		t.Fatal(err)
	}

	lite := New(3, keys.NewDeterministicGenerator(42), WithLite(true))
	r3, err := lite.ProcessBatch(joins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Encryptions) != len(r1.Encryptions) {
		t.Fatalf("lite emitted %d encryptions, full %d", len(r3.Encryptions), len(r1.Encryptions))
	}
	if r3.Encryptions[0].Wrapped != [keys.WrappedSize]byte{} {
		t.Error("WithLite(true) still materialised ciphertext")
	}
}

// costSchedule drives the fixed two-interval schedule that separates
// the strategies: a bootstrap, then clustered departures on the left
// and right edges, then a batch whose departures extend the right
// cluster while more joiners arrive than left. Returns the final
// batch's encryption count.
func costSchedule(t *testing.T, name string) int {
	t.Helper()
	s, err := NewStrategy(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(4, keys.NewDeterministicGenerator(11), WithStrategy(s))
	boot := make([]Member, 1024)
	for i := range boot {
		boot[i] = Member(i)
	}
	if _, err := tr.ProcessBatch(boot, nil); err != nil {
		t.Fatal(err)
	}
	var lv []Member
	for i := 0; i < 64; i++ {
		lv = append(lv, Member(i))
	}
	for i := 900; i < 964; i++ {
		lv = append(lv, Member(i))
	}
	if _, err := tr.ProcessBatch(nil, lv); err != nil {
		t.Fatal(err)
	}
	var lv2 []Member
	for i := 964; i < 1000; i++ {
		lv2 = append(lv2, Member(i))
	}
	jn := make([]Member, 68)
	for i := range jn {
		jn[i] = Member(100000 + i)
	}
	res, err := tr.ProcessBatch(jn, lv2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return len(res.Encryptions)
}

// TestBatchPlaceBeatsBaselines pins the strategies' relative encryption
// cost on a schedule with holes in both marked and unmarked regions:
// BatchPlace routes the surplus joiners into holes whose root paths this
// batch's departures already marked, PaperMarking refills departures but
// sends the surplus to the lowest IDs regardless of marking, and
// LeftmostCompact ignores departure positions entirely. Each choice
// marks strictly more fresh root paths than the one before it.
func TestBatchPlaceBeatsBaselines(t *testing.T) {
	bp := costSchedule(t, StrategyBatchPlace)
	pm := costSchedule(t, StrategyPaper)
	lc := costSchedule(t, StrategyLeftmost)
	t.Logf("encryptions: batchplace=%d paper=%d leftmost=%d", bp, pm, lc)
	if bp >= pm {
		t.Errorf("batchplace emitted %d encryptions, paper %d; want strictly fewer", bp, pm)
	}
	if pm >= lc {
		t.Errorf("paper emitted %d encryptions, leftmost %d; want strictly fewer", pm, lc)
	}
}

// TestAppendUserNeeds: the append forms match the allocating forms and
// honour a reused buffer.
func TestAppendUserNeeds(t *testing.T) {
	tr := New(4, keys.NewDeterministicGenerator(3))
	joins := make([]Member, 200)
	for i := range joins {
		joins[i] = Member(i)
	}
	if _, err := tr.ProcessBatch(joins, nil); err != nil {
		t.Fatal(err)
	}
	res, err := tr.ProcessBatch([]Member{300, 301}, []Member{5, 90, 150})
	if err != nil {
		t.Fatal(err)
	}

	var encBuf []Encryption
	var idBuf []uint32
	for _, uid := range res.UserIDs {
		wantE := res.UserNeeds(uid)
		encBuf = res.AppendUserNeeds(encBuf[:0], uid)
		if len(encBuf) != len(wantE) {
			t.Fatalf("user %d: AppendUserNeeds len %d, UserNeeds len %d", uid, len(encBuf), len(wantE))
		}
		for i := range wantE {
			if encBuf[i] != wantE[i] {
				t.Fatalf("user %d: encryption %d differs", uid, i)
			}
		}
		wantIDs := res.UserNeedIDs(uid)
		idBuf = res.AppendUserNeedIDs(idBuf[:0], uid)
		if len(idBuf) != len(wantIDs) {
			t.Fatalf("user %d: AppendUserNeedIDs len %d, UserNeedIDs len %d", uid, len(idBuf), len(wantIDs))
		}
		for i := range wantIDs {
			if idBuf[i] != wantIDs[i] {
				t.Fatalf("user %d: need ID %d differs", uid, i)
			}
		}
	}

	// Appending to a non-empty prefix preserves it.
	prefix := []uint32{7, 8, 9}
	got := res.AppendUserNeedIDs(prefix, res.UserIDs[0])
	if len(got) < 3 || got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Error("AppendUserNeedIDs clobbered the existing prefix")
	}

	// With a warm buffer of sufficient capacity, no allocation.
	warm := make([]uint32, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		for _, uid := range res.UserIDs {
			warm = res.AppendUserNeedIDs(warm[:0], uid)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendUserNeedIDs with warm buffer allocates %.1f times per sweep", allocs)
	}
}
