package keytree

import (
	"testing"

	"repro/internal/keys"
)

// FuzzStrategyEquivalence feeds identical byte-driven batch schedules
// (see fuzzScript) to every registered placement strategy and checks,
// after every batch and for every strategy: the tree invariant holds,
// and every member -- replaying only the maxKID field and the
// encryptions addressed to it through its client-side UserView --
// arrives at that tree's group key. Strategies place differently and
// consume the generator differently, so cross-strategy outputs are not
// compared byte-for-byte; what must be equivalent is the contract:
// valid tree, every member deliverable, group key agreed.
func FuzzStrategyEquivalence(f *testing.F) {
	f.Add([]byte{0x02, 0x76, 0x05, 0x0f, 0x00, 0x3c, 0x14, 0x01, 0x0a, 0x00, 0x03, 0x28, 0x1f, 0x02, 0x00})
	f.Add([]byte{0x00, 0x1e, 0x09, 0x1f, 0x00, 0x02, 0x1f, 0x03, 0x05, 0x1f, 0x01, 0x01})
	f.Add([]byte{0x04, 0xfa, 0x03, 0x00, 0x01, 0xc8, 0x19, 0x02, 0x1e, 0x0a, 0x00, 0x50})
	f.Fuzz(func(t *testing.T, data []byte) {
		script, ok := parseFuzzScript(data)
		if !ok {
			return
		}
		for _, name := range StrategyNames() {
			strat, err := NewStrategy(name)
			if err != nil {
				t.Fatal(err)
			}
			tr := New(script.d, keys.NewDeterministicGenerator(script.seed), WithStrategy(strat))
			views := make(map[Member]*UserView)

			apply := func(round int, joins, leaves []Member) {
				res, err := tr.ProcessBatch(joins, leaves)
				if err != nil {
					t.Fatalf("%s round %d (d=%d, j=%d, l=%d): %v",
						name, round, script.d, len(joins), len(leaves), err)
				}
				if err := tr.CheckInvariant(); err != nil {
					t.Fatalf("%s round %d: invariant: %v", name, round, err)
				}
				for _, m := range leaves {
					delete(views, m)
				}
				for _, m := range joins {
					uid, ok := tr.UserID(m)
					if !ok {
						t.Fatalf("%s round %d: joiner %d not placed", name, round, m)
					}
					ik, _ := tr.IndividualKey(m)
					views[m] = NewUserView(script.d, m, uid, ik)
				}
				for m, v := range views {
					uid, ok := tr.UserID(m)
					if !ok {
						t.Fatalf("%s round %d: member %d lost", name, round, m)
					}
					if err := v.Apply(res.MaxKID, res.UserNeeds(uid)); err != nil {
						t.Fatalf("%s round %d: member %d replay: %v", name, round, m, err)
					}
					if v.ID != uid {
						t.Fatalf("%s round %d: member %d rederived ID %d, tree has %d",
							name, round, m, v.ID, uid)
					}
					gk, ok := v.GroupKey()
					if !ok || gk != res.GroupKey {
						t.Fatalf("%s round %d: member %d disagrees on the group key", name, round, m)
					}
				}
			}

			boot := make([]Member, script.base)
			for i := range boot {
				boot[i] = Member(i)
			}
			apply(-1, boot, nil)
			next := Member(script.base)
			for r := 0; r < script.rounds(); r++ {
				joins, leaves := script.churn(r, tr.Members(), &next)
				if len(joins) == 0 && len(leaves) == 0 {
					continue
				}
				apply(r, joins, leaves)
			}
		}
	})
}
