package keytree

import (
	"math/rand/v2"
	"testing"
)

// TestJLessThanLFillsSmallestPositions checks the Appendix B rule: with
// J < L, the J joins replace the departed u-nodes with the smallest IDs.
func TestJLessThanLFillsSmallestPositions(t *testing.T) {
	tr := newTestTree(t, 4, 30)
	populate(t, tr, 16)
	// Depart members at four known positions; add one join.
	leavers := []Member{2, 7, 11, 14}
	var departedIDs []int
	for _, m := range leavers {
		id, _ := tr.UserID(m)
		departedIDs = append(departedIDs, id)
	}
	minID := departedIDs[0]
	for _, id := range departedIDs {
		if id < minID {
			minID = id
		}
	}
	if _, err := tr.ProcessBatch([]Member{99}, leavers); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.UserID(Member(99))
	if !ok || got != minID {
		t.Fatalf("join placed at node %d, want smallest departed %d", got, minID)
	}
}

// TestGrowthByManySmallBatches grows a group one small join batch at a
// time, checking the invariant and Theorem 4.2 rederivation for every
// member after every batch.
func TestGrowthByManySmallBatches(t *testing.T) {
	const d = 4
	tr := newTestTree(t, d, 31)
	rng := rand.New(rand.NewPCG(31, 31))
	next := Member(0)
	// Track each member's last known ID as a client would.
	lastID := map[Member]int{}
	for batch := 0; batch < 60; batch++ {
		n := rng.IntN(7) + 1
		joins := make([]Member, n)
		for i := range joins {
			joins[i] = next
			next++
		}
		res, err := tr.ProcessBatch(joins, nil)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if err := tr.CheckInvariant(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		// Existing members rederive their IDs from maxKID alone.
		for m, old := range lastID {
			derived, ok := NewID(d, old, res.MaxKID)
			if !ok {
				t.Fatalf("batch %d: member %d cannot rederive from %d", batch, m, old)
			}
			actual, _ := tr.UserID(m)
			if derived != actual {
				t.Fatalf("batch %d: member %d derived %d, actual %d", batch, m, derived, actual)
			}
			lastID[m] = derived
		}
		for _, m := range joins {
			id, _ := tr.UserID(m)
			lastID[m] = id
		}
	}
	if tr.N() != int(next) {
		t.Fatalf("N = %d, want %d", tr.N(), next)
	}
}

// TestShrinkThenGrow alternates heavy departures with heavy joins,
// stressing pruning, promotion and splitting together.
func TestShrinkThenGrow(t *testing.T) {
	tr := newTestTree(t, 3, 32)
	populate(t, tr, 200)
	rng := rand.New(rand.NewPCG(32, 32))
	next := Member(200)
	for cycle := 0; cycle < 8; cycle++ {
		// Remove ~60% of members.
		members := tr.Members()
		perm := rng.Perm(len(members))
		nl := len(members) * 6 / 10
		leaves := make([]Member, nl)
		for i := 0; i < nl; i++ {
			leaves[i] = members[perm[i]]
		}
		if _, err := tr.ProcessBatch(nil, leaves); err != nil {
			t.Fatalf("cycle %d shrink: %v", cycle, err)
		}
		if err := tr.CheckInvariant(); err != nil {
			t.Fatalf("cycle %d shrink: %v", cycle, err)
		}
		// Add back more than departed.
		nj := nl + rng.IntN(50)
		joins := make([]Member, nj)
		for i := range joins {
			joins[i] = next
			next++
		}
		if _, err := tr.ProcessBatch(joins, nil); err != nil {
			t.Fatalf("cycle %d grow: %v", cycle, err)
		}
		if err := tr.CheckInvariant(); err != nil {
			t.Fatalf("cycle %d grow: %v", cycle, err)
		}
	}
}

// TestMixedBatchKeysDeliverable runs a mixed J>L batch and confirms every
// member (old, moved, replaced, new) can derive the full key path from
// its needed encryptions.
func TestMixedBatchKeysDeliverable(t *testing.T) {
	const d = 4
	tr := newTestTree(t, d, 33)
	populate(t, tr, 85) // not a power of d: exercises partial levels
	views := map[Member]*UserView{}
	res0, err := tr.ProcessBatch(nil, []Member{0}) // prime views with a trivial batch
	if err != nil {
		t.Fatal(err)
	}
	_ = res0
	for _, m := range tr.Members() {
		id, _ := tr.UserID(m)
		ik, _ := tr.IndividualKey(m)
		v := NewUserView(d, m, id, ik)
		// Seed the view with the server's current path keys (as if it
		// had followed all prior intervals).
		pk, _ := tr.PathKeys(m)
		for nid, k := range pk {
			v.Keys[nid] = k
		}
		views[m] = v
	}
	joins := make([]Member, 40)
	for i := range joins {
		joins[i] = Member(1000 + i)
	}
	res, err := tr.ProcessBatch(joins, []Member{5, 17, 33, 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []Member{5, 17, 33, 60} {
		delete(views, m)
	}
	for _, m := range joins {
		id, _ := tr.UserID(m)
		ik, _ := tr.IndividualKey(m)
		views[m] = NewUserView(d, m, id, ik)
	}
	for m, v := range views {
		newID, ok := NewID(d, v.ID, res.MaxKID)
		if !ok {
			t.Fatalf("member %d: no ID", m)
		}
		if err := v.Apply(res.MaxKID, res.UserNeeds(newID)); err != nil {
			t.Fatalf("member %d: %v", m, err)
		}
		gk, ok := v.GroupKey()
		if !ok || gk != tr.GroupKey() {
			t.Fatalf("member %d: wrong group key", m)
		}
	}
}

// TestEncryptionIDsAreChildNodes verifies the identification rule: an
// encryption's ID is the encrypting (child) node, and the encrypted key
// belongs to its parent -- derivable from the ID alone.
func TestEncryptionIDsAreChildNodes(t *testing.T) {
	tr := newTestTree(t, 4, 34)
	populate(t, tr, 64)
	res, err := tr.ProcessBatch(nil, []Member{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, e := range res.Encryptions {
		if e.ID == 0 {
			t.Fatal("encryption keyed by the root")
		}
		if seen[e.ID] {
			t.Fatalf("encrypting key %d used twice", e.ID)
		}
		seen[e.ID] = true
	}
}
