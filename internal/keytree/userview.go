package keytree

import (
	"fmt"

	"repro/internal/keys"
)

// UserView is the client-side key state of one group member: its current
// u-node ID and the keys it holds, indexed by node ID. A member never
// sees the tree; it maintains this view purely from the maxKID field and
// the encryptions addressed to it in each rekey message.
type UserView struct {
	Member Member
	// D is the key tree degree, a group constant learned at registration.
	D int
	// ID is the member's current u-node ID.
	ID int
	// Keys holds the member's individual key (at Keys[ID]) and the keys
	// of the k-nodes on its path to the root, as far as it has learned
	// them. Keys[0] is the group key.
	Keys map[int]keys.Key
	// uctx is the cached unwrap context the ingest path re-keys per
	// path edge, lazily built on first Apply.
	uctx *keys.UnwrapContext
}

// NewUserView returns the view a member holds right after registration:
// its assigned u-node ID and individual key, and nothing else (the path
// keys arrive with its first rekey message).
func NewUserView(d int, m Member, id int, individual keys.Key) *UserView {
	return &UserView{
		Member: m,
		D:      d,
		ID:     id,
		Keys:   map[int]keys.Key{id: individual},
	}
}

// GroupKey returns the group key as this member currently knows it,
// and whether the member has learned one yet.
func (u *UserView) GroupKey() (keys.Key, bool) {
	k, ok := u.Keys[0]
	return k, ok
}

// Apply consumes one rekey message's worth of encryptions addressed to
// this member. maxKID is the maximum k-node ID after the batch (field 5
// of every ENC packet); encs may be in any order and may contain
// encryptions for other members, which are ignored.
//
// Apply first rederives the member's ID per Theorem 4.2 (the ID changes
// when the server split the member's node to expand the tree), then
// walks its path bottom-up, unwrapping each parent key with the key
// below it.
func (u *UserView) Apply(maxKID int, encs []Encryption) error {
	newID, ok := NewID(u.D, u.ID, maxKID)
	if !ok {
		return fmt.Errorf("keytree: member %d: no valid ID for old ID %d with maxKID %d (evicted?)", u.Member, u.ID, maxKID)
	}
	if newID != u.ID {
		// The individual key travels with the member; the old position
		// is now an ancestor k-node whose key arrives by encryption.
		u.Keys[newID] = u.Keys[u.ID]
		delete(u.Keys, u.ID)
		u.ID = newID
	}

	byID := make(map[int]Encryption, len(encs))
	for _, e := range encs {
		byID[int(e.ID)] = e
	}
	for cur := u.ID; cur != 0; {
		parent := ParentID(u.D, cur)
		e, ok := byID[cur]
		if !ok {
			// No encryption keyed by this node: the parent's key did
			// not change this interval; keep whatever we hold.
			cur = parent
			continue
		}
		holding, ok := u.Keys[cur]
		if !ok {
			return fmt.Errorf("keytree: member %d: needs key of node %d to unwrap node %d's key, but does not hold it", u.Member, cur, parent)
		}
		if u.uctx == nil {
			u.uctx = keys.NewUnwrapContext(holding)
		} else {
			u.uctx.SetKey(holding)
		}
		parentKey, err := u.uctx.Unwrap(e.Wrapped)
		if err != nil {
			return fmt.Errorf("keytree: member %d: unwrapping key of node %d: %w", u.Member, parent, err)
		}
		u.Keys[parent] = parentKey
		cur = parent
	}
	return nil
}
