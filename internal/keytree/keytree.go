// Package keytree implements the logical key hierarchy (LKH) used by the
// group key management component: a rooted key tree of degree d whose
// root holds the group key, whose internal k-nodes hold auxiliary keys,
// and whose u-nodes hold users' individual keys.
//
// Node identification follows the paper's scheme exactly: the tree is
// conceptually expanded to a full, balanced tree by adding null n-nodes,
// and nodes are numbered top-down, left-to-right starting from 0, so the
// children of node m are d*m+1 .. d*m+d and the parent of m is
// floor((m-1)/d). The package maintains the Lemma 4.1 invariant (every
// k-node ID is smaller than every u-node ID) and provides the Theorem 4.2
// rederivation by which a user computes its post-batch ID from its old ID
// and the maximum current k-node ID alone.
//
// ProcessBatch applies J join and L leave requests collected over a
// rekey interval, relabels the rekey subtree
// (Unchanged/Join/Leave/Replace), generates new keys for every updated
// k-node, and emits one encryption {parentKey}_childKey per
// rekey-subtree edge, bottom-up -- the workload handed to rekey
// transport. Batch placement and marking are pluggable: a TreeStrategy
// (see strategy.go) decides where joiners land and which subtrees
// rekey; the default PaperMarking strategy is the marking algorithm of
// the paper's Appendix B.
package keytree

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/keys"
	"repro/internal/obs"
)

// NodeKind distinguishes the three node types of the expanded key tree.
type NodeKind uint8

// Node kinds.
const (
	NNode NodeKind = iota // null: padding in the expanded tree
	KNode                 // key node: group key or auxiliary key
	UNode                 // user node: an individual key
)

func (k NodeKind) String() string {
	switch k {
	case NNode:
		return "n-node"
	case KNode:
		return "k-node"
	case UNode:
		return "u-node"
	}
	return fmt.Sprintf("NodeKind(%d)", uint8(k))
}

// Label is a rekey-subtree marking.
type Label uint8

// Rekey subtree labels, per the marking algorithm.
const (
	Unchanged Label = iota
	Join
	Leave
	Replace
)

func (l Label) String() string {
	switch l {
	case Unchanged:
		return "Unchanged"
	case Join:
		return "Join"
	case Leave:
		return "Leave"
	case Replace:
		return "Replace"
	}
	return fmt.Sprintf("Label(%d)", uint8(l))
}

// Member is an application-level member handle, stable across the
// member's lifetime in the group (node IDs are not: they can change when
// the tree is restructured).
type Member int64

type node struct {
	kind   NodeKind
	key    keys.Key
	member Member
	label  Label // scratch, valid only during ProcessBatch
}

// Tree is the key server's key tree. It is not safe for concurrent
// mutation; the key server serialises batches. ProcessBatch fans the
// wrap-emission phase out across a worker pool internally, but the
// caller still sees one synchronous call.
type Tree struct {
	d      int
	height int // depth of the deepest level; root is level 0
	nodes  []node
	loc    map[Member]int // member -> u-node ID
	// uids is the sorted list of current u-node IDs, maintained
	// incrementally across batches (the Lemma 4.1 invariant keeps
	// membership changes clustered, so a merge of the per-batch
	// removals/additions replaces the old per-batch full sort).
	uids []int
	gen  *keys.Generator
	// lite skips ciphertext materialisation in ProcessBatch: encryption
	// IDs and counts are exact but Wrapped stays zero. Transport
	// experiments that only need packet bookkeeping use it to avoid
	// paying for AES on hundreds of simulated rekey messages.
	lite bool
	// workers bounds the goroutines of the parallel wrap-emission phase;
	// <= 0 means GOMAXPROCS (resolved via internal/tuning).
	workers int
	// reg receives pipeline metrics (keys generated, wraps, wrap ns);
	// nil costs only a nil check.
	reg *obs.Registry
	// strat owns batch placement and marking; never nil (defaults to
	// PaperMarking).
	strat Strategy
}

// New returns an empty key tree of the given degree (d >= 2), using the
// PaperMarking placement strategy unless WithStrategy overrides it.
func New(d int, gen *keys.Generator, opts ...Option) *Tree {
	if d < 2 {
		panic(fmt.Sprintf("keytree: degree %d < 2", d))
	}
	if gen == nil {
		gen = keys.NewGenerator()
	}
	t := &Tree{
		d:      d,
		height: 1,
		nodes:  make([]node, fullSize(d, 1)),
		loc:    make(map[Member]int),
		gen:    gen,
		strat:  PaperMarking{},
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// StrategyName returns the name of the tree's placement strategy.
func (t *Tree) StrategyName() string { return t.strat.Name() }

// fullSize returns the node count of a full, balanced tree of the given
// degree and height: (d^(h+1)-1)/(d-1).
func fullSize(d, h int) int {
	size := 1
	level := 1
	for i := 0; i < h; i++ {
		level *= d
		size += level
	}
	return size
}

// Degree returns the key tree degree d.
func (t *Tree) Degree() int { return t.d }

// Height returns the depth of the deepest tree level (root is level 0).
func (t *Tree) Height() int { return t.height }

// N returns the current number of users in the group.
func (t *Tree) N() int { return len(t.loc) }

// Parent returns the parent ID of node m, or -1 for the root.
func (t *Tree) Parent(m int) int {
	if m == 0 {
		return -1
	}
	return (m - 1) / t.d
}

// ParentID computes the parent of node m in a tree of degree d without a
// Tree instance; it is the relationship users exploit client-side.
func ParentID(d, m int) int {
	if m == 0 {
		return -1
	}
	return (m - 1) / d
}

// MaxKID returns the maximum ID among current k-nodes, or -1 if the tree
// holds no k-nodes. It is broadcast in every ENC packet so that users can
// rederive their IDs (Theorem 4.2).
func (t *Tree) MaxKID() int {
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i].kind == KNode {
			return i
		}
	}
	return -1
}

// GroupKey returns the current group key (the key at the root).
// It returns the zero key if the group is empty.
func (t *Tree) GroupKey() keys.Key {
	if t.nodes[0].kind != KNode {
		return keys.Key{}
	}
	return t.nodes[0].key
}

// UserID returns the u-node ID currently assigned to member m.
func (t *Tree) UserID(m Member) (int, bool) {
	id, ok := t.loc[m]
	return id, ok
}

// IndividualKey returns member m's individual key.
func (t *Tree) IndividualKey(m Member) (keys.Key, bool) {
	id, ok := t.loc[m]
	if !ok {
		return keys.Key{}, false
	}
	return t.nodes[id].key, true
}

// Members returns all current members, sorted by u-node ID.
func (t *Tree) Members() []Member {
	ms := make([]Member, 0, len(t.loc))
	for m := range t.loc {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return t.loc[ms[i]] < t.loc[ms[j]] })
	return ms
}

// UserIDs returns a copy of the sorted list of current u-node IDs.
// Shard coordinators read it to build assignment slices for shards
// whose tree did not change in an interval.
func (t *Tree) UserIDs() []int { return t.userIDs() }

// PathKeys returns the keys a member should hold after a successful
// rekey: its individual key plus the keys of every k-node on its path to
// the root, keyed by node ID. Tests compare user state against it.
func (t *Tree) PathKeys(m Member) (map[int]keys.Key, bool) {
	id, ok := t.loc[m]
	if !ok {
		return nil, false
	}
	out := map[int]keys.Key{id: t.nodes[id].key}
	for p := t.Parent(id); p >= 0; p = t.Parent(p) {
		if t.nodes[p].kind == KNode {
			out[p] = t.nodes[p].key
		}
	}
	return out, true
}

// NodeKey returns the key held at node id and the node's kind. ok is
// false for n-nodes and out-of-range IDs (which hold no key). Invariant
// oracles use it to resolve an Encryption's wrapping (child) key.
func (t *Tree) NodeKey(id int) (keys.Key, NodeKind, bool) {
	if id < 0 || id >= len(t.nodes) {
		return keys.Key{}, NNode, false
	}
	n := &t.nodes[id]
	if n.kind == NNode {
		return keys.Key{}, NNode, false
	}
	return n.key, n.kind, true
}

// ForEachKNode calls fn for every current k-node in ascending ID order.
// Forward-secrecy oracles sweep the live auxiliary keys through it
// without materialising a map.
func (t *Tree) ForEachKNode(fn func(id int, k keys.Key)) {
	for id := range t.nodes {
		if t.nodes[id].kind == KNode {
			fn(id, t.nodes[id].key)
		}
	}
}

// kindOf is a bounds-tolerant accessor: IDs beyond the allocated slice
// are n-nodes of the conceptual infinite expansion.
func (t *Tree) kindOf(id int) NodeKind {
	if id >= len(t.nodes) {
		return NNode
	}
	return t.nodes[id].kind
}

// growTo extends the allocated tree so that id is a valid index,
// increasing the height as necessary. New positions are n-nodes.
func (t *Tree) growTo(id int) {
	for fullSize(t.d, t.height) <= id {
		t.height++
	}
	want := fullSize(t.d, t.height)
	if want > len(t.nodes) {
		grown := make([]node, want)
		copy(grown, t.nodes)
		t.nodes = grown
	}
}

// CheckInvariant verifies Lemma 4.1 (every k-node ID below every u-node
// ID), the incrementally-maintained user-ID slice, plus structural
// sanity; tests call it after every mutation.
func (t *Tree) CheckInvariant() error {
	maxK, minU := -1, math.MaxInt
	users := 0
	// hasUser[id]: does the subtree rooted at id contain a u-node?
	// Computed bottom-up in one pass (children have larger IDs).
	hasUser := make([]bool, len(t.nodes))
	for id := len(t.nodes) - 1; id >= 0; id-- {
		if t.nodes[id].kind == UNode {
			hasUser[id] = true
			continue
		}
		first := t.d*id + 1
		for c := first; c < first+t.d && c < len(t.nodes); c++ {
			if hasUser[c] {
				hasUser[id] = true
				break
			}
		}
	}
	for id := range t.nodes {
		n := &t.nodes[id]
		switch n.kind {
		case KNode:
			if id > maxK {
				maxK = id
			}
			if !hasUser[id] {
				return fmt.Errorf("keytree: k-node %d has no user below", id)
			}
			if n.key.Zero() {
				return fmt.Errorf("keytree: k-node %d has no key", id)
			}
		case UNode:
			users++
			if id < minU {
				minU = id
			}
			if got, ok := t.loc[n.member]; !ok || got != id {
				return fmt.Errorf("keytree: loc map out of sync for member %d at node %d", n.member, id)
			}
			if id != 0 && t.nodes[t.Parent(id)].kind != KNode {
				return fmt.Errorf("keytree: u-node %d has non-k parent", id)
			}
		case NNode:
			if hasUser[id] {
				return fmt.Errorf("keytree: n-node %d has a user below", id)
			}
		}
	}
	if users != len(t.loc) {
		return fmt.Errorf("keytree: %d u-nodes but %d loc entries", users, len(t.loc))
	}
	if maxK >= 0 && minU < math.MaxInt && maxK >= minU {
		return fmt.Errorf("keytree: Lemma 4.1 violated: maxKID=%d >= minUID=%d", maxK, minU)
	}
	if len(t.uids) != len(t.loc) {
		return fmt.Errorf("keytree: uids has %d entries but loc has %d", len(t.uids), len(t.loc))
	}
	for i, id := range t.uids {
		if i > 0 && t.uids[i-1] >= id {
			return fmt.Errorf("keytree: uids not strictly sorted at %d", i)
		}
		if id >= len(t.nodes) || t.nodes[id].kind != UNode {
			return fmt.Errorf("keytree: uids entry %d is not a u-node", id)
		}
	}
	return nil
}

// Clone returns a deep copy of the tree sharing the key generator and
// metrics registry. The experiment harness clones a populated tree so
// that many trials can apply independent batches to identical starting
// states.
func (t *Tree) Clone() *Tree {
	n := &Tree{d: t.d, height: t.height, gen: t.gen, lite: t.lite, workers: t.workers, reg: t.reg, strat: t.strat}
	n.nodes = append([]node(nil), t.nodes...)
	n.uids = append([]int(nil), t.uids...)
	n.loc = make(map[Member]int, len(t.loc))
	for m, id := range t.loc {
		n.loc[m] = id
	}
	return n
}

// Encryption is one {parentKey}_childKey entry of a rekey message. Its ID
// is the encrypting (child) node's ID; the encrypted key's node is the
// child's parent, recoverable from the ID alone.
type Encryption struct {
	ID      uint32
	Wrapped [keys.WrappedSize]byte
}

// levelSeg locates one tree level's slice of the Encryptions array:
// node IDs in [lo, hi) occupy Encryptions[start:next.start] with IDs
// ascending. Encryptions are emitted deepest level first, so the
// segments replace the old per-encryption hash index with a handful of
// range records plus binary search -- nothing per-encryption to build,
// which matters when a million-member batch emits ~10^6 entries.
type levelSeg struct {
	lo, hi int // node-ID bounds of the level, [lo, hi)
	start  int // offset of the level's first encryption
}

// BatchResult is the outcome of one ProcessBatch: the workload handed to
// the rekey transport protocol, plus bookkeeping for users and tests.
type BatchResult struct {
	// Encryptions in bottom-up (deepest level first, left-to-right)
	// generation order.
	Encryptions []Encryption
	// levels are the per-tree-level segments of Encryptions, deepest
	// level first (the generation order).
	levels []levelSeg
	// MaxKID after the batch; carried in every ENC packet.
	MaxKID int
	// GroupKey after the batch.
	GroupKey keys.Key
	// UserIDs is the sorted list of all current u-node IDs.
	UserIDs []int
	// Joined/Left counts; UpdatedKNodes is the number of k-nodes whose
	// keys changed (including newly created ones).
	Joined, Left, UpdatedKNodes int

	d int
}

// lookup returns the position in Encryptions of the encryption whose
// encrypting-key node is id: find the level segment covering the ID,
// then binary-search the segment (IDs ascend within a level).
func (r *BatchResult) lookup(id int) (int, bool) {
	if id < 0 {
		return 0, false
	}
	for li, seg := range r.levels {
		if id < seg.lo || id >= seg.hi {
			continue
		}
		end := len(r.Encryptions)
		if li+1 < len(r.levels) {
			end = r.levels[li+1].start
		}
		encs := r.Encryptions[seg.start:end]
		i := sort.Search(len(encs), func(j int) bool { return encs[j].ID >= uint32(id) })
		if i < len(encs) && encs[i].ID == uint32(id) {
			return seg.start + i, true
		}
		return 0, false
	}
	return 0, false
}

// Encryption returns the encryption whose encrypting-key node is id.
func (r *BatchResult) Encryption(id int) (Encryption, bool) {
	i, ok := r.lookup(id)
	if !ok {
		return Encryption{}, false
	}
	return r.Encryptions[i], true
}

// MaxKIDFor returns the maximum k-node ID governing user userID's
// Theorem 4.2 rederivation. For a single tree that is the global
// MaxKID regardless of the user; sharded batches (internal/shard)
// return the per-shard globalized value. Part of the oracle's Batch
// interface.
func (r *BatchResult) MaxKIDFor(int) int { return r.MaxKID }

// PacketMaxKID returns the MaxKID value stamped into every ENC packet
// materialised from this batch. Part of the assign Source interface.
func (r *BatchResult) PacketMaxKID() int { return r.MaxKID }

// UserList returns the sorted post-batch u-node IDs. Part of the
// assign Source interface (mirrors the UserIDs field).
func (r *BatchResult) UserList() []int { return r.UserIDs }

// ForEachEncryption calls fn for every encryption of the batch in
// generation order. Part of the oracle's Batch interface.
func (r *BatchResult) ForEachEncryption(fn func(Encryption)) {
	for i := range r.Encryptions {
		fn(r.Encryptions[i])
	}
}

// UserNeeds returns, in bottom-up order, the encryptions user userID
// requires: those whose encrypting key lies on the user's path to the
// root (including its own individual key). It allocates a fresh slice
// per call; hot paths should use AppendUserNeeds with a reused buffer.
func (r *BatchResult) UserNeeds(userID int) []Encryption {
	return r.AppendUserNeeds(nil, userID)
}

// AppendUserNeeds appends user userID's required encryptions to dst (in
// bottom-up order) and returns the extended slice. Per-user assignment
// loops call it once per member per batch; with a reused buffer
// (dst[:0]) it is allocation-free after warm-up.
//
//rekeylint:hotpath
func (r *BatchResult) AppendUserNeeds(dst []Encryption, userID int) []Encryption {
	for id := userID; id >= 0; id = ParentID(r.d, id) {
		if i, ok := r.lookup(id); ok {
			if len(dst) == cap(dst) {
				dst = growEncryptions(dst)
			}
			dst = dst[:len(dst)+1]
			dst[len(dst)-1] = r.Encryptions[i]
		}
	}
	return dst
}

// UserNeedIDs is like UserNeeds but returns only the encryption IDs, in
// bottom-up order. The key assignment algorithm packs by ID;
// ciphertexts are materialised later. It allocates per call; hot paths
// should use AppendUserNeedIDs with a reused buffer.
func (r *BatchResult) UserNeedIDs(userID int) []uint32 {
	return r.AppendUserNeedIDs(nil, userID)
}

// AppendUserNeedIDs appends user userID's required encryption IDs to
// dst (in bottom-up order) and returns the extended slice.
//
//rekeylint:hotpath
func (r *BatchResult) AppendUserNeedIDs(dst []uint32, userID int) []uint32 {
	for id := userID; id >= 0; id = ParentID(r.d, id) {
		if _, ok := r.lookup(id); ok {
			if len(dst) == cap(dst) {
				dst = growIDs(dst)
			}
			dst = dst[:len(dst)+1]
			dst[len(dst)-1] = uint32(id)
		}
	}
	return dst
}

// growEncryptions is the cold grow path of AppendUserNeeds: extend the
// buffer's capacity by one slot (amortised doubling via append) without
// changing its length.
func growEncryptions(dst []Encryption) []Encryption {
	return append(dst, Encryption{})[:len(dst)]
}

// growIDs is the cold grow path of AppendUserNeedIDs.
func growIDs(dst []uint32) []uint32 {
	return append(dst, 0)[:len(dst)]
}

// ProcessBatch applies one rekey interval: the L members in leaves
// depart and the J members in joins arrive, placed and marked by the
// tree's strategy. It returns the generated rekey workload. A batch
// with no membership change returns an empty BatchResult (no rekeying
// needed).
//
// ProcessBatch is the parallel pipeline: updated k-node keys are drawn
// in one bulk CSPRNG read and the wrap emission fans out across a
// worker pool (WithWorkers). Its output is byte-identical to
// ProcessBatchSeq given the same starting tree and generator state.
func (t *Tree) ProcessBatch(joins, leaves []Member) (*BatchResult, error) {
	return t.processBatch(joins, leaves, false)
}

// ProcessBatchSeq is the retained sequential reference implementation:
// per-node key draws and a single-threaded append-based wrap emission.
// Differential tests and the CI benchmark guard compare ProcessBatch
// against it; production callers use ProcessBatch.
func (t *Tree) ProcessBatchSeq(joins, leaves []Member) (*BatchResult, error) {
	return t.processBatch(joins, leaves, true)
}

func (t *Tree) processBatch(joins, leaves []Member, seq bool) (*BatchResult, error) {
	for _, m := range leaves {
		if _, ok := t.loc[m]; !ok {
			return nil, fmt.Errorf("keytree: leave request for unknown member %d", m)
		}
	}
	seen := make(map[Member]bool, len(joins))
	for _, m := range joins {
		if _, ok := t.loc[m]; ok {
			return nil, fmt.Errorf("keytree: join request for already-present member %d", m)
		}
		if seen[m] {
			return nil, fmt.Errorf("keytree: duplicate join request for member %d", m)
		}
		seen[m] = true
	}
	leaveSet := make(map[Member]bool, len(leaves))
	for _, m := range leaves {
		if leaveSet[m] {
			return nil, fmt.Errorf("keytree: duplicate leave request for member %d", m)
		}
		leaveSet[m] = true
	}

	if len(joins) == 0 && len(leaves) == 0 {
		return &BatchResult{MaxKID: t.MaxKID(), GroupKey: t.GroupKey(), UserIDs: t.userIDs(), d: t.d}, nil
	}

	// Reset labels.
	for i := range t.nodes {
		t.nodes[i].label = Unchanged
	}

	// Hand the validated batch to the placement strategy, then fold its
	// user-ID delta into the maintained sorted slice. A strategy error
	// after mutation would leave the tree inconsistent, so strategies
	// only error on contract violations (which validation above already
	// rules out for the built-ins).
	ops := newTreeOps(t, len(joins), len(leaves))
	if err := t.strat.PlaceBatch(ops, joins, leaves); err != nil {
		return nil, err
	}
	ops.commit()
	updated := t.rekeyKNodes(seq)

	res := &BatchResult{
		MaxKID:        t.MaxKID(),
		GroupKey:      t.GroupKey(),
		UserIDs:       t.userIDs(),
		UpdatedKNodes: updated,
		Joined:        len(joins),
		Left:          len(leaves),
		d:             t.d,
	}
	var emitStart time.Time
	if t.reg.Enabled() {
		emitStart = time.Now()
	}
	if seq {
		t.emitSeq(res)
	} else {
		t.emitParallel(res)
	}
	if t.reg.Enabled() {
		t.reg.Add(obs.CKeysGenerated, int64(len(joins)+updated))
		if !t.lite {
			t.reg.Add(obs.CWraps, int64(len(res.Encryptions)))
		}
		t.reg.Add(obs.CWrapNs, time.Since(emitStart).Nanoseconds())
	}
	return res, nil
}

// userIDs returns a copy of the maintained sorted user-ID slice.
func (t *Tree) userIDs() []int {
	return append([]int(nil), t.uids...)
}

// commitUserIDs folds one batch's u-node removals and additions into
// the maintained sorted slice: one merge pass over the old slice
// instead of the old rebuild-and-sort over the loc map. An ID may
// appear in both lists (a departed position refilled the same
// interval); removal is applied first, so it survives.
func (t *Tree) commitUserIDs(removed, added []int) {
	sort.Ints(removed)
	sort.Ints(added)
	out := make([]int, 0, len(t.uids)-len(removed)+len(added))
	ri := 0
	ai := 0
	push := func(id int) {
		// Merge in pending additions below id.
		for ai < len(added) && added[ai] < id {
			out = append(out, added[ai])
			ai++
		}
		out = append(out, id)
	}
	for _, id := range t.uids {
		for ri < len(removed) && removed[ri] < id {
			ri++
		}
		if ri < len(removed) && removed[ri] == id {
			ri++
			continue
		}
		push(id)
	}
	for ai < len(added) {
		out = append(out, added[ai])
		ai++
	}
	t.uids = out
}

// rekeyKNodes generates new keys for every updated k-node (labels
// Join/Replace) and returns how many there were. The sequential
// reference draws one key per node in ascending ID order; the parallel
// pipeline collects the IDs and draws them all in one bulk generator
// read. Generator.NewKeys consumes the CSPRNG stream exactly as the
// per-node draws would, so both paths install identical keys.
func (t *Tree) rekeyKNodes(seq bool) int {
	if seq {
		updated := 0
		for id := range t.nodes {
			n := &t.nodes[id]
			if n.kind == KNode && (n.label == Join || n.label == Replace) {
				n.key = t.gen.MustNewKey()
				updated++
			}
		}
		return updated
	}
	ids := make([]int, 0, 64)
	for id := range t.nodes {
		n := &t.nodes[id]
		if n.kind == KNode && (n.label == Join || n.label == Replace) {
			ids = append(ids, id)
		}
	}
	ks, err := t.gen.NewKeys(len(ids))
	if err != nil {
		panic(fmt.Sprintf("keytree: bulk key generation failed: %v", err))
	}
	for i, id := range ids {
		t.nodes[id].key = ks[i]
	}
	return len(ids)
}

// emitEligible reports whether node id (at a level below the root)
// contributes an encryption: it is a live node whose parent k-node got
// a new key, and it did not itself leave. Both emission paths and the
// parallel counting pass share this single test.
func (t *Tree) emitEligible(id int) bool {
	n := &t.nodes[id]
	if n.kind != UNode && n.kind != KNode {
		return false
	}
	p := &t.nodes[t.Parent(id)]
	if p.kind != KNode || (p.label != Join && p.label != Replace) {
		return false
	}
	return n.label != Leave
}

// levelBounds returns the node-ID ranges of each tree level:
// level l spans [levelStart[l], levelStart[l+1]).
func (t *Tree) levelBounds() []int {
	levelStart := make([]int, t.height+2)
	for l := 1; l <= t.height+1; l++ {
		levelStart[l] = fullSize(t.d, l-1) // nodes in levels 0..l-1
	}
	return levelStart
}

// emitSeq is the sequential reference emission: walk levels deepest
// first, append one encryption per eligible edge, wrapping with the
// one-shot keys.Wrap. The root level never emits (no parent edge).
func (t *Tree) emitSeq(res *BatchResult) {
	levelStart := t.levelBounds()
	for level := t.height; level >= 1; level-- {
		lo, hi := levelStart[level], levelStart[level+1]
		if hi > len(t.nodes) {
			hi = len(t.nodes)
		}
		start := len(res.Encryptions)
		for id := lo; id < hi; id++ {
			if !t.emitEligible(id) {
				continue
			}
			e := Encryption{ID: uint32(id)}
			if !t.lite {
				e.Wrapped = keys.Wrap(t.nodes[id].key, t.nodes[t.Parent(id)].key)
			}
			res.Encryptions = append(res.Encryptions, e)
		}
		if len(res.Encryptions) > start {
			res.levels = append(res.levels, levelSeg{lo: lo, hi: hi, start: start})
		}
	}
}

// NewID implements Theorem 4.2: given a user's pre-batch u-node ID m and
// the post-batch maximum k-node ID maxKID, it returns the unique
// post-batch ID f(x) = d^x*m + (d^x-1)/(d-1) with maxKID < f(x) <=
// d*maxKID+d. ok is false if no such x exists (the user is no longer in
// the tree, e.g. it was removed).
func NewID(d, m, maxKID int) (newID int, ok bool) {
	if m < 0 || maxKID < 0 {
		return 0, false
	}
	f := m
	hi := d*maxKID + d
	for f <= hi {
		if f > maxKID {
			return f, true
		}
		f = d*f + 1 // f(x+1) = d*f(x) + 1
	}
	return 0, false
}
