package keytree

import (
	"testing"

	"repro/internal/keys"
)

// FuzzMarkingAdversarial feeds the marking algorithm byte-driven
// sequences of batches whose leave sets follow adversarial patterns
// (strided, prefix, suffix, scattered), checking after every batch that
// the tree invariant holds and that no key a leaver held survives --
// the tree-level statement of forward secrecy.
func FuzzMarkingAdversarial(f *testing.F) {
	f.Add([]byte{3, 40, 1, 8, 0, 10, 4, 1, 20, 0, 2, 5})
	f.Add([]byte{1, 200, 7, 0, 3, 99, 0, 2, 50, 16, 1, 3, 0, 0, 1})
	f.Add([]byte{5, 16, 9, 2, 2, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		d := int(data[0]%7) + 2
		base := int(data[1]) + 2
		tr := New(d, keys.NewDeterministicGenerator(uint64(data[2])+1))
		joins := make([]Member, base)
		for i := range joins {
			joins[i] = Member(i)
		}
		if _, err := tr.ProcessBatch(joins, nil); err != nil {
			t.Fatal(err)
		}
		next := Member(base)

		// Key values any past leaver ever held. Keys are fresh CSPRNG (here
		// deterministic-stream) output, so no value may legitimately recur.
		departed := make(map[keys.Key]bool)

		rounds := 0
		for i := 3; i+2 < len(data) && rounds < 8; i, rounds = i+3, rounds+1 {
			nj := int(data[i] % 32)
			pattern := data[i+1] % 4
			live := tr.Members()
			nl := int(data[i+2]) % len(live) // keep >=1 member
			if nj == 0 && nl == 0 {
				continue
			}

			leaves := make([]Member, 0, nl)
			switch pattern {
			case 0: // strided: maximally disjoint paths
				if nl > 0 {
					stride := float64(len(live)) / float64(nl)
					for j := 0; j < nl; j++ {
						leaves = append(leaves, live[int(float64(j)*stride)])
					}
				}
			case 1: // prefix: one side of the tree
				leaves = append(leaves, live[:nl]...)
			case 2: // suffix: the most recently placed region
				leaves = append(leaves, live[len(live)-nl:]...)
			default: // scattered by a byte-derived odd step
				step := int(data[i+1]/4)*2 + 1
				for j, idx := 0, 0; j < nl; j, idx = j+1, (idx+step)%len(live) {
					leaves = append(leaves, live[idx])
				}
				leaves = dedupMembers(leaves)
			}

			joins = joins[:0]
			for j := 0; j < nj; j++ {
				joins = append(joins, next)
				next++
			}

			// Record every key each leaver currently holds: its individual
			// key and the k-node keys up its path.
			for _, m := range leaves {
				uid, ok := tr.UserID(m)
				if !ok {
					t.Fatalf("leaver %d not in tree", m)
				}
				for id := uid; id >= 0; id = ParentID(d, id) {
					if k, _, ok := tr.NodeKey(id); ok {
						departed[k] = true
					}
				}
			}

			if _, err := tr.ProcessBatch(joins, leaves); err != nil {
				t.Fatalf("round %d (d=%d, j=%d, l=%d, pattern=%d): %v",
					rounds, d, nj, len(leaves), pattern, err)
			}
			if err := tr.CheckInvariant(); err != nil {
				t.Fatalf("round %d: invariant: %v", rounds, err)
			}
			// Forward secrecy at the tree level: no surviving node may hold
			// a key any departed member ever held.
			violations := 0
			tr.ForEachKNode(func(id int, k keys.Key) {
				if departed[k] {
					violations++
				}
			})
			for _, m := range tr.Members() {
				if k, ok := tr.IndividualKey(m); ok && departed[k] {
					violations++
				}
			}
			if violations > 0 {
				t.Fatalf("round %d: %d surviving nodes hold departed keys", rounds, violations)
			}
		}
	})
}

// dedupMembers removes duplicates preserving first occurrence.
func dedupMembers(ms []Member) []Member {
	seen := make(map[Member]bool, len(ms))
	out := ms[:0]
	for _, m := range ms {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
