package keytree

import (
	"testing"

	"repro/internal/keys"
)

// FuzzMarkingAdversarial feeds the marking algorithm byte-driven
// sequences of batches whose leave sets follow adversarial patterns
// (strided, prefix, suffix, scattered; see fuzzScript), checking after
// every batch that the tree invariant holds and that no key a leaver
// held survives -- the tree-level statement of forward secrecy.
func FuzzMarkingAdversarial(f *testing.F) {
	f.Add([]byte{3, 40, 1, 8, 0, 10, 4, 1, 20, 0, 2, 5})
	f.Add([]byte{1, 200, 7, 0, 3, 99, 0, 2, 50, 16, 1, 3, 0, 0, 1})
	f.Add([]byte{5, 16, 9, 2, 2, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		script, ok := parseFuzzScript(data)
		if !ok {
			return
		}
		tr := New(script.d, keys.NewDeterministicGenerator(script.seed))
		joins := make([]Member, script.base)
		for i := range joins {
			joins[i] = Member(i)
		}
		if _, err := tr.ProcessBatch(joins, nil); err != nil {
			t.Fatal(err)
		}
		next := Member(script.base)

		// Key values any past leaver ever held. Keys are fresh CSPRNG (here
		// deterministic-stream) output, so no value may legitimately recur.
		departed := make(map[keys.Key]bool)

		for r := 0; r < script.rounds(); r++ {
			joins, leaves := script.churn(r, tr.Members(), &next)
			if len(joins) == 0 && len(leaves) == 0 {
				continue
			}

			// Record every key each leaver currently holds: its individual
			// key and the k-node keys up its path.
			for _, m := range leaves {
				uid, ok := tr.UserID(m)
				if !ok {
					t.Fatalf("leaver %d not in tree", m)
				}
				for id := uid; id >= 0; id = ParentID(script.d, id) {
					if k, _, ok := tr.NodeKey(id); ok {
						departed[k] = true
					}
				}
			}

			if _, err := tr.ProcessBatch(joins, leaves); err != nil {
				t.Fatalf("round %d (d=%d, j=%d, l=%d): %v",
					r, script.d, len(joins), len(leaves), err)
			}
			if err := tr.CheckInvariant(); err != nil {
				t.Fatalf("round %d: invariant: %v", r, err)
			}
			// Forward secrecy at the tree level: no surviving node may hold
			// a key any departed member ever held.
			violations := 0
			tr.ForEachKNode(func(id int, k keys.Key) {
				if departed[k] {
					violations++
				}
			})
			for _, m := range tr.Members() {
				if k, ok := tr.IndividualKey(m); ok && departed[k] {
					violations++
				}
			}
			if violations > 0 {
				t.Fatalf("round %d: %d surviving nodes hold departed keys", r, violations)
			}
		}
	})
}

// dedupMembers removes duplicates preserving first occurrence.
func dedupMembers(ms []Member) []Member {
	seen := make(map[Member]bool, len(ms))
	out := ms[:0]
	for _, m := range ms {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
