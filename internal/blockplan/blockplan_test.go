package blockplan

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPartitionBasics(t *testing.T) {
	p, err := NewPartition(107, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 11 {
		t.Fatalf("NumBlocks = %d, want 11", p.NumBlocks())
	}
	if p.TotalSlots() != 110 {
		t.Fatalf("TotalSlots = %d, want 110", p.TotalSlots())
	}
	if p.Duplicates() != 3 {
		t.Fatalf("Duplicates = %d, want 3", p.Duplicates())
	}
}

func TestPartitionExactFit(t *testing.T) {
	p, _ := NewPartition(100, 10)
	if p.Duplicates() != 0 {
		t.Fatalf("exact fit has %d duplicates", p.Duplicates())
	}
	for i := 0; i < 100; i++ {
		blk, seq := p.Slot(i)
		if p.RealIndex(blk, seq) != i {
			t.Fatalf("slot round trip failed for %d", i)
		}
		if p.IsDuplicate(blk, seq) {
			t.Fatalf("slot %d marked duplicate", i)
		}
	}
}

func TestPartitionRejects(t *testing.T) {
	if _, err := NewPartition(10, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewPartition(-1, 5); err == nil {
		t.Error("negative packet count accepted")
	}
}

func TestDuplicatesResolveRoundRobin(t *testing.T) {
	// 7 real packets in the last block of k=10: slots 7,8,9 duplicate
	// packets 0,1,2 of that block (round-robin).
	p, _ := NewPartition(107, 10)
	lastBlk := 10
	for s := 7; s < 10; s++ {
		if !p.IsDuplicate(lastBlk, s) {
			t.Fatalf("slot (%d,%d) not marked duplicate", lastBlk, s)
		}
		want := 100 + (s - 7)
		if got := p.RealIndex(lastBlk, s); got != want {
			t.Fatalf("RealIndex(%d,%d) = %d, want %d", lastBlk, s, got, want)
		}
	}
	// All real slots resolve to themselves.
	for i := 0; i < 107; i++ {
		blk, seq := p.Slot(i)
		if p.RealIndex(blk, seq) != i {
			t.Fatalf("real slot %d resolves to %d", i, p.RealIndex(blk, seq))
		}
	}
}

func TestSingleBlockSmallerThanK(t *testing.T) {
	p, _ := NewPartition(3, 10)
	if p.NumBlocks() != 1 || p.Duplicates() != 7 {
		t.Fatalf("blocks=%d dups=%d", p.NumBlocks(), p.Duplicates())
	}
	wantReal := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	for s := 0; s < 10; s++ {
		if got := p.RealIndex(0, s); got != wantReal[s] {
			t.Fatalf("RealIndex(0,%d) = %d, want %d", s, got, wantReal[s])
		}
	}
}

func TestInterleaveOrder(t *testing.T) {
	refs := Interleave([][]int{{0, 1}, {0, 1, 2}, {5}})
	want := []Ref{{0, 0}, {1, 0}, {2, 5}, {0, 1}, {1, 1}, {1, 2}}
	if len(refs) != len(want) {
		t.Fatalf("got %d refs, want %d", len(refs), len(want))
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("ref %d = %v, want %v", i, refs[i], want[i])
		}
	}
}

func TestInterleaveSeparatesSameBlock(t *testing.T) {
	// In the round-one order, two shards of the same block must be at
	// least NumBlocks positions apart.
	p, _ := NewPartition(100, 10)
	refs := RoundOne(p, 1.4)
	lastPos := map[int]int{}
	for pos, r := range refs {
		if prev, ok := lastPos[r.Block]; ok {
			if pos-prev < p.NumBlocks() {
				t.Fatalf("same-block refs %d apart (< %d blocks)", pos-prev, p.NumBlocks())
			}
		}
		lastPos[r.Block] = pos
	}
}

func TestRoundOneCounts(t *testing.T) {
	p, _ := NewPartition(100, 10)
	for _, tc := range []struct {
		rho  float64
		want int // shards per block
	}{{1.0, 10}, {1.05, 11}, {1.6, 16}, {2.0, 20}, {0.5, 10}} {
		refs := RoundOne(p, tc.rho)
		if len(refs) != tc.want*p.NumBlocks() {
			t.Errorf("rho=%v: %d refs, want %d", tc.rho, len(refs), tc.want*p.NumBlocks())
		}
	}
}

func TestProactiveParity(t *testing.T) {
	for _, tc := range []struct {
		k    int
		rho  float64
		want int
	}{{10, 1, 0}, {10, 1.2, 2}, {10, 1.25, 3}, {10, 2, 10}, {1, 1.5, 1}, {10, 0.8, 0}} {
		if got := ProactiveParity(tc.k, tc.rho); got != tc.want {
			t.Errorf("ProactiveParity(%d,%v) = %d, want %d", tc.k, tc.rho, got, tc.want)
		}
	}
}

// buildHeaders fabricates a rekey message's ENC headers for estimation
// tests: users 1..numUsers get one packet each batch of usersPerPkt.
// userBlk maps user ID to its packet's block; userIdx to the packet's
// index in generation order.
func buildHeaders(numUsers, usersPerPkt, k, d int) (headers []ENCHeader, userBlk, userIdx map[int]int, numReal int) {
	userPkt := make(map[int]int)
	maxKID := numUsers / 2 // arbitrary but consistent: user IDs > maxKID
	var pkts []ENCHeader
	for u := 0; u < numUsers; u += usersPerPkt {
		hi := u + usersPerPkt - 1
		if hi >= numUsers {
			hi = numUsers - 1
		}
		pkts = append(pkts, ENCHeader{
			FrmID:  maxKID + 1 + u,
			ToID:   maxKID + 1 + hi,
			MaxKID: maxKID,
		})
		for x := u; x <= hi; x++ {
			userPkt[maxKID+1+x] = len(pkts) - 1
		}
	}
	p, _ := NewPartition(len(pkts), k)
	headers = make([]ENCHeader, p.TotalSlots())
	for i := 0; i < p.TotalSlots(); i++ {
		blk, seq := i/k, i%k
		src := p.RealIndex(blk, seq)
		h := pkts[src]
		h.BlockID, h.Seq = blk, seq
		h.Dup = p.IsDuplicate(blk, seq)
		headers[i] = h
	}
	userBlk = make(map[int]int, len(userPkt))
	userIdx = make(map[int]int, len(userPkt))
	for u, pi := range userPkt {
		blk, _ := p.Slot(pi)
		userBlk[u] = blk
		userIdx[u] = pi
	}
	return headers, userBlk, userIdx, len(pkts)
}

func TestEstimatorExactWithFullReception(t *testing.T) {
	const k, d = 10, 4
	headers, userBlk, userIdx, numReal := buildHeaders(200, 3, k, d)
	for m, wantBlk := range userBlk {
		e := NewEstimator()
		for _, h := range headers {
			// The user's own packet was lost; everything else received.
			if !h.Dup && h.FrmID <= m && m <= h.ToID {
				continue
			}
			e.Observe(m, h, k, d)
		}
		if wantBlk < e.Low || wantBlk > e.High {
			t.Fatalf("user %d: true block %d outside [%d,%d]", m, wantBlk, e.Low, e.High)
		}
		// Exactness holds whenever a real (non-duplicate) packet follows
		// the user's in generation order; the last packet's users can
		// only bound a range because their successor set Su contains
		// only padding duplicates, which estimation excludes.
		if userIdx[m]+1 < numReal && !e.Exact() {
			t.Fatalf("user %d: bounds [%d,%d] not exact with only its own packet lost", m, e.Low, e.High)
		}
		if e.Exact() && e.Low != wantBlk {
			t.Fatalf("user %d: estimated block %d, want %d", m, e.Low, wantBlk)
		}
	}
}

func TestEstimatorRangeAlwaysContainsTruth(t *testing.T) {
	const k, d = 10, 4
	headers, userBlk, _, _ := buildHeaders(300, 4, k, d)
	rng := rand.New(rand.NewPCG(11, 22))
	for trial := 0; trial < 300; trial++ {
		// Random loss pattern, including the user's own packet.
		var m, wantBlk int
		for m, wantBlk = range userBlk {
			break // any user; map iteration randomises
		}
		e := NewEstimator()
		for _, h := range headers {
			if h.FrmID <= m && m <= h.ToID && !h.Dup {
				continue // specific packet always lost in this test
			}
			if rng.Float64() < 0.5 {
				continue // lost
			}
			e.Observe(m, h, k, d)
		}
		if wantBlk < e.Low || wantBlk > e.High {
			t.Fatalf("user %d: true block %d outside [%d,%d]", m, wantBlk, e.Low, e.High)
		}
	}
}

func TestEstimatorDirectHit(t *testing.T) {
	const k, d = 10, 4
	headers, userBlk, _, _ := buildHeaders(100, 5, k, d)
	for m, wantBlk := range userBlk {
		e := NewEstimator()
		for _, h := range headers {
			e.Observe(m, h, k, d)
		}
		if !e.Exact() || e.Low != wantBlk {
			t.Fatalf("user %d: [%d,%d], want exactly %d", m, e.Low, e.High, wantBlk)
		}
	}
}

func TestEstimatorRule6BoundsHigh(t *testing.T) {
	// Even observing a single early packet must yield a finite upper
	// bound (step 6 of the algorithm).
	e := NewEstimator()
	e.Observe(900, ENCHeader{BlockID: 0, Seq: 0, FrmID: 101, ToID: 110, MaxKID: 100}, 10, 4)
	if e.High == math.MaxInt {
		t.Fatal("upper bound still infinite after observing a packet below the user")
	}
	if e.Low != 0 {
		t.Fatalf("low = %d, want 0", e.Low)
	}
}

func TestEstimatorIgnoresDuplicates(t *testing.T) {
	e := NewEstimator()
	dup := ENCHeader{BlockID: 5, Seq: 9, FrmID: 50, ToID: 60, MaxKID: 40, Dup: true}
	e.Observe(55, dup, 10, 4)
	if e.Exact() {
		t.Fatal("duplicate header collapsed the estimate")
	}
}

func TestQuickInterleaveIsPermutation(t *testing.T) {
	f := func(seed uint64, nBlocksRaw, perRaw uint8) bool {
		nBlocks := int(nBlocksRaw)%8 + 1
		rng := rand.New(rand.NewPCG(seed, 7))
		perBlock := make([][]int, nBlocks)
		total := 0
		for b := range perBlock {
			n := rng.IntN(int(perRaw)%10 + 1)
			for s := 0; s < n; s++ {
				perBlock[b] = append(perBlock[b], s)
			}
			total += n
		}
		refs := Interleave(perBlock)
		if len(refs) != total {
			return false
		}
		seen := map[Ref]bool{}
		for _, r := range refs {
			if seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
