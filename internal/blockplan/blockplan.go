// Package blockplan implements the block-partitioning side of the rekey
// transport protocol: splitting a rekey message's ENC packets into FEC
// blocks of size k (padding the last block with duplicates), the
// interleaved send order that separates same-block packets in time, and
// the user-side block-ID estimation algorithm of Appendix D by which a
// user that lost its specific ENC packet determines -- exactly, with
// high probability, or as a narrow range otherwise -- which block to
// request parity for.
package blockplan

import (
	"fmt"
	"math"
)

// Partition maps a rekey message's real ENC packets onto blocks of size
// K. The last block is padded by duplicating its packets round-robin, so
// every block exposes exactly K data shards.
type Partition struct {
	NumReal int // number of real (distinct) ENC packets
	K       int // block size
}

// NewPartition returns the partition of numReal packets into blocks of
// size k.
func NewPartition(numReal, k int) (Partition, error) {
	if k <= 0 {
		return Partition{}, fmt.Errorf("blockplan: block size %d, must be positive", k)
	}
	if numReal < 0 {
		return Partition{}, fmt.Errorf("blockplan: %d packets", numReal)
	}
	return Partition{NumReal: numReal, K: k}, nil
}

// NumBlocks returns the number of FEC blocks.
func (p Partition) NumBlocks() int {
	return (p.NumReal + p.K - 1) / p.K
}

// TotalSlots returns the number of data slots across all blocks,
// including last-block duplicates: NumBlocks()*K.
func (p Partition) TotalSlots() int { return p.NumBlocks() * p.K }

// RealIndex resolves a (block, seq) data slot to the real packet it
// carries; duplicates resolve to the packet they copy. It panics on an
// out-of-range slot.
func (p Partition) RealIndex(blk, seq int) int {
	if blk < 0 || blk >= p.NumBlocks() || seq < 0 || seq >= p.K {
		panic(fmt.Sprintf("blockplan: slot (%d,%d) out of range", blk, seq))
	}
	i := blk*p.K + seq
	if i < p.NumReal {
		return i
	}
	lastStart := (p.NumReal / p.K) * p.K
	span := p.NumReal - lastStart
	return lastStart + (i-lastStart)%span
}

// IsDuplicate reports whether the (block, seq) slot carries a last-block
// padding duplicate rather than a packet's primary slot.
func (p Partition) IsDuplicate(blk, seq int) bool {
	return blk*p.K+seq >= p.NumReal
}

// Slot returns the primary (block, seq) slot of real packet i.
func (p Partition) Slot(i int) (blk, seq int) {
	if i < 0 || i >= p.NumReal {
		panic(fmt.Sprintf("blockplan: packet %d out of range", i))
	}
	return i / p.K, i % p.K
}

// Duplicates returns the number of padding duplicates in the last block.
func (p Partition) Duplicates() int { return p.TotalSlots() - p.NumReal }

// Ref identifies one multicast packet of a rekey message: a shard of a
// block. Shard < K is the data slot Shard; Shard >= K is parity packet
// Shard-K.
type Ref struct {
	Block int
	Shard int
}

// IsParity reports whether the referenced shard is a parity packet.
func (r Ref) IsParity(k int) bool { return r.Shard >= k }

// Interleave produces the send order for per-block shard lists: the
// first pending shard of every block, then the second of every block,
// and so on. Interleaving maximises the time separation of same-block
// packets so a single burst-loss period is unlikely to claim two shards
// of one block.
func Interleave(perBlock [][]int) []Ref {
	var out []Ref
	for pos := 0; ; pos++ {
		emitted := false
		for b, shards := range perBlock {
			if pos < len(shards) {
				out = append(out, Ref{Block: b, Shard: shards[pos]})
				emitted = true
			}
		}
		if !emitted {
			return out
		}
	}
}

// RoundOne returns the interleaved send order of the first multicast
// round: k data shards plus ceil((rho-1)*k) proactive parity shards per
// block.
func RoundOne(p Partition, rho float64) []Ref {
	k := p.K
	pro := ProactiveParity(k, rho)
	perBlock := make([][]int, p.NumBlocks())
	for b := range perBlock {
		shards := make([]int, 0, k+pro)
		for s := 0; s < k+pro; s++ {
			shards = append(shards, s)
		}
		perBlock[b] = shards
	}
	return Interleave(perBlock)
}

// ProactiveParity returns ceil((rho-1)*k), the number of proactive
// PARITY packets per block for proactivity factor rho.
func ProactiveParity(k int, rho float64) int {
	if rho <= 1 {
		return 0
	}
	// The epsilon absorbs float artifacts: (1.6-1)*10 must be 6, not
	// ceil(6.000000000000001) = 7.
	return int(math.Ceil((rho-1)*float64(k) - 1e-9))
}

// ENCHeader is the identifying information of a received ENC packet that
// the block-ID estimator consumes.
type ENCHeader struct {
	BlockID int
	Seq     int
	FrmID   int
	ToID    int
	MaxKID  int
	// Dup marks last-block padding duplicates, which are excluded from
	// estimation (their FrmID/ToID repeat out of order).
	Dup bool
}

// Estimator incrementally bounds the block ID of a user's specific ENC
// packet from the headers of whatever ENC packets the user did receive
// (Appendix D). The zero value is not ready; use NewEstimator.
type Estimator struct {
	// Low and High bound the block ID inclusively.
	Low, High int
}

// NewEstimator returns an estimator with the vacuous bounds [0, MaxInt].
func NewEstimator() Estimator {
	return Estimator{Low: 0, High: math.MaxInt}
}

// Exact reports whether the bounds have collapsed to a single block.
func (e Estimator) Exact() bool { return e.Low == e.High }

// Observe refines the bounds given one received ENC packet's header.
// m is the observing user's (current) node ID, k the block size, and d
// the key tree degree.
func (e *Estimator) Observe(m int, h ENCHeader, k, d int) {
	if h.Dup {
		return
	}
	switch {
	case h.FrmID <= m && m <= h.ToID:
		e.Low, e.High = h.BlockID, h.BlockID
		return
	case m > h.ToID:
		// The user's packet was generated after this one.
		if h.Seq == k-1 {
			e.Low = max(e.Low, h.BlockID+1)
		} else {
			e.Low = max(e.Low, h.BlockID)
		}
		// Bound from above: at most d*(maxKID+1) - toID users remain
		// after this packet, and a packet serves at least one user.
		remaining := d*(h.MaxKID+1) - h.ToID - (k - 1 - h.Seq)
		bound := h.BlockID + ceilDiv(remaining, k)
		e.High = min(e.High, bound)
	case m < h.FrmID:
		// The user's packet was generated before this one.
		if h.Seq == 0 {
			e.High = min(e.High, h.BlockID-1)
		} else {
			e.High = min(e.High, h.BlockID)
		}
	}
}

func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
