// Package analysis reproduces the analytical side of "Reliable group
// rekeying: a performance analysis": closed-form expectations for the
// batch-rekeying workload a key tree generates, and a key-server
// processing-cost model from which the maximum sustainable group size
// follows.
//
// The central quantity is the expected number of encryptions a batch of
// L uniformly-chosen departures (J=0) induces on a full, balanced key
// tree of N = d^h users. A k-node at level l (subtree of s = N/d^l
// users) is updated iff at least one of its users departed and at least
// one remains; an updated node emits one encryption per child subtree
// that retains a user. Hypergeometric survival probabilities give the
// expectation exactly; the marking algorithm's simulated counts must
// match it, which is the package's primary cross-validation against
// internal/keytree.
package analysis

import (
	"fmt"
	"math"
)

// lnChoose returns ln C(n, k) via log-gamma, and -Inf when the
// combination is impossible.
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// hyperNone returns P(a uniform L-subset of N avoids a fixed s-subset):
// C(N-s, L) / C(N, L).
func hyperNone(N, L, s int) float64 {
	if s > N {
		return 0
	}
	return math.Exp(lnChoose(N-s, L) - lnChoose(N, L))
}

// hyperAll returns P(a uniform L-subset of N contains a fixed s-subset):
// C(N-s, L-s) / C(N, L).
func hyperAll(N, L, s int) float64 {
	if s > L {
		return 0
	}
	return math.Exp(lnChoose(N-s, L-s) - lnChoose(N, L))
}

// ExpectedEncryptionsLeave returns the expected number of encryptions in
// the rekey subtree when L of N users leave (no joins), on a full
// balanced tree of degree d with N = d^h. It returns an error if N is
// not a power of d or L is out of range.
func ExpectedEncryptionsLeave(N, d, L int) (float64, error) {
	h, err := heightOf(N, d)
	if err != nil {
		return 0, err
	}
	if L < 0 || L > N {
		return 0, fmt.Errorf("analysis: L=%d outside [0,%d]", L, N)
	}
	if L == 0 {
		return 0, nil
	}
	total := 0.0
	for l := 0; l < h; l++ {
		nodes := math.Pow(float64(d), float64(l))
		s := N / pow(d, l) // users under a level-l node
		c := s / d         // users under one of its children
		// For one (node, child) pair: the edge contributes an
		// encryption iff the node saw at least one departure and the
		// child keeps at least one user:
		//   P = 1 - P(child fully departed) - P(node saw no departure).
		// The two excluded events are disjoint (a departure-free node
		// cannot contain a fully-departed child since c >= 1).
		p := 1 - hyperAll(N, L, c) - hyperNone(N, L, s)
		if p < 0 {
			p = 0
		}
		total += nodes * float64(d) * p
	}
	return total, nil
}

// ExpectedUpdatedKNodes returns the expected number of k-nodes whose
// keys change when L of N users leave (no joins).
func ExpectedUpdatedKNodes(N, d, L int) (float64, error) {
	h, err := heightOf(N, d)
	if err != nil {
		return 0, err
	}
	if L < 0 || L > N {
		return 0, fmt.Errorf("analysis: L=%d outside [0,%d]", L, N)
	}
	if L == 0 {
		return 0, nil
	}
	total := 0.0
	for l := 0; l < h; l++ {
		nodes := math.Pow(float64(d), float64(l))
		s := N / pow(d, l)
		// Updated iff >=1 departed and >=1 survivor under the node.
		p := 1 - hyperNone(N, L, s) - hyperAll(N, L, s)
		if p < 0 {
			p = 0
		}
		total += nodes * p
	}
	return total, nil
}

func heightOf(N, d int) (int, error) {
	if d < 2 {
		return 0, fmt.Errorf("analysis: degree %d", d)
	}
	h := 0
	for n := 1; n < N; n *= d {
		h++
		if h > 60 {
			return 0, fmt.Errorf("analysis: N=%d too large", N)
		}
	}
	if pow(d, h) != N {
		return 0, fmt.Errorf("analysis: N=%d is not a power of d=%d", N, d)
	}
	return h, nil
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// Costs holds the key server's measured unit processing costs, the
// inputs of the capacity model. Obtain them from the package benchmarks
// (BenchmarkSign, BenchmarkWrap, BenchmarkFECEncode*).
type Costs struct {
	// Sign is the per-rekey-message signing time (seconds).
	Sign float64
	// Wrap is the per-encryption key wrapping time (seconds).
	Wrap float64
	// ParityPerBlockByte is the FEC encoding time per parity packet per
	// block-size unit (seconds per (parity packet * k)); Rizzo-style
	// coders are linear in k.
	ParityPerBlockByte float64
	// PacketLen is the multicast packet length in bytes.
	PacketLen int
}

// ServerWork returns the key server's processing seconds for one rekey
// message: N users, degree d, L = churn*N departures, block size k and
// proactivity rho.
func ServerWork(c Costs, N, d int, churn float64, k int, rho float64) (float64, error) {
	L := int(churn * float64(N))
	if L < 1 {
		L = 1
	}
	encs, err := ExpectedEncryptionsLeave(N, d, L)
	if err != nil {
		return 0, err
	}
	// Encryptions per packet derives packets; parity count follows rho.
	const encPerPkt = 46
	packets := math.Ceil(encs / encPerPkt)
	blocks := math.Ceil(packets / float64(k))
	parity := blocks * math.Ceil((rho-1)*float64(k))
	fec := parity * float64(k) * c.ParityPerBlockByte
	return c.Sign + encs*c.Wrap + fec, nil
}

// MaxGroupSize returns the largest group size N (a power of d) whose
// per-message processing fits within the rekey interval, assuming a
// fraction churn of the group leaves per interval.
func MaxGroupSize(c Costs, d int, churn float64, k int, rho float64, interval float64) (int, error) {
	best := 0
	for N := d; ; N *= d {
		w, err := ServerWork(c, N, d, churn, k, rho)
		if err != nil {
			return 0, err
		}
		if w > interval {
			return best, nil
		}
		best = N
		if N > 1<<30 {
			return best, nil
		}
	}
}
