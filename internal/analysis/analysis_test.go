package analysis

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/keys"
	"repro/internal/keytree"
)

func TestLnChoose(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {52, 5, 2598960}} {
		got := math.Exp(lnChoose(tc.n, tc.k))
		if math.Abs(got-tc.want)/tc.want > 1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
	if !math.IsInf(lnChoose(3, 5), -1) {
		t.Error("C(3,5) not -Inf")
	}
}

func TestExpectedEncryptionsEdgeCases(t *testing.T) {
	if _, err := ExpectedEncryptionsLeave(100, 4, 10); err == nil {
		t.Error("non-power-of-d N accepted")
	}
	if _, err := ExpectedEncryptionsLeave(64, 4, -1); err == nil {
		t.Error("negative L accepted")
	}
	got, err := ExpectedEncryptionsLeave(64, 4, 0)
	if err != nil || got != 0 {
		t.Errorf("L=0: %v, %v", got, err)
	}
	// All users leave: the tree empties, no encryptions.
	got, err = ExpectedEncryptionsLeave(64, 4, 64)
	if err != nil || got != 0 {
		t.Errorf("L=N: %v, %v", got, err)
	}
}

func TestSingleLeaveClosedForm(t *testing.T) {
	// One departure updates exactly the h nodes on its path; the level-l
	// ancestor emits d encryptions minus the departed child edge at the
	// deepest level: total = h*d - 1.
	for _, tc := range []struct{ N, d int }{{64, 4}, {256, 4}, {27, 3}, {8, 2}} {
		h := int(math.Round(math.Log(float64(tc.N)) / math.Log(float64(tc.d))))
		want := float64(h*tc.d - 1)
		got, err := ExpectedEncryptionsLeave(tc.N, tc.d, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("N=%d d=%d: E=%v, want %v", tc.N, tc.d, got, want)
		}
	}
}

// TestClosedFormMatchesMarkingAlgorithm is the package's central
// cross-validation: the closed form must match Monte Carlo runs of the
// actual marking algorithm within sampling error.
func TestClosedFormMatchesMarkingAlgorithm(t *testing.T) {
	const d = 4
	for _, tc := range []struct{ N, L int }{
		{256, 16}, {256, 64}, {256, 200}, {1024, 256}, {64, 1},
	} {
		want, err := ExpectedEncryptionsLeave(tc.N, d, tc.L)
		if err != nil {
			t.Fatal(err)
		}
		tr := keytree.New(d, keys.NewDeterministicGenerator(uint64(tc.N*tc.L)), keytree.WithLite(true))
		joins := make([]keytree.Member, tc.N)
		for i := range joins {
			joins[i] = keytree.Member(i)
		}
		if _, err := tr.ProcessBatch(joins, nil); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(tc.N), uint64(tc.L)))
		const trials = 60
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			cl := tr.Clone()
			members := cl.Members()
			perm := rng.Perm(len(members))
			leaves := make([]keytree.Member, tc.L)
			for i := range leaves {
				leaves[i] = members[perm[i]]
			}
			res, err := cl.ProcessBatch(nil, leaves)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(len(res.Encryptions))
		}
		got := sum / trials
		// Allow 5% relative plus small absolute sampling slack.
		if math.Abs(got-want) > 0.05*want+3 {
			t.Errorf("N=%d L=%d: simulated %.1f, closed form %.1f", tc.N, tc.L, got, want)
		}
	}
}

func TestUpdatedKNodesMatchesMarking(t *testing.T) {
	const d, N, L = 4, 256, 64
	want, err := ExpectedUpdatedKNodes(N, d, L)
	if err != nil {
		t.Fatal(err)
	}
	tr := keytree.New(d, keys.NewDeterministicGenerator(5), keytree.WithLite(true))
	joins := make([]keytree.Member, N)
	for i := range joins {
		joins[i] = keytree.Member(i)
	}
	if _, err := tr.ProcessBatch(joins, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	const trials = 60
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		cl := tr.Clone()
		members := cl.Members()
		perm := rng.Perm(len(members))
		leaves := make([]keytree.Member, L)
		for i := range leaves {
			leaves[i] = members[perm[i]]
		}
		res, err := cl.ProcessBatch(nil, leaves)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.UpdatedKNodes)
	}
	got := sum / trials
	if math.Abs(got-want) > 0.05*want+2 {
		t.Errorf("simulated %.1f updated k-nodes, closed form %.1f", got, want)
	}
}

func TestEncryptionsRiseThenFallInL(t *testing.T) {
	// The paper's observation: encryptions peak near L = N/d.
	const N, d = 4096, 4
	small, _ := ExpectedEncryptionsLeave(N, d, 64)
	peak, _ := ExpectedEncryptionsLeave(N, d, N/d)
	large, _ := ExpectedEncryptionsLeave(N, d, N-64)
	if !(small < peak && large < peak) {
		t.Errorf("no peak near N/d: %v %v %v", small, peak, large)
	}
}

func TestServerWorkAndCapacity(t *testing.T) {
	c := Costs{Sign: 5e-3, Wrap: 1e-6, ParityPerBlockByte: 2e-6, PacketLen: 1027}
	w1, err := ServerWork(c, 1024, 4, 0.25, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ServerWork(c, 4096, 4, 0.25, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if w2 <= w1 {
		t.Errorf("work not increasing in N: %v vs %v", w1, w2)
	}
	small, err := MaxGroupSize(c, 4, 0.25, 10, 1.5, 0.050)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MaxGroupSize(c, 4, 0.25, 10, 1.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("capacity not increasing in interval: %d vs %d", small, large)
	}
	if large < 4096 {
		t.Errorf("a 60 s interval supports only %d users; model broken", large)
	}
}
