// Package stats provides the small summary-statistics helpers the
// experiment harness uses: means, percentiles, and labelled series
// accumulation for figure regeneration.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,100]", p))
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if len(ys) == 1 {
		return ys[0]
	}
	pos := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Accumulator ingests samples and summarises them.
type Accumulator struct {
	xs []float64
}

// Add appends a sample.
func (a *Accumulator) Add(x float64) { a.xs = append(a.xs, x) }

// AddInt appends an integer sample.
func (a *Accumulator) AddInt(x int) { a.Add(float64(x)) }

// N returns the sample count.
func (a *Accumulator) N() int { return len(a.xs) }

// Mean returns the sample mean.
func (a *Accumulator) Mean() float64 { return Mean(a.xs) }

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return StdDev(a.xs) }

// Min returns the smallest sample, or +Inf if empty.
func (a *Accumulator) Min() float64 {
	m := math.Inf(1)
	for _, x := range a.xs {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the largest sample, or -Inf if empty.
func (a *Accumulator) Max() float64 {
	m := math.Inf(-1)
	for _, x := range a.xs {
		m = math.Max(m, x)
	}
	return m
}

// Point is one (x, y) sample of a plotted series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Figure is a set of series sharing axes: one regenerated paper figure.
type Figure struct {
	ID     string // e.g. "F9l"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewSeries adds and returns a fresh series with the given label.
func (f *Figure) NewSeries(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}
