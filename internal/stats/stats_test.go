package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of one sample != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	for i := 1; i <= 10; i++ {
		a.AddInt(i)
	}
	if a.N() != 10 || a.Mean() != 5.5 || a.Min() != 1 || a.Max() != 10 {
		t.Errorf("accumulator summary wrong: n=%d mean=%v min=%v max=%v", a.N(), a.Mean(), a.Min(), a.Max())
	}
}

func TestFigureSeries(t *testing.T) {
	f := &Figure{ID: "F9l"}
	s := f.NewSeries("alpha=20%")
	s.Add(1, 100)
	s.Add(2, 10)
	if len(f.Series) != 1 || len(f.Series[0].Points) != 2 {
		t.Fatal("series bookkeeping broken")
	}
	if f.Series[0].Points[1] != (Point{2, 10}) {
		t.Fatal("point mismatch")
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip floats whose sum could overflow
			}
		}
		m := Mean(xs)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return m >= lo-1e-9*math.Abs(lo)-1e-9 && m <= hi+1e-9*math.Abs(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
