package assign

import "testing"

func TestBaselineCoversAllEncryptions(t *testing.T) {
	_, res := batch(t, 1024, 64, 256, 20)
	plan, err := BuildBaseline(res, Capacity)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range plan.Packets {
		if len(p) > Capacity {
			t.Fatalf("baseline packet holds %d encryptions", len(p))
		}
		total += len(p)
	}
	if total != len(res.Encryptions) {
		t.Fatalf("baseline packs %d entries, rekey subtree has %d (baseline must not duplicate)",
			total, len(res.Encryptions))
	}
}

func TestBaselineUserPacketsSufficient(t *testing.T) {
	_, res := batch(t, 1024, 0, 256, 21)
	plan, err := BuildBaseline(res, Capacity)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.UserIDs {
		inPkts := map[uint32]bool{}
		for _, pi := range plan.UserPackets[u] {
			for _, id := range plan.Packets[pi] {
				inPkts[id] = true
			}
		}
		for _, need := range res.UserNeedIDs(u) {
			if !inPkts[need] {
				t.Fatalf("user %d: encryption %d not covered by its packets", u, need)
			}
		}
	}
}

func TestBaselineUsersNeedMultiplePackets(t *testing.T) {
	// The motivation for UKA: under the baseline, many users straddle
	// packets once the message spans several packets.
	_, res := batch(t, 1024, 0, 256, 22)
	plan, err := BuildBaseline(res, Capacity)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Packets) < 2 {
		t.Skip("message too small")
	}
	multi := 0
	for _, pis := range plan.UserPackets {
		if len(pis) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no user needs more than one packet; baseline indistinguishable from UKA")
	}
}

func TestBaselineRejectsBadCapacity(t *testing.T) {
	_, res := batch(t, 64, 0, 8, 23)
	if _, err := BuildBaseline(res, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}
