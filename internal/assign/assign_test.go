package assign

import (
	"math/rand/v2"
	"testing"

	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/packet"
)

// batch builds an N-user tree and applies an L-leave, J-join batch.
func batch(t testing.TB, n, j, l int, seed uint64) (*keytree.Tree, *keytree.BatchResult) {
	t.Helper()
	tr := keytree.New(4, keys.NewDeterministicGenerator(seed))
	joins := make([]keytree.Member, n)
	for i := range joins {
		joins[i] = keytree.Member(i)
	}
	if _, err := tr.ProcessBatch(joins, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 77))
	members := tr.Members()
	perm := rng.Perm(len(members))
	leaves := make([]keytree.Member, l)
	for i := 0; i < l; i++ {
		leaves[i] = members[perm[i]]
	}
	extra := make([]keytree.Member, j)
	for i := range extra {
		extra[i] = keytree.Member(n + i)
	}
	res, err := tr.ProcessBatch(extra, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

func TestEveryUserInExactlyOnePacket(t *testing.T) {
	tr, res := batch(t, 256, 16, 64, 1)
	plan, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for pi, pp := range plan.Packets {
		if len(pp.EncIDs) > Capacity {
			t.Fatalf("packet %d carries %d encryptions", pi, len(pp.EncIDs))
		}
		for _, u := range pp.Users {
			seen[u]++
		}
	}
	for _, m := range tr.Members() {
		id, _ := tr.UserID(m)
		if seen[id] != 1 {
			t.Fatalf("user %d appears in %d packets", id, seen[id])
		}
		if _, ok := plan.UserPacket[id]; !ok {
			t.Fatalf("user %d missing from UserPacket", id)
		}
	}
}

func TestUserEncryptionsAllInItsPacket(t *testing.T) {
	// The UKA guarantee: every encryption a user needs is inside its
	// single specific packet.
	_, res := batch(t, 256, 0, 64, 2)
	plan, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range plan.Packets {
		inPkt := map[uint32]bool{}
		for _, id := range pp.EncIDs {
			inPkt[id] = true
		}
		for _, u := range pp.Users {
			for _, need := range res.UserNeedIDs(u) {
				if !inPkt[need] {
					t.Fatalf("user %d's encryption %d missing from its packet", u, need)
				}
			}
		}
	}
}

func TestIntervalsAscendingNonOverlapping(t *testing.T) {
	_, res := batch(t, 1024, 64, 256, 3)
	plan, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Packets) < 2 {
		t.Skip("workload produced a single packet")
	}
	for i := 1; i < len(plan.Packets); i++ {
		prev, cur := plan.Packets[i-1], plan.Packets[i]
		if prev.ToID >= cur.FrmID {
			t.Fatalf("packets %d,%d overlap: [%d,%d] then [%d,%d]",
				i-1, i, prev.FrmID, prev.ToID, cur.FrmID, cur.ToID)
		}
	}
}

func TestDuplicationAccounting(t *testing.T) {
	_, res := batch(t, 1024, 0, 256, 4)
	plan, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if plan.DistinctEncryptions != len(res.Encryptions) {
		t.Fatalf("assigned %d distinct encryptions, rekey subtree has %d",
			plan.DistinctEncryptions, len(res.Encryptions))
	}
	if plan.TotalEntries < plan.DistinctEncryptions {
		t.Fatal("fewer entries than distinct encryptions")
	}
	// The paper's bound: duplication overhead < (log_d N - 1) / 46.
	if ov := plan.DuplicationOverhead(); ov > 5.0/46 {
		t.Fatalf("duplication overhead %.3f exceeds the paper's bound %.3f", ov, 5.0/46)
	}
}

func TestEmptyBatchEmptyPlan(t *testing.T) {
	tr := keytree.New(4, keys.NewDeterministicGenerator(5))
	if _, err := tr.ProcessBatch([]keytree.Member{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := tr.ProcessBatch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Packets) != 0 || plan.TotalEntries != 0 {
		t.Fatalf("empty batch yielded %d packets", len(plan.Packets))
	}
}

func TestBuildCapacityRejects(t *testing.T) {
	_, res := batch(t, 64, 0, 8, 6)
	if _, err := BuildCapacity(res, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := BuildCapacity(res, 1); err == nil {
		t.Error("capacity below path length accepted")
	}
}

func TestSmallCapacityStillCovers(t *testing.T) {
	tr, res := batch(t, 256, 0, 64, 7)
	// Height of a 256-user d=4 tree is 4, so any user needs at most 5
	// encryptions; capacity 8 forces many packets but must still work.
	plan, err := BuildCapacity(res, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Packets) < len(res.Encryptions)/8 {
		t.Fatalf("suspiciously few packets: %d", len(plan.Packets))
	}
	for _, m := range tr.Members() {
		id, _ := tr.UserID(m)
		if _, ok := plan.UserPacket[id]; !ok {
			t.Fatalf("user %d unassigned", id)
		}
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	tr, res := batch(t, 256, 16, 64, 8)
	plan, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	pkts, err := Materialize(plan, res, 12, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts)%k != 0 {
		t.Fatalf("%d packets, not a multiple of k=%d", len(pkts), k)
	}
	// Wire round trip for each and duplicate content equality.
	n := len(plan.Packets)
	for i, p := range pkts {
		b, err := p.Marshal()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		got, err := packet.ParseENC(b)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if int(got.BlockID) != i/k || int(got.Seq) != i%k {
			t.Fatalf("packet %d: block/seq %d/%d", i, got.BlockID, got.Seq)
		}
		if got.MaxKID != uint16(res.MaxKID) {
			t.Fatalf("packet %d: maxKID %d", i, got.MaxKID)
		}
	}
	// A user can recover its keys from its materialised packet alone.
	for _, m := range tr.Members() {
		id, _ := tr.UserID(m)
		pi := plan.UserPacket[id]
		p := pkts[pi]
		if int(p.FrmID) > id || id > int(p.ToID) {
			t.Fatalf("user %d outside its packet's range [%d,%d]", id, p.FrmID, p.ToID)
		}
	}
	_ = n
}

func TestMaterializeUserDecryption(t *testing.T) {
	// End to end: a member that receives only its specific materialised
	// ENC packet derives the full new key path.
	d := 4
	tr := keytree.New(d, keys.NewDeterministicGenerator(9))
	joins := make([]keytree.Member, 64)
	for i := range joins {
		joins[i] = keytree.Member(i)
	}
	res0, err := tr.ProcessBatch(joins, nil)
	if err != nil {
		t.Fatal(err)
	}
	views := map[keytree.Member]*keytree.UserView{}
	for _, m := range tr.Members() {
		id, _ := tr.UserID(m)
		ik, _ := tr.IndividualKey(m)
		views[m] = keytree.NewUserView(d, m, id, ik)
		if err := views[m].Apply(res0.MaxKID, res0.UserNeeds(id)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tr.ProcessBatch(nil, []keytree.Member{3, 17, 40})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := Materialize(plan, res, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Members() {
		id, _ := tr.UserID(m)
		p := pkts[plan.UserPacket[id]]
		if err := views[m].Apply(int(p.MaxKID), p.Encs); err != nil {
			t.Fatalf("member %d: %v", m, err)
		}
		gk, ok := views[m].GroupKey()
		if !ok || gk != tr.GroupKey() {
			t.Fatalf("member %d: wrong group key from wire packet", m)
		}
	}
}

func BenchmarkUKAN4096L1024(b *testing.B) {
	_, res := batch(b, 4096, 0, 1024, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(res); err != nil {
			b.Fatal(err)
		}
	}
}
