package assign

import (
	"fmt"

	"repro/internal/keytree"
)

// BaselinePlan is the output of the encryption-oriented baseline
// assignment: encryptions are packed into packets in generation order
// with no regard to users, so a user's encryptions can straddle several
// packets. It exists as the comparison point motivating UKA: the
// probability that a user receives all of its packets in one round
// drops with every extra packet it depends on.
type BaselinePlan struct {
	// Packets[i] lists the encryption IDs in packet i.
	Packets [][]uint32
	// UserPackets maps each user node ID to the (possibly several)
	// packets it needs.
	UserPackets map[int][]int
}

// BuildBaseline packs encryptions sequentially ("encryption-oriented
// assignment"), capacity encryptions per packet. Unlike UKA it sends no
// duplicates -- its entry count is exactly the rekey subtree size --
// but users may need up to tree-height packets.
func BuildBaseline(res *keytree.BatchResult, capacity int) (*BaselinePlan, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("assign: capacity %d, must be positive", capacity)
	}
	plan := &BaselinePlan{UserPackets: make(map[int][]int)}
	where := make(map[uint32]int, len(res.Encryptions))
	var cur []uint32
	for _, e := range res.Encryptions {
		if len(cur) == capacity {
			plan.Packets = append(plan.Packets, cur)
			cur = nil
		}
		where[e.ID] = len(plan.Packets)
		cur = append(cur, e.ID)
	}
	if len(cur) > 0 {
		plan.Packets = append(plan.Packets, cur)
	}
	var needs []uint32
	for _, u := range res.UserIDs {
		seen := map[int]bool{}
		needs = res.AppendUserNeedIDs(needs[:0], u)
		for _, id := range needs {
			pi, ok := where[id]
			if !ok {
				return nil, fmt.Errorf("assign: encryption %d missing from baseline plan", id)
			}
			if !seen[pi] {
				seen[pi] = true
				plan.UserPackets[u] = append(plan.UserPackets[u], pi)
			}
		}
	}
	return plan, nil
}
