// Package assign implements the User-oriented Key Assignment (UKA)
// algorithm: it packs the encryptions of a rekey message into ENC
// packets such that every user's encryptions land in a single packet,
// so the vast majority of users need exactly one specific packet per
// rekey message.
//
// UKA sorts users by ID and repeatedly extracts the longest prefix whose
// combined encryption set fills one packet; the resulting packets carry
// non-overlapping, increasing [FrmID, ToID] user ranges (the property the
// user-side block-ID estimator relies on). Users in different packets
// that share path encryptions receive duplicates, the "duplication
// overhead" evaluated in the paper's Section 4.4.
package assign

import (
	"fmt"
	"sort"

	"repro/internal/blockplan"
	"repro/internal/keytree"
	"repro/internal/packet"
)

// PacketPlan describes one planned ENC packet: the users it serves and
// the encryption IDs it carries (deduplicated within the packet).
type PacketPlan struct {
	FrmID, ToID int
	EncIDs      []uint32
	Users       []int // user node IDs served, ascending
}

// Plan is the output of the UKA algorithm for one rekey message.
type Plan struct {
	Packets []PacketPlan
	// UserPacket maps each user node ID to the index (into Packets) of
	// its specific ENC packet.
	UserPacket map[int]int
	// TotalEntries is the number of encryption entries across all
	// packets, counting duplicates.
	TotalEntries int
	// DistinctEncryptions is the number of distinct encryptions assigned.
	DistinctEncryptions int
}

// DuplicationOverhead is the ratio of duplicated encryptions to the
// total number of encryptions in the rekey subtree.
func (p *Plan) DuplicationOverhead() float64 {
	if p.DistinctEncryptions == 0 {
		return 0
	}
	return float64(p.TotalEntries-p.DistinctEncryptions) / float64(p.DistinctEncryptions)
}

// Capacity is the per-packet encryption budget used by Build; exposed so
// analyses can model other packet sizes.
const Capacity = packet.MaxEncPerPacket

// Source is the batch view UKA packs: the users present after the
// batch, each user's required encryption IDs (bottom-up path order),
// the encryptions themselves, and the MaxKID value every materialised
// ENC packet must carry. *keytree.BatchResult is the single-tree
// implementation; a coordinator's per-shard slice (internal/shard)
// implements it with globalized IDs plus the top-tree encryptions.
type Source interface {
	// UserList returns the post-batch user node IDs, ascending.
	UserList() []int
	// AppendUserNeedIDs appends user userID's required encryption IDs
	// to dst in bottom-up order and returns the extended slice.
	AppendUserNeedIDs(dst []uint32, userID int) []uint32
	// Encryption resolves one encryption by its encrypting-node ID.
	Encryption(id int) (keytree.Encryption, bool)
	// PacketMaxKID is the MaxKID stamped into every ENC packet.
	PacketMaxKID() int
}

// Build runs UKA over a batch source with the default packet capacity.
func Build(res Source) (*Plan, error) {
	return BuildCapacity(res, Capacity)
}

// BuildCapacity runs UKA with an explicit per-packet capacity.
func BuildCapacity(res Source, capacity int) (*Plan, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("assign: capacity %d, must be positive", capacity)
	}
	plan := &Plan{UserPacket: make(map[int]int)}
	users := res.UserList()
	if !sort.IntsAreSorted(users) {
		return nil, fmt.Errorf("assign: user IDs not sorted")
	}

	distinct := make(map[uint32]bool)
	var cur PacketPlan
	inCur := make(map[uint32]bool)

	flush := func() {
		if len(cur.Users) == 0 {
			return
		}
		cur.FrmID = cur.Users[0]
		cur.ToID = cur.Users[len(cur.Users)-1]
		plan.TotalEntries += len(cur.EncIDs)
		plan.Packets = append(plan.Packets, cur)
		cur = PacketPlan{}
		inCur = make(map[uint32]bool)
	}

	var needs []uint32 // reused per user: the path-walk is the UKA hot loop
	for _, u := range users {
		needs = res.AppendUserNeedIDs(needs[:0], u)
		if len(needs) == 0 {
			continue // no key on this user's path changed
		}
		if len(needs) > capacity {
			return nil, fmt.Errorf("assign: user %d needs %d encryptions, capacity %d", u, len(needs), capacity)
		}
		fresh := 0
		for _, id := range needs {
			if !inCur[id] {
				fresh++
			}
		}
		if len(cur.EncIDs)+fresh > capacity {
			flush()
			fresh = len(needs)
		}
		for _, id := range needs {
			if !inCur[id] {
				inCur[id] = true
				cur.EncIDs = append(cur.EncIDs, id)
			}
			distinct[id] = true
		}
		cur.Users = append(cur.Users, u)
		plan.UserPacket[u] = len(plan.Packets) // index the packet will get
	}
	flush()
	plan.DistinctEncryptions = len(distinct)
	return plan, nil
}

// Materialize renders the plan into wire-format ENC packet structures
// for rekey message msgID, partitioned into blocks of size k with the
// last block padded by duplicating its packets (round-robin). The
// returned slice has exactly numBlocks*k entries when padding applies;
// duplicates share payload with their originals but carry their own
// block ID and sequence number.
func Materialize(plan *Plan, res Source, msgID uint8, k int) ([]*packet.ENC, error) {
	if k <= 0 {
		return nil, fmt.Errorf("assign: block size %d, must be positive", k)
	}
	n := len(plan.Packets)
	if n == 0 {
		return nil, nil
	}
	maxKID := res.PacketMaxKID()
	if maxKID > 0xffff {
		return nil, fmt.Errorf("assign: maxKID %d exceeds 16-bit wire field", maxKID)
	}
	part, err := blockplan.NewPartition(n, k)
	if err != nil {
		return nil, err
	}
	total := part.TotalSlots()
	out := make([]*packet.ENC, 0, total)
	for i := 0; i < total; i++ {
		// Last-block slots beyond the real packets duplicate round-robin.
		src := part.RealIndex(i/k, i%k)
		pp := plan.Packets[src]
		if pp.FrmID > 0xffff || pp.ToID > 0xffff {
			return nil, fmt.Errorf("assign: user ID range [%d,%d] exceeds 16-bit wire field", pp.FrmID, pp.ToID)
		}
		if i/k > 0xff {
			return nil, fmt.Errorf("assign: block ID %d exceeds 8-bit wire field", i/k)
		}
		e := &packet.ENC{
			MsgID:   msgID,
			BlockID: uint8(i / k),
			Seq:     uint8(i % k),
			Dup:     part.IsDuplicate(i/k, i%k),
			MaxKID:  uint16(maxKID),
			FrmID:   uint16(pp.FrmID),
			ToID:    uint16(pp.ToID),
		}
		for _, id := range pp.EncIDs {
			enc, ok := res.Encryption(int(id))
			if !ok {
				return nil, fmt.Errorf("assign: plan references missing encryption %d", id)
			}
			e.Encs = append(e.Encs, enc)
		}
		out = append(out, e)
	}
	return out, nil
}
