package udptrans

import (
	"context"
	"testing"
	"time"

	rekey "repro"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
)

// mangleFor builds a per-member impairment hook: burst loss, reordering
// and duplication composed by a seeded netsim.Mangler. USR packets pass
// through unimpaired -- the escalating-duplicate unicast stage bounds
// retries, and starving it forever only slows the test down.
func mangleFor(seed uint64) func([]byte) [][]byte {
	m, err := netsim.NewMangler(netsim.MangleConfig{
		Loss: 0.25, Interval: 0.05, // bursts span ~2 consecutive packets
		Reorder: 0.20, HoldFor: 3,
		Dup: 0.15,
	}, seed)
	if err != nil {
		panic(err)
	}
	return func(pkt []byte) [][]byte {
		if typ, err := packet.Detect(pkt); err == nil && typ == packet.TypeUSR {
			return [][]byte{pkt}
		}
		return m.Mangle(pkt)
	}
}

// distributeUntilKeyed distributes rm, re-sending if some member is
// still unkeyed: a loss burst can swallow a member's entire view of the
// message, in which case it never NACKs and the server cannot tell it
// from a finished member. Deployments cover that window by periodic
// retransmission; this models it with a bounded retry.
func distributeUntilKeyed(t *testing.T, ks *rekey.Server, srv *Server, rm *rekey.RekeyMessage, clients map[rekey.MemberID]*Client) {
	t.Helper()
	want := ks.GroupKey()
	keyed := func() bool {
		for _, c := range clients {
			if gk, ok := c.Member.GroupKey(); !ok || gk != want {
				return false
			}
		}
		return true
	}
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := srv.Distribute(context.Background(), rm, DefaultOptions()); err != nil {
			t.Fatalf("distribute (attempt %d): %v", attempt, err)
		}
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if keyed() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitKeyed(t, ks, clients, time.Second) // report who is stuck
}

// TestImpairedEndToEnd runs a full rekey cycle over real UDP loopback
// with every client behind a seeded reorder+duplicate+burst-loss
// impairment, then checks the protocol invariants: every survivor
// converges to exactly the server's path keys, no departed member can
// recover the new group key from the rekey message, and the server-side
// key-management counters hold their deterministic values.
func TestImpairedEndToEnd(t *testing.T) {
	const n = 24
	reg := obs.New()
	tun := rekey.DefaultTuning()
	tun.InitialRho = 1.0 // no proactive parity: force NACK-driven recovery
	ks, err := rekey.NewServer(rekey.WithTuning(tun), rekey.WithKeySeed(11), rekey.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ks, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	addClient := func(id rekey.MemberID, seed uint64) *Client {
		cred, ok := ks.Credentials(id)
		if !ok {
			t.Fatalf("no credentials for %d", id)
		}
		c, err := NewClient(cred, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c.Mangle = mangleFor(seed)
		srv.SetMemberAddr(id, c.Addr())
		go c.Run(context.Background()) //nolint:errcheck
		t.Cleanup(func() { c.Close() })
		return c
	}

	// Bootstrap n members through the first rekey message.
	for i := 0; i < n; i++ {
		if err := ks.QueueJoin(rekey.MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm1, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	clients := make(map[rekey.MemberID]*Client, n)
	for i := 0; i < n; i++ {
		clients[rekey.MemberID(i)] = addClient(rekey.MemberID(i), 1000+uint64(i))
	}
	distributeUntilKeyed(t, ks, srv, rm1, clients)

	// Churn batch: 6 leave, 4 join. Keep the leavers' member state for
	// the offline forward-secrecy check.
	leavers := []rekey.MemberID{1, 5, 9, 13, 17, 21}
	departed := make(map[rekey.MemberID]*rekey.Member, len(leavers))
	for _, id := range leavers {
		if err := ks.QueueLeave(id); err != nil {
			t.Fatal(err)
		}
		departed[id] = clients[id].Member
		clients[id].Close()
		srv.RemoveMemberAddr(id)
		delete(clients, id)
	}
	joiners := []rekey.MemberID{100, 101, 102, 103}
	for _, id := range joiners {
		if err := ks.QueueJoin(id); err != nil {
			t.Fatal(err)
		}
	}
	rm2, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range joiners {
		clients[id] = addClient(id, 2000+uint64(i))
	}
	distributeUntilKeyed(t, ks, srv, rm2, clients)

	// Key consistency: every survivor holds exactly the path keys the
	// server prescribes (stale extras allowed, wrong or missing not).
	for id, c := range clients {
		want, ok := ks.PathKeys(id)
		if !ok {
			t.Fatalf("server has no path keys for %d", id)
		}
		got := c.Member.Keys()
		for nodeID, wk := range want {
			gk, ok := got[nodeID]
			if !ok {
				t.Fatalf("member %d missing key of node %d", id, nodeID)
			}
			if gk != wk {
				t.Fatalf("member %d holds wrong key for node %d", id, nodeID)
			}
		}
	}

	// Forward secrecy, offline: hand each departed member every ENC
	// packet of the post-leave message; none may recover the new group
	// key (their unwrap keys were all rotated).
	group := ks.GroupKey()
	for id, m := range departed {
		for _, enc := range rm2.ENC {
			raw, err := enc.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			m.Ingest(raw) //nolint:errcheck // errors expected: keys rotated
		}
		if gk, ok := m.GroupKey(); ok && gk == group {
			t.Fatalf("departed member %d recovered the new group key", id)
		}
	}

	// Stable obs counters: the key-management side is deterministic in
	// the seed and churn sequence, regardless of network timing.
	for _, tc := range []struct {
		name string
		c    obs.Counter
		want int64
	}{
		{"rekeys", obs.CRekeys, 2},
		{"joins", obs.CJoins, int64(n + len(joiners))},
		{"leaves", obs.CLeaves, int64(len(leavers))},
	} {
		if got := reg.CounterValue(tc.c); got != tc.want {
			t.Errorf("counter %s = %d, want %d", tc.name, got, tc.want)
		}
	}
	// keys_generated and wraps must match an identical offline replay of
	// the same churn against the same key seed -- network impairments
	// must not leak into key management.
	reg2 := obs.New()
	ks2, err := rekey.NewServer(rekey.WithTuning(tun), rekey.WithKeySeed(11), rekey.WithObs(reg2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ks2.QueueJoin(rekey.MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ks2.Rekey(); err != nil {
		t.Fatal(err)
	}
	for _, id := range leavers {
		if err := ks2.QueueLeave(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range joiners {
		if err := ks2.QueueJoin(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ks2.Rekey(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		c    obs.Counter
	}{{"keys_generated", obs.CKeysGenerated}, {"wraps", obs.CWraps}} {
		live, replay := reg.CounterValue(c.c), reg2.CounterValue(c.c)
		if live == 0 || live != replay {
			t.Errorf("counter %s: live=%d replay=%d (want equal, nonzero)", c.name, live, replay)
		}
	}
}
