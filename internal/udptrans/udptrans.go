// Package udptrans runs the rekey transport protocol over real UDP
// sockets: the key server multicasts ENC and PARITY packets (emulated
// as a unicast fan-out, which keeps the code portable to hosts without
// multicast routing), collects NACKs for a round, retransmits fresh
// parity, and finally unicasts USR packets with escalating duplication
// -- the same state machine internal/protocol simulates, driving real
// bytes through real sockets.
package udptrans

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	rekey "repro"
	"repro/internal/blockplan"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/protocol"
)

// Server distributes rekey messages to registered member addresses.
type Server struct {
	ks   *rekey.Server
	conn *net.UDPConn
	obs  *obs.Registry // shared with ks; nil when unobserved
	// bufs pools the datagram build buffers of the multicast hot path;
	// sized for the largest possible datagram (packet + auth trailer).
	bufs *protocol.BufPool

	mu    sync.Mutex
	addrs map[rekey.MemberID]*net.UDPAddr // guarded by mu

	// lastAmax carries the previous round's per-block parity demand;
	// Distribute is single-flight per server.
	lastAmax []int
}

// NewServer binds a UDP socket (addr like "127.0.0.1:0") for the key
// server's transport. The transport reports into the key server's
// obs registry (rekey.Config.Obs), so one registry observes the whole
// server-side pipeline.
func NewServer(ks *rekey.Server, addr string) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptrans: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udptrans: %w", err)
	}
	return &Server{
		ks:    ks,
		conn:  conn,
		obs:   ks.Obs(),
		bufs:  protocol.NewBufPool(packet.PacketLen+packet.MaxAuthTrailer, ks.Obs()),
		addrs: make(map[rekey.MemberID]*net.UDPAddr),
	}, nil
}

// Addr returns the server's bound address (for clients' NACKs).
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close releases the socket.
func (s *Server) Close() error { return s.conn.Close() }

// SetMemberAddr registers (or updates) the delivery address of a member.
func (s *Server) SetMemberAddr(id rekey.MemberID, addr *net.UDPAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addrs[id] = addr
}

// RemoveMemberAddr unregisters a departed member.
func (s *Server) RemoveMemberAddr(id rekey.MemberID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.addrs, id)
}

// addrPorts snapshots the registered member addresses as netip values,
// the form WriteToUDPAddrPort sends to without per-call sockaddr
// allocations. Built once per multicast round, amortised over every
// packet of the round.
func (s *Server) addrPorts() []netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]netip.AddrPort, 0, len(s.addrs))
	for _, a := range s.addrs {
		out = append(out, addrPort(a))
	}
	return out
}

// addrPort converts a registered *net.UDPAddr to netip form. Resolved
// IPv4 addresses often arrive in net.IP's 16-byte mapped encoding;
// Unmap keeps them sendable through an IPv4-bound socket (a v4-in-6
// netip address fails the address-family check in WriteToUDPAddrPort).
func addrPort(a *net.UDPAddr) netip.AddrPort {
	ap := a.AddrPort()
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// Options tune one Distribute run's wire behaviour: timing and the
// unicast budget. The protocol knobs -- rho0, the multicast round
// budget, the encode worker bound -- are NOT here: Distribute reads
// them from the key server's shared tuning (rekey.Config.Tuning), so
// every knob stays defined in exactly one options type.
type Options struct {
	// RoundDur is how long the server listens for NACKs after each
	// multicast round (covers the maximum member RTT).
	RoundDur time.Duration
	// MaxUnicastWaves bounds the unicast retransmission phase.
	MaxUnicastWaves int
	// SendInterval paces multicast sends; zero sends back to back.
	SendInterval time.Duration
}

// DefaultOptions returns timing suitable for LAN/loopback operation.
func DefaultOptions() Options {
	return Options{
		RoundDur:        150 * time.Millisecond,
		MaxUnicastWaves: 8,
	}
}

// Validate checks the wire options, naming the offending field.
func (o Options) Validate() error {
	if o.RoundDur < 0 {
		return fmt.Errorf("udptrans: RoundDur = %v, want >= 0", o.RoundDur)
	}
	if o.MaxUnicastWaves < 0 {
		return fmt.Errorf("udptrans: MaxUnicastWaves = %d, want >= 0", o.MaxUnicastWaves)
	}
	if o.SendInterval < 0 {
		return fmt.Errorf("udptrans: SendInterval = %v, want >= 0", o.SendInterval)
	}
	return nil
}

// Stats reports one distribution run.
type Stats struct {
	EncSent       int
	ParitySent    int
	UsrSent       int
	Rounds        int
	UnicastWaves  int
	NACKsPerRound []int
}

// Distribute runs the full transport protocol for one rekey message.
// It returns once the NACK stream has gone quiet (all members done or
// the unicast wave budget is exhausted). The protocol knobs (rho0,
// multicast round budget, encode workers) come from the key server's
// tuning; opts carries only wire timing. Cancelling ctx aborts the
// NACK-collection waits and returns ctx's error.
func (s *Server) Distribute(ctx context.Context, rm *rekey.RekeyMessage, opts Options) (*Stats, error) {
	if len(rm.ENC) == 0 {
		return &Stats{}, nil
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.RoundDur == 0 {
		opts.RoundDur = 150 * time.Millisecond
	}
	if opts.MaxUnicastWaves == 0 {
		opts.MaxUnicastWaves = 8
	}
	tun := s.ks.Tuning()
	maxRounds := tun.MaxMulticastRounds
	if maxRounds <= 0 {
		maxRounds = 2
	}
	s.obs.Set(obs.GRho, tun.InitialRho)

	// A cancelled context unblocks the read wait in collectNACKs by
	// expiring the socket's read deadline immediately.
	stopWatch := context.AfterFunc(ctx, func() {
		s.conn.SetReadDeadline(time.Now()) //nolint:errcheck
	})
	defer stopWatch()

	st := &Stats{}
	k := rm.Part.K
	blocks := rm.Part.NumBlocks()
	nextParity := make([]int, blocks)

	// pendingUsers accumulates node IDs that NACKed and may need USR
	// packets in the unicast phase.
	pendingUsers := make(map[int]bool)

	for round := 1; ; round++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		var roundStart time.Time
		if s.obs.Enabled() {
			roundStart = time.Now()
		}
		var refs []blockplan.Ref
		if round == 1 {
			refs = blockplan.RoundOne(rm.Part, tun.InitialRho)
			for b := range nextParity {
				nextParity[b] = blockplan.ProactiveParity(k, tun.InitialRho)
			}
		} else {
			perBlock := make([][]int, blocks)
			for b := 0; b < blocks; b++ {
				for j := 0; j < s.lastAmax[b]; j++ {
					perBlock[b] = append(perBlock[b], k+nextParity[b])
					nextParity[b]++
				}
			}
			refs = blockplan.Interleave(perBlock)
		}
		s.obs.Emit(obs.Event{Kind: obs.EvRoundStart, MsgID: rm.MsgID, Round: round, Value: float64(len(refs))})
		// After either branch, nextParity[b] is the total parity prefix
		// this round's refs reach into; generate it across all blocks in
		// parallel so multicastRefs hits the cache.
		if err := rm.PrecomputeParity(ctx, nextParity, tun.Workers); err != nil {
			return st, err
		}
		if err := s.multicastRefs(ctx, rm, refs, opts.SendInterval, st); err != nil {
			return st, err
		}
		st.Rounds = round

		nacks, amax, users, err := s.collectNACKs(ctx, rm, blocks, k, opts.RoundDur)
		if s.obs.Enabled() {
			s.obs.ObserveSince(obs.HRoundLatency, roundStart)
			s.obs.Observe(obs.HNACKsPerRound, float64(nacks))
		}
		if err != nil {
			return st, err
		}
		st.NACKsPerRound = append(st.NACKsPerRound, nacks)
		for u := range users {
			pendingUsers[u] = true
		}
		if nacks == 0 {
			return st, nil
		}
		s.lastAmax = amax
		if round >= maxRounds {
			break
		}
	}

	// Unicast phase: escalating duplicates per Fig. 22.
	s.obs.Emit(obs.Event{Kind: obs.EvSwitchToUnicast, MsgID: rm.MsgID,
		Round: st.Rounds, Value: float64(len(pendingUsers))})
	dups := 2
	for wave := 1; wave <= opts.MaxUnicastWaves && len(pendingUsers) > 0; wave++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		st.UnicastWaves = wave
		s.obs.Inc(obs.CUnicastWaves)
		if err := s.unicastUSR(rm, pendingUsers, dups, st); err != nil {
			return st, err
		}
		dups++
		nacks, _, users, err := s.collectNACKs(ctx, rm, blocks, k, opts.RoundDur)
		if s.obs.Enabled() {
			s.obs.Observe(obs.HNACKsPerRound, float64(nacks))
		}
		if err != nil {
			return st, err
		}
		st.NACKsPerRound = append(st.NACKsPerRound, nacks)
		pendingUsers = users
		if nacks == 0 {
			return st, nil
		}
	}
	if len(pendingUsers) > 0 {
		return st, fmt.Errorf("udptrans: %d users still pending after unicast budget", len(pendingUsers))
	}
	return st, nil
}

func (s *Server) multicastRefs(ctx context.Context, rm *rekey.RekeyMessage, refs []blockplan.Ref, pace time.Duration, st *Stats) error {
	addrs := s.addrPorts()
	k := rm.Part.K
	// One pooled buffer serves every parity datagram of the round; ENC
	// datagrams are sent straight from the message's cached wire bytes.
	buf := s.bufs.Get()
	defer buf.Release()
	for _, r := range refs {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := s.sendRef(rm, r, k, buf, addrs, st); err != nil {
			return err
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	return nil
}

// sendRef builds one ref's datagram and fans it out to every member
// address. This is the transport's per-packet inner loop: ENC packets
// reuse the interval's cached wire bytes outright, PARITY packets are
// rebuilt into the pooled buffer from the cached FEC payload, and the
// socket writes go through the AddrPort API -- zero allocations per
// packet once the interval's caches are warm.
//
//rekeylint:hotpath
func (s *Server) sendRef(rm *rekey.RekeyMessage, r blockplan.Ref, k int, buf *protocol.SendBuf, addrs []netip.AddrPort, st *Stats) error {
	var wire []byte
	if r.IsParity(k) {
		w, err := rm.AppendWireParity(buf.Take(), r.Block, r.Shard-k)
		if err != nil {
			return err
		}
		buf.Store(w)
		wire = w
		st.ParitySent++
		s.obs.Inc(obs.CParitySent)
	} else {
		w, err := rm.WireENC(r.Block*k + r.Shard)
		if err != nil {
			return err
		}
		wire = w
		st.EncSent++
		s.obs.Inc(obs.CEncSent)
	}
	// The fan-out borrows the buffer; with synchronous writes the
	// retain/release pair brackets the sends, and an async sender would
	// hold its reference until the kernel is done with the bytes.
	buf.Retain()
	defer buf.Release()
	for _, a := range addrs {
		if _, err := s.conn.WriteToUDPAddrPort(wire, a); err != nil {
			return sendErr("multicast", err) //rekeylint:ignore cold socket-error path boxes the op name
		}
	}
	return nil
}

// sendErr wraps a socket error off the hot path (fmt allocates).
func sendErr(op string, err error) error {
	return fmt.Errorf("udptrans: %s: %w", op, err)
}

// collectNACKs listens for one round duration and aggregates feedback.
func (s *Server) collectNACKs(ctx context.Context, rm *rekey.RekeyMessage, blocks, k int, dur time.Duration) (nacks int, amax []int, users map[int]bool, err error) {
	amax = make([]int, blocks)
	users = make(map[int]bool)
	deadline := time.Now().Add(dur)
	buf := make([]byte, 2048)
	seen := make(map[uint16]bool)
	for {
		if err := ctx.Err(); err != nil {
			return 0, nil, nil, err
		}
		if err := s.conn.SetReadDeadline(deadline); err != nil {
			return 0, nil, nil, err
		}
		n, _, rerr := s.conn.ReadFromUDP(buf)
		if rerr != nil {
			var ne net.Error
			if errors.As(rerr, &ne) && ne.Timeout() {
				if err := ctx.Err(); err != nil {
					return 0, nil, nil, err
				}
				return nacks, amax, users, nil
			}
			return 0, nil, nil, rerr
		}
		typ, derr := packet.Detect(buf[:n])
		if derr != nil || typ != packet.TypeNACK {
			s.obs.Inc(obs.CNACKIgnored)
			continue
		}
		nk, perr := packet.ParseNACK(append([]byte(nil), buf[:n]...))
		if perr != nil || nk.MsgID != rm.MsgID {
			s.obs.Inc(obs.CNACKIgnored)
			continue
		}
		if seen[nk.UserID] {
			s.obs.Inc(obs.CNACKIgnored)
			continue // one NACK per user per round
		}
		seen[nk.UserID] = true
		nacks++
		users[int(nk.UserID)] = true
		maxReq := 0
		for _, r := range nk.Requests {
			if int(r.BlockID) < blocks && int(r.Count) > amax[r.BlockID] {
				amax[r.BlockID] = int(r.Count)
			}
			if int(r.Count) > maxReq {
				maxReq = int(r.Count)
			}
		}
		if s.obs.Enabled() {
			s.obs.Inc(obs.CNACKRecv)
			s.obs.Emit(obs.Event{Kind: obs.EvNACKReceived, MsgID: rm.MsgID,
				User: int(nk.UserID), Value: float64(maxReq)})
		}
	}
}

func (s *Server) unicastUSR(rm *rekey.RekeyMessage, users map[int]bool, dups int, st *Stats) error {
	// Map node IDs back to member addresses via the server's group view.
	for nodeID := range users {
		// WireUSR carries the auth trailer on signed messages and is the
		// plain marshal otherwise; the unicast phase is the cold path, so
		// the datagram is built per user rather than cached.
		raw, err := rm.WireUSR(nodeID)
		if err != nil {
			return err
		}
		addr := s.addrForNode(nodeID)
		if addr == nil {
			continue // member departed or unknown
		}
		ap := addrPort(addr)
		for j := 0; j < dups; j++ {
			if _, err := s.conn.WriteToUDPAddrPort(raw, ap); err != nil {
				return sendErr("unicast", err)
			}
			st.UsrSent++
			s.obs.Inc(obs.CUsrSent)
		}
	}
	return nil
}

// addrForNode resolves a key tree node ID to a registered address.
func (s *Server) addrForNode(nodeID int) *net.UDPAddr {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, a := range s.addrs {
		if cred, ok := s.ks.Credentials(id); ok && cred.NodeID == nodeID {
			return a
		}
	}
	return nil
}
