// Package udptrans runs the rekey transport protocol over real UDP
// sockets: the key server multicasts ENC and PARITY packets (emulated
// as a unicast fan-out, which keeps the code portable to hosts without
// multicast routing), collects NACKs for a round, retransmits fresh
// parity, and finally unicasts USR packets with escalating duplication
// -- the same state machine internal/protocol simulates, driving real
// bytes through real sockets.
package udptrans

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	rekey "repro"
	"repro/internal/blockplan"
	"repro/internal/packet"
)

// Server distributes rekey messages to registered member addresses.
type Server struct {
	ks   *rekey.Server
	conn *net.UDPConn

	mu    sync.Mutex
	addrs map[rekey.MemberID]*net.UDPAddr

	// lastAmax carries the previous round's per-block parity demand;
	// Distribute is single-flight per server.
	lastAmax []int
}

// NewServer binds a UDP socket (addr like "127.0.0.1:0") for the key
// server's transport.
func NewServer(ks *rekey.Server, addr string) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptrans: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udptrans: %w", err)
	}
	return &Server{ks: ks, conn: conn, addrs: make(map[rekey.MemberID]*net.UDPAddr)}, nil
}

// Addr returns the server's bound address (for clients' NACKs).
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close releases the socket.
func (s *Server) Close() error { return s.conn.Close() }

// SetMemberAddr registers (or updates) the delivery address of a member.
func (s *Server) SetMemberAddr(id rekey.MemberID, addr *net.UDPAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addrs[id] = addr
}

// RemoveMemberAddr unregisters a departed member.
func (s *Server) RemoveMemberAddr(id rekey.MemberID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.addrs, id)
}

func (s *Server) addrList() []*net.UDPAddr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*net.UDPAddr, 0, len(s.addrs))
	for _, a := range s.addrs {
		out = append(out, a)
	}
	return out
}

// Options tune one Distribute run.
type Options struct {
	// Rho is the proactivity factor for round 1.
	Rho float64
	// RoundDur is how long the server listens for NACKs after each
	// multicast round (covers the maximum member RTT).
	RoundDur time.Duration
	// MaxMulticastRounds bounds the multicast phase before unicast
	// (the paper suggests 1 or 2).
	MaxMulticastRounds int
	// MaxUnicastWaves bounds the unicast retransmission phase.
	MaxUnicastWaves int
	// SendInterval paces multicast sends; zero sends back to back.
	SendInterval time.Duration
	// Workers bounds the goroutines used to precompute each round's
	// PARITY packets across blocks; 0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions returns values suitable for LAN/loopback operation.
func DefaultOptions() Options {
	return Options{
		Rho:                1.2,
		RoundDur:           150 * time.Millisecond,
		MaxMulticastRounds: 2,
		MaxUnicastWaves:    8,
	}
}

// Stats reports one distribution run.
type Stats struct {
	EncSent       int
	ParitySent    int
	UsrSent       int
	Rounds        int
	UnicastWaves  int
	NACKsPerRound []int
}

// Distribute runs the full transport protocol for one rekey message.
// It returns once the NACK stream has gone quiet (all members done or
// the unicast wave budget is exhausted).
func (s *Server) Distribute(rm *rekey.RekeyMessage, opts Options) (*Stats, error) {
	if len(rm.ENC) == 0 {
		return &Stats{}, nil
	}
	if opts.RoundDur <= 0 {
		opts.RoundDur = 150 * time.Millisecond
	}
	if opts.MaxMulticastRounds <= 0 {
		opts.MaxMulticastRounds = 2
	}
	if opts.MaxUnicastWaves <= 0 {
		opts.MaxUnicastWaves = 8
	}
	st := &Stats{}
	k := rm.Part.K
	blocks := rm.Part.NumBlocks()
	nextParity := make([]int, blocks)
	for b := range nextParity {
		nextParity[b] = 0
	}

	// pendingUsers accumulates node IDs that NACKed and may need USR
	// packets in the unicast phase.
	pendingUsers := make(map[int]bool)

	for round := 1; ; round++ {
		var refs []blockplan.Ref
		if round == 1 {
			refs = blockplan.RoundOne(rm.Part, opts.Rho)
			for b := range nextParity {
				nextParity[b] = blockplan.ProactiveParity(k, opts.Rho)
			}
		} else {
			perBlock := make([][]int, blocks)
			for b := 0; b < blocks; b++ {
				for j := 0; j < s.lastAmax[b]; j++ {
					perBlock[b] = append(perBlock[b], k+nextParity[b])
					nextParity[b]++
				}
			}
			refs = blockplan.Interleave(perBlock)
		}
		// After either branch, nextParity[b] is the total parity prefix
		// this round's refs reach into; generate it across all blocks in
		// parallel so multicastRefs hits the cache.
		if err := rm.PrecomputeParity(nextParity, opts.Workers); err != nil {
			return st, err
		}
		if err := s.multicastRefs(rm, refs, opts.SendInterval, st); err != nil {
			return st, err
		}
		st.Rounds = round

		nacks, amax, users, err := s.collectNACKs(rm, blocks, k, opts.RoundDur)
		if err != nil {
			return st, err
		}
		st.NACKsPerRound = append(st.NACKsPerRound, nacks)
		for u := range users {
			pendingUsers[u] = true
		}
		if nacks == 0 {
			return st, nil
		}
		s.lastAmax = amax
		if round >= opts.MaxMulticastRounds {
			break
		}
	}

	// Unicast phase: escalating duplicates per Fig. 22.
	dups := 2
	for wave := 1; wave <= opts.MaxUnicastWaves && len(pendingUsers) > 0; wave++ {
		st.UnicastWaves = wave
		if err := s.unicastUSR(rm, pendingUsers, dups, st); err != nil {
			return st, err
		}
		dups++
		nacks, _, users, err := s.collectNACKs(rm, blocks, k, opts.RoundDur)
		if err != nil {
			return st, err
		}
		st.NACKsPerRound = append(st.NACKsPerRound, nacks)
		pendingUsers = users
		if nacks == 0 {
			return st, nil
		}
	}
	if len(pendingUsers) > 0 {
		return st, fmt.Errorf("udptrans: %d users still pending after unicast budget", len(pendingUsers))
	}
	return st, nil
}

func (s *Server) multicastRefs(rm *rekey.RekeyMessage, refs []blockplan.Ref, pace time.Duration, st *Stats) error {
	addrs := s.addrList()
	k := rm.Part.K
	for _, r := range refs {
		var raw []byte
		var err error
		if r.IsParity(k) {
			p, perr := rm.Parity(r.Block, r.Shard-k)
			if perr != nil {
				return perr
			}
			raw, err = p.Marshal()
			st.ParitySent++
		} else {
			raw, err = rm.ENC[r.Block*k+r.Shard].Marshal()
			st.EncSent++
		}
		if err != nil {
			return err
		}
		for _, a := range addrs {
			if _, err := s.conn.WriteToUDP(raw, a); err != nil {
				return fmt.Errorf("udptrans: multicast: %w", err)
			}
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	return nil
}

// collectNACKs listens for one round duration and aggregates feedback.
func (s *Server) collectNACKs(rm *rekey.RekeyMessage, blocks, k int, dur time.Duration) (nacks int, amax []int, users map[int]bool, err error) {
	amax = make([]int, blocks)
	users = make(map[int]bool)
	deadline := time.Now().Add(dur)
	buf := make([]byte, 2048)
	seen := make(map[uint16]bool)
	for {
		if err := s.conn.SetReadDeadline(deadline); err != nil {
			return 0, nil, nil, err
		}
		n, _, rerr := s.conn.ReadFromUDP(buf)
		if rerr != nil {
			var ne net.Error
			if errors.As(rerr, &ne) && ne.Timeout() {
				return nacks, amax, users, nil
			}
			return 0, nil, nil, rerr
		}
		typ, derr := packet.Detect(buf[:n])
		if derr != nil || typ != packet.TypeNACK {
			continue
		}
		nk, perr := packet.ParseNACK(append([]byte(nil), buf[:n]...))
		if perr != nil || nk.MsgID != rm.MsgID {
			continue
		}
		if seen[nk.UserID] {
			continue // one NACK per user per round
		}
		seen[nk.UserID] = true
		nacks++
		users[int(nk.UserID)] = true
		for _, r := range nk.Requests {
			if int(r.BlockID) < blocks && int(r.Count) > amax[r.BlockID] {
				amax[r.BlockID] = int(r.Count)
			}
		}
	}
}

func (s *Server) unicastUSR(rm *rekey.RekeyMessage, users map[int]bool, dups int, st *Stats) error {
	// Map node IDs back to member addresses via the server's group view.
	for nodeID := range users {
		usr, err := rm.USRFor(nodeID)
		if err != nil {
			return err
		}
		raw, err := usr.Marshal()
		if err != nil {
			return err
		}
		addr := s.addrForNode(nodeID)
		if addr == nil {
			continue // member departed or unknown
		}
		for j := 0; j < dups; j++ {
			if _, err := s.conn.WriteToUDP(raw, addr); err != nil {
				return fmt.Errorf("udptrans: unicast: %w", err)
			}
			st.UsrSent++
		}
	}
	return nil
}

// addrForNode resolves a key tree node ID to a registered address.
func (s *Server) addrForNode(nodeID int) *net.UDPAddr {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, a := range s.addrs {
		if cred, ok := s.ks.Credentials(id); ok && cred.NodeID == nodeID {
			return a
		}
	}
	return nil
}
