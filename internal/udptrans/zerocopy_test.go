package udptrans

import (
	"context"
	"math/rand/v2"
	"net"
	"net/netip"
	"testing"
	"time"

	rekey "repro"
	"repro/internal/blockplan"
	"repro/internal/keys"
	"repro/internal/packet"
)

// wiredServer builds a key server + transport with n registered member
// addresses (no clients listening: UDP sends to silent loopback ports
// succeed) and one rekey message, for exercising the send path alone.
func wiredServer(t *testing.T, n int, opts ...rekey.Option) (*Server, *rekey.RekeyMessage) {
	t.Helper()
	ks, err := rekey.NewServer(opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ks, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	for i := 0; i < n; i++ {
		if err := ks.QueueJoin(rekey.MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ap := netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(40000+i))
		srv.SetMemberAddr(rekey.MemberID(i), net.UDPAddrFromAddrPort(ap))
	}
	return srv, rm
}

// TestSendRefSteadyStateAllocs pins the zero-copy guarantee from the
// socket side: once the interval's wire and parity caches are warm, one
// ENC fan-out plus one PARITY fan-out allocates nothing -- signed or
// not.
func TestSendRefSteadyStateAllocs(t *testing.T) {
	signer, err := keys.NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []rekey.Option
	}{
		{"unsigned", []rekey.Option{rekey.WithKeySeed(7)}},
		{"signed", []rekey.Option{rekey.WithKeySeed(7), rekey.WithSigner(signer)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, rm := wiredServer(t, 4, tc.opts...)
			k := rm.Part.K
			counts := make([]int, rm.Blocks())
			for b := range counts {
				counts[b] = 2
			}
			if err := rm.PrecomputeParity(context.Background(), counts, 1); err != nil {
				t.Fatal(err)
			}

			addrs := srv.addrPorts()
			buf := srv.bufs.Get()
			defer buf.Release()
			st := &Stats{}
			encRef := blockplan.Ref{Block: 0, Shard: 0}
			parRef := blockplan.Ref{Block: 0, Shard: k} // parity 0

			// Warm the wire caches once (first ENC marshal, first trailer).
			for _, r := range []blockplan.Ref{encRef, parRef} {
				if err := srv.sendRef(rm, r, k, buf, addrs, st); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := srv.sendRef(rm, encRef, k, buf, addrs, st); err != nil {
					t.Fatal(err)
				}
				if err := srv.sendRef(rm, parRef, k, buf, addrs, st); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("allocs per ENC+PARITY fan-out = %v, want 0", allocs)
			}
			if st.EncSent == 0 || st.ParitySent == 0 {
				t.Fatalf("stats not advanced: %+v", st)
			}
		})
	}
}

// TestLoopbackAuthenticated runs the full transport over real sockets
// with interval signing on and every member verifying: trailered
// datagrams cross the wire, lossy members recover blocks from
// authenticated parity, and everyone lands on the group key.
func TestLoopbackAuthenticated(t *testing.T) {
	signer, err := keys.NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := rekey.NewServer(rekey.WithKeySeed(11), rekey.WithSigner(signer))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ks, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	const n = 12
	for i := 0; i < n; i++ {
		if err := ks.QueueJoin(rekey.MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	if !rm.Authenticated() {
		t.Fatal("message not authenticated despite WithSigner")
	}

	clients := make(map[rekey.MemberID]*Client, n)
	for i := 0; i < n; i++ {
		cred, ok := ks.Credentials(rekey.MemberID(i))
		if !ok {
			t.Fatalf("no credentials for %d", i)
		}
		c, err := NewClient(cred, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c.Member.SetVerifier(keys.NewRootVerifier(ks.SignerPublic()))
		if i%2 == 0 {
			// Half the members lose 30% of multicast data packets and
			// must recover through authenticated parity.
			rng := rand.New(rand.NewPCG(uint64(i), 99))
			c.Drop = func(pkt []byte) bool {
				typ, err := packet.Detect(pkt)
				return err == nil && typ == packet.TypeENC && rng.Float64() < 0.3
			}
		}
		clients[rekey.MemberID(i)] = c
		srv.SetMemberAddr(rekey.MemberID(i), c.Addr())
		go c.Run(context.Background()) //nolint:errcheck
		t.Cleanup(func() { c.Close() })
	}
	if _, err := srv.Distribute(context.Background(), rm, DefaultOptions()); err != nil {
		t.Fatalf("distribute: %v", err)
	}
	waitKeyed(t, ks, clients, 5*time.Second)

	// Second interval: the root verifier caches roll over to a fresh
	// root and everyone re-keys.
	if err := ks.QueueLeave(3); err != nil {
		t.Fatal(err)
	}
	clients[3].Close()
	srv.RemoveMemberAddr(3)
	delete(clients, 3)
	rm2, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Distribute(context.Background(), rm2, DefaultOptions()); err != nil {
		t.Fatalf("distribute 2: %v", err)
	}
	waitKeyed(t, ks, clients, 5*time.Second)
}
