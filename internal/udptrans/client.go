package udptrans

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	rekey "repro"
	"repro/internal/obs"
	"repro/internal/packet"
)

// Client is a group member's transport endpoint: it receives multicast
// and unicast packets on its own UDP socket, feeds them to the member
// state machine, and sends a NACK to the key server whenever the packet
// stream pauses while the member is still missing keys.
type Client struct {
	Member *rekey.Member

	conn   *net.UDPConn
	server *net.UDPAddr

	// Drop, when non-nil, is a test-only fault injector: packets for
	// which it returns true are discarded before ingestion, emulating a
	// lossy receiver link.
	Drop func(pkt []byte) bool

	// Mangle, when non-nil, is a test-only impairment hook applied after
	// Drop: each received packet is replaced by the slice of packets it
	// returns (empty = lost, several = duplicated and/or reordered
	// arrivals released together). See netsim.Mangler.
	Mangle func(pkt []byte) [][]byte

	// QuietGap is how long the packet stream must pause before the
	// client concludes a round ended and emits a NACK.
	QuietGap time.Duration

	// Obs, when non-nil, receives the client's packet counters and
	// MemberDone trace events. Set before Run.
	Obs *obs.Registry

	mu     sync.Mutex
	closed bool // guarded by mu
	done   chan struct{}
}

// NewClient binds a member socket on an ephemeral loopback port and
// targets NACKs at serverAddr.
func NewClient(cred rekey.Credentials, serverAddr *net.UDPAddr) (*Client, error) {
	return NewClientAt(cred, serverAddr, "127.0.0.1:0")
}

// NewClientAt is NewClient with an explicit local listen address, for
// members that registered an address before constructing the client.
func NewClientAt(cred rekey.Credentials, serverAddr *net.UDPAddr, local string) (*Client, error) {
	la, err := net.ResolveUDPAddr("udp", local)
	if err != nil {
		return nil, fmt.Errorf("udptrans: client listen addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("udptrans: client listen: %w", err)
	}
	return NewClientOnConn(cred, serverAddr, conn)
}

// NewClientOnConn builds a client over an already-bound socket. Members
// bind before registering so that packets distributed while
// registration completes queue in the socket buffer instead of being
// lost; Run drains them.
func NewClientOnConn(cred rekey.Credentials, serverAddr *net.UDPAddr, conn *net.UDPConn) (*Client, error) {
	m, err := rekey.NewMember(cred)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{
		Member:   m,
		conn:     conn,
		server:   serverAddr,
		QuietGap: 60 * time.Millisecond,
		done:     make(chan struct{}),
	}, nil
}

// Addr returns the client's bound address, to register with the server.
func (c *Client) Addr() *net.UDPAddr { return c.conn.LocalAddr().(*net.UDPAddr) }

// Close stops the receive loop and releases the socket.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

// Run receives packets until ctx is cancelled or Close is called. It
// is typically run in its own goroutine. Transient ingest errors
// (stale duplicates, packets for other members) are counted in the
// registry, not fatal. Run returns nil after Close and ctx.Err() after
// cancellation.
func (c *Client) Run(ctx context.Context) error {
	defer close(c.done)
	c.Member.SetObs(c.Obs)
	stopWatch := context.AfterFunc(ctx, func() {
		c.conn.SetReadDeadline(time.Now()) //nolint:errcheck
	})
	defer stopWatch()
	// Sized for the largest possible datagram: a packet plus a
	// maximal auth trailer on a signed interval.
	buf := make([]byte, packet.PacketLen+packet.MaxAuthTrailer)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.conn.SetReadDeadline(time.Now().Add(c.QuietGap)); err != nil {
			return nil
		}
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				// Stream pause: the round is over from this member's
				// perspective; NACK if still pending.
				if nack, ok := c.Member.NACK(); ok {
					if raw, err := nack.Marshal(); err == nil {
						c.conn.WriteToUDP(raw, c.server) //nolint:errcheck
						c.Obs.Inc(obs.CNACKSent)
					}
				}
				continue
			}
			return nil // socket closed
		}
		pkt := buf[:n]
		if c.Drop != nil && c.Drop(pkt) {
			continue
		}
		arrivals := [][]byte{pkt}
		if c.Mangle != nil {
			// Copy first: the mangler may hold the packet past the next
			// read, which reuses buf.
			arrivals = c.Mangle(append([]byte(nil), pkt...))
		}
		for _, p := range arrivals {
			// Copy: Ingest retains payload slices.
			res, err := c.Member.Ingest(append([]byte(nil), p...))
			if c.Obs.Enabled() {
				c.record(res, err)
			}
		}
	}
}

// record translates one ingest outcome into metrics and trace events.
func (c *Client) record(res rekey.IngestResult, err error) {
	switch res.Kind {
	case packet.TypeENC:
		c.Obs.Inc(obs.CEncRecv)
	case packet.TypePARITY:
		c.Obs.Inc(obs.CParityRecv)
	case packet.TypeUSR:
		c.Obs.Inc(obs.CUsrRecv)
	}
	switch {
	case errors.Is(err, rekey.ErrStale):
		c.Obs.Inc(obs.CIngestStale)
	case err != nil:
		c.Obs.Inc(obs.CIngestErrors)
	case res.Done:
		if res.Recovered {
			c.Obs.Inc(obs.CFECRecoveries)
		}
		v := 0.0
		if res.Recovered {
			v = 1
		}
		c.Obs.Emit(obs.Event{Kind: obs.EvMemberDone, MsgID: res.MsgID,
			User: c.Member.ID(), Value: v})
	}
}
